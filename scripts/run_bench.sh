#!/usr/bin/env bash
# Builds the project and runs one bench binary, capturing its output as
# JSON under bench/out/. Default is the fastest end-to-end scenario bench
# (fig15: multi-region + the replication leader-failover scenario).
#
# Usage: scripts/run_bench.sh [--runtime=sim|loopback] [--trace] [bench_target]
#
# --runtime=sim (default) runs the virtual-time simulation bench.
# --runtime=loopback ignores the bench target and runs the loopback
# runtime's multi-process YCSB smoke instead (real threads, TCP loopback,
# real fsyncs), snapshotting its measured-vs-sim-predicted report to
# bench/out/RUNTIME_LOOPBACK.json.
# --trace samples every transaction into the distributed tracer and
# enables the executor profiler (GEOTP_TRACE=1); the bench then writes
# bench/out/<bench>_{trace,metrics,profile}.json + <bench>_slowest.txt
# (the trace JSON loads in Perfetto / chrome://tracing). Tracing perturbs
# timings slightly — regenerate committed BENCH_*.json snapshots WITHOUT
# this flag.
#
# Acceptance benches (their output ends with an "acceptance: PASS/FAIL"
# line) additionally snapshot to bench/out/BENCH_<name>.json — the files
# committed to the repo as the perf record:
#   scripts/run_bench.sh bench_group_commit   # fsync amortization
#   scripts/run_bench.sh bench_rebalance      # elastic sharding vs static,
#                                             # + skew-within-chunk split
#   scripts/run_bench.sh bench_fig05_overload # goodput past the knee +
#                                             # two-tenant fairness
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
RUNTIME="sim"
TRACE=0
while [[ "${1:-}" == --* ]]; do
  case "$1" in
    --runtime=*) RUNTIME="${1#--runtime=}" ;;
    --trace) TRACE=1 ;;
    *)
      echo "unknown flag '$1'" >&2
      exit 2
      ;;
  esac
  shift
done
case "${RUNTIME}" in
  sim|loopback) ;;
  *)
    echo "unknown --runtime '${RUNTIME}' (expected sim or loopback)" >&2
    exit 2
    ;;
esac
BENCH="${1:-bench_fig15_multi_region}"
OUT_DIR="${REPO_ROOT}/bench/out"
BUILD_DIR="${REPO_ROOT}/build"

mkdir -p "${OUT_DIR}"
cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" >/dev/null

if [[ "${RUNTIME}" == "loopback" ]]; then
  cmake --build "${BUILD_DIR}" -j --target runtime_loopback_smoke
  "${BUILD_DIR}/runtime_loopback_smoke" \
      --out="${OUT_DIR}/RUNTIME_LOOPBACK.json"
  echo "wrote ${OUT_DIR}/RUNTIME_LOOPBACK.json"
  exit 0
fi

cmake --build "${BUILD_DIR}" -j --target "${BENCH}"

if [[ "${TRACE}" == "1" ]]; then
  export GEOTP_TRACE=1
  export GEOTP_TRACE_OUT="${OUT_DIR}/${BENCH}"
fi

START=$(date +%s)
STATUS=0
RAW_OUT="$("${BUILD_DIR}/${BENCH}")" || STATUS=$?
END=$(date +%s)

OUT_FILE="${OUT_DIR}/${BENCH}.json" \
BENCH_NAME="${BENCH}" \
DURATION=$((END - START)) \
STATUS="${STATUS}" \
RAW_OUT="${RAW_OUT}" \
python3 - <<'EOF'
import json
import os

lines = [l for l in os.environ["RAW_OUT"].splitlines() if l.strip()]
doc = {
    "bench": os.environ["BENCH_NAME"],
    "exit_code": int(os.environ["STATUS"]),
    "duration_seconds": int(os.environ["DURATION"]),
    "output": lines,
}
# WAN accounting lines ("wan: raw_bytes=... wire_bytes=... ratio=...")
# are lifted into a structured top-level key alongside the raw output.
for l in lines:
    if l.startswith("wan: "):
        wan = {}
        for tok in l[len("wan: "):].split():
            if "=" not in tok:
                continue
            k, v = tok.split("=", 1)
            try:
                wan[k] = float(v) if "." in v else int(v)
            except ValueError:
                continue
        doc["wan"] = wan
path = os.environ["OUT_FILE"]
with open(path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"wrote {path}")

# Acceptance benches keep a committed snapshot under BENCH_<name>.json.
if any(l.startswith("acceptance:") for l in lines):
    name = os.environ["BENCH_NAME"]
    short = name[len("bench_"):] if name.startswith("bench_") else name
    snap = os.path.join(os.path.dirname(path), f"BENCH_{short}.json")
    with open(snap, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(f"wrote {snap}")
EOF

echo "${RAW_OUT}"
