#!/usr/bin/env python3
"""Documentation consistency checks, run by the CI docs job.

1. Every relative link in every tracked markdown file resolves to a file
   or directory that exists (anchors and external URLs are ignored).
2. Every src/*/ directory has a README.md.
3. ARCHITECTURE.md references every one of those per-directory READMEs,
   so the subsystem map cannot silently go stale.

Exits non-zero with a per-problem report.
"""

import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SKIP_DIRS = {"build", ".git", ".claude", "bench/out"}

# [text](target) — excluding images' inner text handling (same syntax) and
# reference-style links, which the repo does not use.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def tracked_markdown():
    for root, dirs, files in os.walk(REPO):
        rel_root = os.path.relpath(root, REPO)
        dirs[:] = [
            d
            for d in dirs
            if d not in SKIP_DIRS
            and os.path.join(rel_root, d).replace("\\", "/").lstrip("./")
            not in SKIP_DIRS
        ]
        for name in files:
            if name.endswith(".md"):
                yield os.path.join(root, name)


def check_links(problems):
    for path in tracked_markdown():
        rel = os.path.relpath(path, REPO)
        with open(path, encoding="utf-8") as f:
            text = f.read()
        # Links inside fenced code blocks are examples, not references.
        text = re.sub(r"```.*?```", "", text, flags=re.S)
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            target = target.split("#", 1)[0]
            if not target:
                continue
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(path), target)
            )
            if not os.path.exists(resolved):
                problems.append(f"{rel}: broken link -> {match.group(1)}")


def check_src_readmes(problems):
    src = os.path.join(REPO, "src")
    with open(os.path.join(REPO, "ARCHITECTURE.md"), encoding="utf-8") as f:
        architecture = f.read()
    for entry in sorted(os.listdir(src)):
        dir_path = os.path.join(src, entry)
        if not os.path.isdir(dir_path):
            continue
        readme = os.path.join(dir_path, "README.md")
        if not os.path.exists(readme):
            problems.append(f"src/{entry}/ has no README.md")
            continue
        needle = f"src/{entry}/README.md"
        if needle not in architecture:
            problems.append(f"ARCHITECTURE.md does not reference {needle}")


def main():
    problems = []
    check_links(problems)
    check_src_readmes(problems)
    if problems:
        print(f"docs check: {len(problems)} problem(s)")
        for p in problems:
            print(f"  {p}")
        return 1
    print("docs check: all markdown links resolve, "
          "all src/*/ READMEs present and referenced")
    return 0


if __name__ == "__main__":
    sys.exit(main())
