// Cross-border e-commerce checkout (the paper's §I motivation): US user
// accounts in one region, warehouse stock in another. Modeled with TPC-C
// NewOrder/Payment over four geo-distributed data sources; compares every
// middleware system on the checkout-heavy mix and prints per-transaction-
// type results.
#include <cstdio>

#include "workload/runner.h"

using namespace geotp;
using namespace geotp::workload;

int main() {
  std::printf(
      "Cross-border checkout: TPC-C NewOrder(45%%)+Payment(43%%) mix,\n"
      "20%% of checkouts source stock / charge customers across regions.\n\n");
  std::printf("%-14s %10s %12s %12s | %s\n", "system", "txn/s", "mean(ms)",
              "p99(ms)", "per-type committed (NO/Pay/OS/Del/SL)");
  for (SystemKind system :
       {SystemKind::kSSP, SystemKind::kSSPLocal, SystemKind::kQuro,
        SystemKind::kChiller, SystemKind::kScalarDb, SystemKind::kYugabyte,
        SystemKind::kGeoTP}) {
    ExperimentConfig config;
    config.system = system;
    config.workload = WorkloadKind::kTpcc;
    config.tpcc.distributed_ratio = 0.2;
    config.driver.terminals = 64;
    config.driver.warmup = SecToMicros(4);
    config.driver.measure = SecToMicros(20);
    const auto result = RunExperiment(config);
    std::printf("%-14s %10.1f %12.1f %12.1f | ", SystemName(system),
                result.Tps(), result.MeanLatencyMs(), result.P99LatencyMs());
    for (int type = 0; type < 5; ++type) {
      auto it = result.per_type.find(type);
      std::printf("%llu ",
                  static_cast<unsigned long long>(
                      it == result.per_type.end() ? 0 : it->second.committed));
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf(
      "\nTakeaway: the checkout path commits cross-region stock updates\n"
      "and payments atomically; GeoTP's decentralized prepare and\n"
      "latency-aware scheduling keep the warehouse-row hotspots (W_YTD,\n"
      "D_NEXT_O_ID) locked for milliseconds instead of WAN round trips.\n");
  return 0;
}
