// The paper's running example (§III, Fig. 3): Alice transfers $100 to
// Bob. Bob's account lives in a PostgreSQL instance co-located with the
// middleware (DS1); Alice's account lives in a MySQL instance 100ms away
// (DS2). This example shows the whole GeoTP pipeline at the API level:
//
//   1. the client writes annotated SQL ("/* last statement */"),
//   2. the parser extracts statements + the annotation,
//   3. the rewriter emits each engine's XA dialect (what the geo-agent
//      executes for the decentralized prepare),
//   4. a two-node simulated deployment runs the transfer under GeoTP and
//      under classic 2PC (SSP), printing the commit latency difference —
//      the eliminated WAN round trip of §IV-A.
#include <cstdio>
#include <memory>

#include "datasource/data_source.h"
#include "middleware/middleware.h"
#include "protocol/messages.h"
#include "sim/network.h"
#include "sql/parser.h"
#include "sql/rewriter.h"

using namespace geotp;

namespace {

constexpr uint32_t kSavings = 1;
constexpr uint64_t kBob = 7;       // key on DS1 (node-local offset 7)
constexpr uint64_t kAlice = 1005;  // key on DS2 (1000 keys per node)

// Assembles client(0) + DM(1) + PostgreSQL DS(2, 10ms) + MySQL DS(3,
// 100ms), runs the transfer, returns the client-observed latency in ms.
double RunTransfer(const middleware::MiddlewareConfig& dm_config,
                   const std::vector<sql::ParsedStatement>& script) {
  sim::LatencyMatrix matrix(4);
  matrix.SetSymmetric(0, 1, sim::LinkSpec::FromRttMs(0.5));
  matrix.SetSymmetric(1, 2, sim::LinkSpec::FromRttMs(10.0));
  matrix.SetSymmetric(1, 3, sim::LinkSpec::FromRttMs(100.0));
  matrix.SetSymmetric(0, 2, sim::LinkSpec::FromRttMs(10.0));
  matrix.SetSymmetric(0, 3, sim::LinkSpec::FromRttMs(100.0));
  matrix.SetSymmetric(2, 3, sim::LinkSpec::FromRttMs(100.0));
  sim::EventLoop loop;
  sim::Network network(&loop, matrix);

  datasource::DataSourceConfig pg = datasource::DataSourceConfig::Postgres();
  datasource::DataSourceConfig my = datasource::DataSourceConfig::MySql();
  pg.early_abort = my.early_abort = dm_config.early_abort;
  datasource::DataSourceNode ds1(2, &network, pg);
  datasource::DataSourceNode ds2(3, &network, my);
  ds1.Attach();
  ds2.Attach();
  // Seed the balances.
  ds1.engine().store().Put(RecordKey{kSavings, kBob}, 500);
  ds2.engine().store().Put(RecordKey{kSavings, kAlice}, 300);

  middleware::Catalog catalog;
  catalog.AddRangePartitionedTable(kSavings, 1000, {2, 3});
  middleware::MiddlewareNode dm(1, 0, &network, std::move(catalog),
                                dm_config);
  dm.Attach();

  // Translate the parsed script into one client round (the DM receives
  // the DML batch; BEGIN/COMMIT frame it).
  auto round = std::make_unique<protocol::ClientRoundRequest>();
  round->from = 0;
  round->to = 1;
  round->client_tag = 1;
  for (const auto& stmt : script) {
    if (!stmt.IsDml()) continue;
    protocol::ClientOp op;
    op.key = RecordKey{kSavings, stmt.key};
    op.is_write = stmt.IsWrite();
    op.value = stmt.value;
    op.is_delta = stmt.is_delta;
    round->ops.push_back(op);
    if (stmt.is_last) round->last_round = true;
  }

  Micros done_at = 0;
  TxnId txn_id = kInvalidTxn;
  bool committed = false;
  network.RegisterNode(0, [&](std::unique_ptr<sim::MessageBase> msg) {
    if (auto* resp =
            dynamic_cast<protocol::ClientRoundResponse*>(msg.get())) {
      txn_id = resp->txn_id;
      auto finish = std::make_unique<protocol::ClientFinishRequest>();
      finish->from = 0;
      finish->to = 1;
      finish->client_tag = 1;
      finish->txn_id = txn_id;
      finish->commit = true;
      network.Send(std::move(finish));
    } else if (auto* result =
                   dynamic_cast<protocol::ClientTxnResult*>(msg.get())) {
      committed = result->status.ok();
      done_at = loop.Now();
    }
  });
  network.Send(std::move(round));
  loop.RunUntil(SecToMicros(5));

  std::printf("    Bob (DS1/PostgreSQL):   $%lld\n",
              static_cast<long long>(
                  ds1.engine().store().Get(RecordKey{kSavings, kBob})->value));
  std::printf("    Alice (DS2/MySQL):      $%lld\n",
              static_cast<long long>(ds2.engine()
                                         .store()
                                         .Get(RecordKey{kSavings, kAlice})
                                         ->value));
  std::printf("    committed: %s\n", committed ? "yes" : "NO");
  return MicrosToMs(done_at);
}

}  // namespace

int main() {
  // 1. The client's annotated transaction, exactly as in the paper Fig. 3.
  const char* kScript =
      "BEGIN;"
      "UPDATE savings SET val = val + -100 WHERE key = 1005;"
      "UPDATE savings SET val = val + 100 WHERE key = 7; /* last statement */;"
      "COMMIT;";
  std::printf("client SQL:\n%s\n\n", kScript);

  sql::Parser parser;
  auto parsed = parser.ParseScript(kScript);
  if (!parsed.ok()) {
    std::printf("parse error: %s\n", parsed.status().ToString().c_str());
    return 1;
  }

  // 2./3. What the rewriter sends to each engine.
  const Xid bob_branch{1, 2};    // PostgreSQL branch
  const Xid alice_branch{1, 3};  // MySQL branch
  std::printf("rewritten for PostgreSQL (DS1, Bob):\n");
  for (const auto& sql : sql::Rewriter::BranchBegin(sql::Dialect::kPostgres,
                                                    bob_branch)) {
    std::printf("    %s\n", sql.c_str());
  }
  for (const auto& stmt : parsed.value()) {
    if (stmt.IsDml() && stmt.key == kBob) {
      std::printf("    %s\n",
                  sql::Rewriter::RewriteDml(sql::Dialect::kPostgres, stmt)
                      .c_str());
    }
  }
  for (const auto& sql : sql::Rewriter::BranchPrepare(sql::Dialect::kPostgres,
                                                      bob_branch)) {
    std::printf("    %s   <- geo-agent, decentralized prepare\n",
                sql.c_str());
  }
  std::printf("rewritten for MySQL (DS2, Alice):\n");
  for (const auto& sql :
       sql::Rewriter::BranchBegin(sql::Dialect::kMySql, alice_branch)) {
    std::printf("    %s\n", sql.c_str());
  }
  for (const auto& stmt : parsed.value()) {
    if (stmt.IsDml() && stmt.key == kAlice) {
      std::printf(
          "    %s\n",
          sql::Rewriter::RewriteDml(sql::Dialect::kMySql, stmt).c_str());
    }
  }
  for (const auto& sql : sql::Rewriter::BranchPrepare(sql::Dialect::kMySql,
                                                      alice_branch)) {
    std::printf("    %s   <- geo-agent, decentralized prepare\n",
                sql.c_str());
  }

  // 4. Run it under both commit protocols.
  std::printf("\nrunning under SSP (classic XA 2PC, 3 WAN round trips):\n");
  const double ssp_ms =
      RunTransfer(middleware::MiddlewareConfig::SSP(), parsed.value());
  std::printf("    commit latency: %.1f ms\n", ssp_ms);

  std::printf("\nrunning under GeoTP (decentralized prepare, 2 round trips):\n");
  const double geotp_ms =
      RunTransfer(middleware::MiddlewareConfig::GeoTP(), parsed.value());
  std::printf("    commit latency: %.1f ms\n", geotp_ms);

  std::printf("\nGeoTP saved %.1f ms — the prepare phase's WAN round trip.\n",
              ssp_ms - geotp_ms);
  return 0;
}
