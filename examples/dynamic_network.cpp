// Online adaptivity demo (paper §VII-D, Fig. 11b): the WAN latencies are
// re-shaped mid-run; GeoTP's latency monitor (10ms pings + EWMA) tracks
// the change and the geo-scheduler re-plans its postponements, while SSP
// (latency-oblivious) degrades. Prints throughput per 10-second window
// and the monitor's live RTT estimates around the switch.
#include <cstdio>

#include "workload/runner.h"

using namespace geotp;
using namespace geotp::workload;

int main() {
  std::printf(
      "Link shake-up at t=40s: DS2 27ms->251ms, DS4 251ms->27ms.\n\n");
  std::printf("%-8s %14s %14s\n", "t (s)", "SSP (txn/s)", "GeoTP (txn/s)");

  std::vector<std::vector<std::pair<double, double>>> series;
  for (SystemKind system : {SystemKind::kSSP, SystemKind::kGeoTP}) {
    ExperimentConfig config;
    config.system = system;
    config.ycsb.theta = 0.9;
    config.ycsb.distributed_ratio = 0.5;
    config.driver.terminals = 64;
    config.driver.warmup = 0;
    config.driver.measure = SecToMicros(80);
    config.pre_run = [](sim::EventLoop* loop, sim::Network* network) {
      loop->Schedule(SecToMicros(40), [network]() {
        // Node ids in the default topology: dm=1, ds2=3, ds4=5.
        network->matrix().SetSymmetric(1, 3, sim::LinkSpec::FromRttMs(251));
        network->matrix().SetSymmetric(1, 5, sim::LinkSpec::FromRttMs(27));
      });
    };
    series.push_back(RunExperiment(config).throughput_series);
  }

  // Aggregate to 10-second windows.
  const size_t n = std::min(series[0].size(), series[1].size());
  for (size_t start = 0; start + 10 <= n; start += 10) {
    double sums[2] = {0, 0};
    for (size_t i = start; i < start + 10; ++i) {
      sums[0] += series[0][i].second;
      sums[1] += series[1][i].second;
    }
    std::printf("%-8.0f %14.1f %14.1f%s\n", series[0][start + 9].first,
                sums[0] / 10.0, sums[1] / 10.0,
                start == 30 ? "   <- links re-shaped during this window"
                            : "");
  }
  std::printf(
      "\nGeoTP's EWMA monitor re-learns the RTTs within ~1s of the switch\n"
      "and the scheduler re-derives Eq. 3 postponements, so throughput\n"
      "recovers; SSP has no mechanism to exploit the new latency profile.\n");
  return 0;
}
