// Quickstart: run GeoTP and the SSP baseline on the paper's default
// geo-distributed topology (Beijing / Shanghai / Singapore / London) with
// a medium-contention YCSB workload, and print the headline metrics.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "workload/runner.h"

using geotp::workload::ExperimentConfig;
using geotp::workload::RunExperiment;
using geotp::workload::SystemKind;
using geotp::workload::SystemName;

int main() {
  for (SystemKind system : {SystemKind::kSSP, SystemKind::kGeoTP}) {
    ExperimentConfig config;
    config.system = system;
    config.ycsb.theta = 0.9;              // medium contention
    config.ycsb.distributed_ratio = 0.2;  // paper default
    config.driver.terminals = 64;
    config.driver.warmup = geotp::SecToMicros(5);
    config.driver.measure = geotp::SecToMicros(20);

    const auto result = RunExperiment(config);
    std::printf(
        "%-12s throughput=%7.1f txn/s  mean=%7.1f ms  p99=%8.1f ms  "
        "abort-rate=%5.1f%%  (committed=%llu)\n",
        SystemName(system), result.Tps(), result.MeanLatencyMs(),
        result.P99LatencyMs(), 100.0 * result.AbortRate(),
        static_cast<unsigned long long>(result.run.committed));
  }
  return 0;
}
