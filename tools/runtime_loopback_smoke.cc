// Loopback-runtime smoke: real YCSB transactions through real OS
// processes, checked against a sequential oracle.
//
// The parent process hosts the middleware (DM) and the client driver on
// the loopback runtime; it fork/execs N_CHILDREN copies of this binary,
// each hosting one data source in its own process. Messages between the
// DM and the data sources cross real TCP loopback sockets through the
// runtime/codec.h wire format; every WAL / decision-log flush is a real
// write + fdatasync of a file.
//
// Verification: YCSB updates are deltas, so the final value of every key
// is exactly the sum of the deltas of COMMITTED transactions, in any
// order. The client feeds each committed spec into an in-memory oracle;
// after quiescing the driver the parent reads every touched key back
// through the middleware (fresh read-only transactions over the same
// wire) and compares. Any lost or phantom commit fails the run.
//
// Output: a JSON report (measured throughput next to the simulator's
// prediction for the same configuration) on stdout and optionally to
// --out=<path>. Exit code 0 = oracle held.
//
// Child protocol (stdin/stdout line-oriented):
//   child -> parent:  "PORT <n>"   after binding its listener
//   parent -> child:  "ROUTE <node> <port>"  (full mesh), then "START"
//   child -> parent:  "READY"      data sources attached
//   parent -> child:  "QUIT"       shut down and exit
//
// Tracing: every process enables the tracer at sample_rate=1. Each child
// dumps its spans to <data_dir>/spans-<node>.txt on shutdown; the parent
// merges them with its own spans into one Chrome trace-event JSON
// (Perfetto loadable, one pid per OS process) and ASSERTS that at least
// one distributed transaction produced spans in all three processes
// covering analysis -> branch exec -> prepare fsync -> quorum -> commit.
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <future>
#include <iostream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "datasource/data_source.h"
#include "middleware/middleware.h"
#include "obs/trace.h"
#include "runtime/loopback_runtime.h"
#include "workload/driver.h"
#include "workload/runner.h"
#include "workload/ycsb.h"

namespace {

using namespace geotp;  // NOLINT: tool binary

// Topology: ids match sim::DefaultTopology so the sim prediction uses the
// same node numbering.
constexpr NodeId kClient = 0;
constexpr NodeId kMiddleware = 1;
const std::vector<NodeId> kDataSources = {2, 3};
constexpr int kTerminals = 16;
constexpr Micros kWarmup = MsToMicros(200);
constexpr Micros kMeasure = MsToMicros(2000);

workload::YcsbConfig SmokeYcsb() {
  workload::YcsbConfig ycsb;
  ycsb.data_sources = kDataSources;
  ycsb.records_per_node = 1000;
  ycsb.theta = 0.5;
  ycsb.distributed_ratio = 0.3;
  return ycsb;
}

void EnableFullTracing() {
  obs::TraceConfig trace_config;
  trace_config.sample_rate = 1.0;
  obs::GlobalTracer().Enable(trace_config);
}

std::string SpanFilePath(const std::string& data_dir, NodeId node) {
  return data_dir + "/spans-" + std::to_string(node) + ".txt";
}

// ---------------------------------------------------------------------------
// Child: host one data source until told to quit.
// ---------------------------------------------------------------------------

int RunChild(NodeId node, const std::string& data_dir) {
  SetLogPrefix("node" + std::to_string(node));
  EnableFullTracing();
  runtime::LoopbackConfig config;
  config.data_dir = data_dir;
  runtime::LoopbackRuntime rt(config);
  std::cout << "PORT " << rt.port() << "\n" << std::flush;

  std::unique_ptr<datasource::DataSourceNode> source;
  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd == "ROUTE") {
      NodeId peer;
      int port;
      in >> peer >> port;
      rt.AddRoute(peer, port);
    } else if (cmd == "START") {
      source = std::make_unique<datasource::DataSourceNode>(
          rt.EnvFor(node), datasource::DataSourceConfig::MySql());
      source->Attach();
      std::cout << "READY\n" << std::flush;
    } else if (cmd == "QUIT") {
      break;
    }
  }
  rt.Shutdown();
  // Executor threads are joined; every span this process recorded is
  // final. The parent merges this file into the cross-process trace.
  std::ofstream spans_out(SpanFilePath(data_dir, node));
  obs::GlobalTracer().DumpText(spans_out);
  return 0;
}

// ---------------------------------------------------------------------------
// Parent helpers
// ---------------------------------------------------------------------------

struct Child {
  pid_t pid = -1;
  FILE* to_child = nullptr;    // parent writes commands
  FILE* from_child = nullptr;  // parent reads PORT/READY
  int port = 0;
};

Child SpawnChild(const char* self, NodeId node, const std::string& data_dir) {
  int to_child[2], from_child[2];
  if (pipe(to_child) != 0 || pipe(from_child) != 0) {
    perror("pipe");
    exit(1);
  }
  const pid_t pid = fork();
  if (pid == 0) {
    dup2(to_child[0], STDIN_FILENO);
    dup2(from_child[1], STDOUT_FILENO);
    close(to_child[0]);
    close(to_child[1]);
    close(from_child[0]);
    close(from_child[1]);
    const std::string node_arg = std::to_string(node);
    execl(self, self, "--child", node_arg.c_str(), data_dir.c_str(),
          static_cast<char*>(nullptr));
    perror("execl");
    _exit(127);
  }
  close(to_child[0]);
  close(from_child[1]);
  Child child;
  child.pid = pid;
  child.to_child = fdopen(to_child[1], "w");
  child.from_child = fdopen(from_child[0], "r");
  return child;
}

std::string ReadLineFrom(Child& child) {
  char buf[256];
  if (fgets(buf, sizeof(buf), child.from_child) == nullptr) return "";
  std::string line(buf);
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
    line.pop_back();
  }
  return line;
}

void SendTo(Child& child, const std::string& line) {
  fprintf(child.to_child, "%s\n", line.c_str());
  fflush(child.to_child);
}

/// Runs `fn` on `timer`'s executor thread and waits for its result —
/// actor-state reads stay on the actor's thread, keeping the smoke
/// TSan-clean.
template <typename Fn>
auto OnExecutor(runtime::ITimer* timer, Fn fn) -> decltype(fn()) {
  std::promise<decltype(fn())> promise;
  auto future = promise.get_future();
  timer->Schedule(0, [&]() { promise.set_value(fn()); });
  return future.get();
}

/// Sim prediction for the same deployment shape: two near data sources,
/// same terminal count and YCSB mix, virtual time.
double SimPredictedTps() {
  workload::ExperimentConfig config;
  config.system = workload::SystemKind::kGeoTP;
  config.ds_rtts_ms = {0.2, 0.2};  // loopback sockets: sub-ms RTT
  config.ycsb = SmokeYcsb();
  config.driver.terminals = kTerminals;
  config.driver.warmup = kWarmup;
  config.driver.measure = kMeasure;
  return workload::RunExperiment(config).Tps();
}

// ---------------------------------------------------------------------------
// Parent: run the workload, verify, report.
// ---------------------------------------------------------------------------

/// Cross-process trace verdict computed from the merged span set.
struct TraceCheck {
  size_t total_spans = 0;
  size_t processes_with_spans = 0;
  uint64_t cross_process_traces = 0;  ///< traces with spans in all 3 pids
  uint64_t full_chain_traces = 0;     ///< ... that also cover the txn chain
};

TraceCheck CheckMergedTrace(
    const std::vector<std::pair<int, std::vector<obs::SpanRecord>>>& per_pid) {
  // The span names one distributed transaction must produce end to end:
  // DM analysis, branch execution + prepare fsync + quorum gate at the
  // data sources, and the DM commit decision.
  static const char* const kChain[] = {"dm.analysis", "ds.branch_exec",
                                       "ds.prepare_fsync", "ds.quorum",
                                       "dm.commit"};
  TraceCheck check;
  std::map<uint64_t, std::set<int>> pids_by_trace;
  std::map<uint64_t, std::set<std::string>> names_by_trace;
  for (const auto& [pid, spans] : per_pid) {
    check.total_spans += spans.size();
    if (!spans.empty()) check.processes_with_spans++;
    for (const obs::SpanRecord& span : spans) {
      if (span.trace_id == obs::kSystemTraceId) continue;
      pids_by_trace[span.trace_id].insert(pid);
      names_by_trace[span.trace_id].insert(span.name);
    }
  }
  for (const auto& [trace_id, pids] : pids_by_trace) {
    if (pids.size() < per_pid.size()) continue;
    check.cross_process_traces++;
    const std::set<std::string>& names = names_by_trace[trace_id];
    bool full = true;
    for (const char* name : kChain) {
      if (names.count(name) == 0) {
        full = false;
        break;
      }
    }
    if (full) check.full_chain_traces++;
  }
  return check;
}

int RunParent(const char* self, const std::string& out_path) {
  SetLogPrefix("parent");
  EnableFullTracing();
  const std::string data_dir =
      "/tmp/geotp-loopback-" + std::to_string(getpid());

  // -- spawn children, collect their ports ---------------------------------
  std::vector<Child> children;
  for (NodeId node : kDataSources) {
    children.push_back(SpawnChild(self, node, data_dir));
  }
  for (Child& child : children) {
    const std::string line = ReadLineFrom(child);
    if (sscanf(line.c_str(), "PORT %d", &child.port) != 1) {
      std::cerr << "child handshake failed: '" << line << "'\n";
      return 1;
    }
  }

  // -- parent runtime hosting DM + client ----------------------------------
  runtime::LoopbackConfig config;
  config.data_dir = data_dir;
  runtime::LoopbackRuntime rt(config);
  for (size_t i = 0; i < children.size(); ++i) {
    rt.AddRoute(kDataSources[i], children[i].port);
  }

  // Full-mesh routes to every child: the parent's nodes plus every other
  // child's data source (geo-agents message each other directly).
  for (size_t i = 0; i < children.size(); ++i) {
    for (size_t j = 0; j < children.size(); ++j) {
      if (i == j) continue;
      SendTo(children[i], "ROUTE " + std::to_string(kDataSources[j]) + " " +
                              std::to_string(children[j].port));
    }
    SendTo(children[i], "ROUTE " + std::to_string(kClient) + " " +
                            std::to_string(rt.port()));
    SendTo(children[i], "ROUTE " + std::to_string(kMiddleware) + " " +
                            std::to_string(rt.port()));
    SendTo(children[i], "START");
  }
  for (Child& child : children) {
    if (ReadLineFrom(child) != "READY") {
      std::cerr << "child failed to attach its data source\n";
      return 1;
    }
  }

  workload::YcsbConfig ycsb = SmokeYcsb();
  workload::YcsbGenerator generator(ycsb);
  middleware::Catalog catalog;
  generator.RegisterTables(&catalog);

  middleware::MiddlewareNode dm(rt.EnvFor(kMiddleware), /*ordinal=*/0,
                                std::move(catalog),
                                middleware::MiddlewareConfig::GeoTP());
  dm.Attach();

  workload::DriverConfig driver_config;
  driver_config.terminals = kTerminals;
  driver_config.warmup = kWarmup;
  driver_config.measure = kMeasure;
  workload::ClientDriver driver(rt.EnvFor(kClient), kMiddleware, &generator,
                                driver_config);
  driver.Attach();

  // The oracle: key -> sum of committed deltas. Fed on the client's
  // executor thread (commit order), read only after the driver quiesces.
  std::map<RecordKey, int64_t> oracle;
  driver.SetCommitObserver([&oracle](const workload::TxnSpec& spec) {
    for (const auto& round : spec.rounds) {
      for (const auto& op : round) {
        if (!op.is_write) continue;
        auto& slot = oracle[op.key];
        slot = op.is_delta ? slot + op.value : op.value;
      }
    }
  });

  runtime::ITimer* client_timer = rt.TimerFor(kClient);
  OnExecutor(client_timer, [&]() {
    driver.Start();
    return 0;
  });

  // Real time: sleep through warmup + measure, then quiesce and drain.
  std::this_thread::sleep_for(std::chrono::microseconds(kWarmup + kMeasure));
  OnExecutor(client_timer, [&]() {
    driver.Stop();
    return 0;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(500));

  const metrics::RunStats stats =
      OnExecutor(client_timer, [&]() { return driver.stats(); });
  const auto oracle_snapshot =
      OnExecutor(client_timer, [&]() { return oracle; });

  // -- read-back verification: fresh read-only txns over the same wire ----
  // A bespoke miniature client on its own node id; one key per txn keeps
  // the round/commit state machine trivial.
  constexpr NodeId kVerifier = 99;
  struct Pending {
    std::promise<std::pair<bool, int64_t>> result;
    int64_t value = 0;
  };
  std::mutex verify_mu;
  std::map<TxnId, std::shared_ptr<Pending>> awaiting_commit;
  std::shared_ptr<Pending> awaiting_round;  // single outstanding txn

  runtime::ITransport* transport = rt.transport();
  transport->RegisterNode(
      kVerifier, [&](std::unique_ptr<runtime::MessageBase> msg) {
        std::lock_guard<std::mutex> lock(verify_mu);
        if (msg->type() == runtime::MessageType::kClientRoundResponse) {
          auto& resp = static_cast<protocol::ClientRoundResponse&>(*msg);
          if (awaiting_round == nullptr) return;
          if (!resp.status.ok() || resp.values.empty()) {
            awaiting_round->result.set_value({false, 0});
            awaiting_round.reset();
            return;
          }
          awaiting_round->value = resp.values[0];
          awaiting_commit[resp.txn_id] = awaiting_round;
          awaiting_round.reset();
          auto finish = std::make_unique<protocol::ClientFinishRequest>();
          finish->from = kVerifier;
          finish->to = kMiddleware;
          finish->txn_id = resp.txn_id;
          finish->commit = true;
          transport->Send(std::move(finish));
        } else if (msg->type() == runtime::MessageType::kClientTxnResult) {
          auto& result = static_cast<protocol::ClientTxnResult&>(*msg);
          auto it = awaiting_commit.find(result.txn_id);
          if (it == awaiting_commit.end()) return;
          it->second->result.set_value({result.status.ok(), it->second->value});
          awaiting_commit.erase(it);
        }
      });

  auto read_key = [&](const RecordKey& key) -> std::pair<bool, int64_t> {
    auto pending = std::make_shared<Pending>();
    auto future = pending->result.get_future();
    {
      std::lock_guard<std::mutex> lock(verify_mu);
      awaiting_round = pending;
    }
    auto req = std::make_unique<protocol::ClientRoundRequest>();
    req->from = kVerifier;
    req->to = kMiddleware;
    protocol::ClientOp op;
    op.key = key;
    req->ops.push_back(op);
    req->last_round = true;
    transport->Send(std::move(req));
    if (future.wait_for(std::chrono::seconds(5)) !=
        std::future_status::ready) {
      return {false, 0};
    }
    return future.get();
  };

  uint64_t verified = 0, mismatches = 0, read_failures = 0;
  for (const auto& [key, expected] : oracle_snapshot) {
    // Retry: a verification read can abort under leftover lock contention.
    std::pair<bool, int64_t> got{false, 0};
    for (int attempt = 0; attempt < 5 && !got.first; ++attempt) {
      got = read_key(key);
    }
    if (!got.first) {
      read_failures++;
      continue;
    }
    verified++;
    if (got.second != expected) {
      mismatches++;
      if (mismatches <= 10) {
        std::cerr << "MISMATCH key=(" << key.table << "," << key.key
                  << ") expected=" << expected << " got=" << got.second
                  << "\n";
      }
    }
  }

  // -- tear down ------------------------------------------------------------
  for (Child& child : children) SendTo(child, "QUIT");
  for (Child& child : children) {
    int status = 0;
    waitpid(child.pid, &status, 0);
    fclose(child.to_child);
    fclose(child.from_child);
  }
  const uint64_t frames_sent = rt.loopback_transport().frames_sent();
  const uint64_t frames_received = rt.loopback_transport().frames_received();
  rt.Shutdown();

  // -- merge the cross-process trace ---------------------------------------
  // pid 0 = this (DM + client) process, pids 1.. = the data-source
  // children, read from the span files they wrote before exiting.
  // Timestamps are per-process (each runtime's own epoch), which skews
  // lanes in the viewer but leaves trace/span ids — what the assertion
  // needs — exact.
  std::vector<std::pair<int, std::vector<obs::SpanRecord>>> per_pid;
  per_pid.emplace_back(0, obs::GlobalTracer().Snapshot());
  obs::GlobalTracer().Disable();  // keep the sim prediction run untraced
  for (size_t i = 0; i < children.size(); ++i) {
    std::vector<obs::SpanRecord> spans;
    std::ifstream in(SpanFilePath(data_dir, kDataSources[i]));
    obs::ReadSpansText(in, &spans);
    per_pid.emplace_back(static_cast<int>(i + 1), std::move(spans));
  }
  const TraceCheck trace_check = CheckMergedTrace(per_pid);
  std::string trace_path = out_path.empty() ? data_dir + "/trace" : out_path;
  const std::string json_suffix = ".json";
  if (trace_path.size() > json_suffix.size() &&
      trace_path.compare(trace_path.size() - json_suffix.size(),
                         json_suffix.size(), json_suffix) == 0) {
    trace_path.resize(trace_path.size() - json_suffix.size());
  }
  trace_path += "_trace.json";
  {
    std::ofstream out(trace_path);
    out << obs::ChromeTraceJson(per_pid);
  }
  std::cerr << "merged trace: " << trace_path << " ("
            << trace_check.total_spans << " spans, "
            << trace_check.full_chain_traces
            << " full-chain cross-process traces)\n";

  // -- sim prediction + report ---------------------------------------------
  const double predicted_tps = SimPredictedTps();
  const double measured_tps = stats.ThroughputTps();

  std::ostringstream json;
  json << "{\n"
       << "  \"runtime\": \"loopback\",\n"
       << "  \"processes\": " << (1 + children.size()) << ",\n"
       << "  \"terminals\": " << kTerminals << ",\n"
       << "  \"measure_seconds\": " << MicrosToSec(kMeasure) << ",\n"
       << "  \"measured_tps\": " << measured_tps << ",\n"
       << "  \"sim_predicted_tps\": " << predicted_tps << ",\n"
       << "  \"committed\": " << stats.committed << ",\n"
       << "  \"abort_events\": " << stats.abort_events << ",\n"
       << "  \"mean_latency_ms\": " << stats.latency.Mean() / 1000.0 << ",\n"
       << "  \"p99_latency_ms\": " << MicrosToMs(stats.latency.P99()) << ",\n"
       << "  \"frames_sent\": " << frames_sent << ",\n"
       << "  \"frames_received\": " << frames_received << ",\n"
       << "  \"oracle_keys\": " << oracle_snapshot.size() << ",\n"
       << "  \"oracle_verified\": " << verified << ",\n"
       << "  \"oracle_read_failures\": " << read_failures << ",\n"
       << "  \"oracle_mismatches\": " << mismatches << ",\n"
       << "  \"trace_spans\": " << trace_check.total_spans << ",\n"
       << "  \"trace_processes\": " << trace_check.processes_with_spans
       << ",\n"
       << "  \"trace_cross_process\": " << trace_check.cross_process_traces
       << ",\n"
       << "  \"trace_full_chain\": " << trace_check.full_chain_traces << "\n"
       << "}\n";
  std::cout << json.str();
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << json.str();
  }

  if (mismatches != 0 || verified == 0) {
    std::cerr << "SMOKE FAILED: " << mismatches << " mismatches, " << verified
              << " keys verified\n";
    return 1;
  }
  if (trace_check.full_chain_traces == 0) {
    std::cerr << "SMOKE FAILED: no distributed transaction traced across "
                 "all "
              << (1 + children.size())
              << " processes with the full analysis -> branch exec -> "
                 "fsync -> quorum -> commit span chain\n";
    return 1;
  }
  std::cerr << "SMOKE OK: " << verified << " keys verified, measured "
            << measured_tps << " tps (sim predicted " << predicted_tps
            << ")\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 4 && std::strcmp(argv[1], "--child") == 0) {
    return RunChild(static_cast<NodeId>(std::stoi(argv[2])), argv[3]);
  }
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) out_path = arg.substr(6);
  }
  return RunParent(argv[0], out_path);
}
