// Chaos test: randomized crash/restart injection (data sources and the
// middleware) under a concurrent bank-transfer workload, followed by
// §V-A recovery. Invariants checked after the dust settles:
//   * the global balance sum is conserved (atomicity across failures),
//   * no branch remains prepared/in-doubt after recovery (AC5),
//   * no locks leak.
#include <string>

#include <gtest/gtest.h>

#include "sim_fixture.h"

namespace geotp {
namespace {

using middleware::MiddlewareConfig;
using testing_support::MiniCluster;

/// One-line repro command for the currently running (parameterized) test,
/// appended to every failing assertion of the chaos harnesses.
std::string ReproLine(uint64_t seed) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  return std::string("seed ") + std::to_string(seed) +
         " — repro: ./test_chaos --gtest_filter=" + info->test_suite_name() +
         "." + info->name();
}

class ChaosTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosTest, CrashRecoveryConservesBalances) {
  MiniCluster::Options options;
  options.dm = MiddlewareConfig::GeoTP();
  MiniCluster cluster(options);
  Rng rng(GetParam());
  constexpr int kAccounts = 16;
  constexpr int kTxns = 80;

  uint64_t tag = 1;
  int ds_crashes = 0;
  for (int i = 0; i < kTxns; ++i) {
    const int node_a = static_cast<int>(rng.NextU64(2));
    const int node_b = static_cast<int>(rng.NextU64(2));
    const uint64_t off_a = rng.NextU64(kAccounts);
    uint64_t off_b = rng.NextU64(kAccounts);
    if (node_a == node_b && off_a == off_b) off_b = (off_b + 1) % kAccounts;
    const int64_t amount = static_cast<int64_t>(rng.NextU64(50)) + 1;
    cluster.SendRound(tag, {
        MiniCluster::Write(cluster.KeyOn(node_a, off_a), -amount, true),
        MiniCluster::Write(cluster.KeyOn(node_b, off_b), amount, true),
    }, true);
    ++tag;
    cluster.RunFor(rng.NextU64(60));

    // Occasionally crash a data source mid-traffic and restart it a bit
    // later (prepared branches survive; active ones abort).
    if (rng.NextBool(0.08)) {
      const int victim = static_cast<int>(rng.NextU64(2));
      cluster.source(victim).Crash();
      cluster.RunFor(rng.NextU64(80));
      cluster.source(victim).Restart();
      ++ds_crashes;
    }
  }

  // Let in-flight work settle; commit whatever produced responses.
  std::vector<bool> commit_sent(tag, false);
  for (int pass = 0; pass < 4; ++pass) {
    cluster.RunFor(8000);
    for (uint64_t t = 1; t < tag; ++t) {
      auto& txn = cluster.txn(t);
      if (!commit_sent[t] && !txn.has_result && !txn.round_responses.empty()) {
        cluster.SendCommit(t);
        commit_sent[t] = true;
      }
    }
  }
  cluster.RunFor(8000);

  // §V-A recovery pass: crash + restart the DM so every in-doubt branch
  // is resolved from the decision log.
  cluster.dm().Crash();
  cluster.dm().Restart(cluster.source_ptrs());
  cluster.RunFor(5000);

  // Invariants.
  int64_t sum = 0;
  for (int node = 0; node < 2; ++node) {
    for (uint64_t off = 0; off < kAccounts; ++off) {
      auto rec =
          cluster.source(node).engine().store().Get(cluster.KeyOn(node, off));
      if (rec) sum += rec->value;
    }
  }
  EXPECT_EQ(sum, 0) << "seed " << GetParam() << " (" << ds_crashes
                    << " source crashes injected)";
  EXPECT_TRUE(cluster.source(0).engine().PreparedXids().empty());
  EXPECT_TRUE(cluster.source(1).engine().PreparedXids().empty());
  EXPECT_EQ(cluster.source(0).engine().ActiveCount(), 0u);
  EXPECT_EQ(cluster.source(1).engine().ActiveCount(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

// Replicated chaos: every data source is a 3-replica group; crashes hit
// the group's *current leader* and stay down long enough to force an
// election, then restart and rejoin as followers. The workload must keep
// committing through failovers and conserve the global balance sum over
// the surviving leaders' committed state.
class ReplicatedChaosTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReplicatedChaosTest, LeaderCrashFailoverConservesBalances) {
  MiniCluster::Options options;
  options.dm = MiddlewareConfig::GeoTP();
  options.replication_factor = 3;
  MiniCluster cluster(options);
  Rng rng(GetParam());
  constexpr int kAccounts = 16;
  constexpr int kTxns = 60;

  uint64_t tag = 1;
  int leader_crashes = 0;
  for (int i = 0; i < kTxns; ++i) {
    const int node_a = static_cast<int>(rng.NextU64(2));
    const int node_b = static_cast<int>(rng.NextU64(2));
    const uint64_t off_a = rng.NextU64(kAccounts);
    uint64_t off_b = rng.NextU64(kAccounts);
    if (node_a == node_b && off_a == off_b) off_b = (off_b + 1) % kAccounts;
    const int64_t amount = static_cast<int64_t>(rng.NextU64(50)) + 1;
    cluster.SendRound(tag, {
        MiniCluster::Write(cluster.KeyOn(node_a, off_a), -amount, true),
        MiniCluster::Write(cluster.KeyOn(node_b, off_b), amount, true),
    }, true);
    ++tag;
    cluster.RunFor(rng.NextU64(60));

    // Occasionally crash a group's current leader; keep it down past the
    // election timeout so a follower takes over, then rejoin it.
    if (rng.NextBool(0.06)) {
      const int group = static_cast<int>(rng.NextU64(2));
      auto* leader = cluster.leader_of(group);
      if (leader != nullptr) {
        leader->Crash();
        cluster.RunFor(300 + rng.NextU64(300));
        leader->Restart();
        ++leader_crashes;
      }
    }
  }

  // Let in-flight work settle; commit whatever produced responses.
  std::vector<bool> commit_sent(tag, false);
  for (int pass = 0; pass < 4; ++pass) {
    cluster.RunFor(8000);
    for (uint64_t t = 1; t < tag; ++t) {
      auto& txn = cluster.txn(t);
      if (!commit_sent[t] && !txn.has_result && !txn.round_responses.empty()) {
        cluster.SendCommit(t);
        commit_sent[t] = true;
      }
    }
  }
  cluster.RunFor(8000);

  // Invariants over the current leaders' committed state.
  int64_t sum = 0;
  for (int group = 0; group < 2; ++group) {
    auto* leader = cluster.leader_of(group);
    ASSERT_NE(leader, nullptr) << "group " << group << " has no leader";
    for (uint64_t off = 0; off < kAccounts; ++off) {
      auto rec = leader->engine().store().Get(cluster.KeyOn(group, off));
      if (rec) sum += rec->value;
    }
    EXPECT_TRUE(leader->engine().PreparedXids().empty())
        << "group " << group << " leader " << leader->id();
    EXPECT_EQ(leader->engine().ActiveCount(), 0u)
        << "group " << group << " leader " << leader->id();
  }
  EXPECT_EQ(sum, 0) << "seed " << GetParam() << " (" << leader_crashes
                    << " leader crashes injected)";
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplicatedChaosTest,
                         ::testing::Values(3, 11, 17, 29));

// Group-commit chaos: same replicated leader-crash schedule, but with a
// wide WAL batching window at every replica, so crashes regularly land
// while multiple transactions sit in one open (un-flushed) batch. The
// balance sum must still be conserved: losing a batch may abort
// transactions but can never tear one.
class BatchedChaosTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BatchedChaosTest, BatchingPlusFailoverConservesBalances) {
  MiniCluster::Options options;
  options.dm = MiddlewareConfig::GeoTP();
  options.replication_factor = 3;
  options.group_commit.max_batch_delay = 400;  // wide open-batch window
  options.group_commit.max_batch_size = 8;
  MiniCluster cluster(options);
  Rng rng(GetParam());
  constexpr int kAccounts = 16;
  constexpr int kTxns = 60;

  uint64_t tag = 1;
  int leader_crashes = 0;
  for (int i = 0; i < kTxns; ++i) {
    const int node_a = static_cast<int>(rng.NextU64(2));
    const int node_b = static_cast<int>(rng.NextU64(2));
    const uint64_t off_a = rng.NextU64(kAccounts);
    uint64_t off_b = rng.NextU64(kAccounts);
    if (node_a == node_b && off_a == off_b) off_b = (off_b + 1) % kAccounts;
    const int64_t amount = static_cast<int64_t>(rng.NextU64(50)) + 1;
    cluster.SendRound(tag, {
        MiniCluster::Write(cluster.KeyOn(node_a, off_a), -amount, true),
        MiniCluster::Write(cluster.KeyOn(node_b, off_b), amount, true),
    }, true);
    ++tag;
    cluster.RunFor(rng.NextU64(50));

    if (rng.NextBool(0.08)) {
      const int group = static_cast<int>(rng.NextU64(2));
      auto* leader = cluster.leader_of(group);
      if (leader != nullptr) {
        leader->Crash();
        cluster.RunFor(300 + rng.NextU64(300));
        leader->Restart();
        ++leader_crashes;
      }
    }
  }

  std::vector<bool> commit_sent(tag, false);
  for (int pass = 0; pass < 4; ++pass) {
    cluster.RunFor(8000);
    for (uint64_t t = 1; t < tag; ++t) {
      auto& txn = cluster.txn(t);
      if (!commit_sent[t] && !txn.has_result && !txn.round_responses.empty()) {
        cluster.SendCommit(t);
        commit_sent[t] = true;
      }
    }
  }
  cluster.RunFor(8000);

  int64_t sum = 0;
  for (int group = 0; group < 2; ++group) {
    auto* leader = cluster.leader_of(group);
    ASSERT_NE(leader, nullptr) << "group " << group << " has no leader";
    for (uint64_t off = 0; off < kAccounts; ++off) {
      auto rec = leader->engine().store().Get(cluster.KeyOn(group, off));
      if (rec) sum += rec->value;
    }
    EXPECT_TRUE(leader->engine().PreparedXids().empty())
        << "group " << group << " leader " << leader->id();
    EXPECT_EQ(leader->engine().ActiveCount(), 0u)
        << "group " << group << " leader " << leader->id();
  }
  EXPECT_EQ(sum, 0) << "seed " << GetParam() << " (" << leader_crashes
                    << " leader crashes injected)";
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchedChaosTest,
                         ::testing::Values(7, 19, 42));

// ---------------------------------------------------------------------------
// Shard chaos: a deterministic seeded fuzzer interleaving splits, merges,
// balancer migrations, and replica-leader crashes over live skewed
// (mirrored-zipf-style) transfer traffic through two DMs. Invariants:
//   * the shard map stays an exact partition of the key space at every
//     event step (no gaps, no overlaps),
//   * after the dust settles every DM's and data source's shard map
//     converges to the balancer's (anti-entropy included),
//   * no committed write is lost: the global balance sum over the
//     authoritative owners is conserved,
//   * no branch stays prepared/active on any current leader.
// A failing seed prints a one-line repro command.
// ---------------------------------------------------------------------------

class ShardChaosTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ShardChaosTest, SplitMergeMigrateCrashConvergesAndConservesBalances) {
  const uint64_t seed = GetParam();
  const std::string repro = ReproLine(seed);

  MiniCluster::Options options;
  options.num_data_sources = 2;
  options.rtts_ms = {10.0, 100.0};
  options.replication_factor = 3;
  options.num_middlewares = 2;
  options.sharding = true;
  options.chunks_per_source = 4;
  options.dm = MiddlewareConfig::GeoTP();
  options.dm.balancer.enabled = true;
  options.dm.balancer.interval = MsToMicros(150);
  options.dm.balancer.min_heat = 3;
  options.dm.balancer.min_rtt_gain = MsToMicros(40);
  options.dm.balancer.migration_timeout = SecToMicros(3);
  options.dm.balancer.range_cooldown = SecToMicros(2);
  options.dm.balancer.max_concurrent = 2;
  options.dm.balancer.split_min_keys = 4;
  options.dm.balancer.merge_cold_ticks = 8;
  MiniCluster cluster(options);
  Rng rng(0x5EED0000 + seed);

  constexpr int kAccounts = 24;  // per source
  constexpr int kTxns = 50;
  const NodeId dm2 = 2 + options.num_data_sources * options.replication_factor;
  sharding::ShardBalancer* balancer = cluster.dm().balancer();
  ASSERT_NE(balancer, nullptr) << repro;

  // Zipf-style skew: most traffic hits the low offsets of the FAR source
  // (the placement the balancer wants to change), with a uniform tail.
  auto skewed_offset = [&rng]() {
    const double u = rng.NextDouble();
    return static_cast<uint64_t>(static_cast<double>(kAccounts) *
                                 (u * u * u));
  };

  uint64_t tag = 1;
  std::vector<bool> commit_sent(kTxns + 1, false);
  // Client-side ledger of submitted transfers: committed ones define the
  // expected value of every key at the end.
  struct Leg {
    RecordKey a;
    RecordKey b;
    int64_t amount = 0;
  };
  std::map<uint64_t, Leg> ledger;
  int leader_crashes = 0, force_splits = 0, force_merges = 0;
  for (int i = 0; i < kTxns; ++i) {
    // Transfer between two keys; the skewed leg usually lives on the far
    // source, the other leg anywhere — so splits, migrations, and fences
    // all see cross-shard transactions.
    const uint64_t off_a = skewed_offset();
    const int node_b = static_cast<int>(rng.NextU64(2));
    uint64_t off_b = rng.NextU64(kAccounts);
    if (node_b == 1 && off_a == off_b) off_b = (off_b + 1) % kAccounts;
    const int64_t amount = static_cast<int64_t>(rng.NextU64(50)) + 1;
    const NodeId coordinator = rng.NextBool(0.3) ? dm2 : NodeId{1};
    cluster.SendRound(tag, {
        MiniCluster::Write(cluster.KeyOn(1, off_a), -amount, true),
        MiniCluster::Write(cluster.KeyOn(node_b, off_b), amount, true),
    }, true, coordinator);
    ledger[tag] = Leg{cluster.KeyOn(1, off_a), cluster.KeyOn(node_b, off_b),
                      amount};
    ++tag;
    cluster.RunFor(rng.NextU64(60));

    // Clients usually commit promptly (so prepared branches drain and
    // migrations can cut over); a few stragglers stay parked across
    // crashes and fences until the settle phase.
    for (uint64_t t = 1; t < tag; ++t) {
      auto& txn = cluster.txn(t);
      if (!commit_sent[t] && !txn.has_result && !txn.round_responses.empty() &&
          rng.NextBool(0.85)) {
        cluster.SendCommit(t);
        commit_sent[t] = true;
      }
    }

    if (rng.NextBool(0.06)) {
      const int group = static_cast<int>(rng.NextU64(2));
      auto* leader = cluster.leader_of(group);
      if (leader != nullptr) {
        leader->Crash();
        cluster.RunFor(300 + rng.NextU64(300));
        leader->Restart();
        ++leader_crashes;
      }
    }
    if (rng.NextBool(0.08)) {
      const uint64_t at = rng.NextU64(2 * options.keys_per_node);
      if (balancer->ForceSplit(options.table, at)) ++force_splits;
    }
    if (rng.NextBool(0.06)) {
      const uint64_t at = rng.NextU64(2 * options.keys_per_node);
      if (balancer->ForceMerge(options.table, at)) ++force_merges;
    }

    // Structural invariant, every event step: the authoritative map is an
    // exact partition — no key ever routes nowhere or twice.
    ASSERT_TRUE(cluster.dm().catalog().shard_map().IsPartition(options.table))
        << repro << " (step " << i << ")";
  }

  // Settle: commit whatever produced responses, keep driving until the
  // in-flight work (including migrations and elections) drains.
  for (int pass = 0; pass < 4; ++pass) {
    cluster.RunFor(8000);
    for (uint64_t t = 1; t < tag; ++t) {
      auto& txn = cluster.txn(t);
      if (!commit_sent[t] && !txn.has_result && !txn.round_responses.empty()) {
        cluster.SendCommit(t);
        commit_sent[t] = true;
      }
    }
  }
  // Convergence horizon: ping-piggybacked anti-entropy repairs any actor
  // that missed a publish within a few ping round trips, with NO traffic.
  cluster.RunFor(8000);

  // --- Invariant: every actor's shard map converged to the balancer's ---
  const sharding::ShardMap& authority = cluster.dm().catalog().shard_map();
  ASSERT_TRUE(authority.IsPartition(options.table)) << repro;
  EXPECT_EQ(cluster.dm(1).catalog().ShardEpoch(), authority.epoch()) << repro;
  auto expect_same_map = [&](const sharding::ShardMap& map,
                             const std::string& who) {
    if (map.empty() && authority.epoch() == 0) return;  // nothing published
    ASSERT_EQ(map.size(), authority.size()) << repro << " at " << who;
    for (size_t r = 0; r < authority.size(); ++r) {
      const sharding::ShardRange& a = authority.ranges()[r];
      const sharding::ShardRange& b = map.ranges()[r];
      EXPECT_TRUE(a.SameSpan(b) && a.owner == b.owner &&
                  a.version == b.version)
          << repro << " at " << who << ": " << a.ToString() << " vs "
          << b.ToString();
    }
  };
  expect_same_map(cluster.dm(1).catalog().shard_map(), "dm2");
  for (auto* src : cluster.source_ptrs()) {
    ASSERT_FALSE(src->crashed()) << repro;
    expect_same_map(src->migrator().map(),
                    "source " + std::to_string(src->id()));
  }

  // --- Invariant: no committed write lost, none resurrected. Per key,
  // the value at its authoritative owner must equal the client-side
  // ledger of committed transfers — stronger than sum conservation (which
  // compensating errors could fake), and it names the torn key on
  // failure. Every transaction must also have settled to a result.
  std::map<uint64_t, int64_t> expected;
  for (uint64_t t = 1; t < tag; ++t) {
    auto& txn = cluster.txn(t);
    ASSERT_TRUE(txn.has_result) << repro << " (txn " << t << " unresolved)";
    if (!txn.result.ok()) continue;
    expected[ledger[t].a.key] -= ledger[t].amount;
    expected[ledger[t].b.key] += ledger[t].amount;
  }
  int64_t sum = 0;
  for (int node = 0; node < 2; ++node) {
    for (uint64_t off = 0; off < kAccounts; ++off) {
      const RecordKey key = cluster.KeyOn(node, off);
      const NodeId owner = cluster.dm().catalog().Route(key);
      ASSERT_TRUE(owner == 2 || owner == 3) << repro;
      auto* leader = cluster.leader_of(static_cast<int>(owner) - 2);
      ASSERT_NE(leader, nullptr) << repro << " (group " << owner << ")";
      auto rec = leader->engine().store().Get(key);
      const int64_t got = rec ? rec->value : 0;
      EXPECT_EQ(got, expected[key.key])
          << repro << " (key " << key.key << " at owner " << owner << ")";
      sum += got;
    }
  }
  EXPECT_EQ(sum, 0) << repro << " (" << leader_crashes << " leader crashes, "
                    << force_splits << " splits, " << force_merges
                    << " merges, "
                    << balancer->stats().migrations_completed
                    << " migrations completed)";

  // --- Invariant: nothing left prepared/active on any current leader ---
  for (int group = 0; group < 2; ++group) {
    auto* leader = cluster.leader_of(group);
    ASSERT_NE(leader, nullptr) << repro;
    EXPECT_TRUE(leader->engine().PreparedXids().empty())
        << repro << " (group " << group << ")";
    EXPECT_EQ(leader->engine().ActiveCount(), 0u)
        << repro << " (group " << group << ")";
  }

  // One-line schedule summary per seed (lands in the CI log artifact; on
  // a red seed the repro command follows).
  std::fprintf(stderr,
               "[shard-chaos] seed %llu: %d leader crashes, %d forced splits, "
               "%d forced merges, %llu balancer splits, %llu merges, "
               "%llu migrations completed, %llu cancelled, epoch %llu\n",
               static_cast<unsigned long long>(seed), leader_crashes,
               force_splits, force_merges,
               static_cast<unsigned long long>(balancer->stats().splits),
               static_cast<unsigned long long>(balancer->stats().merges),
               static_cast<unsigned long long>(
                   balancer->stats().migrations_completed),
               static_cast<unsigned long long>(
                   balancer->stats().migrations_cancelled),
               static_cast<unsigned long long>(authority.epoch()));
  if (::testing::Test::HasFailure()) {
    std::fprintf(stderr, "[shard-chaos] FAILED %s\n", repro.c_str());
  }
}

// 20 fixed seeds — the set CI runs under ASan+UBSan.
INSTANTIATE_TEST_SUITE_P(Seeds, ShardChaosTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12, 13, 14, 15, 16, 17, 18, 19,
                                           20));

// ---------------------------------------------------------------------------
// Streaming-migration chaos: the same split/merge/migration/leader-crash
// fuzzer, but every source group is preloaded with enough resident records
// that migrations stream many bounded chunks (small chunk size, tight
// credit window), so injected leader crashes regularly land MID-STREAM —
// on the source (the promoted leader must abort or resume from the
// replicated Begin/Cutover records) and on the destination (the stream
// stalls and the balancer's timeout cancels cleanly). Invariants are the
// ShardChaosTest set: exact partition at every step, map convergence, a
// per-key committed ledger (no write lost, none resurrected), and nothing
// left prepared/active on any current leader.
// ---------------------------------------------------------------------------

class StreamingShardChaosTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StreamingShardChaosTest, MidStreamCrashesResumeOrAbortFromTheLog) {
  const uint64_t seed = GetParam();
  const std::string repro = ReproLine(seed);

  MiniCluster::Options options;
  options.num_data_sources = 2;
  options.rtts_ms = {10.0, 100.0};
  options.replication_factor = 3;
  options.num_middlewares = 2;
  options.sharding = true;
  options.chunks_per_source = 4;
  options.dm = MiddlewareConfig::GeoTP();
  options.dm.balancer.enabled = true;
  options.dm.balancer.interval = MsToMicros(150);
  options.dm.balancer.min_heat = 3;
  options.dm.balancer.min_rtt_gain = MsToMicros(40);
  options.dm.balancer.migration_timeout = SecToMicros(3);
  options.dm.balancer.range_cooldown = SecToMicros(2);
  options.dm.balancer.max_concurrent = 2;
  // Split disabled on purpose: the balancer would otherwise carve the
  // tiny hot head out and migrate a 1-chunk child, and the injected
  // crashes would never land mid-stream. Whole chunk-ranges must move.
  options.dm.balancer.split_enabled = false;
  options.dm.balancer.merge_cold_ticks = 8;
  // Long streams: 250 resident records per chunk-range, 16-record
  // chunks, a 2-chunk window — ~16 chunks per migration, in flight for
  // hundreds of virtual milliseconds, so the 6% per-step crash hazard
  // hits plenty of them mid-stream across the seed set.
  options.ds_tweak = [](datasource::DataSourceConfig* ds) {
    ds->migration_chunk_records = 16;
    ds->migration_stream_window = 2;
    ds->migration_resend_timeout = MsToMicros(400);
  };
  MiniCluster cluster(options);
  cluster.PreloadRange(0, 1000);
  cluster.PreloadRange(1, 1000);
  Rng rng(0x57E40000 + seed);

  constexpr int kAccounts = 24;  // per source
  constexpr int kTxns = 50;
  const NodeId dm2 = 2 + options.num_data_sources * options.replication_factor;
  sharding::ShardBalancer* balancer = cluster.dm().balancer();
  ASSERT_NE(balancer, nullptr) << repro;

  auto skewed_offset = [&rng]() {
    const double u = rng.NextDouble();
    return static_cast<uint64_t>(static_cast<double>(kAccounts) *
                                 (u * u * u));
  };

  uint64_t tag = 1;
  std::vector<bool> commit_sent(kTxns + 1, false);
  struct Leg {
    RecordKey a;
    RecordKey b;
    int64_t amount = 0;
  };
  std::map<uint64_t, Leg> ledger;
  int leader_crashes = 0, mid_stream_crashes = 0;
  for (int i = 0; i < kTxns; ++i) {
    const uint64_t off_a = skewed_offset();
    const int node_b = static_cast<int>(rng.NextU64(2));
    uint64_t off_b = rng.NextU64(kAccounts);
    if (node_b == 1 && off_a == off_b) off_b = (off_b + 1) % kAccounts;
    const int64_t amount = static_cast<int64_t>(rng.NextU64(50)) + 1;
    const NodeId coordinator = rng.NextBool(0.3) ? dm2 : NodeId{1};
    cluster.SendRound(tag, {
        MiniCluster::Write(cluster.KeyOn(1, off_a), -amount, true),
        MiniCluster::Write(cluster.KeyOn(node_b, off_b), amount, true),
    }, true, coordinator);
    ledger[tag] = Leg{cluster.KeyOn(1, off_a), cluster.KeyOn(node_b, off_b),
                      amount};
    ++tag;
    cluster.RunFor(rng.NextU64(60));

    for (uint64_t t = 1; t < tag; ++t) {
      auto& txn = cluster.txn(t);
      if (!commit_sent[t] && !txn.has_result && !txn.round_responses.empty() &&
          rng.NextBool(0.85)) {
        cluster.SendCommit(t);
        commit_sent[t] = true;
      }
    }

    if (rng.NextBool(0.06)) {
      const int group = static_cast<int>(rng.NextU64(2));
      auto* leader = cluster.leader_of(group);
      if (leader != nullptr) {
        if (balancer->InFlight() > 0) ++mid_stream_crashes;
        leader->Crash();
        cluster.RunFor(300 + rng.NextU64(300));
        leader->Restart();
        ++leader_crashes;
      }
    }

    ASSERT_TRUE(cluster.dm().catalog().shard_map().IsPartition(options.table))
        << repro << " (step " << i << ")";
  }

  // Settle: commit whatever produced responses, keep driving until the
  // in-flight work (streams, elections, balancer retries) drains.
  for (int pass = 0; pass < 4; ++pass) {
    cluster.RunFor(8000);
    for (uint64_t t = 1; t < tag; ++t) {
      auto& txn = cluster.txn(t);
      if (!commit_sent[t] && !txn.has_result && !txn.round_responses.empty()) {
        cluster.SendCommit(t);
        commit_sent[t] = true;
      }
    }
  }
  cluster.RunFor(8000);

  // --- Invariant: every actor's shard map converged to the balancer's ---
  const sharding::ShardMap& authority = cluster.dm().catalog().shard_map();
  ASSERT_TRUE(authority.IsPartition(options.table)) << repro;
  auto expect_same_map = [&](const sharding::ShardMap& map,
                             const std::string& who) {
    if (map.empty() && authority.epoch() == 0) return;
    ASSERT_EQ(map.size(), authority.size()) << repro << " at " << who;
    for (size_t r = 0; r < authority.size(); ++r) {
      const sharding::ShardRange& a = authority.ranges()[r];
      const sharding::ShardRange& b = map.ranges()[r];
      EXPECT_TRUE(a.SameSpan(b) && a.owner == b.owner &&
                  a.version == b.version)
          << repro << " at " << who << ": " << a.ToString() << " vs "
          << b.ToString();
    }
  };
  expect_same_map(cluster.dm(1).catalog().shard_map(), "dm2");
  for (auto* src : cluster.source_ptrs()) {
    ASSERT_FALSE(src->crashed()) << repro;
    expect_same_map(src->migrator().map(),
                    "source " + std::to_string(src->id()));
  }

  // --- Invariant: no committed write lost, none resurrected ---
  std::map<uint64_t, int64_t> expected;
  for (uint64_t t = 1; t < tag; ++t) {
    auto& txn = cluster.txn(t);
    ASSERT_TRUE(txn.has_result) << repro << " (txn " << t << " unresolved)";
    if (!txn.result.ok()) continue;
    expected[ledger[t].a.key] -= ledger[t].amount;
    expected[ledger[t].b.key] += ledger[t].amount;
  }
  int64_t sum = 0;
  for (int node = 0; node < 2; ++node) {
    for (uint64_t off = 0; off < kAccounts; ++off) {
      const RecordKey key = cluster.KeyOn(node, off);
      const NodeId owner = cluster.dm().catalog().Route(key);
      ASSERT_TRUE(owner == 2 || owner == 3) << repro;
      auto* leader = cluster.leader_of(static_cast<int>(owner) - 2);
      ASSERT_NE(leader, nullptr) << repro << " (group " << owner << ")";
      auto rec = leader->engine().store().Get(key);
      const int64_t got = rec ? rec->value : 0;
      EXPECT_EQ(got, expected[key.key])
          << repro << " (key " << key.key << " at owner " << owner << ")";
      sum += got;
    }
  }
  EXPECT_EQ(sum, 0) << repro;

  // --- Invariant: nothing left prepared/active on any current leader ---
  uint64_t resumes = 0, log_aborts = 0, chunks = 0;
  for (int group = 0; group < 2; ++group) {
    auto* leader = cluster.leader_of(group);
    ASSERT_NE(leader, nullptr) << repro;
    EXPECT_TRUE(leader->engine().PreparedXids().empty())
        << repro << " (group " << group << ")";
    EXPECT_EQ(leader->engine().ActiveCount(), 0u)
        << repro << " (group " << group << ")";
  }
  for (auto* src : cluster.source_ptrs()) {
    resumes += src->migrator().stats().migration_resumes;
    log_aborts += src->migrator().stats().migration_aborts_from_log;
    chunks += src->migrator().stats().snapshot_chunks_sent;
  }

  std::fprintf(stderr,
               "[stream-chaos] seed %llu: %d leader crashes (%d with a "
               "migration in flight), %llu chunks streamed, %llu log "
               "resumes, %llu log aborts, %llu migrations completed, "
               "%llu cancelled, epoch %llu\n",
               static_cast<unsigned long long>(seed), leader_crashes,
               mid_stream_crashes, static_cast<unsigned long long>(chunks),
               static_cast<unsigned long long>(resumes),
               static_cast<unsigned long long>(log_aborts),
               static_cast<unsigned long long>(
                   balancer->stats().migrations_completed),
               static_cast<unsigned long long>(
                   balancer->stats().migrations_cancelled),
               static_cast<unsigned long long>(authority.epoch()));
  if (::testing::Test::HasFailure()) {
    std::fprintf(stderr, "[stream-chaos] FAILED %s\n", repro.c_str());
  }
}

// 10 fixed seeds — run with the shard set in the CI chaos step.
INSTANTIATE_TEST_SUITE_P(Seeds, StreamingShardChaosTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

// ---------------------------------------------------------------------------
// Directed destination-failover chaos: the same streaming setup, but the
// injected crash specifically kills the DESTINATION group's leader while a
// migration is in flight (at a seed-randomized point mid-stream). The
// balancer must detect the destination epoch change, re-point the
// migration at the promoted leader, and the source must resume by hash
// decline — the new leader's replicated ingest journal declines the
// quorum-applied chunk prefix instead of re-pulling the whole range (and
// instead of the old behavior, waiting out the migration-timeout cancel).
// Invariants are the StreamingShardChaosTest set, plus: the re-point
// happened, chunks were declined, and a migration still completed.
// ---------------------------------------------------------------------------

class DestFailoverStreamingShardChaosTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DestFailoverStreamingShardChaosTest, ResumesViaHashDeclineReoffer) {
  const uint64_t seed = GetParam();
  const std::string repro = ReproLine(seed);

  MiniCluster::Options options;
  options.num_data_sources = 2;
  options.rtts_ms = {10.0, 100.0};
  options.replication_factor = 3;
  options.num_middlewares = 2;
  options.sharding = true;
  options.chunks_per_source = 4;
  options.dm = MiddlewareConfig::GeoTP();
  options.dm.balancer.enabled = true;
  options.dm.balancer.interval = MsToMicros(150);
  options.dm.balancer.min_heat = 3;
  options.dm.balancer.min_rtt_gain = MsToMicros(40);
  // Generous: the whole point is that resume beats the timeout cancel.
  options.dm.balancer.migration_timeout = SecToMicros(6);
  options.dm.balancer.range_cooldown = SecToMicros(2);
  options.dm.balancer.max_concurrent = 1;
  options.dm.balancer.split_enabled = false;
  // Long streams (250 records, 16-record chunks, 2-chunk window) with a
  // slow bulk ingest, so the directed crash always lands mid-stream with
  // a quorum-applied prefix for the promoted leader to decline.
  options.ds_tweak = [](datasource::DataSourceConfig* ds) {
    ds->migration_chunk_records = 16;
    ds->migration_stream_window = 2;
    ds->migration_resend_timeout = MsToMicros(400);
    ds->migration_apply_cost = 2000;
  };
  MiniCluster cluster(options);
  cluster.PreloadRange(0, 1000);
  cluster.PreloadRange(1, 1000);
  Rng rng(0xDE57F000 + seed);

  constexpr int kAccounts = 24;  // per source
  constexpr int kTxns = 40;
  sharding::ShardBalancer* balancer = cluster.dm().balancer();
  ASSERT_NE(balancer, nullptr) << repro;

  // Heat concentrates on group 1's low keys (the far source at 100 ms
  // RTT), so the balancer migrates its hot chunk toward group 0 — the
  // crash target below is therefore always the destination group.
  auto skewed_offset = [&rng]() {
    const double u = rng.NextDouble();
    return static_cast<uint64_t>(static_cast<double>(kAccounts) *
                                 (u * u * u));
  };

  uint64_t tag = 1;
  std::vector<bool> commit_sent(kTxns + 1, false);
  struct Leg {
    RecordKey a;
    RecordKey b;
    int64_t amount = 0;
  };
  std::map<uint64_t, Leg> ledger;
  bool dest_crashed = false;
  for (int i = 0; i < kTxns; ++i) {
    const uint64_t off_a = skewed_offset();
    const int node_b = static_cast<int>(rng.NextU64(2));
    uint64_t off_b = rng.NextU64(kAccounts);
    if (node_b == 1 && off_a == off_b) off_b = (off_b + 1) % kAccounts;
    const int64_t amount = static_cast<int64_t>(rng.NextU64(50)) + 1;
    cluster.SendRound(tag, {
        MiniCluster::Write(cluster.KeyOn(1, off_a), -amount, true),
        MiniCluster::Write(cluster.KeyOn(node_b, off_b), amount, true),
    }, true);
    ledger[tag] = Leg{cluster.KeyOn(1, off_a), cluster.KeyOn(node_b, off_b),
                      amount};
    ++tag;
    cluster.RunFor(rng.NextU64(60));

    for (uint64_t t = 1; t < tag; ++t) {
      auto& txn = cluster.txn(t);
      if (!commit_sent[t] && !txn.has_result && !txn.round_responses.empty() &&
          rng.NextBool(0.85)) {
        cluster.SendCommit(t);
        commit_sent[t] = true;
      }
    }

    // The directed fault: once, the first time a migration is in flight,
    // kill the destination leader a random slice into the stream — but
    // only after a couple of chunks are quorum-applied there (chunk acks
    // follow quorum replication), so the promoted leader's rebuilt ingest
    // journal has a prefix to decline.
    if (!dest_crashed && balancer->InFlight() > 0) {
      for (int spin = 0; spin < 40; ++spin) {
        if (cluster.source(0).migrator().stats().snapshot_chunks_applied >= 2) {
          break;
        }
        cluster.RunFor(25);
      }
      cluster.RunFor(50 + rng.NextU64(150));
      auto* dest_leader = cluster.leader_of(0);
      if (dest_leader != nullptr && balancer->InFlight() > 0) {
        dest_leader->Crash();
        dest_crashed = true;
        cluster.RunFor(400 + rng.NextU64(300));
        dest_leader->Restart();
      }
    }

    ASSERT_TRUE(cluster.dm().catalog().shard_map().IsPartition(options.table))
        << repro << " (step " << i << ")";
  }
  ASSERT_TRUE(dest_crashed) << repro << " (no migration ever started)";

  // Settle: commit stragglers, drain streams / elections / re-points.
  for (int pass = 0; pass < 4; ++pass) {
    cluster.RunFor(8000);
    for (uint64_t t = 1; t < tag; ++t) {
      auto& txn = cluster.txn(t);
      if (!commit_sent[t] && !txn.has_result && !txn.round_responses.empty()) {
        cluster.SendCommit(t);
        commit_sent[t] = true;
      }
    }
  }
  cluster.RunFor(8000);

  // --- The directed scenario actually exercised the resume path ---
  EXPECT_GE(balancer->stats().migrations_repointed, 1u) << repro;
  uint64_t declined = 0, offers = 0;
  for (auto* src : cluster.source_ptrs()) {
    declined += src->migrator().stats().chunks_declined;
    offers += src->migrator().stats().seed_offers_sent;
  }
  EXPECT_GE(offers, 1u) << repro;
  EXPECT_GT(declined, 0u) << repro;
  EXPECT_GE(balancer->stats().migrations_completed, 1u) << repro;

  // --- Invariant: every actor's shard map converged to the balancer's ---
  const sharding::ShardMap& authority = cluster.dm().catalog().shard_map();
  ASSERT_TRUE(authority.IsPartition(options.table)) << repro;
  auto expect_same_map = [&](const sharding::ShardMap& map,
                             const std::string& who) {
    if (map.empty() && authority.epoch() == 0) return;
    ASSERT_EQ(map.size(), authority.size()) << repro << " at " << who;
    for (size_t r = 0; r < authority.size(); ++r) {
      const sharding::ShardRange& a = authority.ranges()[r];
      const sharding::ShardRange& b = map.ranges()[r];
      EXPECT_TRUE(a.SameSpan(b) && a.owner == b.owner &&
                  a.version == b.version)
          << repro << " at " << who << ": " << a.ToString() << " vs "
          << b.ToString();
    }
  };
  expect_same_map(cluster.dm(1).catalog().shard_map(), "dm2");
  for (auto* src : cluster.source_ptrs()) {
    ASSERT_FALSE(src->crashed()) << repro;
    expect_same_map(src->migrator().map(),
                    "source " + std::to_string(src->id()));
  }

  // --- Invariant: no committed write lost, none resurrected ---
  std::map<uint64_t, int64_t> expected;
  for (uint64_t t = 1; t < tag; ++t) {
    auto& txn = cluster.txn(t);
    ASSERT_TRUE(txn.has_result) << repro << " (txn " << t << " unresolved)";
    if (!txn.result.ok()) continue;
    expected[ledger[t].a.key] -= ledger[t].amount;
    expected[ledger[t].b.key] += ledger[t].amount;
  }
  int64_t sum = 0;
  for (int node = 0; node < 2; ++node) {
    for (uint64_t off = 0; off < kAccounts; ++off) {
      const RecordKey key = cluster.KeyOn(node, off);
      const NodeId owner = cluster.dm().catalog().Route(key);
      ASSERT_TRUE(owner == 2 || owner == 3) << repro;
      auto* leader = cluster.leader_of(static_cast<int>(owner) - 2);
      ASSERT_NE(leader, nullptr) << repro << " (group " << owner << ")";
      auto rec = leader->engine().store().Get(key);
      const int64_t got = rec ? rec->value : 0;
      EXPECT_EQ(got, expected[key.key])
          << repro << " (key " << key.key << " at owner " << owner << ")";
      sum += got;
    }
  }
  EXPECT_EQ(sum, 0) << repro;

  // --- Invariant: nothing left prepared/active on any current leader ---
  for (int group = 0; group < 2; ++group) {
    auto* leader = cluster.leader_of(group);
    ASSERT_NE(leader, nullptr) << repro;
    EXPECT_TRUE(leader->engine().PreparedXids().empty())
        << repro << " (group " << group << ")";
    EXPECT_EQ(leader->engine().ActiveCount(), 0u)
        << repro << " (group " << group << ")";
  }

  std::fprintf(stderr,
               "[dest-failover-chaos] seed %llu: %llu seed offers, %llu "
               "chunks declined, %llu re-points, %llu migrations completed, "
               "%llu cancelled, epoch %llu\n",
               static_cast<unsigned long long>(seed),
               static_cast<unsigned long long>(offers),
               static_cast<unsigned long long>(declined),
               static_cast<unsigned long long>(
                   balancer->stats().migrations_repointed),
               static_cast<unsigned long long>(
                   balancer->stats().migrations_completed),
               static_cast<unsigned long long>(
                   balancer->stats().migrations_cancelled),
               static_cast<unsigned long long>(authority.epoch()));
  if (::testing::Test::HasFailure()) {
    std::fprintf(stderr, "[dest-failover-chaos] FAILED %s\n", repro.c_str());
  }
}

// 6 fixed seeds — matched by the CI chaos step's *StreamingShardChaos*
// filter alongside the undirected streaming set.
INSTANTIATE_TEST_SUITE_P(Seeds, DestFailoverStreamingShardChaosTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace geotp
