// Chaos test: randomized crash/restart injection (data sources and the
// middleware) under a concurrent bank-transfer workload, followed by
// §V-A recovery. Invariants checked after the dust settles:
//   * the global balance sum is conserved (atomicity across failures),
//   * no branch remains prepared/in-doubt after recovery (AC5),
//   * no locks leak.
#include <gtest/gtest.h>

#include "sim_fixture.h"

namespace geotp {
namespace {

using middleware::MiddlewareConfig;
using testing_support::MiniCluster;

class ChaosTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosTest, CrashRecoveryConservesBalances) {
  MiniCluster::Options options;
  options.dm = MiddlewareConfig::GeoTP();
  MiniCluster cluster(options);
  Rng rng(GetParam());
  constexpr int kAccounts = 16;
  constexpr int kTxns = 80;

  uint64_t tag = 1;
  int ds_crashes = 0;
  for (int i = 0; i < kTxns; ++i) {
    const int node_a = static_cast<int>(rng.NextU64(2));
    const int node_b = static_cast<int>(rng.NextU64(2));
    const uint64_t off_a = rng.NextU64(kAccounts);
    uint64_t off_b = rng.NextU64(kAccounts);
    if (node_a == node_b && off_a == off_b) off_b = (off_b + 1) % kAccounts;
    const int64_t amount = static_cast<int64_t>(rng.NextU64(50)) + 1;
    cluster.SendRound(tag, {
        MiniCluster::Write(cluster.KeyOn(node_a, off_a), -amount, true),
        MiniCluster::Write(cluster.KeyOn(node_b, off_b), amount, true),
    }, true);
    ++tag;
    cluster.RunFor(rng.NextU64(60));

    // Occasionally crash a data source mid-traffic and restart it a bit
    // later (prepared branches survive; active ones abort).
    if (rng.NextBool(0.08)) {
      const int victim = static_cast<int>(rng.NextU64(2));
      cluster.source(victim).Crash();
      cluster.RunFor(rng.NextU64(80));
      cluster.source(victim).Restart();
      ++ds_crashes;
    }
  }

  // Let in-flight work settle; commit whatever produced responses.
  std::vector<bool> commit_sent(tag, false);
  for (int pass = 0; pass < 4; ++pass) {
    cluster.RunFor(8000);
    for (uint64_t t = 1; t < tag; ++t) {
      auto& txn = cluster.txn(t);
      if (!commit_sent[t] && !txn.has_result && !txn.round_responses.empty()) {
        cluster.SendCommit(t);
        commit_sent[t] = true;
      }
    }
  }
  cluster.RunFor(8000);

  // §V-A recovery pass: crash + restart the DM so every in-doubt branch
  // is resolved from the decision log.
  cluster.dm().Crash();
  cluster.dm().Restart(cluster.source_ptrs());
  cluster.RunFor(5000);

  // Invariants.
  int64_t sum = 0;
  for (int node = 0; node < 2; ++node) {
    for (uint64_t off = 0; off < kAccounts; ++off) {
      auto rec =
          cluster.source(node).engine().store().Get(cluster.KeyOn(node, off));
      if (rec) sum += rec->value;
    }
  }
  EXPECT_EQ(sum, 0) << "seed " << GetParam() << " (" << ds_crashes
                    << " source crashes injected)";
  EXPECT_TRUE(cluster.source(0).engine().PreparedXids().empty());
  EXPECT_TRUE(cluster.source(1).engine().PreparedXids().empty());
  EXPECT_EQ(cluster.source(0).engine().ActiveCount(), 0u);
  EXPECT_EQ(cluster.source(1).engine().ActiveCount(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

// Replicated chaos: every data source is a 3-replica group; crashes hit
// the group's *current leader* and stay down long enough to force an
// election, then restart and rejoin as followers. The workload must keep
// committing through failovers and conserve the global balance sum over
// the surviving leaders' committed state.
class ReplicatedChaosTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReplicatedChaosTest, LeaderCrashFailoverConservesBalances) {
  MiniCluster::Options options;
  options.dm = MiddlewareConfig::GeoTP();
  options.replication_factor = 3;
  MiniCluster cluster(options);
  Rng rng(GetParam());
  constexpr int kAccounts = 16;
  constexpr int kTxns = 60;

  uint64_t tag = 1;
  int leader_crashes = 0;
  for (int i = 0; i < kTxns; ++i) {
    const int node_a = static_cast<int>(rng.NextU64(2));
    const int node_b = static_cast<int>(rng.NextU64(2));
    const uint64_t off_a = rng.NextU64(kAccounts);
    uint64_t off_b = rng.NextU64(kAccounts);
    if (node_a == node_b && off_a == off_b) off_b = (off_b + 1) % kAccounts;
    const int64_t amount = static_cast<int64_t>(rng.NextU64(50)) + 1;
    cluster.SendRound(tag, {
        MiniCluster::Write(cluster.KeyOn(node_a, off_a), -amount, true),
        MiniCluster::Write(cluster.KeyOn(node_b, off_b), amount, true),
    }, true);
    ++tag;
    cluster.RunFor(rng.NextU64(60));

    // Occasionally crash a group's current leader; keep it down past the
    // election timeout so a follower takes over, then rejoin it.
    if (rng.NextBool(0.06)) {
      const int group = static_cast<int>(rng.NextU64(2));
      auto* leader = cluster.leader_of(group);
      if (leader != nullptr) {
        leader->Crash();
        cluster.RunFor(300 + rng.NextU64(300));
        leader->Restart();
        ++leader_crashes;
      }
    }
  }

  // Let in-flight work settle; commit whatever produced responses.
  std::vector<bool> commit_sent(tag, false);
  for (int pass = 0; pass < 4; ++pass) {
    cluster.RunFor(8000);
    for (uint64_t t = 1; t < tag; ++t) {
      auto& txn = cluster.txn(t);
      if (!commit_sent[t] && !txn.has_result && !txn.round_responses.empty()) {
        cluster.SendCommit(t);
        commit_sent[t] = true;
      }
    }
  }
  cluster.RunFor(8000);

  // Invariants over the current leaders' committed state.
  int64_t sum = 0;
  for (int group = 0; group < 2; ++group) {
    auto* leader = cluster.leader_of(group);
    ASSERT_NE(leader, nullptr) << "group " << group << " has no leader";
    for (uint64_t off = 0; off < kAccounts; ++off) {
      auto rec = leader->engine().store().Get(cluster.KeyOn(group, off));
      if (rec) sum += rec->value;
    }
    EXPECT_TRUE(leader->engine().PreparedXids().empty())
        << "group " << group << " leader " << leader->id();
    EXPECT_EQ(leader->engine().ActiveCount(), 0u)
        << "group " << group << " leader " << leader->id();
  }
  EXPECT_EQ(sum, 0) << "seed " << GetParam() << " (" << leader_crashes
                    << " leader crashes injected)";
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplicatedChaosTest,
                         ::testing::Values(3, 11, 17, 29));

// Group-commit chaos: same replicated leader-crash schedule, but with a
// wide WAL batching window at every replica, so crashes regularly land
// while multiple transactions sit in one open (un-flushed) batch. The
// balance sum must still be conserved: losing a batch may abort
// transactions but can never tear one.
class BatchedChaosTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BatchedChaosTest, BatchingPlusFailoverConservesBalances) {
  MiniCluster::Options options;
  options.dm = MiddlewareConfig::GeoTP();
  options.replication_factor = 3;
  options.group_commit.max_batch_delay = 400;  // wide open-batch window
  options.group_commit.max_batch_size = 8;
  MiniCluster cluster(options);
  Rng rng(GetParam());
  constexpr int kAccounts = 16;
  constexpr int kTxns = 60;

  uint64_t tag = 1;
  int leader_crashes = 0;
  for (int i = 0; i < kTxns; ++i) {
    const int node_a = static_cast<int>(rng.NextU64(2));
    const int node_b = static_cast<int>(rng.NextU64(2));
    const uint64_t off_a = rng.NextU64(kAccounts);
    uint64_t off_b = rng.NextU64(kAccounts);
    if (node_a == node_b && off_a == off_b) off_b = (off_b + 1) % kAccounts;
    const int64_t amount = static_cast<int64_t>(rng.NextU64(50)) + 1;
    cluster.SendRound(tag, {
        MiniCluster::Write(cluster.KeyOn(node_a, off_a), -amount, true),
        MiniCluster::Write(cluster.KeyOn(node_b, off_b), amount, true),
    }, true);
    ++tag;
    cluster.RunFor(rng.NextU64(50));

    if (rng.NextBool(0.08)) {
      const int group = static_cast<int>(rng.NextU64(2));
      auto* leader = cluster.leader_of(group);
      if (leader != nullptr) {
        leader->Crash();
        cluster.RunFor(300 + rng.NextU64(300));
        leader->Restart();
        ++leader_crashes;
      }
    }
  }

  std::vector<bool> commit_sent(tag, false);
  for (int pass = 0; pass < 4; ++pass) {
    cluster.RunFor(8000);
    for (uint64_t t = 1; t < tag; ++t) {
      auto& txn = cluster.txn(t);
      if (!commit_sent[t] && !txn.has_result && !txn.round_responses.empty()) {
        cluster.SendCommit(t);
        commit_sent[t] = true;
      }
    }
  }
  cluster.RunFor(8000);

  int64_t sum = 0;
  for (int group = 0; group < 2; ++group) {
    auto* leader = cluster.leader_of(group);
    ASSERT_NE(leader, nullptr) << "group " << group << " has no leader";
    for (uint64_t off = 0; off < kAccounts; ++off) {
      auto rec = leader->engine().store().Get(cluster.KeyOn(group, off));
      if (rec) sum += rec->value;
    }
    EXPECT_TRUE(leader->engine().PreparedXids().empty())
        << "group " << group << " leader " << leader->id();
    EXPECT_EQ(leader->engine().ActiveCount(), 0u)
        << "group " << group << " leader " << leader->id();
  }
  EXPECT_EQ(sum, 0) << "seed " << GetParam() << " (" << leader_crashes
                    << " leader crashes injected)";
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchedChaosTest,
                         ::testing::Values(7, 19, 42));

}  // namespace
}  // namespace geotp
