// Tests for the geo-scheduler: Eq. 3 / Eq. 8 postpone computation, the
// latency constraint of Eq. 2, Chiller's inner-region-last policy, QURO
// reordering, and Eq. 9 admission verdicts.
#include "core/geo_scheduler.h"

#include <gtest/gtest.h>

#include "protocol/messages.h"
#include "sim/event_loop.h"
#include "sim/network.h"

namespace geotp {
namespace core {
namespace {

RecordKey K(uint64_t k) { return RecordKey{1, k}; }

// A latency monitor with injected estimates (no network needed).
class FakeMonitorFixture {
 public:
  FakeMonitorFixture()
      : loop_(), net_(&loop_, sim::LatencyMatrix(8)),
        monitor_(0, &net_, {}) {}

  // Injects an RTT estimate by faking a pong round trip.
  void SetRtt(NodeId node, Micros rtt) {
    protocol::PingResponse pong;
    pong.from = node;
    pong.sent_at = loop_.Now() - rtt;
    monitor_.OnPong(pong);
  }

  LatencyMonitor* monitor() { return &monitor_; }

 private:
  sim::EventLoop loop_;
  sim::Network net_;
  LatencyMonitor monitor_;
};

std::vector<ParticipantPlanInput> ThreeParticipants() {
  // DS 1 at 10ms, DS 2 at 100ms, DS 3 at 40ms (RTT).
  std::vector<ParticipantPlanInput> inputs(3);
  inputs[0].data_source = 1;
  inputs[0].keys = {K(1)};
  inputs[1].data_source = 2;
  inputs[1].keys = {K(2)};
  inputs[2].data_source = 3;
  inputs[2].keys = {K(3)};
  return inputs;
}

TEST(SchedulerTest, ImmediatePolicyNeverPostpones) {
  FakeMonitorFixture fx;
  fx.SetRtt(1, MsToMicros(10));
  fx.SetRtt(2, MsToMicros(100));
  SchedulerConfig config;
  config.policy = SchedulerPolicy::kImmediate;
  GeoScheduler sched(config, fx.monitor(), nullptr);
  Rng rng(1);
  auto decision = sched.ScheduleRound(ThreeParticipants(), -1, rng);
  ASSERT_EQ(decision.plans.size(), 3u);
  for (const auto& plan : decision.plans) EXPECT_EQ(plan.postpone, 0);
}

TEST(SchedulerTest, LatencyAwareMatchesEquation3) {
  FakeMonitorFixture fx;
  fx.SetRtt(1, MsToMicros(10));
  fx.SetRtt(2, MsToMicros(100));
  fx.SetRtt(3, MsToMicros(40));
  SchedulerConfig config;
  config.policy = SchedulerPolicy::kLatencyAware;
  GeoScheduler sched(config, fx.monitor(), nullptr);
  Rng rng(1);
  auto decision = sched.ScheduleRound(ThreeParticipants(), -1, rng);
  ASSERT_EQ(decision.verdict, AdmissionVerdict::kAdmit);
  // t_start = max tau - tau_j (Eq. 3).
  EXPECT_EQ(decision.plans[0].postpone, MsToMicros(90));
  EXPECT_EQ(decision.plans[1].postpone, 0);
  EXPECT_EQ(decision.plans[2].postpone, MsToMicros(60));
}

TEST(SchedulerTest, Equation2ConstraintHolds) {
  // t_start + tau <= max tau for every participant.
  FakeMonitorFixture fx;
  fx.SetRtt(1, MsToMicros(13));
  fx.SetRtt(2, MsToMicros(251));
  fx.SetRtt(3, MsToMicros(73));
  SchedulerConfig config;
  config.policy = SchedulerPolicy::kLatencyAware;
  GeoScheduler sched(config, fx.monitor(), nullptr);
  Rng rng(1);
  auto decision = sched.ScheduleRound(ThreeParticipants(), -1, rng);
  const Micros max_tau = MsToMicros(251);
  const Micros taus[3] = {MsToMicros(13), MsToMicros(251), MsToMicros(73)};
  for (int i = 0; i < 3; ++i) {
    EXPECT_LE(decision.plans[static_cast<size_t>(i)].postpone + taus[i],
              max_tau);
  }
}

TEST(SchedulerTest, SingleParticipantNeverPostponed) {
  FakeMonitorFixture fx;
  fx.SetRtt(1, MsToMicros(10));
  SchedulerConfig config;
  config.policy = SchedulerPolicy::kLatencyAware;
  GeoScheduler sched(config, fx.monitor(), nullptr);
  Rng rng(1);
  std::vector<ParticipantPlanInput> one(1);
  one[0].data_source = 1;
  auto decision = sched.ScheduleRound(one, -1, rng);
  EXPECT_EQ(decision.plans[0].postpone, 0);
}

TEST(SchedulerTest, ForecastShiftsPostpone) {
  // Equal RTTs but one participant has a hot (slow) record: Eq. 8 gives
  // the hot participant an earlier start.
  FakeMonitorFixture fx;
  fx.SetRtt(1, MsToMicros(50));
  fx.SetRtt(2, MsToMicros(50));
  HotspotFootprint fp;
  for (int i = 0; i < 50; ++i) {
    fp.OnDispatch({K(1)});
    fp.OnComplete({K(1)}, MsToMicros(20), true);  // w_lat -> ~20ms
  }
  SchedulerConfig config;
  config.policy = SchedulerPolicy::kLatencyAwareForecast;
  config.forecast_scale = 1.0;
  GeoScheduler sched(config, fx.monitor(), &fp);
  Rng rng(1);
  std::vector<ParticipantPlanInput> inputs(2);
  inputs[0].data_source = 1;
  inputs[0].keys = {K(1)};  // hot
  inputs[1].data_source = 2;
  inputs[1].keys = {K(99)};  // cold
  auto decision = sched.ScheduleRound(inputs, -1, rng);
  // Hot participant dispatches first (postpone 0), cold one is delayed by
  // roughly the hot LEL forecast.
  EXPECT_EQ(decision.plans[0].postpone, 0);
  EXPECT_NEAR(static_cast<double>(decision.plans[1].postpone),
              static_cast<double>(MsToMicros(20)),
              static_cast<double>(MsToMicros(4)));
}

TEST(SchedulerTest, ForecastScaleDampens) {
  FakeMonitorFixture fx;
  fx.SetRtt(1, MsToMicros(50));
  fx.SetRtt(2, MsToMicros(50));
  HotspotFootprint fp;
  for (int i = 0; i < 50; ++i) {
    fp.OnDispatch({K(1)});
    fp.OnComplete({K(1)}, MsToMicros(20), true);
  }
  SchedulerConfig config;
  config.policy = SchedulerPolicy::kLatencyAwareForecast;
  config.forecast_scale = 0.5;
  GeoScheduler sched(config, fx.monitor(), &fp);
  Rng rng(1);
  std::vector<ParticipantPlanInput> inputs(2);
  inputs[0].data_source = 1;
  inputs[0].keys = {K(1)};
  inputs[1].data_source = 2;
  inputs[1].keys = {K(99)};
  auto decision = sched.ScheduleRound(inputs, -1, rng);
  EXPECT_NEAR(static_cast<double>(decision.plans[1].postpone),
              static_cast<double>(MsToMicros(10)),
              static_cast<double>(MsToMicros(3)));
}

TEST(SchedulerTest, ChillerPostponesInnerRegionOnly) {
  FakeMonitorFixture fx;
  fx.SetRtt(1, MsToMicros(10));   // inner region
  fx.SetRtt(2, MsToMicros(100));
  fx.SetRtt(3, MsToMicros(40));
  SchedulerConfig config;
  config.policy = SchedulerPolicy::kChiller;
  GeoScheduler sched(config, fx.monitor(), nullptr);
  Rng rng(1);
  auto decision = sched.ScheduleRound(ThreeParticipants(), -1, rng);
  EXPECT_EQ(decision.plans[0].postpone, MsToMicros(100));  // inner: last
  EXPECT_EQ(decision.plans[1].postpone, 0);
  EXPECT_EQ(decision.plans[2].postpone, 0);  // middle: immediate
}

TEST(SchedulerTest, ChillerSingleParticipantNotPostponed) {
  FakeMonitorFixture fx;
  fx.SetRtt(1, MsToMicros(10));
  SchedulerConfig config;
  config.policy = SchedulerPolicy::kChiller;
  GeoScheduler sched(config, fx.monitor(), nullptr);
  Rng rng(1);
  std::vector<ParticipantPlanInput> one(1);
  one[0].data_source = 1;
  auto decision = sched.ScheduleRound(one, -1, rng);
  EXPECT_EQ(decision.plans[0].postpone, 0);
}

TEST(SchedulerTest, AdmissionBlocksHotTransactions) {
  FakeMonitorFixture fx;
  fx.SetRtt(1, MsToMicros(10));
  HotspotFootprint fp;
  // Terrible success history + deep queue -> abort probability ~1.
  for (int i = 0; i < 20; ++i) {
    fp.OnDispatch({K(1)});
    fp.OnComplete({K(1)}, 100, i < 2);
  }
  for (int i = 0; i < 10; ++i) fp.OnDispatch({K(1)});
  SchedulerConfig config;
  config.policy = SchedulerPolicy::kLatencyAwareForecast;
  config.admission.enabled = true;
  GeoScheduler sched(config, fx.monitor(), &fp);
  Rng rng(1);
  std::vector<ParticipantPlanInput> inputs(1);
  inputs[0].data_source = 1;
  inputs[0].keys = {K(1)};
  auto decision = sched.ScheduleRound(inputs, /*attempt=*/0, rng);
  EXPECT_EQ(decision.verdict, AdmissionVerdict::kBlock);
  EXPECT_GT(decision.retry_backoff, 0);
}

TEST(SchedulerTest, AdmissionAbortsAfterRetryBudget) {
  FakeMonitorFixture fx;
  fx.SetRtt(1, MsToMicros(10));
  HotspotFootprint fp;
  for (int i = 0; i < 20; ++i) {
    fp.OnDispatch({K(1)});
    fp.OnComplete({K(1)}, 100, false);
  }
  for (int i = 0; i < 10; ++i) fp.OnDispatch({K(1)});
  SchedulerConfig config;
  config.policy = SchedulerPolicy::kLatencyAwareForecast;
  config.admission.enabled = true;
  config.admission.retry_limit = 10;
  GeoScheduler sched(config, fx.monitor(), &fp);
  Rng rng(1);
  std::vector<ParticipantPlanInput> inputs(1);
  inputs[0].data_source = 1;
  inputs[0].keys = {K(1)};
  auto decision = sched.ScheduleRound(inputs, /*attempt=*/9, rng);
  EXPECT_EQ(decision.verdict, AdmissionVerdict::kAbort);
}

TEST(SchedulerTest, AdmissionSkippedForNegativeAttempt) {
  FakeMonitorFixture fx;
  fx.SetRtt(1, MsToMicros(10));
  HotspotFootprint fp;
  for (int i = 0; i < 20; ++i) {
    fp.OnDispatch({K(1)});
    fp.OnComplete({K(1)}, 100, false);
  }
  for (int i = 0; i < 10; ++i) fp.OnDispatch({K(1)});
  SchedulerConfig config;
  config.policy = SchedulerPolicy::kLatencyAwareForecast;
  config.admission.enabled = true;
  GeoScheduler sched(config, fx.monitor(), &fp);
  Rng rng(1);
  std::vector<ParticipantPlanInput> inputs(1);
  inputs[0].data_source = 1;
  inputs[0].keys = {K(1)};
  auto decision = sched.ScheduleRound(inputs, /*attempt=*/-1, rng);
  EXPECT_EQ(decision.verdict, AdmissionVerdict::kAdmit);
  EXPECT_EQ(decision.plans.size(), 1u);
}

TEST(SchedulerTest, AdmissionAdmitsColdTransactions) {
  FakeMonitorFixture fx;
  fx.SetRtt(1, MsToMicros(10));
  HotspotFootprint fp;
  SchedulerConfig config;
  config.policy = SchedulerPolicy::kLatencyAwareForecast;
  config.admission.enabled = true;
  GeoScheduler sched(config, fx.monitor(), &fp);
  Rng rng(1);
  std::vector<ParticipantPlanInput> inputs(1);
  inputs[0].data_source = 1;
  inputs[0].keys = {K(42)};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(sched.ScheduleRound(inputs, 0, rng).verdict,
              AdmissionVerdict::kAdmit);
  }
}

TEST(SchedulerTest, QuroReorderPutsWritesLast) {
  std::vector<protocol::ClientOp> ops(5);
  for (size_t i = 0; i < ops.size(); ++i) {
    ops[i].key = K(i);
    ops[i].is_write = (i % 2 == 0);  // 0,2,4 writes
  }
  GeoScheduler::ReorderQuro(ops);
  EXPECT_FALSE(ops[0].is_write);
  EXPECT_FALSE(ops[1].is_write);
  EXPECT_TRUE(ops[2].is_write);
  EXPECT_TRUE(ops[3].is_write);
  EXPECT_TRUE(ops[4].is_write);
  // Stability: reads keep their relative order (keys 1 then 3).
  EXPECT_EQ(ops[0].key.key, 1u);
  EXPECT_EQ(ops[1].key.key, 3u);
  EXPECT_EQ(ops[2].key.key, 0u);
}

TEST(SchedulerTest, PolicyNames) {
  EXPECT_STREQ(SchedulerPolicyName(SchedulerPolicy::kImmediate), "immediate");
  EXPECT_STREQ(SchedulerPolicyName(SchedulerPolicy::kChiller), "chiller");
}

}  // namespace
}  // namespace core
}  // namespace geotp
