// Tests for the mini-SQL parser, including the last-statement annotation
// the decentralized prepare relies on (paper §III).
#include "sql/parser.h"

#include <gtest/gtest.h>

namespace geotp {
namespace sql {
namespace {

class ParserTest : public ::testing::Test {
 protected:
  Parser parser_;

  ParsedStatement MustParse(const std::string& sql) {
    auto result = parser_.Parse(sql);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status().ToString();
    return result.ok() ? result.value() : ParsedStatement{};
  }
};

TEST_F(ParserTest, Begin) {
  EXPECT_EQ(MustParse("BEGIN;").type, StatementType::kBegin);
  EXPECT_EQ(MustParse("begin").type, StatementType::kBegin);
  EXPECT_EQ(MustParse("START TRANSACTION;").type, StatementType::kBegin);
}

TEST_F(ParserTest, CommitAndRollback) {
  EXPECT_EQ(MustParse("COMMIT;").type, StatementType::kCommit);
  EXPECT_EQ(MustParse("ROLLBACK;").type, StatementType::kRollback);
  EXPECT_EQ(MustParse("abort").type, StatementType::kRollback);
}

TEST_F(ParserTest, Select) {
  ParsedStatement stmt =
      MustParse("SELECT val FROM savings WHERE key = 42;");
  EXPECT_EQ(stmt.type, StatementType::kSelect);
  EXPECT_EQ(stmt.table, "SAVINGS");
  EXPECT_EQ(stmt.key, 42u);
  EXPECT_FALSE(stmt.IsWrite());
}

TEST_F(ParserTest, SelectStar) {
  ParsedStatement stmt = MustParse("SELECT * FROM t WHERE key = 1");
  EXPECT_EQ(stmt.type, StatementType::kSelect);
}

TEST_F(ParserTest, UpdateLiteral) {
  ParsedStatement stmt =
      MustParse("UPDATE savings SET val = 100 WHERE key = 7;");
  EXPECT_EQ(stmt.type, StatementType::kUpdate);
  EXPECT_EQ(stmt.value, 100);
  EXPECT_FALSE(stmt.is_delta);
  EXPECT_EQ(stmt.key, 7u);
}

TEST_F(ParserTest, UpdateDelta) {
  ParsedStatement stmt =
      MustParse("UPDATE savings SET val = val + -100 WHERE key = 7;");
  EXPECT_TRUE(stmt.is_delta);
  EXPECT_EQ(stmt.value, -100);
}

TEST_F(ParserTest, LastStatementAnnotationSuffix) {
  ParsedStatement stmt = MustParse(
      "UPDATE savings SET val = val + 100 WHERE key = 7; /* last statement */");
  EXPECT_TRUE(stmt.is_last);
}

TEST_F(ParserTest, LastStatementAnnotationPrefix) {
  ParsedStatement stmt =
      MustParse("/* geotp:last */ SELECT val FROM t WHERE key = 1;");
  EXPECT_TRUE(stmt.is_last);
}

TEST_F(ParserTest, LineCommentAnnotation) {
  ParsedStatement stmt =
      MustParse("SELECT val FROM t WHERE key = 1 -- geotp:last");
  EXPECT_TRUE(stmt.is_last);
}

TEST_F(ParserTest, OrdinaryCommentIsNotLast) {
  ParsedStatement stmt =
      MustParse("/* route to shard 3 */ SELECT val FROM t WHERE key = 1;");
  EXPECT_FALSE(stmt.is_last);
}

TEST_F(ParserTest, CaseInsensitiveKeywords) {
  ParsedStatement stmt =
      MustParse("update T set VAL = Val + 5 where KEY = 9");
  EXPECT_TRUE(stmt.is_delta);
}

TEST_F(ParserTest, RejectsGarbage) {
  EXPECT_FALSE(parser_.Parse("DELETE FROM t WHERE key = 1").ok());
  EXPECT_FALSE(parser_.Parse("SELECT val FROM").ok());
  EXPECT_FALSE(parser_.Parse("UPDATE t SET val = WHERE key = 1").ok());
  EXPECT_FALSE(parser_.Parse("").ok());
  EXPECT_FALSE(parser_.Parse("SELECT val FROM t WHERE key = -3").ok());
  EXPECT_FALSE(parser_.Parse("BEGIN extra").ok());
}

TEST_F(ParserTest, RejectsTrailingTokens) {
  EXPECT_FALSE(
      parser_.Parse("SELECT val FROM t WHERE key = 1 garbage").ok());
}

TEST_F(ParserTest, ParseScriptSplitsStatements) {
  auto result = parser_.ParseScript(
      "BEGIN;"
      "UPDATE savings SET val = val + -100 WHERE key = 1;"
      "UPDATE savings SET val = val + 100 WHERE key = 2; /* last statement */"
      "COMMIT;");
  ASSERT_TRUE(result.ok());
  const auto& stmts = result.value();
  ASSERT_EQ(stmts.size(), 4u);
  EXPECT_EQ(stmts[0].type, StatementType::kBegin);
  EXPECT_EQ(stmts[1].type, StatementType::kUpdate);
  EXPECT_FALSE(stmts[1].is_last);
  EXPECT_TRUE(stmts[2].is_last);
  EXPECT_EQ(stmts[3].type, StatementType::kCommit);
}

TEST_F(ParserTest, ParseScriptSkipsBlankPieces) {
  auto result = parser_.ParseScript("BEGIN;;  \n ;COMMIT;");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().size(), 2u);
}

TEST_F(ParserTest, ParseScriptPropagatesErrors) {
  EXPECT_FALSE(parser_.ParseScript("BEGIN; NONSENSE; COMMIT;").ok());
}

TEST_F(ParserTest, ToStringRoundTripsMeaning) {
  ParsedStatement stmt =
      MustParse("UPDATE t SET val = val + 3 WHERE key = 4; /* last statement */");
  const std::string repr = stmt.ToString();
  EXPECT_NE(repr.find("UPDATE"), std::string::npos);
  EXPECT_NE(repr.find("last"), std::string::npos);
}

}  // namespace
}  // namespace sql
}  // namespace geotp
