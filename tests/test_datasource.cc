// Tests for the data-source node and its geo-agent: execution batches,
// lock-wait timeouts, decentralized prepare votes, early abort and
// tombstones.
#include "datasource/data_source.h"

#include <gtest/gtest.h>

#include "protocol/messages.h"
#include "sim/event_loop.h"
#include "sim/network.h"

namespace geotp {
namespace datasource {
namespace {

using protocol::BranchExecuteRequest;
using protocol::BranchExecuteResponse;
using protocol::ClientOp;
using protocol::DecisionAck;
using protocol::DecisionRequest;
using protocol::PeerAbortRequest;
using protocol::PrepareRequest;
using protocol::Vote;
using protocol::VoteMessage;

// Harness: node 0 plays the DM, nodes 1..2 are data sources.
class DataSourceTest : public ::testing::Test {
 protected:
  DataSourceTest() {
    sim::LatencyMatrix matrix(3);
    matrix.SetSymmetric(0, 1, sim::LinkSpec::FromRttMs(10.0));
    matrix.SetSymmetric(0, 2, sim::LinkSpec::FromRttMs(100.0));
    matrix.SetSymmetric(1, 2, sim::LinkSpec::FromRttMs(100.0));
    net_ = std::make_unique<sim::Network>(&loop_, matrix);
    ds1_ = std::make_unique<DataSourceNode>(1, net_.get(),
                                            DataSourceConfig::MySql());
    ds2_ = std::make_unique<DataSourceNode>(2, net_.get(),
                                            DataSourceConfig::Postgres());
    ds1_->Attach();
    ds2_->Attach();
    net_->RegisterNode(0, [this](std::unique_ptr<sim::MessageBase> msg) {
      if (auto* resp = dynamic_cast<BranchExecuteResponse*>(msg.get())) {
        exec_responses_.push_back(*resp);
      } else if (auto* vote = dynamic_cast<VoteMessage*>(msg.get())) {
        votes_.push_back(*vote);
      } else if (auto* ack = dynamic_cast<DecisionAck*>(msg.get())) {
        acks_.push_back(*ack);
      }
    });
  }

  void SendExecute(NodeId ds, TxnId txn, std::vector<ClientOp> ops,
                   bool last, std::vector<NodeId> peers = {},
                   bool begin = true, uint64_t round = 0) {
    auto req = std::make_unique<BranchExecuteRequest>();
    req->from = 0;
    req->to = ds;
    req->xid = Xid{txn, ds};
    req->round_seq = round;
    req->begin_branch = begin;
    req->ops = std::move(ops);
    req->last_statement = last;
    req->peers = std::move(peers);
    req->coordinator = 0;
    net_->Send(std::move(req));
  }

  void SendDecision(NodeId ds, TxnId txn, bool commit, bool one_phase) {
    auto req = std::make_unique<DecisionRequest>();
    req->from = 0;
    req->to = ds;
    req->xid = Xid{txn, ds};
    req->commit = commit;
    req->one_phase = one_phase;
    net_->Send(std::move(req));
  }

  static ClientOp Write(RecordKey key, int64_t value) {
    ClientOp op;
    op.key = key;
    op.is_write = true;
    op.value = value;
    return op;
  }
  static ClientOp Read(RecordKey key) {
    ClientOp op;
    op.key = key;
    return op;
  }

  sim::EventLoop loop_;
  std::unique_ptr<sim::Network> net_;
  std::unique_ptr<DataSourceNode> ds1_;
  std::unique_ptr<DataSourceNode> ds2_;
  std::vector<BranchExecuteResponse> exec_responses_;
  std::vector<VoteMessage> votes_;
  std::vector<DecisionAck> acks_;
};

TEST_F(DataSourceTest, ExecutesBatchAndReturnsValues) {
  ds1_->engine().store().Put(RecordKey{1, 5}, 99);
  SendExecute(1, 100, {Read(RecordKey{1, 5}), Write(RecordKey{1, 6}, 7)},
              /*last=*/false);
  loop_.Run();
  ASSERT_EQ(exec_responses_.size(), 1u);
  EXPECT_TRUE(exec_responses_[0].status.ok());
  ASSERT_EQ(exec_responses_[0].values.size(), 2u);
  EXPECT_EQ(exec_responses_[0].values[0], 99);
  EXPECT_EQ(exec_responses_[0].values[1], 7);
  EXPECT_GT(exec_responses_[0].local_exec_latency, 0);
}

TEST_F(DataSourceTest, CentralizedLastStatementVotesIdle) {
  SendExecute(1, 100, {Write(RecordKey{1, 1}, 1)}, /*last=*/true,
              /*peers=*/{});
  loop_.Run();
  ASSERT_EQ(votes_.size(), 1u);
  EXPECT_EQ(votes_[0].vote, Vote::kIdle);
  // Branch stays active for the one-phase commit.
  EXPECT_EQ(ds1_->engine().StateOf(Xid{100, 1}), storage::TxnState::kActive);
}

TEST_F(DataSourceTest, DistributedLastStatementVotesPrepared) {
  SendExecute(1, 100, {Write(RecordKey{1, 1}, 1)}, /*last=*/true,
              /*peers=*/{2});
  loop_.Run();
  ASSERT_EQ(votes_.size(), 1u);
  EXPECT_EQ(votes_[0].vote, Vote::kPrepared);
  EXPECT_EQ(ds1_->engine().StateOf(Xid{100, 1}),
            storage::TxnState::kPrepared);
  EXPECT_EQ(ds1_->agent().stats().prepares_initiated, 1u);
}

TEST_F(DataSourceTest, DecentralizedPrepareIsLanNotWan) {
  // The vote must arrive at the DM ~ (0.5 RTT + LAN + fsync) after the
  // request: one-way 5ms + exec + agent LAN 0.3ms + fsync ~2.2ms + 5ms
  // back — far less than an extra WAN round trip would cost.
  SendExecute(1, 100, {Write(RecordKey{1, 1}, 1)}, true, {2});
  loop_.Run();
  ASSERT_EQ(votes_.size(), 1u);
  EXPECT_LT(loop_.Now(), MsToMicros(15));
}

TEST_F(DataSourceTest, ExplicitPrepareRequestVotes) {
  SendExecute(1, 100, {Write(RecordKey{1, 1}, 1)}, /*last=*/false);
  loop_.Run();
  auto prep = std::make_unique<PrepareRequest>();
  prep->from = 0;
  prep->to = 1;
  prep->xid = Xid{100, 1};
  net_->Send(std::move(prep));
  loop_.Run();
  ASSERT_EQ(votes_.size(), 1u);
  EXPECT_EQ(votes_[0].vote, Vote::kPrepared);
  EXPECT_EQ(ds1_->stats().explicit_prepares, 1u);
}

TEST_F(DataSourceTest, PrepareUnknownBranchVotesFailure) {
  auto prep = std::make_unique<PrepareRequest>();
  prep->from = 0;
  prep->to = 1;
  prep->xid = Xid{999, 1};
  net_->Send(std::move(prep));
  loop_.Run();
  ASSERT_EQ(votes_.size(), 1u);
  EXPECT_EQ(votes_[0].vote, Vote::kFailure);
}

TEST_F(DataSourceTest, CommitDecisionAppliesAndAcks) {
  SendExecute(1, 100, {Write(RecordKey{1, 1}, 42)}, true, {2});
  loop_.Run();
  SendDecision(1, 100, /*commit=*/true, /*one_phase=*/false);
  loop_.Run();
  ASSERT_EQ(acks_.size(), 1u);
  EXPECT_TRUE(acks_[0].committed);
  EXPECT_EQ(ds1_->engine().store().Get(RecordKey{1, 1})->value, 42);
}

TEST_F(DataSourceTest, AbortDecisionRollsBack) {
  ds1_->engine().store().Put(RecordKey{1, 1}, 7);
  SendExecute(1, 100, {Write(RecordKey{1, 1}, 42)}, true, {2});
  loop_.Run();
  SendDecision(1, 100, /*commit=*/false, /*one_phase=*/false);
  loop_.Run();
  ASSERT_EQ(acks_.size(), 1u);
  EXPECT_FALSE(acks_[0].committed);
  EXPECT_EQ(ds1_->engine().store().Get(RecordKey{1, 1})->value, 7);
}

TEST_F(DataSourceTest, LockWaitTimeoutAbortsBranch) {
  // T1 holds the lock forever (never committed); T2 times out after 5s.
  SendExecute(1, 100, {Write(RecordKey{1, 1}, 1)}, false);
  loop_.Run();
  SendExecute(1, 200, {Write(RecordKey{1, 1}, 2)}, false);
  loop_.Run();
  ASSERT_EQ(exec_responses_.size(), 2u);
  EXPECT_TRUE(exec_responses_[0].status.ok());
  EXPECT_TRUE(exec_responses_[1].status.IsTimedOut());
  EXPECT_TRUE(exec_responses_[1].rolled_back);
  EXPECT_EQ(ds1_->stats().lock_timeouts, 1u);
  // The timeout fires at the configured 5s.
  EXPECT_GE(loop_.Now(), SecToMicros(5));
}

TEST_F(DataSourceTest, EarlyAbortNotifiesPeerAndPeerVotesRollbacked) {
  // A branch of txn 100 exists on DS2 (idle, executed earlier round).
  SendExecute(2, 100, {Write(RecordKey{1, 2000}, 1)}, false, {1});
  loop_.Run();
  exec_responses_.clear();
  // On DS1: txn 100's branch fails via lock timeout (blocked by txn 300).
  SendExecute(1, 300, {Write(RecordKey{1, 1}, 1)}, false);
  loop_.Run();
  SendExecute(1, 100, {Write(RecordKey{1, 1}, 2)}, false, {2});
  loop_.Run();
  // DS1's agent must have notified DS2 directly; DS2 rolled back and told
  // the DM.
  EXPECT_EQ(ds1_->stats().early_aborts_sent, 1u);
  EXPECT_EQ(ds2_->stats().early_aborts_received, 1u);
  EXPECT_FALSE(ds2_->HasBranch(100));
  bool saw_rollbacked = false;
  for (const auto& vote : votes_) {
    if (vote.xid.txn_id == 100 && vote.from == 2 &&
        vote.vote == Vote::kRollbacked) {
      saw_rollbacked = true;
    }
  }
  EXPECT_TRUE(saw_rollbacked);
}

TEST_F(DataSourceTest, PeerAbortBeforeBranchArrivalTombstones) {
  auto peer_abort = std::make_unique<PeerAbortRequest>();
  peer_abort->from = 1;
  peer_abort->to = 2;
  peer_abort->txn_id = 100;
  peer_abort->origin = 1;
  net_->Send(std::move(peer_abort));
  loop_.Run();
  EXPECT_TRUE(ds2_->agent().IsTombstoned(100));
  // The (postponed) branch arrives late and must be refused.
  SendExecute(2, 100, {Write(RecordKey{1, 2000}, 1)}, true, {1});
  loop_.Run();
  ASSERT_EQ(exec_responses_.size(), 1u);
  EXPECT_TRUE(exec_responses_[0].status.IsAborted());
  EXPECT_TRUE(exec_responses_[0].rolled_back);
  EXPECT_EQ(ds2_->agent().stats().tombstone_hits, 1u);
}

TEST_F(DataSourceTest, MultipleRoundsReuseBranch) {
  SendExecute(1, 100, {Write(RecordKey{1, 1}, 1)}, false, {}, true, 0);
  loop_.Run();
  SendExecute(1, 100, {Write(RecordKey{1, 2}, 2)}, true, {}, false, 1);
  loop_.Run();
  ASSERT_EQ(exec_responses_.size(), 2u);
  EXPECT_TRUE(exec_responses_[1].status.ok());
  SendDecision(1, 100, true, /*one_phase=*/true);
  loop_.Run();
  EXPECT_EQ(ds1_->engine().store().Get(RecordKey{1, 1})->value, 1);
  EXPECT_EQ(ds1_->engine().store().Get(RecordKey{1, 2})->value, 2);
}

TEST_F(DataSourceTest, CrashDropsMessagesAndAbortsActive) {
  SendExecute(1, 100, {Write(RecordKey{1, 1}, 1)}, false);
  loop_.Run();
  ds1_->Crash();
  EXPECT_EQ(ds1_->engine().ActiveCount(), 0u);
  exec_responses_.clear();
  SendExecute(1, 200, {Write(RecordKey{1, 2}, 2)}, false);
  loop_.Run();
  EXPECT_TRUE(exec_responses_.empty());
  ds1_->Restart();
  SendExecute(1, 300, {Write(RecordKey{1, 3}, 3)}, false);
  loop_.Run();
  EXPECT_EQ(exec_responses_.size(), 1u);
}

TEST_F(DataSourceTest, OnCoordinatorFailureAbortsOnlyUnprepared) {
  SendExecute(1, 100, {Write(RecordKey{1, 1}, 1)}, true, {2});  // prepares
  SendExecute(1, 200, {Write(RecordKey{1, 2}, 2)}, false);      // active
  loop_.Run();
  ds1_->OnCoordinatorFailure(0);
  EXPECT_EQ(ds1_->engine().StateOf(Xid{100, 1}),
            storage::TxnState::kPrepared);
  EXPECT_EQ(ds1_->engine().StateOf(Xid{200, 1}),
            storage::TxnState::kAborted);
}

TEST_F(DataSourceTest, DialectsCarryDifferentCostModels) {
  EXPECT_EQ(ds1_->config().dialect, sql::Dialect::kMySql);
  EXPECT_EQ(ds2_->config().dialect, sql::Dialect::kPostgres);
  EXPECT_NE(ds1_->config().engine.read_cost, ds2_->config().engine.read_cost);
}

}  // namespace
}  // namespace datasource
}  // namespace geotp
