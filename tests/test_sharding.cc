// Elastic sharding: shard map semantics, balancer-driven live migration
// under traffic (no committed write lost), stale-epoch redirects, and the
// crash/failover edge cases of the migration protocol.
#include <map>
#include <memory>

#include <gtest/gtest.h>

#include "sharding/shard_map.h"
#include "sim_fixture.h"

namespace geotp {
namespace {

using protocol::ShardMapUpdate;
using protocol::ShardMigrateRequest;
using sharding::ShardMap;
using sharding::ShardRange;
using testing_support::MiniCluster;

// ---------------------------------------------------------------------------
// ShardMap unit tests
// ---------------------------------------------------------------------------

TEST(ShardMap, FromRangePartitionMatchesCatalogRouting) {
  const std::vector<NodeId> owners = {2, 3, 4};
  ShardMap map = ShardMap::FromRangePartition(1, 900, owners, 3);
  EXPECT_EQ(map.size(), 9u);
  EXPECT_EQ(map.epoch(), 0u);
  for (uint64_t key : {0ULL, 299ULL, 300ULL, 899ULL, 900ULL, 1799ULL,
                       1800ULL, 2699ULL}) {
    EXPECT_EQ(map.Route(RecordKey{1, key}),
              owners[std::min<size_t>(key / 900, owners.size() - 1)])
        << "key " << key;
  }
  // Beyond the nominal key space: the last chunk extends like the
  // catalog's clamp.
  EXPECT_EQ(map.Route(RecordKey{1, 1000000}), 4);
  // Other tables are uncovered.
  EXPECT_EQ(map.Route(RecordKey{7, 10}), kInvalidNode);
}

TEST(ShardMap, MoveAndLastWriterWinsAdoption) {
  ShardMap map = ShardMap::FromRangePartition(1, 1000, {2, 3}, 2);
  // ranges: [0,500)@2 [500,1000)@2 [1000,1500)@3 [1500,max)@3
  EXPECT_TRUE(map.Move(2, 2, /*version=*/1));
  EXPECT_EQ(map.Route(RecordKey{1, 1200}), 2);
  EXPECT_EQ(map.epoch(), 1u);
  // Stale move is refused.
  EXPECT_FALSE(map.Move(2, 3, /*version=*/1));

  // A second replica of the map converges through adoption, in any order.
  ShardMap replica = ShardMap::FromRangePartition(1, 1000, {2, 3}, 2);
  EXPECT_TRUE(replica.Adopt(map.ranges()));
  EXPECT_EQ(replica.Route(RecordKey{1, 1200}), 2);
  EXPECT_EQ(replica.epoch(), 1u);
  // Re-adopting an older view changes nothing.
  ShardMap stale = ShardMap::FromRangePartition(1, 1000, {2, 3}, 2);
  EXPECT_FALSE(replica.Adopt(stale.ranges()));
  EXPECT_EQ(replica.Route(RecordKey{1, 1200}), 2);
}

TEST(ShardMap, AdoptInsertsUnknownSpans) {
  ShardMap map;  // a DM that never saw the initial layout
  ShardRange entry{1, 0, 500, 2, 3};
  EXPECT_TRUE(map.Adopt({entry}));
  EXPECT_EQ(map.Route(RecordKey{1, 123}), 2);
  EXPECT_EQ(map.epoch(), 3u);
}

TEST(ShardMap, SplitKeepsOwnerAndBumpsVersions) {
  ShardMap map = ShardMap::FromRangePartition(1, 1000, {2, 3}, 1);
  // ranges: [0,1000)@2 [1000,max)@3
  EXPECT_FALSE(map.Split(0, 0, 1));     // split point on the boundary
  EXPECT_FALSE(map.SplitAt(1, 400, 0)); // stale version
  ASSERT_TRUE(map.SplitAt(1, 400, 1));
  ASSERT_EQ(map.size(), 3u);
  EXPECT_EQ(map.ranges()[0].hi, 400u);
  EXPECT_EQ(map.ranges()[1].lo, 400u);
  EXPECT_EQ(map.ranges()[1].hi, 1000u);
  EXPECT_EQ(map.ranges()[0].owner, 2);
  EXPECT_EQ(map.ranges()[1].owner, 2);
  EXPECT_EQ(map.ranges()[0].version, 1u);
  EXPECT_EQ(map.epoch(), 1u);
  EXPECT_TRUE(map.IsPartition(1));
  // Routing is unchanged by a split (boundaries move, ownership does not).
  EXPECT_EQ(map.Route(RecordKey{1, 399}), 2);
  EXPECT_EQ(map.Route(RecordKey{1, 400}), 2);
  EXPECT_EQ(map.Route(RecordKey{1, 5000}), 3);
}

TEST(ShardMap, MergeRequiresAdjacentSameOwner) {
  ShardMap map = ShardMap::FromRangePartition(1, 1000, {2, 3}, 2);
  // ranges: [0,500)@2 [500,1000)@2 [1000,1500)@3 [1500,max)@3
  EXPECT_FALSE(map.Merge(1, 1));  // [500,1000)@2 + [1000,1500)@3: owners differ
  ASSERT_TRUE(map.Merge(0, 1));
  ASSERT_EQ(map.size(), 3u);
  EXPECT_EQ(map.ranges()[0].lo, 0u);
  EXPECT_EQ(map.ranges()[0].hi, 1000u);
  EXPECT_EQ(map.ranges()[0].version, 1u);
  EXPECT_FALSE(map.Merge(1, 1));  // stale version
  ASSERT_TRUE(map.Merge(1, 2));
  EXPECT_TRUE(map.IsPartition(1));
  EXPECT_EQ(map.Route(RecordKey{1, 1400}), 3);
}

TEST(ShardMap, OverlapAwareAdoptionConvergesAcrossBoundaryChanges) {
  // Replica A holds pre-split boundaries; the authority splits and moves
  // the hot half. A single patched sub-range (as a redirect carries) must
  // claim exactly its sub-span.
  ShardMap replica = ShardMap::FromRangePartition(1, 1000, {2, 3}, 1);
  ShardRange hot{1, 1000, 1100, 2, 3};  // split off [1000,1100), moved to 2
  EXPECT_TRUE(replica.Adopt({hot}));
  EXPECT_TRUE(replica.IsPartition(1));
  EXPECT_EQ(replica.Route(RecordKey{1, 1050}), 2);
  EXPECT_EQ(replica.Route(RecordKey{1, 1500}), 3);  // remainder kept @3
  // The stale pre-split whole-range entry must not undo the patch.
  EXPECT_FALSE(replica.Adopt({ShardRange{1, 1000, UINT64_MAX, 3, 0}}));
  EXPECT_EQ(replica.Route(RecordKey{1, 1050}), 2);
  // A newer merged range covering both pieces replaces them.
  ShardRange merged{1, 0, 2000, 3, 7};
  EXPECT_TRUE(replica.Adopt({merged}));
  EXPECT_TRUE(replica.IsPartition(1));
  EXPECT_EQ(replica.Route(RecordKey{1, 1050}), 3);
  EXPECT_EQ(replica.Route(RecordKey{1, 10}), 3);
}

// ---------------------------------------------------------------------------
// Balancer-driven live migration under traffic
// ---------------------------------------------------------------------------

MiniCluster::Options ShardedOptions() {
  MiniCluster::Options options;
  options.num_data_sources = 2;
  options.rtts_ms = {10.0, 100.0};
  options.sharding = true;
  options.chunks_per_source = 4;  // chunks of 250 keys
  return options;
}

TEST(ShardingLive, BalancerMigratesHotChunkWithoutLosingCommittedWrites) {
  MiniCluster::Options options = ShardedOptions();
  options.dm.balancer.enabled = true;
  options.dm.balancer.interval = MsToMicros(150);
  options.dm.balancer.min_heat = 1;
  options.dm.balancer.min_rtt_gain = MsToMicros(40);
  MiniCluster c(options);

  // Hot writes on data source 1's first chunk ([1000, 1250), 100 ms away)
  // while the balancer watches. Some transactions may abort against the
  // migration fence; the client-side ledger tracks what actually
  // committed.
  std::map<uint64_t, int64_t> committed;  // key offset -> value
  int committed_after_move = 0;
  for (int t = 0; t < 30; ++t) {
    const uint64_t off = static_cast<uint64_t>(t % 12);
    const int64_t value = 1000 + t;
    const Status result =
        c.RunTxn(static_cast<uint64_t>(t), {MiniCluster::Write(c.KeyOn(1, off), value)});
    if (result.ok()) {
      committed[off] = value;
      if (c.dm().stats().shard_map_epoch > 0) committed_after_move++;
    }
  }

  // The hot chunk moved to the near source and traffic kept committing.
  EXPECT_GE(c.dm().stats().shard_map_epoch, 1u);
  ASSERT_NE(c.dm().balancer(), nullptr);
  EXPECT_GE(c.dm().balancer()->stats().migrations_completed, 1u);
  EXPECT_EQ(c.dm().catalog().Route(c.KeyOn(1, 0)), 2);
  EXPECT_GT(committed_after_move, 0);
  EXPECT_GE(committed.size(), 6u);

  // No committed write was lost: every ledger value reads back through
  // the DM (which now routes to the new owner)...
  uint64_t tag = 1000;
  for (const auto& [off, value] : committed) {
    const auto* handle =
        c.SendRound(tag, {MiniCluster::Read(c.KeyOn(1, off))}, true);
    c.RunFor(2000);
    c.SendCommit(tag);
    c.RunFor(2000);
    ASSERT_FALSE(handle->round_responses.empty()) << "offset " << off;
    EXPECT_EQ(handle->round_responses.back().values.at(0), value)
        << "offset " << off;
    tag++;
  }
  // ...and lives in the new owner's store.
  for (const auto& [off, value] : committed) {
    auto record = c.source(0).engine().store().Get(c.KeyOn(1, off));
    ASSERT_TRUE(record.has_value()) << "offset " << off;
    EXPECT_EQ(record->value, value) << "offset " << off;
  }
}

// ---------------------------------------------------------------------------
// Stale-epoch DM retrying through the redirect
// ---------------------------------------------------------------------------

TEST(ShardingLive, StaleEpochDmRetriesThroughRedirect) {
  MiniCluster::Options options = ShardedOptions();
  options.num_middlewares = 2;  // the second DM will be left stale
  MiniCluster c(options);
  const NodeId dm2 = 2 + options.num_data_sources;  // extra DM node id

  // Seed a committed value at the original owner.
  ASSERT_TRUE(c.RunTxn(1, {MiniCluster::Write(c.KeyOn(1, 5), 77)}).ok());

  // Partition the second DM for the whole migration + publish window:
  // ping-piggybacked anti-entropy would otherwise repair its map within a
  // ping interval and the redirect path would never fire (that repair has
  // its own test below).
  c.network().Partition(dm2);

  // Drive one migration by hand (no balancer): move [1000, 1250) from
  // source 1 (node 3) to source 0 (node 2), then publish the map to
  // everyone EXCEPT the second DM.
  auto migrate = std::make_unique<ShardMigrateRequest>();
  migrate->from = 0;
  migrate->to = 3;
  migrate->migration_id = 9;
  migrate->range = ShardRange{options.table, 1000, 1250, 3, 0};
  migrate->dest = 2;
  migrate->dest_leader = 2;
  migrate->new_version = 1;
  c.network().Send(std::move(migrate));
  c.RunFor(1500);
  ASSERT_EQ(c.cutovers().size(), 1u);
  ASSERT_EQ(c.cutovers()[0].range.owner, 2);

  ShardMap published = ShardMap::FromRangePartition(
      options.table, options.keys_per_node, {2, 3},
      options.chunks_per_source);
  // With 4 chunks per owner, [1000, 1250) is range index 4.
  ASSERT_EQ(published.ranges()[4].lo, 1000u);
  ASSERT_TRUE(published.Move(4, 2, 1));  // [1000,1250) -> node 2
  for (NodeId target : {NodeId{1}, NodeId{2}, NodeId{3}}) {
    auto update = std::make_unique<ShardMapUpdate>();
    update->from = 0;
    update->to = target;
    update->entries = published.ranges();
    c.network().Send(std::move(update));
  }
  c.RunFor(500);
  EXPECT_EQ(c.dm(0).stats().shard_map_epoch, 1u);
  EXPECT_EQ(c.dm(1).stats().shard_map_epoch, 0u);  // stale
  c.network().Restore(dm2);

  // A transaction through the stale DM (dispatched before the next ping
  // round can pull the map) bounces at the old owner, adopts the patched
  // range from the redirect, re-routes, and commits.
  ASSERT_TRUE(
      c.RunTxn(2, {MiniCluster::Write(c.KeyOn(1, 5), 88)}, dm2).ok());
  EXPECT_GE(c.dm(1).stats().shard_redirects, 1u);
  EXPECT_GE(c.dm(1).stats().shard_reroutes, 1u);
  EXPECT_EQ(c.dm(1).stats().shard_map_epoch, 1u);
  EXPECT_GE(c.source(1).stats().shard_redirects_sent, 1u);

  // The write landed at the new owner; a read through the fresh DM agrees.
  auto record = c.source(0).engine().store().Get(c.KeyOn(1, 5));
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->value, 88);
  const auto* handle =
      c.SendRound(3, {MiniCluster::Read(c.KeyOn(1, 5))}, true);
  c.RunFor(2000);
  c.SendCommit(3);
  c.RunFor(2000);
  ASSERT_FALSE(handle->round_responses.empty());
  EXPECT_EQ(handle->round_responses.back().values.at(0), 88);
}

// ---------------------------------------------------------------------------
// Crash of the source leader mid-copy
// ---------------------------------------------------------------------------

TEST(ShardingLive, SourceLeaderCrashMidCopyLeavesPlacementIntact) {
  MiniCluster::Options options = ShardedOptions();
  options.replication_factor = 3;
  MiniCluster c(options);

  ASSERT_TRUE(c.RunTxn(1, {MiniCluster::Write(c.KeyOn(1, 3), 41)}).ok());

  // Start a migration and kill the source leader while the snapshot (and
  // its ack) are still in flight.
  auto migrate = std::make_unique<ShardMigrateRequest>();
  migrate->from = 0;
  migrate->to = 3;
  migrate->migration_id = 5;
  migrate->range = ShardRange{options.table, 1000, 1250, 3, 0};
  migrate->dest = 2;
  migrate->dest_leader = 2;
  migrate->new_version = 1;
  c.network().Send(std::move(migrate));
  c.RunFor(60);  // request delivered, snapshot sent, ack not yet back
  c.source(1).Crash();
  c.RunFor(3000);  // election at group 1, no cutover possible

  EXPECT_TRUE(c.cutovers().empty());
  EXPECT_EQ(c.dm().stats().shard_map_epoch, 0u);
  ASSERT_NE(c.leader_of(1), nullptr);
  EXPECT_NE(c.leader_of(1)->id(), c.source(1).id());

  // The range still lives on (the promoted leader of) group 1 and serves
  // reads and writes; nothing was lost.
  ASSERT_TRUE(c.RunTxn(2, {MiniCluster::Write(c.KeyOn(1, 3), 42)}).ok());
  const auto* handle =
      c.SendRound(3, {MiniCluster::Read(c.KeyOn(1, 3))}, true);
  c.RunFor(2000);
  c.SendCommit(3);
  c.RunFor(2000);
  ASSERT_FALSE(handle->round_responses.empty());
  EXPECT_EQ(handle->round_responses.back().values.at(0), 42);
}

// ---------------------------------------------------------------------------
// Cutover racing a failover of the source group
// ---------------------------------------------------------------------------

TEST(ShardingLive, CutoverRacingFailoverKeepsEveryCommittedWrite) {
  MiniCluster::Options options = ShardedOptions();
  options.replication_factor = 3;
  MiniCluster c(options);

  ASSERT_TRUE(c.RunTxn(1, {MiniCluster::Write(c.KeyOn(1, 7), 70)}).ok());

  // Run the migration to readiness...
  auto migrate = std::make_unique<ShardMigrateRequest>();
  migrate->from = 0;
  migrate->to = 3;
  migrate->migration_id = 6;
  migrate->range = ShardRange{options.table, 1000, 1250, 3, 0};
  migrate->dest = 2;
  migrate->dest_leader = 2;
  migrate->new_version = 1;
  c.network().Send(std::move(migrate));
  c.RunFor(1500);
  ASSERT_EQ(c.cutovers().size(), 1u);

  // ...then crash the source leader BEFORE the map is published, and only
  // publish afterwards — the cutover races the group's failover.
  c.source(1).Crash();
  ShardMap published = ShardMap::FromRangePartition(
      options.table, options.keys_per_node, {2, 3},
      options.chunks_per_source);
  ASSERT_EQ(published.ranges()[4].lo, 1000u);
  ASSERT_TRUE(published.Move(4, 2, 1));
  std::vector<NodeId> targets = {1, 2, 3};
  for (int k = 0; k < options.replication_factor - 1; ++k) {
    targets.push_back(c.follower(0, k).id());
    targets.push_back(c.follower(1, k).id());
  }
  for (NodeId target : targets) {
    auto update = std::make_unique<ShardMapUpdate>();
    update->from = 0;
    update->to = target;
    update->entries = published.ranges();
    c.network().Send(std::move(update));
  }
  c.RunFor(3000);  // failover of group 1 completes under the new map

  // The moved range serves at its destination with the pre-migration
  // write intact (it was copied before the crash)...
  EXPECT_EQ(c.dm().stats().shard_map_epoch, 1u);
  auto moved = c.source(0).engine().store().Get(c.KeyOn(1, 7));
  ASSERT_TRUE(moved.has_value());
  EXPECT_EQ(moved->value, 70);
  ASSERT_TRUE(c.RunTxn(2, {MiniCluster::Write(c.KeyOn(1, 7), 71)}).ok());
  EXPECT_EQ(c.source(0).engine().store().Get(c.KeyOn(1, 7))->value, 71);

  // ...and the rest of group 1 survived its failover: its promoted leader
  // still serves the unmoved chunks.
  ASSERT_NE(c.leader_of(1), nullptr);
  ASSERT_TRUE(c.RunTxn(3, {MiniCluster::Write(c.KeyOn(1, 500), 99)}).ok());
}

// ---------------------------------------------------------------------------
// Skew-within-chunk: split the hot sub-range out, migrate only it
// ---------------------------------------------------------------------------

TEST(ShardingLive, SkewedChunkSplitsAndMigratesOnlyTheHotSubrange) {
  MiniCluster::Options options;
  options.num_data_sources = 2;
  options.rtts_ms = {10.0, 100.0};
  options.sharding = true;
  options.chunks_per_source = 1;  // one huge chunk per source: skew is
                                  // invisible to whole-chunk granularity
  options.dm.balancer.enabled = true;
  options.dm.balancer.interval = MsToMicros(150);
  options.dm.balancer.min_heat = 1;
  options.dm.balancer.min_rtt_gain = MsToMicros(40);
  options.dm.balancer.split_min_keys = 16;
  MiniCluster c(options);

  // Hot band: 16 keys at the head of source 1's 1000-key chunk, 100 ms
  // away. PR 3 froze boundaries at deployment, so this workload could
  // only be helped by moving the whole chunk; now the balancer splits
  // the hot band out and migrates just that.
  std::map<uint64_t, int64_t> committed;
  for (int t = 0; t < 25; ++t) {
    const uint64_t off = static_cast<uint64_t>(t % 16);
    const int64_t value = 5000 + t;
    if (c.RunTxn(static_cast<uint64_t>(t),
                 {MiniCluster::Write(c.KeyOn(1, off), value)})
            .ok()) {
      committed[off] = value;
    }
  }

  ASSERT_NE(c.dm().balancer(), nullptr);
  const auto& stats = c.dm().balancer()->stats();
  EXPECT_GE(stats.splits, 1u);
  EXPECT_GE(stats.migrations_completed, 1u);
  // The hot band now lives on the near source...
  EXPECT_EQ(c.dm().catalog().Route(c.KeyOn(1, 0)), 2);
  // ...while the cold tail of the same original chunk stayed put.
  EXPECT_EQ(c.dm().catalog().Route(c.KeyOn(1, 500)), 3);
  EXPECT_EQ(c.dm().catalog().Route(c.KeyOn(1, 900)), 3);

  // No committed write lost across the split + migration.
  EXPECT_GE(committed.size(), 10u);
  uint64_t tag = 1000;
  for (const auto& [off, value] : committed) {
    const auto* handle =
        c.SendRound(tag, {MiniCluster::Read(c.KeyOn(1, off))}, true);
    c.RunFor(2000);
    c.SendCommit(tag);
    c.RunFor(2000);
    ASSERT_FALSE(handle->round_responses.empty()) << "offset " << off;
    EXPECT_EQ(handle->round_responses.back().values.at(0), value)
        << "offset " << off;
    tag++;
  }
}

// ---------------------------------------------------------------------------
// Capacity-aware placement: no single-node pile-up
// ---------------------------------------------------------------------------

namespace {

MiniCluster::Options PileUpOptions() {
  MiniCluster::Options options;
  options.num_data_sources = 3;
  options.rtts_ms = {10.0, 14.0, 100.0};  // two near-ish nodes, one far
  options.sharding = true;
  options.chunks_per_source = 2;  // source 2 owns [2000,2500) and [2500,~)
  options.dm.balancer.enabled = true;
  options.dm.balancer.interval = MsToMicros(150);
  options.dm.balancer.min_heat = 1;
  options.dm.balancer.min_rtt_gain = MsToMicros(40);
  options.dm.balancer.max_concurrent = 2;
  options.dm.balancer.split_enabled = false;   // isolate placement policy
  options.dm.balancer.merge_enabled = false;
  return options;
}

// Uniformly-hot traffic over both chunks of the far source; commits the
// waves so heat (t_cnt) accrues while branches resolve.
void DriveUniformHotLoad(MiniCluster& c) {
  uint64_t tag = 1;
  for (int wave = 0; wave < 5; ++wave) {
    const uint64_t first = tag;
    for (uint64_t i = 0; i < 8; ++i) {
      c.SendRound(tag++, {MiniCluster::Write(c.KeyOn(2, i), 1)}, true);
      c.SendRound(tag++, {MiniCluster::Write(c.KeyOn(2, 500 + i), 1)}, true);
    }
    c.RunFor(1500);
    for (uint64_t t = first; t < tag; ++t) {
      if (!c.txn(t).has_result && !c.txn(t).round_responses.empty()) {
        c.SendCommit(t);
      }
    }
    c.RunFor(1500);
  }
}

}  // namespace

TEST(ShardingLive, SingleObjectiveScorerPilesHotChunksOntoOneNode) {
  // Regression baseline: with the capacity terms zeroed (PR 3's
  // nearest-by-RTT scorer), every hot chunk lands on the single nearest
  // source — the pathological pile-up ROADMAP warned about.
  MiniCluster::Options options = PileUpOptions();
  options.dm.balancer.capacity_weight = 0;
  options.dm.balancer.placement_bias = 0;
  MiniCluster c(options);
  DriveUniformHotLoad(c);

  ASSERT_NE(c.dm().balancer(), nullptr);
  EXPECT_GE(c.dm().balancer()->stats().migrations_completed, 2u);
  EXPECT_EQ(c.dm().catalog().Route(c.KeyOn(2, 0)), 2);
  EXPECT_EQ(c.dm().catalog().Route(c.KeyOn(2, 500)), 2);
}

TEST(ShardingLive, CapacityTermSpreadsUniformlyHotChunksAcrossSources) {
  MiniCluster::Options options = PileUpOptions();
  options.dm.balancer.placement_bias = MsToMicros(60);
  MiniCluster c(options);
  DriveUniformHotLoad(c);

  ASSERT_NE(c.dm().balancer(), nullptr);
  EXPECT_GE(c.dm().balancer()->stats().migrations_completed, 2u);
  const NodeId owner_a = c.dm().catalog().Route(c.KeyOn(2, 0));
  const NodeId owner_b = c.dm().catalog().Route(c.KeyOn(2, 500));
  // Both chunks moved off the far node, and NOT onto the same node: the
  // load term beats the 4 ms RTT edge of the nearest source.
  EXPECT_NE(owner_a, 4);
  EXPECT_NE(owner_b, 4);
  EXPECT_NE(owner_a, owner_b);
}

// ---------------------------------------------------------------------------
// Shard-map anti-entropy over latency-monitor pings
// ---------------------------------------------------------------------------

TEST(ShardingLive, PartitionedActorsConvergeViaPingAntiEntropyWithoutTraffic) {
  MiniCluster::Options options = ShardedOptions();
  options.num_middlewares = 2;
  MiniCluster c(options);
  const NodeId dm2 = 2 + options.num_data_sources;

  // Cut the second DM off before the placement changes.
  c.network().Partition(dm2);

  // Migrate [1000,1250) from source 1 (node 3) to source 0 (node 2) by
  // hand, then publish the map ONLY to the primary DM and the new owner —
  // the old owner (node 3) and the partitioned DM both miss it.
  auto migrate = std::make_unique<ShardMigrateRequest>();
  migrate->from = 0;
  migrate->to = 3;
  migrate->migration_id = 21;
  migrate->range = ShardRange{options.table, 1000, 1250, 3, 0};
  migrate->dest = 2;
  migrate->dest_leader = 2;
  migrate->new_version = 1;
  c.network().Send(std::move(migrate));
  c.RunFor(1500);
  ASSERT_EQ(c.cutovers().size(), 1u);

  ShardMap published = ShardMap::FromRangePartition(
      options.table, options.keys_per_node, {2, 3},
      options.chunks_per_source);
  ASSERT_TRUE(published.Move(4, 2, 1));
  for (NodeId target : {NodeId{1}, NodeId{2}}) {
    auto update = std::make_unique<ShardMapUpdate>();
    update->from = 0;
    update->to = target;
    update->entries = published.ranges();
    c.network().Send(std::move(update));
  }
  // Short horizon: long enough for the publishes to land (sub-ms to the
  // DM, 5 ms to node 2) but shorter than a ping round trip to node 3, so
  // the "old owner is behind" precondition is still observable.
  c.RunFor(30);
  EXPECT_EQ(c.dm(0).stats().shard_map_epoch, 1u);
  EXPECT_EQ(c.dm(1).stats().shard_map_epoch, 0u);
  EXPECT_EQ(c.source(1).migrator().map().epoch(), 0u);

  // NO client traffic from here on. The primary DM's pings see node 3's
  // stale epoch and push it the map (the ROADMAP "converges only on
  // contact" gap).
  c.RunFor(500);
  EXPECT_GE(c.dm(0).stats().shard_map_pushes, 1u);
  EXPECT_EQ(c.source(1).migrator().map().epoch(), 1u);

  // The healed DM pulls the map off its first pong without any redirect.
  c.network().Restore(dm2);
  c.RunFor(500);
  EXPECT_GE(c.dm(1).stats().shard_map_pulls, 1u);
  EXPECT_EQ(c.dm(1).stats().shard_map_epoch, 1u);
  EXPECT_EQ(c.dm(1).catalog().Route(c.KeyOn(1, 5)), 2);
  EXPECT_GE(c.source(0).stats().shard_map_serves +
                c.source(1).stats().shard_map_serves,
            1u);
}

}  // namespace
}  // namespace geotp
