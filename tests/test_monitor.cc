// Tests for the latency monitor: ping scheduling, EWMA estimation, and
// online adaptation to latency changes (the Fig. 11b mechanism).
#include "core/latency_monitor.h"

#include <gtest/gtest.h>

#include "datasource/data_source.h"
#include "sim/event_loop.h"
#include "sim/network.h"

namespace geotp {
namespace core {
namespace {

class MonitorTest : public ::testing::Test {
 protected:
  MonitorTest() {
    sim::LatencyMatrix matrix(3);
    matrix.SetSymmetric(0, 1, sim::LinkSpec::FromRttMs(40.0));
    matrix.SetSymmetric(0, 2, sim::LinkSpec::FromRttMs(100.0));
    net_ = std::make_unique<sim::Network>(&loop_, matrix);
    ds1_ = std::make_unique<datasource::DataSourceNode>(
        1, net_.get(), datasource::DataSourceConfig::MySql());
    ds2_ = std::make_unique<datasource::DataSourceNode>(
        2, net_.get(), datasource::DataSourceConfig::MySql());
    ds1_->Attach();
    ds2_->Attach();
  }

  sim::EventLoop loop_;
  std::unique_ptr<sim::Network> net_;
  std::unique_ptr<datasource::DataSourceNode> ds1_;
  std::unique_ptr<datasource::DataSourceNode> ds2_;
};

TEST_F(MonitorTest, LearnsRttFromPings) {
  LatencyMonitor monitor(0, net_.get(), {1, 2});
  net_->RegisterNode(0, [&](std::unique_ptr<sim::MessageBase> msg) {
    auto* pong = dynamic_cast<protocol::PingResponse*>(msg.get());
    ASSERT_NE(pong, nullptr);
    monitor.OnPong(*pong);
  });
  monitor.Start();
  loop_.RunUntil(SecToMicros(1));
  monitor.Stop();
  EXPECT_NEAR(static_cast<double>(monitor.RttEstimate(1)),
              static_cast<double>(MsToMicros(40)), 1000.0);
  EXPECT_NEAR(static_cast<double>(monitor.RttEstimate(2)),
              static_cast<double>(MsToMicros(100)), 1000.0);
  EXPECT_GT(monitor.pings_sent(), 100u);
  EXPECT_GT(monitor.pongs_received(), 100u);
}

TEST_F(MonitorTest, UnknownNodeEstimateIsZero) {
  LatencyMonitor monitor(0, net_.get(), {1});
  EXPECT_EQ(monitor.RttEstimate(2), 0);
}

TEST_F(MonitorTest, MaxRttPicksLargest) {
  LatencyMonitor monitor(0, net_.get(), {1, 2});
  net_->RegisterNode(0, [&](std::unique_ptr<sim::MessageBase> msg) {
    auto* pong = dynamic_cast<protocol::PingResponse*>(msg.get());
    monitor.OnPong(*pong);
  });
  monitor.Start();
  loop_.RunUntil(SecToMicros(1));
  monitor.Stop();
  EXPECT_EQ(monitor.MaxRtt({1, 2}), monitor.RttEstimate(2));
  EXPECT_EQ(monitor.MaxRtt({}), 0);
}

TEST_F(MonitorTest, AdaptsToLatencyChange) {
  // The Fig. 11b scenario: the link latency changes at runtime and the
  // EWMA estimate follows within a fraction of a second.
  LatencyMonitor monitor(0, net_.get(), {1});
  net_->RegisterNode(0, [&](std::unique_ptr<sim::MessageBase> msg) {
    auto* pong = dynamic_cast<protocol::PingResponse*>(msg.get());
    monitor.OnPong(*pong);
  });
  monitor.Start();
  loop_.RunUntil(SecToMicros(1));
  EXPECT_NEAR(static_cast<double>(monitor.RttEstimate(1)),
              static_cast<double>(MsToMicros(40)), 1000.0);

  // Re-shape the link: 40 ms -> 200 ms.
  net_->matrix().SetSymmetric(0, 1, sim::LinkSpec::FromRttMs(200.0));
  loop_.RunUntil(SecToMicros(2));
  monitor.Stop();
  EXPECT_NEAR(static_cast<double>(monitor.RttEstimate(1)),
              static_cast<double>(MsToMicros(200)),
              static_cast<double>(MsToMicros(10)));
}

TEST_F(MonitorTest, EwmaSmoothsOutliers) {
  LatencyMonitorConfig config;
  config.ewma_alpha = 0.9;
  LatencyMonitor monitor(0, net_.get(), {1}, config);
  // Seed with a stable estimate.
  protocol::PingResponse pong;
  pong.from = 1;
  pong.sent_at = -MsToMicros(40);  // 40ms sample at t=0
  monitor.OnPong(pong);
  const Micros before = monitor.RttEstimate(1);
  // One wild outlier moves the estimate by at most (1-alpha).
  pong.sent_at = -MsToMicros(400);
  monitor.OnPong(pong);
  const Micros after = monitor.RttEstimate(1);
  EXPECT_LT(after, before + MsToMicros(40));
  EXPECT_GT(after, before);
}

TEST_F(MonitorTest, StopHaltsPinging) {
  LatencyMonitor monitor(0, net_.get(), {1});
  net_->RegisterNode(0, [&](std::unique_ptr<sim::MessageBase> msg) {
    auto* pong = dynamic_cast<protocol::PingResponse*>(msg.get());
    monitor.OnPong(*pong);
  });
  monitor.Start();
  loop_.RunUntil(MsToMicros(100));
  monitor.Stop();
  const uint64_t sent = monitor.pings_sent();
  loop_.RunUntil(MsToMicros(500));
  EXPECT_LE(monitor.pings_sent(), sent + 1);
}

}  // namespace
}  // namespace core
}  // namespace geotp
