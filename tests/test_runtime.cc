// Interface-contract tests for the runtime seams (ISSUE: both backends
// must honor the same ITimer / ITransport / IStableStorage semantics).
//
// Each contract runs against BOTH implementations:
//   * SimRuntime — the virtual-time event loop + simulated network;
//   * LoopbackRuntime — real threads, TCP loopback sockets, real files.
// plus a codec section that round-trips every MessageType through the
// loopback wire format (a message added without codec support fails here,
// not at runtime in the smoke).
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "baselines/store_messages.h"
#include "common/compress.h"
#include "gtest/gtest.h"
#include "protocol/messages.h"
#include "protocol/wan_codec.h"
#include "runtime/codec.h"
#include "runtime/loopback_runtime.h"
#include "runtime/runtime.h"
#include "runtime/sim_runtime.h"
#include "sim/event_loop.h"
#include "sim/latency.h"
#include "sim/network.h"

namespace geotp {
namespace runtime {
namespace {

// ---------------------------------------------------------------------------
// Backend harness: builds a runtime, runs a body, then waits for a
// condition — virtually (RunUntil) for sim, in real time for loopback.
// ---------------------------------------------------------------------------

class BackendHarness {
 public:
  virtual ~BackendHarness() = default;
  virtual Runtime* runtime() = 0;
  /// Blocks until `done` returns true (or a generous deadline expires).
  virtual void RunUntilTrue(std::function<bool()> done) = 0;
};

class SimHarness : public BackendHarness {
 public:
  SimHarness()
      : matrix_(8), network_(&loop_, matrix_, /*seed=*/1),
        runtime_(&loop_, &network_) {}

  Runtime* runtime() override { return &runtime_; }
  void RunUntilTrue(std::function<bool()> done) override {
    // Virtual time is free: march forward until the condition holds.
    for (int i = 0; i < 1000 && !done(); ++i) {
      loop_.RunUntil(loop_.Now() + MsToMicros(10));
    }
  }

 private:
  sim::LatencyMatrix matrix_;
  sim::EventLoop loop_;
  sim::Network network_;
  SimRuntime runtime_;
};

class LoopbackHarness : public BackendHarness {
 public:
  LoopbackHarness() {
    LoopbackConfig config;
    config.data_dir =
        ::testing::TempDir() + "geotp-runtime-contract";
    runtime_ = std::make_unique<LoopbackRuntime>(config);
    // Single-process: every node is local, no routes needed.
  }
  ~LoopbackHarness() override { runtime_->Shutdown(); }

  Runtime* runtime() override { return runtime_.get(); }
  void RunUntilTrue(std::function<bool()> done) override {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (!done() && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

 private:
  std::unique_ptr<LoopbackRuntime> runtime_;
};

enum class Backend { kSim, kLoopback };

std::unique_ptr<BackendHarness> MakeHarness(Backend backend) {
  if (backend == Backend::kSim) return std::make_unique<SimHarness>();
  return std::make_unique<LoopbackHarness>();
}

class RuntimeContractTest : public ::testing::TestWithParam<Backend> {};

// ---------------------------------------------------------------------------
// ITimer contracts
// ---------------------------------------------------------------------------

TEST_P(RuntimeContractTest, TimersFireInDeadlineOrder) {
  auto harness = MakeHarness(GetParam());
  ITimer* timer = harness->runtime()->TimerFor(1);

  std::mutex mu;
  std::vector<int> order;
  std::atomic<int> fired{0};
  auto record = [&](int tag) {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(tag);
    fired.fetch_add(1);
  };
  // Scheduled out of order; must fire in deadline order.
  timer->Schedule(MsToMicros(30), [&]() { record(3); });
  timer->Schedule(MsToMicros(10), [&]() { record(1); });
  timer->Schedule(MsToMicros(20), [&]() { record(2); });

  harness->RunUntilTrue([&]() { return fired.load() == 3; });
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_P(RuntimeContractTest, SameDeadlineTimersFireFifo) {
  auto harness = MakeHarness(GetParam());
  ITimer* timer = harness->runtime()->TimerFor(1);

  std::mutex mu;
  std::vector<int> order;
  std::atomic<int> fired{0};
  auto record = [&](int tag) {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(tag);
    fired.fetch_add(1);
  };
  const Micros when = timer->Now() + MsToMicros(5);
  for (int i = 0; i < 4; ++i) {
    timer->ScheduleAt(when, [&, i]() { record(i); });
  }

  harness->RunUntilTrue([&]() { return fired.load() == 4; });
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST_P(RuntimeContractTest, ClockIsMonotonicAcrossCallbacks) {
  auto harness = MakeHarness(GetParam());
  ITimer* timer = harness->runtime()->TimerFor(1);

  std::atomic<bool> monotonic{true};
  std::atomic<int> fired{0};
  auto last = std::make_shared<std::atomic<Micros>>(timer->Now());
  for (int i = 1; i <= 5; ++i) {
    timer->Schedule(MsToMicros(i * 2), [&, last]() {
      const Micros now = timer->Now();
      if (now < last->load()) monotonic.store(false);
      last->store(now);
      fired.fetch_add(1);
    });
  }
  harness->RunUntilTrue([&]() { return fired.load() == 5; });
  EXPECT_TRUE(monotonic.load());
}

TEST_P(RuntimeContractTest, CancelledTimerNeverFires) {
  auto harness = MakeHarness(GetParam());
  ITimer* timer = harness->runtime()->TimerFor(1);

  std::atomic<bool> cancelled_fired{false};
  std::atomic<bool> sentinel_fired{false};
  const TimerId id = timer->Schedule(MsToMicros(5), [&]() {
    cancelled_fired.store(true);
  });
  EXPECT_TRUE(timer->Cancel(id));
  EXPECT_FALSE(timer->Cancel(id));  // second cancel is a no-op
  // A later sentinel proves time advanced past the cancelled deadline.
  timer->Schedule(MsToMicros(20), [&]() { sentinel_fired.store(true); });

  harness->RunUntilTrue([&]() { return sentinel_fired.load(); });
  EXPECT_TRUE(sentinel_fired.load());
  EXPECT_FALSE(cancelled_fired.load());
}

// ---------------------------------------------------------------------------
// ITransport contracts
// ---------------------------------------------------------------------------

TEST_P(RuntimeContractTest, DeliversMessagesWithEnvelopeIntact) {
  auto harness = MakeHarness(GetParam());
  ITransport* transport = harness->runtime()->transport();

  std::mutex mu;
  std::vector<uint64_t> received;
  std::atomic<int> count{0};
  transport->RegisterNode(2, [&](std::unique_ptr<MessageBase> msg) {
    ASSERT_EQ(msg->type(), MessageType::kPingRequest);
    auto& ping = static_cast<protocol::PingRequest&>(*msg);
    EXPECT_EQ(ping.from, 1);
    EXPECT_EQ(ping.to, 2);
    std::lock_guard<std::mutex> lock(mu);
    received.push_back(ping.seq);
    count.fetch_add(1);
  });
  transport->RegisterNode(1, [](std::unique_ptr<MessageBase>) {});

  for (uint64_t seq = 1; seq <= 8; ++seq) {
    auto ping = std::make_unique<protocol::PingRequest>();
    ping->from = 1;
    ping->to = 2;
    ping->seq = seq;
    transport->Send(std::move(ping));
  }

  harness->RunUntilTrue([&]() { return count.load() == 8; });
  std::lock_guard<std::mutex> lock(mu);
  // Same-pair messages keep their send order on both backends.
  EXPECT_EQ(received, (std::vector<uint64_t>{1, 2, 3, 4, 5, 6, 7, 8}));
}

TEST_P(RuntimeContractTest, RequestResponseAcrossTwoNodes) {
  auto harness = MakeHarness(GetParam());
  ITransport* transport = harness->runtime()->transport();

  std::atomic<bool> ponged{false};
  transport->RegisterNode(2, [&](std::unique_ptr<MessageBase> msg) {
    auto& ping = static_cast<protocol::PingRequest&>(*msg);
    auto pong = std::make_unique<protocol::PingResponse>();
    pong->from = 2;
    pong->to = ping.from;
    pong->seq = ping.seq;
    transport->Send(std::move(pong));
  });
  transport->RegisterNode(1, [&](std::unique_ptr<MessageBase> msg) {
    EXPECT_EQ(msg->type(), MessageType::kPingResponse);
    EXPECT_EQ(static_cast<protocol::PingResponse&>(*msg).seq, 7u);
    ponged.store(true);
  });

  auto ping = std::make_unique<protocol::PingRequest>();
  ping->from = 1;
  ping->to = 2;
  ping->seq = 7;
  transport->Send(std::move(ping));

  harness->RunUntilTrue([&]() { return ponged.load(); });
  EXPECT_TRUE(ponged.load());
}

// ---------------------------------------------------------------------------
// IStableStorage contracts
// ---------------------------------------------------------------------------

TEST_P(RuntimeContractTest, StorageFlushCompletesAndCounts) {
  auto harness = MakeHarness(GetParam());
  Runtime* rt = harness->runtime();
  std::unique_ptr<IStableStorage> device = rt->OpenStorage(1, "contract.log");

  std::atomic<int> durable{0};
  device->Flush("alpha", MsToMicros(1), [&]() { durable.fetch_add(1); });
  device->Flush("beta", MsToMicros(1), [&]() { durable.fetch_add(1); });

  harness->RunUntilTrue([&]() { return durable.load() == 2; });
  EXPECT_EQ(durable.load(), 2);
  EXPECT_EQ(device->fsyncs(), 2u);
  EXPECT_EQ(device->bytes_flushed(), 9u);  // "alpha" + "beta"
}

INSTANTIATE_TEST_SUITE_P(Backends, RuntimeContractTest,
                         ::testing::Values(Backend::kSim, Backend::kLoopback),
                         [](const ::testing::TestParamInfo<Backend>& info) {
                           return info.param == Backend::kSim ? "Sim"
                                                              : "Loopback";
                         });

// ---------------------------------------------------------------------------
// Codec: every MessageType round-trips bit-stably.
//
// Equality via re-encoding: decode(encode(m)) must re-encode to the same
// bytes, which covers every serialized field without per-type comparators.
// ---------------------------------------------------------------------------

void ExpectRoundTrip(const MessageBase& msg) {
  const std::string bytes = EncodeMessage(msg);
  std::unique_ptr<MessageBase> decoded = DecodeMessage(bytes);
  ASSERT_NE(decoded, nullptr)
      << "decode failed for type " << static_cast<int>(msg.type());
  EXPECT_EQ(decoded->type(), msg.type());
  EXPECT_EQ(decoded->from, msg.from);
  EXPECT_EQ(decoded->to, msg.to);
  EXPECT_EQ(EncodeMessage(*decoded), bytes)
      << "re-encode mismatch for type " << static_cast<int>(msg.type());

  // Truncation at every boundary must fail cleanly, never crash or
  // accept a partial message.
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_EQ(DecodeMessage(bytes.substr(0, cut)), nullptr)
        << "truncated decode succeeded at " << cut << "/" << bytes.size();
  }
}

template <typename T>
std::unique_ptr<T> Stamped() {
  auto msg = std::make_unique<T>();
  msg->from = 3;
  msg->to = 9;
  return msg;
}

protocol::ClientOp SampleOp() {
  protocol::ClientOp op;
  op.key = RecordKey{1, 42};
  op.is_write = true;
  op.value = -7;
  op.is_delta = true;
  return op;
}

sharding::ShardRange SampleRange() {
  sharding::ShardRange range;
  range.table = 1;
  range.lo = 100;
  range.hi = 200;
  range.owner = 4;
  range.version = 9;
  return range;
}

protocol::ReplEntry SampleEntry(bool with_migration) {
  protocol::ReplEntry entry;
  entry.index = 11;
  entry.epoch = 2;
  entry.type = protocol::ReplEntryType::kCommit;
  entry.xid = Xid{77, 3};
  entry.coordinator = 1;
  entry.writes.push_back(protocol::ReplWrite{RecordKey{1, 5}, 50});
  entry.writes.push_back(protocol::ReplWrite{RecordKey{1, 6}, -3});
  entry.at = 12345;
  if (with_migration) {
    protocol::MigrationRecord record;
    record.migration_id = 8;
    record.range = SampleRange();
    record.dest = 5;
    record.dest_leader = 6;
    record.new_version = 10;
    record.balancer = 1;
    record.timeout = MsToMicros(500);
    record.delta_next_seq = 4;
    entry.migration =
        std::make_shared<const protocol::MigrationRecord>(record);
  }
  entry.ingest_migration_id = 8;
  entry.ingest_chunk_seq = 2;
  entry.ingest_content_hash = 0x9e3779b97f4a7c15ull;
  return entry;
}

TEST(RuntimeCodecTest, ClientMessagesRoundTrip) {
  auto round = Stamped<protocol::ClientRoundRequest>();
  round->client_tag = 5;
  round->txn_id = 99;
  round->tenant = 7;
  round->ops = {SampleOp(), SampleOp()};
  round->last_round = true;
  ExpectRoundTrip(*round);

  auto resp = Stamped<protocol::ClientRoundResponse>();
  resp->client_tag = 5;
  resp->txn_id = 99;
  resp->status = Status::Aborted("deadlock victim");
  resp->values = {1, -2, 3};
  ExpectRoundTrip(*resp);

  auto finish = Stamped<protocol::ClientFinishRequest>();
  finish->client_tag = 5;
  finish->txn_id = 99;
  finish->commit = false;
  ExpectRoundTrip(*finish);

  auto result = Stamped<protocol::ClientTxnResult>();
  result->client_tag = 5;
  result->txn_id = 99;
  result->status = Status::TimedOut("lock wait");
  ExpectRoundTrip(*result);

  auto shed = Stamped<protocol::OverloadedResponse>();
  shed->client_tag = 5;
  shed->tenant = 7;
  shed->retry_after_hint = MsToMicros(25);
  ExpectRoundTrip(*shed);
}

// The trace context is an envelope-level field: every message carries one
// absence byte when unsampled, or the three span ids when sampled. Both
// shapes must round-trip bit-stably on any message type.
TEST(RuntimeCodecTest, TraceContextRoundTrip) {
  auto bare = Stamped<protocol::BranchExecuteRequest>();
  bare->xid = Xid{99, 2};
  bare->ops = {SampleOp()};
  ExpectRoundTrip(*bare);
  const std::string without = EncodeMessage(*bare);

  auto traced = Stamped<protocol::BranchExecuteRequest>();
  traced->xid = Xid{99, 2};
  traced->ops = {SampleOp()};
  traced->trace =
      obs::TraceContext{0xfeedface12345678ull, 0x1111ull, 0x2222ull};
  ExpectRoundTrip(*traced);
  const std::string with = EncodeMessage(*traced);

  // Unsampled costs exactly one absence byte; sampling adds the 3 ids.
  EXPECT_EQ(with.size(), without.size() + 3 * sizeof(uint64_t));

  std::unique_ptr<MessageBase> decoded = DecodeMessage(with);
  ASSERT_NE(decoded, nullptr);
  EXPECT_EQ(decoded->trace.trace_id, traced->trace.trace_id);
  EXPECT_EQ(decoded->trace.span_id, traced->trace.span_id);
  EXPECT_EQ(decoded->trace.parent_span_id, traced->trace.parent_span_id);

  std::unique_ptr<MessageBase> decoded_bare = DecodeMessage(without);
  ASSERT_NE(decoded_bare, nullptr);
  EXPECT_FALSE(decoded_bare->trace.valid());

  // Same invariants on a client-facing envelope.
  auto round = Stamped<protocol::ClientRoundRequest>();
  round->txn_id = 7;
  round->ops = {SampleOp()};
  round->trace = obs::TraceContext{0xabcull, 0xdefull, 0x123ull};
  ExpectRoundTrip(*round);
  std::unique_ptr<MessageBase> round_decoded =
      DecodeMessage(EncodeMessage(*round));
  ASSERT_NE(round_decoded, nullptr);
  EXPECT_EQ(round_decoded->trace.trace_id, round->trace.trace_id);
}

TEST(RuntimeCodecTest, BranchMessagesRoundTrip) {
  auto exec = Stamped<protocol::BranchExecuteRequest>();
  exec->xid = Xid{99, 2};
  exec->round_seq = 3;
  exec->begin_branch = true;
  exec->ops = {SampleOp()};
  exec->last_statement = true;
  exec->peers = {2, 3, 4};
  exec->coordinator = 1;
  ExpectRoundTrip(*exec);

  auto exec_resp = Stamped<protocol::BranchExecuteResponse>();
  exec_resp->xid = Xid{99, 2};
  exec_resp->round_seq = 3;
  exec_resp->status = Status::Conflict("version check");
  exec_resp->values = {17};
  exec_resp->local_exec_latency = 250;
  exec_resp->rolled_back = true;
  ExpectRoundTrip(*exec_resp);

  auto prepare = Stamped<protocol::PrepareRequest>();
  prepare->xid = Xid{99, 2};
  ExpectRoundTrip(*prepare);

  auto batch = Stamped<protocol::PrepareBatch>();
  batch->xids = {Xid{99, 2}, Xid{100, 3}};
  ExpectRoundTrip(*batch);

  auto vote = Stamped<protocol::VoteMessage>();
  vote->xid = Xid{99, 2};
  vote->vote = protocol::Vote::kRollbackOnly;
  ExpectRoundTrip(*vote);

  auto decision = Stamped<protocol::DecisionRequest>();
  decision->xid = Xid{99, 2};
  decision->commit = false;
  decision->one_phase = true;
  ExpectRoundTrip(*decision);

  auto decisions = Stamped<protocol::DecisionBatch>();
  decisions->items = {protocol::DecisionItem{Xid{99, 2}, true, false},
                      protocol::DecisionItem{Xid{100, 3}, false, true}};
  ExpectRoundTrip(*decisions);

  auto ack = Stamped<protocol::DecisionAck>();
  ack->xid = Xid{99, 2};
  ack->committed = true;
  ack->one_phase = true;
  ack->status = Status::OK();
  ExpectRoundTrip(*ack);

  auto peer_abort = Stamped<protocol::PeerAbortRequest>();
  peer_abort->txn_id = 99;
  peer_abort->origin = 4;
  ExpectRoundTrip(*peer_abort);
}

TEST(RuntimeCodecTest, ReplicationMessagesRoundTrip) {
  auto append = Stamped<protocol::ReplAppendRequest>();
  append->group = 2;
  append->epoch = 3;
  append->prev_index = 10;
  append->prev_epoch = 2;
  append->entries = {SampleEntry(false), SampleEntry(true)};
  append->commit_watermark = 9;
  append->compact_floor = 5;
  ExpectRoundTrip(*append);

  // The sealed shape: entries packed and compressed into the envelope.
  // Framing must carry the codec/length/hash fields bit-stably — they are
  // what the receiver's bounds and corruption checks run against.
  auto sealed = Stamped<protocol::ReplAppendRequest>();
  sealed->group = 2;
  sealed->epoch = 3;
  sealed->prev_index = 10;
  sealed->prev_epoch = 2;
  for (int i = 0; i < 8; ++i) sealed->entries.push_back(SampleEntry(false));
  sealed->commit_watermark = 9;
  protocol::SealAppendPayload(common::WireCodec::kBlock, sealed.get());
  EXPECT_TRUE(sealed->entries.empty());
  EXPECT_FALSE(sealed->payload.empty());
  ExpectRoundTrip(*sealed);

  auto append_ack = Stamped<protocol::ReplAppendAck>();
  append_ack->group = 2;
  append_ack->epoch = 3;
  append_ack->ack_index = 12;
  append_ack->ok = false;
  append_ack->codec_mask = common::SupportedCodecMask();
  ExpectRoundTrip(*append_ack);

  auto vote_req = Stamped<protocol::ReplVoteRequest>();
  vote_req->group = 2;
  vote_req->epoch = 4;
  vote_req->last_log_epoch = 3;
  vote_req->last_log_index = 12;
  ExpectRoundTrip(*vote_req);

  auto vote_resp = Stamped<protocol::ReplVoteResponse>();
  vote_resp->group = 2;
  vote_resp->epoch = 4;
  vote_resp->granted = true;
  vote_resp->voter_last_index = 11;
  ExpectRoundTrip(*vote_resp);

  auto announce = Stamped<protocol::LeaderAnnounce>();
  announce->group = 2;
  announce->epoch = 4;
  announce->leader = 5;
  ExpectRoundTrip(*announce);

  auto not_leader = Stamped<protocol::NotLeaderResponse>();
  not_leader->group = 2;
  not_leader->epoch = 4;
  not_leader->leader_hint = 5;
  ExpectRoundTrip(*not_leader);

  auto follower_read = Stamped<protocol::FollowerReadRequest>();
  follower_read->group = 2;
  follower_read->txn_id = 99;
  follower_read->round_seq = 1;
  follower_read->keys = {RecordKey{1, 5}, RecordKey{1, 6}};
  follower_read->max_staleness = MsToMicros(50);
  ExpectRoundTrip(*follower_read);

  auto follower_resp = Stamped<protocol::FollowerReadResponse>();
  follower_resp->group = 2;
  follower_resp->txn_id = 99;
  follower_resp->round_seq = 1;
  follower_resp->ok = true;
  follower_resp->staleness = 120;
  follower_resp->values = {4, 5};
  ExpectRoundTrip(*follower_resp);
}

TEST(RuntimeCodecTest, ShardingMessagesRoundTrip) {
  auto migrate = Stamped<protocol::ShardMigrateRequest>();
  migrate->migration_id = 8;
  migrate->range = SampleRange();
  migrate->dest = 5;
  migrate->dest_leader = 6;
  migrate->new_version = 10;
  migrate->timeout = MsToMicros(500);
  ExpectRoundTrip(*migrate);

  auto cancel = Stamped<protocol::ShardMigrateCancel>();
  cancel->migration_id = 8;
  ExpectRoundTrip(*cancel);

  auto chunk = Stamped<protocol::ShardSnapshotChunk>();
  chunk->migration_id = 8;
  chunk->group = 5;
  chunk->range = SampleRange();
  chunk->seq = 3;
  chunk->last = true;
  chunk->epoch = 2;
  chunk->base_index = 40;
  chunk->base_epoch = 2;
  chunk->records = {protocol::ReplWrite{RecordKey{1, 7}, 70}};
  ExpectRoundTrip(*chunk);

  // Sealed (compressed) chunk: the envelope fields ride the same frame.
  auto sealed_chunk = Stamped<protocol::ShardSnapshotChunk>();
  sealed_chunk->migration_id = 8;
  sealed_chunk->group = 5;
  sealed_chunk->range = SampleRange();
  sealed_chunk->seq = 4;
  for (uint64_t k = 0; k < 64; ++k) {
    sealed_chunk->records.push_back(
        protocol::ReplWrite{RecordKey{1, 100 + k}, static_cast<int64_t>(k)});
  }
  protocol::SealChunkPayload(common::WireCodec::kBlock, sealed_chunk.get());
  EXPECT_TRUE(sealed_chunk->records.empty());
  EXPECT_NE(sealed_chunk->content_hash, 0u);
  ExpectRoundTrip(*sealed_chunk);

  auto chunk_ack = Stamped<protocol::ShardSnapshotAck>();
  chunk_ack->migration_id = 8;
  chunk_ack->seq = 3;
  chunk_ack->credit = 4;
  chunk_ack->codec_mask = common::SupportedCodecMask();
  ExpectRoundTrip(*chunk_ack);

  auto offer = Stamped<protocol::ShardSeedOffer>();
  offer->migration_id = 8;
  offer->group = 5;
  offer->range = SampleRange();
  offer->epoch = 2;
  offer->base_index = 40;
  offer->base_epoch = 2;
  for (uint64_t seq = 1; seq <= 3; ++seq) {
    protocol::SeedDigest digest;
    digest.seq = seq;
    digest.hash = 0x1000 + seq;
    digest.lo = RecordKey{1, 100 * seq};
    digest.hi = RecordKey{1, 100 * seq + 99};
    digest.last = seq == 3;
    offer->digests.push_back(digest);
  }
  ExpectRoundTrip(*offer);

  auto decline = Stamped<protocol::ShardSeedDecline>();
  decline->migration_id = 8;
  decline->group = 5;
  decline->epoch = 2;
  decline->declined = {1, 2};
  decline->delta_seq = 7;
  decline->credit = 3;
  decline->codec_mask = common::SupportedCodecMask();
  ExpectRoundTrip(*decline);

  auto delta = Stamped<protocol::ShardDeltaBatch>();
  delta->migration_id = 8;
  delta->seq = 2;
  delta->writes = {protocol::ReplWrite{RecordKey{1, 8}, 80}};
  ExpectRoundTrip(*delta);

  auto delta_ack = Stamped<protocol::ShardDeltaAck>();
  delta_ack->migration_id = 8;
  delta_ack->seq = 2;
  ExpectRoundTrip(*delta_ack);

  auto cutover = Stamped<protocol::ShardCutoverReady>();
  cutover->migration_id = 8;
  cutover->range = SampleRange();
  cutover->logged = true;
  ExpectRoundTrip(*cutover);

  auto aborted = Stamped<protocol::ShardMigrateAborted>();
  aborted->migration_id = 8;
  ExpectRoundTrip(*aborted);

  auto map_update = Stamped<protocol::ShardMapUpdate>();
  map_update->entries = {SampleRange(), SampleRange()};
  ExpectRoundTrip(*map_update);

  auto redirect = Stamped<protocol::ShardRedirect>();
  redirect->txn_id = 99;
  redirect->round_seq = 2;
  redirect->entry = SampleRange();
  ExpectRoundTrip(*redirect);
}

TEST(RuntimeCodecTest, MonitorMessagesRoundTrip) {
  auto ping = Stamped<protocol::PingRequest>();
  ping->seq = 12;
  ping->sent_at = 3456;
  ping->shard_epoch = 2;
  ExpectRoundTrip(*ping);

  auto pong = Stamped<protocol::PingResponse>();
  pong->seq = 12;
  pong->sent_at = 3456;
  pong->inflight = 17;
  pong->run_queue = 9;
  pong->run_queue_limit = 32;
  pong->shard_epoch = 3;
  pong->map_entries = {SampleRange()};
  ExpectRoundTrip(*pong);
}

TEST(RuntimeCodecTest, BaselineStoreMessagesRoundTrip) {
  baselines::StagedOp staged;
  staged.key = RecordKey{1, 9};
  staged.expected_version = 4;
  staged.is_write = true;
  staged.write_value = 90;

  auto read_req = Stamped<baselines::StoreReadRequest>();
  read_req->txn = 99;
  read_req->req_id = 1;
  read_req->keys = {RecordKey{1, 9}};
  ExpectRoundTrip(*read_req);

  auto read_resp = Stamped<baselines::StoreReadResponse>();
  read_resp->txn = 99;
  read_resp->req_id = 1;
  read_resp->status = Status::OK();
  read_resp->results = {baselines::ReadResult{90, 4}};
  ExpectRoundTrip(*read_resp);

  auto prep = Stamped<baselines::StorePrepareRequest>();
  prep->txn = 99;
  prep->ops = {staged};
  ExpectRoundTrip(*prep);

  auto prep_resp = Stamped<baselines::StorePrepareResponse>();
  prep_resp->txn = 99;
  prep_resp->status = Status::Conflict("stale version");
  ExpectRoundTrip(*prep_resp);

  auto store_decision = Stamped<baselines::StoreDecisionRequest>();
  store_decision->txn = 99;
  store_decision->commit = false;
  ExpectRoundTrip(*store_decision);

  auto store_ack = Stamped<baselines::StoreDecisionAck>();
  store_ack->txn = 99;
  store_ack->commit = false;
  ExpectRoundTrip(*store_ack);

  auto yb_batch = Stamped<baselines::YbBatchRequest>();
  yb_batch->txn = 99;
  yb_batch->req_id = 2;
  yb_batch->ops = {staged};
  ExpectRoundTrip(*yb_batch);

  auto yb_resp = Stamped<baselines::YbBatchResponse>();
  yb_resp->txn = 99;
  yb_resp->req_id = 2;
  yb_resp->status = Status::OK();
  yb_resp->results = {baselines::ReadResult{90, 4}};
  ExpectRoundTrip(*yb_resp);

  auto resolve = Stamped<baselines::YbResolveRequest>();
  resolve->txn = 99;
  resolve->commit = true;
  ExpectRoundTrip(*resolve);
}

TEST(RuntimeCodecTest, MalformedInputDecodesToNull) {
  EXPECT_EQ(DecodeMessage(""), nullptr);
  EXPECT_EQ(DecodeMessage("x"), nullptr);
  // Unknown type tag.
  std::string junk(10, '\xff');
  EXPECT_EQ(DecodeMessage(junk), nullptr);
  // Trailing garbage after a valid message is rejected (AtEnd check).
  auto ping = Stamped<protocol::PingRequest>();
  std::string bytes = EncodeMessage(*ping);
  bytes.push_back('\0');
  EXPECT_EQ(DecodeMessage(bytes), nullptr);
}

// The enum is the codec's checklist: if someone appends a MessageType
// this static count forces them here (and into codec.cc) on the same PR.
TEST(RuntimeCodecTest, EveryMessageTypeIsCovered) {
  // kShardSeedDecline is the last enumerator; 0 is kUnknown.
  EXPECT_EQ(static_cast<int>(MessageType::kShardSeedDecline), 45);
}

}  // namespace
}  // namespace runtime
}  // namespace geotp
