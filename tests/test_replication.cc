// Replication subsystem tests: quorum-gated durability, leader failover
// with the bank-transfer balance-conservation invariant, stale-bounded
// follower reads, and rejoin/catch-up of a restarted leader.
#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "replication/log_shipper.h"
#include "replication/replicator.h"
#include "sim_fixture.h"

namespace geotp {
namespace {

using middleware::MiddlewareConfig;
using testing_support::MiniCluster;

MiniCluster::Options ReplicatedOptions(int rf = 3) {
  MiniCluster::Options options;
  options.dm = MiddlewareConfig::GeoTP();
  options.replication_factor = rf;
  return options;
}

// ---------------------------------------------------------------------------
// Log shipping basics
// ---------------------------------------------------------------------------

TEST(ReplicationLogTest, AppendSliceTruncate) {
  replication::ReplicationLog log;
  for (int i = 0; i < 5; ++i) {
    protocol::ReplEntry entry;
    entry.type = protocol::ReplEntryType::kCommit;
    entry.xid = Xid{static_cast<TxnId>(100 + i), 2};
    EXPECT_EQ(log.Append(entry), static_cast<uint64_t>(i + 1));
  }
  EXPECT_EQ(log.last_index(), 5u);
  EXPECT_EQ(log.At(3).xid.txn_id, 102u);
  auto slice = log.Slice(2, 4);
  ASSERT_EQ(slice.size(), 3u);
  EXPECT_EQ(slice[0].index, 2u);
  log.TruncateFrom(4);
  EXPECT_EQ(log.last_index(), 3u);
  log.TruncateFrom(10);  // no-op
  EXPECT_EQ(log.last_index(), 3u);
}

TEST(ReplicationLogTest, PrefixTruncationKeepsGlobalIndexing) {
  replication::ReplicationLog log;
  for (int i = 0; i < 6; ++i) {
    protocol::ReplEntry entry;
    entry.type = protocol::ReplEntryType::kCommit;
    entry.epoch = static_cast<uint64_t>(i);
    entry.xid = Xid{static_cast<TxnId>(100 + i), 2};
    log.Append(entry);
  }
  EXPECT_EQ(log.TruncatePrefix(4), 4u);
  EXPECT_EQ(log.first_index(), 5u);
  EXPECT_EQ(log.last_index(), 6u);
  EXPECT_EQ(log.At(5).xid.txn_id, 104u);
  // The compaction boundary still answers epoch queries (log matching).
  EXPECT_EQ(log.EpochAt(4), 3u);
  // Slices clamp into the retained range.
  auto slice = log.Slice(1, 6);
  ASSERT_EQ(slice.size(), 2u);
  EXPECT_EQ(slice[0].index, 5u);
  // Re-truncating below the offset is a no-op; appends continue at 7.
  EXPECT_EQ(log.TruncatePrefix(3), 0u);
  protocol::ReplEntry entry;
  entry.type = protocol::ReplEntryType::kCommit;
  entry.xid = Xid{200, 2};
  EXPECT_EQ(log.Append(entry), 7u);
}

TEST(ReplicationTest, CommittedWritesReachFollowers) {
  MiniCluster cluster(ReplicatedOptions());
  ASSERT_EQ(cluster.RunTxn(1, {MiniCluster::Write(cluster.KeyOn(0, 1), 42),
                               MiniCluster::Write(cluster.KeyOn(1, 2), 7)})
                .ok(),
            true);
  cluster.RunFor(500);  // let appends drain to both groups' followers

  for (int group : {0, 1}) {
    for (int k = 0; k < 2; ++k) {
      auto& store = cluster.follower(group, k).engine().store();
      const RecordKey key = cluster.KeyOn(group, group == 0 ? 1 : 2);
      auto record = store.Get(key);
      ASSERT_TRUE(record.has_value())
          << "group " << group << " follower " << k;
      EXPECT_EQ(record->value, group == 0 ? 42 : 7);
    }
    // The leader shipped a prepare and a commit entry per group (or one
    // commit for the one-phase path) and every entry reached quorum.
    auto* repl = cluster.source(group).replicator();
    EXPECT_TRUE(repl->IsLeader());
    EXPECT_GE(repl->log().last_index(), 1u);
    EXPECT_EQ(repl->commit_watermark(), repl->log().last_index());
  }
}

// The tentpole guarantee: commit durability is only reported once the
// entry is on a quorum. With both followers partitioned the commit must
// stall; restoring one follower completes it.
TEST(ReplicationTest, QuorumGatesCommitDurability) {
  MiniCluster cluster(ReplicatedOptions());
  cluster.network().Partition(cluster.follower(0, 0).id());
  cluster.network().Partition(cluster.follower(0, 1).id());

  cluster.SendRound(1, {MiniCluster::Write(cluster.KeyOn(0, 3), 5)}, true);
  cluster.RunFor(1000);
  ASSERT_FALSE(cluster.txn(1).round_responses.empty());
  cluster.SendCommit(1);
  cluster.RunFor(2000);
  // Execution finished, but the commit cannot reach a quorum.
  EXPECT_FALSE(cluster.txn(1).has_result);

  cluster.network().Restore(cluster.follower(0, 0).id());
  cluster.RunFor(2000);  // heartbeat retransmission catches the follower up
  ASSERT_TRUE(cluster.txn(1).has_result);
  EXPECT_TRUE(cluster.txn(1).result.ok());
  auto record = cluster.follower(0, 0).engine().store().Get(cluster.KeyOn(0, 3));
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->value, 5);
}

// Quorum acks fire in log order even when acks arrive out of order across
// entries (two groups' entries interleave arbitrarily).
TEST(ReplicationTest, QuorumAckOrdering) {
  MiniCluster cluster(ReplicatedOptions());
  for (uint64_t t = 1; t <= 5; ++t) {
    ASSERT_TRUE(cluster
                    .RunTxn(t, {MiniCluster::Write(cluster.KeyOn(0, t),
                                                   static_cast<int64_t>(t)),
                                MiniCluster::Write(cluster.KeyOn(1, t),
                                                   static_cast<int64_t>(t))})
                    .ok());
  }
  cluster.RunFor(500);
  for (int group : {0, 1}) {
    auto* repl = cluster.source(group).replicator();
    // Watermark never runs ahead of the log and everything reached quorum.
    EXPECT_EQ(repl->commit_watermark(), repl->log().last_index());
    for (int k = 0; k < 2; ++k) {
      EXPECT_EQ(cluster.follower(group, k).replicator()->applied_index(),
                repl->commit_watermark());
    }
  }
}

// ---------------------------------------------------------------------------
// Leader failover
// ---------------------------------------------------------------------------

TEST(ReplicationTest, LeaderFailoverElectsFollowerAndConservesBalances) {
  MiniCluster cluster(ReplicatedOptions());
  Rng rng(7);
  constexpr int kAccounts = 12;
  uint64_t tag = 1;

  auto transfer = [&](uint64_t t) {
    const int node_a = static_cast<int>(rng.NextU64(2));
    const int node_b = 1 - node_a;
    const uint64_t off_a = rng.NextU64(kAccounts);
    const uint64_t off_b = rng.NextU64(kAccounts);
    const int64_t amount = static_cast<int64_t>(rng.NextU64(40)) + 1;
    cluster.SendRound(t, {
        MiniCluster::Write(cluster.KeyOn(node_a, off_a), -amount, true),
        MiniCluster::Write(cluster.KeyOn(node_b, off_b), amount, true),
    }, true);
  };

  // Phase 1: normal traffic.
  for (int i = 0; i < 10; ++i) {
    transfer(tag++);
    cluster.RunFor(40);
  }

  // Kill group 0's leader mid-traffic (no restart): the followers must
  // elect a replacement and the middleware must re-route.
  cluster.source(0).Crash();
  for (int i = 0; i < 6; ++i) {
    transfer(tag++);
    cluster.RunFor(40);
  }
  cluster.RunFor(2000);  // election + announce + retries settle

  datasource::DataSourceNode* new_leader = cluster.leader_of(0);
  ASSERT_NE(new_leader, nullptr) << "no leader elected for group 0";
  EXPECT_NE(new_leader->id(), cluster.source(0).id());
  EXPECT_GE(new_leader->replicator()->epoch(), 1u);
  EXPECT_GE(cluster.dm().stats().failovers_observed, 1u);

  // Phase 2: the workload continues against the new leader.
  const uint64_t resume_tag = tag;
  for (int i = 0; i < 10; ++i) {
    transfer(tag++);
    cluster.RunFor(60);
  }

  // Settle: commit everything that produced a round response.
  std::vector<bool> commit_sent(tag, false);
  for (int pass = 0; pass < 4; ++pass) {
    cluster.RunFor(8000);
    for (uint64_t t = 1; t < tag; ++t) {
      auto& txn = cluster.txn(t);
      if (!commit_sent[t] && !txn.has_result && !txn.round_responses.empty()) {
        cluster.SendCommit(t);
        commit_sent[t] = true;
      }
    }
  }
  cluster.RunFor(8000);

  // Post-failover transactions must actually work (not all abort).
  int resumed_commits = 0;
  for (uint64_t t = resume_tag; t < tag; ++t) {
    auto& txn = cluster.txn(t);
    if (txn.has_result && txn.result.ok()) resumed_commits++;
  }
  EXPECT_GT(resumed_commits, 0);

  // Balance conservation over the surviving replicas' committed state.
  int64_t sum = 0;
  auto& store0 = new_leader->engine().store();
  auto& store1 = cluster.source(1).engine().store();
  for (uint64_t off = 0; off < kAccounts; ++off) {
    if (auto rec = store0.Get(cluster.KeyOn(0, off))) sum += rec->value;
    if (auto rec = store1.Get(cluster.KeyOn(1, off))) sum += rec->value;
  }
  EXPECT_EQ(sum, 0);

  // No in-doubt branches linger on the promoted leader.
  EXPECT_TRUE(new_leader->engine().PreparedXids().empty());
  EXPECT_EQ(new_leader->engine().ActiveCount(), 0u);
}

TEST(ReplicationTest, RestartedLeaderRejoinsAsFollowerAndCatchesUp) {
  MiniCluster cluster(ReplicatedOptions());
  ASSERT_TRUE(cluster.RunTxn(1, {MiniCluster::Write(cluster.KeyOn(0, 1), 10)})
                  .ok());

  cluster.source(0).Crash();
  cluster.RunFor(1500);  // election completes
  datasource::DataSourceNode* new_leader = cluster.leader_of(0);
  ASSERT_NE(new_leader, nullptr);
  ASSERT_NE(new_leader->id(), cluster.source(0).id());

  // Write through the new leader while the old one is down.
  ASSERT_TRUE(cluster.RunTxn(2, {MiniCluster::Write(cluster.KeyOn(0, 1), 20)})
                  .ok());

  cluster.source(0).Restart();
  cluster.RunFor(2000);  // heartbeats re-ship the missing entries

  EXPECT_EQ(cluster.source(0).replicator()->role(),
            replication::Role::kFollower);
  EXPECT_TRUE(new_leader->replicator()->IsLeader());
  auto record = cluster.source(0).engine().store().Get(cluster.KeyOn(0, 1));
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->value, 20);
}

// ---------------------------------------------------------------------------
// Follower reads
// ---------------------------------------------------------------------------

TEST(ReplicationTest, FollowerReadsServeFreshCommittedData) {
  MiniCluster::Options options = ReplicatedOptions();
  options.dm.follower_reads = true;
  options.dm.follower_read_stale_bound = MsToMicros(500);
  MiniCluster cluster(options);

  ASSERT_TRUE(cluster.RunTxn(1, {MiniCluster::Write(cluster.KeyOn(0, 4), 99)})
                  .ok());
  cluster.RunFor(200);  // replicate + heartbeat freshness

  Status st = cluster.RunTxn(2, {MiniCluster::Read(cluster.KeyOn(0, 4))});
  ASSERT_TRUE(st.ok());
  ASSERT_FALSE(cluster.txn(2).round_responses.empty());
  EXPECT_EQ(cluster.txn(2).round_responses[0].values[0], 99);
  EXPECT_GE(cluster.dm().stats().follower_reads, 1u);
  // No branch ever began at the leader for the read-only transaction.
  EXPECT_EQ(cluster.source(0).stats().batches_executed, 1u);  // the write
}

TEST(ReplicationTest, StaleFollowerReadFallsBackToLeader) {
  MiniCluster::Options options = ReplicatedOptions();
  options.dm.follower_reads = true;
  // Heartbeats far apart (with the election timeout pushed further out so
  // the leader is not deposed) + a tiny staleness bound: followers are
  // always too stale by the time a read arrives.
  options.repl.heartbeat_interval = SecToMicros(5);
  options.repl.election_timeout = SecToMicros(30);
  options.repl.election_stagger = SecToMicros(1);
  options.dm.follower_read_stale_bound = MsToMicros(1);
  MiniCluster cluster(options);

  ASSERT_TRUE(cluster.RunTxn(1, {MiniCluster::Write(cluster.KeyOn(0, 6), 55)})
                  .ok());
  cluster.RunFor(1000);

  Status st = cluster.RunTxn(2, {MiniCluster::Read(cluster.KeyOn(0, 6))});
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(cluster.txn(2).round_responses[0].values[0], 55);
  EXPECT_GE(cluster.dm().stats().follower_read_fallbacks, 1u);
}

TEST(ReplicationTest, CrashedFollowerReadTimesOutAndFallsBack) {
  MiniCluster::Options options = ReplicatedOptions();
  options.dm.follower_reads = true;
  options.dm.follower_read_stale_bound = MsToMicros(500);
  options.dm.follower_read_timeout = MsToMicros(300);
  MiniCluster cluster(options);

  ASSERT_TRUE(cluster.RunTxn(1, {MiniCluster::Write(cluster.KeyOn(0, 8), 31)})
                  .ok());
  cluster.RunFor(200);
  // Crash both followers: whichever one the read is routed to is dead.
  cluster.follower(0, 0).Crash();
  cluster.follower(0, 1).Crash();

  Status st = cluster.RunTxn(2, {MiniCluster::Read(cluster.KeyOn(0, 8))});
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(cluster.txn(2).round_responses[0].values[0], 31);
  EXPECT_GE(cluster.dm().stats().follower_read_fallbacks, 1u);
}

TEST(ReplicationTest, FollowerReadsAvoidCrashedFollowerWithFrozenEstimate) {
  MiniCluster::Options options = ReplicatedOptions();
  options.dm.follower_reads = true;
  options.dm.follower_read_stale_bound = MsToMicros(500);
  MiniCluster cluster(options);

  ASSERT_TRUE(cluster.RunTxn(1, {MiniCluster::Write(cluster.KeyOn(0, 4), 17)})
                  .ok());
  cluster.RunFor(200);  // both followers have RTT samples
  // Crash one follower. Its RTT estimate freezes at an attractive value;
  // routing must notice the stale sample and pick the live follower
  // instead of timing out against the dead one on every read.
  cluster.follower(0, 0).Crash();
  cluster.RunFor(300);  // crashed follower's samples go stale

  const uint64_t fallbacks_before =
      cluster.dm().stats().follower_read_fallbacks;
  Status st = cluster.RunTxn(2, {MiniCluster::Read(cluster.KeyOn(0, 4))});
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(cluster.txn(2).round_responses[0].values[0], 17);
  // Served by the surviving follower directly — no timeout fallback.
  EXPECT_EQ(cluster.dm().stats().follower_read_fallbacks, fallbacks_before);
  EXPECT_GE(
      cluster.follower(0, 1).replicator()->stats().follower_reads_served, 1u);
}

// ---------------------------------------------------------------------------
// Log compaction & probe re-targeting
// ---------------------------------------------------------------------------

TEST(ReplicationTest, ReplicatedLogIsTruncatedUpToQuorumAppliedIndex) {
  MiniCluster cluster(ReplicatedOptions());
  for (uint64_t t = 1; t <= 8; ++t) {
    ASSERT_TRUE(cluster
                    .RunTxn(t, {MiniCluster::Write(cluster.KeyOn(0, t), 10),
                                MiniCluster::Write(cluster.KeyOn(1, t), 20)})
                    .ok());
  }
  cluster.RunFor(2000);  // heartbeats drain applies + compaction

  for (auto* replica : cluster.replica_group(0)) {
    const auto* repl = replica->replicator();
    // Everything resolved: the whole applied prefix is compacted away.
    EXPECT_GT(repl->stats().log_entries_truncated, 0u)
        << "replica " << replica->id();
    EXPECT_GE(repl->log().first_index(), repl->applied_index())
        << "replica " << replica->id();
  }
  // The system keeps working on the compacted log (ship/ack/apply).
  ASSERT_TRUE(cluster.RunTxn(100, {MiniCluster::Write(cluster.KeyOn(0, 99), 5),
                                   MiniCluster::Write(cluster.KeyOn(1, 99), 6)})
                  .ok());
}

TEST(ReplicationTest, LatencyMonitorRetargetsProbesAfterFailover) {
  MiniCluster cluster(ReplicatedOptions());
  cluster.RunFor(500);
  // Pre-failover: the monitor pings the seed leader (and the followers,
  // for nearest-replica routing), so all replicas have RTT estimates.
  auto& monitor = cluster.dm().monitor();
  EXPECT_GT(monitor.RttEstimate(cluster.source(0).id()), 0);
  EXPECT_GT(monitor.RttEstimate(cluster.follower(0, 0).id()), 0);
  EXPECT_GT(monitor.RttEstimate(cluster.follower(0, 1).id()), 0);

  cluster.source(0).Crash();
  cluster.RunFor(3000);  // election + announce; probes re-target
  datasource::DataSourceNode* new_leader = cluster.leader_of(0);
  ASSERT_NE(new_leader, nullptr);
  ASSERT_NE(new_leader->id(), cluster.source(0).id());

  // The crashed seed no longer answers; pings must now flow to the new
  // leader and keep the *logical* source estimate alive (scheduling looks
  // the logical id up). Sample counts at the new leader keep growing.
  const uint64_t pongs_before = monitor.pongs_received();
  const Micros logical_estimate = monitor.RttEstimate(2);  // logical id of group 0
  EXPECT_GT(logical_estimate, 0);
  cluster.RunFor(500);
  EXPECT_GT(monitor.pongs_received(), pongs_before);
  EXPECT_GT(monitor.RttEstimate(new_leader->id()), 0);
  // The logical estimate now tracks the new leader's (longer) path, not
  // the dead seed's: it converges towards the new leader's estimate.
  cluster.RunFor(2000);
  const Micros leader_rtt = monitor.RttEstimate(new_leader->id());
  const Micros logical_rtt = monitor.RttEstimate(2);
  EXPECT_NEAR(static_cast<double>(logical_rtt),
              static_cast<double>(leader_rtt),
              static_cast<double>(leader_rtt) * 0.2 + 100.0);
}

// ---------------------------------------------------------------------------
// Snapshot bootstrap (shared with the shard migration install path)
// ---------------------------------------------------------------------------

TEST(ReplicationTest, WipedFollowerBootstrapsFromStoreSnapshot) {
  MiniCluster cluster(ReplicatedOptions());

  // Commit a first batch and let compaction settle: every replica acked,
  // so the leader's retained log starts past these entries.
  for (uint64_t t = 1; t <= 6; ++t) {
    ASSERT_TRUE(
        cluster.RunTxn(t, {MiniCluster::Write(cluster.KeyOn(0, t), 10),
                           MiniCluster::Write(cluster.KeyOn(1, t), 20)})
            .ok());
  }
  cluster.RunFor(2000);
  auto* leader_repl = cluster.source(0).replicator();
  ASSERT_GT(leader_repl->log().first_index(), 1u);

  // A follower loses its disk entirely: its log cannot be repaired by
  // re-shipping (the needed prefix was compacted away) — only a snapshot
  // can re-seed it.
  auto& wiped = cluster.follower(0, 0);
  wiped.Crash();
  wiped.replicator()->WipeForBootstrap();

  // More committed traffic while the follower is gone.
  for (uint64_t t = 10; t <= 14; ++t) {
    ASSERT_TRUE(
        cluster.RunTxn(t, {MiniCluster::Write(cluster.KeyOn(0, t), 33)})
            .ok());
  }

  wiped.Restart();
  cluster.RunFor(3000);  // heartbeat -> gap nack -> snapshot -> tail

  EXPECT_GE(wiped.replicator()->stats().snapshot_installs, 1u);
  EXPECT_GE(cluster.source(0).replicator()->shipper_stats().snapshots_sent,
            1u);
  // The bootstrapped follower has caught up to the leader's applied state
  // — both the compacted-away prefix and the retained tail.
  EXPECT_GE(wiped.replicator()->applied_index(),
            leader_repl->commit_watermark());
  for (uint64_t t = 1; t <= 6; ++t) {
    auto record = wiped.engine().store().Get(cluster.KeyOn(0, t));
    ASSERT_TRUE(record.has_value()) << "key offset " << t;
    EXPECT_EQ(record->value, 10) << "key offset " << t;
  }
  for (uint64_t t = 10; t <= 14; ++t) {
    auto record = wiped.engine().store().Get(cluster.KeyOn(0, t));
    ASSERT_TRUE(record.has_value()) << "key offset " << t;
    EXPECT_EQ(record->value, 33) << "key offset " << t;
  }
  // And it serves as a quorum member again.
  ASSERT_TRUE(
      cluster.RunTxn(100, {MiniCluster::Write(cluster.KeyOn(0, 50), 7)})
          .ok());
}

// ---------------------------------------------------------------------------
// WAN codec negotiation + incremental re-seed
// ---------------------------------------------------------------------------

// Committed store contents in a canonical order, for byte-identical
// store comparisons across replicas.
std::vector<std::pair<RecordKey, int64_t>> SortedStore(
    datasource::DataSourceNode& node) {
  auto records = node.engine().CommittedRecords();
  std::sort(records.begin(), records.end(),
            [](const std::pair<RecordKey, int64_t>& a,
               const std::pair<RecordKey, int64_t>& b) {
              if (a.first.table != b.first.table) {
                return a.first.table < b.first.table;
              }
              return a.first.key < b.first.key;
            });
  return records;
}

TEST(ReplicationTest, MixedVersionFollowersNegotiateRawShipping) {
  MiniCluster::Options options = ReplicatedOptions();
  // The followers (ids >= 4 with two groups of three) run a build without
  // WAN compression: their acks advertise only the raw codec, so the
  // leader must keep shipping plain entry batches to them.
  options.ds_tweak_node = [](NodeId id, datasource::DataSourceConfig* config) {
    if (id >= 4) config->wan_compression = false;
  };
  MiniCluster cluster(options);

  for (uint64_t t = 1; t <= 8; ++t) {
    ASSERT_TRUE(
        cluster.RunTxn(t, {MiniCluster::Write(cluster.KeyOn(0, t), 5)}).ok());
  }
  cluster.RunFor(1000);

  // Replication stays fully functional across the version skew...
  for (int k = 0; k < 2; ++k) {
    auto record =
        cluster.follower(0, k).engine().store().Get(cluster.KeyOn(0, 3));
    ASSERT_TRUE(record.has_value()) << "follower " << k;
    EXPECT_EQ(record->value, 5) << "follower " << k;
  }
  // ...but every shipped batch was negotiated down to raw: wire == raw.
  const replication::LogShipperStats& raw_ship =
      cluster.source(0).replicator()->shipper_stats();
  EXPECT_GT(raw_ship.wan_bytes_raw, 0u);
  EXPECT_EQ(raw_ship.wan_bytes_wire, raw_ship.wan_bytes_raw);

  // Control: the same traffic against an all-new-version cluster ships
  // compressed batches — strictly fewer wire bytes than packed bytes.
  MiniCluster compressed(ReplicatedOptions());
  for (uint64_t t = 1; t <= 8; ++t) {
    ASSERT_TRUE(
        compressed.RunTxn(t, {MiniCluster::Write(compressed.KeyOn(0, t), 5)})
            .ok());
  }
  compressed.RunFor(1000);
  const replication::LogShipperStats& zip_ship =
      compressed.source(0).replicator()->shipper_stats();
  EXPECT_GT(zip_ship.wan_bytes_raw, 0u);
  EXPECT_LT(zip_ship.wan_bytes_wire, zip_ship.wan_bytes_raw);
}

// Drives one wiped-follower bootstrap and reports the leader-side WAN
// accounting plus whether the follower converged byte-identically.
// `warm` controls whether the wiped follower kept its committed store
// (the log device is always lost — WipeForBootstrap).
void RunReseed(bool warm, uint64_t* wire_bytes, uint64_t* chunks_declined,
               bool* identical) {
  MiniCluster::Options options = ReplicatedOptions();
  options.ds_tweak = [](datasource::DataSourceConfig* config) {
    config->migration_chunk_records = 64;  // 512 seeded records -> 8 chunks
  };
  MiniCluster cluster(options);

  // Seed a large committed range directly. The bootstrapping follower
  // holds it only in the warm run; its quorum peers always do.
  for (uint64_t off = 0; off < 512; ++off) {
    cluster.source(0).engine().store().Apply(cluster.KeyOn(0, off), 0);
    cluster.follower(0, 1).engine().store().Apply(cluster.KeyOn(0, off), 0);
    if (warm) {
      cluster.follower(0, 0).engine().store().Apply(cluster.KeyOn(0, off), 0);
    }
  }

  for (uint64_t t = 1; t <= 6; ++t) {
    ASSERT_TRUE(
        cluster.RunTxn(t, {MiniCluster::Write(cluster.KeyOn(0, t), 10)})
            .ok());
  }
  cluster.RunFor(2000);
  auto* leader_repl = cluster.source(0).replicator();
  ASSERT_GT(leader_repl->log().first_index(), 1u);  // compaction settled

  auto& wiped = cluster.follower(0, 0);
  wiped.Crash();
  wiped.replicator()->WipeForBootstrap();

  // More committed traffic while the follower is down; the touched keys
  // all land in the first 64-record chunk, so the remaining chunks stay
  // byte-identical to what a warm store already holds.
  for (uint64_t t = 10; t <= 14; ++t) {
    ASSERT_TRUE(
        cluster.RunTxn(t, {MiniCluster::Write(cluster.KeyOn(0, t), 33)})
            .ok());
  }

  wiped.Restart();
  cluster.RunFor(4000);  // heartbeat -> gap nack -> offer/decline -> chunks

  const replication::ReplicatorStats& stats = leader_repl->stats();
  EXPECT_GE(stats.bootstrap_offers_sent, 1u);
  *wire_bytes = stats.wan_bytes_wire;
  *chunks_declined = stats.bootstrap_chunks_declined;
  EXPECT_GE(wiped.replicator()->applied_index(),
            leader_repl->commit_watermark());
  *identical = SortedStore(wiped) == SortedStore(cluster.source(0));
}

TEST(ReplicationTest, ReseedWithHeldStoreDeclinesChunksAndShipsLess) {
  uint64_t cold_wire = 0, warm_wire = 0;
  uint64_t cold_declined = 0, warm_declined = 0;
  bool cold_identical = false, warm_identical = false;
  RunReseed(/*warm=*/false, &cold_wire, &cold_declined, &cold_identical);
  RunReseed(/*warm=*/true, &warm_wire, &warm_declined, &warm_identical);

  // Cold: nothing to decline, the whole range re-crosses the WAN.
  EXPECT_EQ(cold_declined, 0u);
  EXPECT_GT(cold_wire, 0u);
  // Warm: every chunk outside the dirtied head is declined by hash and
  // never shipped, so the resumed seed is strictly cheaper.
  EXPECT_GT(warm_declined, 0u);
  EXPECT_LT(warm_wire, cold_wire);
  // Both end byte-identical to the leader's committed store.
  EXPECT_TRUE(cold_identical);
  EXPECT_TRUE(warm_identical);
}

}  // namespace
}  // namespace geotp
