// Tests for the versioned store with write intents (ScalarDB / Yugabyte
// baselines substrate).
#include "storage/versioned_store.h"

#include <gtest/gtest.h>

namespace geotp {
namespace storage {
namespace {

RecordKey K(uint64_t k) { return RecordKey{1, k}; }

TEST(VersionedStoreTest, MissingKeyReadsAsZeroVersionZero) {
  VersionedStore store;
  auto rec = store.Get(K(1));
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->value, 0);
  EXPECT_EQ(rec->version, 0u);
}

TEST(VersionedStoreTest, LoadTablePopulates) {
  VersionedStore store;
  store.LoadTable(1, 10, 5);
  EXPECT_EQ(store.size(), 10u);
  EXPECT_EQ(store.Get(K(3))->value, 5);
}

TEST(VersionedStoreTest, CommitPromotesIntent) {
  VersionedStore store;
  ASSERT_TRUE(store.PutIntent(K(1), 100, 42).ok());
  EXPECT_EQ(store.Get(K(1))->value, 0);  // not yet visible
  store.CommitIntents(100);
  EXPECT_EQ(store.Get(K(1))->value, 42);
  EXPECT_EQ(store.Get(K(1))->version, 1u);
  EXPECT_FALSE(store.HasIntent(K(1), 100));
}

TEST(VersionedStoreTest, AbortDiscardsIntent) {
  VersionedStore store;
  ASSERT_TRUE(store.PutIntent(K(1), 100, 42).ok());
  store.AbortIntents(100);
  EXPECT_EQ(store.Get(K(1))->value, 0);
  EXPECT_EQ(store.Get(K(1))->version, 0u);
}

TEST(VersionedStoreTest, ForeignIntentConflicts) {
  VersionedStore store;
  ASSERT_TRUE(store.PutIntent(K(1), 100, 42).ok());
  EXPECT_TRUE(store.PutIntent(K(1), 200, 7).IsConflict());
  // Own intent can be overwritten.
  EXPECT_TRUE(store.PutIntent(K(1), 100, 43).ok());
  store.CommitIntents(100);
  EXPECT_EQ(store.Get(K(1))->value, 43);
}

TEST(VersionedStoreTest, ValidateVersionDetectsStaleRead) {
  VersionedStore store;
  ASSERT_TRUE(store.PutIntent(K(1), 100, 42).ok());
  store.CommitIntents(100);  // version -> 1
  // A transaction that read version 0 must fail validation.
  EXPECT_TRUE(store.ValidateVersion(K(1), 200, 0).IsConflict());
  EXPECT_TRUE(store.ValidateVersion(K(1), 200, 1).ok());
  store.AbortIntents(200);
}

TEST(VersionedStoreTest, ValidateInstallsReadLockIntent) {
  VersionedStore store;
  ASSERT_TRUE(store.ValidateVersion(K(1), 100, 0).ok());
  EXPECT_TRUE(store.HasIntent(K(1), 100));
  // Another writer now conflicts (read lock held).
  EXPECT_TRUE(store.PutIntent(K(1), 200, 9).IsConflict());
  // Committing the validation intent must not clobber the value.
  store.CommitIntents(100);
  EXPECT_EQ(store.Get(K(1))->value, 0);
}

TEST(VersionedStoreTest, ValidateWithForeignIntentConflicts) {
  VersionedStore store;
  ASSERT_TRUE(store.PutIntent(K(1), 100, 42).ok());
  EXPECT_TRUE(store.ValidateVersion(K(1), 200, 0).IsConflict());
}

TEST(VersionedStoreTest, MultiKeyCommitIsAtomicPerOwner) {
  VersionedStore store;
  ASSERT_TRUE(store.PutIntent(K(1), 100, 1).ok());
  ASSERT_TRUE(store.PutIntent(K(2), 100, 2).ok());
  ASSERT_TRUE(store.PutIntent(K(3), 200, 3).ok());
  store.CommitIntents(100);
  EXPECT_EQ(store.Get(K(1))->value, 1);
  EXPECT_EQ(store.Get(K(2))->value, 2);
  EXPECT_EQ(store.Get(K(3))->value, 0);  // other owner untouched
  EXPECT_TRUE(store.HasIntent(K(3), 200));
}

TEST(VersionedStoreTest, CommitUnknownOwnerIsNoop) {
  VersionedStore store;
  store.CommitIntents(999);
  store.AbortIntents(999);
}

TEST(VersionedStoreTest, VersionMonotonicallyIncreases) {
  VersionedStore store;
  for (uint64_t v = 1; v <= 5; ++v) {
    ASSERT_TRUE(store.PutIntent(K(1), v, static_cast<int64_t>(v)).ok());
    store.CommitIntents(v);
    EXPECT_EQ(store.Get(K(1))->version, v);
  }
}

}  // namespace
}  // namespace storage
}  // namespace geotp
