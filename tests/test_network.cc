// Tests for the simulated message-passing network.
#include "sim/network.h"

#include <gtest/gtest.h>

#include "protocol/messages.h"
#include "sim/event_loop.h"

namespace geotp {
namespace sim {
namespace {

struct TestMessage : MessageBase {
  int payload = 0;
  size_t WireSize() const override { return 128; }
};

LatencyMatrix TwoNodeMatrix(double rtt_ms) {
  LatencyMatrix matrix(2);
  matrix.SetSymmetric(0, 1, LinkSpec::FromRttMs(rtt_ms));
  return matrix;
}

TEST(NetworkTest, DeliversAfterOneWayLatency) {
  EventLoop loop;
  Network net(&loop, TwoNodeMatrix(100.0));
  Micros delivered_at = -1;
  int payload = 0;
  net.RegisterNode(0, [](std::unique_ptr<MessageBase>) {});
  net.RegisterNode(1, [&](std::unique_ptr<MessageBase> msg) {
    delivered_at = loop.Now();
    payload = static_cast<TestMessage*>(msg.get())->payload;
  });
  auto msg = std::make_unique<TestMessage>();
  msg->from = 0;
  msg->to = 1;
  msg->payload = 77;
  net.Send(std::move(msg));
  loop.Run();
  EXPECT_EQ(delivered_at, MsToMicros(50.0));
  EXPECT_EQ(payload, 77);
}

TEST(NetworkTest, RoundTripTakesFullRtt) {
  EventLoop loop;
  Network net(&loop, TwoNodeMatrix(100.0));
  Micros done_at = -1;
  net.RegisterNode(1, [&](std::unique_ptr<MessageBase> msg) {
    auto reply = std::make_unique<TestMessage>();
    reply->from = 1;
    reply->to = 0;
    (void)msg;
    net.Send(std::move(reply));
  });
  net.RegisterNode(0, [&](std::unique_ptr<MessageBase>) {
    done_at = loop.Now();
  });
  auto msg = std::make_unique<TestMessage>();
  msg->from = 0;
  msg->to = 1;
  net.Send(std::move(msg));
  loop.Run();
  EXPECT_EQ(done_at, MsToMicros(100.0));
}

TEST(NetworkTest, PartitionedReceiverDropsMessages) {
  EventLoop loop;
  Network net(&loop, TwoNodeMatrix(10.0));
  bool delivered = false;
  net.RegisterNode(1,
                   [&](std::unique_ptr<MessageBase>) { delivered = true; });
  net.Partition(1);
  auto msg = std::make_unique<TestMessage>();
  msg->from = 0;
  msg->to = 1;
  net.Send(std::move(msg));
  loop.Run();
  EXPECT_FALSE(delivered);
}

TEST(NetworkTest, PartitionedSenderCannotSend) {
  EventLoop loop;
  Network net(&loop, TwoNodeMatrix(10.0));
  bool delivered = false;
  net.RegisterNode(1,
                   [&](std::unique_ptr<MessageBase>) { delivered = true; });
  net.Partition(0);
  auto msg = std::make_unique<TestMessage>();
  msg->from = 0;
  msg->to = 1;
  net.Send(std::move(msg));
  loop.Run();
  EXPECT_FALSE(delivered);
}

TEST(NetworkTest, RestoreResumesDelivery) {
  EventLoop loop;
  Network net(&loop, TwoNodeMatrix(10.0));
  int delivered = 0;
  net.RegisterNode(1, [&](std::unique_ptr<MessageBase>) { delivered++; });
  net.Partition(1);
  EXPECT_TRUE(net.IsPartitioned(1));
  net.Restore(1);
  EXPECT_FALSE(net.IsPartitioned(1));
  auto msg = std::make_unique<TestMessage>();
  msg->from = 0;
  msg->to = 1;
  net.Send(std::move(msg));
  loop.Run();
  EXPECT_EQ(delivered, 1);
}

TEST(NetworkTest, MessageInFlightWhenPartitionHappensIsDropped) {
  EventLoop loop;
  Network net(&loop, TwoNodeMatrix(100.0));
  bool delivered = false;
  net.RegisterNode(1,
                   [&](std::unique_ptr<MessageBase>) { delivered = true; });
  auto msg = std::make_unique<TestMessage>();
  msg->from = 0;
  msg->to = 1;
  net.Send(std::move(msg));
  // Partition the receiver while the message is on the wire.
  loop.Schedule(MsToMicros(10.0), [&]() { net.Partition(1); });
  loop.Run();
  EXPECT_FALSE(delivered);
}

TEST(NetworkTest, TrafficAccounting) {
  EventLoop loop;
  Network net(&loop, TwoNodeMatrix(10.0));
  net.RegisterNode(1, [](std::unique_ptr<MessageBase>) {});
  for (int i = 0; i < 5; ++i) {
    auto msg = std::make_unique<TestMessage>();
    msg->from = 0;
    msg->to = 1;
    net.Send(std::move(msg));
  }
  loop.Run();
  EXPECT_EQ(net.StatsFor(0).messages_sent, 5u);
  EXPECT_EQ(net.StatsFor(0).bytes_sent, 5u * 128);
  EXPECT_EQ(net.StatsFor(1).messages_received, 5u);
  EXPECT_EQ(net.total_messages(), 5u);
}

TEST(NetworkTest, ProtocolMessagesRoundTripThroughBase) {
  EventLoop loop;
  Network net(&loop, TwoNodeMatrix(10.0));
  protocol::Vote seen = protocol::Vote::kFailure;
  net.RegisterNode(1, [&](std::unique_ptr<MessageBase> msg) {
    auto* vote = dynamic_cast<protocol::VoteMessage*>(msg.get());
    ASSERT_NE(vote, nullptr);
    seen = vote->vote;
  });
  auto vote = std::make_unique<protocol::VoteMessage>();
  vote->from = 0;
  vote->to = 1;
  vote->vote = protocol::Vote::kPrepared;
  net.Send(std::move(vote));
  loop.Run();
  EXPECT_EQ(seen, protocol::Vote::kPrepared);
}

}  // namespace
}  // namespace sim
}  // namespace geotp
