// End-to-end experiment-runner tests: the headline paper shapes must hold
// on small, fast runs (the benches regenerate the full figures).
#include <gtest/gtest.h>

#include "workload/runner.h"

namespace geotp {
namespace workload {
namespace {

ExperimentConfig Base() {
  ExperimentConfig config;
  config.driver.terminals = 32;
  config.driver.warmup = SecToMicros(3);
  config.driver.measure = SecToMicros(15);
  config.ycsb.distributed_ratio = 0.5;
  return config;
}

TEST(ExperimentTest, RunsAreDeterministicForSameSeed) {
  ExperimentConfig config = Base();
  config.system = SystemKind::kGeoTP;
  const auto a = RunExperiment(config);
  const auto b = RunExperiment(config);
  EXPECT_EQ(a.run.committed, b.run.committed);
  EXPECT_EQ(a.run.abort_events, b.run.abort_events);
  EXPECT_EQ(a.events_processed, b.events_processed);
}

TEST(ExperimentTest, SeedsChangeOutcomes) {
  ExperimentConfig config = Base();
  config.system = SystemKind::kGeoTP;
  const auto a = RunExperiment(config);
  config.seed = 999;
  const auto b = RunExperiment(config);
  EXPECT_NE(a.run.committed, b.run.committed);
}

TEST(ExperimentTest, GeoTpBeatsSspAtMediumContention) {
  // The headline claim at MC (Fig. 5 / Fig. 7).
  ExperimentConfig config = Base();
  config.ycsb.theta = 0.9;
  config.system = SystemKind::kSSP;
  const auto ssp = RunExperiment(config);
  config.system = SystemKind::kGeoTP;
  const auto geotp = RunExperiment(config);
  EXPECT_GT(geotp.Tps(), ssp.Tps() * 1.5)
      << "geotp=" << geotp.Tps() << " ssp=" << ssp.Tps();
  EXPECT_LT(geotp.MeanLatencyMs(), ssp.MeanLatencyMs());
}

TEST(ExperimentTest, DecentralizedPrepareCutsDistributedLatency) {
  // O1 removes one WAN round trip from distributed commits (Fig. 4a):
  // ~100ms on the default topology's 251ms max link at low contention.
  ExperimentConfig config = Base();
  config.ycsb.theta = 0.3;
  config.system = SystemKind::kSSP;
  const auto ssp = RunExperiment(config);
  config.system = SystemKind::kGeoTPO1;
  const auto o1 = RunExperiment(config);
  const double ssp_dist = ssp.run.distributed_latency.Mean() / 1000.0;
  const double o1_dist = o1.run.distributed_latency.Mean() / 1000.0;
  EXPECT_LT(o1_dist, ssp_dist - 80.0)
      << "o1=" << o1_dist << "ms ssp=" << ssp_dist << "ms";
}

TEST(ExperimentTest, AblationOrderingAtHighContention) {
  // Fig. 12's story: O1 alone collapses at high skew; O2 rescues it; O3
  // further cuts p99/aborts.
  ExperimentConfig config = Base();
  config.ycsb.theta = 1.5;
  config.driver.measure = SecToMicros(30);
  config.system = SystemKind::kGeoTPO1;
  const auto o1 = RunExperiment(config);
  config.system = SystemKind::kGeoTPO1O2;
  const auto o2 = RunExperiment(config);
  config.system = SystemKind::kGeoTP;
  const auto o3 = RunExperiment(config);
  EXPECT_GT(o2.Tps(), o1.Tps() * 2);
  // O3 matches O2 on throughput (within noise at this scale; the full
  // bench at 64 terminals shows the gain) while cutting the abort rate.
  EXPECT_GT(o3.Tps(), o2.Tps() * 0.9);
  EXPECT_LT(o3.AbortRate(), o2.AbortRate());
}

TEST(ExperimentTest, CentralizedTxnsSufferFromDistributedContention) {
  // The Fig. 1b motivation: centralized-transaction latency under medium
  // contention grows with the remote data source's latency even though
  // those transactions never touch it.
  auto run_with_ds2_rtt = [](double rtt_ms) {
    ExperimentConfig config;
    config.system = SystemKind::kSSP;
    config.ds_rtts_ms = {10.0, rtt_ms};
    config.ycsb.theta = 0.9;
    config.ycsb.distributed_ratio = 0.2;
    config.driver.terminals = 32;
    config.driver.warmup = SecToMicros(3);
    config.driver.measure = SecToMicros(15);
    const auto result = RunExperiment(config);
    return result.run.centralized_latency.Mean() / 1000.0;
  };
  const double at_20 = run_with_ds2_rtt(20.0);
  const double at_100 = run_with_ds2_rtt(100.0);
  EXPECT_GT(at_100, at_20 * 1.3)
      << "at20=" << at_20 << "ms at100=" << at_100 << "ms";
}

TEST(ExperimentTest, TpccRunsAllFiveTypes) {
  ExperimentConfig config = Base();
  config.workload = WorkloadKind::kTpcc;
  config.system = SystemKind::kGeoTP;
  const auto result = RunExperiment(config);
  EXPECT_GT(result.run.committed, 50u);
  // All five transaction types appear in the per-type stats.
  int types_seen = 0;
  for (const auto& [tag, stats] : result.per_type) {
    if (stats.committed > 0) ++types_seen;
  }
  EXPECT_EQ(types_seen, 5);
}

TEST(ExperimentTest, DynamicLatencyHookRuns) {
  // Fig. 11b plumbing: re-shape a link mid-run; GeoTP keeps committing.
  ExperimentConfig config = Base();
  config.system = SystemKind::kGeoTP;
  config.pre_run = [](sim::EventLoop* loop, sim::Network* network) {
    loop->Schedule(SecToMicros(8), [network]() {
      network->matrix().SetSymmetric(1, 3, sim::LinkSpec::FromRttMs(150.0));
    });
  };
  const auto result = RunExperiment(config);
  EXPECT_GT(result.run.committed, 100u);
  EXPECT_FALSE(result.throughput_series.empty());
}

TEST(ExperimentTest, JitterProducesVariedLatencies) {
  ExperimentConfig config = Base();
  config.system = SystemKind::kGeoTP;
  config.jitter_frac = 0.2;
  const auto result = RunExperiment(config);
  EXPECT_GT(result.run.committed, 50u);
  EXPECT_GT(result.run.latency.max(), result.run.latency.min());
}

TEST(ExperimentTest, HeterogeneousDialectsWork) {
  ExperimentConfig config = Base();
  config.system = SystemKind::kGeoTP;
  config.dialects = {sql::Dialect::kPostgres, sql::Dialect::kMySql,
                     sql::Dialect::kPostgres, sql::Dialect::kMySql};
  const auto result = RunExperiment(config);
  EXPECT_GT(result.run.committed, 100u);
}

TEST(ExperimentTest, BreakdownIsPopulated) {
  ExperimentConfig config = Base();
  config.system = SystemKind::kGeoTP;
  const auto result = RunExperiment(config);
  EXPECT_GT(result.dm.breakdown.count(metrics::TxnPhase::kExecution), 0u);
  EXPECT_GT(result.dm.breakdown.MeanMs(metrics::TxnPhase::kExecution), 1.0);
}

TEST(ExperimentTest, SystemNamesAreDistinct) {
  std::set<std::string> names;
  for (int s = 0; s <= static_cast<int>(SystemKind::kYugabyte); ++s) {
    names.insert(SystemName(static_cast<SystemKind>(s)));
  }
  EXPECT_EQ(names.size(), 10u);
}

}  // namespace
}  // namespace workload
}  // namespace geotp
