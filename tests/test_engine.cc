// Tests for the XA transaction engine: state machine, in-place writes with
// undo, crash behaviour, pending-operation cancellation.
#include "storage/engine.h"

#include <gtest/gtest.h>

namespace geotp {
namespace storage {
namespace {

Xid T(uint64_t n) { return Xid{n, 7}; }
RecordKey K(uint64_t k) { return RecordKey{1, k}; }

Operation ReadOp(uint64_t k) {
  Operation op;
  op.key = K(k);
  op.is_write = false;
  return op;
}

Operation WriteOp(uint64_t k, int64_t v) {
  Operation op;
  op.key = K(k);
  op.is_write = true;
  op.write_value = v;
  return op;
}

class EngineTest : public ::testing::Test {
 protected:
  TransactionEngine engine_;

  // Executes synchronously (no contention in these tests unless stated).
  Status Exec(const Xid& xid, const Operation& op, int64_t* value = nullptr) {
    Status result = Status::Internal("callback not fired");
    engine_.ExecuteOp(xid, op, [&](Status st, int64_t v) {
      result = std::move(st);
      if (value != nullptr) *value = v;
    });
    return result;
  }
};

TEST_F(EngineTest, BeginTwiceFails) {
  ASSERT_TRUE(engine_.Begin(T(1)).ok());
  EXPECT_EQ(engine_.Begin(T(1)).code(), StatusCode::kAlreadyExists);
}

TEST_F(EngineTest, ReadMissingKeyReturnsZero) {
  ASSERT_TRUE(engine_.Begin(T(1)).ok());
  int64_t value = -1;
  ASSERT_TRUE(Exec(T(1), ReadOp(5), &value).ok());
  EXPECT_EQ(value, 0);
}

TEST_F(EngineTest, WriteThenReadOwnWrite) {
  ASSERT_TRUE(engine_.Begin(T(1)).ok());
  ASSERT_TRUE(Exec(T(1), WriteOp(5, 42)).ok());
  int64_t value = 0;
  ASSERT_TRUE(Exec(T(1), ReadOp(5), &value).ok());
  EXPECT_EQ(value, 42);
}

TEST_F(EngineTest, CommitMakesWriteDurable) {
  ASSERT_TRUE(engine_.Begin(T(1)).ok());
  ASSERT_TRUE(Exec(T(1), WriteOp(5, 42)).ok());
  ASSERT_TRUE(engine_.Prepare(T(1), 10).ok());
  ASSERT_TRUE(engine_.Commit(T(1), 20).ok());
  EXPECT_EQ(engine_.store().Get(K(5))->value, 42);
  EXPECT_EQ(engine_.StateOf(T(1)), TxnState::kAborted);  // GC'ed
}

TEST_F(EngineTest, RollbackUndoesWritesInReverse) {
  engine_.store().Put(K(5), 100);
  ASSERT_TRUE(engine_.Begin(T(1)).ok());
  ASSERT_TRUE(Exec(T(1), WriteOp(5, 1)).ok());
  ASSERT_TRUE(Exec(T(1), WriteOp(5, 2)).ok());
  ASSERT_TRUE(engine_.Rollback(T(1), 10).ok());
  EXPECT_EQ(engine_.store().Get(K(5))->value, 100);
}

TEST_F(EngineTest, RollbackReleasesLocks) {
  ASSERT_TRUE(engine_.Begin(T(1)).ok());
  ASSERT_TRUE(Exec(T(1), WriteOp(5, 1)).ok());
  ASSERT_TRUE(engine_.Rollback(T(1), 10).ok());
  ASSERT_TRUE(engine_.Begin(T(2)).ok());
  EXPECT_TRUE(Exec(T(2), WriteOp(5, 2)).ok());  // lock must be free
}

TEST_F(EngineTest, PrepareBlocksFurtherOps) {
  ASSERT_TRUE(engine_.Begin(T(1)).ok());
  ASSERT_TRUE(Exec(T(1), WriteOp(5, 1)).ok());
  ASSERT_TRUE(engine_.Prepare(T(1), 10).ok());
  EXPECT_TRUE(Exec(T(1), WriteOp(6, 2)).IsAborted());
}

TEST_F(EngineTest, PrepareTwiceFails) {
  ASSERT_TRUE(engine_.Begin(T(1)).ok());
  ASSERT_TRUE(engine_.Prepare(T(1), 10).ok());
  EXPECT_TRUE(engine_.Prepare(T(1), 20).IsAborted());
}

TEST_F(EngineTest, OnePhaseCommitFromActive) {
  ASSERT_TRUE(engine_.Begin(T(1)).ok());
  ASSERT_TRUE(Exec(T(1), WriteOp(5, 7)).ok());
  ASSERT_TRUE(engine_.Commit(T(1), 10).ok());  // XA COMMIT ... ONE PHASE
  EXPECT_EQ(engine_.store().Get(K(5))->value, 7);
}

TEST_F(EngineTest, CommitUnknownBranchFails) {
  EXPECT_TRUE(engine_.Commit(T(9), 10).IsNotFound());
}

TEST_F(EngineTest, RollbackUnknownBranchIsIdempotent) {
  EXPECT_TRUE(engine_.Rollback(T(9), 10).ok());
}

TEST_F(EngineTest, RollbackAfterPrepareAllowed) {
  ASSERT_TRUE(engine_.Begin(T(1)).ok());
  ASSERT_TRUE(Exec(T(1), WriteOp(5, 1)).ok());
  ASSERT_TRUE(engine_.Prepare(T(1), 10).ok());
  ASSERT_TRUE(engine_.Rollback(T(1), 20).ok());
  EXPECT_EQ(engine_.store().Get(K(5))->value, 0);
}

TEST_F(EngineTest, WalRecordsPrepareAndCommit) {
  ASSERT_TRUE(engine_.Begin(T(1)).ok());
  ASSERT_TRUE(engine_.Prepare(T(1), 10).ok());
  EXPECT_TRUE(engine_.wal().IsPreparedUnresolved(T(1)));
  ASSERT_TRUE(engine_.Commit(T(1), 20).ok());
  EXPECT_FALSE(engine_.wal().IsPreparedUnresolved(T(1)));
  // Appending buffers entries; physical flushes are accounted separately
  // (under group commit the two diverge — one fsync can cover them both).
  EXPECT_EQ(engine_.wal().entries().size(), 2u);
  EXPECT_EQ(engine_.wal().fsyncs(), 0u);
  engine_.NoteWalFsync();
  EXPECT_EQ(engine_.wal().fsyncs(), 1u);
}

TEST_F(EngineTest, LockWaitParksOp) {
  ASSERT_TRUE(engine_.Begin(T(1)).ok());
  ASSERT_TRUE(engine_.Begin(T(2)).ok());
  ASSERT_TRUE(Exec(T(1), WriteOp(5, 1)).ok());
  Status waiter_status = Status::Internal("pending");
  engine_.ExecuteOp(T(2), WriteOp(5, 2), [&](Status st, int64_t) {
    waiter_status = std::move(st);
  });
  EXPECT_TRUE(engine_.HasPendingOp(T(2)));
  ASSERT_TRUE(engine_.Commit(T(1), 10).ok());
  EXPECT_TRUE(waiter_status.ok());
  EXPECT_FALSE(engine_.HasPendingOp(T(2)));
  EXPECT_EQ(engine_.store().Get(K(5))->value, 2);
}

TEST_F(EngineTest, CancelPendingOpFiresTimeout) {
  ASSERT_TRUE(engine_.Begin(T(1)).ok());
  ASSERT_TRUE(engine_.Begin(T(2)).ok());
  ASSERT_TRUE(Exec(T(1), WriteOp(5, 1)).ok());
  Status waiter_status = Status::Internal("pending");
  engine_.ExecuteOp(T(2), WriteOp(5, 2), [&](Status st, int64_t) {
    waiter_status = std::move(st);
  });
  engine_.CancelPendingOp(T(2), Status::TimedOut("lock wait"));
  EXPECT_TRUE(waiter_status.IsTimedOut());
  EXPECT_EQ(engine_.StateOf(T(2)), TxnState::kActive);  // caller decides
}

TEST_F(EngineTest, RollbackCancelsPendingOp) {
  ASSERT_TRUE(engine_.Begin(T(1)).ok());
  ASSERT_TRUE(engine_.Begin(T(2)).ok());
  ASSERT_TRUE(Exec(T(1), WriteOp(5, 1)).ok());
  Status waiter_status = Status::Internal("pending");
  engine_.ExecuteOp(T(2), WriteOp(5, 2), [&](Status st, int64_t) {
    waiter_status = std::move(st);
  });
  ASSERT_TRUE(engine_.Rollback(T(2), 10).ok());
  EXPECT_TRUE(waiter_status.IsAborted());
}

TEST_F(EngineTest, PrepareWithPendingOpFails) {
  ASSERT_TRUE(engine_.Begin(T(1)).ok());
  ASSERT_TRUE(engine_.Begin(T(2)).ok());
  ASSERT_TRUE(Exec(T(1), WriteOp(5, 1)).ok());
  engine_.ExecuteOp(T(2), WriteOp(5, 2), [](Status, int64_t) {});
  EXPECT_TRUE(engine_.Prepare(T(2), 10).IsAborted());
  (void)engine_.Rollback(T(2), 11);
}

TEST_F(EngineTest, CrashAbortsActiveKeepsPrepared) {
  ASSERT_TRUE(engine_.Begin(T(1)).ok());
  ASSERT_TRUE(Exec(T(1), WriteOp(5, 1)).ok());
  ASSERT_TRUE(engine_.Prepare(T(1), 10).ok());
  ASSERT_TRUE(engine_.Begin(T(2)).ok());
  ASSERT_TRUE(Exec(T(2), WriteOp(6, 2)).ok());

  engine_.Crash(20);

  // T1 (prepared) survives as in-doubt; T2 (active) rolled back.
  auto prepared = engine_.PreparedXids();
  ASSERT_EQ(prepared.size(), 1u);
  EXPECT_EQ(prepared[0].txn_id, T(1).txn_id);
  EXPECT_EQ(engine_.store().Get(K(6))->value, 0);
  // The in-doubt branch can still commit after recovery.
  ASSERT_TRUE(engine_.Commit(T(1), 30).ok());
  EXPECT_EQ(engine_.store().Get(K(5))->value, 1);
}

TEST_F(EngineTest, DeadlockVictimGetsAborted) {
  ASSERT_TRUE(engine_.Begin(T(1)).ok());
  ASSERT_TRUE(engine_.Begin(T(2)).ok());
  ASSERT_TRUE(Exec(T(1), WriteOp(1, 1)).ok());
  ASSERT_TRUE(Exec(T(2), WriteOp(2, 2)).ok());
  engine_.ExecuteOp(T(1), WriteOp(2, 3), [](Status, int64_t) {});
  Status victim = Status::Internal("pending");
  engine_.ExecuteOp(T(2), WriteOp(1, 4), [&](Status st, int64_t) {
    victim = std::move(st);
  });
  EXPECT_TRUE(victim.IsAborted());
}

TEST_F(EngineTest, EngineConfigPresetsDiffer) {
  EngineConfig mysql = MySqlEngineConfig();
  EngineConfig postgres = PostgresEngineConfig();
  EXPECT_NE(mysql.read_cost, postgres.read_cost);
  EXPECT_GT(mysql.prepare_fsync_cost, 0);
  EXPECT_GT(postgres.prepare_fsync_cost, 0);
}

TEST_F(EngineTest, ActiveCountTracksLiveBranches) {
  EXPECT_EQ(engine_.ActiveCount(), 0u);
  ASSERT_TRUE(engine_.Begin(T(1)).ok());
  ASSERT_TRUE(engine_.Begin(T(2)).ok());
  EXPECT_EQ(engine_.ActiveCount(), 2u);
  ASSERT_TRUE(engine_.Commit(T(1), 10).ok());
  EXPECT_EQ(engine_.ActiveCount(), 1u);
}

}  // namespace
}  // namespace storage
}  // namespace geotp
