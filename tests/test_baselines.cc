// Tests for the ScalarDB-style and YugabyteDB-style baselines.
#include <gtest/gtest.h>

#include "baselines/scalardb.h"
#include "baselines/store_node.h"
#include "baselines/yugabyte.h"
#include "workload/runner.h"

namespace geotp {
namespace baselines {
namespace {

using protocol::ClientFinishRequest;
using protocol::ClientOp;
using protocol::ClientRoundRequest;
using protocol::ClientRoundResponse;
using protocol::ClientTxnResult;

// Harness for the store-node level: node 0 = coordinator side.
class StoreNodeTest : public ::testing::Test {
 protected:
  StoreNodeTest() {
    sim::LatencyMatrix matrix(2);
    matrix.SetSymmetric(0, 1, sim::LinkSpec::FromRttMs(10.0));
    net_ = std::make_unique<sim::Network>(&loop_, matrix);
    store_ = std::make_unique<StoreNode>(1, net_.get());
    store_->Attach();
    net_->RegisterNode(0, [this](std::unique_ptr<sim::MessageBase> msg) {
      if (auto* read = dynamic_cast<StoreReadResponse*>(msg.get())) {
        reads_.push_back(*read);
      } else if (auto* prep = dynamic_cast<StorePrepareResponse*>(msg.get())) {
        prepares_.push_back(*prep);
      } else if (auto* ack = dynamic_cast<StoreDecisionAck*>(msg.get())) {
        acks_.push_back(*ack);
      }
    });
  }

  sim::EventLoop loop_;
  std::unique_ptr<sim::Network> net_;
  std::unique_ptr<StoreNode> store_;
  std::vector<StoreReadResponse> reads_;
  std::vector<StorePrepareResponse> prepares_;
  std::vector<StoreDecisionAck> acks_;
};

TEST_F(StoreNodeTest, ReadReturnsValuesAndVersions) {
  store_->store().LoadTable(1, 10, 7);
  auto req = std::make_unique<StoreReadRequest>();
  req->from = 0;
  req->to = 1;
  req->txn = 100;
  req->req_id = 1;
  req->keys = {RecordKey{1, 3}, RecordKey{1, 4}};
  net_->Send(std::move(req));
  loop_.Run();
  ASSERT_EQ(reads_.size(), 1u);
  ASSERT_EQ(reads_[0].results.size(), 2u);
  EXPECT_EQ(reads_[0].results[0].value, 7);
  EXPECT_EQ(reads_[0].results[0].version, 0u);
}

TEST_F(StoreNodeTest, PrepareValidatesAndCommits) {
  auto prep = std::make_unique<StorePrepareRequest>();
  prep->from = 0;
  prep->to = 1;
  prep->txn = 100;
  StagedOp op;
  op.key = RecordKey{1, 3};
  op.expected_version = 0;
  op.is_write = true;
  op.write_value = 42;
  prep->ops = {op};
  net_->Send(std::move(prep));
  loop_.Run();
  ASSERT_EQ(prepares_.size(), 1u);
  EXPECT_TRUE(prepares_[0].status.ok());

  auto decide = std::make_unique<StoreDecisionRequest>();
  decide->from = 0;
  decide->to = 1;
  decide->txn = 100;
  decide->commit = true;
  net_->Send(std::move(decide));
  loop_.Run();
  ASSERT_EQ(acks_.size(), 1u);
  EXPECT_EQ(store_->store().Get(RecordKey{1, 3})->value, 42);
}

TEST_F(StoreNodeTest, StaleVersionConflicts) {
  store_->store().LoadTable(1, 10, 0);
  // Commit a bump so the version becomes 1.
  ASSERT_TRUE(store_->store().PutIntent(RecordKey{1, 3}, 9, 1).ok());
  store_->store().CommitIntents(9);
  auto prep = std::make_unique<StorePrepareRequest>();
  prep->from = 0;
  prep->to = 1;
  prep->txn = 100;
  StagedOp op;
  op.key = RecordKey{1, 3};
  op.expected_version = 0;  // stale
  prep->ops = {op};
  net_->Send(std::move(prep));
  loop_.Run();
  ASSERT_EQ(prepares_.size(), 1u);
  EXPECT_TRUE(prepares_[0].status.IsConflict());
  EXPECT_EQ(store_->stats().prepare_conflicts, 1u);
  EXPECT_FALSE(store_->store().HasIntent(RecordKey{1, 3}, 100));
}

// ---------------------------------------------------------------------------
// End-to-end baseline runs via the experiment runner
// ---------------------------------------------------------------------------

workload::ExperimentConfig SmallRun(workload::SystemKind system) {
  workload::ExperimentConfig config;
  config.system = system;
  config.ycsb.theta = 0.5;
  config.ycsb.distributed_ratio = 0.3;
  config.driver.terminals = 16;
  config.driver.warmup = SecToMicros(2);
  config.driver.measure = SecToMicros(10);
  return config;
}

TEST(ScalarDbTest, CommitsTransactions) {
  auto result = workload::RunExperiment(SmallRun(
      workload::SystemKind::kScalarDb));
  EXPECT_GT(result.run.committed, 50u);
  EXPECT_GT(result.Tps(), 1.0);
}

TEST(ScalarDbTest, PlusIsAtLeastAsGoodUnderContention) {
  auto base = SmallRun(workload::SystemKind::kScalarDb);
  base.ycsb.theta = 1.1;
  auto plus = base;
  plus.system = workload::SystemKind::kScalarDbPlus;
  const auto r_base = workload::RunExperiment(base);
  const auto r_plus = workload::RunExperiment(plus);
  EXPECT_GE(r_plus.Tps(), r_base.Tps() * 0.9)
      << "plus=" << r_plus.Tps() << " base=" << r_base.Tps();
}

TEST(ScalarDbTest, ConflictsSurfaceAsAborts) {
  auto config = SmallRun(workload::SystemKind::kScalarDb);
  config.ycsb.theta = 1.4;  // heavy contention -> OCC conflicts
  const auto result = workload::RunExperiment(config);
  EXPECT_GT(result.run.abort_events, 0u);
}

TEST(YugabyteTest, CommitsTransactions) {
  auto result = workload::RunExperiment(SmallRun(
      workload::SystemKind::kYugabyte));
  EXPECT_GT(result.run.committed, 50u);
}

TEST(YugabyteTest, LowContentionBeatsMiddleware) {
  // The paper's Fig. 13 LC point: Yugabyte's 1-RTT single-shard commit
  // with async apply beats the 2-RTT middleware path.
  auto yb = SmallRun(workload::SystemKind::kYugabyte);
  yb.ycsb.theta = 0.3;
  yb.ycsb.distributed_ratio = 0.2;
  auto ssp = yb;
  ssp.system = workload::SystemKind::kSSP;
  const auto r_yb = workload::RunExperiment(yb);
  const auto r_ssp = workload::RunExperiment(ssp);
  EXPECT_GT(r_yb.Tps(), r_ssp.Tps());
}

TEST(YugabyteTest, HighContentionCollapsesVsGeoTP) {
  // Fig. 13 HC point: fail-fast intent conflicts + retries collapse.
  auto yb = SmallRun(workload::SystemKind::kYugabyte);
  yb.ycsb.theta = 1.5;
  yb.ycsb.distributed_ratio = 0.2;
  yb.driver.terminals = 64;
  auto geotp = yb;
  geotp.system = workload::SystemKind::kGeoTP;
  const auto r_yb = workload::RunExperiment(yb);
  const auto r_geotp = workload::RunExperiment(geotp);
  EXPECT_GT(r_geotp.Tps(), r_yb.Tps() * 2)
      << "geotp=" << r_geotp.Tps() << " yb=" << r_yb.Tps();
}

}  // namespace
}  // namespace baselines
}  // namespace geotp
