// Tests for the deterministic RNG, the YCSB zipfian generator and the
// bounded (global-anchored) zipfian sampler.
#include "common/random.h"

#include <cmath>
#include <map>

#include <gtest/gtest.h>

namespace geotp {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, BoundedUniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextU64(17), 17u);
  }
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(RngTest, NextBoolProbability) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.NextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
  EXPECT_FALSE(rng.NextBool(0.0));
  EXPECT_TRUE(rng.NextBool(1.0));
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextGaussian(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(RngTest, ForkedStreamsIndependent) {
  Rng parent(21);
  Rng child = parent.Fork();
  EXPECT_NE(parent.NextU64(), child.NextU64());
}

TEST(ZipfianTest, StaysInRange) {
  Rng rng(23);
  ZipfianGenerator zipf(1000, 0.9);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.Next(rng), 1000u);
}

TEST(ZipfianTest, HigherThetaMoreSkewed) {
  Rng rng(29);
  auto top_share = [&rng](double theta) {
    ZipfianGenerator zipf(10000, theta, /*scramble=*/false);
    std::map<uint64_t, int> counts;
    for (int i = 0; i < 50000; ++i) counts[zipf.Next(rng)]++;
    return counts[0] / 50000.0;
  };
  const double low = top_share(0.3);
  const double high = top_share(1.2);
  EXPECT_GT(high, low * 5);
}

TEST(ZipfianTest, ZeroThetaNearUniform) {
  Rng rng(31);
  ZipfianGenerator zipf(100, 0.0, /*scramble=*/false);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 100000; ++i) counts[zipf.Next(rng)]++;
  for (const auto& [k, c] : counts) {
    EXPECT_NEAR(c / 100000.0, 0.01, 0.005) << "key " << k;
  }
}

TEST(BoundedZipfTest, StaysInRange) {
  Rng rng(37);
  for (int i = 0; i < 10000; ++i) {
    uint64_t v = BoundedZipfSample(100, 200, 0.9, rng);
    EXPECT_GE(v, 100u);
    EXPECT_LT(v, 200u);
  }
}

TEST(BoundedZipfTest, DegenerateRange) {
  Rng rng(41);
  EXPECT_EQ(BoundedZipfSample(5, 6, 0.9, rng), 5u);
  EXPECT_EQ(BoundedZipfSample(5, 5, 0.9, rng), 5u);
}

TEST(BoundedZipfTest, HeadPartitionGetsHotKeys) {
  // A 4-partition table: the head partition must receive far more mass
  // than the tail partition under skew (this drives the "hot records are
  // intra-region" pattern).
  Rng rng(43);
  const uint64_t n = 400000;
  int head = 0, tail = 0;
  for (int i = 0; i < 50000; ++i) {
    uint64_t k = BoundedZipfSample(0, n, 1.2, rng);
    if (k < n / 4) ++head;
    if (k >= 3 * n / 4) ++tail;
  }
  EXPECT_GT(head, tail * 10);
}

TEST(BoundedZipfTest, ZeroThetaUniformAcrossPartitions) {
  Rng rng(47);
  const uint64_t n = 400000;
  int head = 0;
  for (int i = 0; i < 50000; ++i) {
    if (BoundedZipfSample(0, n, 0.0, rng) < n / 4) ++head;
  }
  EXPECT_NEAR(head / 50000.0, 0.25, 0.02);
}

TEST(BoundedZipfTest, ConditionalSubrangeIsFlatFarFromHead) {
  // Within a far partition the conditional distribution is nearly uniform:
  // first half vs second half of the partition should be balanced.
  Rng rng(53);
  int first_half = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    uint64_t k = BoundedZipfSample(3000000, 4000000, 0.9, rng);
    if (k < 3500000) ++first_half;
  }
  EXPECT_NEAR(first_half / static_cast<double>(n), 0.5, 0.05);
}

class BoundedZipfThetaTest : public ::testing::TestWithParam<double> {};

TEST_P(BoundedZipfThetaTest, MeanDecreasesWithTheta) {
  Rng rng(59);
  const double theta = GetParam();
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(BoundedZipfSample(0, 1000000, theta, rng));
  }
  const double mean = sum / n;
  // Under stronger skew, the mean key moves toward the head.
  if (theta >= 1.2) {
    EXPECT_LT(mean, 100000.0);
  } else if (theta <= 0.1) {
    EXPECT_GT(mean, 400000.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Thetas, BoundedZipfThetaTest,
                         ::testing::Values(0.0, 0.3, 0.9, 1.2, 1.5));

}  // namespace
}  // namespace geotp
