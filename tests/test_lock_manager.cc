// Tests for the strict-2PL lock manager: grant/wait/release semantics,
// FIFO fairness, upgrades, cancellation, deadlock detection, plus a
// randomized property test checking structural invariants.
#include "storage/lock_manager.h"

#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace geotp {
namespace storage {
namespace {

Xid T(uint64_t n) { return Xid{n, 0}; }
RecordKey K(uint64_t k) { return RecordKey{1, k}; }

struct Capture {
  bool fired = false;
  Status status;
  LockCallback Cb() {
    return [this](Status st) {
      fired = true;
      status = std::move(st);
    };
  }
};

TEST(LockManagerTest, SharedLocksCoexist) {
  LockManager lm;
  Capture a, b;
  EXPECT_EQ(lm.RequestLock(T(1), K(1), LockMode::kShared, a.Cb()),
            kInvalidLockRequest);
  EXPECT_EQ(lm.RequestLock(T(2), K(1), LockMode::kShared, b.Cb()),
            kInvalidLockRequest);
  EXPECT_TRUE(a.fired && a.status.ok());
  EXPECT_TRUE(b.fired && b.status.ok());
  EXPECT_EQ(lm.HoldersOn(K(1)), 2u);
}

TEST(LockManagerTest, ExclusiveBlocksShared) {
  LockManager lm;
  Capture a, b;
  lm.RequestLock(T(1), K(1), LockMode::kExclusive, a.Cb());
  LockRequestId id = lm.RequestLock(T(2), K(1), LockMode::kShared, b.Cb());
  EXPECT_NE(id, kInvalidLockRequest);
  EXPECT_FALSE(b.fired);
  EXPECT_EQ(lm.WaitersOn(K(1)), 1u);
  lm.ReleaseAll(T(1));
  EXPECT_TRUE(b.fired && b.status.ok());
}

TEST(LockManagerTest, SharedBlocksExclusive) {
  LockManager lm;
  Capture a, b;
  lm.RequestLock(T(1), K(1), LockMode::kShared, a.Cb());
  lm.RequestLock(T(2), K(1), LockMode::kExclusive, b.Cb());
  EXPECT_FALSE(b.fired);
  lm.ReleaseAll(T(1));
  EXPECT_TRUE(b.fired && b.status.ok());
}

TEST(LockManagerTest, ReentrantSharedThenShared) {
  LockManager lm;
  Capture a, b;
  lm.RequestLock(T(1), K(1), LockMode::kShared, a.Cb());
  lm.RequestLock(T(1), K(1), LockMode::kShared, b.Cb());
  EXPECT_TRUE(b.fired && b.status.ok());
  EXPECT_EQ(lm.HoldersOn(K(1)), 1u);
}

TEST(LockManagerTest, ExclusiveCoversShared) {
  LockManager lm;
  Capture a, b;
  lm.RequestLock(T(1), K(1), LockMode::kExclusive, a.Cb());
  lm.RequestLock(T(1), K(1), LockMode::kShared, b.Cb());
  EXPECT_TRUE(b.fired && b.status.ok());
  EXPECT_TRUE(lm.Holds(T(1), K(1), LockMode::kExclusive));
}

TEST(LockManagerTest, UpgradeSoleHolderImmediate) {
  LockManager lm;
  Capture a, b;
  lm.RequestLock(T(1), K(1), LockMode::kShared, a.Cb());
  lm.RequestLock(T(1), K(1), LockMode::kExclusive, b.Cb());
  EXPECT_TRUE(b.fired && b.status.ok());
  EXPECT_TRUE(lm.Holds(T(1), K(1), LockMode::kExclusive));
  EXPECT_EQ(lm.stats().upgrades, 1u);
}

TEST(LockManagerTest, UpgradeWaitsForOtherSharers) {
  LockManager lm;
  Capture a, b, up;
  lm.RequestLock(T(1), K(1), LockMode::kShared, a.Cb());
  lm.RequestLock(T(2), K(1), LockMode::kShared, b.Cb());
  LockRequestId id = lm.RequestLock(T(1), K(1), LockMode::kExclusive, up.Cb());
  EXPECT_NE(id, kInvalidLockRequest);
  EXPECT_FALSE(up.fired);
  lm.ReleaseAll(T(2));
  EXPECT_TRUE(up.fired && up.status.ok());
  EXPECT_TRUE(lm.Holds(T(1), K(1), LockMode::kExclusive));
}

TEST(LockManagerTest, UpgradeJumpsQueue) {
  LockManager lm;
  Capture a, b, waiter, up;
  lm.RequestLock(T(1), K(1), LockMode::kShared, a.Cb());
  lm.RequestLock(T(2), K(1), LockMode::kShared, b.Cb());
  lm.RequestLock(T(3), K(1), LockMode::kExclusive, waiter.Cb());
  lm.RequestLock(T(1), K(1), LockMode::kExclusive, up.Cb());
  // T2 releases: the upgrade (queue front) must win over T3.
  lm.ReleaseAll(T(2));
  EXPECT_TRUE(up.fired && up.status.ok());
  EXPECT_FALSE(waiter.fired);
}

TEST(LockManagerTest, FifoNoBargingPastQueuedExclusive) {
  LockManager lm;
  Capture a, x, s;
  lm.RequestLock(T(1), K(1), LockMode::kShared, a.Cb());
  lm.RequestLock(T(2), K(1), LockMode::kExclusive, x.Cb());
  // A shared request arriving after a queued X must wait (no barging),
  // even though it is compatible with the current holder.
  lm.RequestLock(T(3), K(1), LockMode::kShared, s.Cb());
  EXPECT_FALSE(s.fired);
  lm.ReleaseAll(T(1));
  EXPECT_TRUE(x.fired);
  EXPECT_FALSE(s.fired);
  lm.ReleaseAll(T(2));
  EXPECT_TRUE(s.fired);
}

TEST(LockManagerTest, BatchedSharedGrantsTogether) {
  LockManager lm;
  Capture x, s1, s2;
  lm.RequestLock(T(1), K(1), LockMode::kExclusive, x.Cb());
  lm.RequestLock(T(2), K(1), LockMode::kShared, s1.Cb());
  lm.RequestLock(T(3), K(1), LockMode::kShared, s2.Cb());
  lm.ReleaseAll(T(1));
  EXPECT_TRUE(s1.fired && s2.fired);
  EXPECT_EQ(lm.HoldersOn(K(1)), 2u);
}

TEST(LockManagerTest, CancelParkedRequestFiresStatus) {
  LockManager lm;
  Capture a, b;
  lm.RequestLock(T(1), K(1), LockMode::kExclusive, a.Cb());
  LockRequestId id = lm.RequestLock(T(2), K(1), LockMode::kShared, b.Cb());
  lm.CancelRequest(id, Status::TimedOut("lock wait timeout"));
  EXPECT_TRUE(b.fired);
  EXPECT_TRUE(b.status.IsTimedOut());
  EXPECT_EQ(lm.WaitersOn(K(1)), 0u);
}

TEST(LockManagerTest, CancelUnblocksCompatibleWaitersBehind) {
  LockManager lm;
  Capture holder, x, s;
  lm.RequestLock(T(1), K(1), LockMode::kShared, holder.Cb());
  LockRequestId xid = lm.RequestLock(T(2), K(1), LockMode::kExclusive, x.Cb());
  lm.RequestLock(T(3), K(1), LockMode::kShared, s.Cb());
  EXPECT_FALSE(s.fired);
  // Cancelling the X waiter lets the compatible S behind it through.
  lm.CancelRequest(xid, Status::Aborted("gone"));
  EXPECT_TRUE(s.fired && s.status.ok());
}

TEST(LockManagerTest, CancelAfterGrantIsNoop) {
  LockManager lm;
  Capture a, b;
  lm.RequestLock(T(1), K(1), LockMode::kExclusive, a.Cb());
  LockRequestId id = lm.RequestLock(T(2), K(1), LockMode::kExclusive, b.Cb());
  lm.ReleaseAll(T(1));
  EXPECT_TRUE(b.fired && b.status.ok());
  lm.CancelRequest(id, Status::TimedOut("late"));  // must not re-fire
  EXPECT_TRUE(b.status.ok());
}

TEST(LockManagerTest, ReleaseAllFreesEveryKey) {
  LockManager lm;
  Capture cbs[5];
  for (uint64_t k = 0; k < 5; ++k) {
    lm.RequestLock(T(1), K(k), LockMode::kExclusive, cbs[k].Cb());
  }
  lm.ReleaseAll(T(1));
  for (uint64_t k = 0; k < 5; ++k) {
    EXPECT_FALSE(lm.Holds(T(1), K(k), LockMode::kShared));
    EXPECT_EQ(lm.HoldersOn(K(k)), 0u);
  }
}

TEST(LockManagerTest, ReleaseUnknownOwnerIsNoop) {
  LockManager lm;
  lm.ReleaseAll(T(99));  // must not crash
}

TEST(LockManagerTest, TwoTxnDeadlockDetected) {
  LockManager lm;
  Capture a1, b1, a2, b2;
  lm.RequestLock(T(1), K(1), LockMode::kExclusive, a1.Cb());
  lm.RequestLock(T(2), K(2), LockMode::kExclusive, b1.Cb());
  // T1 waits on key2 (held by T2)...
  lm.RequestLock(T(1), K(2), LockMode::kExclusive, a2.Cb());
  EXPECT_FALSE(a2.fired);
  // ...and T2 requesting key1 would close the cycle -> victim aborted.
  lm.RequestLock(T(2), K(1), LockMode::kExclusive, b2.Cb());
  EXPECT_TRUE(b2.fired);
  EXPECT_TRUE(b2.status.IsAborted());
  EXPECT_EQ(lm.stats().deadlocks, 1u);
}

TEST(LockManagerTest, ThreeTxnDeadlockCycleDetected) {
  LockManager lm;
  Capture cb;
  lm.RequestLock(T(1), K(1), LockMode::kExclusive, cb.Cb());
  lm.RequestLock(T(2), K(2), LockMode::kExclusive, cb.Cb());
  lm.RequestLock(T(3), K(3), LockMode::kExclusive, cb.Cb());
  lm.RequestLock(T(1), K(2), LockMode::kExclusive, cb.Cb());  // T1 -> T2
  lm.RequestLock(T(2), K(3), LockMode::kExclusive, cb.Cb());  // T2 -> T3
  Capture victim;
  lm.RequestLock(T(3), K(1), LockMode::kExclusive, victim.Cb());  // closes
  EXPECT_TRUE(victim.fired);
  EXPECT_TRUE(victim.status.IsAborted());
}

TEST(LockManagerTest, UpgradeDeadlockDetected) {
  // Two shared holders both upgrading: the second upgrade is the victim.
  LockManager lm;
  Capture s1, s2, u1, u2;
  lm.RequestLock(T(1), K(1), LockMode::kShared, s1.Cb());
  lm.RequestLock(T(2), K(1), LockMode::kShared, s2.Cb());
  lm.RequestLock(T(1), K(1), LockMode::kExclusive, u1.Cb());
  EXPECT_FALSE(u1.fired);
  lm.RequestLock(T(2), K(1), LockMode::kExclusive, u2.Cb());
  EXPECT_TRUE(u2.fired);
  EXPECT_TRUE(u2.status.IsAborted());
  // T2 releasing lets T1's upgrade through.
  lm.ReleaseAll(T(2));
  EXPECT_TRUE(u1.fired && u1.status.ok());
}

TEST(LockManagerTest, NoFalsePositiveOnSharedChain) {
  LockManager lm;
  Capture a, b, c;
  lm.RequestLock(T(1), K(1), LockMode::kShared, a.Cb());
  lm.RequestLock(T(2), K(1), LockMode::kShared, b.Cb());
  // T3 waiting on an X behind the sharers is not a deadlock.
  lm.RequestLock(T(3), K(1), LockMode::kExclusive, c.Cb());
  EXPECT_FALSE(c.fired);
  EXPECT_EQ(lm.stats().deadlocks, 0u);
}

// ---------------------------------------------------------------------------
// Randomized property test: after arbitrary request/release/cancel traffic
// every grant is compatibility-consistent and nothing leaks.
// ---------------------------------------------------------------------------

TEST(LockManagerPropertyTest, RandomTrafficKeepsInvariants) {
  Rng rng(0xFEED);
  LockManager lm;
  constexpr int kTxns = 24;
  constexpr int kKeys = 8;

  struct TxnState {
    std::map<uint64_t, LockMode> held;
    LockRequestId pending = kInvalidLockRequest;
    uint64_t pending_key = 0;
    LockMode pending_mode = LockMode::kShared;
  };
  std::vector<TxnState> txns(kTxns);

  auto check_consistency = [&]() {
    // No key may have an X holder together with any other holder.
    for (uint64_t k = 0; k < kKeys; ++k) {
      int x_holders = 0, s_holders = 0;
      for (int t = 0; t < kTxns; ++t) {
        auto it = txns[static_cast<size_t>(t)].held.find(k);
        if (it == txns[static_cast<size_t>(t)].held.end()) continue;
        (it->second == LockMode::kExclusive ? x_holders : s_holders)++;
      }
      ASSERT_LE(x_holders, 1) << "key " << k;
      if (x_holders == 1) ASSERT_EQ(s_holders, 0) << "key " << k;
    }
  };

  for (int step = 0; step < 20000; ++step) {
    const int t = static_cast<int>(rng.NextU64(kTxns));
    TxnState& txn = txns[static_cast<size_t>(t)];
    const double action = rng.NextDouble();
    if (action < 0.6 && txn.pending == kInvalidLockRequest) {
      const uint64_t k = rng.NextU64(kKeys);
      const LockMode mode =
          rng.NextBool(0.5) ? LockMode::kShared : LockMode::kExclusive;
      // NOTE: the callback may fire much later (on another txn's release),
      // so it captures only long-lived state.
      LockRequestId id = lm.RequestLock(
          T(static_cast<uint64_t>(t)), K(k), mode,
          [&txns, t, k, mode](Status st) {
            if (st.ok()) {
              auto& held = txns[static_cast<size_t>(t)].held;
              auto it = held.find(k);
              if (it == held.end() || mode == LockMode::kExclusive) {
                held[k] = it != held.end() &&
                                  it->second == LockMode::kExclusive
                              ? LockMode::kExclusive
                              : mode;
              }
              txns[static_cast<size_t>(t)].pending = kInvalidLockRequest;
            }
          });
      if (id != kInvalidLockRequest) {
        txn.pending = id;
        txn.pending_key = k;
        txn.pending_mode = mode;
      }
    } else if (action < 0.8) {
      // Release everything (commit/abort).
      if (txn.pending != kInvalidLockRequest) {
        lm.CancelRequest(txn.pending, Status::Aborted("release"));
        txn.pending = kInvalidLockRequest;
      }
      lm.ReleaseAll(T(static_cast<uint64_t>(t)));
      txn.held.clear();
    } else if (txn.pending != kInvalidLockRequest) {
      // Timeout the pending request.
      lm.CancelRequest(txn.pending, Status::TimedOut("timeout"));
      txn.pending = kInvalidLockRequest;
    }
    if (step % 500 == 0) check_consistency();
  }

  // Drain: release everything; nothing may remain held or parked.
  for (int t = 0; t < kTxns; ++t) {
    TxnState& txn = txns[static_cast<size_t>(t)];
    if (txn.pending != kInvalidLockRequest) {
      lm.CancelRequest(txn.pending, Status::Aborted("drain"));
    }
    lm.ReleaseAll(T(static_cast<uint64_t>(t)));
    txn.held.clear();
  }
  EXPECT_EQ(lm.total_waiters(), 0u);
  for (uint64_t k = 0; k < kKeys; ++k) {
    EXPECT_EQ(lm.HoldersOn(K(k)), 0u);
    EXPECT_EQ(lm.WaitersOn(K(k)), 0u);
  }
}

}  // namespace
}  // namespace storage
}  // namespace geotp
