// Serializability / atomicity property tests (paper §V-B, §V-C).
//
// A bank-transfer workload moves money between accounts spread over the
// data sources; every transfer is balanced (+x on one account, -x on
// another). Under any serializable, atomic execution the global sum of
// all balances is invariant. We run many concurrent transfers through
// each middleware variant (with contention, aborts, deadlock victims,
// early aborts) and check the invariant at the end.
#include <gtest/gtest.h>

#include "sim_fixture.h"
#include "workload/runner.h"

namespace geotp {
namespace {

using middleware::MiddlewareConfig;
using testing_support::MiniCluster;

// Drives `txns` randomized transfers through a MiniCluster, with up to
// `parallel` in flight at a time, retrying aborted ones is unnecessary —
// atomicity must hold whether or not a transfer commits.
void RunTransfers(MiniCluster& cluster, int txns, Rng& rng) {
  const int kAccountsPerNode = 20;  // tiny -> heavy contention
  uint64_t tag = 1;
  for (int i = 0; i < txns; ++i) {
    // Pick two distinct accounts (possibly on different nodes).
    const int node_a = static_cast<int>(rng.NextU64(2));
    const int node_b = static_cast<int>(rng.NextU64(2));
    const uint64_t off_a = rng.NextU64(kAccountsPerNode);
    uint64_t off_b = rng.NextU64(kAccountsPerNode);
    if (node_a == node_b && off_a == off_b) off_b = (off_b + 1) % kAccountsPerNode;
    const int64_t amount = static_cast<int64_t>(rng.NextU64(100)) + 1;
    cluster.SendRound(tag, {
        MiniCluster::Write(cluster.KeyOn(node_a, off_a), -amount, true),
        MiniCluster::Write(cluster.KeyOn(node_b, off_b), amount, true),
    }, true);
    ++tag;
    // Keep a few transactions overlapping to create real interleavings.
    if (i % 4 == 3) cluster.RunFor(40);
  }
  // Commit in passes: committing one transaction can unblock another
  // whose round response only arrives afterwards, so iterate until
  // everything settled.
  std::vector<bool> commit_sent(tag, false);
  for (int pass = 0; pass < 5; ++pass) {
    cluster.RunFor(8000);
    for (uint64_t t = 1; t < tag; ++t) {
      auto& txn = cluster.txn(t);
      if (!commit_sent[t] && !txn.has_result &&
          !txn.round_responses.empty()) {
        cluster.SendCommit(t);
        commit_sent[t] = true;
      }
    }
  }
  cluster.RunFor(8000);
}

int64_t GlobalSum(MiniCluster& cluster) {
  int64_t sum = 0;
  for (int node = 0; node < 2; ++node) {
    for (uint64_t off = 0; off < 20; ++off) {
      auto rec = cluster.source(node).engine().store().Get(
          cluster.KeyOn(node, off));
      if (rec) sum += rec->value;
    }
  }
  return sum;
}

class TransferInvariantTest
    : public ::testing::TestWithParam<middleware::MiddlewareConfig (*)()> {};

TEST_P(TransferInvariantTest, GlobalBalanceConserved) {
  MiniCluster::Options options;
  options.dm = GetParam()();
  MiniCluster cluster(options);
  Rng rng(0xBA7A9CE);
  RunTransfers(cluster, 120, rng);
  // Every committed transfer moved money atomically; every aborted one
  // must have been fully undone: the global sum stays zero.
  EXPECT_EQ(GlobalSum(cluster), 0);
  // All locks released, no branch leaked.
  EXPECT_EQ(cluster.source(0).engine().ActiveCount(), 0u);
  EXPECT_EQ(cluster.source(1).engine().ActiveCount(), 0u);
}

// SSP(local) is deliberately excluded: the paper uses it precisely because
// it does NOT guarantee atomicity. The XA-correct systems must conserve.
INSTANTIATE_TEST_SUITE_P(
    Systems, TransferInvariantTest,
    ::testing::Values(&MiddlewareConfig::SSP, &MiddlewareConfig::Quro,
                      &MiddlewareConfig::Chiller, &MiddlewareConfig::GeoTPO1,
                      &MiddlewareConfig::GeoTPO1O2, &MiddlewareConfig::GeoTP));

TEST(SerializabilityTest, PostponingDoesNotChangeSerialOutcome) {
  // §V-C: latency-aware scheduling postpones lock acquisition but must not
  // alter isolation. Run the same deterministic transfer set through SSP
  // (no postponing) and GeoTP (full postponing): both must conserve the
  // invariant and leave consistent per-key non-negative... (values may
  // differ because commit order differs; the invariant is the sum).
  for (auto make : {&MiddlewareConfig::SSP, &MiddlewareConfig::GeoTP}) {
    MiniCluster::Options options;
    options.dm = make();
    MiniCluster cluster(options);
    Rng rng(777);
    RunTransfers(cluster, 150, rng);
    EXPECT_EQ(GlobalSum(cluster), 0);
  }
}

TEST(SerializabilityTest, HighContentionStillConserves) {
  // All transfers touch one hot account: maximal lock conflicts,
  // deadlocks and early aborts.
  MiniCluster::Options options;
  options.dm = MiddlewareConfig::GeoTP();
  MiniCluster cluster(options);
  Rng rng(99);
  uint64_t tag = 1;
  for (int i = 0; i < 60; ++i) {
    const int node_b = static_cast<int>(rng.NextU64(2));
    const uint64_t off_b = 1 + rng.NextU64(10);
    cluster.SendRound(tag, {
        MiniCluster::Write(cluster.KeyOn(0, 0), -10, true),  // hot account
        MiniCluster::Write(cluster.KeyOn(node_b, off_b), 10, true),
    }, true);
    ++tag;
    if (i % 2 == 1) cluster.RunFor(25);
  }
  cluster.RunFor(10000);
  for (uint64_t t = 1; t < tag; ++t) {
    auto& txn = cluster.txn(t);
    if (!txn.has_result && !txn.round_responses.empty()) cluster.SendCommit(t);
  }
  cluster.RunFor(10000);
  EXPECT_EQ(GlobalSum(cluster), 0);
}

TEST(SerializabilityTest, ExperimentRunnersConserveYcsbDeltaSum) {
  // End-to-end: the YCSB workload writes balanced +/- deltas on average
  // but is not conservation-structured, so here we only assert the run
  // completes with a sane commit count and zero leaked branches via the
  // abort accounting: committed + aborted events == attempts (no lost
  // transactions).
  workload::ExperimentConfig config;
  config.system = workload::SystemKind::kGeoTP;
  config.ycsb.theta = 0.9;
  config.driver.terminals = 16;
  config.driver.warmup = SecToMicros(2);
  config.driver.measure = SecToMicros(8);
  auto result = workload::RunExperiment(config);
  EXPECT_GT(result.run.committed, 0u);
  EXPECT_GE(result.dm.committed, result.run.committed);
}

}  // namespace
}  // namespace geotp
