// Streaming shard migration: bounded chunking under receiver-driven
// credit, backpressure from a stalled destination, chunk reorder and loss
// over the simulated network, and the replicated migration-state records
// that let a failover mid-stream resume or abort deterministically from
// the group log.
#include <memory>

#include <gtest/gtest.h>

#include "sharding/shard_map.h"
#include "sim_fixture.h"

namespace geotp {
namespace {

using protocol::ShardMapUpdate;
using protocol::ShardMigrateRequest;
using sharding::ShardMap;
using sharding::ShardRange;
using testing_support::MiniCluster;

// Moving range: source 1's first chunk, [1000, 1250), 4 chunks/source.
constexpr uint64_t kRangeLo = 1000;
constexpr uint64_t kRangeHi = 1250;

MiniCluster::Options StreamOptions() {
  MiniCluster::Options options;
  options.num_data_sources = 2;
  options.rtts_ms = {10.0, 100.0};
  options.sharding = true;
  options.chunks_per_source = 4;
  options.ds_tweak = [](datasource::DataSourceConfig* ds) {
    ds->migration_chunk_records = 32;
    ds->migration_stream_window = 4;
  };
  return options;
}

/// Sends the manual migration request the edge-case tests drive from the
/// client node (node 0 plays the balancer and collects the reports).
void StartMigration(MiniCluster& c, uint64_t id, Micros timeout = 0) {
  auto migrate = std::make_unique<ShardMigrateRequest>();
  migrate->from = 0;
  migrate->to = 3;
  migrate->migration_id = id;
  migrate->range = ShardRange{1, kRangeLo, kRangeHi, 3, 0};
  migrate->dest = 2;
  migrate->dest_leader = 2;
  migrate->new_version = 1;
  migrate->timeout = timeout;
  c.network().Send(std::move(migrate));
}

// ---------------------------------------------------------------------------
// A large range streams in bounded chunks; the credit window caps the
// source's only stream memory (the unacked retransmit buffer).
// ---------------------------------------------------------------------------

TEST(MigrationStream, LargeRangeStreamsInBoundedChunks) {
  MiniCluster c(StreamOptions());
  c.PreloadRange(1, 250);  // fills [1000, 1250) exactly

  StartMigration(c, 101);
  c.RunFor(2500);

  ASSERT_EQ(c.cutovers().size(), 1u);
  EXPECT_EQ(c.cutovers()[0].range.owner, 2);

  const auto& src = c.source(1).migrator().stats();
  const auto& dst = c.source(0).migrator().stats();
  // 250 records / 32 per chunk = 8 chunks, none lost, all applied.
  EXPECT_EQ(src.snapshot_chunks_sent, 8u);
  EXPECT_EQ(src.streams_completed, 1u);
  EXPECT_EQ(src.snapshot_records_sent, 250u);
  EXPECT_EQ(dst.snapshot_chunks_applied, 8u);
  EXPECT_EQ(dst.snapshot_records_applied, 250u);
  // Flow control: never more chunks in flight than the receiver's window,
  // on either side of the stream.
  EXPECT_LE(src.peak_unacked_chunks, 4u);
  EXPECT_LE(dst.peak_buffered_chunks, 4u);
  EXPECT_EQ(src.chunk_retransmits, 0u);

  // Every preloaded record made it across.
  for (uint64_t off = 0; off < 250; off += 41) {
    EXPECT_TRUE(c.source(0).engine().store().Get(c.KeyOn(1, off)).has_value())
        << "offset " << off;
  }
}

// ---------------------------------------------------------------------------
// A destination that stalls (slow bulk ingest) backpressures the source:
// the stream halts at the credit window instead of flooding the loop.
// ---------------------------------------------------------------------------

TEST(MigrationStream, StalledDestinationBackpressuresSource) {
  MiniCluster::Options options = StreamOptions();
  options.ds_tweak = [](datasource::DataSourceConfig* ds) {
    ds->migration_chunk_records = 32;
    ds->migration_stream_window = 4;
    ds->migration_apply_cost = 2000;  // 64 ms per 32-record chunk ingest
  };
  MiniCluster c(options);
  c.PreloadRange(1, 250);

  StartMigration(c, 102);
  // Mid-stream: the destination has applied at most a couple of chunks;
  // the source must be parked at the window, not 8 chunks deep.
  c.RunFor(200);
  const auto& src = c.source(1).migrator().stats();
  EXPECT_LT(src.snapshot_chunks_sent, 8u);
  EXPECT_LE(c.source(1).migrator().UnackedChunks(), 4u);

  // The stalled stream still finishes — slowly, honestly.
  c.RunFor(3000);
  ASSERT_EQ(c.cutovers().size(), 1u);
  EXPECT_EQ(src.snapshot_chunks_sent, 8u);
  EXPECT_LE(src.peak_unacked_chunks, 4u);
  EXPECT_EQ(c.source(0).migrator().stats().snapshot_records_applied, 250u);
}

// ---------------------------------------------------------------------------
// Chunks reordered by per-message jitter apply in sequence order; deltas
// committed mid-stream are never overwritten by a later (older) chunk.
// ---------------------------------------------------------------------------

TEST(MigrationStream, ReorderedChunksAndInterleavedDeltasConverge) {
  MiniCluster::Options options = StreamOptions();
  options.ds_tweak = [](datasource::DataSourceConfig* ds) {
    ds->migration_chunk_records = 16;
    ds->migration_stream_window = 8;
    // Slow ingest (32 ms per chunk): the stream's tail is still pending
    // when the mid-stream commit's delta reaches the destination.
    ds->migration_apply_cost = 2000;
  };
  MiniCluster c(options);
  c.PreloadRange(1, 250);
  // A committed value the stream must carry.
  ASSERT_TRUE(c.RunTxn(1, {MiniCluster::Write(c.KeyOn(1, 3), 33)}).ok());

  // Heavy independent jitter on the source -> dest link: chunks of one
  // window burst overtake each other.
  sim::LinkSpec jittered;
  jittered.one_way_mean = MsToMicros(25);
  jittered.jitter_stddev = MsToMicros(20);
  jittered.jitter = sim::JitterModel::kUniform;
  jittered.min_one_way = MsToMicros(1);
  c.network().matrix().SetDirected(3, 2, jittered);

  StartMigration(c, 103);
  // Mid-stream commit on a key in the LAST chunk: its delta applies at
  // the destination long before the (older) chunk copy dequeues, and the
  // chunk must not overwrite it.
  c.RunFor(60);
  c.SendRound(3, {MiniCluster::Write(c.KeyOn(1, 240), 44)}, true);
  c.RunFor(250);
  c.SendCommit(3);
  c.RunFor(5000);
  ASSERT_TRUE(c.txn(3).result.ok());

  ASSERT_EQ(c.cutovers().size(), 1u);
  const auto& dst = c.source(0).migrator().stats();
  EXPECT_EQ(dst.snapshot_chunks_applied, 16u);
  EXPECT_LE(dst.peak_buffered_chunks, 8u);
  EXPECT_GE(dst.delta_batches_applied, 1u);
  // The delta (post-cut, newer) value won over the chunk's committed-cut
  // copy that applied after it.
  EXPECT_GE(dst.chunk_records_superseded, 1u);
  auto moved = c.source(0).engine().store().Get(c.KeyOn(1, 240));
  ASSERT_TRUE(moved.has_value());
  EXPECT_EQ(moved->value, 44);
  EXPECT_EQ(c.source(0).engine().store().Get(c.KeyOn(1, 3))->value, 33);
}

// ---------------------------------------------------------------------------
// Chunk loss (a partition window swallowing chunks and acks) recovers via
// the source's retransmit path; duplicates re-ack at the receiver's
// position.
// ---------------------------------------------------------------------------

TEST(MigrationStream, ChunkLossRecoversViaRetransmit) {
  MiniCluster c(StreamOptions());
  c.PreloadRange(1, 250);

  StartMigration(c, 104);
  // Let the stream get going, then black-hole the destination for a
  // window: in-flight chunks and acks die at the NIC.
  c.RunFor(40);
  c.network().Partition(2);
  c.RunFor(700);
  c.network().Restore(2);
  c.RunFor(5000);

  ASSERT_EQ(c.cutovers().size(), 1u);
  const auto& src = c.source(1).migrator().stats();
  EXPECT_GE(src.chunk_retransmits, 1u);
  EXPECT_EQ(src.streams_completed, 1u);
  EXPECT_LE(src.peak_unacked_chunks, 4u);
  EXPECT_EQ(c.source(0).migrator().stats().snapshot_records_applied, 250u);
  for (uint64_t off = 0; off < 250; off += 59) {
    EXPECT_TRUE(c.source(0).engine().store().Get(c.KeyOn(1, off)).has_value())
        << "offset " << off;
  }
}

// ---------------------------------------------------------------------------
// Replicated migration state, abort path: the source leader dies
// mid-stream. The promoted leader inherits the MigrationBegin record (no
// Cutover), aborts from the log, and notifies the balancer — no timeout
// wait, no committed-write loss, range keeps serving at the source group.
// ---------------------------------------------------------------------------

TEST(MigrationStream, SourceLeaderCrashMidStreamAbortsFromLog) {
  MiniCluster::Options options = StreamOptions();
  options.replication_factor = 3;
  options.ds_tweak = [](datasource::DataSourceConfig* ds) {
    ds->migration_chunk_records = 16;
    ds->migration_stream_window = 2;  // long stream: 16 chunks, small window
  };
  MiniCluster c(options);
  c.PreloadRange(1, 250);
  ASSERT_TRUE(c.RunTxn(1, {MiniCluster::Write(c.KeyOn(1, 9), 90)}).ok());

  StartMigration(c, 105);
  c.RunFor(150);  // Begin journaled, stream a few chunks in
  ASSERT_GT(c.source(1).migrator().stats().snapshot_chunks_sent, 0u);
  ASSERT_EQ(c.source(1).migrator().stats().streams_completed, 0u);
  c.source(1).Crash();
  c.RunFor(4000);  // election + promotion + abort-from-log

  auto* promoted = c.leader_of(1);
  ASSERT_NE(promoted, nullptr);
  EXPECT_NE(promoted->id(), c.source(1).id());
  // The promoted leader aborted the inherited migration deterministically.
  EXPECT_EQ(promoted->migrator().stats().migration_aborts_from_log, 1u);
  ASSERT_EQ(c.aborted_migrations().size(), 1u);
  EXPECT_EQ(c.aborted_migrations()[0].migration_id, 105u);
  EXPECT_TRUE(c.cutovers().empty());
  EXPECT_EQ(c.dm().stats().shard_map_epoch, 0u);

  // The range still serves at the source group, nothing lost.
  ASSERT_TRUE(c.RunTxn(2, {MiniCluster::Write(c.KeyOn(1, 9), 91)}).ok());
  auto rec = promoted->engine().store().Get(c.KeyOn(1, 9));
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->value, 91);
}

// ---------------------------------------------------------------------------
// Replicated migration state, resume path: the cutover record is
// journaled, then the source leader dies before the map is published. The
// promoted leader re-fences the range from the log (closing the publish /
// LeaderAnnounce race) and re-reports readiness with logged=true.
// ---------------------------------------------------------------------------

TEST(MigrationStream, JournaledCutoverSurvivesSourceFailover) {
  MiniCluster::Options options = StreamOptions();
  options.replication_factor = 3;
  MiniCluster c(options);
  ASSERT_TRUE(c.RunTxn(1, {MiniCluster::Write(c.KeyOn(1, 5), 55)}).ok());

  StartMigration(c, 106);
  c.RunFor(1500);
  ASSERT_EQ(c.cutovers().size(), 1u);
  EXPECT_TRUE(c.cutovers()[0].logged);

  // Kill the source leader before any publish. The fence was volatile,
  // but the journaled cutover is not: the promoted leader must re-fence
  // BEFORE serving and re-report.
  c.source(1).Crash();
  c.RunFor(3000);
  auto* promoted = c.leader_of(1);
  ASSERT_NE(promoted, nullptr);
  EXPECT_EQ(promoted->migrator().stats().migration_resumes, 1u);
  ASSERT_EQ(c.cutovers().size(), 2u);
  EXPECT_TRUE(c.cutovers()[1].logged);
  EXPECT_EQ(c.cutovers()[1].migration_id, 106u);
  EXPECT_EQ(c.cutovers()[1].range.owner, 2);
  EXPECT_EQ(c.cutovers()[1].range.version, 1u);

  // The re-fenced range refuses writes at the promoted leader — the
  // window where a post-failover source served (and then lost) writes on
  // a published-away range is closed.
  EXPECT_FALSE(c.RunTxn(2, {MiniCluster::Write(c.KeyOn(1, 5), 66)}).ok());
  EXPECT_GE(promoted->stats().shard_fenced_rejections, 1u);

  // Publish the cutover (what the balancer does on the re-report): the
  // range switches to the destination with the committed write intact.
  ShardMap published = ShardMap::FromRangePartition(1, 1000, {2, 3}, 4);
  ASSERT_EQ(published.ranges()[4].lo, kRangeLo);
  ASSERT_TRUE(published.Move(4, 2, 1));
  std::vector<NodeId> targets = {1, 2};
  for (auto* replica : c.replica_group(1)) targets.push_back(replica->id());
  for (auto* replica : c.replica_group(0)) targets.push_back(replica->id());
  for (NodeId target : targets) {
    auto update = std::make_unique<ShardMapUpdate>();
    update->from = 0;
    update->to = target;
    update->entries = published.ranges();
    c.network().Send(std::move(update));
  }
  c.RunFor(1000);

  EXPECT_EQ(c.dm().stats().shard_map_epoch, 1u);
  auto rec = c.source(0).engine().store().Get(c.KeyOn(1, 5));
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->value, 55);
  ASSERT_TRUE(c.RunTxn(3, {MiniCluster::Write(c.KeyOn(1, 5), 56)}).ok());
  EXPECT_EQ(c.source(0).engine().store().Get(c.KeyOn(1, 5))->value, 56);
}

// ---------------------------------------------------------------------------
// Destination-leader failover mid-stream: the promoted destination leader
// rebuilt its ingest journal from the replicated ingest provenance, so
// when the balancer re-points the migration at it, the source re-offers
// every sent chunk's hash and the new leader declines the quorum-applied
// prefix — the stream resumes past it instead of restarting (or waiting
// for the timeout cancel).
// ---------------------------------------------------------------------------

TEST(MigrationStream, DestLeaderCrashMidStreamResumesViaHashDecline) {
  MiniCluster::Options options = StreamOptions();
  options.replication_factor = 3;
  options.ds_tweak = [](datasource::DataSourceConfig* ds) {
    ds->migration_chunk_records = 16;  // 250 records -> 16 chunks
    ds->migration_stream_window = 2;
    ds->migration_apply_cost = 2000;  // 32 ms per chunk: a long stream
  };
  MiniCluster c(options);
  c.PreloadRange(1, 250);

  StartMigration(c, 107);
  c.RunFor(250);  // several chunks quorum-applied at the destination
  ASSERT_GT(c.source(0).migrator().stats().snapshot_chunks_applied, 0u);
  ASSERT_EQ(c.source(1).migrator().stats().streams_completed, 0u);

  c.source(0).Crash();  // destination leader dies mid-stream
  c.RunFor(3000);       // election in the destination group
  auto* promoted = c.leader_of(0);
  ASSERT_NE(promoted, nullptr);
  EXPECT_NE(promoted->id(), c.source(0).id());

  // The balancer detects the epoch change and re-points the in-flight
  // migration (same id, new dest leader); this test plays balancer.
  auto repoint = std::make_unique<ShardMigrateRequest>();
  repoint->from = 0;
  repoint->to = 3;
  repoint->migration_id = 107;
  repoint->range = ShardRange{1, kRangeLo, kRangeHi, 3, 0};
  repoint->dest = 2;
  repoint->dest_leader = promoted->id();
  repoint->new_version = 1;
  c.network().Send(std::move(repoint));
  c.RunFor(6000);

  const auto& src = c.source(1).migrator().stats();
  // The source re-offered its sent-chunk hashes; the promoted leader
  // declined the prefix its journal proves quorum-applied, and the stream
  // resumed past it to completion.
  EXPECT_GE(src.seed_offers_sent, 1u);
  EXPECT_GT(src.chunks_declined, 0u);
  EXPECT_EQ(src.streams_completed, 1u);
  ASSERT_EQ(c.cutovers().size(), 1u);
  EXPECT_EQ(c.cutovers()[0].migration_id, 107u);
  EXPECT_EQ(c.cutovers()[0].range.owner, 2);

  // Every record crossed exactly once overall: nothing lost at the new
  // leader, declined chunks were already there via replication.
  for (uint64_t off = 0; off < 250; off += 31) {
    EXPECT_TRUE(promoted->engine().store().Get(c.KeyOn(1, off)).has_value())
        << "offset " << off;
  }
}

}  // namespace
}  // namespace geotp
