// Tests for the virtual-time discrete-event loop.
#include "sim/event_loop.h"

#include <vector>

#include <gtest/gtest.h>

namespace geotp {
namespace sim {
namespace {

TEST(EventLoopTest, StartsAtTimeZero) {
  EventLoop loop;
  EXPECT_EQ(loop.Now(), 0);
  EXPECT_TRUE(loop.Empty());
}

TEST(EventLoopTest, AdvancesToEventTime) {
  EventLoop loop;
  Micros fired_at = -1;
  loop.Schedule(1000, [&]() { fired_at = loop.Now(); });
  loop.Run();
  EXPECT_EQ(fired_at, 1000);
  EXPECT_EQ(loop.Now(), 1000);
}

TEST(EventLoopTest, FiresInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.Schedule(300, [&]() { order.push_back(3); });
  loop.Schedule(100, [&]() { order.push_back(1); });
  loop.Schedule(200, [&]() { order.push_back(2); });
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventLoopTest, SameTimeIsFifo) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    loop.Schedule(50, [&order, i]() { order.push_back(i); });
  }
  loop.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventLoopTest, NestedScheduling) {
  EventLoop loop;
  Micros inner_fired = -1;
  loop.Schedule(10, [&]() {
    loop.Schedule(5, [&]() { inner_fired = loop.Now(); });
  });
  loop.Run();
  EXPECT_EQ(inner_fired, 15);
}

TEST(EventLoopTest, NegativeDelayClampsToNow) {
  EventLoop loop;
  Micros fired_at = -1;
  loop.Schedule(100, [&]() {
    loop.Schedule(-50, [&]() { fired_at = loop.Now(); });
  });
  loop.Run();
  EXPECT_EQ(fired_at, 100);
}

TEST(EventLoopTest, CancelPreventsExecution) {
  EventLoop loop;
  bool fired = false;
  EventId id = loop.Schedule(100, [&]() { fired = true; });
  EXPECT_TRUE(loop.Cancel(id));
  loop.Run();
  EXPECT_FALSE(fired);
}

TEST(EventLoopTest, CancelTwiceReturnsFalse) {
  EventLoop loop;
  EventId id = loop.Schedule(100, []() {});
  EXPECT_TRUE(loop.Cancel(id));
  EXPECT_FALSE(loop.Cancel(id));
}

TEST(EventLoopTest, CancelUnknownIdIsNoop) {
  EventLoop loop;
  EXPECT_FALSE(loop.Cancel(kInvalidEvent));
  EXPECT_FALSE(loop.Cancel(9999));
}

TEST(EventLoopTest, CancelFiredEventReturnsFalse) {
  EventLoop loop;
  EventId id = loop.Schedule(10, []() {});
  loop.Run();
  EXPECT_FALSE(loop.Cancel(id));
}

TEST(EventLoopTest, RunUntilStopsAtBoundary) {
  EventLoop loop;
  int fired = 0;
  loop.Schedule(100, [&]() { fired++; });
  loop.Schedule(200, [&]() { fired++; });
  loop.Schedule(300, [&]() { fired++; });
  loop.RunUntil(200);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(loop.Now(), 200);
  loop.Run();
  EXPECT_EQ(fired, 3);
}

TEST(EventLoopTest, RunUntilAdvancesTimeWithNoEvents) {
  EventLoop loop;
  loop.RunUntil(5000);
  EXPECT_EQ(loop.Now(), 5000);
}

TEST(EventLoopTest, CountsProcessedEvents) {
  EventLoop loop;
  for (int i = 0; i < 7; ++i) loop.Schedule(i, []() {});
  loop.Run();
  EXPECT_EQ(loop.events_processed(), 7u);
}

TEST(EventLoopTest, ClearDropsPending) {
  EventLoop loop;
  bool fired = false;
  loop.Schedule(10, [&]() { fired = true; });
  loop.Clear();
  loop.Run();
  EXPECT_FALSE(fired);
}

TEST(EventLoopTest, StepRunsExactlyOne) {
  EventLoop loop;
  int fired = 0;
  loop.Schedule(1, [&]() { fired++; });
  loop.Schedule(2, [&]() { fired++; });
  EXPECT_TRUE(loop.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(loop.Step());
  EXPECT_FALSE(loop.Step());
  EXPECT_EQ(fired, 2);
}

TEST(EventLoopTest, ManyEventsStressOrdering) {
  EventLoop loop;
  Micros last = -1;
  bool monotonic = true;
  for (int i = 0; i < 10000; ++i) {
    loop.Schedule((i * 7919) % 1000, [&]() {
      if (loop.Now() < last) monotonic = false;
      last = loop.Now();
    });
  }
  loop.Run();
  EXPECT_TRUE(monotonic);
}

}  // namespace
}  // namespace sim
}  // namespace geotp
