// Unit tests for Status / Result error handling.
#include "common/status.h"

#include <gtest/gtest.h>

namespace geotp {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsSetCodeAndMessage) {
  Status st = Status::TimedOut("lock wait");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsTimedOut());
  EXPECT_EQ(st.message(), "lock wait");
  EXPECT_EQ(st.ToString(), "TimedOut: lock wait");
}

TEST(StatusTest, PredicatesMatchOnlyTheirCode) {
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_FALSE(Status::Aborted("x").IsTimedOut());
  EXPECT_TRUE(Status::Conflict("x").IsConflict());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
}

TEST(StatusTest, EqualityComparesCodeOnly) {
  EXPECT_EQ(Status::Aborted("a"), Status::Aborted("b"));
  EXPECT_FALSE(Status::Aborted("a") == Status::TimedOut("a"));
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, OkStatusIntoResultBecomesInternalError) {
  Result<int> r(Status::OK());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

Status Fails() { return Status::Aborted("inner"); }

Status Propagates() {
  GEOTP_RETURN_NOT_OK(Fails());
  return Status::OK();
}

TEST(ResultTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(Propagates().IsAborted());
}

Result<int> MakeInt(bool ok) {
  if (ok) return 7;
  return Status::TimedOut("t");
}

Status UseAssignOrReturn(bool ok, int* out) {
  GEOTP_ASSIGN_OR_RETURN(*out, MakeInt(ok));
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int v = 0;
  EXPECT_TRUE(UseAssignOrReturn(true, &v).ok());
  EXPECT_EQ(v, 7);
  EXPECT_TRUE(UseAssignOrReturn(false, &v).IsTimedOut());
}

}  // namespace
}  // namespace geotp
