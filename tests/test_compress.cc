// Property/fuzz battery for the WAN compression seam (common/compress.h)
// and the packed-payload codec (protocol/wan_codec.h).
//
// Contract under test:
//  * round-trip identity over random, incompressible, repetitive, empty
//    and 1-byte buffers;
//  * every truncation and every sampled bit flip of the wire bytes is
//    either rejected (DecodePayload false) or decodes to the exact
//    original content — never a crash, never silently different bytes
//    (the content hash is the last line of defence);
//  * the packed entry/write formats reject malformed input totally.
//
// The whole file runs under ASan/UBSan in the sanitize CI job (ctest
// label: compress), which is what "never crash" means in practice.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "common/compress.h"
#include "protocol/wan_codec.h"

namespace geotp {
namespace {

using common::ContentHash64;
using common::DecodePayload;
using common::EncodePayload;
using common::WireCodec;
using protocol::ReplEntry;
using protocol::ReplWrite;

std::string RandomBytes(std::mt19937_64* rng, size_t len) {
  std::string out(len, '\0');
  for (char& c : out) c = static_cast<char>((*rng)() & 0xFF);
  return out;
}

/// Structured-ish data resembling packed records: long runs of zero-heavy
/// little-endian integers — the shape the block codec must actually
/// compress on the WAN paths.
std::string RecordLikeBytes(std::mt19937_64* rng, size_t records) {
  std::vector<ReplWrite> writes;
  writes.reserve(records);
  for (size_t i = 0; i < records; ++i) {
    ReplWrite w;
    w.key.table = 1;
    w.key.key = 1000 + i;
    w.value = static_cast<int64_t>((*rng)() % 100);
    writes.push_back(w);
  }
  return protocol::PackWrites(writes);
}

void ExpectRoundTrip(WireCodec want, const std::string& raw) {
  std::string wire;
  const WireCodec used = EncodePayload(want, raw, &wire);
  std::string back;
  ASSERT_TRUE(
      DecodePayload(used, wire, raw.size(), ContentHash64(raw), &back))
      << "len=" << raw.size();
  EXPECT_EQ(back, raw);
}

TEST(ContentHash, StableAndSensitive) {
  EXPECT_EQ(ContentHash64(std::string()), 14695981039346656037ULL);
  const std::string a = "geo-distributed";
  std::string b = a;
  b[3] ^= 1;
  EXPECT_NE(ContentHash64(a), ContentHash64(b));
  EXPECT_EQ(ContentHash64(a), ContentHash64(std::string(a)));
}

TEST(BlockCodec, RoundTripAdversarialShapes) {
  std::mt19937_64 rng(0xC0DEC);
  ExpectRoundTrip(WireCodec::kBlock, "");            // empty
  ExpectRoundTrip(WireCodec::kBlock, "x");           // 1 byte
  ExpectRoundTrip(WireCodec::kBlock, "abcd");        // exactly min-match
  ExpectRoundTrip(WireCodec::kBlock, std::string(100000, 'z'));  // RLE
  ExpectRoundTrip(WireCodec::kBlock, RandomBytes(&rng, 65537));  // random
  // Long literal run (> 15+255 forces the length-extension path).
  ExpectRoundTrip(WireCodec::kBlock, RandomBytes(&rng, 5000));
  // Repetitive with period > min-match.
  std::string periodic;
  for (int i = 0; i < 4000; ++i) periodic += "pattern-17-bytes!";
  ExpectRoundTrip(WireCodec::kBlock, periodic);
  for (int trial = 0; trial < 50; ++trial) {
    ExpectRoundTrip(WireCodec::kBlock, RandomBytes(&rng, rng() % 4096));
    ExpectRoundTrip(WireCodec::kBlock, RecordLikeBytes(&rng, rng() % 512));
  }
}

TEST(BlockCodec, IncompressibleFallsBackToRaw) {
  std::mt19937_64 rng(7);
  const std::string raw = RandomBytes(&rng, 2048);
  std::string wire;
  const WireCodec used = EncodePayload(WireCodec::kBlock, raw, &wire);
  // Uniform random bytes cannot shrink: the envelope must ship them raw
  // rather than expanded.
  EXPECT_EQ(used, WireCodec::kRaw);
  EXPECT_EQ(wire, raw);
}

TEST(BlockCodec, CompressesRecordPayloads) {
  std::mt19937_64 rng(42);
  const std::string raw = RecordLikeBytes(&rng, 1024);
  std::string wire;
  const WireCodec used = EncodePayload(WireCodec::kBlock, raw, &wire);
  ASSERT_EQ(used, WireCodec::kBlock);
  // The acceptance gate on the log-shipping path is 2x; packed records
  // must clear it with margin at the codec level.
  EXPECT_LT(wire.size() * 2, raw.size())
      << "ratio=" << static_cast<double>(raw.size()) / wire.size();
}

TEST(BlockCodec, TruncationAlwaysRejected) {
  std::mt19937_64 rng(0xBADF00D);
  const std::string raw = RecordLikeBytes(&rng, 256);
  std::string wire;
  const WireCodec used = EncodePayload(WireCodec::kBlock, raw, &wire);
  ASSERT_EQ(used, WireCodec::kBlock);
  const uint64_t hash = ContentHash64(raw);
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    std::string truncated = wire.substr(0, cut);
    std::string back;
    EXPECT_FALSE(DecodePayload(used, truncated, raw.size(), hash, &back))
        << "cut=" << cut;
  }
}

TEST(BlockCodec, BitFlipsNeverYieldWrongContent) {
  std::mt19937_64 rng(0xF11B5);
  const std::string raw = RecordLikeBytes(&rng, 200);
  std::string wire;
  const WireCodec used = EncodePayload(WireCodec::kBlock, raw, &wire);
  ASSERT_EQ(used, WireCodec::kBlock);
  const uint64_t hash = ContentHash64(raw);
  for (size_t i = 0; i < wire.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = wire;
      flipped[i] = static_cast<char>(flipped[i] ^ (1 << bit));
      std::string back;
      // Either rejected outright or — if the stream still parses — the
      // content hash catches it. A flip can never produce accepted-but-
      // different bytes.
      if (DecodePayload(used, flipped, raw.size(), hash, &back)) {
        EXPECT_EQ(back, raw) << "byte " << i << " bit " << bit;
      }
    }
  }
}

TEST(BlockCodec, WrongLengthOrHashRejected) {
  const std::string raw = std::string(500, 'q');
  std::string wire;
  const WireCodec used = EncodePayload(WireCodec::kBlock, raw, &wire);
  std::string back;
  EXPECT_FALSE(DecodePayload(used, wire, raw.size() + 1,
                             ContentHash64(raw), &back));
  EXPECT_FALSE(DecodePayload(used, wire, raw.size() - 1,
                             ContentHash64(raw), &back));
  EXPECT_FALSE(DecodePayload(used, wire, raw.size(),
                             ContentHash64(raw) ^ 1, &back));
  EXPECT_TRUE(DecodePayload(used, wire, raw.size(),
                            ContentHash64(raw), &back));
  // A forged giant uncompressed_len must not allocate its way to an OOM.
  EXPECT_FALSE(DecodePayload(used, wire, size_t{1} << 40,
                             ContentHash64(raw), &back));
}

TEST(BlockCodec, RandomGarbageNeverCrashes) {
  std::mt19937_64 rng(99);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::string garbage = RandomBytes(&rng, rng() % 512);
    std::string back;
    // Most garbage is rejected; any accept must still match the hash we
    // demand, which garbage cannot forge. Either way: no crash, no OOB.
    DecodePayload(WireCodec::kBlock, garbage, rng() % 1024, rng(), &back);
  }
}

TEST(Negotiation, MaskAndPick) {
  EXPECT_TRUE(common::SupportedCodecMask() & common::kCodecRawBit);
  EXPECT_TRUE(common::SupportedCodecMask() & common::kCodecBlockBit);
  // Peer advertises nothing (pre-negotiation actor): raw.
  EXPECT_EQ(common::PickWireCodec(0, true), WireCodec::kRaw);
  // Peer supports block but local knob is off: raw.
  EXPECT_EQ(common::PickWireCodec(common::SupportedCodecMask(), false),
            WireCodec::kRaw);
  // Both sides capable and willing: block.
  EXPECT_EQ(common::PickWireCodec(
                common::kCodecRawBit | common::kCodecBlockBit, true),
            WireCodec::kBlock);
}

TEST(WanCodec, WritesRoundTripAndIdentity) {
  std::mt19937_64 rng(5);
  std::vector<ReplWrite> writes;
  for (int i = 0; i < 300; ++i) {
    ReplWrite w;
    w.key.table = static_cast<uint32_t>(rng() % 4);
    w.key.key = rng();
    w.value = static_cast<int64_t>(rng());
    writes.push_back(w);
  }
  const std::string packed = protocol::PackWrites(writes);
  std::vector<ReplWrite> back;
  ASSERT_TRUE(protocol::UnpackWrites(packed, &back));
  ASSERT_EQ(back.size(), writes.size());
  for (size_t i = 0; i < writes.size(); ++i) {
    EXPECT_EQ(back[i].key, writes[i].key);
    EXPECT_EQ(back[i].value, writes[i].value);
  }
  // Determinism: the hash IS the chunk identity in the re-seed handshake,
  // so packing the same records twice must produce identical bytes.
  EXPECT_EQ(packed, protocol::PackWrites(writes));
  // Truncations reject totally.
  for (size_t cut = 0; cut < packed.size(); cut += 3) {
    std::vector<ReplWrite> scratch;
    EXPECT_FALSE(protocol::UnpackWrites(packed.substr(0, cut), &scratch));
  }
}

TEST(WanCodec, EntriesRoundTrip) {
  std::vector<ReplEntry> entries;
  for (uint64_t i = 1; i <= 40; ++i) {
    ReplEntry e;
    e.index = i;
    e.epoch = 3;
    e.type = protocol::ReplEntryType::kCommit;
    e.xid = Xid{100 + i, 2};
    e.coordinator = 1;
    e.at = static_cast<Micros>(i * 17);
    for (uint64_t j = 0; j < i % 5; ++j) {
      e.writes.push_back(ReplWrite{RecordKey{1, i * 10 + j},
                                   static_cast<int64_t>(j)});
    }
    if (i == 7) {
      auto m = std::make_shared<protocol::MigrationRecord>();
      m->migration_id = 77;
      m->range = sharding::ShardRange{1, 100, 200, 3, 9};
      m->dest = 4;
      m->dest_leader = 12;
      m->new_version = 9;
      m->balancer = 1;
      m->timeout = 5000;
      m->delta_next_seq = 6;
      e.migration = m;
    }
    e.ingest_migration_id = i % 3 == 0 ? 8 : 0;
    e.ingest_chunk_seq = i % 3 == 0 ? 2 : 0;
    e.ingest_content_hash = i % 3 == 0 ? 0xABCDEFu : 0;
    entries.push_back(std::move(e));
  }
  const std::string packed = protocol::PackEntries(entries);
  std::vector<ReplEntry> back;
  ASSERT_TRUE(protocol::UnpackEntries(packed, &back));
  ASSERT_EQ(back.size(), entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(back[i].index, entries[i].index);
    EXPECT_EQ(back[i].epoch, entries[i].epoch);
    EXPECT_EQ(back[i].xid, entries[i].xid);
    EXPECT_EQ(back[i].writes.size(), entries[i].writes.size());
    EXPECT_EQ(back[i].ingest_content_hash, entries[i].ingest_content_hash);
    EXPECT_EQ(back[i].migration != nullptr,
              entries[i].migration != nullptr);
  }
  ASSERT_NE(back[6].migration, nullptr);
  EXPECT_EQ(back[6].migration->migration_id, 77u);
  EXPECT_EQ(back[6].migration->delta_next_seq, 6u);
  for (size_t cut = 0; cut < packed.size(); cut += 7) {
    std::vector<ReplEntry> scratch;
    EXPECT_FALSE(protocol::UnpackEntries(packed.substr(0, cut), &scratch));
  }
}

TEST(WanCodec, SealOpenAppendEnvelope) {
  protocol::ReplAppendRequest req;
  req.group = 2;
  req.epoch = 1;
  for (uint64_t i = 1; i <= 64; ++i) {
    ReplEntry e;
    e.index = i;
    e.epoch = 1;
    e.xid = Xid{i, 2};
    e.writes.push_back(ReplWrite{RecordKey{1, 1000 + i}, 5});
    req.entries.push_back(std::move(e));
  }
  const size_t plain_count = req.entries.size();
  const auto bytes =
      protocol::SealAppendPayload(WireCodec::kBlock, &req);
  ASSERT_TRUE(req.entries.empty());
  ASSERT_FALSE(req.payload.empty());
  EXPECT_LT(bytes.wire, bytes.raw);  // structured entries must compress
  EXPECT_EQ(req.WireSize(), 64 + req.payload.size());
  ASSERT_TRUE(protocol::OpenAppendPayload(&req));
  EXPECT_EQ(req.entries.size(), plain_count);
  EXPECT_TRUE(req.payload.empty());
  // Corrupt envelope: flip a payload byte — the open must fail whole.
  protocol::ReplAppendRequest corrupt;
  corrupt.entries = req.entries;
  protocol::SealAppendPayload(WireCodec::kBlock, &corrupt);
  corrupt.payload[corrupt.payload.size() / 2] ^= 0x20;
  EXPECT_FALSE(protocol::OpenAppendPayload(&corrupt));
}

TEST(WanCodec, SealOpenChunkEnvelope) {
  protocol::ShardSnapshotChunk chunk;
  chunk.migration_id = 9;
  chunk.seq = 3;
  for (uint64_t i = 0; i < 256; ++i) {
    chunk.records.push_back(
        ReplWrite{RecordKey{1, 5000 + i}, static_cast<int64_t>(i % 7)});
  }
  const std::string packed = protocol::PackWrites(chunk.records);
  const auto bytes =
      protocol::SealChunkPayload(WireCodec::kBlock, &chunk);
  EXPECT_EQ(bytes.raw, packed.size());
  EXPECT_EQ(chunk.content_hash, ContentHash64(packed));
  ASSERT_TRUE(chunk.records.empty());
  ASSERT_TRUE(protocol::OpenChunkPayload(&chunk));
  EXPECT_EQ(chunk.records.size(), 256u);
  // Raw sealing still stamps the hash (re-seed identity) and keeps the
  // plain records for pre-negotiation receivers.
  protocol::ShardSnapshotChunk raw_chunk;
  raw_chunk.records = chunk.records;
  protocol::SealChunkPayload(WireCodec::kRaw, &raw_chunk);
  EXPECT_EQ(raw_chunk.content_hash, ContentHash64(packed));
  EXPECT_FALSE(raw_chunk.records.empty());
  EXPECT_TRUE(raw_chunk.payload.empty());
}

}  // namespace
}  // namespace geotp
