// Observability layer tests: tracer mechanics, the cross-node trace tree
// a sampled experiment produces, span continuity across a leader failover,
// the metrics registry, the runtime profiler, and the pluggable log sink.
#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.h"
#include "datasource/data_source.h"
#include "gtest/gtest.h"
#include "metrics/stats.h"
#include "middleware/middleware.h"
#include "obs/metrics_registry.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "sim/topology.h"
#include "workload/driver.h"
#include "workload/runner.h"
#include "workload/ycsb.h"

namespace geotp {
namespace {

// Each test owns the process-global tracer for its duration.
class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::GlobalTracer().Reset();
    obs::TraceConfig config;
    config.sample_rate = 1.0;
    obs::GlobalTracer().Enable(config);
  }
  void TearDown() override {
    obs::GlobalTracer().Disable();
    obs::GlobalTracer().Reset();
  }
};

TEST_F(TracerTest, BeginEndRecordsSpanTree) {
  obs::Tracer& tracer = obs::GlobalTracer();
  EXPECT_TRUE(tracer.enabled());
  EXPECT_TRUE(tracer.Sample(0.999));

  const obs::TraceContext root_ctx = tracer.NewTrace(0xdeadbeef, /*node=*/1);
  EXPECT_TRUE(root_ctx.valid());

  obs::TraceContext child_ctx;
  const obs::SpanHandle root =
      tracer.BeginSpan(root_ctx, "dm.txn", /*node=*/1, /*start=*/100,
                       &child_ctx);
  ASSERT_NE(root, obs::kInvalidSpan);
  EXPECT_EQ(child_ctx.trace_id, root_ctx.trace_id);
  EXPECT_NE(child_ctx.span_id, 0u);

  const obs::SpanHandle child =
      tracer.BeginSpan(child_ctx, "ds.branch_exec", /*node=*/2, /*start=*/150);
  ASSERT_NE(child, obs::kInvalidSpan);
  tracer.EndSpan(child, 250);
  tracer.EndSpan(root, 400);

  const std::vector<obs::SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  const obs::SpanRecord& r = spans[0];
  const obs::SpanRecord& c = spans[1];
  EXPECT_EQ(r.name, "dm.txn");
  EXPECT_EQ(r.trace_id, root_ctx.trace_id);
  EXPECT_EQ(r.span_id, child_ctx.span_id);
  EXPECT_EQ(r.Duration(), 300);
  EXPECT_EQ(c.name, "ds.branch_exec");
  EXPECT_EQ(c.trace_id, r.trace_id);
  EXPECT_EQ(c.parent_span_id, r.span_id);
  EXPECT_EQ(c.node, 2);
  EXPECT_EQ(c.Duration(), 100);
}

TEST_F(TracerTest, DisabledRecordsNothing) {
  obs::Tracer& tracer = obs::GlobalTracer();
  tracer.Disable();
  EXPECT_FALSE(tracer.Sample(0.0));
  const obs::TraceContext ctx{42, 0, 0};
  EXPECT_EQ(tracer.BeginSpan(ctx, "x", 1, 0), obs::kInvalidSpan);
  EXPECT_EQ(tracer.span_count(), 0u);
}

TEST_F(TracerTest, InvalidContextRecordsNothing) {
  obs::Tracer& tracer = obs::GlobalTracer();
  EXPECT_EQ(tracer.BeginSpan(obs::TraceContext{}, "x", 1, 0),
            obs::kInvalidSpan);
  tracer.EndSpan(obs::kInvalidSpan, 10);  // no-op, must not crash
  EXPECT_EQ(tracer.span_count(), 0u);
}

TEST_F(TracerTest, SpanCapDropsBeyondMax) {
  obs::Tracer& tracer = obs::GlobalTracer();
  obs::TraceConfig config;
  config.sample_rate = 1.0;
  config.max_spans = 4;
  tracer.Reset();
  tracer.Enable(config);
  const obs::TraceContext ctx = tracer.NewTrace(7, 1);
  for (int i = 0; i < 10; ++i) {
    const obs::SpanHandle h = tracer.BeginSpan(ctx, "s", 1, i);
    tracer.EndSpan(h, i + 1);
  }
  EXPECT_EQ(tracer.span_count(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
}

TEST_F(TracerTest, TextDumpRoundTripsAcrossProcessBoundary) {
  obs::Tracer& tracer = obs::GlobalTracer();
  obs::TraceContext child_ctx;
  const obs::SpanHandle root =
      tracer.BeginSpan(tracer.NewTrace(3, 5), "dm.txn", 5, 10, &child_ctx);
  const obs::SpanHandle open =
      tracer.BeginSpan(child_ctx, "ds.quorum", 6, 20);  // left open
  (void)open;
  tracer.EndSpan(root, 90);

  std::ostringstream dump;
  tracer.DumpText(dump);
  std::istringstream in(dump.str());
  std::vector<obs::SpanRecord> parsed;
  EXPECT_EQ(obs::ReadSpansText(in, &parsed), 2u);
  const std::vector<obs::SpanRecord> original = tracer.Snapshot();
  ASSERT_EQ(parsed.size(), original.size());
  for (size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].trace_id, original[i].trace_id);
    EXPECT_EQ(parsed[i].span_id, original[i].span_id);
    EXPECT_EQ(parsed[i].parent_span_id, original[i].parent_span_id);
    EXPECT_EQ(parsed[i].name, original[i].name);
    EXPECT_EQ(parsed[i].node, original[i].node);
    EXPECT_EQ(parsed[i].start, original[i].start);
    EXPECT_EQ(parsed[i].end, original[i].end);
  }

  // The merged Chrome export tags each process's spans with its pid.
  const std::string json = obs::ChromeTraceJson({{0, original}, {1, parsed}});
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":0"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("dm.txn"), std::string::npos);
}

TEST_F(TracerTest, SlowestReportRanksRootSpans) {
  obs::Tracer& tracer = obs::GlobalTracer();
  for (int i = 0; i < 3; ++i) {
    obs::TraceContext child_ctx;
    const obs::SpanHandle root = tracer.BeginSpan(
        tracer.NewTrace(100 + i, 1), "dm.txn", 1, 0, &child_ctx);
    const obs::SpanHandle child =
        tracer.BeginSpan(child_ctx, "dm.analysis", 1, 5);
    tracer.EndSpan(child, 10);
    tracer.EndSpan(root, (i + 1) * 1000);  // slowest is the last one
  }
  const std::string report =
      obs::SlowestTracesReport(tracer.Snapshot(), /*k=*/2);
  EXPECT_NE(report.find("dm.txn"), std::string::npos);
  EXPECT_NE(report.find("dm.analysis"), std::string::npos);
  // Only k=2 roots reported: 3000us and 2000us, never the 1000us one.
  EXPECT_NE(report.find("3000"), std::string::npos);
  EXPECT_EQ(report.find("1000 us"), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end trace trees from a sampled experiment.
// ---------------------------------------------------------------------------

using TraceIndex = std::map<uint64_t, std::vector<obs::SpanRecord>>;

TraceIndex IndexByTrace(const std::vector<obs::SpanRecord>& spans) {
  TraceIndex index;
  for (const obs::SpanRecord& span : spans) {
    if (span.trace_id == obs::kSystemTraceId) continue;
    index[span.trace_id].push_back(span);
  }
  return index;
}

/// Every span's parent must exist within its own trace (or be the trace
/// root with parent 0): the propagation chain never produces orphans.
void ExpectWellFormed(const TraceIndex& index) {
  for (const auto& [trace_id, spans] : index) {
    std::set<uint64_t> ids;
    for (const obs::SpanRecord& span : spans) ids.insert(span.span_id);
    for (const obs::SpanRecord& span : spans) {
      if (span.parent_span_id == 0) continue;
      EXPECT_TRUE(ids.count(span.parent_span_id))
          << "orphan span '" << span.name << "' in trace " << trace_id;
    }
  }
}

TEST(TraceExperimentTest, DistributedTxnSpansFormOneConnectedTree) {
  workload::ExperimentConfig config;
  config.system = workload::SystemKind::kGeoTP;
  config.ds_rtts_ms = {1.0, 5.0};  // two data sources keeps the run fast
  config.ycsb.distributed_ratio = 1.0;
  config.driver.terminals = 8;
  config.driver.warmup = MsToMicros(200);
  config.driver.measure = SecToMicros(2);
  config.trace_sample_rate = 1.0;
  const auto result = workload::RunExperiment(config);
  ASSERT_GT(result.run.committed, 20u);
  EXPECT_GT(result.trace_spans, 0u);

  const TraceIndex index = IndexByTrace(obs::GlobalTracer().Snapshot());
  EXPECT_GE(index.size(), result.run.committed);
  ExpectWellFormed(index);

  // At least one distributed transaction: DM spans plus branch execution
  // on BOTH data sources, all under one trace id.
  bool found = false;
  for (const auto& [trace_id, spans] : index) {
    std::set<NodeId> exec_nodes;
    std::set<std::string> names;
    for (const obs::SpanRecord& span : spans) {
      names.insert(span.name);
      if (span.name == "ds.branch_exec") exec_nodes.insert(span.node);
    }
    if (exec_nodes.size() >= 2 && names.count("dm.analysis") &&
        names.count("dm.prepare_wait") && names.count("dm.commit")) {
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found)
      << "no trace covered DM analysis/prepare/commit plus branch "
         "execution on two data sources";
  obs::GlobalTracer().Reset();
}

TEST(TraceExperimentTest, SamplingRateZeroRecordsNoSpans) {
  workload::ExperimentConfig config;
  config.system = workload::SystemKind::kGeoTP;
  config.ds_rtts_ms = {1.0, 5.0};
  config.driver.terminals = 4;
  config.driver.warmup = MsToMicros(100);
  config.driver.measure = SecToMicros(1);
  const auto result = workload::RunExperiment(config);
  ASSERT_GT(result.run.committed, 0u);
  EXPECT_EQ(result.trace_spans, 0u);
  EXPECT_FALSE(obs::GlobalTracer().enabled());
}

// Leader failover mid-run: spans from transactions interrupted by the
// crash stay well-formed (no orphans; open spans render as zero-duration)
// and the promotion itself is visible as a repl.promotion system span.
TEST(TraceExperimentTest, SpansStayWellFormedAcrossLeaderFailover) {
  obs::GlobalTracer().Reset();
  obs::TraceConfig trace_config;
  trace_config.sample_rate = 1.0;
  obs::GlobalTracer().Enable(trace_config);

  sim::TopologyBuilder builder;
  const NodeId client = builder.AddNode(sim::NodeRole::kClient, "c1", "r0");
  const NodeId dm = builder.AddNode(sim::NodeRole::kMiddleware, "dm1", "r0");
  std::vector<NodeId> sources;
  std::vector<std::vector<NodeId>> groups;
  const double rtts[2] = {5.0, 20.0};
  for (int i = 0; i < 2; ++i) {
    const std::string region = "region" + std::to_string(i);
    const NodeId leader =
        builder.AddNode(sim::NodeRole::kDataSource, "ds", region);
    std::vector<NodeId> group = {leader};
    for (int k = 0; k < 2; ++k) {
      group.push_back(
          builder.AddNode(sim::NodeRole::kDataSource, "dsf", region));
      builder.SetRttMs(dm, group.back(), rtts[i]);
      builder.SetRttMs(client, group.back(), rtts[i]);
    }
    builder.SetRttMs(dm, leader, rtts[i]);
    builder.SetRttMs(client, leader, rtts[i]);
    sources.push_back(leader);
    groups.push_back(std::move(group));
  }
  builder.SetRttMs(sources[0], sources[1], 20.0);
  builder.SetRttMs(client, dm, 0.5);

  sim::EventLoop loop;
  sim::Network network(&loop, builder.Build());

  middleware::MiddlewareConfig dm_config = middleware::MiddlewareConfig::GeoTP();
  middleware::Catalog catalog;
  workload::YcsbConfig ycsb;
  ycsb.data_sources = sources;
  ycsb.distributed_ratio = 0.5;
  workload::YcsbGenerator gen(ycsb);
  gen.RegisterTables(&catalog);
  for (const auto& group : groups) catalog.SetReplicaGroup(group[0], group);

  std::vector<std::unique_ptr<datasource::DataSourceNode>> nodes;
  for (const auto& group : groups) {
    for (NodeId replica : group) {
      datasource::DataSourceConfig ds_config =
          datasource::DataSourceConfig::MySql();
      ds_config.early_abort = dm_config.early_abort;
      auto node = std::make_unique<datasource::DataSourceNode>(
          replica, &network, ds_config);
      replication::GroupConfig repl;
      repl.logical = group[0];
      repl.replicas = group;
      repl.middlewares = {dm};
      node->EnableReplication(repl);
      node->Attach();
      nodes.push_back(std::move(node));
    }
  }
  middleware::MiddlewareNode node_dm(dm, 0, &network, std::move(catalog),
                                     dm_config);
  node_dm.Attach();

  workload::DriverConfig driver_config;
  driver_config.terminals = 16;
  driver_config.warmup = MsToMicros(500);
  driver_config.measure = SecToMicros(6);
  workload::ClientDriver driver(client, &network, dm, &gen, driver_config);
  driver.Attach();
  driver.Start();

  // Kill the hot group's leader one third into the window — transactions
  // with prepares in flight against it see the failover.
  loop.ScheduleAt(driver_config.warmup + driver_config.measure / 3,
                  [&nodes]() { nodes[0]->Crash(); });
  loop.RunUntil(driver_config.warmup + driver_config.measure);

  EXPECT_GE(node_dm.stats().failovers_observed, 1u);
  EXPECT_GT(driver.stats().committed, 50u);

  const std::vector<obs::SpanRecord> spans = obs::GlobalTracer().Snapshot();
  ExpectWellFormed(IndexByTrace(spans));
  bool promotion_seen = false;
  size_t quorum_spans = 0;
  for (const obs::SpanRecord& span : spans) {
    if (span.trace_id == obs::kSystemTraceId && span.name == "repl.promotion") {
      promotion_seen = true;
      EXPECT_GE(span.Duration(), 0);
    }
    if (span.name == "ds.quorum") quorum_spans++;
  }
  EXPECT_TRUE(promotion_seen) << "failover left no repl.promotion span";
  EXPECT_GT(quorum_spans, 0u);

  obs::GlobalTracer().Disable();
  obs::GlobalTracer().Reset();
}

// ---------------------------------------------------------------------------
// Metrics registry.
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, CountersGaugesHistogramsSnapshot) {
  obs::MetricsRegistry registry;
  registry.counter("dm.0.retries")->Add(3);
  registry.counter("dm.0.retries")->Add(2);
  EXPECT_EQ(registry.counter("dm.0.retries")->value(), 5u);

  double gauge_value = 1.5;
  registry.RegisterGauge("ds.2.inflight", [&]() { return gauge_value; });

  metrics::Histogram hist;
  hist.Record(100);
  hist.Record(200);
  registry.RegisterHistogram("dm.0.phase.execution", [&]() { return &hist; });

  registry.Sample(/*now=*/1000);
  gauge_value = 4.0;
  registry.Sample(/*now=*/2000);
  EXPECT_EQ(registry.sample_count(), 2u);
  EXPECT_EQ(registry.gauge_count(), 1u);

  const std::string json = registry.SnapshotJson();
  EXPECT_NE(json.find("\"dm.0.retries\""), std::string::npos);
  EXPECT_NE(json.find("\"ds.2.inflight\""), std::string::npos);
  EXPECT_NE(json.find("\"dm.0.phase.execution\""), std::string::npos);
  EXPECT_NE(json.find("\"samples\""), std::string::npos);

  registry.Clear();
  EXPECT_EQ(registry.gauge_count(), 0u);
  EXPECT_EQ(registry.sample_count(), 0u);
}

TEST(MetricsRegistryTest, ExperimentCollectsNodeMetrics) {
  workload::ExperimentConfig config;
  config.system = workload::SystemKind::kGeoTP;
  config.ds_rtts_ms = {1.0, 5.0};
  config.driver.terminals = 4;
  config.driver.warmup = MsToMicros(100);
  config.driver.measure = SecToMicros(2);
  config.collect_metrics = true;
  const auto result = workload::RunExperiment(config);
  ASSERT_GT(result.run.committed, 0u);
  // DM gauges, per-source gauges, and the phase histograms all export.
  EXPECT_NE(result.metrics_json.find("\"dm.0.committed\""), std::string::npos);
  EXPECT_NE(result.metrics_json.find("\"ds.2.commits\""), std::string::npos);
  EXPECT_NE(result.metrics_json.find("dm.0.phase."), std::string::npos);
  // Periodic sampling rode the latency-monitor ping tick.
  EXPECT_NE(result.metrics_json.find("\"samples\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Profiler.
// ---------------------------------------------------------------------------

TEST(ProfilerTest, RecordsSlotsAndReports) {
  obs::Profiler profiler;
  EXPECT_FALSE(profiler.enabled());
  profiler.Enable();
  profiler.RecordHandler(/*msg_type=*/3, /*ns=*/500);
  profiler.RecordHandler(3, 1500);
  profiler.RecordQueueWait(250);
  profiler.RecordTimerLag(7);
  EXPECT_EQ(profiler.handler_slot(3).count.load(), 2u);
  EXPECT_EQ(profiler.handler_slot(3).total.load(), 2000u);
  EXPECT_EQ(profiler.handler_slot(3).max.load(), 1500u);
  EXPECT_EQ(profiler.queue_wait().count.load(), 1u);
  EXPECT_EQ(profiler.timer_lag().max.load(), 7u);

  const std::string json = profiler.ReportJson();
  EXPECT_NE(json.find("\"handlers_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"queue_wait_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"timer_lag_us\""), std::string::npos);

  profiler.Reset();
  EXPECT_EQ(profiler.handler_slot(3).count.load(), 0u);
}

TEST(ProfilerTest, SimRunPopulatesHandlerProfile) {
  obs::GlobalProfiler().Reset();
  obs::GlobalProfiler().Enable();
  workload::ExperimentConfig config;
  config.system = workload::SystemKind::kGeoTP;
  config.ds_rtts_ms = {1.0, 5.0};
  config.driver.terminals = 4;
  config.driver.warmup = MsToMicros(100);
  config.driver.measure = SecToMicros(1);
  const auto result = workload::RunExperiment(config);
  obs::GlobalProfiler().Disable();
  ASSERT_GT(result.run.committed, 0u);
  uint64_t recorded = 0;
  for (int t = 0; t < obs::Profiler::kMaxMessageTypes; ++t) {
    recorded += obs::GlobalProfiler().handler_slot(t).count.load();
  }
  EXPECT_GT(recorded, 0u) << "no handler timings recorded by the sim backend";
  obs::GlobalProfiler().Reset();
}

// ---------------------------------------------------------------------------
// Pluggable log sink.
// ---------------------------------------------------------------------------

TEST(LoggingTest, CaptureSinkReceivesRecordsWithPrefix) {
  CaptureSink capture(/*max_lines=*/4);
  SetLogSink(&capture);
  SetLogPrefix("node7");
  const LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);

  GEOTP_INFO("hello " << 42);
  GEOTP_DEBUG("filtered below the threshold");
  for (int i = 0; i < 6; ++i) GEOTP_WARN("w" << i);

  SetLogLevel(saved);
  SetLogPrefix("");
  SetLogSink(nullptr);

  EXPECT_EQ(capture.size(), 4u);  // bounded window
  const std::string joined = capture.Joined();
  EXPECT_EQ(joined.find("filtered"), std::string::npos);
  EXPECT_NE(joined.find("w5"), std::string::npos);
  const std::vector<std::string> lines = capture.Drain();
  EXPECT_EQ(capture.size(), 0u);
  ASSERT_FALSE(lines.empty());
  // Every formatted line carries the per-process prefix.
  for (const std::string& line : lines) {
    EXPECT_NE(line.find("node7"), std::string::npos) << line;
  }
}

TEST(LoggingTest, FormatLineIncludesLevelAndLocation) {
  SetLogPrefix("");
  const std::string line =
      FormatLogLine(LogLevel::kWarn, "middleware.cc", 99, "msg body");
  EXPECT_NE(line.find("WARN"), std::string::npos);
  EXPECT_NE(line.find("middleware.cc:99"), std::string::npos);
  EXPECT_NE(line.find("msg body"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Per-phase latency percentiles (Fig. 6c satellite).
// ---------------------------------------------------------------------------

TEST(PhaseBreakdownTest, PercentilesTrackRecordedTail) {
  metrics::PhaseBreakdown breakdown;
  // 95 fast executions and 5 slow ones: p50 stays low, p99 sees the tail.
  for (int i = 0; i < 95; ++i) {
    breakdown.Record(metrics::TxnPhase::kExecution, MsToMicros(10));
  }
  for (int i = 0; i < 5; ++i) {
    breakdown.Record(metrics::TxnPhase::kExecution, MsToMicros(500));
  }
  EXPECT_NEAR(breakdown.P50Ms(metrics::TxnPhase::kExecution), 10.0, 2.0);
  EXPECT_GT(breakdown.P99Ms(metrics::TxnPhase::kExecution), 100.0);
  EXPECT_GT(breakdown.MeanMs(metrics::TxnPhase::kExecution), 10.0);
  // Unrecorded phases report zeros, not garbage.
  EXPECT_EQ(breakdown.P99Ms(metrics::TxnPhase::kAnalysis), 0.0);
}

}  // namespace
}  // namespace geotp
