// Failure-recovery tests (paper §V-A): DM crashes before/after the commit
// decision is logged, data-source crashes before/after prepare, and the
// atomic-commit properties AC1-AC5 under those schedules.
#include <gtest/gtest.h>

#include "sim_fixture.h"

namespace geotp {
namespace {

using middleware::MiddlewareConfig;
using testing_support::MiniCluster;

MiniCluster::Options GeoTpOptions() {
  MiniCluster::Options options;
  options.dm = MiddlewareConfig::GeoTP();
  return options;
}

TEST(RecoveryTest, DmCrashBeforeDecisionAbortsInDoubtBranches) {
  MiniCluster cluster(GeoTpOptions());
  // Start a distributed transaction and let execution+prepare finish, but
  // crash the DM before the client commits.
  cluster.SendRound(1, {
      MiniCluster::Write(cluster.KeyOn(0, 1), 10),
      MiniCluster::Write(cluster.KeyOn(1, 1), 20),
  }, true);
  cluster.RunFor(500);
  ASSERT_EQ(cluster.source(0).engine().PreparedXids().size(), 1u);
  ASSERT_EQ(cluster.source(1).engine().PreparedXids().size(), 1u);

  cluster.dm().Crash();
  cluster.RunFor(100);
  cluster.dm().Restart(cluster.source_ptrs());
  cluster.RunFor(1000);

  // No commit decision was logged -> both branches must be aborted and
  // their effects rolled back (AC1: same decision everywhere).
  EXPECT_EQ(cluster.source(0).engine().PreparedXids().size(), 0u);
  EXPECT_EQ(cluster.source(1).engine().PreparedXids().size(), 0u);
  EXPECT_EQ(cluster.source(0).engine().store().Get(cluster.KeyOn(0, 1))->value,
            0);
  EXPECT_EQ(cluster.source(1).engine().store().Get(cluster.KeyOn(1, 1))->value,
            0);
}

TEST(RecoveryTest, DmCrashAfterLoggedCommitCompletesTheCommit) {
  MiniCluster cluster(GeoTpOptions());
  cluster.SendRound(1, {
      MiniCluster::Write(cluster.KeyOn(0, 1), 10),
      MiniCluster::Write(cluster.KeyOn(1, 1), 20),
  }, true);
  cluster.RunFor(500);
  cluster.SendCommit(1);
  // Let the DM flush the commit log and dispatch decisions, then crash it
  // before the (slow, 100ms) second participant processes its decision...
  cluster.RunFor(60);
  ASSERT_FALSE(cluster.dm().decision_log().empty());
  // The fast participant may have committed already; the slow one not.
  cluster.dm().Crash();
  cluster.RunFor(500);
  cluster.dm().Restart(cluster.source_ptrs());
  cluster.RunFor(1000);

  // AC2: the logged decision must be carried through after recovery.
  EXPECT_EQ(cluster.source(0).engine().store().Get(cluster.KeyOn(0, 1))->value,
            10);
  EXPECT_EQ(cluster.source(1).engine().store().Get(cluster.KeyOn(1, 1))->value,
            20);
  EXPECT_EQ(cluster.source(0).engine().PreparedXids().size(), 0u);
  EXPECT_EQ(cluster.source(1).engine().PreparedXids().size(), 0u);
}

TEST(RecoveryTest, DataSourceCrashBeforePrepareAbortsTransaction) {
  MiniCluster cluster(GeoTpOptions());
  // Crash DS1 immediately so the branch never executes; the transaction
  // must eventually abort (lock-wait timeout at the DM never happens —
  // the exec request is dropped, so we abort via the other participant's
  // vote timeout... in this design the DM simply never completes; what we
  // verify is that the surviving participant is not left prepared forever
  // once the source recovers).
  cluster.source(1).Crash();
  cluster.SendRound(1, {
      MiniCluster::Write(cluster.KeyOn(0, 1), 10),
      MiniCluster::Write(cluster.KeyOn(1, 1), 20),
  }, true);
  cluster.RunFor(1000);
  // DS0 prepared and waits in-doubt; DS1 never saw the branch.
  ASSERT_EQ(cluster.source(0).engine().PreparedXids().size(), 1u);
  cluster.source(1).Restart();
  // Operator-driven recovery: the DM re-resolves in-doubt branches from
  // its log (no commit entry -> abort).
  cluster.dm().Crash();
  cluster.dm().Restart(cluster.source_ptrs());
  cluster.RunFor(1000);
  EXPECT_EQ(cluster.source(0).engine().PreparedXids().size(), 0u);
  EXPECT_EQ(cluster.source(0).engine().store().Get(cluster.KeyOn(0, 1))->value,
            0);
}

TEST(RecoveryTest, DataSourceCrashLosesActiveBranchOnRestart) {
  MiniCluster cluster(GeoTpOptions());
  cluster.SendRound(1, {MiniCluster::Write(cluster.KeyOn(1, 1), 20)}, false);
  cluster.RunFor(500);
  ASSERT_EQ(cluster.source(1).engine().ActiveCount(), 1u);
  cluster.source(1).Crash();
  // ❷: non-prepared branches abort at restart (modeled at crash time).
  EXPECT_EQ(cluster.source(1).engine().ActiveCount(), 0u);
  cluster.source(1).Restart();
  EXPECT_EQ(cluster.source(1).engine().store().Get(cluster.KeyOn(1, 1))->value,
            0);
}

TEST(RecoveryTest, PreparedBranchSurvivesDataSourceCrash) {
  MiniCluster cluster(GeoTpOptions());
  cluster.SendRound(1, {
      MiniCluster::Write(cluster.KeyOn(0, 1), 10),
      MiniCluster::Write(cluster.KeyOn(1, 1), 20),
  }, true);
  cluster.RunFor(500);
  ASSERT_EQ(cluster.source(1).engine().PreparedXids().size(), 1u);
  cluster.source(1).Crash();
  cluster.source(1).Restart();
  // In-doubt branch survives the crash and can still commit.
  ASSERT_EQ(cluster.source(1).engine().PreparedXids().size(), 1u);
  cluster.SendCommit(1);
  cluster.RunFor(2000);
  EXPECT_TRUE(cluster.txn(1).result.ok());
  EXPECT_EQ(cluster.source(1).engine().store().Get(cluster.KeyOn(1, 1))->value,
            20);
}

TEST(RecoveryTest, RecoveryIsIdempotent) {
  MiniCluster cluster(GeoTpOptions());
  ASSERT_TRUE(cluster.RunTxn(1, {
      MiniCluster::Write(cluster.KeyOn(0, 1), 10),
      MiniCluster::Write(cluster.KeyOn(1, 1), 20),
  }).ok());
  // Recovering with no in-doubt branches must change nothing.
  cluster.dm().Crash();
  cluster.dm().Restart(cluster.source_ptrs());
  cluster.RunFor(1000);
  EXPECT_EQ(cluster.source(0).engine().store().Get(cluster.KeyOn(0, 1))->value,
            10);
  EXPECT_EQ(cluster.source(1).engine().store().Get(cluster.KeyOn(1, 1))->value,
            20);
}

TEST(RecoveryTest, CrashMidBatchLosesWholeOpenBatchButNothingDurable) {
  // Open a wide group-commit window so two prepares are provably sitting
  // in the same un-flushed batch when the source crashes. GeoTP(O1)
  // dispatches immediately (no latency-aware postponing), keeping the
  // probe timing below deterministic.
  MiniCluster::Options options;
  options.dm = MiddlewareConfig::GeoTPO1();
  options.group_commit.max_batch_delay = MsToMicros(50);
  MiniCluster cluster(options);

  // A first transaction prepares and becomes durable at source 0.
  cluster.SendRound(1, {
      MiniCluster::Write(cluster.KeyOn(0, 1), 10),
      MiniCluster::Write(cluster.KeyOn(1, 1), 20),
  }, true);
  cluster.RunFor(500);
  ASSERT_EQ(cluster.source(0).engine().PreparedXids().size(), 1u);
  const uint64_t durable_fsyncs = cluster.source(0).engine().wal().fsyncs();
  ASSERT_GE(durable_fsyncs, 1u);

  // Two more transactions reach source 0 and join one open batch.
  cluster.SendRound(2, {
      MiniCluster::Write(cluster.KeyOn(0, 2), 30),
      MiniCluster::Write(cluster.KeyOn(1, 2), 40),
  }, true);
  cluster.SendRound(3, {
      MiniCluster::Write(cluster.KeyOn(0, 3), 50),
      MiniCluster::Write(cluster.KeyOn(1, 3), 60),
  }, true);
  cluster.RunFor(10);  // executed + appended, still inside the 50ms window
  ASSERT_EQ(cluster.source(0).committer().pending(), 2u);
  ASSERT_EQ(cluster.source(0).engine().PreparedXids().size(), 1u);

  // Crash mid-batch: the open batch dies; nothing from it was durable.
  cluster.source(0).Crash();
  cluster.RunFor(100);
  cluster.source(0).Restart();
  cluster.RunFor(1000);

  // Txn 1's prepare was flushed before the crash and must survive
  // in-doubt; txns 2 and 3 lost their entire open batch.
  EXPECT_EQ(cluster.source(0).engine().PreparedXids().size(), 1u);
  EXPECT_EQ(cluster.source(0).engine().wal().fsyncs(), durable_fsyncs);
  EXPECT_EQ(cluster.source(0).engine().store().Get(cluster.KeyOn(0, 2))->value,
            0);
  EXPECT_EQ(cluster.source(0).engine().store().Get(cluster.KeyOn(0, 3))->value,
            0);

  // Recovery resolves the surviving in-doubt branch (no logged commit ->
  // abort), leaving nothing prepared.
  cluster.dm().Crash();
  cluster.dm().Restart(cluster.source_ptrs());
  cluster.RunFor(1000);
  EXPECT_EQ(cluster.source(0).engine().PreparedXids().size(), 0u);
}

TEST(RecoveryTest, CommittedResultsSurviveDoubleCrash) {
  MiniCluster cluster(GeoTpOptions());
  ASSERT_TRUE(cluster.RunTxn(1, {
      MiniCluster::Write(cluster.KeyOn(0, 1), 10),
      MiniCluster::Write(cluster.KeyOn(1, 1), 20),
  }).ok());
  cluster.dm().Crash();
  cluster.source(0).Crash();
  cluster.source(0).Restart();
  cluster.dm().Restart(cluster.source_ptrs());
  cluster.RunFor(1000);
  // AC2: committed effects are never reversed.
  EXPECT_EQ(cluster.source(0).engine().store().Get(cluster.KeyOn(0, 1))->value,
            10);
}

}  // namespace
}  // namespace geotp
