// Tests for the YCSB / TPC-C generators and the closed-loop driver.
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "workload/driver.h"
#include "workload/tpcc.h"
#include "workload/ycsb.h"

namespace geotp {
namespace workload {
namespace {

YcsbConfig BaseYcsb() {
  YcsbConfig config;
  config.data_sources = {10, 11, 12, 13};
  config.records_per_node = 100000;
  return config;
}

TEST(YcsbTest, OpsPerTxnRespected) {
  YcsbGenerator gen(BaseYcsb());
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    TxnSpec spec = gen.Next(rng);
    size_t total = 0;
    for (const auto& round : spec.rounds) total += round.size();
    EXPECT_EQ(total, 5u);
    EXPECT_EQ(spec.rounds.size(), 1u);
  }
}

TEST(YcsbTest, DistributedRatioApproximatelyHolds) {
  YcsbConfig config = BaseYcsb();
  config.distributed_ratio = 0.3;
  YcsbGenerator gen(config);
  Rng rng(2);
  int distributed = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (gen.Next(rng).distributed) ++distributed;
  }
  EXPECT_NEAR(distributed / static_cast<double>(n), 0.3, 0.02);
}

TEST(YcsbTest, CentralizedTxnsStayOnOneNode) {
  YcsbConfig config = BaseYcsb();
  config.distributed_ratio = 0.0;
  YcsbGenerator gen(config);
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    TxnSpec spec = gen.Next(rng);
    std::set<uint64_t> nodes;
    for (const auto& op : spec.rounds[0]) {
      nodes.insert(op.key.key / config.records_per_node);
    }
    EXPECT_EQ(nodes.size(), 1u);
  }
}

TEST(YcsbTest, DistributedTxnsSpanRequestedNodes) {
  YcsbConfig config = BaseYcsb();
  config.distributed_ratio = 1.0;
  config.nodes_per_distributed_txn = 2;
  YcsbGenerator gen(config);
  Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    TxnSpec spec = gen.Next(rng);
    std::set<uint64_t> nodes;
    for (const auto& op : spec.rounds[0]) {
      nodes.insert(op.key.key / config.records_per_node);
    }
    EXPECT_EQ(nodes.size(), 2u);
  }
}

TEST(YcsbTest, ReadRatioApproximatelyHolds) {
  YcsbConfig config = BaseYcsb();
  config.read_ratio = 0.5;
  YcsbGenerator gen(config);
  Rng rng(5);
  int reads = 0, total = 0;
  for (int i = 0; i < 4000; ++i) {
    const TxnSpec spec = gen.Next(rng);
    for (const auto& op : spec.rounds[0]) {
      reads += op.is_write ? 0 : 1;
      ++total;
    }
  }
  EXPECT_NEAR(reads / static_cast<double>(total), 0.5, 0.02);
}

TEST(YcsbTest, SkewConcentratesOnHeadPartition) {
  YcsbConfig config = BaseYcsb();
  config.theta = 1.4;
  config.distributed_ratio = 0.0;
  YcsbGenerator gen(config);
  Rng rng(6);
  std::map<uint64_t, int> node_counts;
  for (int i = 0; i < 5000; ++i) {
    TxnSpec spec = gen.Next(rng);
    node_counts[spec.rounds[0][0].key.key / config.records_per_node]++;
  }
  // Hot head partition dominates under heavy skew.
  EXPECT_GT(node_counts[0], 5000 / 2);
}

TEST(YcsbTest, MultiRoundSplitsOps) {
  YcsbConfig config = BaseYcsb();
  config.rounds = 3;
  config.ops_per_txn = 6;
  YcsbGenerator gen(config);
  Rng rng(7);
  TxnSpec spec = gen.Next(rng);
  ASSERT_EQ(spec.rounds.size(), 3u);
  size_t total = 0;
  for (const auto& round : spec.rounds) {
    EXPECT_FALSE(round.empty());
    total += round.size();
  }
  EXPECT_EQ(total, 6u);
}

TEST(YcsbTest, NoDuplicateKeysWithinTxn) {
  YcsbConfig config = BaseYcsb();
  config.theta = 1.5;  // heavy skew maximizes collision pressure
  YcsbGenerator gen(config);
  Rng rng(8);
  int dupes = 0, total = 0;
  for (int i = 0; i < 2000; ++i) {
    TxnSpec spec = gen.Next(rng);
    std::set<uint64_t> keys;
    for (const auto& op : spec.rounds[0]) keys.insert(op.key.key);
    if (keys.size() != spec.rounds[0].size()) ++dupes;
    ++total;
  }
  // Collisions are re-drawn (best effort); nearly all txns must be clean.
  EXPECT_LT(dupes, total / 20);
}

TpccConfig BaseTpcc() {
  TpccConfig config;
  config.data_sources = {10, 11};
  return config;
}

TEST(TpccTest, MixRoughlyMatchesWeights) {
  TpccGenerator gen(BaseTpcc());
  Rng rng(9);
  std::map<int, int> counts;
  const int n = 20000;
  for (int i = 0; i < n; ++i) counts[gen.Next(rng).type_tag]++;
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.45, 0.02);  // NewOrder
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.43, 0.02);  // Payment
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.04, 0.01);
}

TEST(TpccTest, PureMixOverride) {
  TpccConfig config = BaseTpcc();
  config.mix = {0.0, 1.0, 0.0, 0.0, 0.0};  // Payment only
  TpccGenerator gen(config);
  Rng rng(10);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(gen.Next(rng).type_tag,
              static_cast<int>(TpccTxnType::kPayment));
  }
}

TEST(TpccTest, PaymentDistributedRatio) {
  TpccConfig config = BaseTpcc();
  config.mix = {0.0, 1.0, 0.0, 0.0, 0.0};
  config.distributed_ratio = 0.4;
  TpccGenerator gen(config);
  Rng rng(11);
  int distributed = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (gen.Next(rng).distributed) ++distributed;
  }
  EXPECT_NEAR(distributed / static_cast<double>(n), 0.4, 0.03);
}

TEST(TpccTest, WarehouseKeyEncodingRoutesByHighBits) {
  // Warehouse 17 lives on node 1 with 16 warehouses/node.
  middleware::Catalog catalog;
  TpccGenerator gen(BaseTpcc());
  gen.RegisterTables(&catalog);
  EXPECT_EQ(catalog.Route(RecordKey{kWarehouse,
                                    TpccGenerator::WarehouseKey(3)}),
            10);
  EXPECT_EQ(catalog.Route(RecordKey{kWarehouse,
                                    TpccGenerator::WarehouseKey(17)}),
            11);
  EXPECT_EQ(catalog.Route(RecordKey{kStock,
                                    TpccGenerator::StockKey(17, 555)}),
            11);
}

TEST(TpccTest, NewOrderShapesAreSane) {
  TpccConfig config = BaseTpcc();
  config.mix = {1.0, 0.0, 0.0, 0.0, 0.0};
  TpccGenerator gen(config);
  Rng rng(12);
  for (int i = 0; i < 200; ++i) {
    TxnSpec spec = gen.Next(rng);
    ASSERT_EQ(spec.rounds.size(), 1u);
    // warehouse read + district write + customer read + per-line item
    // read/stock write + inserts.
    EXPECT_GE(spec.rounds[0].size(), 3u + 5 * 2 + 2 + 5);
    // Exactly one district D_NEXT_O_ID write.
    int district_writes = 0;
    for (const auto& op : spec.rounds[0]) {
      if (op.key.table == kDistrict && op.is_write) ++district_writes;
    }
    EXPECT_EQ(district_writes, 1);
  }
}

TEST(TpccTest, DistributedNewOrderTouchesRemoteStock) {
  TpccConfig config = BaseTpcc();
  config.mix = {1.0, 0.0, 0.0, 0.0, 0.0};
  config.distributed_ratio = 1.0;
  TpccGenerator gen(config);
  middleware::Catalog catalog;
  gen.RegisterTables(&catalog);
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    TxnSpec spec = gen.Next(rng);
    std::set<NodeId> nodes;
    for (const auto& op : spec.rounds[0]) nodes.insert(catalog.Route(op.key));
    EXPECT_EQ(nodes.size(), 2u) << "NewOrder " << i;
  }
}

TEST(TpccTest, FreshKeysNeverRepeat) {
  TpccConfig config = BaseTpcc();
  config.mix = {1.0, 0.0, 0.0, 0.0, 0.0};
  TpccGenerator gen(config);
  Rng rng(14);
  std::set<uint64_t> order_keys;
  for (int i = 0; i < 300; ++i) {
    const TxnSpec spec = gen.Next(rng);
    for (const auto& op : spec.rounds[0]) {
      if (op.key.table == kOrders) {
        EXPECT_TRUE(order_keys.insert(op.key.key).second);
      }
    }
  }
}

}  // namespace
}  // namespace workload
}  // namespace geotp
