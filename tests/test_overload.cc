// Overload control: DM admission budget, per-tenant fair shares,
// shed replies with retry hints, bounded data-source run queues, and the
// whole layer surviving leader failovers without leaking budget.
//
// Structure mirrors the rest of the suite: AdmissionController unit
// tests first, then MiniCluster integration, then a seeded chaos
// harness (overload coinciding with replica-leader crashes), then a
// loopback-runtime case so the TSan job exercises the shed path across
// real threads and sockets.
#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "middleware/overload.h"
#include "runtime/loopback_runtime.h"
#include "sim_fixture.h"

namespace geotp {
namespace {

using middleware::AdmissionController;
using middleware::MiddlewareConfig;
using middleware::OverloadConfig;
using middleware::ShedReason;
using testing_support::MiniCluster;

// ---------------------------------------------------------------------------
// AdmissionController unit tests
// ---------------------------------------------------------------------------

TEST(AdmissionControllerTest, BudgetIsExactAndReleasable) {
  OverloadConfig config;
  config.max_inflight = 4;
  AdmissionController admission(config);

  int admitted = 0;
  int shed = 0;
  for (int i = 0; i < 10; ++i) {
    const ShedReason verdict = admission.Consider(
        /*tenant=*/0, /*dispatch_queue_depth=*/0,
        /*worst_source_occupancy=*/0.0, /*now=*/0);
    if (verdict == ShedReason::kNone) {
      admitted++;
    } else {
      EXPECT_EQ(verdict, ShedReason::kInflightBudget);
      shed++;
    }
  }
  EXPECT_EQ(admitted, 4);
  EXPECT_EQ(shed, 6);
  EXPECT_EQ(admission.InFlight(), 4u);
  EXPECT_EQ(admission.stats().admitted, 4u);
  EXPECT_EQ(admission.stats().shed_inflight, 6u);
  EXPECT_EQ(admission.stats().peak_inflight, 4u);

  // Releases restore the budget slot-for-slot.
  for (int i = 0; i < 4; ++i) admission.Release(0);
  EXPECT_EQ(admission.InFlight(), 0u);
  EXPECT_EQ(admission.Consider(0, 0, 0.0, 0), ShedReason::kNone);
}

TEST(AdmissionControllerTest, RetryHintDoublesUnderSustainedShedding) {
  OverloadConfig config;
  config.max_inflight = 1;
  AdmissionController admission(config);
  ASSERT_EQ(admission.Consider(0, 0, 0.0, 0), ShedReason::kNone);

  // Sheds 1..7: base hint. Shed 8 crosses the first doubling step.
  for (int i = 0; i < 7; ++i) {
    admission.Consider(0, 0, 0.0, 0);
    EXPECT_EQ(admission.RetryHint(), config.retry_hint_base);
  }
  admission.Consider(0, 0, 0.0, 0);
  EXPECT_EQ(admission.RetryHint(), 2 * config.retry_hint_base);
  for (int i = 0; i < 8; ++i) admission.Consider(0, 0, 0.0, 0);
  EXPECT_EQ(admission.RetryHint(), 4 * config.retry_hint_base);

  // Saturates at the cap no matter how long the overload lasts.
  for (int i = 0; i < 200; ++i) admission.Consider(0, 0, 0.0, 0);
  EXPECT_EQ(admission.RetryHint(), config.retry_hint_max);

  // One admission resets the horizon to the base.
  admission.Release(0);
  ASSERT_EQ(admission.Consider(0, 0, 0.0, 0), ShedReason::kNone);
  admission.Consider(0, 0, 0.0, 0);
  EXPECT_EQ(admission.RetryHint(), config.retry_hint_base);
}

TEST(AdmissionControllerTest, WeightedSharesAreWorkConserving) {
  OverloadConfig config;
  config.max_inflight = 12;
  config.tenant_weights = {{0, 2}, {1, 1}};
  AdmissionController admission(config);

  // Only tenant 0 is active: it may borrow the whole budget.
  ASSERT_EQ(admission.Consider(0, 0, 0.0, /*now=*/0), ShedReason::kNone);
  EXPECT_EQ(admission.TenantShare(0, /*now=*/0), 12u);

  // Tenant 1 arrives: shares split 2:1 over the active weight mass.
  ASSERT_EQ(admission.Consider(1, 0, 0.0, /*now=*/0), ShedReason::kNone);
  EXPECT_EQ(admission.TenantShare(0, 0), 8u);
  EXPECT_EQ(admission.TenantShare(1, 0), 4u);

  // Tenant 1 goes idle (releases, and its activity window expires): its
  // share is lent back to tenant 0 — work-conserving borrowing.
  admission.Release(1);
  const Micros later = config.tenant_active_window + MsToMicros(1);
  EXPECT_EQ(admission.TenantShare(0, later), 12u);
}

TEST(AdmissionControllerTest, BackpressureSignalsShedNewAdmissions) {
  OverloadConfig config;
  config.max_inflight = 8;
  config.max_dispatch_queue = 2;
  AdmissionController admission(config);

  EXPECT_EQ(admission.Consider(0, /*dispatch_queue_depth=*/2, 0.0, 0),
            ShedReason::kDispatchQueue);
  EXPECT_EQ(admission.Consider(0, 0, /*worst_source_occupancy=*/0.96, 0),
            ShedReason::kSourcePressure);
  EXPECT_EQ(admission.stats().shed_dispatch, 1u);
  EXPECT_EQ(admission.stats().shed_source, 1u);
  // Both signals gone: admit again.
  EXPECT_EQ(admission.Consider(0, 1, 0.5, 0), ShedReason::kNone);
}

// ---------------------------------------------------------------------------
// MiniCluster integration
// ---------------------------------------------------------------------------

TEST(OverloadIntegrationTest, BudgetExactUnderConcurrentArrivals) {
  MiniCluster::Options options;
  options.dm.overload.max_inflight = 4;
  MiniCluster cluster(options);

  // Ten new transactions land at the DM in the same instant (same-pair
  // delivery preserves send order, so the decision sequence is exact).
  for (uint64_t tag = 1; tag <= 10; ++tag) {
    cluster.SendRound(tag, {MiniCluster::Write(cluster.KeyOn(0, tag), 1)},
                      /*last_round=*/true);
  }
  cluster.RunFor(2);

  const auto& admission = cluster.dm().admission();
  EXPECT_EQ(admission.InFlight(), 4u);
  EXPECT_EQ(admission.stats().admitted, 4u);
  EXPECT_EQ(admission.stats().shed_inflight, 6u);

  int shed_tags = 0;
  for (uint64_t tag = 1; tag <= 10; ++tag) {
    const auto& txn = cluster.txn(tag);
    if (txn.sheds > 0) {
      shed_tags++;
      // Every shed reply carries a usable backoff hint.
      EXPECT_GE(txn.last_retry_hint, MsToMicros(5)) << "tag " << tag;
    }
  }
  EXPECT_EQ(shed_tags, 6);

  // The admitted four finish normally and return their budget.
  cluster.RunFor(3000);
  int committed = 0;
  for (uint64_t tag = 1; tag <= 10; ++tag) {
    auto& txn = cluster.txn(tag);
    if (!txn.round_responses.empty() && !txn.has_result) {
      cluster.SendCommit(tag);
    }
  }
  cluster.RunFor(3000);
  for (uint64_t tag = 1; tag <= 10; ++tag) {
    auto& txn = cluster.txn(tag);
    if (txn.has_result && txn.result.ok()) committed++;
  }
  EXPECT_EQ(committed, 4);
  EXPECT_EQ(admission.InFlight(), 0u);
  EXPECT_EQ(cluster.dm().InFlight(), admission.InFlight());
}

TEST(OverloadIntegrationTest, RetryHintsGrowWhileOverloadPersists) {
  MiniCluster::Options options;
  options.dm.overload.max_inflight = 1;
  MiniCluster cluster(options);

  // Occupy the single budget slot and never finish.
  cluster.SendRound(1, {MiniCluster::Write(cluster.KeyOn(0, 1), 1)},
                    /*last_round=*/false);
  cluster.RunFor(50);
  ASSERT_EQ(cluster.dm().admission().InFlight(), 1u);

  // 17 consecutive sheds: hints start at the base and double every 8.
  for (uint64_t tag = 2; tag <= 18; ++tag) {
    cluster.SendRound(tag, {MiniCluster::Write(cluster.KeyOn(0, tag), 1)},
                      /*last_round=*/true);
    cluster.RunFor(2);
    EXPECT_EQ(cluster.txn(tag).sheds, 1) << "tag " << tag;
  }
  EXPECT_EQ(cluster.txn(2).last_retry_hint, MsToMicros(5));
  EXPECT_EQ(cluster.txn(18).last_retry_hint, MsToMicros(20));
  EXPECT_EQ(cluster.dm().admission().stats().Sheds(), 17u);
}

TEST(OverloadIntegrationTest, InFlightRoundsAreNeverShedMidTransaction) {
  MiniCluster::Options options;
  options.dm.overload.max_inflight = 1;
  MiniCluster cluster(options);

  // Round 1 of a two-round distributed transaction is admitted.
  cluster.SendRound(1, {MiniCluster::Write(cluster.KeyOn(0, 1), 7)},
                    /*last_round=*/false);
  cluster.RunFor(3000);
  ASSERT_FALSE(cluster.txn(1).round_responses.empty());

  // The budget is now saturated: new transactions shed...
  for (uint64_t tag = 2; tag <= 4; ++tag) {
    cluster.SendRound(tag, {MiniCluster::Write(cluster.KeyOn(0, tag), 1)},
                      /*last_round=*/true);
  }
  cluster.RunFor(10);
  EXPECT_EQ(cluster.dm().admission().stats().Sheds(), 3u);

  // ...but the admitted transaction's continuation round and commit
  // always proceed (finishing is what frees the budget).
  cluster.SendRound(1, {MiniCluster::Write(cluster.KeyOn(1, 1), 7)},
                    /*last_round=*/true);
  cluster.RunFor(3000);
  cluster.SendCommit(1);
  cluster.RunFor(3000);
  EXPECT_EQ(cluster.txn(1).sheds, 0);
  ASSERT_TRUE(cluster.txn(1).has_result);
  EXPECT_TRUE(cluster.txn(1).result.ok());
  EXPECT_EQ(cluster.dm().admission().InFlight(), 0u);
}

TEST(OverloadIntegrationTest, TenantShareCapsHotTenantUnderSkew) {
  MiniCluster::Options options;
  options.dm.overload.max_inflight = 4;  // equal weights: 2 slots each
  MiniCluster cluster(options);

  // Hot tenant 0 offers ten transactions, tenant 1 offers two, all in
  // the same instant (10:1-style skew squeezed into one arrival wave).
  // Send order: two from tenant 0, one from tenant 1, eight more from
  // tenant 0, one from tenant 1.
  uint64_t tag = 1;
  auto send = [&](uint32_t tenant) {
    cluster.SendRound(tag, {MiniCluster::Write(cluster.KeyOn(0, tag), 1)},
                      /*last_round=*/true, /*coordinator=*/1, tenant);
    ++tag;
  };
  send(0);
  send(0);
  send(1);
  for (int i = 0; i < 8; ++i) send(0);
  send(1);
  cluster.RunFor(2);

  const auto& admission = cluster.dm().admission();
  // Both tenants hold exactly their weighted share; the hot tenant's
  // excess was shed by the tenant-share rule, not the global budget.
  EXPECT_EQ(admission.TenantInFlight(0), 2u);
  EXPECT_EQ(admission.TenantInFlight(1), 2u);
  EXPECT_EQ(admission.stats().admitted, 4u);
  EXPECT_EQ(admission.stats().shed_tenant, 8u);
  EXPECT_EQ(admission.stats().shed_inflight, 0u);
}

TEST(OverloadIntegrationTest, SourceRunQueueBoundRefusesOnlyNewBranches) {
  MiniCluster::Options options;
  options.ds_tweak = [](datasource::DataSourceConfig* config) {
    config->max_run_queue = 1;
  };
  MiniCluster cluster(options);

  // Three concurrent single-round transactions on the same source: the
  // first takes the only run-queue slot; the other two are refused
  // retryably at begin_branch and abort.
  for (uint64_t tag = 1; tag <= 3; ++tag) {
    cluster.SendRound(tag, {MiniCluster::Write(cluster.KeyOn(0, tag), 1)},
                      /*last_round=*/true);
  }
  cluster.RunFor(3000);
  EXPECT_EQ(cluster.source(0).stats().run_queue_rejections, 2u);

  // The in-flight branch is never evicted: it commits normally.
  ASSERT_FALSE(cluster.txn(1).round_responses.empty());
  cluster.SendCommit(1);
  cluster.RunFor(3000);
  ASSERT_TRUE(cluster.txn(1).has_result);
  EXPECT_TRUE(cluster.txn(1).result.ok());

  int aborted = 0;
  for (uint64_t tag = 2; tag <= 3; ++tag) {
    if (cluster.txn(tag).has_result && !cluster.txn(tag).result.ok()) {
      aborted++;
    }
  }
  EXPECT_EQ(aborted, 2);
  EXPECT_EQ(cluster.source(0).engine().ActiveCount(), 0u);
}

// ---------------------------------------------------------------------------
// Chaos: overload coinciding with replica-leader failovers. The admission
// budget must come back whole (no wedge), and shed/aborted transactions
// must leave no trace in committed state (no double-execute).
// ---------------------------------------------------------------------------

class OverloadChaosTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OverloadChaosTest, FailoverUnderOverloadConservesBudgetAndBalances) {
  MiniCluster::Options options;
  options.dm = MiddlewareConfig::GeoTP();
  options.dm.overload.max_inflight = 6;
  options.replication_factor = 3;
  options.ds_tweak = [](datasource::DataSourceConfig* config) {
    config->max_run_queue = 8;
  };
  MiniCluster cluster(options);
  Rng rng(GetParam());
  constexpr int kAccounts = 16;
  constexpr int kTxns = 60;

  uint64_t tag = 1;
  int leader_crashes = 0;
  for (int i = 0; i < kTxns; ++i) {
    const int node_a = static_cast<int>(rng.NextU64(2));
    const int node_b = static_cast<int>(rng.NextU64(2));
    const uint64_t off_a = rng.NextU64(kAccounts);
    uint64_t off_b = rng.NextU64(kAccounts);
    if (node_a == node_b && off_a == off_b) off_b = (off_b + 1) % kAccounts;
    const int64_t amount = static_cast<int64_t>(rng.NextU64(50)) + 1;
    cluster.SendRound(tag, {
        MiniCluster::Write(cluster.KeyOn(node_a, off_a), -amount, true),
        MiniCluster::Write(cluster.KeyOn(node_b, off_b), amount, true),
    }, true);
    ++tag;
    // Short gaps keep many transactions in flight, so arrivals race the
    // budget and a good fraction get shed.
    cluster.RunFor(rng.NextU64(25));

    if (rng.NextBool(0.08)) {
      const int group = static_cast<int>(rng.NextU64(2));
      auto* leader = cluster.leader_of(group);
      if (leader != nullptr) {
        leader->Crash();
        cluster.RunFor(300 + rng.NextU64(300));
        leader->Restart();
        ++leader_crashes;
      }
    }
  }

  // Let in-flight work settle; commit whatever produced responses.
  std::vector<bool> commit_sent(tag, false);
  for (int pass = 0; pass < 4; ++pass) {
    cluster.RunFor(8000);
    for (uint64_t t = 1; t < tag; ++t) {
      auto& txn = cluster.txn(t);
      if (!commit_sent[t] && !txn.has_result && !txn.round_responses.empty()) {
        cluster.SendCommit(t);
        commit_sent[t] = true;
      }
    }
  }
  cluster.RunFor(8000);

  // Budget bookkeeping never leaks: the admission controller's view of
  // in-flight work matches the coordinator's transaction table exactly.
  EXPECT_EQ(cluster.dm().admission().InFlight(), cluster.dm().InFlight())
      << "seed " << GetParam();
  EXPECT_GT(cluster.dm().admission().stats().admitted, 0u);

  // The system is not wedged: a fresh probe transaction is admitted and
  // commits (a leaked budget would shed it forever).
  const Status probe = cluster.RunTxn(tag, {
      MiniCluster::Write(cluster.KeyOn(0, 0), -5, true),
      MiniCluster::Write(cluster.KeyOn(1, 0), 5, true),
  });
  EXPECT_TRUE(probe.ok()) << "seed " << GetParam() << ": " << probe.message();

  // No double-execute, no in-doubt branches, no lock leaks — over the
  // current leaders' committed state.
  int64_t sum = 0;
  for (int group = 0; group < 2; ++group) {
    auto* leader = cluster.leader_of(group);
    ASSERT_NE(leader, nullptr) << "group " << group << " has no leader";
    for (uint64_t off = 0; off < kAccounts; ++off) {
      auto rec = leader->engine().store().Get(cluster.KeyOn(group, off));
      if (rec) sum += rec->value;
    }
    EXPECT_TRUE(leader->engine().PreparedXids().empty())
        << "group " << group << " leader " << leader->id();
    EXPECT_EQ(leader->engine().ActiveCount(), 0u)
        << "group " << group << " leader " << leader->id();
  }
  EXPECT_EQ(sum, 0) << "seed " << GetParam() << " (" << leader_crashes
                    << " leader crashes, "
                    << cluster.dm().admission().stats().Sheds()
                    << " sheds)";
}

INSTANTIATE_TEST_SUITE_P(Seeds, OverloadChaosTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

// ---------------------------------------------------------------------------
// Loopback runtime: the shed path across real threads and sockets (the
// TSan job runs this). Eight same-instant arrivals against a budget of
// two must produce exactly two admissions and six Overloaded replies,
// in arrival order, with no data races.
// ---------------------------------------------------------------------------

TEST(OverloadLoopbackTest, ShedsAcrossRealSockets) {
  runtime::LoopbackConfig config;
  config.data_dir = ::testing::TempDir() + "geotp-overload-loopback";
  runtime::LoopbackRuntime rt(config);

  datasource::DataSourceNode source_a(rt.EnvFor(2),
                                      datasource::DataSourceConfig::MySql());
  datasource::DataSourceNode source_b(rt.EnvFor(3),
                                      datasource::DataSourceConfig::MySql());
  source_a.Attach();
  source_b.Attach();

  middleware::Catalog catalog;
  catalog.AddRangePartitionedTable(/*table=*/1, /*keys_per_node=*/1000,
                                   {2, 3});
  middleware::MiddlewareConfig dm_config = MiddlewareConfig::GeoTP();
  dm_config.overload.max_inflight = 2;
  middleware::MiddlewareNode dm(rt.EnvFor(1), /*ordinal=*/0, catalog,
                                dm_config);
  dm.Attach();

  std::mutex mu;
  int responses = 0;
  int sheds = 0;
  Micros worst_hint = 0;
  std::atomic<int> total{0};
  rt.transport()->RegisterNode(
      0, [&](std::unique_ptr<sim::MessageBase> msg) {
        std::lock_guard<std::mutex> lock(mu);
        if (msg->type() == sim::MessageType::kClientRoundResponse) {
          responses++;
        } else if (msg->type() == sim::MessageType::kOverloadedResponse) {
          auto& shed = static_cast<protocol::OverloadedResponse&>(*msg);
          sheds++;
          worst_hint = std::max(worst_hint, shed.retry_after_hint);
        }
        total.fetch_add(1);
      });

  for (uint64_t tag = 1; tag <= 8; ++tag) {
    auto req = std::make_unique<protocol::ClientRoundRequest>();
    req->from = 0;
    req->to = 1;
    req->client_tag = tag;
    req->ops = {MiniCluster::Write(RecordKey{1, tag}, 1)};
    req->last_round = true;
    rt.transport()->Send(std::move(req));
  }

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (total.load() < 8 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  rt.Shutdown();

  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(responses, 2);
  EXPECT_EQ(sheds, 6);
  EXPECT_GE(worst_hint, MsToMicros(5));
  EXPECT_EQ(dm.admission().InFlight(), 2u);
  EXPECT_EQ(dm.admission().stats().admitted, 2u);
  EXPECT_EQ(dm.admission().stats().shed_inflight, 6u);
}

}  // namespace
}  // namespace geotp
