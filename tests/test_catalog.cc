// Tests for catalog routing.
#include "middleware/catalog.h"

#include <gtest/gtest.h>

namespace geotp {
namespace middleware {
namespace {

TEST(CatalogTest, RangePartitioning) {
  Catalog catalog;
  catalog.AddRangePartitionedTable(1, 1000, {10, 11, 12});
  EXPECT_EQ(catalog.Route(RecordKey{1, 0}), 10);
  EXPECT_EQ(catalog.Route(RecordKey{1, 999}), 10);
  EXPECT_EQ(catalog.Route(RecordKey{1, 1000}), 11);
  EXPECT_EQ(catalog.Route(RecordKey{1, 2500}), 12);
}

TEST(CatalogTest, KeysBeyondLastBoundaryStayOnLastNode) {
  Catalog catalog;
  catalog.AddRangePartitionedTable(1, 100, {10, 11});
  EXPECT_EQ(catalog.Route(RecordKey{1, 100000}), 11);
}

TEST(CatalogTest, HighBitsPartitioning) {
  Catalog catalog;
  catalog.AddHighBitsPartitionedTable(2, 48, 16, {20, 21});
  // Warehouse 0..15 -> node 20; 16..31 -> node 21.
  EXPECT_EQ(catalog.Route(RecordKey{2, (5ULL << 48) | 123}), 20);
  EXPECT_EQ(catalog.Route(RecordKey{2, (20ULL << 48) | 123}), 21);
}

TEST(CatalogTest, CustomRouting) {
  Catalog catalog;
  catalog.AddCustomTable(3, [](const RecordKey& key) {
    return key.key % 2 == 0 ? NodeId{30} : NodeId{31};
  });
  EXPECT_EQ(catalog.Route(RecordKey{3, 4}), 30);
  EXPECT_EQ(catalog.Route(RecordKey{3, 5}), 31);
}

TEST(CatalogTest, SeparateTablesRouteIndependently) {
  Catalog catalog;
  catalog.AddRangePartitionedTable(1, 100, {10});
  catalog.AddRangePartitionedTable(2, 100, {20});
  EXPECT_EQ(catalog.Route(RecordKey{1, 5}), 10);
  EXPECT_EQ(catalog.Route(RecordKey{2, 5}), 20);
}

TEST(CatalogTest, AllDataSourcesDeduplicates) {
  Catalog catalog;
  catalog.AddRangePartitionedTable(1, 100, {10, 11});
  catalog.AddRangePartitionedTable(2, 100, {11, 12});
  auto all = catalog.AllDataSources();
  EXPECT_EQ(all.size(), 3u);
}

TEST(CatalogTest, HasTable) {
  Catalog catalog;
  catalog.AddRangePartitionedTable(1, 100, {10});
  EXPECT_TRUE(catalog.HasTable(1));
  EXPECT_FALSE(catalog.HasTable(9));
}

}  // namespace
}  // namespace middleware
}  // namespace geotp
