// Integration tests for the middleware coordinator: commit/abort paths,
// atomicity (AC1-AC4 observable behaviour), decentralized prepare timing,
// early abort, scheduling postpones, and multi-round transactions.
#include "middleware/middleware.h"

#include <gtest/gtest.h>

#include "sim_fixture.h"

namespace geotp {
namespace {

using middleware::MiddlewareConfig;
using protocol::ClientOp;
using testing_support::MiniCluster;

MiniCluster::Options WithDm(MiddlewareConfig dm) {
  MiniCluster::Options options;
  options.dm = std::move(dm);
  return options;
}

TEST(MiddlewareTest, CentralizedTxnCommits) {
  MiniCluster cluster(WithDm(MiddlewareConfig::GeoTP()));
  Status st = cluster.RunTxn(
      1, {MiniCluster::Write(cluster.KeyOn(0, 5), 42)});
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(cluster.source(0).engine().store().Get(cluster.KeyOn(0, 5))->value,
            42);
  EXPECT_EQ(cluster.dm().stats().committed, 1u);
}

TEST(MiddlewareTest, DistributedTxnCommitsAtomically) {
  MiniCluster cluster(WithDm(MiddlewareConfig::GeoTP()));
  Status st = cluster.RunTxn(1, {
      MiniCluster::Write(cluster.KeyOn(0, 1), 10),
      MiniCluster::Write(cluster.KeyOn(1, 1), 20),
  });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(cluster.source(0).engine().store().Get(cluster.KeyOn(0, 1))->value,
            10);
  EXPECT_EQ(cluster.source(1).engine().store().Get(cluster.KeyOn(1, 1))->value,
            20);
}

TEST(MiddlewareTest, ReadsReturnCommittedValues) {
  MiniCluster cluster(WithDm(MiddlewareConfig::GeoTP()));
  ASSERT_TRUE(cluster.RunTxn(1, {MiniCluster::Write(cluster.KeyOn(0, 3), 7)})
                  .ok());
  cluster.SendRound(2, {MiniCluster::Read(cluster.KeyOn(0, 3))}, true);
  cluster.RunFor(3000);
  ASSERT_EQ(cluster.txn(2).round_responses.size(), 1u);
  EXPECT_EQ(cluster.txn(2).round_responses[0].values[0], 7);
  cluster.SendCommit(2);
  cluster.RunFor(3000);
  EXPECT_TRUE(cluster.txn(2).result.ok());
}

TEST(MiddlewareTest, DeltaWritesAccumulate) {
  MiniCluster cluster(WithDm(MiddlewareConfig::GeoTP()));
  ASSERT_TRUE(
      cluster.RunTxn(1, {MiniCluster::Write(cluster.KeyOn(0, 3), 10, true)})
          .ok());
  ASSERT_TRUE(
      cluster.RunTxn(2, {MiniCluster::Write(cluster.KeyOn(0, 3), 5, true)})
          .ok());
  EXPECT_EQ(cluster.source(0).engine().store().Get(cluster.KeyOn(0, 3))->value,
            15);
}

class AllSystemsTest
    : public ::testing::TestWithParam<middleware::MiddlewareConfig (*)()> {};

TEST_P(AllSystemsTest, DistributedCommitWorks) {
  MiniCluster cluster(WithDm(GetParam()()));
  Status st = cluster.RunTxn(1, {
      MiniCluster::Write(cluster.KeyOn(0, 1), 1),
      MiniCluster::Write(cluster.KeyOn(1, 1), 2),
      MiniCluster::Read(cluster.KeyOn(0, 2)),
  });
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(cluster.source(0).engine().store().Get(cluster.KeyOn(0, 1))->value,
            1);
  EXPECT_EQ(cluster.source(1).engine().store().Get(cluster.KeyOn(1, 1))->value,
            2);
}

INSTANTIATE_TEST_SUITE_P(
    Systems, AllSystemsTest,
    ::testing::Values(&MiddlewareConfig::SSP, &MiddlewareConfig::SSPLocal,
                      &MiddlewareConfig::Quro, &MiddlewareConfig::Chiller,
                      &MiddlewareConfig::GeoTPO1,
                      &MiddlewareConfig::GeoTPO1O2, &MiddlewareConfig::GeoTP));

TEST(MiddlewareTest, DecentralizedPrepareSavesAWanRoundTrip) {
  // Commit latency of a distributed transaction: GeoTP needs ~2 WAN round
  // trips (execution+prepare, commit); SSP needs ~3. With a 100ms max-RTT
  // data source, the difference is ~100ms.
  auto run = [](MiddlewareConfig dm) {
    MiniCluster cluster(WithDm(std::move(dm)));
    cluster.SendRound(1, {
        MiniCluster::Write(cluster.KeyOn(0, 1), 1),
        MiniCluster::Write(cluster.KeyOn(1, 1), 2),
    }, true);
    cluster.RunFor(3000);
    cluster.SendCommit(1);
    cluster.RunFor(3000);
    EXPECT_TRUE(cluster.txn(1).result.ok());
    return cluster.txn(1).result_at;
  };
  const Micros geotp = run(MiddlewareConfig::GeoTPO1());
  const Micros ssp = run(MiddlewareConfig::SSP());
  EXPECT_LT(geotp + MsToMicros(80), ssp)
      << "GeoTP=" << MicrosToMs(geotp) << "ms SSP=" << MicrosToMs(ssp) << "ms";
}

TEST(MiddlewareTest, VotesArriveBeforeCommitRequest) {
  // With decentralized prepare the votes are already at the DM when the
  // client's COMMIT arrives; the commit phase costs one WAN round trip.
  MiniCluster cluster(WithDm(MiddlewareConfig::GeoTPO1()));
  cluster.SendRound(1, {
      MiniCluster::Write(cluster.KeyOn(0, 1), 1),
      MiniCluster::Write(cluster.KeyOn(1, 1), 2),
  }, true);
  cluster.RunFor(3000);
  const Micros round_done = cluster.loop().Now();
  cluster.SendCommit(1);
  cluster.RunFor(3000);
  const Micros total = cluster.txn(1).result_at - round_done;
  // Commit phase ~ 1 RTT to the slowest source (100ms) + fsyncs + LAN.
  EXPECT_LT(total, MsToMicros(115));
  EXPECT_GT(total, MsToMicros(95));
}

TEST(MiddlewareTest, LockConflictOnSharedRecordSerializes) {
  MiniCluster cluster(WithDm(MiddlewareConfig::GeoTP()));
  const RecordKey hot = cluster.KeyOn(0, 1);
  // T1 writes hot; T2 writes hot concurrently; both must commit, final
  // value = last committer's, and no deadlock/timeout.
  cluster.SendRound(1, {MiniCluster::Write(hot, 5, true)}, true);
  cluster.SendRound(2, {MiniCluster::Write(hot, 7, true)}, true);
  cluster.RunFor(3000);
  cluster.SendCommit(1);
  cluster.SendCommit(2);
  cluster.RunFor(3000);
  EXPECT_TRUE(cluster.txn(1).result.ok());
  EXPECT_TRUE(cluster.txn(2).result.ok());
  EXPECT_EQ(cluster.source(0).engine().store().Get(hot)->value, 12);
}

TEST(MiddlewareTest, AbortRollsBackAllParticipants) {
  // Force an abort by deadlocking two distributed transactions; whatever
  // aborts must leave no partial writes anywhere (AC atomicity).
  MiniCluster cluster(WithDm(MiddlewareConfig::GeoTP()));
  const RecordKey a = cluster.KeyOn(0, 1);
  const RecordKey b = cluster.KeyOn(1, 1);
  // Seed both keys with known values.
  ASSERT_TRUE(cluster.RunTxn(90, {MiniCluster::Write(a, 111)}).ok());
  ASSERT_TRUE(cluster.RunTxn(91, {MiniCluster::Write(b, 222)}).ok());

  // T1: write a then b (two rounds); T2: write b then a. One becomes a
  // deadlock victim at the data sources.
  cluster.SendRound(1, {MiniCluster::Write(a, 1)}, false);
  cluster.SendRound(2, {MiniCluster::Write(b, 2)}, false);
  cluster.RunFor(3000);
  cluster.SendRound(1, {MiniCluster::Write(b, 1)}, true);
  cluster.SendRound(2, {MiniCluster::Write(a, 2)}, true);
  cluster.RunFor(3000);
  if (!cluster.txn(1).has_result) cluster.SendCommit(1);
  if (!cluster.txn(2).has_result) cluster.SendCommit(2);
  cluster.RunFor(3000);

  const bool t1_ok = cluster.txn(1).result.ok();
  const bool t2_ok = cluster.txn(2).result.ok();
  EXPECT_NE(t1_ok, t2_ok) << "exactly one should survive the deadlock";
  const int64_t va =
      cluster.source(0).engine().store().Get(a)->value;
  const int64_t vb =
      cluster.source(1).engine().store().Get(b)->value;
  if (t1_ok) {
    EXPECT_EQ(va, 1);
    EXPECT_EQ(vb, 1);
  } else {
    EXPECT_EQ(va, 2);
    EXPECT_EQ(vb, 2);
  }
  // No locks may remain.
  EXPECT_EQ(cluster.source(0).engine().ActiveCount(), 0u);
  EXPECT_EQ(cluster.source(1).engine().ActiveCount(), 0u);
}

TEST(MiddlewareTest, EarlyAbortNotifiesPeersDirectly) {
  MiddlewareConfig dm = MiddlewareConfig::GeoTP();
  MiniCluster cluster(WithDm(dm));
  const RecordKey a = cluster.KeyOn(0, 1);
  const RecordKey b = cluster.KeyOn(1, 1);
  cluster.SendRound(1, {MiniCluster::Write(a, 1)}, false);
  cluster.SendRound(2, {MiniCluster::Write(b, 2)}, false);
  cluster.RunFor(3000);
  cluster.SendRound(1, {MiniCluster::Write(b, 1)}, true);
  cluster.SendRound(2, {MiniCluster::Write(a, 2)}, true);
  cluster.RunFor(3000);
  if (!cluster.txn(1).has_result) cluster.SendCommit(1);
  if (!cluster.txn(2).has_result) cluster.SendCommit(2);
  cluster.RunFor(3000);
  // The deadlock victim's failing source notified its peer directly.
  const uint64_t sent = cluster.source(0).stats().early_aborts_sent +
                        cluster.source(1).stats().early_aborts_sent;
  EXPECT_GE(sent, 1u);
}

TEST(MiddlewareTest, LatencyAwareSchedulingPostponesFastSubtxn) {
  // With O2, the 10ms source's batch is dispatched ~90ms after the 100ms
  // source's batch — observable via the sources' batch execution times.
  MiniCluster cluster(WithDm(MiddlewareConfig::GeoTPO1O2()));
  // Let the latency monitor learn the RTTs first.
  cluster.loop().RunUntil(SecToMicros(1));
  const Micros start = cluster.loop().Now();
  cluster.SendRound(1, {
      MiniCluster::Write(cluster.KeyOn(0, 1), 1),   // 10ms source
      MiniCluster::Write(cluster.KeyOn(1, 1), 2),   // 100ms source
  }, true);
  // Step in small increments so we can timestamp the round response.
  while (cluster.txn(1).round_responses.empty()) cluster.RunFor(1);
  const Micros round_latency = cluster.loop().Now() - start;
  // Eq. 2 constraint: postponing must not extend the execution phase
  // beyond the slowest participant's round trip (~100ms + costs).
  EXPECT_LT(round_latency, MsToMicros(115));
  cluster.SendCommit(1);
  const Micros commit_sent = cluster.loop().Now();
  while (!cluster.txn(1).has_result) cluster.RunFor(1);
  ASSERT_TRUE(cluster.txn(1).result.ok());
  // Commit phase: one WAN round trip to the slowest participant.
  EXPECT_LT(cluster.txn(1).result_at - commit_sent, MsToMicros(115));
}

TEST(MiddlewareTest, MultiRoundTransactionCommits) {
  MiniCluster cluster(WithDm(MiddlewareConfig::GeoTP()));
  cluster.SendRound(1, {MiniCluster::Write(cluster.KeyOn(0, 1), 1)}, false);
  cluster.RunFor(3000);
  ASSERT_EQ(cluster.txn(1).round_responses.size(), 1u);
  cluster.SendRound(1, {MiniCluster::Write(cluster.KeyOn(1, 1), 2)}, true);
  cluster.RunFor(3000);
  ASSERT_EQ(cluster.txn(1).round_responses.size(), 2u);
  cluster.SendCommit(1);
  cluster.RunFor(3000);
  EXPECT_TRUE(cluster.txn(1).result.ok());
  EXPECT_EQ(cluster.source(0).engine().store().Get(cluster.KeyOn(0, 1))->value,
            1);
  EXPECT_EQ(cluster.source(1).engine().store().Get(cluster.KeyOn(1, 1))->value,
            2);
}

TEST(MiddlewareTest, EarlierRoundOnlyParticipantGetsExplicitPrepare) {
  // DS0 participates only in round 1; DS1 carries the last statement.
  // §III: DS0 must be told to prepare explicitly.
  MiniCluster cluster(WithDm(MiddlewareConfig::GeoTPO1()));
  cluster.SendRound(1, {MiniCluster::Write(cluster.KeyOn(0, 1), 1)}, false);
  cluster.RunFor(3000);
  cluster.SendRound(1, {MiniCluster::Write(cluster.KeyOn(1, 1), 2)}, true);
  cluster.RunFor(3000);
  cluster.SendCommit(1);
  cluster.RunFor(3000);
  EXPECT_TRUE(cluster.txn(1).result.ok());
  EXPECT_EQ(cluster.source(0).stats().explicit_prepares, 1u);
  EXPECT_EQ(cluster.source(1).agent().stats().prepares_initiated, 1u);
}

TEST(MiddlewareTest, BreakdownRecordsAllPhases) {
  MiniCluster cluster(WithDm(MiddlewareConfig::GeoTP()));
  ASSERT_TRUE(cluster.RunTxn(1, {
      MiniCluster::Write(cluster.KeyOn(0, 1), 1),
      MiniCluster::Write(cluster.KeyOn(1, 1), 2),
  }).ok());
  const auto& breakdown = cluster.dm().stats().breakdown;
  EXPECT_GT(breakdown.total(metrics::TxnPhase::kAnalysis), 0);
  EXPECT_GT(breakdown.total(metrics::TxnPhase::kExecution), 0);
  EXPECT_GT(breakdown.total(metrics::TxnPhase::kCommit), 0);
}

TEST(MiddlewareTest, SspLocalCommitsWithoutPrepare) {
  MiniCluster cluster(WithDm(MiddlewareConfig::SSPLocal()));
  ASSERT_TRUE(cluster.RunTxn(1, {
      MiniCluster::Write(cluster.KeyOn(0, 1), 1),
      MiniCluster::Write(cluster.KeyOn(1, 1), 2),
  }).ok());
  EXPECT_EQ(cluster.source(0).stats().explicit_prepares, 0u);
  EXPECT_EQ(cluster.source(0).agent().stats().prepares_initiated, 0u);
  EXPECT_EQ(cluster.dm().stats().prepare_requests_sent, 0u);
}

TEST(MiddlewareTest, TwoPcSingleParticipantUsesOnePhase) {
  MiniCluster cluster(WithDm(MiddlewareConfig::SSP()));
  ASSERT_TRUE(
      cluster.RunTxn(1, {MiniCluster::Write(cluster.KeyOn(0, 1), 1)}).ok());
  // No prepare request for a centralized transaction.
  EXPECT_EQ(cluster.dm().stats().prepare_requests_sent, 0u);
}

TEST(MiddlewareTest, InFlightCountReturnsToZero) {
  MiniCluster cluster(WithDm(MiddlewareConfig::GeoTP()));
  ASSERT_TRUE(cluster.RunTxn(1, {MiniCluster::Write(cluster.KeyOn(0, 1), 1)})
                  .ok());
  EXPECT_EQ(cluster.dm().InFlight(), 0u);
}

}  // namespace
}  // namespace geotp
