// Tests for the latency histogram and experiment statistics.
#include "metrics/histogram.h"

#include <gtest/gtest.h>

#include "metrics/stats.h"

namespace geotp {
namespace metrics {
namespace {

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Percentile(99.0), 0);
  EXPECT_TRUE(h.Cdf().empty());
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(500);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 500);
  EXPECT_EQ(h.max(), 500);
  EXPECT_EQ(h.Mean(), 500.0);
  EXPECT_EQ(h.P50(), 500);
  EXPECT_EQ(h.P99(), 500);
}

TEST(HistogramTest, ExactInLinearRange) {
  Histogram h;
  for (Micros v = 0; v < 1000; ++v) h.Record(v);
  // The p-th percentile is the ceil(p*n/100)-th smallest sample.
  EXPECT_EQ(h.P50(), 499);
  EXPECT_EQ(h.Percentile(10.0), 99);
  EXPECT_EQ(h.Percentile(100.0), 999);
}

TEST(HistogramTest, GeometricRangeWithinOnePercent) {
  Histogram h;
  const Micros value = 5'000'000;  // 5 s
  for (int i = 0; i < 100; ++i) h.Record(value);
  const Micros p50 = h.P50();
  EXPECT_NEAR(static_cast<double>(p50), static_cast<double>(value),
              static_cast<double>(value) * 0.02);
}

TEST(HistogramTest, NegativeClampsToZero) {
  Histogram h;
  h.Record(-10);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.count(), 1u);
}

TEST(HistogramTest, PercentileMonotonicity) {
  Histogram h;
  for (int i = 0; i < 10000; ++i) h.Record((i * 7919) % 2'000'000);
  Micros prev = 0;
  for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9}) {
    Micros v = h.Percentile(p);
    EXPECT_GE(v, prev) << "p" << p;
    prev = v;
  }
}

TEST(HistogramTest, MergeCombinesCounts) {
  Histogram a, b;
  a.Record(100);
  a.Record(200);
  b.Record(300);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.max(), 300);
  EXPECT_NEAR(a.Mean(), 200.0, 1e-9);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(100);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0);
}

TEST(HistogramTest, CdfIsMonotoneAndEndsAtOne) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Record(i * 997);
  auto cdf = h.Cdf();
  ASSERT_FALSE(cdf.empty());
  double prev = 0.0;
  Micros prev_lat = -1;
  for (const auto& [lat, frac] : cdf) {
    EXPECT_GT(lat, prev_lat);
    EXPECT_GE(frac, prev);
    prev = frac;
    prev_lat = lat;
  }
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(PhaseBreakdownTest, RecordsAndAverages) {
  PhaseBreakdown b;
  b.Record(TxnPhase::kExecution, 1000);
  b.Record(TxnPhase::kExecution, 3000);
  b.Record(TxnPhase::kCommit, 500);
  EXPECT_EQ(b.count(TxnPhase::kExecution), 2u);
  EXPECT_DOUBLE_EQ(b.MeanMs(TxnPhase::kExecution), 2.0);
  EXPECT_DOUBLE_EQ(b.MeanMs(TxnPhase::kCommit), 0.5);
  EXPECT_DOUBLE_EQ(b.MeanMs(TxnPhase::kAnalysis), 0.0);
}

TEST(PhaseBreakdownTest, Merge) {
  PhaseBreakdown a, b;
  a.Record(TxnPhase::kPrepare, 100);
  b.Record(TxnPhase::kPrepare, 300);
  a.Merge(b);
  EXPECT_EQ(a.count(TxnPhase::kPrepare), 2u);
  EXPECT_EQ(a.total(TxnPhase::kPrepare), 400);
}

TEST(RunStatsTest, ThroughputAndAbortRate) {
  RunStats stats;
  stats.committed = 200;
  stats.abort_events = 50;
  stats.measured_duration = SecToMicros(10);
  EXPECT_DOUBLE_EQ(stats.ThroughputTps(), 20.0);
  EXPECT_DOUBLE_EQ(stats.AbortRate(), 0.2);
}

TEST(RunStatsTest, EmptyIsSafe) {
  RunStats stats;
  EXPECT_EQ(stats.ThroughputTps(), 0.0);
  EXPECT_EQ(stats.AbortRate(), 0.0);
}

TEST(ThroughputSeriesTest, BucketsBySecond) {
  ThroughputSeries series(SecToMicros(1));
  series.OnCommit(MsToMicros(100));   // second 0
  series.OnCommit(MsToMicros(900));   // second 0
  series.OnCommit(SecToMicros(2.5));  // second 2
  auto points = series.Points();
  ASSERT_EQ(points.size(), 3u);
  EXPECT_DOUBLE_EQ(points[0].second, 2.0);
  EXPECT_DOUBLE_EQ(points[1].second, 0.0);
  EXPECT_DOUBLE_EQ(points[2].second, 1.0);
}

}  // namespace
}  // namespace metrics
}  // namespace geotp
