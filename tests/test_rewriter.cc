// Tests for the dialect rewriter: XA command generation per engine and the
// FOR SHARE read rewrite (paper §VII-A3).
#include "sql/rewriter.h"

#include <gtest/gtest.h>

#include "sql/parser.h"

namespace geotp {
namespace sql {
namespace {

Xid MakeXid() { return Xid{17, 3}; }

TEST(RewriterTest, MySqlBranchBeginUsesXaStart) {
  auto stmts = Rewriter::BranchBegin(Dialect::kMySql, MakeXid());
  ASSERT_EQ(stmts.size(), 1u);
  EXPECT_EQ(stmts[0], "XA START '17,node3';");
}

TEST(RewriterTest, PostgresBranchBeginUsesBegin) {
  auto stmts = Rewriter::BranchBegin(Dialect::kPostgres, MakeXid());
  ASSERT_EQ(stmts.size(), 1u);
  EXPECT_EQ(stmts[0], "BEGIN;");
}

TEST(RewriterTest, MySqlPrepareIsEndPlusPrepare) {
  auto stmts = Rewriter::BranchPrepare(Dialect::kMySql, MakeXid());
  ASSERT_EQ(stmts.size(), 2u);
  EXPECT_EQ(stmts[0], "XA END '17,node3';");
  EXPECT_EQ(stmts[1], "XA PREPARE '17,node3';");
}

TEST(RewriterTest, PostgresPrepareIsPrepareTransaction) {
  auto stmts = Rewriter::BranchPrepare(Dialect::kPostgres, MakeXid());
  ASSERT_EQ(stmts.size(), 1u);
  EXPECT_EQ(stmts[0], "PREPARE TRANSACTION '17,node3';");
}

TEST(RewriterTest, CommitStatements) {
  EXPECT_EQ(Rewriter::BranchCommit(Dialect::kMySql, MakeXid()),
            "XA COMMIT '17,node3';");
  EXPECT_EQ(Rewriter::BranchCommit(Dialect::kPostgres, MakeXid()),
            "COMMIT PREPARED '17,node3';");
}

TEST(RewriterTest, OnePhaseCommit) {
  EXPECT_EQ(Rewriter::BranchCommitOnePhase(Dialect::kMySql, MakeXid()),
            "XA COMMIT '17,node3' ONE PHASE;");
  EXPECT_EQ(Rewriter::BranchCommitOnePhase(Dialect::kPostgres, MakeXid()),
            "COMMIT;");
}

TEST(RewriterTest, RollbackStatements) {
  EXPECT_EQ(Rewriter::BranchRollback(Dialect::kMySql, MakeXid(), false),
            "XA ROLLBACK '17,node3';");
  EXPECT_EQ(Rewriter::BranchRollback(Dialect::kPostgres, MakeXid(), false),
            "ROLLBACK;");
  EXPECT_EQ(Rewriter::BranchRollback(Dialect::kPostgres, MakeXid(), true),
            "ROLLBACK PREPARED '17,node3';");
}

TEST(RewriterTest, PostgresReadsGetForShare) {
  Parser parser;
  auto stmt = parser.Parse("SELECT val FROM savings WHERE key = 5");
  ASSERT_TRUE(stmt.ok());
  const std::string pg = Rewriter::RewriteDml(Dialect::kPostgres, *stmt);
  EXPECT_NE(pg.find("FOR SHARE"), std::string::npos) << pg;
  const std::string my = Rewriter::RewriteDml(Dialect::kMySql, *stmt);
  EXPECT_NE(my.find("LOCK IN SHARE MODE"), std::string::npos) << my;
}

TEST(RewriterTest, UpdateRewriteKeepsDelta) {
  Parser parser;
  auto stmt =
      parser.Parse("UPDATE savings SET val = val + -100 WHERE key = 5");
  ASSERT_TRUE(stmt.ok());
  const std::string sql = Rewriter::RewriteDml(Dialect::kMySql, *stmt);
  EXPECT_EQ(sql, "UPDATE SAVINGS SET val = val + -100 WHERE key = 5;");
}

TEST(RewriterTest, UpdateRewriteLiteral) {
  Parser parser;
  auto stmt = parser.Parse("UPDATE t SET val = 9 WHERE key = 5");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(Rewriter::RewriteDml(Dialect::kPostgres, *stmt),
            "UPDATE T SET val = 9 WHERE key = 5;");
}

TEST(RewriterTest, DialectNames) {
  EXPECT_STREQ(DialectName(Dialect::kMySql), "mysql");
  EXPECT_STREQ(DialectName(Dialect::kPostgres), "postgresql");
}

}  // namespace
}  // namespace sql
}  // namespace geotp
