// Tests for link specs, the latency matrix and topology building.
#include "sim/latency.h"

#include <gtest/gtest.h>

#include "sim/topology.h"

namespace geotp {
namespace sim {
namespace {

TEST(LinkSpecTest, FromRttMsSplitsInHalf) {
  LinkSpec spec = LinkSpec::FromRttMs(100.0);
  EXPECT_EQ(spec.one_way_mean, MsToMicros(50.0));
  EXPECT_EQ(spec.jitter, JitterModel::kNone);
}

TEST(LinkSpecTest, JitterSpecHasGaussianModel) {
  LinkSpec spec = LinkSpec::FromRttMsJitter(100.0, 0.2);
  EXPECT_EQ(spec.jitter, JitterModel::kGaussian);
  EXPECT_EQ(spec.jitter_stddev, MsToMicros(10.0));
  EXPECT_GT(spec.min_one_way, 0);
}

TEST(LatencyMatrixTest, SelfLinkDefaultsToZero) {
  LatencyMatrix matrix(3);
  Rng rng(1);
  EXPECT_EQ(matrix.SampleOneWay(1, 1, rng), 0);
}

TEST(LatencyMatrixTest, SymmetricSetAffectsBothDirections) {
  LatencyMatrix matrix(3);
  matrix.SetSymmetric(0, 2, LinkSpec::FromRttMs(80.0));
  EXPECT_EQ(matrix.Get(0, 2).one_way_mean, MsToMicros(40.0));
  EXPECT_EQ(matrix.Get(2, 0).one_way_mean, MsToMicros(40.0));
  EXPECT_EQ(matrix.MeanRtt(0, 2), MsToMicros(80.0));
}

TEST(LatencyMatrixTest, DirectedSetIsAsymmetric) {
  LatencyMatrix matrix(2);
  matrix.SetDirected(0, 1, LinkSpec::FromRttMs(10.0));
  matrix.SetDirected(1, 0, LinkSpec::FromRttMs(30.0));
  EXPECT_EQ(matrix.MeanRtt(0, 1), MsToMicros(20.0));
}

TEST(LatencyMatrixTest, GaussianJitterRespectsFloor) {
  LatencyMatrix matrix(2);
  LinkSpec spec;
  spec.one_way_mean = 1000;
  spec.jitter_stddev = 2000;  // wild jitter to force clamping
  spec.jitter = JitterModel::kGaussian;
  spec.min_one_way = 500;
  matrix.SetSymmetric(0, 1, spec);
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_GE(matrix.SampleOneWay(0, 1, rng), 500);
  }
}

TEST(LatencyMatrixTest, GaussianJitterCentersOnMean) {
  LatencyMatrix matrix(2);
  matrix.SetSymmetric(0, 1, LinkSpec::FromRttMsJitter(100.0, 0.1));
  Rng rng(7);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(matrix.SampleOneWay(0, 1, rng));
  }
  EXPECT_NEAR(sum / n, static_cast<double>(MsToMicros(50.0)), 500.0);
}

TEST(LatencyMatrixTest, UniformJitterStaysInBand) {
  LatencyMatrix matrix(2);
  LinkSpec spec;
  spec.one_way_mean = 1000;
  spec.jitter_stddev = 200;
  spec.jitter = JitterModel::kUniform;
  matrix.SetSymmetric(0, 1, spec);
  Rng rng(9);
  for (int i = 0; i < 5000; ++i) {
    Micros s = matrix.SampleOneWay(0, 1, rng);
    EXPECT_GE(s, 800);
    EXPECT_LE(s, 1200);
  }
}

TEST(TopologyTest, DefaultTopologyMatchesPaper) {
  DefaultTopology topo = DefaultTopology::Make();
  ASSERT_EQ(topo.data_sources.size(), 4u);
  EXPECT_EQ(topo.nodes.size(), 6u);
  // DS1 co-located with the DM (LAN); DS2..4 at 27/73/251 ms RTT.
  EXPECT_LT(topo.matrix.MeanRtt(topo.middleware, topo.data_sources[0]),
            MsToMicros(2.0));
  EXPECT_EQ(topo.matrix.MeanRtt(topo.middleware, topo.data_sources[1]),
            MsToMicros(27.0));
  EXPECT_EQ(topo.matrix.MeanRtt(topo.middleware, topo.data_sources[2]),
            MsToMicros(73.0));
  EXPECT_EQ(topo.matrix.MeanRtt(topo.middleware, topo.data_sources[3]),
            MsToMicros(251.0));
}

TEST(TopologyTest, ClientIsColocatedWithMiddleware) {
  DefaultTopology topo = DefaultTopology::Make();
  EXPECT_LT(topo.matrix.MeanRtt(topo.client, topo.middleware),
            MsToMicros(2.0));
}

TEST(TopologyTest, InterDataSourceLinksUseMaxRule) {
  DefaultTopology topo = DefaultTopology::Make();
  // Shanghai (27) <-> London (251): the geo-agent early-abort path.
  EXPECT_EQ(topo.matrix.MeanRtt(topo.data_sources[1], topo.data_sources[3]),
            MsToMicros(251.0));
}

TEST(TopologyTest, CustomRtts) {
  DefaultTopology topo = DefaultTopology::Make({10.0, 20.0, 30.0});
  ASSERT_EQ(topo.data_sources.size(), 3u);
  EXPECT_EQ(topo.matrix.MeanRtt(topo.middleware, topo.data_sources[1]),
            MsToMicros(20.0));
}

TEST(TopologyBuilderTest, SameRegionGetsLanLatency) {
  TopologyBuilder builder;
  NodeId a = builder.AddNode(NodeRole::kMiddleware, "dm", "tokyo");
  NodeId b = builder.AddNode(NodeRole::kDataSource, "ds", "tokyo");
  NodeId c = builder.AddNode(NodeRole::kDataSource, "ds2", "paris");
  LatencyMatrix matrix = builder.Build(/*lan_rtt_ms=*/1.0,
                                       /*default_wan_rtt_ms=*/120.0);
  EXPECT_EQ(matrix.MeanRtt(a, b), MsToMicros(1.0));
  EXPECT_EQ(matrix.MeanRtt(a, c), MsToMicros(120.0));
}

}  // namespace
}  // namespace sim
}  // namespace geotp
