// Tests for the hotspot footprint: AVL + LRU structure, Eq. 4 w_lat
// updates, Eq. 5 forecasts and Eq. 9 abort probability, plus randomized
// structural property tests.
#include "core/hotspot_footprint.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"

namespace geotp {
namespace core {
namespace {

RecordKey K(uint64_t k) { return RecordKey{1, k}; }
std::vector<RecordKey> Keys(std::initializer_list<uint64_t> ks) {
  std::vector<RecordKey> out;
  for (uint64_t k : ks) out.push_back(K(k));
  return out;
}

TEST(FootprintTest, DispatchTracksActiveCount) {
  HotspotFootprint fp;
  fp.OnDispatch(Keys({1, 2}));
  EXPECT_EQ(fp.Lookup(K(1))->a_cnt, 1);
  fp.OnDispatch(Keys({1}));
  EXPECT_EQ(fp.Lookup(K(1))->a_cnt, 2);
  fp.OnComplete(Keys({1}), 1000, true);
  EXPECT_EQ(fp.Lookup(K(1))->a_cnt, 1);
}

TEST(FootprintTest, CompleteUpdatesCounters) {
  HotspotFootprint fp;
  fp.OnDispatch(Keys({1}));
  fp.OnComplete(Keys({1}), 1000, true);
  const RecordStats* stats = fp.Lookup(K(1));
  EXPECT_EQ(stats->t_cnt, 1u);
  EXPECT_EQ(stats->c_cnt, 1u);
  fp.OnDispatch(Keys({1}));
  fp.OnComplete(Keys({1}), 1000, false);
  EXPECT_EQ(stats->t_cnt, 2u);
  EXPECT_EQ(stats->c_cnt, 1u);
  EXPECT_DOUBLE_EQ(stats->SuccessRatio(), 0.5);
}

TEST(FootprintTest, WLatConvergesTowardMeasurement) {
  FootprintConfig config;
  config.alpha = 0.5;
  HotspotFootprint fp(config);
  // Single-key subtransactions: the weight w_r is 1, so w_lat converges
  // toward the measured LEL.
  for (int i = 0; i < 40; ++i) {
    fp.OnDispatch(Keys({1}));
    fp.OnComplete(Keys({1}), 10000, true);
  }
  EXPECT_NEAR(fp.Lookup(K(1))->w_lat, 10000.0, 500.0);
}

TEST(FootprintTest, AbortedCompletionsDoNotMoveWLat) {
  HotspotFootprint fp;
  fp.OnDispatch(Keys({1}));
  fp.OnComplete(Keys({1}), 500, true);
  const double w = fp.Lookup(K(1))->w_lat;
  fp.OnDispatch(Keys({1}));
  fp.OnComplete(Keys({1}), 999999, false);
  EXPECT_DOUBLE_EQ(fp.Lookup(K(1))->w_lat, w);
}

TEST(FootprintTest, ForecastSumsTrackedKeys) {
  HotspotFootprint fp;
  for (int i = 0; i < 30; ++i) {
    fp.OnDispatch(Keys({1}));
    fp.OnComplete(Keys({1}), 4000, true);
    fp.OnDispatch(Keys({2}));
    fp.OnComplete(Keys({2}), 2000, true);
  }
  const Micros forecast = fp.ForecastLel(Keys({1, 2}));
  EXPECT_NEAR(static_cast<double>(forecast), 6000.0, 600.0);
  // Untracked keys contribute nothing.
  EXPECT_EQ(fp.ForecastLel(Keys({99})), 0);
}

TEST(FootprintTest, AbortProbabilityMatchesEquation9) {
  HotspotFootprint fp;
  // Build history: 10 accesses, 5 committed -> success ratio 0.5.
  for (int i = 0; i < 10; ++i) {
    fp.OnDispatch(Keys({1}));
    fp.OnComplete(Keys({1}), 100, i < 5);
  }
  // Queue depth: 3 concurrent accessors -> exponent max(3-1, 0) = 2.
  fp.OnDispatch(Keys({1}));
  fp.OnDispatch(Keys({1}));
  fp.OnDispatch(Keys({1}));
  EXPECT_NEAR(fp.AbortProbability(Keys({1})), 1.0 - std::pow(0.5, 2), 1e-9);
}

TEST(FootprintTest, AbortProbabilityZeroWhenIdle) {
  HotspotFootprint fp;
  for (int i = 0; i < 10; ++i) {
    fp.OnDispatch(Keys({1}));
    fp.OnComplete(Keys({1}), 100, false);  // terrible history
  }
  // No concurrent accessors -> exponent 0 -> never blocked.
  EXPECT_DOUBLE_EQ(fp.AbortProbability(Keys({1})), 0.0);
}

TEST(FootprintTest, AbortProbabilityMultipliesAcrossKeys) {
  HotspotFootprint fp;
  for (uint64_t k : {1u, 2u}) {
    for (int i = 0; i < 10; ++i) {
      fp.OnDispatch(Keys({k}));
      fp.OnComplete(Keys({k}), 100, i < 5);
    }
    fp.OnDispatch(Keys({k}));
    fp.OnDispatch(Keys({k}));  // a_cnt = 2 -> exponent 1
  }
  EXPECT_NEAR(fp.AbortProbability(Keys({1, 2})), 1.0 - 0.25, 1e-9);
}

TEST(FootprintTest, OnReleaseOnlyDropsActiveCount) {
  HotspotFootprint fp;
  fp.OnDispatch(Keys({1}));
  fp.OnRelease(Keys({1}));
  const RecordStats* stats = fp.Lookup(K(1));
  EXPECT_EQ(stats->a_cnt, 0);
  EXPECT_EQ(stats->t_cnt, 0u);
}

TEST(FootprintTest, LruEvictsColdRecords) {
  FootprintConfig config;
  config.capacity = 100;
  HotspotFootprint fp(config);
  for (uint64_t k = 0; k < 500; ++k) {
    fp.OnDispatch(Keys({k}));
    fp.OnComplete(Keys({k}), 100, true);
  }
  EXPECT_LE(fp.size(), 100u);
  EXPECT_GT(fp.evictions(), 0u);
  // The most recent keys survive.
  EXPECT_NE(fp.Lookup(K(499)), nullptr);
  EXPECT_EQ(fp.Lookup(K(0)), nullptr);
  EXPECT_TRUE(fp.CheckInvariants());
}

TEST(FootprintTest, BusyRecordsNotEvicted) {
  FootprintConfig config;
  config.capacity = 10;
  HotspotFootprint fp(config);
  fp.OnDispatch(Keys({777}));  // a_cnt = 1, never completed
  for (uint64_t k = 0; k < 100; ++k) {
    fp.OnDispatch(Keys({k}));
    fp.OnComplete(Keys({k}), 100, true);
  }
  ASSERT_NE(fp.Lookup(K(777)), nullptr);
  EXPECT_EQ(fp.Lookup(K(777))->a_cnt, 1);
  EXPECT_TRUE(fp.CheckInvariants());
}

TEST(FootprintTest, RangeScanOrdered) {
  HotspotFootprint fp;
  for (uint64_t k : {50u, 10u, 30u, 20u, 40u}) {
    fp.OnDispatch(Keys({k}));
    fp.OnComplete(Keys({k}), 100, true);
  }
  auto range = fp.Range(K(15), K(45));
  ASSERT_EQ(range.size(), 3u);
  EXPECT_EQ(range[0].first.key, 20u);
  EXPECT_EQ(range[1].first.key, 30u);
  EXPECT_EQ(range[2].first.key, 40u);
}

TEST(FootprintTest, RangeAcrossTables) {
  HotspotFootprint fp;
  fp.OnDispatch({RecordKey{1, 5}, RecordKey{2, 5}});
  auto range = fp.Range(RecordKey{1, 0}, RecordKey{1, 100});
  ASSERT_EQ(range.size(), 1u);
  EXPECT_EQ(range[0].first.table, 1u);
}

TEST(FootprintPropertyTest, RandomTrafficKeepsAvlInvariants) {
  Rng rng(0xABCD);
  FootprintConfig config;
  config.capacity = 64;
  HotspotFootprint fp(config);
  std::vector<RecordKey> outstanding;
  for (int step = 0; step < 30000; ++step) {
    const double action = rng.NextDouble();
    if (action < 0.5) {
      std::vector<RecordKey> keys;
      const int n = static_cast<int>(rng.NextU64(4)) + 1;
      for (int i = 0; i < n; ++i) keys.push_back(K(rng.NextU64(1000)));
      fp.OnDispatch(keys);
      for (const auto& k : keys) outstanding.push_back(k);
    } else if (!outstanding.empty()) {
      const size_t idx = rng.NextU64(outstanding.size());
      fp.OnComplete({outstanding[idx]}, rng.NextU64(5000),
                    rng.NextBool(0.8));
      outstanding.erase(outstanding.begin() + static_cast<long>(idx));
    }
    if (step % 1000 == 0) {
      ASSERT_TRUE(fp.CheckInvariants()) << "step " << step;
    }
  }
  EXPECT_TRUE(fp.CheckInvariants());
}

TEST(FootprintPropertyTest, HeavyEvictionChurn) {
  Rng rng(0x1234);
  FootprintConfig config;
  config.capacity = 8;
  HotspotFootprint fp(config);
  for (int step = 0; step < 20000; ++step) {
    const uint64_t k = rng.NextU64(10000);
    fp.OnDispatch(Keys({k}));
    fp.OnComplete(Keys({k}), 100, true);
    if (step % 500 == 0) ASSERT_TRUE(fp.CheckInvariants());
  }
  EXPECT_LE(fp.size(), 8u);
  EXPECT_GT(fp.evictions(), 10000u);
}

TEST(FootprintTest, ApproxBytesGrowsWithSize) {
  HotspotFootprint fp;
  const size_t empty = fp.ApproxBytes();
  for (uint64_t k = 0; k < 100; ++k) fp.OnDispatch(Keys({k}));
  EXPECT_GT(fp.ApproxBytes(), empty);
}

}  // namespace
}  // namespace core
}  // namespace geotp
