// Shared test fixture: a small simulated deployment (client + middleware +
// N data sources) with a scriptable client, used by the integration tests.
#ifndef GEOTP_TESTS_SIM_FIXTURE_H_
#define GEOTP_TESTS_SIM_FIXTURE_H_

#include <map>
#include <memory>
#include <vector>

#include "datasource/data_source.h"
#include "middleware/middleware.h"
#include "protocol/messages.h"
#include "replication/replication_config.h"
#include "sharding/shard_map.h"
#include "sim/event_loop.h"
#include "sim/network.h"

namespace geotp {
namespace testing_support {

/// Node ids: 0 = client, 1 = middleware, 2..2+n-1 = data sources (replica
/// group leaders when replication_factor > 1), then (rf-1) followers per
/// source appended in group order, then additional middlewares (when
/// num_middlewares > 1) appended last.
class MiniCluster {
 public:
  struct Options {
    int num_data_sources = 2;
    std::vector<double> rtts_ms = {10.0, 100.0};  ///< DM <-> DS RTTs
    middleware::MiddlewareConfig dm = middleware::MiddlewareConfig::GeoTP();
    uint64_t keys_per_node = 1000;
    uint32_t table = 1;
    /// Replicas per data source (1 = replication off).
    int replication_factor = 1;
    /// Leader <-> follower RTT (same-region replicas).
    double follower_rtt_ms = 2.0;
    replication::ReplicationConfig repl;
    /// WAL group-commit policy applied to every data source.
    storage::GroupCommitConfig group_commit;
    /// Fig. 15 deployment: additional middlewares (same config, same
    /// catalog, registered with every replica group).
    int num_middlewares = 1;
    /// Elastic sharding: overlay the table with chunked shards. The
    /// balancer runs on the FIRST middleware iff options.dm.balancer is
    /// enabled (peer middlewares are wired automatically).
    bool sharding = false;
    uint64_t chunks_per_source = 4;
    /// Hook to tweak every data source's config after the preset is
    /// applied (migration stream knobs, apply costs, ...).
    std::function<void(datasource::DataSourceConfig*)> ds_tweak;
    /// Per-node variant of ds_tweak (applied after it), for asymmetric
    /// deployments — e.g. mixed-version WAN codec negotiation tests.
    std::function<void(NodeId, datasource::DataSourceConfig*)> ds_tweak_node;
  };

  MiniCluster() : MiniCluster(Options()) {}

  explicit MiniCluster(Options options) : options_(options) {
    const int n = options.num_data_sources;
    const int rf = options.replication_factor;
    const int followers_per_group = rf - 1;
    const int extra_dms = options.num_middlewares - 1;
    const int total_nodes = 2 + n * rf + extra_dms;
    auto rtt_of = [&options](int i) {
      return i < static_cast<int>(options.rtts_ms.size())
                 ? options.rtts_ms[static_cast<size_t>(i)]
                 : 50.0;
    };
    auto follower_id = [n, followers_per_group](int group, int k) {
      return 2 + n + group * followers_per_group + k;
    };

    sim::LatencyMatrix matrix(total_nodes);
    matrix.SetSymmetric(0, 1, sim::LinkSpec::FromRttMs(0.5));
    for (int i = 0; i < n; ++i) {
      const double rtt = rtt_of(i);
      matrix.SetSymmetric(1, 2 + i, sim::LinkSpec::FromRttMs(rtt));
      matrix.SetSymmetric(0, 2 + i, sim::LinkSpec::FromRttMs(rtt));
      for (int j = 0; j < i; ++j) {
        matrix.SetSymmetric(2 + j, 2 + i, sim::LinkSpec::FromRttMs(50.0));
      }
      // Followers live in the leader's region: cheap links to their leader
      // and to each other, leader-like links to everything else.
      for (int k = 0; k < followers_per_group; ++k) {
        const NodeId f = follower_id(i, k);
        matrix.SetSymmetric(2 + i, f,
                            sim::LinkSpec::FromRttMs(options.follower_rtt_ms));
        matrix.SetSymmetric(1, f, sim::LinkSpec::FromRttMs(
                                      rtt + options.follower_rtt_ms));
        matrix.SetSymmetric(0, f, sim::LinkSpec::FromRttMs(
                                      rtt + options.follower_rtt_ms));
        for (int other = 0; other < total_nodes; ++other) {
          if (other == f || other <= 1 || other == 2 + i) continue;
          const bool same_group = other >= follower_id(i, 0) &&
                                  other < follower_id(i + 1, 0);
          matrix.SetSymmetric(f, other,
                              sim::LinkSpec::FromRttMs(
                                  same_group ? options.follower_rtt_ms
                                             : 50.0));
        }
      }
    }
    // Additional middlewares share the first DM's region (client-local).
    std::vector<NodeId> dm_ids = {1};
    for (int j = 0; j < extra_dms; ++j) {
      const NodeId dm_id = 2 + n * rf + j;
      dm_ids.push_back(dm_id);
      matrix.SetSymmetric(0, dm_id, sim::LinkSpec::FromRttMs(0.5));
      matrix.SetSymmetric(1, dm_id, sim::LinkSpec::FromRttMs(0.5));
      for (int i = 0; i < n; ++i) {
        matrix.SetSymmetric(dm_id, 2 + i,
                            sim::LinkSpec::FromRttMs(rtt_of(i)));
        for (int k = 0; k < followers_per_group; ++k) {
          matrix.SetSymmetric(dm_id, follower_id(i, k),
                              sim::LinkSpec::FromRttMs(
                                  rtt_of(i) + options.follower_rtt_ms));
        }
      }
    }
    network_ = std::make_unique<sim::Network>(&loop_, matrix);

    middleware::Catalog catalog;
    std::vector<NodeId> ds_ids;
    for (int i = 0; i < n; ++i) ds_ids.push_back(2 + i);
    catalog.AddRangePartitionedTable(options.table, options.keys_per_node,
                                     ds_ids);
    if (options.sharding) {
      catalog.InstallShardMap(sharding::ShardMap::FromRangePartition(
          options.table, options.keys_per_node, ds_ids,
          options.chunks_per_source));
    }

    for (int i = 0; i < n; ++i) {
      std::vector<NodeId> replicas = {2 + i};
      for (int k = 0; k < followers_per_group; ++k) {
        replicas.push_back(follower_id(i, k));
      }
      if (rf > 1) catalog.SetReplicaGroup(2 + i, replicas);

      for (NodeId replica : replicas) {
        datasource::DataSourceConfig config =
            datasource::DataSourceConfig::MySql();
        config.early_abort = options.dm.early_abort;
        config.group_commit = options.group_commit;
        if (options.ds_tweak) options.ds_tweak(&config);
        if (options.ds_tweak_node) options.ds_tweak_node(replica, &config);
        auto node = std::make_unique<datasource::DataSourceNode>(
            replica, network_.get(), config);
        if (rf > 1) {
          replication::GroupConfig group;
          group.logical = 2 + i;
          group.replicas = replicas;
          group.middlewares = dm_ids;
          group.config = options.repl;
          node->EnableReplication(group);
        }
        node->Attach();
        if (replica == 2 + i) {
          sources_.push_back(std::move(node));
        } else {
          followers_.push_back(std::move(node));
        }
      }
    }
    for (size_t j = 0; j < dm_ids.size(); ++j) {
      middleware::MiddlewareConfig dm_config = options.dm;
      if (j > 0) {
        dm_config.balancer.enabled = false;  // one balancer per deployment
      } else if (dm_config.balancer.enabled) {
        dm_config.balancer.peer_middlewares.assign(dm_ids.begin() + 1,
                                                   dm_ids.end());
      }
      auto dm = std::make_unique<middleware::MiddlewareNode>(
          dm_ids[j], /*ordinal=*/static_cast<uint32_t>(j), network_.get(),
          catalog, dm_config);
      dm->Attach();
      dms_.push_back(std::move(dm));
    }

    network_->RegisterNode(0, [this](std::unique_ptr<sim::MessageBase> msg) {
      OnClientMessage(std::move(msg));
    });
  }

  sim::EventLoop& loop() { return loop_; }
  sim::Network& network() { return *network_; }
  middleware::MiddlewareNode& dm() { return *dms_.front(); }
  /// Middleware `j` (0 = the primary at node id 1).
  middleware::MiddlewareNode& dm(int j) {
    return *dms_[static_cast<size_t>(j)];
  }
  datasource::DataSourceNode& source(int i) {
    return *sources_[static_cast<size_t>(i)];
  }
  /// Follower `k` of data source `i` (replication_factor > 1 only).
  datasource::DataSourceNode& follower(int i, int k) {
    const int per_group = options_.replication_factor - 1;
    return *followers_[static_cast<size_t>(i * per_group + k)];
  }
  /// All replicas of group `i`: the seed leader first, then followers.
  std::vector<datasource::DataSourceNode*> replica_group(int i) {
    std::vector<datasource::DataSourceNode*> group = {
        sources_[static_cast<size_t>(i)].get()};
    for (int k = 0; k < options_.replication_factor - 1; ++k) {
      group.push_back(&follower(i, k));
    }
    return group;
  }
  /// The replica currently leading group `i` (nullptr mid-election).
  datasource::DataSourceNode* leader_of(int i) {
    for (auto* node : replica_group(i)) {
      if (!node->crashed() && node->replicator() != nullptr &&
          node->replicator()->IsLeader()) {
        return node;
      }
    }
    return nullptr;
  }
  std::vector<datasource::DataSourceNode*> source_ptrs() {
    std::vector<datasource::DataSourceNode*> out;
    for (auto& src : sources_) out.push_back(src.get());
    for (auto& src : followers_) out.push_back(src.get());
    return out;
  }

  /// Key living on data source `i` at local offset `off`.
  RecordKey KeyOn(int i, uint64_t off) const {
    return RecordKey{options_.table,
                     static_cast<uint64_t>(i) * options_.keys_per_node + off};
  }

  // ----- scriptable client ------------------------------------------------

  struct ClientTxn {
    uint64_t tag;
    NodeId coordinator = 1;
    TxnId txn_id = kInvalidTxn;
    uint32_t tenant = 0;
    std::vector<protocol::ClientRoundResponse> round_responses;
    bool has_result = false;
    Status result;
    Micros result_at = 0;
    // Overload control: shed replies observed for this tag.
    int sheds = 0;
    Micros last_retry_hint = 0;
  };

  /// Sends one round (to `coordinator`, default the primary DM); returns
  /// the client-side handle. `tenant` rides on the request for the DM's
  /// per-tenant admission metering.
  ClientTxn* SendRound(uint64_t tag, std::vector<protocol::ClientOp> ops,
                       bool last_round, NodeId coordinator = 1,
                       uint32_t tenant = 0) {
    ClientTxn& txn = txns_[tag];
    txn.tag = tag;
    txn.coordinator = coordinator;
    txn.tenant = tenant;
    auto req = std::make_unique<protocol::ClientRoundRequest>();
    req->from = 0;
    req->to = coordinator;
    req->client_tag = tag;
    req->txn_id = txn.txn_id;
    req->tenant = tenant;
    req->ops = std::move(ops);
    req->last_round = last_round;
    network_->Send(std::move(req));
    return &txn;
  }

  void SendCommit(uint64_t tag) {
    auto req = std::make_unique<protocol::ClientFinishRequest>();
    req->from = 0;
    req->to = txns_[tag].coordinator;
    req->client_tag = tag;
    req->txn_id = txns_[tag].txn_id;
    req->commit = true;
    network_->Send(std::move(req));
  }

  ClientTxn& txn(uint64_t tag) { return txns_[tag]; }

  /// ShardCutoverReady messages addressed to the client node — the
  /// migration edge-case tests drive the balancer's protocol by hand from
  /// node 0 and observe readiness here.
  const std::vector<protocol::ShardCutoverReady>& cutovers() const {
    return cutovers_;
  }

  /// ShardMigrateAborted notices addressed to the client node (a promoted
  /// source leader aborting an inherited migration from its log).
  const std::vector<protocol::ShardMigrateAborted>& aborted_migrations()
      const {
    return aborted_;
  }

  /// Preloads `count` committed records (value 0) at offsets [0, count)
  /// of data source `i`'s partition, on every replica of the group — the
  /// streaming-migration tests use it to make ranges large enough that a
  /// snapshot takes many chunks.
  void PreloadRange(int i, uint64_t count) {
    for (auto* replica : replica_group(i)) {
      for (uint64_t off = 0; off < count; ++off) {
        replica->engine().store().Apply(KeyOn(i, off), 0);
      }
    }
  }

  /// Advances virtual time by `ms` milliseconds. The DM's latency monitor
  /// pings forever, so the loop never drains on its own — tests drive it
  /// with bounded horizons.
  void RunFor(double ms) { loop_.RunUntil(loop_.Now() + MsToMicros(ms)); }

  /// Convenience: runs a full single-round transaction to completion.
  /// Returns the final status.
  Status RunTxn(uint64_t tag, std::vector<protocol::ClientOp> ops,
                NodeId coordinator = 1) {
    SendRound(tag, std::move(ops), /*last_round=*/true, coordinator);
    // Drive until the round response, then commit, then the result.
    RunFor(3000);
    ClientTxn& t = txns_[tag];
    if (t.has_result) return t.result;  // aborted before commit
    SendCommit(tag);
    RunFor(3000);
    return t.result;
  }

  static protocol::ClientOp Read(RecordKey key) {
    protocol::ClientOp op;
    op.key = key;
    return op;
  }
  static protocol::ClientOp Write(RecordKey key, int64_t value,
                                  bool delta = false) {
    protocol::ClientOp op;
    op.key = key;
    op.is_write = true;
    op.value = value;
    op.is_delta = delta;
    return op;
  }

 private:
  void OnClientMessage(std::unique_ptr<sim::MessageBase> msg) {
    if (auto* round = dynamic_cast<protocol::ClientRoundResponse*>(msg.get())) {
      ClientTxn& txn = txns_[round->client_tag];
      txn.txn_id = round->txn_id;
      txn.round_responses.push_back(*round);
    } else if (auto* result =
                   dynamic_cast<protocol::ClientTxnResult*>(msg.get())) {
      ClientTxn& txn = txns_[result->client_tag];
      txn.has_result = true;
      txn.result = result->status;
      txn.result_at = loop_.Now();
    } else if (auto* shed =
                   dynamic_cast<protocol::OverloadedResponse*>(msg.get())) {
      ClientTxn& txn = txns_[shed->client_tag];
      txn.sheds++;
      txn.last_retry_hint = shed->retry_after_hint;
    } else if (auto* cutover =
                   dynamic_cast<protocol::ShardCutoverReady*>(msg.get())) {
      cutovers_.push_back(*cutover);
    } else if (auto* aborted =
                   dynamic_cast<protocol::ShardMigrateAborted*>(msg.get())) {
      aborted_.push_back(*aborted);
    }
  }

  Options options_;
  sim::EventLoop loop_;
  std::unique_ptr<sim::Network> network_;
  std::vector<std::unique_ptr<datasource::DataSourceNode>> sources_;
  std::vector<std::unique_ptr<datasource::DataSourceNode>> followers_;
  std::vector<std::unique_ptr<middleware::MiddlewareNode>> dms_;
  std::map<uint64_t, ClientTxn> txns_;
  std::vector<protocol::ShardCutoverReady> cutovers_;
  std::vector<protocol::ShardMigrateAborted> aborted_;
};

}  // namespace testing_support
}  // namespace geotp

#endif  // GEOTP_TESTS_SIM_FIXTURE_H_
