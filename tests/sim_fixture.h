// Shared test fixture: a small simulated deployment (client + middleware +
// N data sources) with a scriptable client, used by the integration tests.
#ifndef GEOTP_TESTS_SIM_FIXTURE_H_
#define GEOTP_TESTS_SIM_FIXTURE_H_

#include <map>
#include <memory>
#include <vector>

#include "datasource/data_source.h"
#include "middleware/middleware.h"
#include "protocol/messages.h"
#include "sim/event_loop.h"
#include "sim/network.h"

namespace geotp {
namespace testing_support {

/// Node ids: 0 = client, 1 = middleware, 2.. = data sources.
class MiniCluster {
 public:
  struct Options {
    int num_data_sources = 2;
    std::vector<double> rtts_ms = {10.0, 100.0};  ///< DM <-> DS RTTs
    middleware::MiddlewareConfig dm = middleware::MiddlewareConfig::GeoTP();
    uint64_t keys_per_node = 1000;
    uint32_t table = 1;
  };

  MiniCluster() : MiniCluster(Options()) {}

  explicit MiniCluster(Options options) : options_(options) {
    const int n = options.num_data_sources;
    sim::LatencyMatrix matrix(2 + n);
    matrix.SetSymmetric(0, 1, sim::LinkSpec::FromRttMs(0.5));
    for (int i = 0; i < n; ++i) {
      const double rtt = i < static_cast<int>(options.rtts_ms.size())
                             ? options.rtts_ms[static_cast<size_t>(i)]
                             : 50.0;
      matrix.SetSymmetric(1, 2 + i, sim::LinkSpec::FromRttMs(rtt));
      matrix.SetSymmetric(0, 2 + i, sim::LinkSpec::FromRttMs(rtt));
      for (int j = 0; j < i; ++j) {
        matrix.SetSymmetric(2 + j, 2 + i, sim::LinkSpec::FromRttMs(50.0));
      }
    }
    network_ = std::make_unique<sim::Network>(&loop_, matrix);

    middleware::Catalog catalog;
    std::vector<NodeId> ds_ids;
    for (int i = 0; i < n; ++i) ds_ids.push_back(2 + i);
    catalog.AddRangePartitionedTable(options.table, options.keys_per_node,
                                     ds_ids);

    for (int i = 0; i < n; ++i) {
      datasource::DataSourceConfig config =
          datasource::DataSourceConfig::MySql();
      config.early_abort = options.dm.early_abort;
      sources_.push_back(std::make_unique<datasource::DataSourceNode>(
          2 + i, network_.get(), config));
      sources_.back()->Attach();
    }
    dm_ = std::make_unique<middleware::MiddlewareNode>(
        1, /*ordinal=*/0, network_.get(), std::move(catalog), options.dm);
    dm_->Attach();

    network_->RegisterNode(0, [this](std::unique_ptr<sim::MessageBase> msg) {
      OnClientMessage(std::move(msg));
    });
  }

  sim::EventLoop& loop() { return loop_; }
  sim::Network& network() { return *network_; }
  middleware::MiddlewareNode& dm() { return *dm_; }
  datasource::DataSourceNode& source(int i) {
    return *sources_[static_cast<size_t>(i)];
  }
  std::vector<datasource::DataSourceNode*> source_ptrs() {
    std::vector<datasource::DataSourceNode*> out;
    for (auto& src : sources_) out.push_back(src.get());
    return out;
  }

  /// Key living on data source `i` at local offset `off`.
  RecordKey KeyOn(int i, uint64_t off) const {
    return RecordKey{options_.table,
                     static_cast<uint64_t>(i) * options_.keys_per_node + off};
  }

  // ----- scriptable client ------------------------------------------------

  struct ClientTxn {
    uint64_t tag;
    TxnId txn_id = kInvalidTxn;
    std::vector<protocol::ClientRoundResponse> round_responses;
    bool has_result = false;
    Status result;
    Micros result_at = 0;
  };

  /// Sends one round; returns the client-side handle.
  ClientTxn* SendRound(uint64_t tag, std::vector<protocol::ClientOp> ops,
                       bool last_round) {
    ClientTxn& txn = txns_[tag];
    txn.tag = tag;
    auto req = std::make_unique<protocol::ClientRoundRequest>();
    req->from = 0;
    req->to = 1;
    req->client_tag = tag;
    req->txn_id = txn.txn_id;
    req->ops = std::move(ops);
    req->last_round = last_round;
    network_->Send(std::move(req));
    return &txn;
  }

  void SendCommit(uint64_t tag) {
    auto req = std::make_unique<protocol::ClientFinishRequest>();
    req->from = 0;
    req->to = 1;
    req->client_tag = tag;
    req->txn_id = txns_[tag].txn_id;
    req->commit = true;
    network_->Send(std::move(req));
  }

  ClientTxn& txn(uint64_t tag) { return txns_[tag]; }

  /// Advances virtual time by `ms` milliseconds. The DM's latency monitor
  /// pings forever, so the loop never drains on its own — tests drive it
  /// with bounded horizons.
  void RunFor(double ms) { loop_.RunUntil(loop_.Now() + MsToMicros(ms)); }

  /// Convenience: runs a full single-round transaction to completion.
  /// Returns the final status.
  Status RunTxn(uint64_t tag, std::vector<protocol::ClientOp> ops) {
    SendRound(tag, std::move(ops), /*last_round=*/true);
    // Drive until the round response, then commit, then the result.
    RunFor(3000);
    ClientTxn& t = txns_[tag];
    if (t.has_result) return t.result;  // aborted before commit
    SendCommit(tag);
    RunFor(3000);
    return t.result;
  }

  static protocol::ClientOp Read(RecordKey key) {
    protocol::ClientOp op;
    op.key = key;
    return op;
  }
  static protocol::ClientOp Write(RecordKey key, int64_t value,
                                  bool delta = false) {
    protocol::ClientOp op;
    op.key = key;
    op.is_write = true;
    op.value = value;
    op.is_delta = delta;
    return op;
  }

 private:
  void OnClientMessage(std::unique_ptr<sim::MessageBase> msg) {
    if (auto* round = dynamic_cast<protocol::ClientRoundResponse*>(msg.get())) {
      ClientTxn& txn = txns_[round->client_tag];
      txn.txn_id = round->txn_id;
      txn.round_responses.push_back(*round);
    } else if (auto* result =
                   dynamic_cast<protocol::ClientTxnResult*>(msg.get())) {
      ClientTxn& txn = txns_[result->client_tag];
      txn.has_result = true;
      txn.result = result->status;
      txn.result_at = loop_.Now();
    }
  }

  Options options_;
  sim::EventLoop loop_;
  std::unique_ptr<sim::Network> network_;
  std::vector<std::unique_ptr<datasource::DataSourceNode>> sources_;
  std::unique_ptr<middleware::MiddlewareNode> dm_;
  std::map<uint64_t, ClientTxn> txns_;
};

}  // namespace testing_support
}  // namespace geotp

#endif  // GEOTP_TESTS_SIM_FIXTURE_H_
