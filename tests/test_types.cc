// Tests for core identifier and time types.
#include "common/types.h"

#include <set>
#include <unordered_set>

#include <gtest/gtest.h>

namespace geotp {
namespace {

TEST(TimeTest, MsRoundTrip) {
  EXPECT_EQ(MsToMicros(1.0), 1000);
  EXPECT_EQ(MsToMicros(0.5), 500);
  EXPECT_EQ(SecToMicros(2.0), 2000000);
  EXPECT_DOUBLE_EQ(MicrosToMs(2500), 2.5);
  EXPECT_DOUBLE_EQ(MicrosToSec(1500000), 1.5);
}

TEST(TimeTest, FractionalMsPrecision) {
  EXPECT_EQ(MsToMicros(0.001), 1);
  EXPECT_EQ(MsToMicros(251.0), 251000);
}

TEST(TxnIdTest, MakeTxnIdEncodesOrdinal) {
  const TxnId a = MakeTxnId(0, 1);
  const TxnId b = MakeTxnId(1, 1);
  EXPECT_NE(a, b);
  EXPECT_EQ(a >> 48, 0u);
  EXPECT_EQ(b >> 48, 1u);
}

TEST(TxnIdTest, SequencesNeverCollideAcrossOrdinals) {
  std::set<TxnId> seen;
  for (uint32_t ordinal = 0; ordinal < 4; ++ordinal) {
    for (uint64_t seq = 1; seq < 1000; ++seq) {
      EXPECT_TRUE(seen.insert(MakeTxnId(ordinal, seq)).second);
    }
  }
}

TEST(XidTest, EqualityAndHash) {
  const Xid a{5, 2};
  const Xid b{5, 2};
  const Xid c{5, 3};
  const Xid d{6, 2};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(a == d);
  XidHash hash;
  EXPECT_EQ(hash(a), hash(b));
  std::unordered_set<Xid, XidHash> set;
  set.insert(a);
  set.insert(c);
  set.insert(d);
  EXPECT_EQ(set.size(), 3u);
}

TEST(XidTest, ToStringIsInformative) {
  const Xid xid{42, 3};
  const std::string repr = xid.ToString();
  EXPECT_NE(repr.find("42"), std::string::npos);
  EXPECT_NE(repr.find("3"), std::string::npos);
}

TEST(RecordKeyTest, OrderingIsTableThenKey) {
  const RecordKey a{1, 100};
  const RecordKey b{1, 200};
  const RecordKey c{2, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_FALSE(c < a);
  EXPECT_FALSE(a < a);
}

TEST(RecordKeyTest, HashSpreadsAcrossTables) {
  RecordKeyHash hash;
  std::unordered_set<size_t> hashes;
  for (uint32_t table = 1; table <= 4; ++table) {
    for (uint64_t key = 0; key < 1000; ++key) {
      hashes.insert(hash(RecordKey{table, key}));
    }
  }
  // 4000 keys must hash to (nearly) 4000 distinct values.
  EXPECT_GT(hashes.size(), 3990u);
}

TEST(RecordKeyTest, HighBitKeysDoNotCollide) {
  // TPC-C packs warehouse ids into the top 16 bits; the hash must still
  // spread keys that differ only there.
  RecordKeyHash hash;
  std::unordered_set<size_t> hashes;
  for (uint64_t w = 0; w < 64; ++w) {
    for (uint64_t item = 0; item < 64; ++item) {
      hashes.insert(hash(RecordKey{18, (w << 48) | item}));
    }
  }
  EXPECT_EQ(hashes.size(), 64u * 64u);
}

}  // namespace
}  // namespace geotp
