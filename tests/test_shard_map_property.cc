// ShardMap property test: >= 1000 random split/merge/move sequences must
// keep the key space an exact partition (no gaps, no overlaps), keep
// range versions monotone under the map epoch, and keep lookups
// consistent across replicas that adopt the published states in arbitrary
// order (with duplicates and stale re-deliveries) and across a Catalog
// round-trip.
#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "middleware/catalog.h"
#include "sharding/shard_map.h"

namespace geotp {
namespace {

using middleware::Catalog;
using sharding::ShardMap;
using sharding::ShardRange;

constexpr uint32_t kTable = 1;
constexpr uint64_t kKeysPerNode = 1000;

// Sample keys probed for lookup consistency: partition boundaries, a few
// interior points, and far beyond the nominal space (last-chunk clamp).
std::vector<uint64_t> ProbeKeys(const std::vector<NodeId>& owners) {
  std::vector<uint64_t> keys;
  for (size_t i = 0; i < owners.size(); ++i) {
    const uint64_t base = i * kKeysPerNode;
    for (uint64_t off : {0ULL, 1ULL, 250ULL, 499ULL, 500ULL, 999ULL}) {
      keys.push_back(base + off);
    }
  }
  keys.push_back(owners.size() * kKeysPerNode + 12345);
  keys.push_back(UINT64_MAX - 1);
  return keys;
}

void ExpectInvariants(const ShardMap& map, const char* what, int round) {
  ASSERT_TRUE(map.IsPartition(kTable))
      << what << " broke the partition in round " << round;
  for (const ShardRange& range : map.ranges()) {
    EXPECT_LE(range.version, map.epoch())
        << what << " minted a range above the map epoch in round " << round;
  }
}

TEST(ShardMapProperty, RandomSplitMergeMoveSequencesConverge) {
  constexpr int kSequences = 1000;
  constexpr int kOpsPerSequence = 16;
  Rng rng(0xC0FFEE);

  for (int round = 0; round < kSequences; ++round) {
    const int num_owners = 2 + static_cast<int>(rng.NextU64(3));
    std::vector<NodeId> owners;
    for (int i = 0; i < num_owners; ++i) owners.push_back(2 + i);
    const uint64_t chunks = 1 + rng.NextU64(4);
    ShardMap primary =
        ShardMap::FromRangePartition(kTable, kKeysPerNode, owners, chunks);
    ASSERT_TRUE(primary.IsPartition(kTable));

    // Published states: full snapshots after each successful op, plus
    // single-entry "redirect" patches. Replicas may see any interleaving.
    std::vector<std::vector<ShardRange>> published = {primary.ranges()};
    uint64_t next_version = primary.epoch();
    uint64_t last_epoch = primary.epoch();

    for (int op = 0; op < kOpsPerSequence; ++op) {
      const uint64_t version = std::max(next_version, primary.epoch()) + 1;
      const int kind = static_cast<int>(rng.NextU64(3));
      bool changed = false;
      switch (kind) {
        case 0: {  // split a random range at a random interior point
          const size_t idx = rng.NextU64(primary.size());
          const ShardRange range = primary.ranges()[idx];
          const uint64_t span =
              range.hi - range.lo;  // hi may be UINT64_MAX; span is fine
          if (span >= 2) {
            const uint64_t at = range.lo + 1 + rng.NextU64(span - 1);
            changed = primary.Split(idx, at, version);
          }
          break;
        }
        case 1: {  // merge a random adjacent same-owner pair
          const size_t start = rng.NextU64(primary.size());
          for (size_t k = 0; k + 1 < primary.size(); ++k) {
            const size_t idx = (start + k) % (primary.size() - 1);
            if (primary.Merge(idx, version)) {
              changed = true;
              break;
            }
          }
          break;
        }
        default: {  // move a random range to a random owner
          const size_t idx = rng.NextU64(primary.size());
          const NodeId dest = owners[rng.NextU64(owners.size())];
          changed = primary.Move(idx, dest, version);
          break;
        }
      }
      if (changed) {
        next_version = version;
        published.push_back(primary.ranges());
        // Single-entry patch, as a ShardRedirect would carry.
        const size_t idx = rng.NextU64(primary.size());
        published.push_back({primary.ranges()[idx]});
      }
      ASSERT_NO_FATAL_FAILURE(ExpectInvariants(primary, "op", round));
      EXPECT_GE(primary.epoch(), last_epoch)
          << "epoch went backwards in round " << round;
      last_epoch = primary.epoch();
    }

    // Every key routes somewhere (partition + owners stay valid).
    const std::vector<uint64_t> probes = ProbeKeys(owners);
    for (uint64_t key : probes) {
      const NodeId owner = primary.Route(RecordKey{kTable, key});
      EXPECT_NE(owner, kInvalidNode) << "key " << key << " round " << round;
      EXPECT_NE(std::find(owners.begin(), owners.end(), owner), owners.end())
          << "key " << key << " round " << round;
    }

    // Replica 1 adopts every published state in shuffled order, with a
    // duplicated batch thrown in; replica 2 starts EMPTY (a DM that never
    // saw the deployment layout) and adopts the same shuffle. Both must
    // converge to the primary's exact ranges.
    std::vector<std::vector<ShardRange>> shuffled = published;
    shuffled.push_back(published[rng.NextU64(published.size())]);
    for (size_t i = shuffled.size(); i > 1; --i) {
      std::swap(shuffled[i - 1], shuffled[rng.NextU64(i)]);
    }
    ShardMap replica =
        ShardMap::FromRangePartition(kTable, kKeysPerNode, owners, chunks);
    ShardMap empty_replica;
    for (const auto& state : shuffled) {
      replica.Adopt(state);
      empty_replica.Adopt(state);
      ASSERT_NO_FATAL_FAILURE(ExpectInvariants(replica, "adopt", round));
    }
    // The full final state last: convergence must not depend on the
    // shuffle having delivered it (LWW: stale states cannot undo it).
    replica.Adopt(primary.ranges());
    empty_replica.Adopt(primary.ranges());
    for (const auto& state : shuffled) {
      replica.Adopt(state);  // stale re-delivery after convergence
    }

    ASSERT_EQ(replica.size(), primary.size()) << "round " << round;
    for (size_t i = 0; i < primary.size(); ++i) {
      const ShardRange& a = primary.ranges()[i];
      const ShardRange& b = replica.ranges()[i];
      EXPECT_TRUE(a.SameSpan(b) && a.owner == b.owner &&
                  a.version == b.version)
          << "round " << round << ": " << a.ToString() << " vs "
          << b.ToString();
    }
    for (uint64_t key : probes) {
      const RecordKey probe{kTable, key};
      EXPECT_EQ(replica.Route(probe), primary.Route(probe))
          << "key " << key << " round " << round;
      EXPECT_EQ(empty_replica.Route(probe), primary.Route(probe))
          << "key " << key << " round " << round;
    }

    // Catalog round-trip: routing through an installed map matches the
    // map itself, and uncovered tables still fall back to static routing.
    Catalog catalog;
    catalog.AddRangePartitionedTable(kTable, kKeysPerNode, owners);
    catalog.AddRangePartitionedTable(kTable + 1, kKeysPerNode, owners);
    catalog.InstallShardMap(primary);
    EXPECT_EQ(catalog.ShardEpoch(), primary.epoch()) << "round " << round;
    for (uint64_t key : probes) {
      EXPECT_EQ(catalog.Route(RecordKey{kTable, key}),
                primary.Route(RecordKey{kTable, key}))
          << "key " << key << " round " << round;
    }
    EXPECT_EQ(catalog.Route(RecordKey{kTable + 1, 42}), owners[0]);
  }
}

}  // namespace
}  // namespace geotp
