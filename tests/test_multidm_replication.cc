// Multi-DM + replication together (ROADMAP: "Fig. 15 multi-DM +
// replication is untested together"): two middlewares drive the same
// replica-grouped data sources, a leader is killed mid-traffic, both DMs
// adopt the failover, and the combined committed history stays
// serializable (delta counters add up exactly).
#include <gtest/gtest.h>

#include "sim_fixture.h"

namespace geotp {
namespace {

using testing_support::MiniCluster;

MiniCluster::Options MultiDmOptions() {
  MiniCluster::Options options;
  options.num_data_sources = 2;
  options.rtts_ms = {10.0, 60.0};
  options.replication_factor = 3;
  options.num_middlewares = 2;
  return options;
}

TEST(MultiDmReplication, BothDmsCommitThroughReplicaGroups) {
  MiniCluster c(MultiDmOptions());
  const NodeId dm2 = 2 + 2 * 3;  // extra DM id: after 2 sources x rf 3

  // Interleaved delta increments on one record from both DMs: the final
  // value counts exactly the committed transactions, whichever DM drove
  // them.
  int committed = 0;
  for (int t = 0; t < 10; ++t) {
    const NodeId coordinator = (t % 2 == 0) ? 1 : dm2;
    const Status result = c.RunTxn(
        static_cast<uint64_t>(t),
        {MiniCluster::Write(c.KeyOn(0, 1), 1, /*delta=*/true),
         MiniCluster::Write(c.KeyOn(1, 1), 1, /*delta=*/true)},
        coordinator);
    if (result.ok()) committed++;
  }
  ASSERT_GT(committed, 0);
  EXPECT_GT(c.dm(0).stats().committed, 0u);
  EXPECT_GT(c.dm(1).stats().committed, 0u);

  const auto* handle =
      c.SendRound(100, {MiniCluster::Read(c.KeyOn(0, 1))}, true, dm2);
  c.RunFor(2000);
  c.SendCommit(100);
  c.RunFor(2000);
  ASSERT_FALSE(handle->round_responses.empty());
  EXPECT_EQ(handle->round_responses.back().values.at(0), committed);
}

TEST(MultiDmReplication, FailoverIsAdoptedByEveryDm) {
  MiniCluster c(MultiDmOptions());
  const NodeId dm2 = 2 + 2 * 3;

  int committed_before = 0;
  for (int t = 0; t < 6; ++t) {
    const NodeId coordinator = (t % 2 == 0) ? 1 : dm2;
    if (c.RunTxn(static_cast<uint64_t>(t),
                 {MiniCluster::Write(c.KeyOn(0, 2), 1, /*delta=*/true)},
                 coordinator)
            .ok()) {
      committed_before++;
    }
  }
  ASSERT_GT(committed_before, 0);

  // Kill the seed leader of group 0; a same-region follower takes over
  // and announces itself to BOTH middlewares.
  c.source(0).Crash();
  c.RunFor(3000);
  ASSERT_NE(c.leader_of(0), nullptr);
  EXPECT_NE(c.leader_of(0)->id(), c.source(0).id());
  EXPECT_GE(c.leader_of(0)->replicator()->epoch(), 1u);

  // Traffic from both DMs keeps committing against the promoted leader.
  int committed_after = 0;
  for (int t = 10; t < 16; ++t) {
    const NodeId coordinator = (t % 2 == 0) ? 1 : dm2;
    if (c.RunTxn(static_cast<uint64_t>(t),
                 {MiniCluster::Write(c.KeyOn(0, 2), 1, /*delta=*/true)},
                 coordinator)
            .ok()) {
      committed_after++;
    }
  }
  ASSERT_GT(committed_after, 0);
  EXPECT_GE(c.dm(0).stats().failovers_observed, 1u);
  EXPECT_GE(c.dm(1).stats().failovers_observed, 1u);

  // No committed increment was lost across the failover: the counter at
  // the promoted leader equals the committed count from both DMs.
  const auto* handle =
      c.SendRound(100, {MiniCluster::Read(c.KeyOn(0, 2))}, true, dm2);
  c.RunFor(2000);
  c.SendCommit(100);
  c.RunFor(2000);
  ASSERT_FALSE(handle->round_responses.empty());
  EXPECT_EQ(handle->round_responses.back().values.at(0),
            committed_before + committed_after);
}

}  // namespace
}  // namespace geotp
