// Group-commit tests: the GroupCommitter batching/durability state machine
// in isolation, and its integration in the data-source prepare path —
// batched prepares share one fsync, no waiter is acked before the shared
// flush completes, and a crash loses exactly the open batch.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_loop.h"
#include "sim_fixture.h"
#include "storage/group_commit.h"

namespace geotp {
namespace {

using storage::GroupCommitConfig;
using storage::GroupCommitter;
using testing_support::MiniCluster;

TEST(GroupCommitterTest, SameTickAppendsShareOneFsync) {
  sim::EventLoop loop;
  GroupCommitter committer(&loop, GroupCommitConfig());
  std::vector<Micros> done_at;
  for (int i = 0; i < 5; ++i) {
    committer.Append(2000, [&]() { done_at.push_back(loop.Now()); });
  }
  loop.Run();
  ASSERT_EQ(done_at.size(), 5u);
  for (Micros at : done_at) EXPECT_EQ(at, 2000);
  EXPECT_EQ(committer.stats().fsyncs, 1u);
  EXPECT_EQ(committer.stats().entries, 5u);
  EXPECT_EQ(committer.stats().max_batch_entries, 5u);
}

TEST(GroupCommitterTest, FlushDurationIsMaxOfBatchCosts) {
  sim::EventLoop loop;
  GroupCommitter committer(&loop, GroupCommitConfig());
  Micros cheap_done = 0;
  committer.Append(1000, [&]() { cheap_done = loop.Now(); });
  committer.Append(2200, [&]() {});
  loop.Run();
  // The cheap commit record waits for the batch's slowest entry.
  EXPECT_EQ(cheap_done, 2200);
  EXPECT_EQ(committer.stats().fsyncs, 1u);
}

TEST(GroupCommitterTest, BatchDelayWindowAccumulatesLateArrivals) {
  sim::EventLoop loop;
  GroupCommitConfig config;
  config.max_batch_delay = 500;
  GroupCommitter committer(&loop, config);
  std::vector<Micros> done_at;
  committer.Append(1000, [&]() { done_at.push_back(loop.Now()); });
  // Arrives inside the 500us window: joins the same batch.
  loop.Schedule(300, [&]() {
    committer.Append(1000, [&]() { done_at.push_back(loop.Now()); });
  });
  loop.Run();
  ASSERT_EQ(done_at.size(), 2u);
  // Window closes at 500, flush takes 1000: both durable at 1500.
  EXPECT_EQ(done_at[0], 1500);
  EXPECT_EQ(done_at[1], 1500);
  EXPECT_EQ(committer.stats().fsyncs, 1u);
}

TEST(GroupCommitterTest, FullBatchFlushesBeforeDelayExpires) {
  sim::EventLoop loop;
  GroupCommitConfig config;
  config.max_batch_delay = 10000;
  config.max_batch_size = 3;
  GroupCommitter committer(&loop, config);
  std::vector<Micros> done_at;
  for (int i = 0; i < 3; ++i) {
    committer.Append(1000, [&]() { done_at.push_back(loop.Now()); });
  }
  loop.Run();
  ASSERT_EQ(done_at.size(), 3u);
  for (Micros at : done_at) EXPECT_EQ(at, 1000);  // not 11000
}

TEST(GroupCommitterTest, SerialDeviceQueuesNextBatchBehindInFlightFlush) {
  sim::EventLoop loop;
  GroupCommitter committer(&loop, GroupCommitConfig());
  std::vector<Micros> done_at;
  committer.Append(1000, [&]() { done_at.push_back(loop.Now()); });
  // Arrives while the first flush occupies the device: next batch.
  loop.Schedule(400, [&]() {
    committer.Append(1000, [&]() { done_at.push_back(loop.Now()); });
  });
  loop.Run();
  ASSERT_EQ(done_at.size(), 2u);
  EXPECT_EQ(done_at[0], 1000);
  EXPECT_EQ(done_at[1], 2000);  // device freed at 1000, +1000 flush
  EXPECT_EQ(committer.stats().fsyncs, 2u);
}

TEST(GroupCommitterTest, BusyDeviceBacklogDrainsInMaxBatchSizeChunks) {
  sim::EventLoop loop;
  GroupCommitConfig config;
  config.max_batch_size = 2;
  GroupCommitter committer(&loop, config);
  std::vector<Micros> done_at;
  committer.Append(1000, [&]() { done_at.push_back(loop.Now()); });
  // Five entries arrive while the first flush occupies the device: they
  // drain behind it in ceil(5/2) = 3 batches, not one oversized flush.
  loop.Schedule(500, [&]() {
    for (int i = 0; i < 5; ++i) {
      committer.Append(1000, [&]() { done_at.push_back(loop.Now()); });
    }
  });
  loop.Run();
  ASSERT_EQ(done_at.size(), 6u);
  EXPECT_EQ(done_at[0], 1000);
  EXPECT_EQ(done_at[5], 4000);  // three further serial flushes
  EXPECT_EQ(committer.stats().fsyncs, 4u);
  EXPECT_EQ(committer.stats().max_batch_entries, 2u);
}

TEST(GroupCommitterTest, ResetDropsOpenBatchAndInFlightFlush) {
  sim::EventLoop loop;
  GroupCommitConfig config;
  config.max_batch_delay = 500;
  GroupCommitter committer(&loop, config);
  int fired = 0;
  committer.Append(1000, [&]() { fired++; });
  loop.Schedule(100, [&]() { committer.Reset(); });  // crash mid-window
  loop.Run();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(committer.stats().fsyncs, 0u);
  // The committer keeps working after the crash.
  committer.Append(1000, [&]() { fired++; });
  loop.Run();
  EXPECT_EQ(fired, 1);
}

TEST(GroupCommitterTest, DisabledModeFsyncsEveryEntryIndependently) {
  sim::EventLoop loop;
  GroupCommitConfig config;
  config.enabled = false;
  GroupCommitter committer(&loop, config);
  std::vector<Micros> done_at;
  for (int i = 0; i < 4; ++i) {
    committer.Append(2000, [&]() { done_at.push_back(loop.Now()); });
  }
  loop.Run();
  ASSERT_EQ(done_at.size(), 4u);
  for (Micros at : done_at) EXPECT_EQ(at, 2000);  // parallel, not queued
  EXPECT_EQ(committer.stats().fsyncs, 4u);
}

// ---------------------------------------------------------------------------
// Integration: the data-source prepare/commit path
// ---------------------------------------------------------------------------

MiniCluster::Options GeoTpOptions() {
  MiniCluster::Options options;
  // O1 preset: decentralized prepare with immediate dispatch — no
  // latency-aware postponing, so the probe timings below are exact.
  options.dm = middleware::MiddlewareConfig::GeoTPO1();
  return options;
}

TEST(GroupCommitIntegrationTest, ConcurrentPreparesShareTheFsync) {
  MiniCluster cluster(GeoTpOptions());
  // Two distributed transactions over the same two sources, submitted in
  // the same tick: their prepare records at each source share one flush.
  cluster.SendRound(1, {
      MiniCluster::Write(cluster.KeyOn(0, 1), 10),
      MiniCluster::Write(cluster.KeyOn(1, 1), 20),
  }, true);
  cluster.SendRound(2, {
      MiniCluster::Write(cluster.KeyOn(0, 2), 30),
      MiniCluster::Write(cluster.KeyOn(1, 2), 40),
  }, true);
  cluster.RunFor(1000);
  ASSERT_EQ(cluster.source(0).engine().PreparedXids().size(), 2u);
  const auto& gc = cluster.source(0).committer().stats();
  EXPECT_EQ(gc.entries, 2u);
  EXPECT_EQ(gc.fsyncs, 1u);
  EXPECT_EQ(gc.max_batch_entries, 2u);
  // WAL accounting matches: two prepare records, one physical flush.
  EXPECT_EQ(cluster.source(0).engine().wal().fsyncs(), 1u);
}

TEST(GroupCommitIntegrationTest, NoVoteBeforeSharedFsyncCompletes) {
  MiniCluster cluster(GeoTpOptions());
  cluster.SendRound(1, {
      MiniCluster::Write(cluster.KeyOn(0, 1), 10),
      MiniCluster::Write(cluster.KeyOn(1, 1), 20),
  }, true);
  cluster.SendRound(2, {
      MiniCluster::Write(cluster.KeyOn(0, 2), 30),
      MiniCluster::Write(cluster.KeyOn(1, 2), 40),
  }, true);
  // Probe just before each source's batched prepare flush can have
  // completed: request dispatch costs the DM analysis (300us) plus one-way
  // WAN (5ms to source 0), execution costs one write (420us), the agent
  // LAN hop 300us, and the shared prepare fsync 2200us. No branch may be
  // PREPARED (= vote reportable) until the whole flush is done, even
  // though both branches already finished executing.
  cluster.RunFor(8.0);  // past exec + LAN at source 0, inside the fsync
  EXPECT_EQ(cluster.source(0).engine().PreparedXids().size(), 0u);
  EXPECT_EQ(cluster.source(0).committer().pending(), 2u);
  cluster.RunFor(3.0);  // fsync complete
  EXPECT_EQ(cluster.source(0).engine().PreparedXids().size(), 2u);
  EXPECT_EQ(cluster.source(0).committer().stats().fsyncs, 1u);
  // Both transactions commit normally afterwards.
  cluster.RunFor(3000);
  cluster.SendCommit(1);
  cluster.SendCommit(2);
  cluster.RunFor(3000);
  EXPECT_TRUE(cluster.txn(1).result.ok());
  EXPECT_TRUE(cluster.txn(2).result.ok());
}

TEST(GroupCommitIntegrationTest, DmDecisionLogSharesFlushes) {
  MiniCluster cluster(GeoTpOptions());
  cluster.SendRound(1, {
      MiniCluster::Write(cluster.KeyOn(0, 1), 10),
      MiniCluster::Write(cluster.KeyOn(1, 1), 20),
  }, true);
  cluster.SendRound(2, {
      MiniCluster::Write(cluster.KeyOn(0, 2), 30),
      MiniCluster::Write(cluster.KeyOn(1, 2), 40),
  }, true);
  cluster.RunFor(500);
  // Both vote sets complete; the commits arrive in the same tick, so the
  // two FlushLog calls share one decision-log flush.
  cluster.SendCommit(1);
  cluster.SendCommit(2);
  cluster.RunFor(3000);
  ASSERT_TRUE(cluster.txn(1).result.ok());
  ASSERT_TRUE(cluster.txn(2).result.ok());
  EXPECT_EQ(cluster.dm().decision_log().size(), 2u);
  EXPECT_EQ(cluster.dm().stats().log_entries_flushed, 2u);
  EXPECT_EQ(cluster.dm().stats().log_flushes, 1u);
  // The two same-destination commit decisions left as one batch envelope.
  EXPECT_GE(cluster.dm().stats().decision_batches_sent, 1u);
}

}  // namespace
}  // namespace geotp
