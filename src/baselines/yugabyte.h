// YbTabletNode: a YugabyteDB-style data node.
//
// Each node stores one partition (versioned records with write intents)
// and can coordinate transactions that start on it — there is no separate
// middleware hop. The behaviours the paper leans on (Fig. 13 discussion):
//
//  * single-shard transactions commit in one client round trip and apply
//    their updates asynchronously after commitment;
//  * distributed transactions write provisional records (intents) during
//    execution, commit by flipping a local status record, and resolve
//    intents asynchronously;
//  * write-write conflicts on intents fail fast — under high contention
//    the retry storm collapses throughput, which is where GeoTP wins.
#ifndef GEOTP_BASELINES_YUGABYTE_H_
#define GEOTP_BASELINES_YUGABYTE_H_

#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "baselines/store_messages.h"
#include "middleware/catalog.h"
#include "protocol/messages.h"
#include "sim/network.h"
#include "storage/engine.h"
#include "storage/versioned_store.h"

namespace geotp {
namespace baselines {

struct YbConfig {
  storage::EngineConfig cost;  ///< per-op + fsync cost model
  /// Raft-ish local replication/flush charged on every batch and commit.
  Micros consensus_cost = 400;
  /// Wait-on-conflict: a batch hitting a foreign intent is retried
  /// internally after this backoff, up to `conflict_retries` times,
  /// before the transaction aborts to the client.
  Micros conflict_backoff = MsToMicros(10);
  int conflict_retries = 8;
};

struct YbStats {
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t intent_conflicts = 0;
  uint64_t single_shard = 0;
  uint64_t distributed = 0;
};

class YbTabletNode {
 public:
  YbTabletNode(NodeId id, sim::Network* network,
               const middleware::Catalog* catalog, YbConfig config);

  void Attach();

  NodeId id() const { return id_; }
  storage::VersionedStore& store() { return store_; }
  const YbStats& stats() const { return stats_; }
  sim::EventLoop* loop() { return network_->loop(); }

 private:
  struct Txn {
    TxnId id = kInvalidTxn;
    uint64_t client_tag = 0;
    NodeId client = kInvalidNode;
    std::map<NodeId, bool> participants;  ///< node -> has intents
    std::vector<int64_t> round_values;
    std::vector<protocol::ClientOp> pending_ops;
    size_t outstanding = 0;
    bool aborting = false;
    bool single_shard = true;
    int conflict_retries_left = 0;
  };

  void HandleMessage(std::unique_ptr<sim::MessageBase> msg);
  // Coordinator role.
  void OnClientRound(const protocol::ClientRoundRequest& req);
  void DispatchLocalBatch(TxnId id, std::vector<StagedOp> ops,
                          std::vector<size_t> slots);
  void DispatchRemoteBatch(TxnId id, NodeId target, std::vector<StagedOp> ops,
                           std::vector<size_t> slots);
  void OnBatchResponse(const YbBatchResponse& resp);
  void CompleteRoundPart(Txn& txn);
  void OnClientFinish(const protocol::ClientFinishRequest& req);
  void AbortTxn(Txn& txn);
  void FinishTxn(Txn& txn, bool committed);
  // Tablet role.
  void OnBatch(const YbBatchRequest& req);
  void OnResolve(const YbResolveRequest& req);
  /// Executes a batch against the local store; fail-fast on intent
  /// conflict. Fills `results` for reads.
  Status ApplyBatchLocally(TxnId txn, const std::vector<StagedOp>& ops,
                           std::vector<ReadResult>* results);

  Txn* FindTxn(TxnId id);

  NodeId id_;
  sim::Network* network_;
  const middleware::Catalog* catalog_;
  YbConfig config_;
  storage::VersionedStore store_;
  YbStats stats_;
  uint64_t next_seq_ = 1;
  uint64_t next_req_id_ = 1;
  struct PendingBatch {
    TxnId txn = kInvalidTxn;
    NodeId target = kInvalidNode;
    std::vector<StagedOp> ops;      ///< kept for wait-on-conflict retries
    std::vector<size_t> slots;
  };

  std::unordered_map<TxnId, Txn> txns_;
  std::unordered_map<uint64_t, PendingBatch> batch_reqs_;
};

}  // namespace baselines
}  // namespace geotp

#endif  // GEOTP_BASELINES_YUGABYTE_H_
