// Entry points for the non-middleware baselines: ScalarDB(-style) and
// YugabyteDB(-style). They accept the same ExperimentConfig as
// workload::RunExperiment, which dispatches here.
#ifndef GEOTP_BASELINES_BASELINE_RUNNERS_H_
#define GEOTP_BASELINES_BASELINE_RUNNERS_H_

#include "workload/runner.h"

namespace geotp {
namespace baselines {

/// ScalarDB-style run: DM-side concurrency control (consensus commit over
/// non-transactional stores). SystemKind::kScalarDbPlus additionally
/// enables GeoTP's latency-aware scheduling + heuristics at the DM.
workload::ExperimentResult RunScalarDbExperiment(
    const workload::ExperimentConfig& config);

/// YugabyteDB-style run: per-node transaction coordinators, provisional
/// records, 1-RTT single-shard commits with asynchronous apply.
workload::ExperimentResult RunYugabyteExperiment(
    const workload::ExperimentConfig& config);

}  // namespace baselines
}  // namespace geotp

#endif  // GEOTP_BASELINES_BASELINE_RUNNERS_H_
