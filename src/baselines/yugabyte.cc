#include "baselines/yugabyte.h"

#include <utility>

#include "common/logging.h"

namespace geotp {
namespace baselines {

using protocol::ClientFinishRequest;
using protocol::ClientOp;
using protocol::ClientRoundRequest;
using protocol::ClientRoundResponse;
using protocol::ClientTxnResult;

YbTabletNode::YbTabletNode(NodeId id, sim::Network* network,
                           const middleware::Catalog* catalog,
                           YbConfig config)
    : id_(id), network_(network), catalog_(catalog), config_(config) {}

void YbTabletNode::Attach() {
  network_->RegisterNode(id_, [this](std::unique_ptr<sim::MessageBase> msg) {
    HandleMessage(std::move(msg));
  });
}

void YbTabletNode::HandleMessage(std::unique_ptr<sim::MessageBase> msg) {
  switch (msg->type()) {
    case sim::MessageType::kClientRoundRequest:
      OnClientRound(static_cast<ClientRoundRequest&>(*msg));
      return;
    case sim::MessageType::kYbBatchResponse:
      OnBatchResponse(static_cast<YbBatchResponse&>(*msg));
      return;
    case sim::MessageType::kClientFinishRequest:
      OnClientFinish(static_cast<ClientFinishRequest&>(*msg));
      return;
    case sim::MessageType::kYbBatchRequest:
      OnBatch(static_cast<YbBatchRequest&>(*msg));
      return;
    case sim::MessageType::kYbResolveRequest:
      OnResolve(static_cast<YbResolveRequest&>(*msg));
      return;
    case sim::MessageType::kPingRequest: {
      auto& ping = static_cast<protocol::PingRequest&>(*msg);
      auto pong = std::make_unique<protocol::PingResponse>();
      pong->from = id_;
      pong->to = ping.from;
      pong->seq = ping.seq;
      pong->sent_at = ping.sent_at;
      network_->Send(std::move(pong));
      return;
    }
    default:
      GEOTP_CHECK(false, "yugabyte: unknown message");
  }
}

YbTabletNode::Txn* YbTabletNode::FindTxn(TxnId id) {
  auto it = txns_.find(id);
  return it == txns_.end() ? nullptr : &it->second;
}

// ---------------------------------------------------------------------------
// Coordinator role
// ---------------------------------------------------------------------------

void YbTabletNode::OnClientRound(const ClientRoundRequest& req) {
  TxnId id = req.txn_id;
  if (id == kInvalidTxn) {
    // Ordinal derived from the node id so coordinators never collide.
    id = MakeTxnId(static_cast<uint32_t>(100 + id_), next_seq_++);
    Txn txn;
    txn.id = id;
    txn.client_tag = req.client_tag;
    txn.client = req.from;
    txn.conflict_retries_left = config_.conflict_retries;
    txns_.emplace(id, std::move(txn));
  }
  Txn* txn = FindTxn(id);
  GEOTP_CHECK(txn != nullptr, "round for unknown txn");
  if (txn->aborting) return;
  txn->pending_ops = req.ops;
  txn->round_values.assign(req.ops.size(), 0);

  // Group by owner tablet.
  std::map<NodeId, std::vector<std::pair<StagedOp, size_t>>> groups;
  for (size_t i = 0; i < req.ops.size(); ++i) {
    const ClientOp& cop = req.ops[i];
    StagedOp sop;
    sop.key = cop.key;
    sop.is_write = cop.is_write;
    // Deltas resolve at the owner against the committed value.
    sop.write_value = cop.value;
    groups[catalog_->Route(cop.key)].emplace_back(sop, i);
  }
  txn->outstanding = groups.size();
  if (groups.size() > 1 || groups.begin()->first != id_) {
    txn->single_shard = false;
  }

  for (auto& [node, ops_slots] : groups) {
    std::vector<StagedOp> ops;
    std::vector<size_t> slots;
    for (auto& [op, slot] : ops_slots) {
      ops.push_back(op);
      slots.push_back(slot);
    }
    // Mark participation at dispatch: the node may install intents even if
    // the transaction later aborts before its response is processed, and
    // AbortTxn must clean them up.
    txn->participants[node] = true;
    if (node == id_) {
      DispatchLocalBatch(id, std::move(ops), std::move(slots));
    } else {
      DispatchRemoteBatch(id, node, std::move(ops), std::move(slots));
    }
  }
}

void YbTabletNode::DispatchLocalBatch(TxnId id, std::vector<StagedOp> ops,
                                      std::vector<size_t> slots) {
  // Local fast path: consensus append + per-op work.
  const Micros cost =
      config_.consensus_cost +
      static_cast<Micros>(ops.size()) * config_.cost.write_cost;
  loop()->Schedule(cost, [this, id, ops = std::move(ops),
                          slots = std::move(slots)]() {
    Txn* txn = FindTxn(id);
    if (txn == nullptr || txn->aborting) return;
    std::vector<ReadResult> results;
    Status st = ApplyBatchLocally(id, ops, &results);
    if (!st.ok()) {
      stats_.intent_conflicts++;
      // Wait-on-conflict: retry internally before aborting to the client.
      if (txn->conflict_retries_left > 0) {
        txn->conflict_retries_left--;
        loop()->Schedule(config_.conflict_backoff, [this, id, ops, slots]() {
          Txn* txn = FindTxn(id);
          if (txn == nullptr || txn->aborting) return;
          DispatchLocalBatch(id, ops, slots);
        });
        return;
      }
      AbortTxn(*txn);
      return;
    }
    for (size_t i = 0; i < ops.size() && i < results.size(); ++i) {
      txn->round_values[slots[i]] = results[i].value;
    }
    CompleteRoundPart(*txn);
  });
}

void YbTabletNode::DispatchRemoteBatch(TxnId id, NodeId target,
                                       std::vector<StagedOp> ops,
                                       std::vector<size_t> slots) {
  const uint64_t req_id = next_req_id_++;
  PendingBatch pending;
  pending.txn = id;
  pending.target = target;
  pending.ops = ops;
  pending.slots = std::move(slots);
  batch_reqs_[req_id] = std::move(pending);
  auto batch = std::make_unique<YbBatchRequest>();
  batch->from = id_;
  batch->to = target;
  batch->txn = id;
  batch->req_id = req_id;
  batch->ops = std::move(ops);
  network_->Send(std::move(batch));
}

void YbTabletNode::CompleteRoundPart(Txn& txn) {
  if (--txn.outstanding > 0) return;
  auto round = std::make_unique<ClientRoundResponse>();
  round->from = id_;
  round->to = txn.client;
  round->client_tag = txn.client_tag;
  round->txn_id = txn.id;
  round->status = Status::OK();
  round->values = txn.round_values;
  network_->Send(std::move(round));
}

void YbTabletNode::OnBatchResponse(const YbBatchResponse& resp) {
  auto req_it = batch_reqs_.find(resp.req_id);
  if (req_it == batch_reqs_.end()) return;
  PendingBatch pending = std::move(req_it->second);
  batch_reqs_.erase(req_it);
  Txn* txn = FindTxn(pending.txn);
  if (txn == nullptr || txn->aborting) return;
  if (!resp.status.ok()) {
    stats_.intent_conflicts++;
    if (txn->conflict_retries_left > 0) {
      txn->conflict_retries_left--;
      const TxnId id = pending.txn;
      loop()->Schedule(config_.conflict_backoff,
                       [this, pending = std::move(pending)]() {
                         Txn* txn = FindTxn(pending.txn);
                         if (txn == nullptr || txn->aborting) return;
                         DispatchRemoteBatch(pending.txn, pending.target,
                                             pending.ops, pending.slots);
                       });
      (void)id;
      return;
    }
    AbortTxn(*txn);
    return;
  }
  // One result per op, in op order (writes return the written value).
  for (size_t i = 0; i < pending.slots.size() && i < resp.results.size();
       ++i) {
    txn->round_values[pending.slots[i]] = resp.results[i].value;
  }
  CompleteRoundPart(*txn);
}

void YbTabletNode::OnClientFinish(const ClientFinishRequest& req) {
  Txn* txn = FindTxn(req.txn_id);
  if (txn == nullptr) return;
  if (txn->aborting) return;
  if (!req.commit) {
    AbortTxn(*txn);
    return;
  }
  // Commit: flip the local transaction status record (consensus write),
  // respond to the client immediately, resolve intents asynchronously.
  const TxnId id = txn->id;
  loop()->Schedule(config_.consensus_cost + config_.cost.commit_fsync_cost,
                   [this, id]() {
                     Txn* txn = FindTxn(id);
                     if (txn == nullptr) return;
                     if (txn->single_shard) {
                       stats_.single_shard++;
                     } else {
                       stats_.distributed++;
                     }
                     for (auto& [node, has_intents] : txn->participants) {
                       if (!has_intents) continue;
                       if (node == id_) {
                         store_.CommitIntents(id);
                       } else {
                         auto resolve = std::make_unique<YbResolveRequest>();
                         resolve->from = id_;
                         resolve->to = node;
                         resolve->txn = id;
                         resolve->commit = true;
                         network_->Send(std::move(resolve));
                       }
                     }
                     FinishTxn(*txn, /*committed=*/true);
                   });
}

void YbTabletNode::AbortTxn(Txn& txn) {
  txn.aborting = true;
  for (auto& [node, has_intents] : txn.participants) {
    if (!has_intents) continue;
    if (node == id_) {
      store_.AbortIntents(txn.id);
    } else {
      auto resolve = std::make_unique<YbResolveRequest>();
      resolve->from = id_;
      resolve->to = node;
      resolve->txn = txn.id;
      resolve->commit = false;
      network_->Send(std::move(resolve));
    }
  }
  FinishTxn(txn, /*committed=*/false);
}

void YbTabletNode::FinishTxn(Txn& txn, bool committed) {
  if (committed) {
    stats_.committed++;
  } else {
    stats_.aborted++;
  }
  auto result = std::make_unique<ClientTxnResult>();
  result->from = id_;
  result->to = txn.client;
  result->client_tag = txn.client_tag;
  result->txn_id = txn.id;
  result->status =
      committed ? Status::OK() : Status::Conflict("intent conflict");
  network_->Send(std::move(result));
  txns_.erase(txn.id);
}

// ---------------------------------------------------------------------------
// Tablet role
// ---------------------------------------------------------------------------

Status YbTabletNode::ApplyBatchLocally(TxnId txn,
                                       const std::vector<StagedOp>& ops,
                                       std::vector<ReadResult>* results) {
  for (const StagedOp& op : ops) {
    if (op.is_write) {
      auto current = store_.Get(op.key);
      const int64_t final_value = current->value + op.write_value;
      Status st = store_.PutIntent(op.key, txn, final_value);
      if (!st.ok()) return st;  // fail-fast on foreign intent
      results->push_back(ReadResult{final_value, current->version});
    } else {
      auto rec = store_.Get(op.key);
      results->push_back(ReadResult{rec->value, rec->version});
    }
  }
  return Status::OK();
}

void YbTabletNode::OnBatch(const YbBatchRequest& req) {
  const Micros cost =
      config_.consensus_cost +
      static_cast<Micros>(req.ops.size()) * config_.cost.write_cost;
  auto ops = req.ops;
  const NodeId reply_to = req.from;
  const TxnId txn = req.txn;
  const uint64_t req_id = req.req_id;
  loop()->Schedule(cost, [this, ops, reply_to, txn, req_id]() {
    auto resp = std::make_unique<YbBatchResponse>();
    resp->from = id_;
    resp->to = reply_to;
    resp->txn = txn;
    resp->req_id = req_id;
    std::vector<ReadResult> results;
    // Partial intents from a conflicting batch are left in place: the
    // coordinator either retries (idempotent re-install) or aborts the
    // transaction, whose resolve message cleans every intent up.
    Status st = ApplyBatchLocally(txn, ops, &results);
    resp->status = std::move(st);
    resp->results = std::move(results);
    network_->Send(std::move(resp));
  });
}

void YbTabletNode::OnResolve(const YbResolveRequest& req) {
  if (req.commit) {
    store_.CommitIntents(req.txn);
  } else {
    store_.AbortIntents(req.txn);
  }
}

}  // namespace baselines
}  // namespace geotp
