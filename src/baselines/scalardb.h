// ScalarDbNode: a ScalarDB-style universal transaction manager.
//
// Unlike the XA middleware, ScalarDB does not use the transactional
// capabilities of the underlying data sources (paper §VII-B): it reads
// records with versions during execution, buffers writes, and runs a
// consensus-commit protocol at commit time — validate versions + install
// intents (prepare), write the coordinator commit-state record, promote
// intents (commit). All concurrency control happens at the DM, which is
// what limits its scalability in the paper's Fig. 5.
//
// ScalarDB+ (paper §VII-A1 ④) layers GeoTP's latency-aware scheduling on
// top: read and prepare dispatches are postponed per Eq. 3 so that
// low-latency stores hold their intents (and expose their read versions)
// for the minimum span, and the hotspot footprint drives late transaction
// admission.
#ifndef GEOTP_BASELINES_SCALARDB_H_
#define GEOTP_BASELINES_SCALARDB_H_

#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "baselines/store_messages.h"
#include "core/geo_scheduler.h"
#include "core/hotspot_footprint.h"
#include "core/latency_monitor.h"
#include "middleware/catalog.h"
#include "protocol/messages.h"
#include "sim/network.h"

namespace geotp {
namespace baselines {

struct ScalarDbConfig {
  bool plus = false;  ///< ScalarDB+ : latency-aware scheduling + heuristics
  Micros analysis_cost = 300;
  Micros commit_state_cost = 800;  ///< coordinator-table commit record write
  core::LatencyMonitorConfig monitor;
  core::FootprintConfig footprint;
  core::AdmissionConfig admission;
};

struct ScalarDbStats {
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t prepare_conflicts = 0;
  uint64_t admission_blocks = 0;
};

class ScalarDbNode {
 public:
  ScalarDbNode(NodeId id, sim::Network* network, middleware::Catalog catalog,
               ScalarDbConfig config);
  ~ScalarDbNode();

  void Attach();

  NodeId id() const { return id_; }
  const ScalarDbStats& stats() const { return stats_; }
  sim::EventLoop* loop() { return network_->loop(); }

 private:
  struct Staged {
    std::vector<StagedOp> ops;          ///< per participant, version-filled
    std::vector<size_t> op_slots;       ///< positions in the client round
    bool read_outstanding = false;
    bool prepare_outstanding = false;
    bool prepared_ok = false;
    bool decision_outstanding = false;
  };

  struct Txn {
    TxnId id = kInvalidTxn;
    uint64_t client_tag = 0;
    NodeId client = kInvalidNode;
    std::map<NodeId, Staged> participants;
    std::vector<int64_t> round_values;
    std::vector<protocol::ClientOp> pending_ops;
    bool aborting = false;
    bool commit_requested = false;
    size_t outstanding = 0;
    int admission_attempts = 0;
    uint64_t round_seq = 0;
  };

  void HandleMessage(std::unique_ptr<sim::MessageBase> msg);
  void OnClientRound(const protocol::ClientRoundRequest& req);
  void PlanRound(TxnId id);
  void OnReadResponse(const StoreReadResponse& resp);
  void OnClientFinish(const protocol::ClientFinishRequest& req);
  void OnPrepareResponse(const StorePrepareResponse& resp);
  void OnDecisionAck(const StoreDecisionAck& ack);
  void DispatchDecision(Txn& txn, bool commit);
  void FinishTxn(Txn& txn, bool committed);

  Txn* FindTxn(TxnId id);

  NodeId id_;
  sim::Network* network_;
  middleware::Catalog catalog_;
  ScalarDbConfig config_;
  std::unique_ptr<core::HotspotFootprint> footprint_;
  std::unique_ptr<core::LatencyMonitor> monitor_;
  std::unique_ptr<core::GeoScheduler> scheduler_;
  Rng rng_;
  ScalarDbStats stats_;
  uint64_t next_seq_ = 1;
  uint64_t next_req_id_ = 1;
  std::unordered_map<TxnId, Txn> txns_;
  std::unordered_map<uint64_t, std::pair<TxnId, NodeId>> read_reqs_;
};

}  // namespace baselines
}  // namespace geotp

#endif  // GEOTP_BASELINES_SCALARDB_H_
