#include "baselines/store_node.h"

#include <utility>

#include "common/logging.h"

namespace geotp {
namespace baselines {

StoreNode::StoreNode(NodeId id, sim::Network* network,
                     storage::EngineConfig cost_model)
    : id_(id), network_(network), cost_(cost_model) {}

void StoreNode::Attach() {
  network_->RegisterNode(id_, [this](std::unique_ptr<sim::MessageBase> msg) {
    HandleMessage(std::move(msg));
  });
}

void StoreNode::HandleMessage(std::unique_ptr<sim::MessageBase> msg) {
  switch (msg->type()) {
    case sim::MessageType::kStoreReadRequest:
      OnRead(static_cast<StoreReadRequest&>(*msg));
      return;
    case sim::MessageType::kStorePrepareRequest:
      OnPrepare(static_cast<StorePrepareRequest&>(*msg));
      return;
    case sim::MessageType::kStoreDecisionRequest:
      OnDecision(static_cast<StoreDecisionRequest&>(*msg));
      return;
    case sim::MessageType::kPingRequest: {
      auto& ping = static_cast<protocol::PingRequest&>(*msg);
      auto pong = std::make_unique<protocol::PingResponse>();
      pong->from = id_;
      pong->to = ping.from;
      pong->seq = ping.seq;
      pong->sent_at = ping.sent_at;
      network_->Send(std::move(pong));
      return;
    }
    default:
      GEOTP_CHECK(false, "store node " << id_ << ": unknown message");
  }
}

void StoreNode::OnRead(const StoreReadRequest& req) {
  const Micros cost =
      cost_.read_cost * static_cast<Micros>(req.keys.size());
  auto keys = req.keys;
  const NodeId reply_to = req.from;
  const TxnId txn = req.txn;
  const uint64_t req_id = req.req_id;
  loop()->Schedule(cost, [this, keys, reply_to, txn, req_id]() {
    auto resp = std::make_unique<StoreReadResponse>();
    resp->from = id_;
    resp->to = reply_to;
    resp->txn = txn;
    resp->req_id = req_id;
    resp->status = Status::OK();
    for (const RecordKey& key : keys) {
      auto rec = store_.Get(key);
      resp->results.push_back(ReadResult{rec->value, rec->version});
      stats_.reads++;
    }
    network_->Send(std::move(resp));
  });
}

void StoreNode::OnPrepare(const StorePrepareRequest& req) {
  const Micros cost =
      cost_.write_cost * static_cast<Micros>(req.ops.size()) +
      cost_.prepare_fsync_cost;
  auto ops = req.ops;
  const NodeId reply_to = req.from;
  const TxnId txn = req.txn;
  loop()->Schedule(cost, [this, ops, reply_to, txn]() {
    Status status = Status::OK();
    for (const StagedOp& op : ops) {
      // Consensus commit: every accessed record must still carry the
      // version the transaction read, and must not hold a foreign intent.
      Status st = store_.ValidateVersion(op.key, txn, op.expected_version);
      if (st.ok() && op.is_write) {
        st = store_.PutIntent(op.key, txn, op.write_value);
      }
      if (!st.ok()) {
        status = st;
        break;
      }
    }
    if (status.ok()) {
      stats_.prepares_ok++;
    } else {
      stats_.prepare_conflicts++;
      store_.AbortIntents(txn);
    }
    auto resp = std::make_unique<StorePrepareResponse>();
    resp->from = id_;
    resp->to = reply_to;
    resp->txn = txn;
    resp->status = std::move(status);
    network_->Send(std::move(resp));
  });
}

void StoreNode::OnDecision(const StoreDecisionRequest& req) {
  const Micros cost = req.commit ? cost_.commit_fsync_cost : 0;
  const NodeId reply_to = req.from;
  const TxnId txn = req.txn;
  const bool commit = req.commit;
  loop()->Schedule(cost, [this, reply_to, txn, commit]() {
    if (commit) {
      store_.CommitIntents(txn);
      stats_.commits++;
    } else {
      store_.AbortIntents(txn);
      stats_.aborts++;
    }
    auto ack = std::make_unique<StoreDecisionAck>();
    ack->from = id_;
    ack->to = reply_to;
    ack->txn = txn;
    ack->commit = commit;
    network_->Send(std::move(ack));
  });
}

}  // namespace baselines
}  // namespace geotp
