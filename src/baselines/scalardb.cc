#include "baselines/scalardb.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace geotp {
namespace baselines {

using protocol::ClientFinishRequest;
using protocol::ClientOp;
using protocol::ClientRoundRequest;
using protocol::ClientRoundResponse;
using protocol::ClientTxnResult;

ScalarDbNode::ScalarDbNode(NodeId id, sim::Network* network,
                           middleware::Catalog catalog, ScalarDbConfig config)
    : id_(id),
      network_(network),
      catalog_(std::move(catalog)),
      config_(std::move(config)),
      footprint_(std::make_unique<core::HotspotFootprint>(config_.footprint)),
      monitor_(std::make_unique<core::LatencyMonitor>(
          id, network, network->loop(), catalog_.AllDataSources(),
          config_.monitor)),
      rng_(0x5CA1A3DB + id) {
  core::SchedulerConfig sched;
  if (config_.plus) {
    // Eq. 3 postponing over the monitor's latency estimates. The Eq. 9
    // admission heuristic models a lock wait queue (a_cnt - 1 waiters);
    // under ScalarDB's OCC there is no queue — accesses fail fast at
    // prepare — so admission is configurable and off by default here
    // (DESIGN.md documents the deviation).
    sched.policy = core::SchedulerPolicy::kLatencyAwareForecast;
    sched.forecast_scale = 0.0;  // pure Eq. 3 postponing
    sched.admission = config_.admission;
  } else {
    sched.policy = core::SchedulerPolicy::kImmediate;
  }
  scheduler_ = std::make_unique<core::GeoScheduler>(sched, monitor_.get(),
                                                    footprint_.get());
}

ScalarDbNode::~ScalarDbNode() = default;

void ScalarDbNode::Attach() {
  network_->RegisterNode(id_, [this](std::unique_ptr<sim::MessageBase> msg) {
    HandleMessage(std::move(msg));
  });
  if (config_.plus) monitor_->Start();
}

void ScalarDbNode::HandleMessage(std::unique_ptr<sim::MessageBase> msg) {
  switch (msg->type()) {
    case sim::MessageType::kClientRoundRequest:
      OnClientRound(static_cast<ClientRoundRequest&>(*msg));
      return;
    case sim::MessageType::kStoreReadResponse:
      OnReadResponse(static_cast<StoreReadResponse&>(*msg));
      return;
    case sim::MessageType::kClientFinishRequest:
      OnClientFinish(static_cast<ClientFinishRequest&>(*msg));
      return;
    case sim::MessageType::kStorePrepareResponse:
      OnPrepareResponse(static_cast<StorePrepareResponse&>(*msg));
      return;
    case sim::MessageType::kStoreDecisionAck:
      OnDecisionAck(static_cast<StoreDecisionAck&>(*msg));
      return;
    case sim::MessageType::kPingResponse:
      monitor_->OnPong(static_cast<protocol::PingResponse&>(*msg));
      return;
    default:
      GEOTP_CHECK(false, "scalardb: unknown message");
  }
}

ScalarDbNode::Txn* ScalarDbNode::FindTxn(TxnId id) {
  auto it = txns_.find(id);
  return it == txns_.end() ? nullptr : &it->second;
}

void ScalarDbNode::OnClientRound(const ClientRoundRequest& req) {
  TxnId id = req.txn_id;
  if (id == kInvalidTxn) {
    id = MakeTxnId(/*middleware_ordinal=*/1, next_seq_++);
    Txn txn;
    txn.id = id;
    txn.client_tag = req.client_tag;
    txn.client = req.from;
    txns_.emplace(id, std::move(txn));
  }
  Txn* txn = FindTxn(id);
  GEOTP_CHECK(txn != nullptr, "round for unknown txn");
  if (txn->aborting) return;
  txn->pending_ops = req.ops;
  txn->round_values.assign(req.ops.size(), 0);
  loop()->Schedule(config_.analysis_cost, [this, id]() { PlanRound(id); });
}

void ScalarDbNode::PlanRound(TxnId id) {
  Txn* txn = FindTxn(id);
  if (txn == nullptr || txn->aborting) return;

  std::map<NodeId, std::vector<std::pair<ClientOp, size_t>>> groups;
  for (size_t i = 0; i < txn->pending_ops.size(); ++i) {
    groups[catalog_.Route(txn->pending_ops[i].key)].emplace_back(
        txn->pending_ops[i], i);
  }

  std::vector<core::ParticipantPlanInput> inputs;
  for (const auto& [node, ops] : groups) {
    core::ParticipantPlanInput input;
    input.data_source = node;
    for (const auto& [op, slot] : ops) input.keys.push_back(op.key);
    inputs.push_back(std::move(input));
  }

  const bool allow_admission = config_.plus && txn->round_seq == 0;
  core::ScheduleDecision decision = scheduler_->ScheduleRound(
      inputs, allow_admission ? txn->admission_attempts : -1, rng_);
  if (allow_admission) {
    if (decision.verdict == core::AdmissionVerdict::kBlock) {
      stats_.admission_blocks++;
      txn->admission_attempts++;
      loop()->Schedule(decision.retry_backoff,
                       [this, id]() { PlanRound(id); });
      return;
    }
    if (decision.verdict == core::AdmissionVerdict::kAbort) {
      FinishTxn(*txn, /*committed=*/false);
      return;
    }
  }
  if (config_.plus) {
    for (const auto& input : inputs) footprint_->OnDispatch(input.keys);
  }

  txn->outstanding = groups.size();
  txn->round_seq++;
  size_t plan_idx = 0;
  for (auto& [node, ops] : groups) {
    Staged& staged = txn->participants[node];
    staged.read_outstanding = true;
    const uint64_t req_id = next_req_id_++;
    read_reqs_[req_id] = {id, node};

    std::vector<RecordKey> keys;
    for (const auto& [op, slot] : ops) {
      keys.push_back(op.key);
      StagedOp sop;
      sop.key = op.key;
      sop.is_write = op.is_write;
      sop.write_value = op.value;  // deltas resolved at read-response time
      staged.ops.push_back(sop);
      staged.op_slots.push_back(slot);
    }

    const Micros postpone = decision.plans[plan_idx++].postpone;
    const NodeId target = node;
    loop()->Schedule(postpone, [this, id, target, req_id, keys]() {
      Txn* txn = FindTxn(id);
      if (txn == nullptr || txn->aborting) return;
      auto req = std::make_unique<StoreReadRequest>();
      req->from = id_;
      req->to = target;
      req->txn = id;
      req->req_id = req_id;
      req->keys = keys;
      network_->Send(std::move(req));
    });
  }
}

void ScalarDbNode::OnReadResponse(const StoreReadResponse& resp) {
  auto req_it = read_reqs_.find(resp.req_id);
  if (req_it == read_reqs_.end()) return;
  const auto [txn_id, node] = req_it->second;
  read_reqs_.erase(req_it);
  Txn* txn = FindTxn(txn_id);
  if (txn == nullptr || txn->aborting) return;
  Staged& staged = txn->participants[node];
  staged.read_outstanding = false;

  // Record versions; resolve delta writes against the read values. The
  // staged entries for this round are the tail added in PlanRound.
  const size_t base = staged.ops.size() - resp.results.size();
  for (size_t i = 0; i < resp.results.size(); ++i) {
    StagedOp& sop = staged.ops[base + i];
    sop.expected_version = resp.results[i].version;
    const size_t slot = staged.op_slots[base + i];
    const ClientOp& cop = txn->pending_ops[slot];
    if (sop.is_write) {
      sop.write_value =
          cop.is_delta ? resp.results[i].value + cop.value : cop.value;
      txn->round_values[slot] = sop.write_value;
    } else {
      txn->round_values[slot] = resp.results[i].value;
    }
  }

  if (--txn->outstanding == 0) {
    auto round = std::make_unique<ClientRoundResponse>();
    round->from = id_;
    round->to = txn->client;
    round->client_tag = txn->client_tag;
    round->txn_id = txn->id;
    round->status = Status::OK();
    round->values = txn->round_values;
    network_->Send(std::move(round));
  }
}

void ScalarDbNode::OnClientFinish(const ClientFinishRequest& req) {
  Txn* txn = FindTxn(req.txn_id);
  if (txn == nullptr) return;
  txn->commit_requested = true;
  if (txn->aborting) return;
  if (!req.commit) {
    DispatchDecision(*txn, /*commit=*/false);
    return;
  }

  // Prepare: validate versions + install intents, latency-aware in Plus.
  std::vector<core::ParticipantPlanInput> inputs;
  for (const auto& [node, staged] : txn->participants) {
    core::ParticipantPlanInput input;
    input.data_source = node;
    for (const auto& op : staged.ops) input.keys.push_back(op.key);
    inputs.push_back(std::move(input));
  }
  core::ScheduleDecision decision =
      scheduler_->ScheduleRound(inputs, /*attempt=*/-1, rng_);

  const TxnId id = txn->id;
  txn->outstanding = txn->participants.size();
  size_t plan_idx = 0;
  for (auto& [node, staged] : txn->participants) {
    staged.prepare_outstanding = true;
    const Micros postpone = decision.plans[plan_idx++].postpone;
    const NodeId target = node;
    auto ops = staged.ops;
    loop()->Schedule(postpone, [this, id, target, ops]() {
      Txn* txn = FindTxn(id);
      if (txn == nullptr) return;
      auto req = std::make_unique<StorePrepareRequest>();
      req->from = id_;
      req->to = target;
      req->txn = id;
      req->ops = ops;
      network_->Send(std::move(req));
    });
  }
}

void ScalarDbNode::OnPrepareResponse(const StorePrepareResponse& resp) {
  Txn* txn = FindTxn(resp.txn);
  if (txn == nullptr) return;
  auto it = txn->participants.find(resp.from);
  if (it == txn->participants.end() || !it->second.prepare_outstanding) return;
  Staged& staged = it->second;
  staged.prepare_outstanding = false;
  staged.prepared_ok = resp.status.ok();
  if (!resp.status.ok()) {
    stats_.prepare_conflicts++;
    txn->aborting = true;
  }
  if (config_.plus) {
    // Footprint feedback: prepare success stands in for commit success.
    std::vector<RecordKey> keys;
    for (const auto& op : staged.ops) keys.push_back(op.key);
    footprint_->OnComplete(keys, /*measured_lel=*/0, resp.status.ok());
  }
  if (--txn->outstanding > 0) return;

  if (txn->aborting) {
    DispatchDecision(*txn, /*commit=*/false);
    return;
  }
  // Commit-state record (the coordinator table write), then promote.
  const TxnId id = txn->id;
  loop()->Schedule(config_.commit_state_cost, [this, id]() {
    Txn* txn = FindTxn(id);
    if (txn == nullptr) return;
    DispatchDecision(*txn, /*commit=*/true);
  });
}

void ScalarDbNode::DispatchDecision(Txn& txn, bool commit) {
  txn.aborting = !commit;
  txn.outstanding = 0;
  for (auto& [node, staged] : txn.participants) {
    staged.decision_outstanding = true;
    txn.outstanding++;
    auto req = std::make_unique<StoreDecisionRequest>();
    req->from = id_;
    req->to = node;
    req->txn = txn.id;
    req->commit = commit;
    network_->Send(std::move(req));
  }
  if (txn.outstanding == 0) FinishTxn(txn, commit);
}

void ScalarDbNode::OnDecisionAck(const StoreDecisionAck& ack) {
  Txn* txn = FindTxn(ack.txn);
  if (txn == nullptr) return;
  auto it = txn->participants.find(ack.from);
  if (it == txn->participants.end() || !it->second.decision_outstanding) {
    return;
  }
  it->second.decision_outstanding = false;
  if (--txn->outstanding == 0) FinishTxn(*txn, ack.commit);
}

void ScalarDbNode::FinishTxn(Txn& txn, bool committed) {
  if (committed) {
    stats_.committed++;
  } else {
    stats_.aborted++;
  }
  auto result = std::make_unique<ClientTxnResult>();
  result->from = id_;
  result->to = txn.client;
  result->client_tag = txn.client_tag;
  result->txn_id = txn.id;
  result->status =
      committed ? Status::OK() : Status::Conflict("consensus commit");
  network_->Send(std::move(result));
  txns_.erase(txn.id);
}

}  // namespace baselines
}  // namespace geotp
