#include "baselines/baseline_runners.h"

#include <memory>

#include "baselines/scalardb.h"
#include "baselines/store_node.h"
#include "baselines/yugabyte.h"
#include "common/logging.h"
#include "sim/topology.h"

namespace geotp {
namespace baselines {

using workload::ClientDriver;
using workload::DriverConfig;
using workload::ExperimentConfig;
using workload::ExperimentResult;
using workload::TpccConfig;
using workload::TpccGenerator;
using workload::WorkloadGenerator;
using workload::WorkloadKind;
using workload::YcsbConfig;
using workload::YcsbGenerator;

namespace {

std::unique_ptr<WorkloadGenerator> MakeGenerator(
    const ExperimentConfig& config, const std::vector<NodeId>& sources) {
  if (config.workload == WorkloadKind::kYcsb) {
    YcsbConfig ycsb = config.ycsb;
    ycsb.data_sources = sources;
    return std::make_unique<YcsbGenerator>(ycsb);
  }
  TpccConfig tpcc = config.tpcc;
  tpcc.data_sources = sources;
  return std::make_unique<TpccGenerator>(tpcc);
}

}  // namespace

ExperimentResult RunScalarDbExperiment(const ExperimentConfig& config) {
  sim::DefaultTopology topo =
      sim::DefaultTopology::Make(config.ds_rtts_ms, config.jitter_frac);
  sim::EventLoop loop;
  sim::Network network(&loop, topo.matrix, config.seed);

  std::vector<std::unique_ptr<StoreNode>> stores;
  for (NodeId node : topo.data_sources) {
    stores.push_back(std::make_unique<StoreNode>(node, &network));
    stores.back()->Attach();
  }

  auto generator = MakeGenerator(config, topo.data_sources);
  middleware::Catalog catalog;
  generator->RegisterTables(&catalog);

  ScalarDbConfig db_config;
  db_config.plus = config.system == workload::SystemKind::kScalarDbPlus;
  ScalarDbNode dm(topo.middleware, &network, std::move(catalog), db_config);
  dm.Attach();

  DriverConfig driver_config = config.driver;
  driver_config.seed = config.seed * 7919 + 17;
  ClientDriver driver(topo.client, &network, topo.middleware,
                      generator.get(), driver_config);
  driver.Attach();

  if (config.pre_run) config.pre_run(&loop, &network);
  driver.Start();
  loop.RunUntil(driver_config.warmup + driver_config.measure);

  ExperimentResult result;
  result.run = driver.stats();
  result.per_type = driver.type_stats();
  result.throughput_series = driver.series().Points();
  result.events_processed = loop.events_processed();
  result.network_messages = network.total_messages();
  return result;
}

ExperimentResult RunYugabyteExperiment(const ExperimentConfig& config) {
  sim::DefaultTopology topo =
      sim::DefaultTopology::Make(config.ds_rtts_ms, config.jitter_frac);
  sim::EventLoop loop;
  sim::Network network(&loop, topo.matrix, config.seed);

  auto generator = MakeGenerator(config, topo.data_sources);
  auto catalog = std::make_unique<middleware::Catalog>();
  generator->RegisterTables(catalog.get());

  std::vector<std::unique_ptr<YbTabletNode>> tablets;
  for (NodeId node : topo.data_sources) {
    tablets.push_back(std::make_unique<YbTabletNode>(
        node, &network, catalog.get(), YbConfig()));
    tablets.back()->Attach();
  }

  DriverConfig driver_config = config.driver;
  driver_config.seed = config.seed * 7919 + 17;
  // No middleware hop: the first key's owner coordinates the transaction.
  ClientDriver driver(topo.client, &network, topo.data_sources.front(),
                      generator.get(), driver_config);
  const middleware::Catalog* catalog_ptr = catalog.get();
  driver.SetRouter([catalog_ptr](const workload::TxnSpec& spec) {
    for (const auto& round : spec.rounds) {
      if (!round.empty()) return catalog_ptr->Route(round.front().key);
    }
    GEOTP_CHECK(false, "empty transaction");
    return kInvalidNode;
  });
  driver.Attach();

  if (config.pre_run) config.pre_run(&loop, &network);
  driver.Start();
  loop.RunUntil(driver_config.warmup + driver_config.measure);

  ExperimentResult result;
  result.run = driver.stats();
  result.per_type = driver.type_stats();
  result.throughput_series = driver.series().Points();
  result.events_processed = loop.events_processed();
  result.network_messages = network.total_messages();
  return result;
}

}  // namespace baselines
}  // namespace geotp
