// Messages for the non-XA baselines.
//
// ScalarDB treats data sources as plain (non-transactional) stores and
// runs its own concurrency control at the middleware ("consensus commit"):
// read records with versions, validate + install intents at prepare,
// promote at commit. YugabyteDB writes provisional records (intents)
// during execution and resolves them asynchronously after commit.
#ifndef GEOTP_BASELINES_STORE_MESSAGES_H_
#define GEOTP_BASELINES_STORE_MESSAGES_H_

#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "sim/network.h"

namespace geotp {
namespace baselines {

/// Versioned read of a batch of records.
struct StoreReadRequest : sim::MessageBase {
  sim::MessageType type() const override {
    return sim::MessageType::kStoreReadRequest;
  }
  TxnId txn = kInvalidTxn;
  uint64_t req_id = 0;
  std::vector<RecordKey> keys;
  size_t WireSize() const override { return 48 + keys.size() * 16; }
};

struct ReadResult {
  int64_t value = 0;
  uint64_t version = 0;
};

struct StoreReadResponse : sim::MessageBase {
  sim::MessageType type() const override {
    return sim::MessageType::kStoreReadResponse;
  }
  TxnId txn = kInvalidTxn;
  uint64_t req_id = 0;
  Status status;
  std::vector<ReadResult> results;
  size_t WireSize() const override { return 48 + results.size() * 16; }
};

/// One staged operation for prepare-time validation.
struct StagedOp {
  RecordKey key;
  uint64_t expected_version = 0;
  bool is_write = false;
  int64_t write_value = 0;
};

/// Consensus-commit prepare: validate read versions, install intents.
struct StorePrepareRequest : sim::MessageBase {
  sim::MessageType type() const override {
    return sim::MessageType::kStorePrepareRequest;
  }
  TxnId txn = kInvalidTxn;
  std::vector<StagedOp> ops;
  size_t WireSize() const override { return 48 + ops.size() * 32; }
};

struct StorePrepareResponse : sim::MessageBase {
  sim::MessageType type() const override {
    return sim::MessageType::kStorePrepareResponse;
  }
  TxnId txn = kInvalidTxn;
  Status status;
};

/// Promote (commit=true) or discard (commit=false) the txn's intents.
struct StoreDecisionRequest : sim::MessageBase {
  sim::MessageType type() const override {
    return sim::MessageType::kStoreDecisionRequest;
  }
  TxnId txn = kInvalidTxn;
  bool commit = true;
};

struct StoreDecisionAck : sim::MessageBase {
  sim::MessageType type() const override {
    return sim::MessageType::kStoreDecisionAck;
  }
  TxnId txn = kInvalidTxn;
  bool commit = true;
};

// ---------------------------------------------------------------------------
// Yugabyte-style tablet messages
// ---------------------------------------------------------------------------

/// Execute a batch at an owner tablet: reads return committed values;
/// writes install provisional intents immediately (fail-fast on conflict).
struct YbBatchRequest : sim::MessageBase {
  sim::MessageType type() const override {
    return sim::MessageType::kYbBatchRequest;
  }
  TxnId txn = kInvalidTxn;
  uint64_t req_id = 0;
  std::vector<StagedOp> ops;  ///< expected_version unused (pessimistic write)
  size_t WireSize() const override { return 48 + ops.size() * 32; }
};

struct YbBatchResponse : sim::MessageBase {
  sim::MessageType type() const override {
    return sim::MessageType::kYbBatchResponse;
  }
  TxnId txn = kInvalidTxn;
  uint64_t req_id = 0;
  Status status;
  std::vector<ReadResult> results;  ///< read ops only, in order
};

/// Asynchronous intent resolution after the status record committed.
struct YbResolveRequest : sim::MessageBase {
  sim::MessageType type() const override {
    return sim::MessageType::kYbResolveRequest;
  }
  TxnId txn = kInvalidTxn;
  bool commit = true;
};

}  // namespace baselines
}  // namespace geotp

#endif  // GEOTP_BASELINES_STORE_MESSAGES_H_
