// StoreNode: a plain versioned record store exposed over the network.
// This is what a data source looks like to ScalarDB: no transactions, just
// reads-with-version, conditional intent installation and intent
// promotion. Costs mirror the XA engine's cost model.
#ifndef GEOTP_BASELINES_STORE_NODE_H_
#define GEOTP_BASELINES_STORE_NODE_H_

#include <memory>

#include "baselines/store_messages.h"
#include "protocol/messages.h"
#include "sim/event_loop.h"
#include "sim/network.h"
#include "storage/engine.h"
#include "storage/versioned_store.h"

namespace geotp {
namespace baselines {

struct StoreNodeStats {
  uint64_t reads = 0;
  uint64_t prepares_ok = 0;
  uint64_t prepare_conflicts = 0;
  uint64_t commits = 0;
  uint64_t aborts = 0;
};

class StoreNode {
 public:
  StoreNode(NodeId id, sim::Network* network,
            storage::EngineConfig cost_model = storage::EngineConfig());

  void Attach();

  NodeId id() const { return id_; }
  storage::VersionedStore& store() { return store_; }
  const StoreNodeStats& stats() const { return stats_; }
  sim::EventLoop* loop() { return network_->loop(); }

 private:
  void HandleMessage(std::unique_ptr<sim::MessageBase> msg);
  void OnRead(const StoreReadRequest& req);
  void OnPrepare(const StorePrepareRequest& req);
  void OnDecision(const StoreDecisionRequest& req);

  NodeId id_;
  sim::Network* network_;
  storage::EngineConfig cost_;
  storage::VersionedStore store_;
  StoreNodeStats stats_;
};

}  // namespace baselines
}  // namespace geotp

#endif  // GEOTP_BASELINES_STORE_NODE_H_
