// Single-threaded discrete-event loop with virtual time.
//
// Every component in the simulation (middlewares, geo-agents, data sources,
// client terminals) runs as callbacks on this loop. Virtual time advances
// only when the loop dequeues the next event, so a 251 ms WAN round trip
// costs nothing in wall-clock terms and runs are fully deterministic.
#ifndef GEOTP_SIM_EVENT_LOOP_H_
#define GEOTP_SIM_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/types.h"
#include "runtime/runtime.h"

namespace geotp {
namespace sim {

/// Identifies a scheduled event so it can be cancelled (e.g. a lock-wait
/// timeout that is no longer needed once the lock is granted).
using EventId = runtime::TimerId;
constexpr EventId kInvalidEvent = runtime::kInvalidTimer;

/// Min-heap driven virtual-time event loop.
///
/// Events scheduled for the same instant fire in scheduling order (FIFO),
/// which keeps runs reproducible. Implements the runtime timer seam: in a
/// simulated deployment every actor's ITimer is this one shared loop.
class EventLoop : public runtime::ITimer {
 public:
  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Current virtual time.
  Micros Now() const override { return now_; }

  /// Schedules `fn` to run `delay` microseconds from now (>= 0).
  EventId Schedule(Micros delay, std::function<void()> fn) override;

  /// Schedules `fn` at an absolute virtual time (clamped to >= Now()).
  EventId ScheduleAt(Micros when, std::function<void()> fn) override;

  /// Cancels a pending event. Returns true if the event existed and had not
  /// fired yet. Cancelling an already-fired or unknown id is a no-op.
  bool Cancel(EventId id) override;

  /// Runs until the queue drains. Returns the number of events processed.
  uint64_t Run();

  /// Runs events with time <= `until`; afterwards Now() == max(until, Now()).
  uint64_t RunUntil(Micros until);

  /// Runs at most one event. Returns false if the queue is empty.
  bool Step();

  bool Empty() const { return queue_.size() == cancelled_.size(); }

  /// Total events processed since construction (CPU-work proxy, Fig. 6a).
  uint64_t events_processed() const { return events_processed_; }

  /// Hard stop: drops every pending event (used by experiment drivers when
  /// the measurement window closes).
  void Clear();

 private:
  struct Event {
    Micros when;
    uint64_t seq;
    EventId id;
    std::function<void()> fn;
  };
  struct EventCmp {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  Micros now_ = 0;
  uint64_t next_seq_ = 1;
  EventId next_id_ = 1;
  uint64_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventCmp> queue_;
  std::unordered_set<EventId> cancelled_;
  std::unordered_set<EventId> pending_;  // scheduled, not yet fired/cancelled
};

}  // namespace sim
}  // namespace geotp

#endif  // GEOTP_SIM_EVENT_LOOP_H_
