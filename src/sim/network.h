// Simulated message-passing network.
//
// Nodes register a handler; Send() samples the link latency and schedules
// delivery on the event loop. The network also counts messages and bytes
// per node, which the resource benchmarks use as a coordination-cost proxy.
#ifndef GEOTP_SIM_NETWORK_H_
#define GEOTP_SIM_NETWORK_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/random.h"
#include "common/types.h"
#include "sim/event_loop.h"
#include "sim/latency.h"

namespace geotp {
namespace sim {

/// Tag identifying each concrete message type so receivers can dispatch
/// with one switch instead of a dynamic_cast chain (the cast chains showed
/// up prominently in simulator profiles). Values cover every message in
/// src/protocol and src/baselines; sim itself never interprets them.
enum class MessageType : uint16_t {
  kUnknown = 0,
  // Client <-> middleware.
  kClientRoundRequest,
  kClientRoundResponse,
  kClientFinishRequest,
  kClientTxnResult,
  // Middleware <-> data source.
  kBranchExecuteRequest,
  kBranchExecuteResponse,
  kPrepareRequest,
  kPrepareBatch,
  kVoteMessage,
  kDecisionRequest,
  kDecisionBatch,
  kDecisionAck,
  kPeerAbortRequest,
  // Replication.
  kReplAppendRequest,
  kReplAppendAck,
  kReplVoteRequest,
  kReplVoteResponse,
  kLeaderAnnounce,
  kNotLeaderResponse,
  kFollowerReadRequest,
  kFollowerReadResponse,
  // Elastic sharding (src/sharding).
  kShardMigrateRequest,
  kShardMigrateCancel,
  kShardSnapshotChunk,
  kShardSnapshotAck,
  kShardDeltaBatch,
  kShardDeltaAck,
  kShardCutoverReady,
  kShardMigrateAborted,
  kShardMapUpdate,
  kShardRedirect,
  // Latency monitoring.
  kPingRequest,
  kPingResponse,
  // Baseline stores (src/baselines).
  kStoreReadRequest,
  kStoreReadResponse,
  kStorePrepareRequest,
  kStorePrepareResponse,
  kStoreDecisionRequest,
  kStoreDecisionAck,
  kYbBatchRequest,
  kYbBatchResponse,
  kYbResolveRequest,
};

/// Base class for anything sent over the simulated network. Concrete
/// message types live in src/protocol.
struct MessageBase {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  virtual ~MessageBase() = default;

  /// Dispatch tag; every concrete message overrides this.
  virtual MessageType type() const { return MessageType::kUnknown; }

  /// Approximate wire size, only used for traffic accounting.
  virtual size_t WireSize() const { return 64; }
};

/// Per-node traffic counters.
struct TrafficStats {
  uint64_t messages_sent = 0;
  uint64_t messages_received = 0;
  uint64_t bytes_sent = 0;
};

class Network {
 public:
  using Handler = std::function<void(std::unique_ptr<MessageBase>)>;

  Network(EventLoop* loop, LatencyMatrix matrix, uint64_t seed = 42);

  EventLoop* loop() { return loop_; }

  /// The latency matrix is mutable at runtime to model latency changes
  /// (Fig. 11b re-shapes links every 40 simulated seconds).
  LatencyMatrix& matrix() { return matrix_; }
  const LatencyMatrix& matrix() const { return matrix_; }

  int num_nodes() const { return matrix_.num_nodes(); }

  /// Registers the message handler for a node. Must be called before any
  /// message addressed to that node is delivered.
  void RegisterNode(NodeId node, Handler handler);

  /// Marks a node as crashed: messages to it are silently dropped until
  /// Restore() is called (used by the failure-recovery tests).
  void Partition(NodeId node);
  void Restore(NodeId node);
  bool IsPartitioned(NodeId node) const;

  /// Sends a message; delivery is scheduled after one sampled one-way delay.
  /// `msg->from` / `msg->to` must be filled in by the caller.
  void Send(std::unique_ptr<MessageBase> msg);

  const TrafficStats& StatsFor(NodeId node) const;
  uint64_t total_messages() const { return total_messages_; }

 private:
  EventLoop* loop_;
  LatencyMatrix matrix_;
  Rng rng_;
  std::vector<Handler> handlers_;
  std::vector<TrafficStats> stats_;
  std::vector<bool> partitioned_;
  uint64_t total_messages_ = 0;
};

}  // namespace sim
}  // namespace geotp

#endif  // GEOTP_SIM_NETWORK_H_
