// Simulated message-passing network.
//
// Nodes register a handler; Send() samples the link latency and schedules
// delivery on the event loop. The network also counts messages and bytes
// per node, which the resource benchmarks use as a coordination-cost proxy.
#ifndef GEOTP_SIM_NETWORK_H_
#define GEOTP_SIM_NETWORK_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/random.h"
#include "common/types.h"
#include "runtime/message.h"
#include "runtime/runtime.h"
#include "sim/event_loop.h"
#include "sim/latency.h"

namespace geotp {
namespace sim {

// MessageType / MessageBase moved to runtime/message.h so they are shared
// by every execution backend; aliased here because the whole protocol
// layer spells them sim::MessageType / sim::MessageBase.
using MessageType = runtime::MessageType;
using MessageBase = runtime::MessageBase;

/// Per-node traffic counters.
struct TrafficStats {
  uint64_t messages_sent = 0;
  uint64_t messages_received = 0;
  uint64_t bytes_sent = 0;
};

/// The simulated network implements the runtime transport seam: Send()
/// samples the link latency and schedules delivery on the event loop.
class Network : public runtime::ITransport {
 public:
  using Handler = runtime::ITransport::Handler;

  Network(EventLoop* loop, LatencyMatrix matrix, uint64_t seed = 42);

  EventLoop* loop() { return loop_; }

  /// The latency matrix is mutable at runtime to model latency changes
  /// (Fig. 11b re-shapes links every 40 simulated seconds).
  LatencyMatrix& matrix() { return matrix_; }
  const LatencyMatrix& matrix() const { return matrix_; }

  int num_nodes() const { return matrix_.num_nodes(); }

  /// Registers the message handler for a node. Must be called before any
  /// message addressed to that node is delivered.
  void RegisterNode(NodeId node, Handler handler) override;

  /// Marks a node as crashed: messages to it are silently dropped until
  /// Restore() is called (used by the failure-recovery tests).
  void Partition(NodeId node) override;
  void Restore(NodeId node) override;
  bool IsPartitioned(NodeId node) const override;

  /// Sends a message; delivery is scheduled after one sampled one-way delay.
  /// `msg->from` / `msg->to` must be filled in by the caller.
  void Send(std::unique_ptr<MessageBase> msg) override;

  const TrafficStats& StatsFor(NodeId node) const;
  uint64_t total_messages() const { return total_messages_; }

 private:
  EventLoop* loop_;
  LatencyMatrix matrix_;
  Rng rng_;
  std::vector<Handler> handlers_;
  std::vector<TrafficStats> stats_;
  std::vector<bool> partitioned_;
  uint64_t total_messages_ = 0;
};

}  // namespace sim
}  // namespace geotp

#endif  // GEOTP_SIM_NETWORK_H_
