#include "sim/topology.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace geotp {
namespace sim {

NodeId TopologyBuilder::AddNode(NodeRole role, std::string name,
                                std::string region) {
  NodeInfo info;
  info.id = static_cast<NodeId>(nodes_.size());
  info.role = role;
  info.name = std::move(name);
  info.region = std::move(region);
  nodes_.push_back(info);
  return info.id;
}

void TopologyBuilder::SetRttMs(NodeId a, NodeId b, double rtt_ms) {
  overrides_.push_back(Override{a, b, LinkSpec::FromRttMs(rtt_ms)});
}

void TopologyBuilder::SetRttMsJitter(NodeId a, NodeId b, double rtt_ms,
                                     double jitter_frac) {
  overrides_.push_back(
      Override{a, b, LinkSpec::FromRttMsJitter(rtt_ms, jitter_frac)});
}

LatencyMatrix TopologyBuilder::Build(double lan_rtt_ms,
                                     double default_wan_rtt_ms) const {
  LatencyMatrix matrix(num_nodes());
  for (NodeId a = 0; a < num_nodes(); ++a) {
    for (NodeId b = 0; b < num_nodes(); ++b) {
      if (a == b) continue;
      const bool same_region = nodes_[static_cast<size_t>(a)].region ==
                               nodes_[static_cast<size_t>(b)].region;
      matrix.SetDirected(
          a, b,
          LinkSpec::FromRttMs(same_region ? lan_rtt_ms : default_wan_rtt_ms));
    }
  }
  for (const auto& ov : overrides_) {
    matrix.SetSymmetric(ov.a, ov.b, ov.spec);
  }
  return matrix;
}

DefaultTopology DefaultTopology::Make(std::vector<double> ds_rtts_ms,
                                      double jitter_frac) {
  GEOTP_CHECK(!ds_rtts_ms.empty(), "need at least one data source");
  static const char* kRegions[] = {"beijing", "shanghai", "singapore",
                                   "london", "frankfurt", "oregon",
                                   "sydney", "saopaulo"};
  const size_t num_regions = sizeof(kRegions) / sizeof(kRegions[0]);

  TopologyBuilder builder;
  DefaultTopology topo;
  topo.client = builder.AddNode(NodeRole::kClient, "client", "beijing");
  topo.middleware = builder.AddNode(NodeRole::kMiddleware, "dm", "beijing");
  for (size_t i = 0; i < ds_rtts_ms.size(); ++i) {
    // A 0 ms RTT means co-located with the DM (same region → LAN latency).
    const char* region = ds_rtts_ms[i] <= 0.0
                             ? "beijing"
                             : kRegions[(i + 1) % num_regions];
    const NodeId ds = builder.AddNode(NodeRole::kDataSource,
                                      "ds" + std::to_string(i + 1), region);
    topo.data_sources.push_back(ds);
    if (ds_rtts_ms[i] > 0.0) {
      if (jitter_frac > 0.0) {
        builder.SetRttMsJitter(topo.middleware, ds, ds_rtts_ms[i],
                               jitter_frac);
      } else {
        builder.SetRttMs(topo.middleware, ds, ds_rtts_ms[i]);
      }
      // Client reaches remote data sources at the same cost as the DM
      // (client and DM are co-located in Beijing).
      builder.SetRttMs(topo.client, ds, ds_rtts_ms[i]);
    }
  }
  // Inter-data-source links (used by geo-agent early abort): approximate by
  // the triangle through their DM RTTs — |rtt_a - rtt_b| would be a lower
  // bound; the sum an upper bound. Use max(rtt_a, rtt_b) as a realistic
  // WAN distance between distinct regions.
  for (size_t i = 0; i < ds_rtts_ms.size(); ++i) {
    for (size_t j = i + 1; j < ds_rtts_ms.size(); ++j) {
      const double a = ds_rtts_ms[i];
      const double b = ds_rtts_ms[j];
      if (a <= 0.0 && b <= 0.0) continue;  // both co-located: LAN default
      builder.SetRttMs(topo.data_sources[i], topo.data_sources[j],
                       std::max(a, b));
    }
  }
  topo.nodes = builder.nodes();
  topo.matrix = builder.Build();
  return topo;
}

}  // namespace sim
}  // namespace geotp
