// Link latency models and the node-to-node latency matrix.
//
// The paper's testbed shapes WAN latency with `tc` (§VII-A3); here every
// directed link carries a LinkSpec describing its one-way delay
// distribution, and the matrix can be rewritten at virtual runtime to
// reproduce the random-latency (Fig. 11a) and online-adaptivity (Fig. 11b)
// experiments.
#ifndef GEOTP_SIM_LATENCY_H_
#define GEOTP_SIM_LATENCY_H_

#include <vector>

#include "common/random.h"
#include "common/types.h"

namespace geotp {
namespace sim {

/// Shape of the per-message latency distribution around the mean.
enum class JitterModel {
  kNone,      ///< always exactly the mean
  kGaussian,  ///< N(mean, stddev), clamped at min
  kUniform,   ///< U[mean - spread, mean + spread], spread = stddev
};

/// One directed link's delay model. All fields are one-way times.
struct LinkSpec {
  Micros one_way_mean = 0;
  Micros jitter_stddev = 0;
  JitterModel jitter = JitterModel::kNone;
  /// Lower bound for samples; physical links never deliver instantly.
  Micros min_one_way = 0;

  /// Convenience: a fixed-delay link from an RTT in milliseconds.
  static LinkSpec FromRttMs(double rtt_ms) {
    LinkSpec spec;
    spec.one_way_mean = MsToMicros(rtt_ms / 2.0);
    return spec;
  }

  /// Convenience: gaussian jitter expressed as a fraction of the mean.
  static LinkSpec FromRttMsJitter(double rtt_ms, double jitter_fraction);
};

/// Dense matrix of LinkSpec for all ordered node pairs. Self-links default
/// to zero latency (a node messaging itself is a local function call
/// deferred by one event).
class LatencyMatrix {
 public:
  explicit LatencyMatrix(int num_nodes);

  int num_nodes() const { return num_nodes_; }

  /// Sets both directions to the same spec.
  void SetSymmetric(NodeId a, NodeId b, const LinkSpec& spec);

  /// Sets a single directed link.
  void SetDirected(NodeId from, NodeId to, const LinkSpec& spec);

  const LinkSpec& Get(NodeId from, NodeId to) const;

  /// Samples the one-way delay for one message on the link.
  Micros SampleOneWay(NodeId from, NodeId to, Rng& rng) const;

  /// Thread-safe sampling for callers without an actor-owned Rng (loopback
  /// runtime threads injecting artificial delay, bench warmers). Draws from
  /// ThreadLocalRng(), so concurrent callers never share generator state;
  /// the deterministic simulator must keep passing its own Rng above.
  Micros SampleOneWay(NodeId from, NodeId to) const {
    return SampleOneWay(from, to, ThreadLocalRng());
  }

  /// Mean RTT (both directions' means summed) — what an oracle would report;
  /// the middleware's LatencyMonitor estimates this by pinging.
  Micros MeanRtt(NodeId a, NodeId b) const;

 private:
  int num_nodes_;
  std::vector<LinkSpec> links_;  // row-major [from * n + to]
};

}  // namespace sim
}  // namespace geotp

#endif  // GEOTP_SIM_LATENCY_H_
