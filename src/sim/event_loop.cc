#include "sim/event_loop.h"

#include <utility>

#include "common/logging.h"

namespace geotp {
namespace sim {

EventId EventLoop::Schedule(Micros delay, std::function<void()> fn) {
  if (delay < 0) delay = 0;
  return ScheduleAt(now_ + delay, std::move(fn));
}

EventId EventLoop::ScheduleAt(Micros when, std::function<void()> fn) {
  if (when < now_) when = now_;
  const EventId id = next_id_++;
  queue_.push(Event{when, next_seq_++, id, std::move(fn)});
  pending_.insert(id);
  return id;
}

bool EventLoop::Cancel(EventId id) {
  if (id == kInvalidEvent || pending_.erase(id) == 0) return false;
  // Lazy cancellation: the heap entry stays put and is skipped on pop.
  cancelled_.insert(id);
  return true;
}

bool EventLoop::Step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (cancelled_.erase(ev.id) > 0) continue;  // skip cancelled
    pending_.erase(ev.id);
    GEOTP_CHECK(ev.when >= now_, "time went backwards");
    now_ = ev.when;
    ++events_processed_;
    ev.fn();
    return true;
  }
  return false;
}

uint64_t EventLoop::Run() {
  uint64_t n = 0;
  while (Step()) ++n;
  return n;
}

uint64_t EventLoop::RunUntil(Micros until) {
  uint64_t n = 0;
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (cancelled_.count(top.id) > 0) {
      cancelled_.erase(top.id);
      queue_.pop();
      continue;
    }
    if (top.when > until) break;
    Step();
    ++n;
  }
  if (now_ < until) now_ = until;
  return n;
}

void EventLoop::Clear() {
  while (!queue_.empty()) queue_.pop();
  cancelled_.clear();
  pending_.clear();
}

}  // namespace sim
}  // namespace geotp
