// Topology builder: names the simulated nodes and produces the latency
// matrix. Provides the paper's default deployment (§VII-A3): client + DM +
// one data node in Beijing, data nodes in Shanghai, Singapore and London
// with 27 / 73 / 251 ms RTTs to the DM.
#ifndef GEOTP_SIM_TOPOLOGY_H_
#define GEOTP_SIM_TOPOLOGY_H_

#include <string>
#include <vector>

#include "common/types.h"
#include "sim/latency.h"

namespace geotp {
namespace sim {

enum class NodeRole { kClient, kMiddleware, kDataSource };

struct NodeInfo {
  NodeId id = kInvalidNode;
  NodeRole role = NodeRole::kDataSource;
  std::string name;
  std::string region;
};

/// Incrementally builds a node table and latency matrix.
class TopologyBuilder {
 public:
  /// Adds a node; returns its id.
  NodeId AddNode(NodeRole role, std::string name, std::string region);

  /// Declares the symmetric RTT (ms) between two nodes.
  void SetRttMs(NodeId a, NodeId b, double rtt_ms);

  /// Declares the symmetric RTT with gaussian jitter (fraction of mean).
  void SetRttMsJitter(NodeId a, NodeId b, double rtt_ms, double jitter_frac);

  /// Finalizes into a LatencyMatrix. Unset links default to the LAN RTT
  /// (nodes in the same region) or `default_wan_rtt_ms` otherwise.
  LatencyMatrix Build(double lan_rtt_ms = 0.5,
                      double default_wan_rtt_ms = 100.0) const;

  const std::vector<NodeInfo>& nodes() const { return nodes_; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }

 private:
  struct Override {
    NodeId a;
    NodeId b;
    LinkSpec spec;
  };
  std::vector<NodeInfo> nodes_;
  std::vector<Override> overrides_;
};

/// The paper's default 6-machine deployment. Node ids, in order:
/// 0 = client host (Beijing), 1 = middleware (Beijing),
/// 2..5 = data sources (Beijing / Shanghai / Singapore / London).
struct DefaultTopology {
  NodeId client = 0;
  NodeId middleware = 1;
  std::vector<NodeId> data_sources;  // {2,3,4,5}
  std::vector<NodeInfo> nodes;
  LatencyMatrix matrix{1};

  /// RTTs from the DM to each data source, in ms (paper: 0, 27, 73, 251).
  static DefaultTopology Make(std::vector<double> ds_rtts_ms = {0.0, 27.0,
                                                                73.0, 251.0},
                              double jitter_frac = 0.0);
};

}  // namespace sim
}  // namespace geotp

#endif  // GEOTP_SIM_TOPOLOGY_H_
