#include "sim/network.h"

#include <chrono>
#include <utility>

#include "common/logging.h"
#include "obs/profiler.h"

namespace geotp {
namespace sim {

Network::Network(EventLoop* loop, LatencyMatrix matrix, uint64_t seed)
    : loop_(loop),
      matrix_(std::move(matrix)),
      rng_(seed),
      handlers_(static_cast<size_t>(matrix_.num_nodes())),
      stats_(static_cast<size_t>(matrix_.num_nodes())),
      partitioned_(static_cast<size_t>(matrix_.num_nodes()), false) {}

void Network::RegisterNode(NodeId node, Handler handler) {
  GEOTP_CHECK(node >= 0 && node < num_nodes(), "node " << node);
  handlers_[static_cast<size_t>(node)] = std::move(handler);
}

void Network::Partition(NodeId node) {
  GEOTP_CHECK(node >= 0 && node < num_nodes(), "node " << node);
  partitioned_[static_cast<size_t>(node)] = true;
}

void Network::Restore(NodeId node) {
  GEOTP_CHECK(node >= 0 && node < num_nodes(), "node " << node);
  partitioned_[static_cast<size_t>(node)] = false;
}

bool Network::IsPartitioned(NodeId node) const {
  GEOTP_CHECK(node >= 0 && node < num_nodes(), "node " << node);
  return partitioned_[static_cast<size_t>(node)];
}

void Network::Send(std::unique_ptr<MessageBase> msg) {
  const NodeId from = msg->from;
  const NodeId to = msg->to;
  GEOTP_CHECK(from >= 0 && from < num_nodes(), "from " << from);
  GEOTP_CHECK(to >= 0 && to < num_nodes(), "to " << to);
  // A partitioned sender cannot emit messages either.
  if (partitioned_[static_cast<size_t>(from)]) return;

  auto& sender_stats = stats_[static_cast<size_t>(from)];
  sender_stats.messages_sent++;
  sender_stats.bytes_sent += msg->WireSize();
  ++total_messages_;

  const Micros delay = matrix_.SampleOneWay(from, to, rng_);
  // std::function requires copyable callables, so park the unique_ptr in a
  // shared holder; the event fires exactly once and moves it out.
  auto holder = std::make_shared<std::unique_ptr<MessageBase>>(std::move(msg));
  loop_->Schedule(delay, [this, to, holder]() {
    if (partitioned_[static_cast<size_t>(to)]) return;  // dropped at the NIC
    auto& handler = handlers_[static_cast<size_t>(to)];
    GEOTP_CHECK(handler != nullptr, "no handler for node " << to);
    stats_[static_cast<size_t>(to)].messages_received++;
    obs::Profiler& profiler = obs::GlobalProfiler();
    if (!profiler.enabled()) {
      handler(std::move(*holder));
      return;
    }
    // Sim-perf profile (ROADMAP direction 4): host time the simulator
    // spends handling each message kind — virtual time is stopped here,
    // so this is pure simulator overhead attribution.
    const int msg_type = static_cast<int>((*holder)->type());
    const auto t0 = std::chrono::steady_clock::now();
    handler(std::move(*holder));
    const auto t1 = std::chrono::steady_clock::now();
    profiler.RecordHandler(
        msg_type,
        static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()));
  });
}

const TrafficStats& Network::StatsFor(NodeId node) const {
  GEOTP_CHECK(node >= 0 && node < num_nodes(), "node " << node);
  return stats_[static_cast<size_t>(node)];
}

}  // namespace sim
}  // namespace geotp
