#include "sim/latency.h"

#include <algorithm>

#include "common/logging.h"

namespace geotp {
namespace sim {

LinkSpec LinkSpec::FromRttMsJitter(double rtt_ms, double jitter_fraction) {
  LinkSpec spec;
  spec.one_way_mean = MsToMicros(rtt_ms / 2.0);
  spec.jitter_stddev =
      static_cast<Micros>(static_cast<double>(spec.one_way_mean) * jitter_fraction);
  spec.jitter = JitterModel::kGaussian;
  spec.min_one_way = spec.one_way_mean / 4;
  return spec;
}

LatencyMatrix::LatencyMatrix(int num_nodes)
    : num_nodes_(num_nodes),
      links_(static_cast<size_t>(num_nodes) * num_nodes) {}

void LatencyMatrix::SetSymmetric(NodeId a, NodeId b, const LinkSpec& spec) {
  SetDirected(a, b, spec);
  SetDirected(b, a, spec);
}

void LatencyMatrix::SetDirected(NodeId from, NodeId to, const LinkSpec& spec) {
  GEOTP_CHECK(from >= 0 && from < num_nodes_ && to >= 0 && to < num_nodes_,
              "link " << from << "->" << to);
  links_[static_cast<size_t>(from) * num_nodes_ + to] = spec;
}

const LinkSpec& LatencyMatrix::Get(NodeId from, NodeId to) const {
  GEOTP_CHECK(from >= 0 && from < num_nodes_ && to >= 0 && to < num_nodes_,
              "link " << from << "->" << to);
  return links_[static_cast<size_t>(from) * num_nodes_ + to];
}

Micros LatencyMatrix::SampleOneWay(NodeId from, NodeId to, Rng& rng) const {
  const LinkSpec& spec = Get(from, to);
  Micros sample = spec.one_way_mean;
  switch (spec.jitter) {
    case JitterModel::kNone:
      break;
    case JitterModel::kGaussian:
      sample = static_cast<Micros>(
          rng.NextGaussian(static_cast<double>(spec.one_way_mean),
                           static_cast<double>(spec.jitter_stddev)));
      break;
    case JitterModel::kUniform: {
      const Micros lo = spec.one_way_mean - spec.jitter_stddev;
      const Micros hi = spec.one_way_mean + spec.jitter_stddev;
      sample = rng.NextInt(lo, std::max(lo, hi));
      break;
    }
  }
  return std::max(sample, spec.min_one_way);
}

Micros LatencyMatrix::MeanRtt(NodeId a, NodeId b) const {
  return Get(a, b).one_way_mean + Get(b, a).one_way_mean;
}

}  // namespace sim
}  // namespace geotp
