#include "datasource/data_source.h"

#include <utility>

#include "common/logging.h"

namespace geotp {
namespace datasource {

using protocol::BranchExecuteRequest;
using protocol::BranchExecuteResponse;
using protocol::DecisionAck;
using protocol::DecisionBatch;
using protocol::DecisionItem;
using protocol::DecisionRequest;
using protocol::PeerAbortRequest;
using protocol::PingRequest;
using protocol::PingResponse;
using protocol::PrepareBatch;
using protocol::PrepareRequest;
using protocol::Vote;
using protocol::VoteMessage;

DataSourceNode::DataSourceNode(NodeId id, sim::Network* network,
                               DataSourceConfig config)
    : DataSourceNode(runtime::ActorEnv{id, network->loop(), network, nullptr},
                     config) {}

DataSourceNode::DataSourceNode(runtime::ActorEnv env, DataSourceConfig config)
    : id_(env.node),
      network_(env.transport),
      timer_(env.timer),
      wal_device_(env.storage != nullptr
                      ? env.storage->OpenStorage(env.node, "wal")
                      : std::make_unique<runtime::SimStableStorage>(
                            env.timer)),
      config_(config),
      engine_(config.engine),
      committer_(timer_, wal_device_.get(), config.group_commit),
      agent_(std::make_unique<GeoAgent>(this)),
      migrator_(std::make_unique<sharding::ShardMigrator>(this)) {
  committer_.set_on_fsync([this]() { engine_.NoteWalFsync(); });
}

void DataSourceNode::Attach() {
  network_->RegisterNode(id_, [this](std::unique_ptr<sim::MessageBase> msg) {
    HandleMessage(std::move(msg));
  });
  // Same executor-affinity rule as MiddlewareNode::Attach: announces sent by
  // Replicator::Start can draw same-tick replies on the actor thread, so the
  // start itself must run there rather than on the attaching thread.
  if (replicator_ != nullptr) {
    timer_->Schedule(0, [this]() { replicator_->Start(); });
  }
}

void DataSourceNode::EnableReplication(
    const replication::GroupConfig& group) {
  replicator_ = std::make_unique<replication::Replicator>(this, group);
}

obs::TraceContext DataSourceNode::BranchTrace(TxnId txn) const {
  auto it = branches_.find(txn);
  return it == branches_.end() ? obs::TraceContext{} : it->second.trace;
}

void DataSourceNode::RegisterMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) return;
  const std::string prefix = "ds." + std::to_string(id_) + ".";
  auto gauge = [&](const char* name, std::function<double()> fn) {
    registry->RegisterGauge(prefix + name, std::move(fn));
  };
  auto count = [](uint64_t v) { return static_cast<double>(v); };
  gauge("commits", [this, count]() { return count(stats_.commits); });
  gauge("rollbacks", [this, count]() { return count(stats_.rollbacks); });
  gauge("batches_executed",
        [this, count]() { return count(stats_.batches_executed); });
  gauge("ops_executed",
        [this, count]() { return count(stats_.ops_executed); });
  gauge("lock_timeouts",
        [this, count]() { return count(stats_.lock_timeouts); });
  gauge("decentralized_prepares",
        [this, count]() { return count(stats_.decentralized_prepares); });
  gauge("explicit_prepares",
        [this, count]() { return count(stats_.explicit_prepares); });
  gauge("early_aborts_sent",
        [this, count]() { return count(stats_.early_aborts_sent); });
  gauge("run_queue_rejections",
        [this, count]() { return count(stats_.run_queue_rejections); });
  gauge("inflight_branches",
        [this, count]() { return count(engine_.ActiveCount()); });
  gauge("wal_fsyncs",
        [this, count]() { return count(wal_device_->fsyncs()); });
  gauge("wal_bytes",
        [this, count]() { return count(wal_device_->bytes_flushed()); });
  // WAN frugality: payload bytes before/after the wire codec, across both
  // long-haul streams this node sources (log shipping + migration chunks).
  gauge("wan_bytes_raw", [this, count]() {
    uint64_t raw = migrator_->stats().wan_bytes_raw;
    if (replicator_ != nullptr) {
      raw += replicator_->stats().wan_bytes_raw +
             replicator_->shipper_stats().wan_bytes_raw;
    }
    return count(raw);
  });
  gauge("wan_bytes_wire", [this, count]() {
    uint64_t wire = migrator_->stats().wan_bytes_wire;
    if (replicator_ != nullptr) {
      wire += replicator_->stats().wan_bytes_wire +
              replicator_->shipper_stats().wan_bytes_wire;
    }
    return count(wire);
  });
}

void DataSourceNode::OnIngestApplied(uint64_t migration_id,
                                     uint64_t chunk_seq, uint64_t delta_seq,
                                     uint64_t content_hash) {
  migrator_->NoteIngestApplied(migration_id, chunk_seq, delta_seq,
                               content_hash);
}

void DataSourceNode::AfterLocalPrepare(const Xid& xid, NodeId coordinator,
                                       std::function<void()> deliver_vote) {
  // The quorum span covers the replication wait when the group has peers;
  // without replication it closes in the same tick (a pass-through), so a
  // sampled transaction's span chain is the same shape either way.
  obs::SpanHandle quorum = obs::kInvalidSpan;
  if (obs::GlobalTracer().enabled()) {
    const obs::TraceContext trace = BranchTrace(xid.txn_id);
    if (trace.valid()) {
      quorum = obs::GlobalTracer().BeginSpan(trace, "ds.quorum", id_,
                                             loop()->Now());
    }
  }
  auto deliver = [this, quorum,
                  deliver_vote = std::move(deliver_vote)]() {
    if (quorum != obs::kInvalidSpan) {
      obs::GlobalTracer().EndSpan(quorum, loop()->Now());
    }
    deliver_vote();
  };
  if (replicator_ != nullptr && replicator_->IsLeader()) {
    std::vector<protocol::ReplWrite> writes;
    for (const auto& [key, value] : engine_.WriteSetOf(xid)) {
      writes.push_back(protocol::ReplWrite{key, value});
    }
    replicator_->ReplicatePrepare(xid, std::move(writes), coordinator,
                                  std::move(deliver));
    return;
  }
  deliver();
}

void DataSourceNode::NoteLocalRollback(TxnId txn) {
  if (replicator_ != nullptr) replicator_->ReplicateAbortIfPrepared(txn);
}

bool DataSourceNode::RedirectIfNotLeader(NodeId requester) {
  if (replicator_ == nullptr || replicator_->IsLeader()) return false;
  auto redirect = std::make_unique<protocol::NotLeaderResponse>();
  redirect->from = id_;
  redirect->to = requester;
  redirect->group = replicator_->group_id();
  redirect->epoch = replicator_->epoch();
  redirect->leader_hint = replicator_->leader_hint();
  network_->Send(std::move(redirect));
  return true;
}

void DataSourceNode::HandleMessage(std::unique_ptr<sim::MessageBase> msg) {
  if (crashed_) return;
  if (msg->type() == sim::MessageType::kFollowerReadRequest) {
    // Shard guard ahead of the replicator: a follower of a group the map
    // no longer places these keys on must not serve them (its copy froze
    // at cutover while its replication freshness keeps advancing). A
    // not-ok reply sends the DM down the leader path, which redirects.
    auto& read = static_cast<protocol::FollowerReadRequest&>(*msg);
    if (!migrator_->OwnsKeys(read.keys)) {
      auto resp = std::make_unique<protocol::FollowerReadResponse>();
      resp->from = id_;
      resp->to = read.from;
      resp->group = read.group;
      resp->txn_id = read.txn_id;
      resp->round_seq = read.round_seq;
      resp->ok = false;
      network_->Send(std::move(resp));
      return;
    }
  }
  if (replicator_ != nullptr && replicator_->HandleMessage(msg.get())) {
    return;
  }
  // Promotion barrier: a freshly promoted leader whose inherited log
  // entries have not all applied yet must not serve transactional work —
  // an exec admitted now would read values the deferred applies are about
  // to overwrite (lost update). Park and replay once the barrier clears
  // (one follower round trip); replication traffic above still flows, as
  // it is what clears the barrier.
  if (replicator_ != nullptr && !replicator_->ReadyToServe() &&
      ParkedDuringPromotion(msg->type())) {
    parked_.push_back(std::move(msg));
    return;
  }
  if (migrator_->HandleMessage(msg.get())) return;
  switch (msg->type()) {
    case sim::MessageType::kBranchExecuteRequest: {
      auto& exec = static_cast<BranchExecuteRequest&>(*msg);
      if (RedirectIfNotLeader(exec.from)) return;
      OnExecute(exec);
      return;
    }
    case sim::MessageType::kPrepareRequest: {
      auto& prep = static_cast<PrepareRequest&>(*msg);
      if (RedirectIfNotLeader(prep.from)) return;
      OnPrepare(prep.xid, prep.from);
      return;
    }
    case sim::MessageType::kPrepareBatch: {
      auto& batch = static_cast<PrepareBatch&>(*msg);
      if (RedirectIfNotLeader(batch.from)) return;
      for (const Xid& xid : batch.xids) OnPrepare(xid, batch.from);
      return;
    }
    case sim::MessageType::kDecisionRequest: {
      auto& decision = static_cast<DecisionRequest&>(*msg);
      if (RedirectIfNotLeader(decision.from)) return;
      OnDecision(DecisionItem{decision.xid, decision.commit,
                              decision.one_phase},
                 decision.from);
      return;
    }
    case sim::MessageType::kDecisionBatch: {
      auto& batch = static_cast<DecisionBatch&>(*msg);
      if (RedirectIfNotLeader(batch.from)) return;
      for (const DecisionItem& item : batch.items) {
        OnDecision(item, batch.from);
      }
      return;
    }
    case sim::MessageType::kPeerAbortRequest:
      agent_->OnPeerAbort(static_cast<PeerAbortRequest&>(*msg));
      return;
    case sim::MessageType::kPingRequest:
      OnPing(static_cast<PingRequest&>(*msg));
      return;
    default:
      GEOTP_CHECK(false, "data source " << id_ << ": unknown message");
  }
}

bool DataSourceNode::ParkedDuringPromotion(sim::MessageType type) {
  switch (type) {
    case sim::MessageType::kBranchExecuteRequest:
    case sim::MessageType::kPrepareRequest:
    case sim::MessageType::kPrepareBatch:
    case sim::MessageType::kDecisionRequest:
    case sim::MessageType::kDecisionBatch:
    case sim::MessageType::kPeerAbortRequest:
    // A snapshot cut during the barrier would miss the inherited writes.
    case sim::MessageType::kShardMigrateRequest:
    // Destination-side ingest raw-applies to the store; admitted during
    // the barrier it would race the deferred inherited-entry applies just
    // like an exec would. (Bootstrap snapshots — migration_id 0 — are
    // consumed by the Replicator before parking is consulted.)
    case sim::MessageType::kShardSnapshotChunk:
    case sim::MessageType::kShardDeltaBatch:
    // A seed offer answered during the barrier would consult an ingest
    // journal the deferred inherited-entry applies are still extending —
    // the decline would under-claim and chunks would re-cross the WAN.
    case sim::MessageType::kShardSeedOffer:
    case sim::MessageType::kShardSeedDecline:
      return true;
    default:
      return false;
  }
}

void DataSourceNode::OnInheritedMigrations(
    const std::vector<replication::Replicator::InheritedMigration>&
        migrations) {
  migrator_->OnInheritedMigrations(migrations);
}

void DataSourceNode::OnReplicatorReady() {
  if (parked_.empty()) return;
  if (crashed_) {
    parked_.clear();
    return;
  }
  std::vector<std::unique_ptr<sim::MessageBase>> replay;
  replay.swap(parked_);
  for (auto& msg : replay) {
    HandleMessage(std::move(msg));
  }
}

void DataSourceNode::OnExecute(const BranchExecuteRequest& req) {
  auto state = std::make_shared<ExecState>();
  state->xid = req.xid;
  state->round_seq = req.round_seq;
  state->ops = req.ops;
  state->last_statement = req.last_statement;
  state->started_at = loop()->Now();
  state->reply_to = req.from;
  if (obs::GlobalTracer().enabled() && req.trace.valid()) {
    state->exec_span = obs::GlobalTracer().BeginSpan(
        req.trace, "ds.branch_exec", id_, state->started_at);
  }

  // Elastic sharding: refuse batches on fenced (mid-migration) ranges —
  // the client retries and, post-cutover, routes to the new owner — and
  // bounce batches routed under a stale shard-map epoch with a redirect.
  const sharding::ShardRange* moved = nullptr;
  switch (migrator_->CheckOps(req.ops, &moved)) {
    case sharding::ShardMigrator::RouteCheck::kServe:
      break;
    case sharding::ShardMigrator::RouteCheck::kFenced:
      stats_.shard_fenced_rejections++;
      SendExecuteResponse(state,
                          Status::Unavailable("shard range migrating"),
                          /*rolled_back=*/false);
      return;
    case sharding::ShardMigrator::RouteCheck::kMoved: {
      stats_.shard_redirects_sent++;
      auto redirect = std::make_unique<protocol::ShardRedirect>();
      redirect->from = id_;
      redirect->to = req.from;
      redirect->txn_id = req.xid.txn_id;
      redirect->round_seq = req.round_seq;
      redirect->entry = *moved;
      network_->Send(std::move(redirect));
      return;
    }
  }

  // Early abort may have outrun this (possibly postponed) request.
  if (agent_->IsTombstoned(req.xid.txn_id)) {
    SendExecuteResponse(state, Status::Aborted("transaction early-aborted"),
                        /*rolled_back=*/true);
    return;
  }

  if (req.begin_branch) {
    // Bounded run queue: a full engine refuses NEW branches retryably.
    // Branches already begun here (the else arm) always run — refusing
    // them mid-transaction would wedge admitted work behind the very
    // queue it is supposed to drain.
    if (config_.max_run_queue > 0 &&
        engine_.ActiveCount() >= config_.max_run_queue) {
      stats_.run_queue_rejections++;
      SendExecuteResponse(state, Status::Unavailable("run queue full"),
                          /*rolled_back=*/false);
      return;
    }
    Status st = engine_.Begin(req.xid);
    if (!st.ok()) {
      SendExecuteResponse(state, st, /*rolled_back=*/false);
      return;
    }
    BranchInfo info;
    info.peers = req.peers;
    info.coordinator = req.coordinator;
    info.trace = req.trace;
    branches_[req.xid.txn_id] = std::move(info);
  } else if (branches_.count(req.xid.txn_id) == 0) {
    SendExecuteResponse(state, Status::Aborted("branch gone"),
                        /*rolled_back=*/true);
    return;
  }
  BranchInfo& branch = branches_[req.xid.txn_id];
  if (!branch.trace.valid()) branch.trace = req.trace;
  for (const protocol::ClientOp& op : req.ops) {
    branch.keys.push_back(op.key);
  }

  stats_.batches_executed++;
  RunNextOp(state);
}

void DataSourceNode::RunNextOp(const std::shared_ptr<ExecState>& state) {
  if (state->finished) return;
  if (state->next_op >= state->ops.size()) {
    FinishExecSuccess(state);
    return;
  }
  const protocol::ClientOp& cop = state->ops[state->next_op];
  storage::Operation op;
  op.key = cop.key;
  op.is_write = cop.is_write;
  op.write_value = cop.value;
  // Deltas resolve inside the engine after the lock grant; resolving here
  // would read a stale base while the batch waits in a lock queue.
  op.is_delta = cop.is_delta;

  auto self = this;
  state->timeout_event = sim::kInvalidEvent;
  engine_.ExecuteOp(
      state->xid, op,
      [self, state, is_write = cop.is_write](Status status, int64_t value) {
        if (state->timeout_event != sim::kInvalidEvent) {
          self->loop()->Cancel(state->timeout_event);
          state->timeout_event = sim::kInvalidEvent;
        }
        if (state->finished) return;
        if (!status.ok()) {
          self->FinishExecFailure(state, status);
          return;
        }
        // Lock granted and the operation applied; charge the row cost.
        const Micros cost = is_write ? self->config_.engine.write_cost
                                     : self->config_.engine.read_cost;
        self->stats_.ops_executed++;
        self->loop()->Schedule(cost, [self, state, value]() {
          if (state->finished) return;
          state->values.push_back(value);
          state->next_op++;
          self->RunNextOp(state);
        });
      });

  // If the request parked in the lock queue, arm the lock-wait timeout
  // (innodb_lock_wait_timeout; paper default 5 s).
  if (engine_.HasPendingOp(state->xid)) {
    state->timeout_event = loop()->Schedule(
        config_.engine.lock_wait_timeout, [self, state]() {
          state->timeout_event = sim::kInvalidEvent;
          if (state->finished) return;
          self->stats_.lock_timeouts++;
          self->engine_.CancelPendingOp(
              state->xid, Status::TimedOut("lock wait timeout"));
        });
  }
}

void DataSourceNode::FinishExecSuccess(const std::shared_ptr<ExecState>& state) {
  state->finished = true;
  SendExecuteResponse(state, Status::OK(), /*rolled_back=*/false);
  if (state->last_statement) {
    auto it = branches_.find(state->xid.txn_id);
    if (it != branches_.end()) {
      agent_->AsyncPrepare(state->xid, it->second.peers,
                           it->second.coordinator);
    }
  }
}

void DataSourceNode::FinishExecFailure(const std::shared_ptr<ExecState>& state,
                                       Status status) {
  if (state->finished) return;
  state->finished = true;
  if (state->timeout_event != sim::kInvalidEvent) {
    loop()->Cancel(state->timeout_event);
    state->timeout_event = sim::kInvalidEvent;
  }
  auto it = branches_.find(state->xid.txn_id);
  if (it != branches_.end()) {
    // Local failure: roll back the branch, then (early abort) notify peers
    // directly, bypassing the DM (§IV-A, Fig. 4b).
    const std::vector<NodeId> peers = it->second.peers;
    const NodeId coordinator = it->second.coordinator;
    branches_.erase(it);
    agent_->Tombstone(state->xid.txn_id);
    (void)engine_.Rollback(state->xid, loop()->Now());
    stats_.rollbacks++;
    if (config_.early_abort && !peers.empty()) {
      agent_->AsyncRollback(state->xid, peers, coordinator,
                            /*notify_dm=*/false);
    }
  }
  SendExecuteResponse(state, std::move(status), /*rolled_back=*/true);
}

void DataSourceNode::SendExecuteResponse(
    const std::shared_ptr<ExecState>& state, Status status,
    bool rolled_back) {
  auto resp = std::make_unique<BranchExecuteResponse>();
  resp->from = id_;
  resp->to = state->reply_to;
  resp->xid = state->xid;
  resp->round_seq = state->round_seq;
  resp->status = std::move(status);
  resp->values = state->values;
  resp->local_exec_latency = loop()->Now() - state->started_at;
  resp->rolled_back = rolled_back;
  if (state->exec_span != obs::kInvalidSpan) {
    obs::GlobalTracer().EndSpan(state->exec_span, loop()->Now());
    state->exec_span = obs::kInvalidSpan;
  }
  network_->Send(std::move(resp));
}

void DataSourceNode::OnPrepare(const Xid& xid, NodeId coordinator) {
  // Explicit prepare: the classic 2PC path, or the §III case of a source
  // that is not processing the transaction's last statement. The prepare
  // record joins the WAL device's open batch; the branch transitions (and
  // the vote goes out) only when the shared fsync completes.
  stats_.explicit_prepares++;
  obs::SpanHandle fsync_span = obs::kInvalidSpan;
  if (obs::GlobalTracer().enabled()) {
    const obs::TraceContext trace = BranchTrace(xid.txn_id);
    if (trace.valid()) {
      fsync_span = obs::GlobalTracer().BeginSpan(trace, "ds.prepare_fsync",
                                                 id_, loop()->Now());
    }
  }
  committer_.Append(config_.engine.prepare_fsync_cost,
                    "PREPARE xid=" + xid.ToString() + "\n",
                    [this, xid, coordinator, fsync_span]() {
    if (fsync_span != obs::kInvalidSpan) {
      obs::GlobalTracer().EndSpan(fsync_span, loop()->Now());
    }
    if (crashed_) return;
    Status st = engine_.Prepare(xid, loop()->Now());
    if (st.ok()) {
      // Vote only after the prepare record is quorum-durable on the
      // replica group (no-op without replication).
      AfterLocalPrepare(xid, coordinator, [this, xid, coordinator]() {
        if (crashed_) return;
        auto vote = std::make_unique<VoteMessage>();
        vote->from = id_;
        vote->to = coordinator;
        vote->xid = xid;
        vote->vote = Vote::kPrepared;
        network_->Send(std::move(vote));
      });
      return;
    }
    auto vote = std::make_unique<VoteMessage>();
    vote->from = id_;
    vote->to = coordinator;
    vote->xid = xid;
    vote->vote = Vote::kFailure;
    (void)engine_.Rollback(xid, loop()->Now());
    branches_.erase(xid.txn_id);
    network_->Send(std::move(vote));
  });
}

void DataSourceNode::OnDecision(const DecisionItem& item,
                                NodeId coordinator) {
  agent_->ClearTombstone(item.xid.txn_id);
  const Xid xid = item.xid;
  if (item.commit) {
    const bool one_phase = item.one_phase;
    // Decision retry after a failover: if the commit entry already exists
    // and the branch is gone (committed via log apply), just confirm once
    // the entry is quorum-durable.
    if (replicator_ != nullptr && replicator_->IsLeader()) {
      const auto index = replicator_->CommitEntryIndex(xid.txn_id);
      const storage::TxnState state = engine_.StateOf(xid);
      if (index.has_value() && state != storage::TxnState::kActive &&
          state != storage::TxnState::kPrepared) {
        replicator_->AwaitQuorum(
            *index, [this, xid, coordinator, one_phase]() {
              if (crashed_) return;
              auto ack = std::make_unique<DecisionAck>();
              ack->from = id_;
              ack->to = coordinator;
              ack->xid = xid;
              ack->committed = true;
              ack->one_phase = one_phase;
              ack->status = Status::OK();
              network_->Send(std::move(ack));
            });
        return;
      }
    }
    // The commit record shares the WAL device's flush with any concurrent
    // prepare/commit records (group commit).
    obs::SpanHandle fsync_span = obs::kInvalidSpan;
    if (obs::GlobalTracer().enabled()) {
      const obs::TraceContext trace = BranchTrace(xid.txn_id);
      if (trace.valid()) {
        fsync_span = obs::GlobalTracer().BeginSpan(trace, "ds.commit_fsync",
                                                   id_, loop()->Now());
      }
    }
    committer_.Append(
        config_.engine.commit_fsync_cost,
        "COMMIT xid=" + xid.ToString() + "\n",
        [this, xid, coordinator, one_phase, fsync_span]() {
          if (fsync_span != obs::kInvalidSpan) {
            obs::GlobalTracer().EndSpan(fsync_span, loop()->Now());
          }
          if (crashed_) return;
          auto finish = [this, xid, coordinator, one_phase]() {
            if (crashed_) return;
            // Capture the write set before Commit releases it: an active
            // outbound migration forwards the intersecting writes to the
            // shard's destination as deltas.
            std::vector<std::pair<RecordKey, int64_t>> migrating_writes;
            if (migrator_->WantsCommittedWrites()) {
              migrating_writes = engine_.WriteSetOf(xid);
            }
            Status st = engine_.Commit(xid, loop()->Now());
            if (!st.ok() && replicator_ != nullptr &&
                replicator_->CommitEntryIndex(xid.txn_id).has_value()) {
              // The branch already committed through the replicated log
              // (apply callback raced a duplicate decision): success.
              st = Status::OK();
            }
            if (st.ok()) {
              stats_.commits++;
              migrator_->OnCommittedWrites(migrating_writes);
            }
            branches_.erase(xid.txn_id);
            migrator_->OnBranchResolved();
            auto ack = std::make_unique<DecisionAck>();
            ack->from = id_;
            ack->to = coordinator;
            ack->xid = xid;
            ack->committed = st.ok();
            ack->one_phase = one_phase;
            ack->status = std::move(st);
            network_->Send(std::move(ack));
          };
          const storage::TxnState state = engine_.StateOf(xid);
          const bool committable =
              (state == storage::TxnState::kActive ||
               state == storage::TxnState::kPrepared) &&
              !engine_.HasPendingOp(xid);
          if (replicator_ != nullptr && replicator_->IsLeader() &&
              committable) {
            // Quorum-replicate the commit (with its write set) before the
            // local commit becomes durable and is acknowledged.
            obs::SpanHandle quorum = obs::kInvalidSpan;
            if (obs::GlobalTracer().enabled()) {
              const obs::TraceContext trace = BranchTrace(xid.txn_id);
              if (trace.valid()) {
                quorum = obs::GlobalTracer().BeginSpan(
                    trace, "ds.commit_quorum", id_, loop()->Now());
              }
            }
            std::vector<protocol::ReplWrite> writes;
            for (const auto& [key, value] : engine_.WriteSetOf(xid)) {
              writes.push_back(protocol::ReplWrite{key, value});
            }
            replicator_->ReplicateCommit(
                xid, std::move(writes),
                [this, quorum, finish = std::move(finish)]() {
                  if (quorum != obs::kInvalidSpan) {
                    obs::GlobalTracer().EndSpan(quorum, loop()->Now());
                  }
                  finish();
                });
          } else {
            finish();
          }
        });
  } else {
    (void)engine_.Rollback(xid, loop()->Now());
    NoteLocalRollback(xid.txn_id);
    stats_.rollbacks++;
    branches_.erase(xid.txn_id);
    migrator_->OnBranchResolved();
    auto ack = std::make_unique<DecisionAck>();
    ack->from = id_;
    ack->to = coordinator;
    ack->xid = xid;
    ack->committed = false;
    ack->status = Status::OK();
    network_->Send(std::move(ack));
  }
}

void DataSourceNode::AbortBranchForMigration(TxnId txn) {
  auto it = branches_.find(txn);
  if (it == branches_.end()) return;
  const NodeId coordinator = it->second.coordinator;
  const Xid xid{txn, logical_id()};
  branches_.erase(it);
  // The tombstone refuses batches already in flight toward the fence; the
  // DM's abort decision clears it.
  agent_->Tombstone(txn);
  // With a pending lock request, the rollback cancels it and the exec
  // failure path reports to the DM; otherwise confirm via a ROLLBACKED
  // vote (same split as the peer-abort path).
  const bool had_pending = engine_.HasPendingOp(xid);
  (void)engine_.Rollback(xid, loop()->Now());
  NoteLocalRollback(txn);
  stats_.rollbacks++;
  if (!had_pending && coordinator != kInvalidNode) {
    auto vote = std::make_unique<VoteMessage>();
    vote->from = id_;
    vote->to = coordinator;
    vote->xid = xid;
    vote->vote = Vote::kRollbacked;
    network_->Send(std::move(vote));
  }
}

void DataSourceNode::OnPing(const PingRequest& req) {
  auto pong = std::make_unique<PingResponse>();
  pong->from = id_;
  pong->to = req.from;
  pong->seq = req.seq;
  pong->sent_at = req.sent_at;
  // Capacity signal: live branches (active + prepared, including parked
  // lock waiters) — the balancer's load term.
  pong->inflight = engine_.ActiveCount();
  stats_.peak_inflight = std::max(stats_.peak_inflight, pong->inflight);
  // Saturation signal: run-queue depth against its bound (0 = unbounded).
  pong->run_queue = pong->inflight;
  pong->run_queue_limit = config_.max_run_queue;
  // Shard-map anti-entropy: report our epoch, and hand the whole map to a
  // DM whose ping proves it missed a publish.
  const sharding::ShardMap& map = migrator_->map();
  pong->shard_epoch = map.epoch();
  if (!map.empty() && req.shard_epoch < map.epoch()) {
    pong->map_entries = map.ranges();
    stats_.shard_map_serves++;
  }
  network_->Send(std::move(pong));
}

void DataSourceNode::OnCoordinatorFailure(NodeId middleware) {
  std::vector<TxnId> to_abort;
  for (const auto& [txn, info] : branches_) {
    if (info.coordinator != middleware) continue;
    const Xid xid{txn, logical_id()};
    if (engine_.StateOf(xid) == storage::TxnState::kActive) {
      to_abort.push_back(txn);
    }
  }
  for (TxnId txn : to_abort) {
    (void)engine_.Rollback(Xid{txn, logical_id()}, loop()->Now());
    stats_.rollbacks++;
    branches_.erase(txn);
  }
}

void DataSourceNode::Crash() {
  crashed_ = true;
  network_->Partition(id_);
  // The WAL device's open batch dies with the node: entries waiting for a
  // group-commit fsync were never durable, so their waiters must not fire.
  committer_.Reset();
  // Data sources abort every branch that has not completed the prepare
  // phase (paper §V-A common setting ❷).
  engine_.Crash(loop()->Now());
  branches_.clear();
  parked_.clear();  // undelivered work dies with the node
  migrator_->OnCrash();
  if (replicator_ != nullptr) replicator_->OnCrash();
}

void DataSourceNode::Restart() {
  crashed_ = false;
  network_->Restore(id_);
  // A restarted replica rejoins as a follower; any leadership it held was
  // superseded by the election its crash triggered.
  if (replicator_ != nullptr) replicator_->OnRestart();
}

}  // namespace datasource
}  // namespace geotp
