// GeoAgent: the data-source-side component GeoTP deploys next to each
// database (paper §III-B, §IV-A).
//
// Responsibilities:
//  * Decentralized prepare: after the branch's last statement completes,
//    issue XA END / XA PREPARE (via a LAN round trip to the engine) and
//    report the vote to the DM — eliminating the WAN prepare round trip.
//  * Early abort: when a local branch fails before commitment, directly
//    notify the peer data sources' agents (PeerAbortRequest), bypassing
//    the DM, and confirm the local rollback to the DM with a ROLLBACKED
//    vote.
//  * Tombstones: a PeerAbortRequest can outrun the (possibly postponed)
//    BranchExecuteRequest; the agent remembers aborted transactions and
//    refuses late-arriving branches.
#ifndef GEOTP_DATASOURCE_GEO_AGENT_H_
#define GEOTP_DATASOURCE_GEO_AGENT_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "protocol/messages.h"

namespace geotp {
namespace datasource {

class DataSourceNode;

struct GeoAgentStats {
  uint64_t prepares_initiated = 0;
  uint64_t peer_aborts_sent = 0;
  uint64_t peer_aborts_received = 0;
  uint64_t tombstone_hits = 0;
};

class GeoAgent {
 public:
  explicit GeoAgent(DataSourceNode* node) : node_(node) {}

  /// Initiates the implicit decentralized prepare for `xid` after its last
  /// statement executed (Algorithm 1, AsyncPrepare). Sends the vote
  /// (kPrepared / kIdle / kFailure) to `coordinator` when done.
  void AsyncPrepare(const Xid& xid, const std::vector<NodeId>& peers,
                    NodeId coordinator);

  /// Early abort: rolls back the local branch and proactively notifies
  /// peers (Algorithm 1, AsyncRollback). `notify_dm` additionally sends a
  /// ROLLBACKED vote so the DM's WaitForRollback() completes.
  void AsyncRollback(const Xid& xid, const std::vector<NodeId>& peers,
                     NodeId coordinator, bool notify_dm);

  /// Handles a PeerAbortRequest from another data source's agent.
  void OnPeerAbort(const protocol::PeerAbortRequest& req);

  /// True if the transaction was aborted via early abort (arriving
  /// branches must be refused).
  bool IsTombstoned(TxnId txn) const { return tombstones_.count(txn) > 0; }
  void Tombstone(TxnId txn) { tombstones_.insert(txn); }
  /// Decision processing clears the tombstone (the txn is finished).
  void ClearTombstone(TxnId txn) { tombstones_.erase(txn); }

  const GeoAgentStats& stats() const { return stats_; }

 private:
  DataSourceNode* node_;
  GeoAgentStats stats_;
  std::unordered_set<TxnId> tombstones_;
};

}  // namespace datasource
}  // namespace geotp

#endif  // GEOTP_DATASOURCE_GEO_AGENT_H_
