// DataSourceNode: one geo-distributed data source — an XA-capable engine
// (MySQL- or PostgreSQL-flavoured) fronted by a GeoTP geo-agent.
//
// The node is an actor on the simulated network. It owns:
//   * a storage::TransactionEngine (strict 2PL + XA state machine),
//   * the cost model (per-op execution time, fsync time, agent LAN hop),
//   * the geo-agent, which implements the paper's two data-source-side
//     mechanisms: decentralized prepare (§IV-A) and early abort (§IV-A).
//
// Batches of operations within one BranchExecuteRequest run sequentially
// (charging engine costs on the event loop); lock waits park the batch and
// a 5 s lock-wait timeout aborts the branch, mirroring
// innodb_lock_wait_timeout.
#ifndef GEOTP_DATASOURCE_DATA_SOURCE_H_
#define GEOTP_DATASOURCE_DATA_SOURCE_H_

#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "datasource/geo_agent.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "protocol/messages.h"
#include "replication/replicator.h"
#include "runtime/runtime.h"
#include "sharding/migrator.h"
#include "sim/event_loop.h"
#include "sim/network.h"
#include "sql/rewriter.h"
#include "storage/engine.h"
#include "storage/group_commit.h"

namespace geotp {
namespace datasource {

struct DataSourceConfig {
  sql::Dialect dialect = sql::Dialect::kMySql;
  storage::EngineConfig engine;
  /// Geo-agent <-> database LAN round trip (the decentralized prepare costs
  /// one of these instead of a WAN round trip; paper §IV-A).
  Micros agent_lan_rtt = 300;
  /// Early abort (geo-agent notifies peers directly). Usually set from the
  /// middleware's mode; kept here because the behaviour is agent-side.
  bool early_abort = true;
  /// Group-commit policy of the WAL device: prepare/commit fsyncs from
  /// concurrent branches share one flush (enabled by default; disable for
  /// the unbatched per-transaction fsync baseline).
  storage::GroupCommitConfig group_commit;
  /// Shard migration: per-record ingest cost at the destination (bulk
  /// apply of snapshot/delta records, charged per chunk). Makes oversized
  /// migrations take real time — the reason the balancer splits a chunk
  /// instead of shipping all of it.
  Micros migration_apply_cost = 2;
  /// Streaming migration: max committed records per ShardSnapshotChunk.
  /// Bounds both the wire message and the per-chunk ingest charge.
  uint64_t migration_chunk_records = 512;
  /// Streaming migration: receiver-side chunk window. The destination
  /// grants at most this many un-applied chunks of credit, so a slow
  /// (or stalled) destination backpressures the source: the source's
  /// unacked-chunk buffer — its only stream memory — never exceeds it.
  uint64_t migration_stream_window = 4;
  /// Streaming migration: source-side retransmit check. Chunks (or acks)
  /// lost by the network are re-sent when no stream progress happened for
  /// this long; duplicates are re-acked at the receiver's position.
  Micros migration_resend_timeout = MsToMicros(600);
  /// WAN frugality: compress log-shipping batches and migration/bootstrap
  /// snapshot chunks (common/compress.h). Negotiated per connection — a
  /// sender only compresses toward a peer that advertised a shared codec
  /// on an ack, so an actor with this off (or an older build without the
  /// envelope at all) keeps exchanging plain frames with everyone.
  bool wan_compression = true;
  /// Overload control: bound on the engine run queue (live branches,
  /// including parked lock waiters). A NEW branch (begin_branch batch)
  /// arriving at a full queue is refused retryably; batches of branches
  /// already begun here always run — admitted work must finish. The
  /// current depth and this bound ride on every pong as the saturation
  /// signal the DM's admission controller sheds on. 0 = unbounded.
  uint64_t max_run_queue = 0;

  static DataSourceConfig MySql() {
    DataSourceConfig config;
    config.dialect = sql::Dialect::kMySql;
    config.engine = storage::MySqlEngineConfig();
    return config;
  }
  static DataSourceConfig Postgres() {
    DataSourceConfig config;
    config.dialect = sql::Dialect::kPostgres;
    config.engine = storage::PostgresEngineConfig();
    return config;
  }
};

struct DataSourceStats {
  uint64_t batches_executed = 0;
  uint64_t ops_executed = 0;
  uint64_t lock_timeouts = 0;
  uint64_t decentralized_prepares = 0;
  uint64_t explicit_prepares = 0;
  uint64_t early_aborts_sent = 0;
  uint64_t early_aborts_received = 0;
  uint64_t commits = 0;
  uint64_t rollbacks = 0;
  // Elastic sharding (src/sharding).
  uint64_t shard_fenced_rejections = 0;  ///< batches refused mid-migration
  uint64_t shard_redirects_sent = 0;     ///< stale-epoch bounces
  // Capacity signal / shard-map anti-entropy (piggybacked on pings).
  uint64_t peak_inflight = 0;       ///< max branches in flight ever reported
  uint64_t shard_map_serves = 0;    ///< pongs that carried the map to a behind DM
  // Overload control.
  uint64_t run_queue_rejections = 0;  ///< new branches refused at a full queue
};

class DataSourceNode {
 public:
  /// Runtime-seam constructor: the node runs on whatever backend `env`
  /// belongs to (sim event loop or a loopback actor thread).
  DataSourceNode(runtime::ActorEnv env, DataSourceConfig config);
  /// Simulated-deployment convenience (tests, benches, the runner).
  DataSourceNode(NodeId id, sim::Network* network, DataSourceConfig config);

  /// Registers the node's message handler with the network.
  void Attach();

  /// Makes this node a member of a replica group (call before Attach()).
  /// The member whose id equals `group.logical` starts as leader; the
  /// others follow. Durability (prepare votes, commit acks) is then gated
  /// on quorum replication.
  void EnableReplication(const replication::GroupConfig& group);
  replication::Replicator* replicator() { return replicator_.get(); }

  NodeId id() const { return id_; }
  /// The id branches are addressed by: the replica group's logical id when
  /// replicated (stable across failovers), else this node's id.
  NodeId logical_id() const {
    return replicator_ != nullptr ? replicator_->group_id() : id_;
  }
  const DataSourceConfig& config() const { return config_; }
  storage::TransactionEngine& engine() { return engine_; }
  /// The WAL device's group committer: prepare/commit durability waits go
  /// through here so concurrent branches share fsyncs.
  storage::GroupCommitter& committer() { return committer_; }
  GeoAgent& agent() { return *agent_; }
  /// Elastic sharding: live migration + stale-epoch redirects.
  sharding::ShardMigrator& migrator() { return *migrator_; }
  const DataSourceStats& stats() const { return stats_; }
  runtime::ITimer* loop() { return timer_; }
  runtime::ITransport* network() { return network_; }

  /// Crash simulation: partitions the node, rolls back non-prepared
  /// branches (paper §V-A setting ❷). Restart() reconnects it.
  void Crash();
  void Restart();
  bool crashed() const { return crashed_; }

  /// True if this node currently executes/holds the branch of `txn`.
  bool HasBranch(TxnId txn) const { return branches_.count(txn) > 0; }

  /// Registers this source's stats as named gauges on `registry` (see
  /// MiddlewareNode::AttachMetrics for the lifetime contract).
  void RegisterMetrics(obs::MetricsRegistry* registry);

  /// Common setting ❶ (§V-A): when a DM disconnects, its branches that
  /// have not completed the prepare phase are aborted. Prepared branches
  /// survive as in-doubt until the DM recovers.
  void OnCoordinatorFailure(NodeId middleware);

  /// Replicator hook: the promotion barrier cleared (or leadership was
  /// retired) — replay the client-facing messages parked behind it.
  void OnReplicatorReady();

  /// Replicator hook, promotion path: migration control records inherited
  /// from the deposed leader (Begin without End in the group log). Runs
  /// before the leadership announce so a cut-over range is re-fenced
  /// before any DM can route new work here.
  void OnInheritedMigrations(
      const std::vector<replication::Replicator::InheritedMigration>&
          migrations);

  /// Replicator hook, apply path: a migration-ingest commit entry was
  /// applied on this replica. Feeds the migrator's per-migration ingest
  /// journal, which is what lets a freshly promoted destination leader
  /// decline already-held chunks when the source re-offers the stream.
  void OnIngestApplied(uint64_t migration_id, uint64_t chunk_seq,
                       uint64_t delta_seq, uint64_t content_hash);

 private:
  friend class GeoAgent;
  friend class sharding::ShardMigrator;

  struct BranchInfo {
    std::vector<NodeId> peers;
    NodeId coordinator = kInvalidNode;
    /// Every key the branch's batches touched — the migration fence uses
    /// this to abort (active) or drain (prepared) branches on the moving
    /// range without scanning the engine.
    std::vector<RecordKey> keys;
    /// Trace context seeded from the BranchExecuteRequest envelope.
    /// Prepare/decision batches carry no per-transaction context (one
    /// envelope, many transactions), so source-side spans of the commit
    /// path parent under the context stored here.
    obs::TraceContext trace;
  };

  /// In-flight execution of one BranchExecuteRequest.
  struct ExecState {
    Xid xid;
    uint64_t round_seq = 0;
    std::vector<protocol::ClientOp> ops;
    size_t next_op = 0;
    std::vector<int64_t> values;
    bool last_statement = false;
    Micros started_at = 0;
    NodeId reply_to = kInvalidNode;
    sim::EventId timeout_event = sim::kInvalidEvent;
    bool finished = false;
    obs::SpanHandle exec_span = obs::kInvalidSpan;
  };

  friend class replication::Replicator;

  /// Reports prepare durability: with replication, the vote is delivered
  /// once the prepare entry reaches a quorum; without, immediately.
  void AfterLocalPrepare(const Xid& xid, NodeId coordinator,
                         std::function<void()> deliver_vote);
  /// Appends an abort entry if the branch had a replicated prepare entry
  /// (followers must unstage it). No-op otherwise.
  void NoteLocalRollback(TxnId txn);
  /// True if this replica must redirect coordinator traffic to the leader.
  bool RedirectIfNotLeader(NodeId requester);
  /// Migration fence: rolls back an active branch and confirms to its
  /// coordinator (the client retries; post-cutover the retry routes to the
  /// shard's new owner). Mirrors the peer-abort path.
  void AbortBranchForMigration(TxnId txn);

  /// The stored trace context of `txn`'s branch (invalid when the branch
  /// is gone or was never sampled).
  obs::TraceContext BranchTrace(TxnId txn) const;

  void HandleMessage(std::unique_ptr<sim::MessageBase> msg);
  /// Promotion barrier (see Replicator::ReadyToServe): true for message
  /// types that read or mutate transactional state and therefore must not
  /// run while a freshly promoted leader's store is behind its log.
  static bool ParkedDuringPromotion(sim::MessageType type);
  void OnExecute(const protocol::BranchExecuteRequest& req);
  void RunNextOp(const std::shared_ptr<ExecState>& state);
  void FinishExecSuccess(const std::shared_ptr<ExecState>& state);
  void FinishExecFailure(const std::shared_ptr<ExecState>& state,
                         Status status);
  void OnPrepare(const Xid& xid, NodeId coordinator);
  void OnDecision(const protocol::DecisionItem& item, NodeId coordinator);
  void OnPing(const protocol::PingRequest& req);

  void SendExecuteResponse(const std::shared_ptr<ExecState>& state,
                           Status status, bool rolled_back);

  NodeId id_;
  runtime::ITransport* network_;
  runtime::ITimer* timer_;
  /// Durable WAL device (simulated cost model or a real file).
  std::unique_ptr<runtime::IStableStorage> wal_device_;
  DataSourceConfig config_;
  storage::TransactionEngine engine_;
  storage::GroupCommitter committer_;
  std::unique_ptr<GeoAgent> agent_;
  std::unique_ptr<replication::Replicator> replicator_;
  std::unique_ptr<sharding::ShardMigrator> migrator_;
  DataSourceStats stats_;
  bool crashed_ = false;

  std::unordered_map<TxnId, BranchInfo> branches_;
  /// Client-facing messages held while the replicator's promotion barrier
  /// is up; replayed in arrival order via OnReplicatorReady().
  std::vector<std::unique_ptr<sim::MessageBase>> parked_;
};

}  // namespace datasource
}  // namespace geotp

#endif  // GEOTP_DATASOURCE_DATA_SOURCE_H_
