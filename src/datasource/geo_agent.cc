#include "datasource/geo_agent.h"

#include <utility>

#include "common/logging.h"
#include "datasource/data_source.h"

namespace geotp {
namespace datasource {

using protocol::PeerAbortRequest;
using protocol::Vote;
using protocol::VoteMessage;

void GeoAgent::AsyncPrepare(const Xid& xid, const std::vector<NodeId>& peers,
                            NodeId coordinator) {
  stats_.prepares_initiated++;
  DataSourceNode* node = node_;
  // conn.end(): one LAN hop between the agent and the database (vs. the
  // WAN round trip the DM-driven prepare would cost, §IV-A).
  const bool centralized = peers.empty();
  const Micros lan_cost = node->config().agent_lan_rtt;
  node->loop()->Schedule(lan_cost, [this, node, xid, peers, coordinator,
                                    centralized]() {
    if (node->crashed()) return;
    if (centralized) {
      if (node->engine().StateOf(xid) != storage::TxnState::kActive) return;
      // Algorithm 1 line 8: no peers -> IDLE; the branch stays active and
      // commits one-phase. No prepare record, no fsync.
      auto vote = std::make_unique<VoteMessage>();
      vote->from = node->id();
      vote->to = coordinator;
      vote->xid = xid;
      vote->vote = Vote::kIdle;
      node->network()->Send(std::move(vote));
      return;
    }
    // The prepare record joins the WAL device's open batch; the branch
    // transitions (and the vote goes out) at the shared fsync completion.
    obs::SpanHandle fsync_span = obs::kInvalidSpan;
    if (obs::GlobalTracer().enabled()) {
      const obs::TraceContext trace = node->BranchTrace(xid.txn_id);
      if (trace.valid()) {
        fsync_span = obs::GlobalTracer().BeginSpan(
            trace, "ds.prepare_fsync", node->id(), node->loop()->Now());
      }
    }
    node->committer().Append(
        node->config().engine.prepare_fsync_cost,
        "PREPARE xid=" + xid.ToString() + "\n",
        [this, node, xid, peers, coordinator, fsync_span]() {
          if (fsync_span != obs::kInvalidSpan) {
            obs::GlobalTracer().EndSpan(fsync_span, node->loop()->Now());
          }
          if (node->crashed()) return;
          if (node->engine().StateOf(xid) != storage::TxnState::kActive) {
            // Rolled back while the prepare was in flight (early abort
            // from a peer); the rollback path already reported to the DM.
            return;
          }
          Status st = node->engine().Prepare(xid, node->loop()->Now());
          if (st.ok()) {
            node->stats_.decentralized_prepares++;
            // With replication, the PREPARED vote waits until the prepare
            // entry (and its write set) is durable on a group quorum.
            node->AfterLocalPrepare(
                xid, coordinator, [node, xid, coordinator]() {
                  if (node->crashed()) return;
                  auto gated_vote = std::make_unique<VoteMessage>();
                  gated_vote->from = node->id();
                  gated_vote->to = coordinator;
                  gated_vote->xid = xid;
                  gated_vote->vote = Vote::kPrepared;
                  node->network()->Send(std::move(gated_vote));
                });
          } else {
            auto vote = std::make_unique<VoteMessage>();
            vote->from = node->id();
            vote->to = coordinator;
            vote->xid = xid;
            vote->vote = Vote::kFailure;
            node->network()->Send(std::move(vote));
            AsyncRollback(xid, peers, coordinator, /*notify_dm=*/false);
          }
        });
  });
}

void GeoAgent::AsyncRollback(const Xid& xid, const std::vector<NodeId>& peers,
                             NodeId coordinator, bool notify_dm) {
  DataSourceNode* node = node_;
  Tombstone(xid.txn_id);
  (void)node->engine().Rollback(xid, node->loop()->Now());
  node->NoteLocalRollback(xid.txn_id);
  if (node->config().early_abort) {
    for (NodeId peer : peers) {
      if (peer == node->id()) continue;
      auto req = std::make_unique<PeerAbortRequest>();
      req->from = node->id();
      req->to = peer;
      req->txn_id = xid.txn_id;
      req->origin = node->id();
      node->network()->Send(std::move(req));
      stats_.peer_aborts_sent++;
      node->stats_.early_aborts_sent++;
    }
  }
  if (notify_dm && coordinator != kInvalidNode) {
    auto vote = std::make_unique<VoteMessage>();
    vote->from = node->id();
    vote->to = coordinator;
    vote->xid = xid;
    vote->vote = Vote::kRollbacked;
    node->network()->Send(std::move(vote));
  }
}

void GeoAgent::OnPeerAbort(const PeerAbortRequest& req) {
  stats_.peer_aborts_received++;
  DataSourceNode* node = node_;
  node->stats_.early_aborts_received++;
  Tombstone(req.txn_id);

  auto it = node->branches_.find(req.txn_id);
  if (it == node->branches_.end()) {
    // The branch has not arrived yet (postponed dispatch) or was already
    // finished; the tombstone covers the former case.
    stats_.tombstone_hits++;
    return;
  }
  const NodeId coordinator = it->second.coordinator;
  const Xid local_xid{req.txn_id, node->logical_id()};
  node->branches_.erase(it);
  // Rolling back cancels any pending lock request; the in-flight exec
  // state (if any) observes kAborted and reports failure to the DM, which
  // counts as this participant's rollback confirmation. If no exec was in
  // flight (branch idle between rounds, or already prepared), confirm via
  // a ROLLBACKED vote.
  const bool had_pending = node->engine().HasPendingOp(local_xid);
  (void)node->engine().Rollback(local_xid, node->loop()->Now());
  node->NoteLocalRollback(local_xid.txn_id);
  node->stats_.rollbacks++;
  if (!had_pending && coordinator != kInvalidNode) {
    auto vote = std::make_unique<VoteMessage>();
    vote->from = node->id();
    vote->to = coordinator;
    vote->xid = local_xid;
    vote->vote = Vote::kRollbacked;
    node->network()->Send(std::move(vote));
  }
}

}  // namespace datasource
}  // namespace geotp
