#include "protocol/messages.h"

namespace geotp {
namespace protocol {

const char* VoteName(Vote vote) {
  switch (vote) {
    case Vote::kPrepared:
      return "PREPARED";
    case Vote::kIdle:
      return "IDLE";
    case Vote::kFailure:
      return "FAILURE";
    case Vote::kRollbackOnly:
      return "ROLLBACK_ONLY";
    case Vote::kRollbacked:
      return "ROLLBACKED";
  }
  return "?";
}

const char* ReplEntryTypeName(ReplEntryType type) {
  switch (type) {
    case ReplEntryType::kPrepare:
      return "PREPARE";
    case ReplEntryType::kCommit:
      return "COMMIT";
    case ReplEntryType::kAbort:
      return "ABORT";
    case ReplEntryType::kMigrationBegin:
      return "MIGRATION_BEGIN";
    case ReplEntryType::kMigrationCutover:
      return "MIGRATION_CUTOVER";
    case ReplEntryType::kMigrationEnd:
      return "MIGRATION_END";
  }
  return "?";
}

}  // namespace protocol
}  // namespace geotp
