#include "protocol/wan_codec.h"

#include <cstring>

namespace geotp {
namespace protocol {
namespace {

// Minimal little-endian writer/reader. The reader never reads past the
// end: every Get* checks remaining bytes and latches a failure flag the
// caller tests once at the end (so decode code stays linear).
class Writer {
 public:
  explicit Writer(std::string* out) : out_(out) {}
  void PutU8(uint8_t v) { out_->push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v) { PutFixed(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutFixed(&v, sizeof(v)); }
  void PutI32(int32_t v) { PutFixed(&v, sizeof(v)); }
  void PutI64(int64_t v) { PutFixed(&v, sizeof(v)); }

 private:
  void PutFixed(const void* v, size_t n) {
    // Little-endian hosts only (matches runtime/codec.cc's assumption).
    out_->append(static_cast<const char*>(v), n);
  }
  std::string* out_;
};

class Reader {
 public:
  explicit Reader(const std::string& in) : in_(in) {}
  uint8_t GetU8() {
    uint8_t v = 0;
    GetFixed(&v, sizeof(v));
    return v;
  }
  uint32_t GetU32() {
    uint32_t v = 0;
    GetFixed(&v, sizeof(v));
    return v;
  }
  uint64_t GetU64() {
    uint64_t v = 0;
    GetFixed(&v, sizeof(v));
    return v;
  }
  int32_t GetI32() {
    int32_t v = 0;
    GetFixed(&v, sizeof(v));
    return v;
  }
  int64_t GetI64() {
    int64_t v = 0;
    GetFixed(&v, sizeof(v));
    return v;
  }
  /// Sanity bound for a decoded element count: each element needs at
  /// least `min_bytes` more input, so a forged count cannot force a giant
  /// reserve.
  bool FitsCount(uint32_t count, size_t min_bytes) const {
    return !failed_ && static_cast<size_t>(count) * min_bytes <=
                           in_.size() - pos_;
  }
  bool AtEnd() const { return pos_ == in_.size(); }
  bool ok() const { return !failed_; }

 private:
  void GetFixed(void* v, size_t n) {
    if (failed_ || in_.size() - pos_ < n) {
      failed_ = true;
      return;
    }
    std::memcpy(v, in_.data() + pos_, n);
    pos_ += n;
  }
  const std::string& in_;
  size_t pos_ = 0;
  bool failed_ = false;
};

void PutWrite(Writer* w, const ReplWrite& write) {
  w->PutU32(write.key.table);
  w->PutU64(write.key.key);
  w->PutI64(write.value);
}

ReplWrite GetWrite(Reader* r) {
  ReplWrite write;
  write.key.table = r->GetU32();
  write.key.key = r->GetU64();
  write.value = r->GetI64();
  return write;
}

constexpr size_t kWriteBytes = 20;

}  // namespace

std::string PackWrites(const std::vector<ReplWrite>& writes) {
  std::string out;
  out.reserve(4 + writes.size() * kWriteBytes);
  Writer w(&out);
  w.PutU32(static_cast<uint32_t>(writes.size()));
  for (const ReplWrite& write : writes) PutWrite(&w, write);
  return out;
}

bool UnpackWrites(const std::string& bytes,
                  std::vector<ReplWrite>* writes) {
  writes->clear();
  Reader r(bytes);
  const uint32_t count = r.GetU32();
  if (!r.FitsCount(count, kWriteBytes)) return false;
  writes->reserve(count);
  for (uint32_t i = 0; i < count; ++i) writes->push_back(GetWrite(&r));
  return r.ok() && r.AtEnd();
}

std::string PackEntries(const std::vector<ReplEntry>& entries) {
  std::string out;
  Writer w(&out);
  w.PutU32(static_cast<uint32_t>(entries.size()));
  for (const ReplEntry& e : entries) {
    w.PutU64(e.index);
    w.PutU64(e.epoch);
    w.PutU8(static_cast<uint8_t>(e.type));
    w.PutU64(e.xid.txn_id);
    w.PutI32(e.xid.data_source);
    w.PutI32(e.coordinator);
    w.PutI64(e.at);
    w.PutU32(static_cast<uint32_t>(e.writes.size()));
    for (const ReplWrite& write : e.writes) PutWrite(&w, write);
    w.PutU8(e.migration != nullptr ? 1 : 0);
    if (e.migration != nullptr) {
      const MigrationRecord& m = *e.migration;
      w.PutU64(m.migration_id);
      w.PutU32(m.range.table);
      w.PutU64(m.range.lo);
      w.PutU64(m.range.hi);
      w.PutI32(m.range.owner);
      w.PutU64(m.range.version);
      w.PutI32(m.dest);
      w.PutI32(m.dest_leader);
      w.PutU64(m.new_version);
      w.PutI32(m.balancer);
      w.PutI64(m.timeout);
      w.PutU64(m.delta_next_seq);
    }
    w.PutU64(e.ingest_migration_id);
    w.PutU64(e.ingest_chunk_seq);
    w.PutU64(e.ingest_delta_seq);
    w.PutU64(e.ingest_content_hash);
  }
  return out;
}

bool UnpackEntries(const std::string& bytes,
                   std::vector<ReplEntry>* entries) {
  entries->clear();
  Reader r(bytes);
  const uint32_t count = r.GetU32();
  // 62 = fixed bytes of a minimal entry (no writes, no migration record).
  if (!r.FitsCount(count, 62)) return false;
  entries->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    ReplEntry e;
    e.index = r.GetU64();
    e.epoch = r.GetU64();
    e.type = static_cast<ReplEntryType>(r.GetU8());
    e.xid.txn_id = r.GetU64();
    e.xid.data_source = r.GetI32();
    e.coordinator = r.GetI32();
    e.at = r.GetI64();
    const uint32_t writes = r.GetU32();
    if (!r.FitsCount(writes, kWriteBytes)) return false;
    e.writes.reserve(writes);
    for (uint32_t j = 0; j < writes; ++j) e.writes.push_back(GetWrite(&r));
    if (r.GetU8() != 0) {
      auto m = std::make_shared<MigrationRecord>();
      m->migration_id = r.GetU64();
      m->range.table = r.GetU32();
      m->range.lo = r.GetU64();
      m->range.hi = r.GetU64();
      m->range.owner = r.GetI32();
      m->range.version = r.GetU64();
      m->dest = r.GetI32();
      m->dest_leader = r.GetI32();
      m->new_version = r.GetU64();
      m->balancer = r.GetI32();
      m->timeout = r.GetI64();
      m->delta_next_seq = r.GetU64();
      e.migration = std::move(m);
    }
    e.ingest_migration_id = r.GetU64();
    e.ingest_chunk_seq = r.GetU64();
    e.ingest_delta_seq = r.GetU64();
    e.ingest_content_hash = r.GetU64();
    if (!r.ok()) return false;
    entries->push_back(std::move(e));
  }
  return r.ok() && r.AtEnd();
}

EnvelopeBytes SealAppendPayload(common::WireCodec codec,
                                ReplAppendRequest* req) {
  EnvelopeBytes bytes;
  if (req->entries.empty()) return bytes;  // heartbeats stay bare
  const std::string raw = PackEntries(req->entries);
  bytes.raw = raw.size();
  if (codec == common::WireCodec::kRaw) {
    // Pre-negotiation receiver: ship the plain vector (no envelope); it
    // still counts as raw-sized WAN traffic.
    bytes.wire = raw.size();
    return bytes;
  }
  const common::WireCodec used =
      common::EncodePayload(codec, raw, &req->payload);
  req->payload_codec = static_cast<uint8_t>(used);
  req->payload_uncompressed_len = static_cast<uint32_t>(raw.size());
  req->payload_hash = common::ContentHash64(raw);
  req->entries.clear();
  bytes.wire = req->payload.size();
  return bytes;
}

bool OpenAppendPayload(ReplAppendRequest* req) {
  if (req->payload.empty()) return true;  // plain (or heartbeat) frame
  std::string raw;
  if (!common::DecodePayload(
          static_cast<common::WireCodec>(req->payload_codec), req->payload,
          req->payload_uncompressed_len, req->payload_hash, &raw)) {
    return false;
  }
  if (!UnpackEntries(raw, &req->entries)) return false;
  req->payload.clear();
  return true;
}

EnvelopeBytes SealChunkPayload(common::WireCodec codec,
                               ShardSnapshotChunk* chunk) {
  EnvelopeBytes bytes;
  const std::string raw = PackWrites(chunk->records);
  bytes.raw = raw.size();
  // Always set: the hash is the chunk's identity in the re-seed
  // handshake, whatever codec the stream negotiated.
  chunk->content_hash = common::ContentHash64(raw);
  if (codec == common::WireCodec::kRaw) {
    bytes.wire = raw.size();
    return bytes;
  }
  const common::WireCodec used =
      common::EncodePayload(codec, raw, &chunk->payload);
  chunk->payload_codec = static_cast<uint8_t>(used);
  chunk->payload_uncompressed_len = static_cast<uint32_t>(raw.size());
  chunk->records.clear();
  bytes.wire = chunk->payload.size();
  return bytes;
}

bool OpenChunkPayload(ShardSnapshotChunk* chunk) {
  if (chunk->payload.empty()) return true;
  std::string raw;
  if (!common::DecodePayload(
          static_cast<common::WireCodec>(chunk->payload_codec),
          chunk->payload, chunk->payload_uncompressed_len,
          chunk->content_hash, &raw)) {
    return false;
  }
  if (!UnpackWrites(raw, &chunk->records)) return false;
  chunk->payload.clear();
  return true;
}

}  // namespace protocol
}  // namespace geotp
