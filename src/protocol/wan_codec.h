// Packing + envelope helpers for the compressed WAN paths.
//
// The two bulk cross-region streams — LogShipper entry batches
// (ReplAppendRequest) and migration/bootstrap ShardSnapshotChunks — ship
// their record vectors as one packed byte string so the payload can be
// compressed and hash-verified as a unit (src/common/compress.h). The
// packed format here is deliberately independent of the loopback runtime's
// message codec (runtime/codec.cc): it is the CONTENT being transported,
// not the frame — the same packed bytes travel inside a sim message object
// or inside a TCP frame unchanged, which is what makes the content hash a
// stable chunk identity across runtimes and across retries.
//
// All decode paths are bounds-checked and total: malformed bytes yield
// `false`, never a crash or a partial application.
#ifndef GEOTP_PROTOCOL_WAN_CODEC_H_
#define GEOTP_PROTOCOL_WAN_CODEC_H_

#include <string>
#include <vector>

#include "common/compress.h"
#include "protocol/messages.h"

namespace geotp {
namespace protocol {

/// Canonical packed form of a record vector (20 bytes per write). The
/// ContentHash64 of these bytes is a chunk's identity in the re-seed
/// handshake, so the encoding must stay deterministic.
std::string PackWrites(const std::vector<ReplWrite>& writes);
bool UnpackWrites(const std::string& bytes, std::vector<ReplWrite>* writes);

/// Packed form of a shipped entry batch (everything a follower needs to
/// append, including migration control records and ingest provenance).
std::string PackEntries(const std::vector<ReplEntry>& entries);
bool UnpackEntries(const std::string& bytes,
                   std::vector<ReplEntry>* entries);

/// Seals `req->entries` into the WAN envelope under `codec` (kRaw leaves
/// the plain vector in place — a pre-negotiation receiver must still see
/// `entries`). Returns {raw_bytes, wire_bytes} of the batch for the WAN
/// accounting counters.
struct EnvelopeBytes {
  size_t raw = 0;
  size_t wire = 0;
};
EnvelopeBytes SealAppendPayload(common::WireCodec codec,
                                ReplAppendRequest* req);
/// Reverses SealAppendPayload: verifies + unpacks the envelope back into
/// `req->entries`. A request without an envelope passes through untouched.
/// False = corrupt frame; the caller drops the whole request (retransmit
/// recovers).
bool OpenAppendPayload(ReplAppendRequest* req);

/// Chunk counterpart. `content_hash` is set unconditionally (it is the
/// chunk's re-seed identity even on raw frames).
EnvelopeBytes SealChunkPayload(common::WireCodec codec,
                               ShardSnapshotChunk* chunk);
bool OpenChunkPayload(ShardSnapshotChunk* chunk);

}  // namespace protocol
}  // namespace geotp

#endif  // GEOTP_PROTOCOL_WAN_CODEC_H_
