// Wire messages exchanged between clients, middlewares, geo-agents and
// data sources. Everything derives from sim::MessageBase so the simulated
// network can deliver it with per-link latency.
//
// Naming follows the paper's Algorithm 1: data sources answer the implicit
// prepare with votes (PREPARED / FAILURE / IDLE / ROLLBACK_ONLY /
// ROLLBACKED); the DM dispatches a Decision (commit or abort).
#ifndef GEOTP_PROTOCOL_MESSAGES_H_
#define GEOTP_PROTOCOL_MESSAGES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "sim/network.h"

namespace geotp {
namespace protocol {

/// One record operation as submitted by a client (already parsed /
/// partition-routed form; the SQL path in src/sql produces these).
struct ClientOp {
  RecordKey key;
  bool is_write = false;
  int64_t value = 0;     ///< write literal or delta
  bool is_delta = false; ///< UPDATE ... SET val = val + value
};

// ---------------------------------------------------------------------------
// Client <-> middleware
// ---------------------------------------------------------------------------

/// One interactive round of a transaction. The first round opens the
/// transaction; `last_round` carries the last-statement annotation that
/// lets GeoTP trigger the decentralized prepare (paper §IV-A).
struct ClientRoundRequest : sim::MessageBase {
  uint64_t client_tag = 0;  ///< client-side correlation handle
  TxnId txn_id = kInvalidTxn;  ///< 0 on the first round; DM assigns
  std::vector<ClientOp> ops;
  bool last_round = false;
  size_t WireSize() const override { return 64 + ops.size() * 24; }
};

struct ClientRoundResponse : sim::MessageBase {
  uint64_t client_tag = 0;
  TxnId txn_id = kInvalidTxn;
  Status status;
  std::vector<int64_t> values;  ///< read results, in op order
  size_t WireSize() const override { return 64 + values.size() * 8; }
};

/// COMMIT (or ROLLBACK) submitted by the client.
struct ClientFinishRequest : sim::MessageBase {
  uint64_t client_tag = 0;
  TxnId txn_id = kInvalidTxn;
  bool commit = true;
};

/// Final transaction outcome to the client.
struct ClientTxnResult : sim::MessageBase {
  uint64_t client_tag = 0;
  TxnId txn_id = kInvalidTxn;
  Status status;
};

// ---------------------------------------------------------------------------
// Middleware <-> data source (geo-agent)
// ---------------------------------------------------------------------------

/// Executes a batch of operations of one subtransaction branch.
struct BranchExecuteRequest : sim::MessageBase {
  Xid xid;
  uint64_t round_seq = 0;
  bool begin_branch = false;      ///< first batch for this branch
  std::vector<ClientOp> ops;      ///< executed sequentially at the source
  /// Last statement of this branch (annotation): the geo-agent initiates
  /// the decentralized prepare when the batch completes.
  bool last_statement = false;
  /// Peer data sources of the transaction (for early abort and for the
  /// centralized/distributed distinction in Algorithm 1).
  std::vector<NodeId> peers;
  /// Middleware to send the implicit-prepare vote to.
  NodeId coordinator = kInvalidNode;
  size_t WireSize() const override { return 96 + ops.size() * 24; }
};

struct BranchExecuteResponse : sim::MessageBase {
  Xid xid;
  uint64_t round_seq = 0;
  Status status;
  std::vector<int64_t> values;
  /// Local execution latency measured at the source (request arrival to
  /// batch completion) — feeds the hotspot footprint (Eq. 4).
  Micros local_exec_latency = 0;
  /// True if the branch already rolled back locally (failure path).
  bool rolled_back = false;
  size_t WireSize() const override { return 96 + values.size() * 8; }
};

/// Explicit prepare request (classic 2PC path, and the "notify sources not
/// processing the last statement" case of §III).
struct PrepareRequest : sim::MessageBase {
  Xid xid;
};

/// Vote values, per Algorithm 1.
enum class Vote : uint8_t {
  kPrepared,      ///< branch prepared, ready to commit
  kIdle,          ///< branch ended but not prepared (centralized fast path)
  kFailure,       ///< prepare failed; branch rolled back
  kRollbackOnly,  ///< end failed; branch rolled back
  kRollbacked,    ///< branch rolled back (early abort / abort ack)
};

const char* VoteName(Vote vote);

struct VoteMessage : sim::MessageBase {
  Xid xid;
  Vote vote = Vote::kPrepared;
};

/// Final decision from the DM. `one_phase` commits an un-prepared branch
/// directly (XA COMMIT ... ONE PHASE; centralized transactions).
struct DecisionRequest : sim::MessageBase {
  Xid xid;
  bool commit = true;
  bool one_phase = false;
};

struct DecisionAck : sim::MessageBase {
  Xid xid;
  bool committed = false;
  /// Echo of the request's one_phase flag: a failed one-phase commit is a
  /// clean abort (the branch was never prepared anywhere); a failed
  /// two-phase commit of a prepared branch would be an atomicity bug.
  bool one_phase = false;
  Status status;
};

// ---------------------------------------------------------------------------
// Geo-agent <-> geo-agent (early abort, §IV-A)
// ---------------------------------------------------------------------------

/// Proactive peer-abort notification, sent data-source to data-source
/// without DM coordination.
struct PeerAbortRequest : sim::MessageBase {
  TxnId txn_id = kInvalidTxn;
  NodeId origin = kInvalidNode;  ///< the data source where the failure hit
};

// ---------------------------------------------------------------------------
// Latency monitoring (paper §VI: ping thread at 10 ms intervals)
// ---------------------------------------------------------------------------

struct PingRequest : sim::MessageBase {
  uint64_t seq = 0;
  Micros sent_at = 0;
  size_t WireSize() const override { return 32; }
};

struct PingResponse : sim::MessageBase {
  uint64_t seq = 0;
  Micros sent_at = 0;
  size_t WireSize() const override { return 32; }
};

}  // namespace protocol
}  // namespace geotp

#endif  // GEOTP_PROTOCOL_MESSAGES_H_
