// Wire messages exchanged between clients, middlewares, geo-agents and
// data sources. Everything derives from sim::MessageBase so the simulated
// network can deliver it with per-link latency.
//
// Naming follows the paper's Algorithm 1: data sources answer the implicit
// prepare with votes (PREPARED / FAILURE / IDLE / ROLLBACK_ONLY /
// ROLLBACKED); the DM dispatches a Decision (commit or abort).
#ifndef GEOTP_PROTOCOL_MESSAGES_H_
#define GEOTP_PROTOCOL_MESSAGES_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "sharding/shard_map.h"
#include "sim/network.h"

namespace geotp {
namespace protocol {

/// One record operation as submitted by a client (already parsed /
/// partition-routed form; the SQL path in src/sql produces these).
struct ClientOp {
  RecordKey key;
  bool is_write = false;
  int64_t value = 0;     ///< write literal or delta
  bool is_delta = false; ///< UPDATE ... SET val = val + value
};

// ---------------------------------------------------------------------------
// Client <-> middleware
// ---------------------------------------------------------------------------

/// One interactive round of a transaction. The first round opens the
/// transaction; `last_round` carries the last-statement annotation that
/// lets GeoTP trigger the decentralized prepare (paper §IV-A).
struct ClientRoundRequest : sim::MessageBase {
  sim::MessageType type() const override {
    return sim::MessageType::kClientRoundRequest;
  }
  uint64_t client_tag = 0;  ///< client-side correlation handle
  TxnId txn_id = kInvalidTxn;  ///< 0 on the first round; DM assigns
  /// Tenant the transaction belongs to. The DM's admission controller
  /// meters new admissions per tenant (weighted fair shares of the
  /// in-flight budget); continuation rounds are never metered.
  uint32_t tenant = 0;
  std::vector<ClientOp> ops;
  bool last_round = false;
  size_t WireSize() const override { return 64 + ops.size() * 24; }
};

struct ClientRoundResponse : sim::MessageBase {
  sim::MessageType type() const override {
    return sim::MessageType::kClientRoundResponse;
  }
  uint64_t client_tag = 0;
  TxnId txn_id = kInvalidTxn;
  Status status;
  std::vector<int64_t> values;  ///< read results, in op order
  size_t WireSize() const override { return 64 + values.size() * 8; }
};

/// COMMIT (or ROLLBACK) submitted by the client.
struct ClientFinishRequest : sim::MessageBase {
  sim::MessageType type() const override {
    return sim::MessageType::kClientFinishRequest;
  }
  uint64_t client_tag = 0;
  TxnId txn_id = kInvalidTxn;
  bool commit = true;
};

/// Final transaction outcome to the client.
struct ClientTxnResult : sim::MessageBase {
  sim::MessageType type() const override {
    return sim::MessageType::kClientTxnResult;
  }
  uint64_t client_tag = 0;
  TxnId txn_id = kInvalidTxn;
  Status status;
};

/// Shed reply: the DM refused to admit a NEW transaction (in-flight
/// budget, tenant share, or downstream queue pressure). Nothing was
/// executed — the client may retry after backing off at least
/// `retry_after_hint`. Only ever sent before a TxnId is assigned;
/// admitted transactions always finish with ClientTxnResult.
struct OverloadedResponse : sim::MessageBase {
  sim::MessageType type() const override {
    return sim::MessageType::kOverloadedResponse;
  }
  uint64_t client_tag = 0;
  uint32_t tenant = 0;  ///< echo of the request's tenant
  /// Suggested minimum backoff before retrying; grows while the DM keeps
  /// shedding so persistent overload pushes clients further out.
  Micros retry_after_hint = 0;
  size_t WireSize() const override { return 48; }
};

// ---------------------------------------------------------------------------
// Middleware <-> data source (geo-agent)
// ---------------------------------------------------------------------------

/// Executes a batch of operations of one subtransaction branch.
struct BranchExecuteRequest : sim::MessageBase {
  sim::MessageType type() const override {
    return sim::MessageType::kBranchExecuteRequest;
  }
  Xid xid;
  uint64_t round_seq = 0;
  bool begin_branch = false;      ///< first batch for this branch
  std::vector<ClientOp> ops;      ///< executed sequentially at the source
  /// Last statement of this branch (annotation): the geo-agent initiates
  /// the decentralized prepare when the batch completes.
  bool last_statement = false;
  /// Peer data sources of the transaction (for early abort and for the
  /// centralized/distributed distinction in Algorithm 1).
  std::vector<NodeId> peers;
  /// Middleware to send the implicit-prepare vote to.
  NodeId coordinator = kInvalidNode;
  size_t WireSize() const override { return 96 + ops.size() * 24; }
};

struct BranchExecuteResponse : sim::MessageBase {
  sim::MessageType type() const override {
    return sim::MessageType::kBranchExecuteResponse;
  }
  Xid xid;
  uint64_t round_seq = 0;
  Status status;
  std::vector<int64_t> values;
  /// Local execution latency measured at the source (request arrival to
  /// batch completion) — feeds the hotspot footprint (Eq. 4).
  Micros local_exec_latency = 0;
  /// True if the branch already rolled back locally (failure path).
  bool rolled_back = false;
  size_t WireSize() const override { return 96 + values.size() * 8; }
};

/// Explicit prepare request (classic 2PC path, and the "notify sources not
/// processing the last statement" case of §III).
struct PrepareRequest : sim::MessageBase {
  sim::MessageType type() const override {
    return sim::MessageType::kPrepareRequest;
  }
  Xid xid;
};

/// Vote values, per Algorithm 1.
enum class Vote : uint8_t {
  kPrepared,      ///< branch prepared, ready to commit
  kIdle,          ///< branch ended but not prepared (centralized fast path)
  kFailure,       ///< prepare failed; branch rolled back
  kRollbackOnly,  ///< end failed; branch rolled back
  kRollbacked,    ///< branch rolled back (early abort / abort ack)
};

const char* VoteName(Vote vote);

struct VoteMessage : sim::MessageBase {
  sim::MessageType type() const override {
    return sim::MessageType::kVoteMessage;
  }
  Xid xid;
  Vote vote = Vote::kPrepared;
};

/// Several explicit prepares bound for one data source, coalesced by the
/// DM's dispatch queue when they go out in the same event-loop tick (group
/// commit at the DM releases many decisions/prepares at once).
struct PrepareBatch : sim::MessageBase {
  sim::MessageType type() const override {
    return sim::MessageType::kPrepareBatch;
  }
  std::vector<Xid> xids;
  size_t WireSize() const override { return 48 + xids.size() * 24; }
};

/// Final decision from the DM. `one_phase` commits an un-prepared branch
/// directly (XA COMMIT ... ONE PHASE; centralized transactions).
struct DecisionRequest : sim::MessageBase {
  sim::MessageType type() const override {
    return sim::MessageType::kDecisionRequest;
  }
  Xid xid;
  bool commit = true;
  bool one_phase = false;
};

struct DecisionAck : sim::MessageBase {
  sim::MessageType type() const override {
    return sim::MessageType::kDecisionAck;
  }
  Xid xid;
  bool committed = false;
  /// Echo of the request's one_phase flag: a failed one-phase commit is a
  /// clean abort (the branch was never prepared anywhere); a failed
  /// two-phase commit of a prepared branch would be an atomicity bug.
  bool one_phase = false;
  Status status;
};

/// One decision of a DecisionBatch.
struct DecisionItem {
  Xid xid;
  bool commit = true;
  bool one_phase = false;
};

/// Several decisions bound for one data source, coalesced like
/// PrepareBatch. The source processes items in order and acks each one
/// individually (acks carry per-transaction status).
struct DecisionBatch : sim::MessageBase {
  sim::MessageType type() const override {
    return sim::MessageType::kDecisionBatch;
  }
  std::vector<DecisionItem> items;
  size_t WireSize() const override { return 48 + items.size() * 24; }
};

// ---------------------------------------------------------------------------
// Geo-agent <-> geo-agent (early abort, §IV-A)
// ---------------------------------------------------------------------------

/// Proactive peer-abort notification, sent data-source to data-source
/// without DM coordination.
struct PeerAbortRequest : sim::MessageBase {
  sim::MessageType type() const override {
    return sim::MessageType::kPeerAbortRequest;
  }
  TxnId txn_id = kInvalidTxn;
  NodeId origin = kInvalidNode;  ///< the data source where the failure hit
};

// ---------------------------------------------------------------------------
// Replication (leader-follower WAL shipping, src/replication)
// ---------------------------------------------------------------------------

/// What a replicated log entry records. Prepare entries stage a branch's
/// write set for failover; commit entries carry the write set that followers
/// apply; abort entries discard a staged prepare. Migration entries journal
/// shard-migration control state (no store effect): Begin opens an outbound
/// migration at the source group, Cutover seals it (the range is fenced and
/// fully transferred), End resolves it (published, cancelled, or aborted).
/// A promoted leader inherits every Begin without an End and deterministically
/// resumes (Cutover present) or aborts (Begin only) the migration — the
/// control state is epoch-fenced exactly like staged prepares.
enum class ReplEntryType : uint8_t {
  kPrepare,
  kCommit,
  kAbort,
  kMigrationBegin,
  kMigrationCutover,
  kMigrationEnd,
};

const char* ReplEntryTypeName(ReplEntryType type);

/// Control payload of the kMigration* entry types: everything a promoted
/// source leader needs to re-fence / re-report / abort the migration
/// without any volatile state from the deposed leader.
struct MigrationRecord {
  uint64_t migration_id = 0;
  sharding::ShardRange range;          ///< owner = source (pre-cutover)
  NodeId dest = kInvalidNode;          ///< destination logical group
  NodeId dest_leader = kInvalidNode;   ///< dest leader at planning time
  uint64_t new_version = 0;            ///< map version the cutover publishes
  NodeId balancer = kInvalidNode;      ///< where cutover/abort reports go
  Micros timeout = 0;                  ///< balancer cancellation window
  /// Cutover records: the delta sequence to resume from. Every delta was
  /// acked when the cutover was journaled, so a promoted leader continues
  /// numbering here for drain commits of installed prepared branches.
  uint64_t delta_next_seq = 1;
};

/// One write of a replicated branch, as an absolute value (deltas are
/// resolved at the leader, so application on followers is idempotent).
struct ReplWrite {
  RecordKey key;
  int64_t value = 0;
};

/// One entry of a replica group's shipped WAL.
struct ReplEntry {
  uint64_t index = 0;  ///< 1-based position in the group log
  uint64_t epoch = 0;  ///< leadership epoch that appended the entry
  ReplEntryType type = ReplEntryType::kCommit;
  Xid xid;  ///< xid.data_source is the group's logical node id
  /// Middleware coordinating the transaction — a promoted leader re-votes
  /// staged prepares to it after failover.
  NodeId coordinator = kInvalidNode;
  std::vector<ReplWrite> writes;
  Micros at = 0;  ///< leader virtual time at append
  /// Migration control payload — set on kMigration* entries only, shared
  /// (immutable) so the rare control records don't inflate every commit
  /// entry in the replicated log.
  std::shared_ptr<const MigrationRecord> migration;
  /// Destination-side chunk-ack journaling: a commit entry that installs a
  /// migration ingest (snapshot chunk or delta batch) is tagged with the
  /// migration id and the stream position it covers, so the group log
  /// records exactly which ack each quorum backed. Followers fold the tags
  /// into a per-migration ingest journal (ShardMigrator::NoteIngestApplied)
  /// — that journal is what a promoted destination leader declines from
  /// when the source re-offers the stream (ShardSeedOffer), replacing the
  /// balancer's timeout-cancel with resume-by-hash. 0 = not a migration
  /// ingest.
  uint64_t ingest_migration_id = 0;
  uint64_t ingest_chunk_seq = 0;  ///< snapshot chunk seq (0 for deltas)
  uint64_t ingest_delta_seq = 0;  ///< delta batch seq (0 for chunks)
  /// Content hash of the chunk's packed records (common::ContentHash64 of
  /// the uncompressed wire payload) — the identity the decline handshake
  /// compares against the source's re-offer. 0 for deltas.
  uint64_t ingest_content_hash = 0;
};

/// Leader -> follower log shipping. Empty `entries` is a heartbeat; both
/// carry the quorum commit watermark so followers can apply.
struct ReplAppendRequest : sim::MessageBase {
  sim::MessageType type() const override {
    return sim::MessageType::kReplAppendRequest;
  }
  NodeId group = kInvalidNode;  ///< logical data source id
  uint64_t epoch = 0;
  /// Index of the entry immediately before `entries` (0 = log start).
  uint64_t prev_index = 0;
  /// Epoch of the entry at prev_index (0 at log start): the follower
  /// accepts only if its own log matches, so divergent tails from deposed
  /// leaders are detected and truncated.
  uint64_t prev_epoch = 0;
  std::vector<ReplEntry> entries;
  uint64_t commit_watermark = 0;
  /// Highest index every group member is known to hold (leader's min match
  /// bounded by the watermark): followers may compact their log prefix up
  /// to here and no further, so any future leader can still re-ship the
  /// retained tail to a lagging peer.
  uint64_t compact_floor = 0;
  // ---- WAN envelope (src/common/compress.h) ----
  // When `payload` is non-empty it replaces `entries` on the wire: the
  // batch is packed (protocol::PackEntries), optionally compressed under
  // `payload_codec`, and verified end-to-end against `payload_hash` (the
  // FNV hash of the UNCOMPRESSED packed bytes) before the receiver unpacks
  // it back into `entries`. A frame failing the check is dropped whole —
  // the follower's nack/retransmit path recovers, nothing half-applies.
  // The leader only builds an envelope once the follower's ack advertised
  // a codec (mixed-version actors keep receiving plain `entries`).
  uint8_t payload_codec = 0;  ///< common::WireCodec
  uint32_t payload_uncompressed_len = 0;
  uint64_t payload_hash = 0;
  std::string payload;
  size_t WireSize() const override {
    size_t bytes = 64;
    if (!payload.empty()) return bytes + payload.size();
    for (const ReplEntry& e : entries) bytes += 48 + e.writes.size() * 16;
    return bytes;
  }
};

struct ReplAppendAck : sim::MessageBase {
  sim::MessageType type() const override {
    return sim::MessageType::kReplAppendAck;
  }
  NodeId group = kInvalidNode;
  uint64_t epoch = 0;  ///< follower's current epoch (leader steps down if newer)
  /// Highest log index the follower holds after processing the append.
  uint64_t ack_index = 0;
  bool ok = true;  ///< false: log gap — leader rewinds to ack_index + 1
  /// Codecs this follower can decode (common::SupportedCodecMask, gated by
  /// its wan_compression knob). 0 — the default a pre-negotiation actor
  /// sends — keeps the leader shipping plain entries.
  uint32_t codec_mask = 0;
  size_t WireSize() const override { return 48; }
};

/// Candidate -> replica during leader election.
struct ReplVoteRequest : sim::MessageBase {
  sim::MessageType type() const override {
    return sim::MessageType::kReplVoteRequest;
  }
  NodeId group = kInvalidNode;
  uint64_t epoch = 0;  ///< candidate's proposed (incremented) epoch
  /// (epoch of last log entry, log length): voters compare these
  /// lexicographically, Raft-style, so a stale tail cannot outrank
  /// quorum-committed entries from a newer epoch.
  uint64_t last_log_epoch = 0;
  uint64_t last_log_index = 0;
  size_t WireSize() const override { return 48; }
};

struct ReplVoteResponse : sim::MessageBase {
  sim::MessageType type() const override {
    return sim::MessageType::kReplVoteResponse;
  }
  NodeId group = kInvalidNode;
  uint64_t epoch = 0;
  bool granted = false;
  uint64_t voter_last_index = 0;
  size_t WireSize() const override { return 48; }
};

/// Broadcast by a freshly elected leader to the middlewares so they update
/// routing and retry in-flight branches.
struct LeaderAnnounce : sim::MessageBase {
  sim::MessageType type() const override {
    return sim::MessageType::kLeaderAnnounce;
  }
  NodeId group = kInvalidNode;
  uint64_t epoch = 0;
  NodeId leader = kInvalidNode;
  size_t WireSize() const override { return 48; }
};

/// Sent by a replica that received coordinator traffic while not being the
/// group's leader (stale middleware routing).
struct NotLeaderResponse : sim::MessageBase {
  sim::MessageType type() const override {
    return sim::MessageType::kNotLeaderResponse;
  }
  NodeId group = kInvalidNode;
  uint64_t epoch = 0;
  NodeId leader_hint = kInvalidNode;  ///< kInvalidNode while electing
  size_t WireSize() const override { return 48; }
};

/// Stale-bounded read of committed data served by a follower, used for
/// read-only branches when the middleware enables follower reads.
struct FollowerReadRequest : sim::MessageBase {
  sim::MessageType type() const override {
    return sim::MessageType::kFollowerReadRequest;
  }
  NodeId group = kInvalidNode;
  TxnId txn_id = kInvalidTxn;
  uint64_t round_seq = 0;
  std::vector<RecordKey> keys;
  Micros max_staleness = 0;
  size_t WireSize() const override { return 64 + keys.size() * 16; }
};

struct FollowerReadResponse : sim::MessageBase {
  sim::MessageType type() const override {
    return sim::MessageType::kFollowerReadResponse;
  }
  NodeId group = kInvalidNode;
  TxnId txn_id = kInvalidTxn;
  uint64_t round_seq = 0;
  bool ok = false;  ///< false: staleness bound exceeded — retry at the leader
  Micros staleness = 0;
  std::vector<int64_t> values;
  size_t WireSize() const override { return 64 + values.size() * 8; }
};

// ---------------------------------------------------------------------------
// Elastic sharding (src/sharding): live shard migration + map publication
// ---------------------------------------------------------------------------

/// Balancer -> source replica-group leader: start migrating `range` to the
/// replica group `dest`. The cutover will publish the range at
/// `new_version`; until then the map is unchanged and the source serves
/// (and, once fenced, drains) the range.
struct ShardMigrateRequest : sim::MessageBase {
  sim::MessageType type() const override {
    return sim::MessageType::kShardMigrateRequest;
  }
  uint64_t migration_id = 0;
  sharding::ShardRange range;   ///< owner field = current owner (source)
  NodeId dest = kInvalidNode;   ///< destination logical group
  NodeId dest_leader = kInvalidNode;  ///< balancer's view of dest's leader
  uint64_t new_version = 0;
  /// Balancer-side cancellation timeout; the source self-cancels (and
  /// unfences) after twice this, so a balancer that died mid-migration
  /// cannot wedge the range in the fenced state forever.
  Micros timeout = 0;
  size_t WireSize() const override { return 96; }
};

/// Balancer -> source leader: abandon a timed-out migration (e.g. the
/// source crashed mid-copy and a promoted leader has no migration state,
/// or the destination never acked). Unfences the range.
struct ShardMigrateCancel : sim::MessageBase {
  sim::MessageType type() const override {
    return sim::MessageType::kShardMigrateCancel;
  }
  uint64_t migration_id = 0;
  size_t WireSize() const override { return 48; }
};

/// Bulk record transfer. Two users share this install path:
///  * shard migration (migration_id != 0): source leader -> dest leader,
///    carrying one bounded, sequenced chunk of the moving range's committed
///    records. The stream is windowed by receiver-driven credit (see
///    ShardSnapshotAck): the source may have at most `acked + credit`
///    chunks outstanding, so a slow destination backpressures the source
///    instead of flooding the event loop. `last` marks the final chunk.
///  * replication snapshot bootstrap (migration_id == 0): group leader ->
///    follower whose log was fully compacted away, carrying the leader's
///    full applied store; base_index/base_epoch position the follower's
///    (empty) log at the compaction boundary so shipping resumes from the
///    retained tail.
struct ShardSnapshotChunk : sim::MessageBase {
  sim::MessageType type() const override {
    return sim::MessageType::kShardSnapshotChunk;
  }
  uint64_t migration_id = 0;
  NodeId group = kInvalidNode;   ///< dest logical group / repl group id
  sharding::ShardRange range;    ///< moving range (migration only)
  uint64_t seq = 0;              ///< 1-based chunk sequence (migration only)
  bool last = false;             ///< final chunk of the stream
  uint64_t epoch = 0;            ///< leadership epoch (bootstrap only)
  uint64_t base_index = 0;       ///< log index covered through (bootstrap)
  uint64_t base_epoch = 0;       ///< epoch of the entry at base_index
  std::vector<ReplWrite> records;
  // ---- WAN envelope (src/common/compress.h) ----
  // Non-empty `payload` replaces `records` on the wire (packed via
  // protocol::PackWrites, optionally compressed). `content_hash` is always
  // set — even on raw chunks — because beyond integrity it is the chunk's
  // identity in the re-seed handshake: the destination journals it with
  // the ingest (ReplEntry::ingest_content_hash) and declines the chunk
  // when the source re-offers the same hash after a failover.
  uint8_t payload_codec = 0;  ///< common::WireCodec
  uint32_t payload_uncompressed_len = 0;
  uint64_t content_hash = 0;  ///< hash of the packed (uncompressed) records
  std::string payload;
  size_t WireSize() const override {
    if (!payload.empty()) return 112 + payload.size();
    return 112 + records.size() * 16;
  }
};

/// Dest leader -> source leader: chunk `seq` (and everything before it) is
/// durably applied (with a replicated destination, quorum-durable). Carries
/// the receiver's flow-control grant: the source may send chunks up to
/// seq + credit. Duplicate chunks re-ack with the current position so a
/// lost ack cannot wedge the stream.
struct ShardSnapshotAck : sim::MessageBase {
  sim::MessageType type() const override {
    return sim::MessageType::kShardSnapshotAck;
  }
  uint64_t migration_id = 0;
  uint64_t seq = 0;     ///< highest contiguously applied chunk
  uint64_t credit = 1;  ///< additional chunks the receiver will buffer
  /// Codecs the destination can decode (0 = pre-negotiation actor: the
  /// source keeps shipping plain records).
  uint32_t codec_mask = 0;
  size_t WireSize() const override { return 48; }
};

/// Source leader -> dest leader: writes committed on the moving range
/// after the snapshot cut. Sequenced per migration; the destination
/// applies batches in order (absolute values, so application is
/// idempotent).
struct ShardDeltaBatch : sim::MessageBase {
  sim::MessageType type() const override {
    return sim::MessageType::kShardDeltaBatch;
  }
  uint64_t migration_id = 0;
  uint64_t seq = 0;  ///< 1-based batch sequence
  std::vector<ReplWrite> writes;
  size_t WireSize() const override { return 64 + writes.size() * 16; }
};

struct ShardDeltaAck : sim::MessageBase {
  sim::MessageType type() const override {
    return sim::MessageType::kShardDeltaAck;
  }
  uint64_t migration_id = 0;
  uint64_t seq = 0;  ///< highest contiguously applied batch
  size_t WireSize() const override { return 48; }
};

/// Source leader -> balancer: the range is fenced, every in-flight branch
/// on it drained (or aborted) and every delta acked by the destination —
/// the balancer may publish the new placement.
struct ShardCutoverReady : sim::MessageBase {
  sim::MessageType type() const override {
    return sim::MessageType::kShardCutoverReady;
  }
  uint64_t migration_id = 0;
  sharding::ShardRange range;  ///< owner = destination, version = new
  /// True when the source group journaled a MigrationCutover record through
  /// its replicated log (quorum-durable) before this report went out. The
  /// fence then survives a source failover — a promoted leader re-fences
  /// from the log and re-reports — so the balancer may publish even if the
  /// source group's leadership changed since planning. False only for
  /// unreplicated sources, where the stale-epoch compare still gates the
  /// publish.
  bool logged = false;
  size_t WireSize() const override { return 96; }
};

/// Source leader -> balancer: a promoted source leader inherited a
/// MigrationBegin record with no Cutover — the stream state died with the
/// deposed leader, so it aborted the migration from the log (journaling a
/// MigrationEnd). The balancer cancels instead of waiting for the timeout.
struct ShardMigrateAborted : sim::MessageBase {
  sim::MessageType type() const override {
    return sim::MessageType::kShardMigrateAborted;
  }
  uint64_t migration_id = 0;
  size_t WireSize() const override { return 48; }
};

/// One chunk's identity in an incremental re-seed offer: its stream
/// sequence, the content hash of its packed records, and the key span it
/// covered. Migration re-offers replay the ORIGINAL per-chunk hashes the
/// source retained, so a destination that journaled the ingest declines
/// exactly. Bootstrap offers are built fresh from the leader's store; the
/// key span lets the follower hash its own records over [lo, hi] and
/// decline spans it already holds byte-for-byte.
struct SeedDigest {
  uint64_t seq = 0;   ///< 1-based chunk sequence
  uint64_t hash = 0;  ///< ContentHash64 of the packed records
  RecordKey lo;       ///< first key the chunk covers
  RecordKey hi;       ///< last key the chunk covers
  bool last = false;  ///< final chunk of the stream
};

/// Source -> destination: "this is the chunk stream; decline what you
/// hold". Two users, like ShardSnapshotChunk:
///  * migration resume (migration_id != 0): sent by the source leader when
///    the balancer re-points a mid-stream migration at a freshly promoted
///    destination leader. The digests are the chunks already sent (their
///    original hashes); the new leader declines the prefix its replicated
///    ingest journal confirms and the stream resumes after it — no
///    timeout-cancel, no full re-copy.
///  * follower bootstrap (migration_id == 0): sent by the group leader
///    instead of one monolithic store snapshot. base_index/base_epoch
///    position the follower's log exactly as the old single-chunk path
///    did, once every non-declined chunk has been applied.
struct ShardSeedOffer : sim::MessageBase {
  sim::MessageType type() const override {
    return sim::MessageType::kShardSeedOffer;
  }
  uint64_t migration_id = 0;
  NodeId group = kInvalidNode;  ///< dest logical group / repl group id
  sharding::ShardRange range;   ///< moving range (migration only)
  uint64_t epoch = 0;           ///< sender's leadership epoch
  uint64_t base_index = 0;      ///< bootstrap only (see ShardSnapshotChunk)
  uint64_t base_epoch = 0;
  std::vector<SeedDigest> digests;
  size_t WireSize() const override { return 96 + digests.size() * 48; }
};

/// Destination -> source: the chunks (by seq) the receiver already holds
/// and therefore declines, plus its resume state. Everything NOT declined
/// is (re)sent. Also the natural carrier of the receiver's codec mask and
/// credit for the resumed stream.
struct ShardSeedDecline : sim::MessageBase {
  sim::MessageType type() const override {
    return sim::MessageType::kShardSeedDecline;
  }
  uint64_t migration_id = 0;
  NodeId group = kInvalidNode;
  uint64_t epoch = 0;  ///< receiver's epoch (stale offers die here)
  std::vector<uint64_t> declined;  ///< chunk seqs held, ascending
  /// Migration resume: highest contiguously applied delta batch — the
  /// source resends its unacked deltas past this.
  uint64_t delta_seq = 0;
  uint64_t credit = 1;      ///< flow-control grant for the resumed stream
  uint32_t codec_mask = 0;  ///< codecs the receiver decodes
  size_t WireSize() const override { return 64 + declined.size() * 8; }
};

/// Balancer -> every DM and data-source replica: authoritative shard map.
/// Receivers adopt entries per-range by version (last-writer-wins under
/// the single balancer writer), so the epoch switch is atomic per actor.
struct ShardMapUpdate : sim::MessageBase {
  sim::MessageType type() const override {
    return sim::MessageType::kShardMapUpdate;
  }
  std::vector<sharding::ShardRange> entries;
  size_t WireSize() const override { return 48 + entries.size() * 32; }
};

/// Data source -> DM: "WrongShardEpoch" bounce of a batch routed under a
/// stale map. Carries the patched range so the DM adopts it and re-routes
/// the batch (or aborts the transaction when the branch already executed
/// earlier rounds here).
struct ShardRedirect : sim::MessageBase {
  sim::MessageType type() const override {
    return sim::MessageType::kShardRedirect;
  }
  TxnId txn_id = kInvalidTxn;
  uint64_t round_seq = 0;
  sharding::ShardRange entry;  ///< owner = the range's current owner
  size_t WireSize() const override { return 96; }
};

// ---------------------------------------------------------------------------
// Latency monitoring (paper §VI: ping thread at 10 ms intervals)
// ---------------------------------------------------------------------------

struct PingRequest : sim::MessageBase {
  sim::MessageType type() const override {
    return sim::MessageType::kPingRequest;
  }
  uint64_t seq = 0;
  Micros sent_at = 0;
  /// Shard-map anti-entropy: the sender's (DM's) shard-map epoch. A data
  /// source holding a newer map piggybacks it on the pong, so a DM that
  /// missed a publish converges within one ping interval instead of
  /// waiting to bounce off a redirect.
  uint64_t shard_epoch = 0;
  size_t WireSize() const override { return 40; }
};

struct PingResponse : sim::MessageBase {
  sim::MessageType type() const override {
    return sim::MessageType::kPingResponse;
  }
  uint64_t seq = 0;
  Micros sent_at = 0;
  /// Capacity signal: branches in flight at the responding engine (live
  /// transactions + parked lock waiters). The balancer's placement scorer
  /// subtracts a load penalty derived from this from the RTT gain, so hot
  /// chunks cannot all pile onto the one nearest node.
  uint64_t inflight = 0;
  /// Saturation signal for overload control: current depth of the engine
  /// run queue and its configured bound (0 = unbounded). The DM's
  /// admission controller sheds new transactions when the occupancy
  /// estimate (run_queue / run_queue_limit) crosses its threshold, so
  /// backpressure from a saturated source reaches clients as Overloaded
  /// replies instead of timeouts.
  uint64_t run_queue = 0;
  uint64_t run_queue_limit = 0;
  /// Responder's shard-map epoch (anti-entropy: a DM seeing a lower value
  /// than its own pushes the current map to the responder).
  uint64_t shard_epoch = 0;
  /// Piggybacked map when the ping's shard_epoch was behind this node's
  /// map (empty otherwise). The DM adopts the entries.
  std::vector<sharding::ShardRange> map_entries;
  size_t WireSize() const override { return 48 + map_entries.size() * 32; }
};

}  // namespace protocol
}  // namespace geotp

#endif  // GEOTP_PROTOCOL_MESSAGES_H_
