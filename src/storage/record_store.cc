#include "storage/record_store.h"

namespace geotp {
namespace storage {

void RecordStore::LoadTable(uint32_t table, uint64_t count,
                            int64_t initial_value) {
  records_.reserve(records_.size() + count);
  for (uint64_t k = 0; k < count; ++k) {
    records_[RecordKey{table, k}] = Record{initial_value, 0};
  }
}

void RecordStore::Put(const RecordKey& key, int64_t value) {
  records_[key] = Record{value, 0};
}

std::optional<Record> RecordStore::Get(const RecordKey& key) const {
  auto it = records_.find(key);
  if (it == records_.end()) return std::nullopt;
  return it->second;
}

void RecordStore::Apply(const RecordKey& key, int64_t value) {
  Record& rec = records_[key];
  rec.value = value;
  rec.version++;
}

size_t RecordStore::ApproxBytes() const {
  // key + record + hash-table overhead, a deliberate overestimate.
  return records_.size() * (sizeof(RecordKey) + sizeof(Record) + 32);
}

}  // namespace storage
}  // namespace geotp
