#include "storage/engine.h"

#include <utility>

#include "common/logging.h"

namespace geotp {
namespace storage {

EngineConfig MySqlEngineConfig() {
  EngineConfig config;
  config.read_cost = 220;
  config.write_cost = 420;
  config.prepare_fsync_cost = 2200;
  config.commit_fsync_cost = 1000;
  return config;
}

EngineConfig PostgresEngineConfig() {
  EngineConfig config;
  config.read_cost = 180;
  config.write_cost = 460;
  config.prepare_fsync_cost = 1800;
  config.commit_fsync_cost = 1200;
  return config;
}

TransactionEngine::TransactionEngine(EngineConfig config)
    : config_(config) {}

TransactionEngine::TxnData* TransactionEngine::Find(const Xid& xid) {
  auto it = txns_.find(xid);
  return it == txns_.end() ? nullptr : &it->second;
}

const TransactionEngine::TxnData* TransactionEngine::Find(
    const Xid& xid) const {
  auto it = txns_.find(xid);
  return it == txns_.end() ? nullptr : &it->second;
}

Status TransactionEngine::Begin(const Xid& xid) {
  auto [it, inserted] = txns_.try_emplace(xid);
  if (!inserted) {
    return Status::AlreadyExists("xa branch exists: " + xid.ToString());
  }
  (void)it;
  return Status::OK();
}

void TransactionEngine::ExecuteOp(const Xid& xid, const Operation& op,
                                  OpCallback callback) {
  TxnData* data = Find(xid);
  if (data == nullptr || data->state != TxnState::kActive) {
    callback(Status::Aborted("op on non-active branch " + xid.ToString()), 0);
    return;
  }
  GEOTP_CHECK(data->pending_request == kInvalidLockRequest,
              "one outstanding op per branch: " << xid.ToString());

  const LockMode mode = op.is_write ? LockMode::kExclusive : LockMode::kShared;
  // Capture by value: `op` lives on the caller's stack.
  const Operation operation = op;
  const Xid owner = xid;
  LockRequestId id = locks_.RequestLock(
      owner, operation.key, mode,
      [this, owner, operation, cb = std::move(callback)](Status status) {
        TxnData* txn = Find(owner);
        if (txn != nullptr) txn->pending_request = kInvalidLockRequest;
        if (!status.ok()) {
          cb(status, 0);
          return;
        }
        if (txn == nullptr || txn->state != TxnState::kActive) {
          cb(Status::Aborted("branch gone while waiting"), 0);
          return;
        }
        if (operation.is_write) {
          auto existing = store_.Get(operation.key);
          const int64_t base = existing ? existing->value : 0;
          txn->undo.push_back(UndoEntry{
              operation.key, base, existing ? existing->version : 0});
          const int64_t final_value =
              operation.is_delta ? base + operation.write_value
                                 : operation.write_value;
          store_.Apply(operation.key, final_value);
          cb(Status::OK(), final_value);
        } else {
          auto record = store_.Get(operation.key);
          cb(Status::OK(), record ? record->value : 0);
        }
      });
  if (id != kInvalidLockRequest) {
    // Parked. The callback above fires later; remember the id so Rollback
    // or a timeout can cancel it.
    TxnData* txn = Find(xid);
    GEOTP_CHECK(txn != nullptr, "txn vanished while parking");
    txn->pending_request = id;
  }
}

bool TransactionEngine::HasPendingOp(const Xid& xid) const {
  const TxnData* data = Find(xid);
  return data != nullptr && data->pending_request != kInvalidLockRequest;
}

void TransactionEngine::CancelPendingOp(const Xid& xid, Status status) {
  TxnData* data = Find(xid);
  if (data == nullptr || data->pending_request == kInvalidLockRequest) return;
  const LockRequestId id = data->pending_request;
  data->pending_request = kInvalidLockRequest;
  locks_.CancelRequest(id, std::move(status));
}

Status TransactionEngine::Prepare(const Xid& xid, Micros now) {
  TxnData* data = Find(xid);
  if (data == nullptr) {
    return Status::NotFound("prepare: unknown branch " + xid.ToString());
  }
  if (data->state != TxnState::kActive) {
    return Status::Aborted("prepare: branch not active");
  }
  if (data->pending_request != kInvalidLockRequest) {
    return Status::Aborted("prepare: operation still in flight");
  }
  data->state = TxnState::kPrepared;
  wal_.Append(WalEntryType::kPrepare, xid, now);
  return Status::OK();
}

std::vector<std::pair<RecordKey, int64_t>> TransactionEngine::WriteSetOf(
    const Xid& xid) const {
  std::vector<std::pair<RecordKey, int64_t>> writes;
  const TxnData* data = Find(xid);
  if (data == nullptr) return writes;
  for (const UndoEntry& undo : data->undo) {
    bool seen = false;
    for (const auto& [key, value] : writes) {
      if (key == undo.key) {
        seen = true;
        break;
      }
    }
    if (seen) continue;  // several writes to one key: one final value
    auto record = store_.Get(undo.key);
    writes.emplace_back(undo.key, record ? record->value : 0);
  }
  return writes;
}

std::vector<std::pair<RecordKey, int64_t>>
TransactionEngine::CommittedRecords(
    const std::function<bool(const RecordKey&)>& filter) const {
  // At most one live branch can hold the exclusive lock on a key, so its
  // OLDEST undo entry (vector order) carries the pre-branch committed
  // value.
  std::unordered_map<RecordKey, int64_t, RecordKeyHash> uncommitted;
  for (const auto& [xid, data] : txns_) {
    std::unordered_map<RecordKey, int64_t, RecordKeyHash> first_undo;
    for (const UndoEntry& undo : data.undo) {
      if (filter && !filter(undo.key)) continue;
      first_undo.emplace(undo.key, undo.old_value);  // keeps the oldest
    }
    uncommitted.insert(first_undo.begin(), first_undo.end());
  }
  std::vector<std::pair<RecordKey, int64_t>> records;
  for (const auto& [key, record] : store_.records()) {
    if (filter && !filter(key)) continue;
    auto it = uncommitted.find(key);
    records.emplace_back(key,
                         it != uncommitted.end() ? it->second : record.value);
  }
  return records;
}

Status TransactionEngine::InstallPreparedBranch(
    const Xid& xid, const std::vector<std::pair<RecordKey, int64_t>>& writes,
    Micros now) {
  GEOTP_RETURN_NOT_OK(Begin(xid));
  TxnData* data = Find(xid);
  for (const auto& [key, value] : writes) {
    bool granted = false;
    const LockRequestId id = locks_.RequestLock(
        xid, key, LockMode::kExclusive,
        [&granted](Status status) { granted = status.ok(); });
    // The engine is quiescent during failover promotion, so every lock
    // grant is synchronous.
    GEOTP_CHECK(id == kInvalidLockRequest && granted,
                "install: lock contention on " << key.ToString());
    auto existing = store_.Get(key);
    data->undo.push_back(UndoEntry{key, existing ? existing->value : 0,
                                   existing ? existing->version : 0});
    store_.Apply(key, value);
  }
  data->state = TxnState::kPrepared;
  wal_.Append(WalEntryType::kPrepare, xid, now);
  return Status::OK();
}

Status TransactionEngine::Commit(const Xid& xid, Micros now) {
  TxnData* data = Find(xid);
  if (data == nullptr) {
    return Status::NotFound("commit: unknown branch " + xid.ToString());
  }
  if (data->state != TxnState::kPrepared &&
      data->state != TxnState::kActive) {
    return Status::Aborted("commit: branch not committable");
  }
  if (data->pending_request != kInvalidLockRequest) {
    return Status::Aborted("commit: operation still in flight");
  }
  wal_.Append(WalEntryType::kCommit, xid, now);
  Finish(xid, *data, TxnState::kCommitted);
  return Status::OK();
}

Status TransactionEngine::Rollback(const Xid& xid, Micros now) {
  TxnData* data = Find(xid);
  if (data == nullptr) return Status::OK();  // idempotent
  if (data->state == TxnState::kCommitted) {
    return Status::Internal("rollback after commit: " + xid.ToString());
  }
  // Cancel an in-flight lock request; its callback observes kAborted.
  if (data->pending_request != kInvalidLockRequest) {
    const LockRequestId id = data->pending_request;
    data->pending_request = kInvalidLockRequest;
    locks_.CancelRequest(id, Status::Aborted("rolled back"));
    data = Find(xid);  // callback may have touched the map
    if (data == nullptr) return Status::OK();
  }
  // Undo in reverse order.
  for (auto it = data->undo.rbegin(); it != data->undo.rend(); ++it) {
    store_.Put(it->key, it->old_value);
  }
  wal_.Append(WalEntryType::kAbort, xid, now);
  Finish(xid, *data, TxnState::kAborted);
  return Status::OK();
}

TxnState TransactionEngine::StateOf(const Xid& xid) const {
  const TxnData* data = Find(xid);
  return data == nullptr ? TxnState::kAborted : data->state;
}

void TransactionEngine::Crash(Micros now) {
  std::vector<Xid> to_abort;
  for (const auto& [xid, data] : txns_) {
    if (data.state != TxnState::kPrepared) to_abort.push_back(xid);
  }
  for (const Xid& xid : to_abort) {
    (void)Rollback(xid, now);
  }
}

std::vector<Xid> TransactionEngine::PreparedXids() const {
  std::vector<Xid> out;
  for (const auto& [xid, data] : txns_) {
    if (data.state == TxnState::kPrepared) out.push_back(xid);
  }
  return out;
}

void TransactionEngine::Finish(const Xid& xid, TxnData& data,
                               TxnState final_state) {
  data.state = final_state;
  locks_.ReleaseAll(xid);
  txns_.erase(xid);
}

}  // namespace storage
}  // namespace geotp
