#include "storage/lock_manager.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace geotp {
namespace storage {

LockRequestId LockManager::RequestLock(const Xid& owner, const RecordKey& key,
                                       LockMode mode, LockCallback callback) {
  LockState& state = locks_[key];

  auto holder_it = state.holders.find(owner);
  if (holder_it != state.holders.end()) {
    // Re-entrant: already holds >= mode?
    if (holder_it->second == LockMode::kExclusive ||
        mode == LockMode::kShared) {
      stats_.grants_immediate++;
      callback(Status::OK());
      return kInvalidLockRequest;
    }
    // Upgrade S -> X.
    if (state.holders.size() == 1) {
      holder_it->second = LockMode::kExclusive;
      state.mode = LockMode::kExclusive;
      stats_.upgrades++;
      stats_.grants_immediate++;
      callback(Status::OK());
      return kInvalidLockRequest;
    }
    // Park the upgrade ahead of regular waiters (deadlock-checked: two
    // shared holders upgrading concurrently is the classic cycle).
    std::unordered_set<RecordKey, RecordKeyHash> visited;
    if (WouldDeadlock(owner, key, /*depth=*/0, &visited)) {
      stats_.deadlocks++;
      callback(Status::Aborted("deadlock victim"));
      return kInvalidLockRequest;
    }
    const LockRequestId id = next_request_id_++;
    state.queue.push_front(
        Waiter{id, owner, LockMode::kExclusive, true, std::move(callback)});
    parked_.emplace(id, key);
    waiting_on_[owner] = key;
    return id;
  }

  // New request: grant iff compatible with holders and nobody queues ahead.
  const bool compatible =
      state.holders.empty() || Compatible(state.mode, mode);
  if (compatible && state.queue.empty()) {
    state.holders.emplace(owner, mode);
    if (state.holders.size() == 1 || mode == LockMode::kExclusive) {
      state.mode = state.holders.size() == 1 ? mode : LockMode::kShared;
    }
    held_by_owner_[owner].insert(key);
    stats_.grants_immediate++;
    callback(Status::OK());
    return kInvalidLockRequest;
  }

  std::unordered_set<RecordKey, RecordKeyHash> visited;
  if (WouldDeadlock(owner, key, /*depth=*/0, &visited)) {
    stats_.deadlocks++;
    callback(Status::Aborted("deadlock victim"));
    return kInvalidLockRequest;
  }
  const LockRequestId id = next_request_id_++;
  state.queue.push_back(Waiter{id, owner, mode, false, std::move(callback)});
  parked_.emplace(id, key);
  waiting_on_[owner] = key;
  return id;
}

bool LockManager::WouldDeadlock(
    const Xid& requester, const RecordKey& key, int depth,
    std::unordered_set<RecordKey, RecordKeyHash>* visited) const {
  if (depth > 64) return false;  // cap the search; miss rather than stall
  auto lock_it = locks_.find(key);
  if (lock_it == locks_.end()) return false;
  const LockState& state = lock_it->second;

  // Membership test (runs on every reach): a wait chain arriving at a key
  // the requester HOLDS closes a cycle — the blocker cannot proceed until
  // the requester releases, and the requester is about to wait on the
  // chain's origin. At depth 0 the requester is naturally a holder (lock
  // upgrade), which is not a cycle by itself.
  if (depth > 0 && state.holders.count(requester) > 0) return true;

  // Expansion (runs once per key): follow every blocker's wait edge. A
  // regular request queues behind holders and earlier waiters; an upgrade
  // jumps to the queue front, so at the root key only the holders block it.
  if (!visited->insert(key).second) return false;
  const bool requester_is_upgrading =
      depth == 0 && state.holders.count(requester) > 0;
  auto follow = [&](const Xid& blocker) {
    if (blocker == requester) return false;
    auto wait_it = waiting_on_.find(blocker);
    if (wait_it == waiting_on_.end()) return false;
    return WouldDeadlock(requester, wait_it->second, depth + 1, visited);
  };
  for (const auto& [holder, mode] : state.holders) {
    (void)mode;
    if (follow(holder)) return true;
  }
  if (!requester_is_upgrading) {
    for (const Waiter& waiter : state.queue) {
      if (follow(waiter.owner)) return true;
    }
  }
  return false;
}

void LockManager::CancelRequest(LockRequestId id, Status status) {
  auto it = parked_.find(id);
  if (it == parked_.end()) return;  // already granted or cancelled
  const RecordKey key = it->second;
  parked_.erase(it);

  auto lock_it = locks_.find(key);
  GEOTP_CHECK(lock_it != locks_.end(), "parked request on unknown key");
  LockState& state = lock_it->second;
  for (auto qit = state.queue.begin(); qit != state.queue.end(); ++qit) {
    if (qit->id == id) {
      LockCallback cb = std::move(qit->callback);
      waiting_on_.erase(qit->owner);
      state.queue.erase(qit);
      stats_.cancellations++;
      // Removing a waiter may unblock the queue head (e.g. an X waiter
      // blocking compatible S requests behind it).
      std::vector<LockCallback> to_fire;
      ProcessQueue(key, state, to_fire);
      cb(status);
      for (auto& fire : to_fire) fire(Status::OK());
      return;
    }
  }
  GEOTP_CHECK(false, "parked request not found in queue");
}

void LockManager::ReleaseAll(const Xid& owner) {
  auto owner_it = held_by_owner_.find(owner);
  if (owner_it == held_by_owner_.end()) return;
  std::vector<LockCallback> to_fire;
  for (const RecordKey& key : owner_it->second) {
    auto lock_it = locks_.find(key);
    if (lock_it == locks_.end()) continue;
    LockState& state = lock_it->second;
    state.holders.erase(owner);
    if (state.holders.empty() && state.queue.empty()) {
      locks_.erase(lock_it);
      continue;
    }
    ProcessQueue(key, state, to_fire);
    if (state.holders.empty() && state.queue.empty()) locks_.erase(key);
  }
  held_by_owner_.erase(owner_it);
  for (auto& fire : to_fire) fire(Status::OK());
}

void LockManager::ProcessQueue(const RecordKey& key, LockState& state,
                               std::vector<LockCallback>& to_fire) {
  while (!state.queue.empty()) {
    Waiter& head = state.queue.front();
    if (head.is_upgrade) {
      // Upgrade fires only when its owner is the sole holder.
      if (state.holders.size() == 1 &&
          state.holders.count(head.owner) == 1) {
        state.holders[head.owner] = LockMode::kExclusive;
        state.mode = LockMode::kExclusive;
        stats_.upgrades++;
        stats_.grants_after_wait++;
        parked_.erase(head.id);
        waiting_on_.erase(head.owner);
        to_fire.push_back(std::move(head.callback));
        state.queue.pop_front();
        continue;
      }
      return;
    }
    const bool can_grant =
        state.holders.empty() ||
        (state.mode == LockMode::kShared && head.mode == LockMode::kShared);
    if (!can_grant) return;
    state.holders.emplace(head.owner, head.mode);
    state.mode = head.mode == LockMode::kExclusive ? LockMode::kExclusive
                                                   : LockMode::kShared;
    held_by_owner_[head.owner].insert(key);
    stats_.grants_after_wait++;
    parked_.erase(head.id);
    waiting_on_.erase(head.owner);
    to_fire.push_back(std::move(head.callback));
    state.queue.pop_front();
    // An exclusive grant saturates the lock: nothing else can follow.
    if (state.mode == LockMode::kExclusive) return;
  }
}

bool LockManager::Holds(const Xid& owner, const RecordKey& key,
                        LockMode mode) const {
  auto lock_it = locks_.find(key);
  if (lock_it == locks_.end()) return false;
  auto holder_it = lock_it->second.holders.find(owner);
  if (holder_it == lock_it->second.holders.end()) return false;
  return holder_it->second == LockMode::kExclusive ||
         mode == LockMode::kShared;
}

size_t LockManager::WaitersOn(const RecordKey& key) const {
  auto lock_it = locks_.find(key);
  return lock_it == locks_.end() ? 0 : lock_it->second.queue.size();
}

size_t LockManager::HoldersOn(const RecordKey& key) const {
  auto lock_it = locks_.find(key);
  return lock_it == locks_.end() ? 0 : lock_it->second.holders.size();
}

}  // namespace storage
}  // namespace geotp
