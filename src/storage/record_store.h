// In-memory record store: the "table" hosted by a data source.
//
// Records carry a value and a commit version. The versions serve two
// purposes: (1) the ScalarDB-style baseline validates them at prepare time
// (consensus commit), and (2) the serializability property tests replay
// committed histories against them.
#ifndef GEOTP_STORAGE_RECORD_STORE_H_
#define GEOTP_STORAGE_RECORD_STORE_H_

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "common/status.h"
#include "common/types.h"

namespace geotp {
namespace storage {

struct Record {
  int64_t value = 0;
  uint64_t version = 0;
};

class RecordStore {
 public:
  /// Pre-populates `count` keys of `table` with `initial_value` each.
  void LoadTable(uint32_t table, uint64_t count, int64_t initial_value = 0);

  /// Inserts or overwrites a record (bulk-load path, not transactional).
  void Put(const RecordKey& key, int64_t value);

  std::optional<Record> Get(const RecordKey& key) const;

  /// Transactional write: applies the value, bumps the version.
  /// Missing keys are created (YCSB/TPC-C only update pre-loaded keys, but
  /// inserts — e.g. TPC-C NewOrder rows — land here too).
  void Apply(const RecordKey& key, int64_t value);

  size_t size() const { return records_.size(); }

  /// All resident records, for snapshot transfer (shard migration and
  /// replication follower bootstrap). Keys never written are absent and
  /// read as 0 on every node, so a snapshot of residents is complete.
  const std::unordered_map<RecordKey, Record, RecordKeyHash>& records()
      const {
    return records_;
  }

  /// Rough resident-bytes estimate (memory proxy, Fig. 6b).
  size_t ApproxBytes() const;

 private:
  std::unordered_map<RecordKey, Record, RecordKeyHash> records_;
};

}  // namespace storage
}  // namespace geotp

#endif  // GEOTP_STORAGE_RECORD_STORE_H_
