#include "storage/versioned_store.h"

namespace geotp {
namespace storage {

void VersionedStore::LoadTable(uint32_t table, uint64_t count,
                               int64_t initial_value) {
  records_.reserve(records_.size() + count);
  for (uint64_t k = 0; k < count; ++k) {
    records_[RecordKey{table, k}] = VersionedRecord{initial_value, 0,
                                                    kInvalidTxn, 0};
  }
}

std::optional<VersionedRecord> VersionedStore::Get(
    const RecordKey& key) const {
  auto it = records_.find(key);
  // Missing keys read as a zero-valued version-0 record: tables are
  // logically pre-zeroed, materialized lazily (workloads span millions of
  // keys; eager loading would dominate experiment setup).
  if (it == records_.end()) return VersionedRecord{};
  return it->second;
}

Status VersionedStore::PutIntent(const RecordKey& key, TxnId owner,
                                 int64_t value) {
  VersionedRecord& rec = records_[key];
  if (rec.intent_owner != kInvalidTxn && rec.intent_owner != owner) {
    return Status::Conflict("intent held by " +
                            std::to_string(rec.intent_owner));
  }
  if (rec.intent_owner != owner) {
    rec.intent_owner = owner;
    intents_by_owner_[owner].push_back(key);
  }
  rec.intent_value = value;
  return Status::OK();
}

Status VersionedStore::ValidateVersion(const RecordKey& key, TxnId owner,
                                       uint64_t expected_version) {
  VersionedRecord& rec = records_[key];  // materialize lazily (version 0)
  if (rec.intent_owner != kInvalidTxn && rec.intent_owner != owner) {
    return Status::Conflict("intent held by " +
                            std::to_string(rec.intent_owner));
  }
  if (rec.version != expected_version) {
    return Status::Conflict("version moved: " +
                            std::to_string(rec.version) + " != " +
                            std::to_string(expected_version));
  }
  if (rec.intent_owner != owner) {
    rec.intent_owner = owner;
    rec.intent_value = rec.value;  // read lock: intent preserves the value
    intents_by_owner_[owner].push_back(key);
  }
  return Status::OK();
}

void VersionedStore::CommitIntents(TxnId owner) {
  auto it = intents_by_owner_.find(owner);
  if (it == intents_by_owner_.end()) return;
  for (const RecordKey& key : it->second) {
    auto rec_it = records_.find(key);
    if (rec_it == records_.end()) continue;
    VersionedRecord& rec = rec_it->second;
    if (rec.intent_owner != owner) continue;
    rec.value = rec.intent_value;
    rec.version++;
    rec.intent_owner = kInvalidTxn;
  }
  intents_by_owner_.erase(it);
}

void VersionedStore::AbortIntents(TxnId owner) {
  auto it = intents_by_owner_.find(owner);
  if (it == intents_by_owner_.end()) return;
  for (const RecordKey& key : it->second) {
    auto rec_it = records_.find(key);
    if (rec_it == records_.end()) continue;
    if (rec_it->second.intent_owner == owner) {
      rec_it->second.intent_owner = kInvalidTxn;
    }
  }
  intents_by_owner_.erase(it);
}

bool VersionedStore::HasIntent(const RecordKey& key, TxnId owner) const {
  auto it = records_.find(key);
  return it != records_.end() && it->second.intent_owner == owner;
}

}  // namespace storage
}  // namespace geotp
