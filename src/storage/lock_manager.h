// Strict two-phase-locking lock manager with shared/exclusive record locks.
//
// This models the concurrency control of the underlying data sources
// (MySQL/PostgreSQL at serializable isolation, paper §I footnote). Grants
// are FIFO: a request waits if it is incompatible with current holders or
// if any earlier waiter exists (no barging), matching InnoDB's behaviour
// closely enough for contention-span arithmetic.
//
// The manager is asynchronous: RequestLock() either grants synchronously
// (invoking the callback before returning) or parks the request. Waiters
// are woken by ReleaseAll(). Timeouts are driven from outside via
// CancelRequest() — the data-source node schedules the 5 s lock-wait
// timeout on the event loop.
#ifndef GEOTP_STORAGE_LOCK_MANAGER_H_
#define GEOTP_STORAGE_LOCK_MANAGER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace geotp {
namespace storage {

enum class LockMode : uint8_t { kShared = 0, kExclusive = 1 };

/// Result passed to the request callback on grant/cancel.
using LockCallback = std::function<void(Status)>;

/// Handle for cancelling a parked request.
using LockRequestId = uint64_t;
constexpr LockRequestId kInvalidLockRequest = 0;

struct LockStats {
  uint64_t grants_immediate = 0;
  uint64_t grants_after_wait = 0;
  uint64_t cancellations = 0;
  uint64_t upgrades = 0;
  uint64_t deadlocks = 0;
};

class LockManager {
 public:
  LockManager() = default;
  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Requests `mode` on `key` for transaction `owner`.
  ///
  /// * If the owner already holds a lock of equal or stronger mode, the
  ///   callback fires immediately with OK (re-entrant).
  /// * If the owner holds kShared and requests kExclusive, this is an
  ///   upgrade: it is granted when the owner is the sole holder, and queues
  ///   ahead of regular waiters otherwise.
  /// * Returns kInvalidLockRequest when the callback already fired
  ///   (synchronous grant), else an id usable with CancelRequest().
  ///
  /// Deadlock detection (InnoDB-style wait-for graph): if parking this
  /// request would close a wait cycle, the request is refused instead —
  /// the callback fires synchronously with kAborted("deadlock") and the
  /// requester is the victim.
  LockRequestId RequestLock(const Xid& owner, const RecordKey& key,
                            LockMode mode, LockCallback callback);

  /// Cancels a parked request (lock-wait timeout or early abort). The
  /// callback fires with the given status. No-op if already granted.
  void CancelRequest(LockRequestId id, Status status);

  /// Releases every lock held by `owner` and wakes eligible waiters.
  /// Wake callbacks run synchronously inside this call.
  void ReleaseAll(const Xid& owner);

  /// True if `owner` currently holds a lock on `key` of at least `mode`.
  bool Holds(const Xid& owner, const RecordKey& key, LockMode mode) const;

  /// Number of transactions currently waiting on `key` (hotspot signal).
  size_t WaitersOn(const RecordKey& key) const;
  /// Number of transactions currently holding a lock on `key`.
  size_t HoldersOn(const RecordKey& key) const;

  const LockStats& stats() const { return stats_; }

  /// Total parked requests across all keys.
  size_t total_waiters() const { return parked_.size(); }

 private:
  struct Waiter {
    LockRequestId id;
    Xid owner;
    LockMode mode;
    bool is_upgrade;
    LockCallback callback;
  };

  struct LockState {
    LockMode mode = LockMode::kShared;       // meaningful iff !holders.empty()
    std::unordered_map<Xid, LockMode, XidHash> holders;
    std::deque<Waiter> queue;
  };

  /// Grants as many queued waiters as compatibility allows (FIFO).
  void ProcessQueue(const RecordKey& key, LockState& state,
                    std::vector<LockCallback>& to_fire);

  /// DFS over the wait-for graph: would `requester` waiting on `key` close
  /// a cycle back to itself? Visited-set pruned so hot keys with long wait
  /// queues stay linear; conservative (treats every queued waiter and
  /// every holder as blocking).
  bool WouldDeadlock(
      const Xid& requester, const RecordKey& key, int depth,
      std::unordered_set<RecordKey, RecordKeyHash>* visited) const;

  static bool Compatible(LockMode held, LockMode requested) {
    return held == LockMode::kShared && requested == LockMode::kShared;
  }

  std::unordered_map<RecordKey, LockState, RecordKeyHash> locks_;
  // Reverse index: parked request id -> key (for cancellation).
  std::unordered_map<LockRequestId, RecordKey> parked_;
  // Which key each transaction currently waits on (wait-for graph edges).
  std::unordered_map<Xid, RecordKey, XidHash> waiting_on_;
  // Held keys per owner, for ReleaseAll.
  std::unordered_map<Xid, std::unordered_set<RecordKey, RecordKeyHash>,
                     XidHash>
      held_by_owner_;
  LockRequestId next_request_id_ = 1;
  LockStats stats_;
};

}  // namespace storage
}  // namespace geotp

#endif  // GEOTP_STORAGE_LOCK_MANAGER_H_
