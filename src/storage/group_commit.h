// GroupCommitter: fsync batching for the durability hot path.
//
// Real engines do not pay one fsync per transaction: concurrent commits
// join an open batch and a single flush of the log device makes the whole
// batch durable (InnoDB group commit, PostgreSQL commit_delay). This class
// models that pipeline on the simulated event loop:
//
//   * Append(cost, on_durable) joins the open batch. The batch's flush is
//     scheduled when the batch opens — after `max_batch_delay` (0 still
//     coalesces every append from the same event-loop tick) — or starts
//     early once `max_batch_size` entries joined.
//   * The log device is serial: while a flush is in flight, new appends
//     accumulate into the next batch, which starts when the device frees.
//   * Every waiter is acked (its `on_durable` runs) only at flush
//     completion; the flush duration is the max of the batch's per-entry
//     costs, so a batch of one behaves exactly like an unbatched fsync.
//   * Reset() models a crash: the open batch and any in-flight flush are
//     lost — no waiter ever fires, mirroring WAL entries that were
//     buffered but never reached the disk.
//
// With `enabled = false` every Append schedules its own independent fsync
// (the pre-group-commit cost model), which the benchmarks use as the
// unbatched baseline.
#ifndef GEOTP_STORAGE_GROUP_COMMIT_H_
#define GEOTP_STORAGE_GROUP_COMMIT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "runtime/runtime.h"

namespace geotp {
namespace storage {

struct GroupCommitConfig {
  /// false: one independent fsync per entry (legacy per-txn schedule).
  bool enabled = true;
  /// How long an open batch waits for co-travellers before flushing.
  /// 0 still merges every append from the same event-loop tick.
  Micros max_batch_delay = 0;
  /// A batch this full flushes immediately.
  size_t max_batch_size = 64;
};

struct GroupCommitStats {
  uint64_t fsyncs = 0;          ///< flushes completed
  uint64_t entries = 0;         ///< entries made durable
  uint64_t max_batch_entries = 0;
  /// Mean entries per flush — the amortization factor Fig. 6 cares about.
  double MeanBatchEntries() const {
    return fsyncs == 0 ? 0.0
                       : static_cast<double>(entries) /
                             static_cast<double>(fsyncs);
  }
};

class GroupCommitter {
 public:
  using DurableCallback = std::function<void()>;

  /// Flushes go to `device` (not owned; must outlive the committer). The
  /// timer only drives batching delays — the device decides how long a
  /// flush takes (simulated cost or a real fsync).
  GroupCommitter(runtime::ITimer* timer, runtime::IStableStorage* device,
                 GroupCommitConfig config)
      : timer_(timer), device_(device), config_(config) {}

  /// Convenience for simulated deployments: the device is an owned
  /// SimStableStorage charging each flush's cost on `timer`.
  GroupCommitter(runtime::ITimer* timer, GroupCommitConfig config)
      : timer_(timer),
        owned_device_(std::make_unique<runtime::SimStableStorage>(timer)),
        config_(config) {
    device_ = owned_device_.get();
  }

  /// Joins the open batch. `fsync_cost` is this entry's device time if it
  /// flushed alone; the shared flush charges the max across the batch.
  /// `payload` is the entry's durable bytes (written to the device as part
  /// of the shared flush). `on_durable` runs when that flush completes,
  /// never earlier.
  void Append(Micros fsync_cost, std::string payload,
              DurableCallback on_durable);
  void Append(Micros fsync_cost, DurableCallback on_durable) {
    Append(fsync_cost, std::string(), std::move(on_durable));
  }

  /// Crash: drops the open batch and the in-flight flush without running
  /// any waiter. Durable (already-flushed) entries are unaffected.
  void Reset();

  /// Hook run once per completed flush (WAL fsync accounting).
  void set_on_fsync(std::function<void()> hook) { on_fsync_ = std::move(hook); }

  const GroupCommitStats& stats() const { return stats_; }
  const GroupCommitConfig& config() const { return config_; }
  size_t pending() const { return open_.size() + in_flight_.size(); }

 private:
  struct Entry {
    Micros cost;
    std::string payload;
    DurableCallback on_durable;
  };

  void StartFlush();
  void FinishFlush(uint64_t generation);

  runtime::ITimer* timer_;
  runtime::IStableStorage* device_ = nullptr;
  std::unique_ptr<runtime::IStableStorage> owned_device_;
  GroupCommitConfig config_;
  std::function<void()> on_fsync_;
  std::vector<Entry> open_;       ///< batch accepting new entries
  std::vector<Entry> in_flight_;  ///< batch whose flush is on the device
  bool flushing_ = false;
  runtime::TimerId open_timer_ = runtime::kInvalidTimer;
  /// Bumped by Reset() so stale scheduled events become no-ops.
  uint64_t generation_ = 0;
  GroupCommitStats stats_;
};

}  // namespace storage
}  // namespace geotp

#endif  // GEOTP_STORAGE_GROUP_COMMIT_H_
