// Write-ahead-log cost model and durable-state journal.
//
// Real data sources pay an fsync on XA PREPARE and on COMMIT. In the
// simulation the *time* cost is charged by the data-source node (it
// schedules the fsync duration on the event loop); this class records the
// durable entries so the recovery tests can check what survives a crash.
#ifndef GEOTP_STORAGE_WAL_H_
#define GEOTP_STORAGE_WAL_H_

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace geotp {
namespace storage {

enum class WalEntryType : uint8_t { kPrepare, kCommit, kAbort };

struct WalEntry {
  WalEntryType type;
  Xid xid;
  Micros at;  ///< virtual time of the fsync completion
};

class Wal {
 public:
  /// Appends (buffers) an entry. Appending alone is NOT durability: the
  /// entry reaches the disk at the next fsync, which the owner reports via
  /// NoteFsync(). Under group commit many entries share one fsync, so the
  /// two counters diverge — Fig. 6 resource accounting needs both.
  void Append(WalEntryType type, const Xid& xid, Micros at) {
    entries_.push_back(WalEntry{type, xid, at});
  }

  /// Records one physical log-device flush (possibly covering many
  /// appended entries).
  void NoteFsync() { ++fsyncs_; }

  const std::vector<WalEntry>& entries() const { return entries_; }
  uint64_t fsyncs() const { return fsyncs_; }

  /// True if a prepare entry exists for `xid` with no later commit/abort.
  bool IsPreparedUnresolved(const Xid& xid) const;

 private:
  std::vector<WalEntry> entries_;
  uint64_t fsyncs_ = 0;
};

}  // namespace storage
}  // namespace geotp

#endif  // GEOTP_STORAGE_WAL_H_
