// TransactionEngine: the XA-capable transactional core of one data source.
//
// It wires together the lock manager, record store, undo log and WAL into
// the participant-side state machine:
//
//        ExecuteOp*            Prepare             Commit
//   ACTIVE ----------> ACTIVE ---------> PREPARED --------> COMMITTED
//      \__________________ Rollback ________________/-> ABORTED  (X)
//
// Writes are applied in place under exclusive locks with undo entries
// (strict 2PL, as in InnoDB); Rollback undoes them in reverse order.
// Commit is also allowed straight from ACTIVE to model the XA one-phase
// commit used for centralized transactions.
//
// The engine is time-free: durations (execution cost, fsync cost) are a
// *cost model* the data-source node charges on the event loop. Only lock
// waits are asynchronous here, surfaced through callbacks.
#ifndef GEOTP_STORAGE_ENGINE_H_
#define GEOTP_STORAGE_ENGINE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "storage/lock_manager.h"
#include "storage/record_store.h"
#include "storage/wal.h"

namespace geotp {
namespace storage {

/// Cost model of one data-source engine. Defaults approximate a MySQL /
/// PostgreSQL class server at serializable isolation: a few hundred
/// microseconds per row operation (parse + B-tree + locking), ~2 ms
/// group-commit fsync for XA PREPARE, ~1 ms for the commit record.
struct EngineConfig {
  Micros read_cost = 200;
  Micros write_cost = 400;
  Micros prepare_fsync_cost = 2000;
  Micros commit_fsync_cost = 1000;
  /// Lock-wait timeout enforced by the data-source node (paper: 5 s).
  Micros lock_wait_timeout = SecToMicros(5);
};

/// Engine-flavour presets used for the heterogeneous-deployment study
/// (Table I). The numbers differ slightly so S1/S2/S3 are distinguishable;
/// the XA dialect differences live in src/sql.
EngineConfig MySqlEngineConfig();
EngineConfig PostgresEngineConfig();

enum class TxnState : uint8_t { kActive, kPrepared, kCommitted, kAborted };

struct Operation {
  RecordKey key;
  bool is_write = false;
  int64_t write_value = 0;
  /// Read-modify-write: the final value is current + write_value, resolved
  /// AFTER the exclusive lock is granted (resolving it earlier reads a
  /// stale base and loses concurrent updates).
  bool is_delta = false;
};

/// Outcome of one operation: status + value read (reads only).
using OpCallback = std::function<void(Status, int64_t value)>;

class TransactionEngine {
 public:
  explicit TransactionEngine(EngineConfig config = EngineConfig());

  const EngineConfig& config() const { return config_; }
  RecordStore& store() { return store_; }
  const RecordStore& store() const { return store_; }
  LockManager& locks() { return locks_; }
  const Wal& wal() const { return wal_; }

  /// Reports one physical WAL fsync (the data-source node's GroupCommitter
  /// calls this once per completed flush, however many entries it covered).
  void NoteWalFsync() { wal_.NoteFsync(); }

  /// Begins a transaction branch. Fails if the xid is already known.
  Status Begin(const Xid& xid);

  /// Executes one operation: acquires the lock (S for reads, X for writes)
  /// and applies it. The callback may fire synchronously (lock free) or
  /// later (lock wait). A pending lock request is cancelled by Rollback()
  /// or CancelPendingOp().
  void ExecuteOp(const Xid& xid, const Operation& op, OpCallback callback);

  /// True if the xid has a lock request parked in the wait queue.
  bool HasPendingOp(const Xid& xid) const;

  /// Cancels the parked lock request (lock-wait timeout). The op callback
  /// fires with the given status. The transaction stays ACTIVE; the caller
  /// decides whether to roll back.
  void CancelPendingOp(const Xid& xid, Status status);

  /// XA prepare: persists the branch (WAL entry). ACTIVE -> PREPARED.
  /// Fails with kAborted if there is a pending (unfinished) operation.
  Status Prepare(const Xid& xid, Micros now);

  /// The branch's write set as (key, final absolute value) pairs, deduped
  /// by key. Valid while the branch is ACTIVE or PREPARED (undo entries
  /// still present). Used to ship writes to replication followers.
  std::vector<std::pair<RecordKey, int64_t>> WriteSetOf(const Xid& xid) const;

  /// Committed values of the resident records accepted by `filter` (all
  /// of them when empty). Writes of live (ACTIVE / PREPARED) branches are
  /// applied in place under locks, so the raw store is dirty; this view
  /// rolls them back through their undo entries. Snapshot transfer (shard
  /// migration — range-filtered — and follower bootstrap) reads this so
  /// uncommitted values never leave the node.
  std::vector<std::pair<RecordKey, int64_t>> CommittedRecords(
      const std::function<bool(const RecordKey&)>& filter = {}) const;

  /// Failover path: recreates a prepared branch from a replicated write
  /// set — takes exclusive locks, applies the writes with undo, and moves
  /// straight to PREPARED so a later Commit/Rollback behaves normally.
  /// The caller guarantees a quiescent engine (locks must be free).
  Status InstallPreparedBranch(
      const Xid& xid, const std::vector<std::pair<RecordKey, int64_t>>& writes,
      Micros now);

  /// XA commit: PREPARED -> COMMITTED (or ACTIVE -> COMMITTED for the
  /// one-phase path). Releases all locks.
  Status Commit(const Xid& xid, Micros now);

  /// Rolls back: undoes writes, cancels pending lock requests, releases
  /// locks. Legal from ACTIVE or PREPARED; idempotent on ABORTED.
  Status Rollback(const Xid& xid, Micros now);

  /// State query; kAborted for unknown xids (they may have been GC'ed).
  TxnState StateOf(const Xid& xid) const;

  /// Crash simulation: every non-prepared transaction is rolled back
  /// (paper §V-A setting ❷); PREPARED branches survive as in-doubt.
  void Crash(Micros now);

  /// In-doubt branches after a crash/restart, for coordinator recovery.
  std::vector<Xid> PreparedXids() const;

  /// Number of live (ACTIVE or PREPARED) branches.
  size_t ActiveCount() const { return txns_.size(); }

 private:
  struct UndoEntry {
    RecordKey key;
    int64_t old_value;
    uint64_t old_version;
  };
  struct TxnData {
    TxnState state = TxnState::kActive;
    std::vector<UndoEntry> undo;
    LockRequestId pending_request = kInvalidLockRequest;
  };

  TxnData* Find(const Xid& xid);
  const TxnData* Find(const Xid& xid) const;
  void Finish(const Xid& xid, TxnData& data, TxnState final_state);

  EngineConfig config_;
  RecordStore store_;
  LockManager locks_;
  Wal wal_;
  std::unordered_map<Xid, TxnData, XidHash> txns_;
};

}  // namespace storage
}  // namespace geotp

#endif  // GEOTP_STORAGE_ENGINE_H_
