#include "storage/wal.h"

namespace geotp {
namespace storage {

bool Wal::IsPreparedUnresolved(const Xid& xid) const {
  bool prepared = false;
  for (const auto& entry : entries_) {
    if (!(entry.xid == xid)) continue;
    switch (entry.type) {
      case WalEntryType::kPrepare:
        prepared = true;
        break;
      case WalEntryType::kCommit:
      case WalEntryType::kAbort:
        prepared = false;
        break;
    }
  }
  return prepared;
}

}  // namespace storage
}  // namespace geotp
