#include "storage/group_commit.h"

#include <algorithm>
#include <iterator>
#include <utility>

namespace geotp {
namespace storage {

void GroupCommitter::Append(Micros fsync_cost, std::string payload,
                            DurableCallback on_durable) {
  if (!config_.enabled) {
    // Unbatched baseline: an independent fsync per entry, charged in
    // parallel (the pre-group-commit model).
    const uint64_t generation = generation_;
    device_->Flush(std::move(payload), fsync_cost,
                   [this, generation, cb = std::move(on_durable)]() {
                     if (generation != generation_) return;  // crashed
                     stats_.fsyncs++;
                     stats_.entries++;
                     stats_.max_batch_entries =
                         std::max<uint64_t>(stats_.max_batch_entries, 1);
                     if (on_fsync_) on_fsync_();
                     cb();
                   });
    return;
  }

  open_.push_back(Entry{fsync_cost, std::move(payload), std::move(on_durable)});
  if (flushing_) return;  // joins the next batch when the device frees
  if (open_.size() >= config_.max_batch_size) {
    if (open_timer_ != runtime::kInvalidTimer) {
      timer_->Cancel(open_timer_);
      open_timer_ = runtime::kInvalidTimer;
    }
    StartFlush();
    return;
  }
  if (open_timer_ != runtime::kInvalidTimer) return;  // batch already open
  const uint64_t generation = generation_;
  open_timer_ = timer_->Schedule(config_.max_batch_delay,
                                 [this, generation]() {
                                   if (generation != generation_) return;
                                   open_timer_ = runtime::kInvalidTimer;
                                   if (!flushing_) StartFlush();
                                 });
}

void GroupCommitter::StartFlush() {
  if (open_.empty()) return;
  flushing_ = true;
  if (open_.size() <= config_.max_batch_size) {
    in_flight_ = std::move(open_);
    open_.clear();
  } else {
    // A backlog wider than one batch (accumulated while the device was
    // busy) drains max_batch_size entries per flush.
    in_flight_.assign(
        std::make_move_iterator(open_.begin()),
        std::make_move_iterator(open_.begin() +
                                static_cast<ptrdiff_t>(config_.max_batch_size)));
    open_.erase(open_.begin(),
                open_.begin() + static_cast<ptrdiff_t>(config_.max_batch_size));
  }
  Micros cost = 0;
  std::string batch;
  for (const Entry& entry : in_flight_) {
    cost = std::max(cost, entry.cost);
    batch += entry.payload;
  }
  const uint64_t generation = generation_;
  device_->Flush(std::move(batch), cost,
                 [this, generation]() { FinishFlush(generation); });
}

void GroupCommitter::FinishFlush(uint64_t generation) {
  if (generation != generation_) return;  // crashed while on the device
  stats_.fsyncs++;
  stats_.entries += in_flight_.size();
  stats_.max_batch_entries =
      std::max<uint64_t>(stats_.max_batch_entries, in_flight_.size());
  if (on_fsync_) on_fsync_();
  // Waiters may append again from their callbacks; detach the batch first.
  std::vector<Entry> done = std::move(in_flight_);
  in_flight_.clear();
  flushing_ = false;
  for (Entry& entry : done) entry.on_durable();
  // Entries that arrived while the device was busy have waited long
  // enough: flush them immediately, ignoring max_batch_delay.
  if (!flushing_ && !open_.empty()) {
    if (open_timer_ != runtime::kInvalidTimer) {
      timer_->Cancel(open_timer_);
      open_timer_ = runtime::kInvalidTimer;
    }
    StartFlush();
  }
}

void GroupCommitter::Reset() {
  generation_++;
  if (open_timer_ != runtime::kInvalidTimer) {
    timer_->Cancel(open_timer_);
    open_timer_ = runtime::kInvalidTimer;
  }
  open_.clear();
  in_flight_.clear();
  flushing_ = false;
}

}  // namespace storage
}  // namespace geotp
