// Versioned record store with provisional writes.
//
// This is the storage abstraction the ScalarDB-style baseline (consensus
// commit over non-transactional stores) and the YugabyteDB-style baseline
// (provisional records + async apply) are built on. A transaction stages
// provisional writes; Prepare() validates that the versions it read are
// still current and "locks" the records by installing an intent; Commit()
// promotes intents; Abort() discards them.
#ifndef GEOTP_STORAGE_VERSIONED_STORE_H_
#define GEOTP_STORAGE_VERSIONED_STORE_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace geotp {
namespace storage {

struct VersionedRecord {
  int64_t value = 0;
  uint64_t version = 0;
  /// Owner of the write intent, if any (kInvalidTxn = none).
  TxnId intent_owner = kInvalidTxn;
  int64_t intent_value = 0;
};

class VersionedStore {
 public:
  void LoadTable(uint32_t table, uint64_t count, int64_t initial_value = 0);

  /// Reads the committed value+version. Reads never block on intents here;
  /// the caller's concurrency control decides what a pending intent means.
  std::optional<VersionedRecord> Get(const RecordKey& key) const;

  /// Installs a write intent for `owner`. Fails with kConflict if another
  /// transaction already holds an intent on the key.
  Status PutIntent(const RecordKey& key, TxnId owner, int64_t value);

  /// Validates that `key`'s committed version still equals
  /// `expected_version` and that no foreign intent exists; then installs an
  /// intent lock for `owner` (read-validation path of consensus commit).
  Status ValidateVersion(const RecordKey& key, TxnId owner,
                         uint64_t expected_version);

  /// Promotes all intents of `owner` to committed values (version bump).
  void CommitIntents(TxnId owner);

  /// Discards all intents of `owner`.
  void AbortIntents(TxnId owner);

  /// True if `owner` holds an intent on `key`.
  bool HasIntent(const RecordKey& key, TxnId owner) const;

  size_t size() const { return records_.size(); }

 private:
  std::unordered_map<RecordKey, VersionedRecord, RecordKeyHash> records_;
  std::unordered_map<TxnId, std::vector<RecordKey>> intents_by_owner_;
};

}  // namespace storage
}  // namespace geotp

#endif  // GEOTP_STORAGE_VERSIONED_STORE_H_
