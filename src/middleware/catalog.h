// Catalog: data distribution metadata at the middleware.
//
// Maps record keys to the data source hosting them. YCSB uses range
// partitioning (1M-record slices per node, paper §VII-A2); TPC-C routes by
// the warehouse id encoded in the key's high bits. Arbitrary routing
// functions are supported for custom deployments.
#ifndef GEOTP_MIDDLEWARE_CATALOG_H_
#define GEOTP_MIDDLEWARE_CATALOG_H_

#include <functional>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "common/types.h"
#include "sharding/shard_map.h"

namespace geotp {
namespace middleware {

class Catalog {
 public:
  using RouteFn = std::function<NodeId(const RecordKey&)>;

  /// Range partitioning for `table`: keys [i*keys_per_node,
  /// (i+1)*keys_per_node) live on nodes[i]; keys beyond the last boundary
  /// stay on the last node.
  void AddRangePartitionedTable(uint32_t table, uint64_t keys_per_node,
                                std::vector<NodeId> nodes);

  /// High-bits partitioning: node = nodes[(key >> shift) / groups_per_node].
  /// TPC-C encodes the warehouse id in the top bits of every key.
  void AddHighBitsPartitionedTable(uint32_t table, int shift,
                                   uint64_t groups_per_node,
                                   std::vector<NodeId> nodes);

  /// Fully custom routing.
  void AddCustomTable(uint32_t table, RouteFn route);

  /// Routes a key to its *logical* data source (stable across failovers).
  /// Aborts on unknown tables (programmer error: the workload must
  /// register its tables).
  NodeId Route(const RecordKey& key) const;

  /// All logical data sources any registered table can route to.
  std::vector<NodeId> AllDataSources() const;

  bool HasTable(uint32_t table) const { return routes_.count(table) > 0; }

  // ----- replica groups (src/replication) ---------------------------------

  /// Declares that logical source `logical` is served by a replica group.
  /// `replicas` includes the seed leader (== `logical`) and the followers.
  void SetReplicaGroup(NodeId logical, std::vector<NodeId> replicas);

  bool HasReplicaGroup(NodeId logical) const {
    return groups_.count(logical) > 0;
  }

  /// Physical node currently leading `logical` (identity without a group).
  NodeId LeaderOf(NodeId logical) const;

  /// Leadership epoch known for `logical` (0 without a group / initially).
  uint64_t EpochOf(NodeId logical) const;

  /// Group members other than the current leader (empty without a group).
  std::vector<NodeId> FollowersOf(NodeId logical) const;

  /// Maps a physical replica id back to its logical source (identity for
  /// non-replicated nodes).
  NodeId LogicalOf(NodeId physical) const;

  /// Adopts a newer leadership epoch. Returns true if routing changed;
  /// stale or duplicate announcements are ignored.
  bool UpdateLeader(NodeId logical, NodeId leader, uint64_t epoch);

  // ----- elastic sharding (src/sharding) ----------------------------------

  /// Publishes a shard map: Route() consults it before the static
  /// partitioning (keys its ranges do not cover fall back to the table's
  /// registered routing function).
  void InstallShardMap(sharding::ShardMap map) {
    shard_map_ = std::move(map);
  }
  bool HasShardMap() const { return !shard_map_.empty(); }
  const sharding::ShardMap& shard_map() const { return shard_map_; }
  sharding::ShardMap& mutable_shard_map() { return shard_map_; }
  /// Current shard-map epoch (0 without a map / before any migration).
  uint64_t ShardEpoch() const { return shard_map_.epoch(); }

 private:
  struct ReplicaGroupInfo {
    std::vector<NodeId> replicas;
    NodeId leader = kInvalidNode;
    uint64_t epoch = 0;
  };

  std::unordered_map<uint32_t, RouteFn> routes_;
  std::vector<NodeId> all_nodes_;
  sharding::ShardMap shard_map_;
  std::unordered_map<NodeId, ReplicaGroupInfo> groups_;
  std::unordered_map<NodeId, NodeId> physical_to_logical_;
};

}  // namespace middleware
}  // namespace geotp

#endif  // GEOTP_MIDDLEWARE_CATALOG_H_
