// MiddlewareNode: the database middleware (DM) actor.
//
// It implements the coordinator side of every XA-middleware variant the
// paper evaluates:
//
//   * SSP          — classic 2PC: prepare round + commit round (3 WAN RTTs
//                    per distributed transaction including execution);
//   * SSP(local)   — decentralized commit without atomicity guarantees
//                    (commit dispatched directly, no prepare);
//   * QURO         — SSP plus read-before-write reordering inside batches;
//   * Chiller      — decentralized prepare merged with execution plus
//                    inner-region-last scheduling;
//   * GeoTP        — decentralized prepare (O1), latency-aware scheduling
//                    (O2), forecast + late transaction scheduling (O3),
//                    early abort.
//
// One MiddlewareNode serves many concurrent interactive transactions from
// client terminals (closed loop, src/workload). The per-transaction state
// machine follows Algorithm 1; scheduling follows Algorithm 2.
#ifndef GEOTP_MIDDLEWARE_MIDDLEWARE_H_
#define GEOTP_MIDDLEWARE_MIDDLEWARE_H_

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "core/geo_scheduler.h"
#include "core/hotspot_footprint.h"
#include "core/latency_monitor.h"
#include "metrics/stats.h"
#include "middleware/catalog.h"
#include "middleware/overload.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "protocol/messages.h"
#include "sharding/balancer.h"
#include "sim/network.h"
#include "storage/group_commit.h"

namespace geotp {
namespace datasource {
class DataSourceNode;
}  // namespace datasource

namespace middleware {

enum class CommitProtocol : uint8_t {
  kTwoPhase,         ///< DM-driven prepare + commit rounds (SSP)
  kDecentralized,    ///< geo-agent-driven prepare (GeoTP O1, Chiller)
  kLocalNoAtomicity, ///< direct commit, no prepare (SSP "local" mode)
};

const char* CommitProtocolName(CommitProtocol protocol);

struct MiddlewareConfig {
  std::string name = "dm";
  CommitProtocol commit_protocol = CommitProtocol::kTwoPhase;
  core::SchedulerConfig scheduler;
  /// QURO preprocessing: reorder each batch reads-first/writes-last.
  bool quro_reorder = false;
  /// Early abort via geo-agents (the agents do the peer notification; the
  /// DM additionally dispatches aborts so no participant is orphaned).
  bool early_abort = false;
  /// Per-round DM work: parse/rewrite/route/schedule (Fig. 6c "analysis").
  Micros analysis_cost = 300;
  /// Commit/abort decision log fsync at the DM (Algorithm 1 FlushLog).
  Micros log_flush_cost = 500;
  /// Group-commit policy of the decision log: concurrent FlushLog calls
  /// share one flush (the same abstraction the data sources use).
  storage::GroupCommitConfig log_group_commit;
  /// Serve all-read batches of final-round branches from replication
  /// followers (stale-bounded; falls back to the leader on rejection).
  bool follower_reads = false;
  /// Staleness bound attached to follower reads.
  Micros follower_read_stale_bound = MsToMicros(100);
  /// A follower read unanswered for this long falls back to the leader
  /// (the follower may have crashed).
  Micros follower_read_timeout = MsToMicros(800);
  /// After a leader failover, branches whose prepare vote does not
  /// resurface within this grace period are aborted (their prepare never
  /// reached a quorum and died with the old leader).
  Micros failover_vote_grace = MsToMicros(500);
  core::LatencyMonitorConfig monitor;
  core::FootprintConfig footprint;
  /// Elastic sharding: hotspot-driven rebalancing (enable on ONE DM of a
  /// deployment; every DM handles map updates and redirects regardless).
  sharding::BalancerConfig balancer;
  /// Overload control: in-flight budget, per-tenant fair shares, shed
  /// decisions. Disabled by default (max_inflight = 0) so paper-fidelity
  /// configurations admit everything, exactly as before.
  OverloadConfig overload;

  // ----- paper system presets ---------------------------------------------
  static MiddlewareConfig SSP();
  static MiddlewareConfig SSPLocal();
  static MiddlewareConfig Quro();
  static MiddlewareConfig Chiller();
  static MiddlewareConfig GeoTPO1();    ///< decentralized prepare only
  static MiddlewareConfig GeoTPO1O2();  ///< + latency-aware scheduling
  static MiddlewareConfig GeoTP();      ///< + forecast & late scheduling (O1~O3)
};

/// Completion record handed to the workload driver for accounting.
struct TxnOutcome {
  TxnId txn_id = kInvalidTxn;
  bool committed = false;
  bool distributed = false;
  Status status;
  Micros latency = 0;  ///< DM-side: first round arrival to final result
  int admission_retries = 0;
};

struct MiddlewareStats {
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t admission_blocks = 0;
  uint64_t admission_aborts = 0;
  uint64_t prepare_requests_sent = 0;
  uint64_t decisions_sent = 0;
  uint64_t follower_reads = 0;           ///< batches served by followers
  uint64_t follower_read_fallbacks = 0;  ///< stale/timed-out, re-ran at leader
  uint64_t failovers_observed = 0;       ///< leadership changes adopted
  uint64_t branch_retries = 0;           ///< in-flight batches re-dispatched
  uint64_t presumed_aborts = 0;          ///< orphan votes resolved from log
  // Group commit / coalescing observability (fsync amortization).
  uint64_t log_flushes = 0;          ///< decision-log fsyncs performed
  uint64_t log_entries_flushed = 0;  ///< decisions made durable
  uint64_t prepare_batches_sent = 0;   ///< multi-prepare envelopes
  uint64_t decision_batches_sent = 0;  ///< multi-decision envelopes
  uint64_t dispatches_coalesced = 0;   ///< messages saved by batching
  // Elastic sharding (src/sharding).
  uint64_t shard_map_epoch = 0;     ///< highest adopted shard-map epoch
  uint64_t shard_redirects = 0;     ///< WrongShardEpoch bounces received
  uint64_t shard_reroutes = 0;      ///< bounced batches re-routed in place
  uint64_t shard_map_pulls = 0;     ///< maps adopted from ping anti-entropy
  uint64_t shard_map_pushes = 0;    ///< maps pushed to behind data sources
  uint64_t committed_distributed = 0;  ///< commits with >1 begun participant
  /// Overload control (mirror of the admission controller's counters).
  OverloadStats overload;
  metrics::PhaseBreakdown breakdown;
};

/// Durable commit/abort decision log (survives DM crashes).
struct DecisionLogEntry {
  TxnId txn_id;
  bool commit;
};

class MiddlewareNode {
 public:
  /// Runtime-seam constructor: the DM runs on whatever backend `env`
  /// belongs to (sim event loop or a loopback actor thread).
  MiddlewareNode(runtime::ActorEnv env, uint32_t ordinal, Catalog catalog,
                 MiddlewareConfig config);
  /// Simulated-deployment convenience (tests, benches, the runner).
  MiddlewareNode(NodeId id, uint32_t ordinal, sim::Network* network,
                 Catalog catalog, MiddlewareConfig config);
  ~MiddlewareNode();

  /// Registers with the network and starts the latency monitor.
  void Attach();

  NodeId id() const { return id_; }
  bool crashed() const { return crashed_; }
  const MiddlewareConfig& config() const { return config_; }
  const MiddlewareStats& stats() const { return stats_; }
  core::LatencyMonitor& monitor() { return *monitor_; }
  core::HotspotFootprint& footprint() { return *footprint_; }
  Catalog& catalog() { return catalog_; }
  runtime::ITransport* network() { return network_; }
  /// The balancer, when this DM runs one (nullptr otherwise).
  sharding::ShardBalancer* balancer() { return balancer_.get(); }
  /// Records an adopted/published shard-map epoch in the stats.
  void NoteShardEpoch(uint64_t epoch) {
    stats_.shard_map_epoch = std::max(stats_.shard_map_epoch, epoch);
  }
  const std::vector<DecisionLogEntry>& decision_log() const { return log_; }
  const storage::GroupCommitter& log_committer() const {
    return log_committer_;
  }
  runtime::ITimer* loop() { return timer_; }

  /// Number of transactions currently coordinated (in any phase).
  size_t InFlight() const { return txns_.size(); }

  /// Overload-control state (budget occupancy, shed counters).
  const AdmissionController& admission() const { return admission_; }

  /// Registers this DM's stats as named gauges on `registry` and samples
  /// the registry on every latency-monitor ping tick. The registry must
  /// outlive this node (or be detached with AttachMetrics(nullptr)).
  void AttachMetrics(obs::MetricsRegistry* registry);

  /// Crash simulation: in-memory transaction state is lost; the decision
  /// log survives. Clients receive no further messages.
  void Crash();

  /// Restart + §V-A recovery: queries the data sources for in-doubt
  /// (prepared) branches of this DM; commits those with a logged commit
  /// decision, aborts the rest, and asks sources to abort non-prepared
  /// branches (common setting ❶).
  void Restart(const std::vector<datasource::DataSourceNode*>& sources);

 private:
  struct Participant {
    bool begun = false;
    bool exec_outstanding = false;
    bool footprint_charged = false;  ///< a_cnt++ done, awaiting release
    bool has_vote = false;
    protocol::Vote vote = protocol::Vote::kPrepared;
    bool rollback_confirmed = false;
    bool decision_acked = false;
    std::vector<RecordKey> round_keys;
    std::vector<size_t> op_slots;  ///< positions in the client round
    // Replication support.
    bool via_follower = false;    ///< current batch is a follower read
    uint64_t begun_round = 0;     ///< round in which the branch began
    std::vector<protocol::ClientOp> last_batch;  ///< for failover retry
  };

  enum class Phase : uint8_t {
    kExecuting,
    kWaitCommitVotes,
    kCommitDispatched,
    kAborting,
  };

  struct Txn {
    TxnId id = kInvalidTxn;
    uint64_t client_tag = 0;
    uint32_t tenant = 0;  ///< admission accounting; released at FinishTxn
    NodeId client = kInvalidNode;
    Phase phase = Phase::kExecuting;
    std::map<NodeId, Participant> participants;
    uint64_t round_seq = 0;
    size_t round_outstanding = 0;
    std::vector<int64_t> round_values;
    bool last_round = false;
    bool commit_requested = false;
    bool aborting = false;
    /// Whether the dispatched commit was one-phase (failover retries must
    /// re-send the same flavour; the commit/abort direction is the phase).
    bool decision_one_phase = false;
    Status abort_status;
    int admission_attempts = 0;
    // Pending round kept for admission retries.
    std::vector<protocol::ClientOp> pending_ops;
    // Timestamps for the Fig. 6c breakdown.
    Micros ts_begin = 0;
    Micros ts_exec_done = 0;
    Micros ts_commit_req = 0;
    Micros ts_votes = 0;
    Micros ts_decision = 0;
    Micros analysis_total = 0;
    // Distributed tracing: invalid unless the transaction was sampled at
    // admission. `trace` is the context stamped onto outbound envelopes
    // (trace_id + the root span as parent); the handles are the DM-side
    // spans still open.
    obs::TraceContext trace;
    obs::SpanHandle root_span = obs::kInvalidSpan;
    obs::SpanHandle analysis_span = obs::kInvalidSpan;
    obs::SpanHandle prepare_span = obs::kInvalidSpan;
    obs::SpanHandle fsync_span = obs::kInvalidSpan;
    obs::SpanHandle commit_span = obs::kInvalidSpan;
  };

  void HandleMessage(std::unique_ptr<sim::MessageBase> msg);
  void OnClientRound(const protocol::ClientRoundRequest& req);
  void PlanAndDispatchRound(TxnId id);
  void OnExecResponse(const protocol::BranchExecuteResponse& resp);
  void OnVote(const protocol::VoteMessage& vote);
  void OnClientFinish(const protocol::ClientFinishRequest& req);
  void OnDecisionAck(const protocol::DecisionAck& ack);

  // ----- replication support ----------------------------------------------
  /// Sends one batch of a branch to the current leader of `logical`.
  void SendBranchBatch(Txn& txn, NodeId logical,
                       std::vector<protocol::ClientOp> ops,
                       uint64_t round_seq);
  /// Dispatches an all-read final-round batch to a follower. Returns false
  /// if no follower is usable (caller executes at the leader).
  bool TryFollowerRead(Txn& txn, NodeId logical,
                       const std::vector<protocol::ClientOp>& ops,
                       uint64_t round_seq);
  void OnFollowerReadResponse(const protocol::FollowerReadResponse& resp);
  void FallBackToLeader(Txn& txn, NodeId logical);
  void OnLeaderAnnounce(const protocol::LeaderAnnounce& announce);
  void OnNotLeader(const protocol::NotLeaderResponse& redirect);

  // ----- elastic sharding (src/sharding) ----------------------------------
  /// Adopts a published shard map (atomic within this actor: the next
  /// planned round routes under the new epoch).
  void OnShardMapUpdate(const protocol::ShardMapUpdate& update);
  /// Ping-piggybacked anti-entropy: adopts a map a data source handed back
  /// (this DM was behind) and pushes the map to a responder whose epoch
  /// trails the catalog's (the source was behind).
  void OnPingResponse(const protocol::PingResponse& pong);
  /// WrongShardEpoch bounce: adopts the patched range, then re-routes the
  /// bounced batch under the new placement — or aborts the transaction
  /// when its branch already executed earlier rounds at the old owner.
  void OnShardRedirect(const protocol::ShardRedirect& redirect);
  /// Re-drives every in-flight transaction touching `logical` after its
  /// leadership changed: retries first-round batches and undecided
  /// decisions, aborts what cannot be replayed safely.
  void HandleFailover(NodeId logical);
  /// Resolves an orphaned PREPARED vote (unknown txn) from the decision
  /// log: presumed abort unless a commit decision was logged.
  void ResolveOrphanVote(const protocol::VoteMessage& vote);

  void MaybeCompleteRound(Txn& txn);
  void StartCommit(Txn& txn);
  void CheckVotesComplete(Txn& txn);
  void FlushLogAndDispatch(Txn& txn, bool commit);
  void DispatchDecision(Txn& txn, bool commit, bool one_phase);
  void StartAbort(Txn& txn, Status status);
  void CheckAbortDone(Txn& txn);
  void FinishTxn(Txn& txn, bool committed);

  // ----- coalesced dispatch -----------------------------------------------
  /// Queue a prepare/decision for `dest`; everything queued within one
  /// event-loop tick leaves as one PrepareBatch/DecisionBatch per
  /// destination (group commit releases many decisions at once).
  void QueuePrepare(NodeId dest, const Xid& xid);
  void QueueDecision(NodeId dest, const Xid& xid, bool commit,
                     bool one_phase);
  void ScheduleDispatchFlush();
  void FlushDispatchQueues();

  // ----- overload control ---------------------------------------------------
  /// Deepest per-destination dispatch queue (prepares + decisions for one
  /// data source) — the DM-local backpressure input to admission.
  size_t MaxDispatchDepth() const;
  /// Sheds a new client transaction with an Overloaded reply.
  void ShedClientRound(const protocol::ClientRoundRequest& req);

  // ----- tracing ----------------------------------------------------------
  /// Opens the "dm.prepare_wait" span (no-op when the transaction is
  /// unsampled or the span is already open).
  void BeginPrepareSpan(Txn& txn);
  /// Closes every DM-side span the transaction still holds open.
  void CloseTxnSpans(Txn& txn, Micros now);

  Txn* FindTxn(TxnId id);
  std::vector<NodeId> ParticipantIds(const Txn& txn) const;

  NodeId id_;
  uint32_t ordinal_;
  runtime::ITransport* network_;
  runtime::ITimer* timer_;
  /// Durable decision-log device (simulated cost model or a real file).
  std::unique_ptr<runtime::IStableStorage> log_device_;
  Catalog catalog_;
  MiddlewareConfig config_;
  std::unique_ptr<core::HotspotFootprint> footprint_;
  std::unique_ptr<core::LatencyMonitor> monitor_;
  std::unique_ptr<core::GeoScheduler> scheduler_;
  std::unique_ptr<sharding::ShardBalancer> balancer_;
  Rng rng_;
  /// Dedicated stream for trace-sampling decisions so enabling tracing
  /// never perturbs `rng_` (scheduling/jitter draws stay identical).
  Rng trace_rng_;
  obs::MetricsRegistry* metrics_ = nullptr;
  /// Last Sample() on the registry (spaced by the monitor ping interval).
  Micros last_metrics_sample_ = 0;
  MiddlewareStats stats_;
  AdmissionController admission_;
  std::vector<DecisionLogEntry> log_;  // durable
  /// Group committer of the decision log: concurrent FlushLog calls share
  /// one `log_flush_cost` flush; a DM crash loses the open batch (those
  /// decisions were never durable, so presumed abort applies).
  storage::GroupCommitter log_committer_;
  uint64_t next_seq_ = 1;
  bool crashed_ = false;
  std::unordered_map<TxnId, Txn> txns_;

  // Same-tick dispatch coalescing (one envelope per destination).
  std::map<NodeId, std::vector<Xid>> pending_prepares_;
  std::map<NodeId, std::vector<protocol::DecisionItem>> pending_decisions_;
  bool dispatch_flush_scheduled_ = false;
  /// Last shard-map anti-entropy push per behind node (pushes are spaced
  /// by about one RTT; see OnPingResponse).
  std::map<NodeId, Micros> shard_push_at_;
};

}  // namespace middleware
}  // namespace geotp

#endif  // GEOTP_MIDDLEWARE_MIDDLEWARE_H_
