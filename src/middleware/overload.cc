#include "middleware/overload.h"

#include <algorithm>

namespace geotp {
namespace middleware {

const char* ShedReasonName(ShedReason reason) {
  switch (reason) {
    case ShedReason::kNone:
      return "none";
    case ShedReason::kInflightBudget:
      return "inflight-budget";
    case ShedReason::kTenantShare:
      return "tenant-share";
    case ShedReason::kDispatchQueue:
      return "dispatch-queue";
    case ShedReason::kSourcePressure:
      return "source-pressure";
  }
  return "?";
}

uint32_t AdmissionController::WeightOf(uint32_t tenant) const {
  auto it = config_.tenant_weights.find(tenant);
  return it == config_.tenant_weights.end() ? 1 : std::max(1u, it->second);
}

size_t AdmissionController::TenantShare(uint32_t tenant, Micros now) const {
  // Active weight mass: tenants holding budget or recently arrived. The
  // asking tenant always counts (it is arriving right now).
  uint64_t active_weight = WeightOf(tenant);
  for (const auto& [id, state] : tenants_) {
    if (id == tenant) continue;
    const bool active = state.inflight > 0 ||
                        now - state.last_arrival <= config_.tenant_active_window;
    if (active) active_weight += WeightOf(id);
  }
  const size_t share = static_cast<size_t>(
      static_cast<uint64_t>(config_.max_inflight) * WeightOf(tenant) /
      active_weight);
  // Never starve a tenant outright: one slot minimum keeps every tenant
  // making progress even when its weighted share rounds to zero.
  return std::max<size_t>(1, share);
}

size_t AdmissionController::TenantInFlight(uint32_t tenant) const {
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.inflight;
}

ShedReason AdmissionController::Consider(uint32_t tenant,
                                         size_t dispatch_queue_depth,
                                         double worst_source_occupancy,
                                         Micros now) {
  TenantState& state = tenants_[tenant];
  state.last_arrival = now;

  ShedReason reason = ShedReason::kNone;
  if (inflight_ >= config_.max_inflight) {
    reason = ShedReason::kInflightBudget;
  } else if (state.inflight >= TenantShare(tenant, now)) {
    reason = ShedReason::kTenantShare;
  } else if (config_.max_dispatch_queue > 0 &&
             dispatch_queue_depth >= config_.max_dispatch_queue) {
    reason = ShedReason::kDispatchQueue;
  } else if (worst_source_occupancy >= config_.source_occupancy_shed) {
    reason = ShedReason::kSourcePressure;
  }

  switch (reason) {
    case ShedReason::kNone:
      ++state.inflight;
      ++inflight_;
      ++stats_.admitted;
      stats_.peak_inflight =
          std::max<uint64_t>(stats_.peak_inflight, inflight_);
      consecutive_sheds_ = 0;
      break;
    case ShedReason::kInflightBudget:
      ++stats_.shed_inflight;
      ++consecutive_sheds_;
      break;
    case ShedReason::kTenantShare:
      ++stats_.shed_tenant;
      ++consecutive_sheds_;
      break;
    case ShedReason::kDispatchQueue:
      ++stats_.shed_dispatch;
      ++consecutive_sheds_;
      break;
    case ShedReason::kSourcePressure:
      ++stats_.shed_source;
      ++consecutive_sheds_;
      break;
  }
  return reason;
}

void AdmissionController::Release(uint32_t tenant) {
  auto it = tenants_.find(tenant);
  if (it != tenants_.end() && it->second.inflight > 0) --it->second.inflight;
  if (inflight_ > 0) --inflight_;
}

Micros AdmissionController::RetryHint() const {
  // Double every 8 consecutive sheds: steady overload pushes the retry
  // horizon out exponentially, a lone shed costs only the base.
  Micros hint = config_.retry_hint_base;
  for (uint64_t step = consecutive_sheds_ / 8;
       step > 0 && hint < config_.retry_hint_max; --step) {
    hint *= 2;
  }
  return std::min(hint, config_.retry_hint_max);
}

void AdmissionController::NoteDispatchDepth(size_t depth) {
  stats_.peak_dispatch_queue =
      std::max<uint64_t>(stats_.peak_dispatch_queue, depth);
}

void AdmissionController::Reset() {
  inflight_ = 0;
  consecutive_sheds_ = 0;
  for (auto& [id, state] : tenants_) state.inflight = 0;
}

}  // namespace middleware
}  // namespace geotp
