// AdmissionController: the DM-side overload-control brain.
//
// The paper's scalability experiment (Fig. 5a) peaks at 256 terminals and
// *declines* past it — classic congestion collapse: past saturation every
// admitted transaction holds locks longer, aborts more, and retries
// immediately, so useful work per offered transaction drops. The fix is
// the classic overload-control triad:
//
//   * admit-or-shed at the front door (bounded in-flight budget) — never
//     queue new work behind saturated queues;
//   * per-tenant weighted fair shares of the budget — one hot tenant
//     cannot starve the others;
//   * backpressure signals from downstream (dispatch-queue depth at the
//     DM, run-queue occupancy piggybacked on latency-monitor pongs) feed
//     the same shed decision, so saturation anywhere in the pipeline
//     surfaces as an Overloaded reply at the entrance, not a timeout in
//     the middle.
//
// Only NEW transactions are ever considered: continuation rounds, votes,
// decisions and aborts of admitted transactions always proceed (admitted
// work must finish — finishing is what frees the budget).
//
// This is deliberately separate from core::GeoScheduler's O3 admission
// (paper §V-B), which reasons about *per-transaction deadlines* under
// normal load; this layer reasons about *aggregate saturation*.
#ifndef GEOTP_MIDDLEWARE_OVERLOAD_H_
#define GEOTP_MIDDLEWARE_OVERLOAD_H_

#include <cstdint>
#include <map>

#include "common/types.h"

namespace geotp {
namespace middleware {

struct OverloadConfig {
  /// In-flight transaction budget at this DM. 0 disables the whole
  /// overload-control layer (every other knob is then ignored), which is
  /// the default so existing single-tenant configurations are unchanged.
  size_t max_inflight = 0;
  /// Bound on the per-data-source dispatch queues (coalesced prepares +
  /// decisions per destination). Admitted work is never dropped — instead
  /// a queue at or over the bound vetoes NEW admissions until it drains.
  /// 0 = no dispatch-queue pressure.
  size_t max_dispatch_queue = 0;
  /// Source saturation: shed new admissions while any source's estimated
  /// run-queue occupancy (run_queue / run_queue_limit EWMA from the
  /// latency-monitor pongs) is at or above this. Only meaningful when the
  /// data sources run a bounded queue (DataSourceConfig::max_run_queue).
  double source_occupancy_shed = 0.95;
  /// Retry hint attached to Overloaded replies: starts at `base` and
  /// doubles with every 8 consecutive sheds up to `max`, so persistent
  /// overload pushes clients exponentially further out.
  Micros retry_hint_base = MsToMicros(5);
  Micros retry_hint_max = MsToMicros(320);
  /// Weighted fair shares: tenant -> weight. Unlisted tenants weigh 1.
  /// A tenant's share of the in-flight budget is
  ///   max_inflight * weight / (sum of active tenants' weights),
  /// computed over *active* tenants only, so an idle tenant's share is
  /// lent out (work-conserving) and reclaimed as soon as it returns.
  std::map<uint32_t, uint32_t> tenant_weights;
  /// A tenant counts as active while it has transactions in flight or
  /// arrived within this window.
  Micros tenant_active_window = MsToMicros(100);

  bool enabled() const { return max_inflight > 0; }
};

/// Why a new transaction was (or would be) shed. kNone = admit.
enum class ShedReason : uint8_t {
  kNone,
  kInflightBudget,  ///< DM in-flight budget exhausted
  kTenantShare,     ///< tenant at its weighted share of the budget
  kDispatchQueue,   ///< a per-source dispatch queue hit its bound
  kSourcePressure,  ///< a data source's run queue is saturated
};

const char* ShedReasonName(ShedReason reason);

struct OverloadStats {
  uint64_t admitted = 0;
  uint64_t shed_inflight = 0;
  uint64_t shed_tenant = 0;
  uint64_t shed_dispatch = 0;
  uint64_t shed_source = 0;
  uint64_t peak_inflight = 0;        ///< high-water admitted in flight
  uint64_t peak_dispatch_queue = 0;  ///< high-water per-dest queue depth

  uint64_t Sheds() const {
    return shed_inflight + shed_tenant + shed_dispatch + shed_source;
  }
};

class AdmissionController {
 public:
  explicit AdmissionController(OverloadConfig config)
      : config_(config) {}

  const OverloadConfig& config() const { return config_; }
  const OverloadStats& stats() const { return stats_; }

  /// Admission decision for a NEW transaction of `tenant` arriving now.
  /// `dispatch_queue_depth` is the deepest per-source dispatch queue at
  /// the DM; `worst_source_occupancy` the monitor's MaxOccupancy().
  /// Counts the outcome (admitted / shed by reason) in stats().
  ShedReason Consider(uint32_t tenant, size_t dispatch_queue_depth,
                      double worst_source_occupancy, Micros now);

  /// A transaction admitted by Consider() finished (committed, aborted,
  /// or died with a crash-cleared DM — see Reset for the latter).
  void Release(uint32_t tenant);

  /// Suggested client backoff for a shed reply; grows while sheds are not
  /// interleaved with admissions.
  Micros RetryHint() const;

  /// This tenant's current cap on in-flight transactions (its weighted
  /// share of the budget among active tenants, never below 1).
  size_t TenantShare(uint32_t tenant, Micros now) const;

  size_t InFlight() const { return inflight_; }
  size_t TenantInFlight(uint32_t tenant) const;

  /// Observability hook for the DM's dispatch-queue high-water mark.
  void NoteDispatchDepth(size_t depth);

  /// Crash simulation: every coordinated transaction vanished with the
  /// DM's volatile state, so the budget is whole again.
  void Reset();

 private:
  struct TenantState {
    size_t inflight = 0;
    Micros last_arrival = 0;
  };

  uint32_t WeightOf(uint32_t tenant) const;

  OverloadConfig config_;
  OverloadStats stats_;
  size_t inflight_ = 0;  ///< admissions not yet released
  /// Sheds since the last admission; drives the retry-hint growth.
  uint64_t consecutive_sheds_ = 0;
  std::map<uint32_t, TenantState> tenants_;
};

}  // namespace middleware
}  // namespace geotp

#endif  // GEOTP_MIDDLEWARE_OVERLOAD_H_
