#include "middleware/middleware.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "datasource/data_source.h"

namespace geotp {
namespace middleware {

using protocol::BranchExecuteRequest;
using protocol::BranchExecuteResponse;
using protocol::ClientFinishRequest;
using protocol::ClientOp;
using protocol::ClientRoundRequest;
using protocol::ClientRoundResponse;
using protocol::ClientTxnResult;
using protocol::DecisionAck;
using protocol::DecisionRequest;
using protocol::FollowerReadRequest;
using protocol::FollowerReadResponse;
using protocol::LeaderAnnounce;
using protocol::NotLeaderResponse;
using protocol::PingResponse;
using protocol::PrepareRequest;
using protocol::Vote;
using protocol::VoteMessage;

const char* CommitProtocolName(CommitProtocol protocol) {
  switch (protocol) {
    case CommitProtocol::kTwoPhase:
      return "2pc";
    case CommitProtocol::kDecentralized:
      return "decentralized-prepare";
    case CommitProtocol::kLocalNoAtomicity:
      return "local-no-atomicity";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Presets (paper §VII-A1 baselines)
// ---------------------------------------------------------------------------

MiddlewareConfig MiddlewareConfig::SSP() {
  MiddlewareConfig config;
  config.name = "SSP";
  config.commit_protocol = CommitProtocol::kTwoPhase;
  config.scheduler.policy = core::SchedulerPolicy::kImmediate;
  return config;
}

MiddlewareConfig MiddlewareConfig::SSPLocal() {
  MiddlewareConfig config;
  config.name = "SSP(local)";
  config.commit_protocol = CommitProtocol::kLocalNoAtomicity;
  config.scheduler.policy = core::SchedulerPolicy::kImmediate;
  return config;
}

MiddlewareConfig MiddlewareConfig::Quro() {
  MiddlewareConfig config;
  config.name = "QURO";
  config.commit_protocol = CommitProtocol::kTwoPhase;
  config.scheduler.policy = core::SchedulerPolicy::kImmediate;
  config.quro_reorder = true;
  return config;
}

MiddlewareConfig MiddlewareConfig::Chiller() {
  MiddlewareConfig config;
  config.name = "Chiller";
  config.commit_protocol = CommitProtocol::kDecentralized;
  config.scheduler.policy = core::SchedulerPolicy::kChiller;
  return config;
}

MiddlewareConfig MiddlewareConfig::GeoTPO1() {
  MiddlewareConfig config;
  config.name = "GeoTP(O1)";
  config.commit_protocol = CommitProtocol::kDecentralized;
  config.scheduler.policy = core::SchedulerPolicy::kImmediate;
  config.early_abort = true;
  return config;
}

MiddlewareConfig MiddlewareConfig::GeoTPO1O2() {
  MiddlewareConfig config = GeoTPO1();
  config.name = "GeoTP(O1~O2)";
  config.scheduler.policy = core::SchedulerPolicy::kLatencyAware;
  return config;
}

MiddlewareConfig MiddlewareConfig::GeoTP() {
  MiddlewareConfig config = GeoTPO1();
  config.name = "GeoTP";
  config.scheduler.policy = core::SchedulerPolicy::kLatencyAwareForecast;
  config.scheduler.admission.enabled = true;
  return config;
}

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

MiddlewareNode::MiddlewareNode(NodeId id, uint32_t ordinal,
                               sim::Network* network, Catalog catalog,
                               MiddlewareConfig config)
    : MiddlewareNode(runtime::ActorEnv{id, network->loop(), network, nullptr},
                     ordinal, std::move(catalog), std::move(config)) {}

MiddlewareNode::MiddlewareNode(runtime::ActorEnv env, uint32_t ordinal,
                               Catalog catalog, MiddlewareConfig config)
    : id_(env.node),
      ordinal_(ordinal),
      network_(env.transport),
      timer_(env.timer),
      log_device_(env.storage != nullptr
                      ? env.storage->OpenStorage(env.node, "decision.log")
                      : std::make_unique<runtime::SimStableStorage>(
                            env.timer)),
      catalog_(std::move(catalog)),
      config_(std::move(config)),
      footprint_(std::make_unique<core::HotspotFootprint>(config_.footprint)),
      monitor_(std::make_unique<core::LatencyMonitor>(
          id_, network_, timer_, catalog_.AllDataSources(), config_.monitor)),
      scheduler_(std::make_unique<core::GeoScheduler>(
          config_.scheduler, monitor_.get(), footprint_.get())),
      rng_(0xD1CEBA5E + id_),
      trace_rng_(0x714ACE00 + id_),
      admission_(config_.overload),
      log_committer_(timer_, log_device_.get(), config_.log_group_commit) {
  log_committer_.set_on_fsync([this]() { stats_.log_flushes++; });
  if (config_.balancer.enabled) {
    balancer_ =
        std::make_unique<sharding::ShardBalancer>(this, config_.balancer);
  }
}

MiddlewareNode::~MiddlewareNode() = default;

void MiddlewareNode::AttachMetrics(obs::MetricsRegistry* registry) {
  metrics_ = registry;
  if (registry == nullptr) return;
  const std::string prefix = "dm." + std::to_string(ordinal_) + ".";
  auto gauge = [&](const char* name, std::function<double()> fn) {
    registry->RegisterGauge(prefix + name, std::move(fn));
  };
  auto count = [](uint64_t v) { return static_cast<double>(v); };
  gauge("committed", [this, count]() { return count(stats_.committed); });
  gauge("aborted", [this, count]() { return count(stats_.aborted); });
  gauge("inflight", [this, count]() { return count(txns_.size()); });
  gauge("admission_blocks",
        [this, count]() { return count(stats_.admission_blocks); });
  gauge("admission_aborts",
        [this, count]() { return count(stats_.admission_aborts); });
  gauge("sheds", [this, count]() { return count(admission_.stats().Sheds()); });
  gauge("log_flushes", [this, count]() { return count(stats_.log_flushes); });
  gauge("log_entries_flushed",
        [this, count]() { return count(stats_.log_entries_flushed); });
  gauge("dispatches_coalesced",
        [this, count]() { return count(stats_.dispatches_coalesced); });
  gauge("failovers_observed",
        [this, count]() { return count(stats_.failovers_observed); });
  gauge("branch_retries",
        [this, count]() { return count(stats_.branch_retries); });
  gauge("follower_reads",
        [this, count]() { return count(stats_.follower_reads); });
  gauge("shard_redirects",
        [this, count]() { return count(stats_.shard_redirects); });
  gauge("dispatch_depth",
        [this, count]() { return count(MaxDispatchDepth()); });
  for (int i = 0; i < static_cast<int>(metrics::TxnPhase::kNumPhases); ++i) {
    const auto phase = static_cast<metrics::TxnPhase>(i);
    registry->RegisterHistogram(
        prefix + "phase." + metrics::TxnPhaseName(phase),
        [this, phase]() { return &stats_.breakdown.histogram(phase); });
  }
}

void MiddlewareNode::Attach() {
  network_->RegisterNode(id_, [this](std::unique_ptr<sim::MessageBase> msg) {
    HandleMessage(std::move(msg));
  });
  // Probe the *physical* replicas serving each logical source: the current
  // leader (aliased to the logical id so scheduling estimates survive a
  // failover) and its followers (so follower-read routing can pick the
  // nearest replica by measured RTT).
  monitor_->SetTargetProvider([this]() {
    std::vector<core::PingTarget> targets;
    for (NodeId logical : catalog_.AllDataSources()) {
      const NodeId leader = catalog_.LeaderOf(logical);
      targets.push_back(core::PingTarget{leader, logical});
      for (NodeId follower : catalog_.FollowersOf(logical)) {
        targets.push_back(core::PingTarget{follower, follower});
      }
    }
    return targets;
  });
  monitor_->SetShardEpochProvider([this]() { return catalog_.ShardEpoch(); });
  // Start the active side (ping sends, balancer ticks) on the actor's own
  // executor: Attach may be called from a setup thread, and on the loopback
  // runtime an in-process peer can answer the first ping while SendPings()
  // is still iterating — all monitor state must stay on the actor thread.
  timer_->Schedule(0, [this]() {
    monitor_->Start();
    if (balancer_ != nullptr) balancer_->Start();
  });
}

void MiddlewareNode::HandleMessage(std::unique_ptr<sim::MessageBase> msg) {
  if (crashed_) return;
  switch (msg->type()) {
    case sim::MessageType::kClientRoundRequest:
      OnClientRound(static_cast<ClientRoundRequest&>(*msg));
      return;
    case sim::MessageType::kBranchExecuteResponse:
      OnExecResponse(static_cast<BranchExecuteResponse&>(*msg));
      return;
    case sim::MessageType::kVoteMessage:
      OnVote(static_cast<VoteMessage&>(*msg));
      return;
    case sim::MessageType::kClientFinishRequest:
      OnClientFinish(static_cast<ClientFinishRequest&>(*msg));
      return;
    case sim::MessageType::kDecisionAck:
      OnDecisionAck(static_cast<DecisionAck&>(*msg));
      return;
    case sim::MessageType::kFollowerReadResponse:
      OnFollowerReadResponse(static_cast<FollowerReadResponse&>(*msg));
      return;
    case sim::MessageType::kLeaderAnnounce:
      OnLeaderAnnounce(static_cast<LeaderAnnounce&>(*msg));
      return;
    case sim::MessageType::kNotLeaderResponse:
      OnNotLeader(static_cast<NotLeaderResponse&>(*msg));
      return;
    case sim::MessageType::kPingResponse:
      OnPingResponse(static_cast<PingResponse&>(*msg));
      return;
    case sim::MessageType::kShardMapUpdate:
      OnShardMapUpdate(static_cast<protocol::ShardMapUpdate&>(*msg));
      return;
    case sim::MessageType::kShardRedirect:
      OnShardRedirect(static_cast<protocol::ShardRedirect&>(*msg));
      return;
    case sim::MessageType::kShardCutoverReady:
    case sim::MessageType::kShardMigrateAborted:
      if (balancer_ != nullptr) balancer_->HandleMessage(msg.get());
      return;
    default:
      GEOTP_CHECK(false, "middleware " << id_ << ": unknown message");
  }
}

void MiddlewareNode::BeginPrepareSpan(Txn& txn) {
  if (!txn.trace.valid() || txn.prepare_span != obs::kInvalidSpan) return;
  txn.prepare_span = obs::GlobalTracer().BeginSpan(
      txn.trace, "dm.prepare_wait", id_, loop()->Now());
}

void MiddlewareNode::CloseTxnSpans(Txn& txn, Micros now) {
  obs::Tracer& tracer = obs::GlobalTracer();
  for (obs::SpanHandle* h : {&txn.analysis_span, &txn.prepare_span,
                             &txn.fsync_span, &txn.commit_span,
                             &txn.root_span}) {
    if (*h != obs::kInvalidSpan) {
      tracer.EndSpan(*h, now);
      *h = obs::kInvalidSpan;
    }
  }
}

MiddlewareNode::Txn* MiddlewareNode::FindTxn(TxnId id) {
  auto it = txns_.find(id);
  return it == txns_.end() ? nullptr : &it->second;
}

std::vector<NodeId> MiddlewareNode::ParticipantIds(const Txn& txn) const {
  std::vector<NodeId> ids;
  ids.reserve(txn.participants.size());
  for (const auto& [node, p] : txn.participants) ids.push_back(node);
  return ids;
}

// ---------------------------------------------------------------------------
// Execution phase
// ---------------------------------------------------------------------------

void MiddlewareNode::OnClientRound(const ClientRoundRequest& req) {
  TxnId id = req.txn_id;
  if (id == kInvalidTxn) {
    // Overload gate — NEW transactions only. Continuation rounds of
    // admitted transactions bypass it unconditionally: admitted work must
    // finish, because finishing is what frees the budget.
    if (config_.overload.enabled()) {
      const ShedReason verdict =
          admission_.Consider(req.tenant, MaxDispatchDepth(),
                              monitor_->MaxOccupancy(), loop()->Now());
      if (verdict != ShedReason::kNone) {
        ShedClientRound(req);
        return;
      }
      stats_.overload = admission_.stats();
    }
    id = MakeTxnId(ordinal_, next_seq_++);
    Txn txn;
    txn.id = id;
    txn.client_tag = req.client_tag;
    txn.tenant = req.tenant;
    txn.client = req.from;
    txn.ts_begin = loop()->Now();
    // Trace-sampling decision (dedicated rng stream: the draw must not
    // perturb rng_'s scheduling/jitter sequence). The root span's context
    // is what every outbound envelope of this transaction carries.
    obs::Tracer& tracer = obs::GlobalTracer();
    if (tracer.enabled() && tracer.Sample(trace_rng_.NextDouble())) {
      const obs::TraceContext root =
          tracer.NewTrace(trace_rng_.NextU64(), id_);
      txn.root_span =
          tracer.BeginSpan(root, "dm.txn", id_, txn.ts_begin, &txn.trace);
    }
    txns_.emplace(id, std::move(txn));
  }
  Txn* txn = FindTxn(id);
  GEOTP_CHECK(txn != nullptr, "round for unknown txn");
  if (txn->aborting) return;  // result message will settle the client

  txn->pending_ops = req.ops;
  txn->last_round = req.last_round;
  txn->round_values.assign(req.ops.size(), 0);
  txn->analysis_total += config_.analysis_cost;
  if (txn->trace.valid() && txn->analysis_span == obs::kInvalidSpan) {
    txn->analysis_span = obs::GlobalTracer().BeginSpan(
        txn->trace, "dm.analysis", id_, loop()->Now());
  }
  // Parse / rewrite / route / schedule cost at the DM.
  loop()->Schedule(config_.analysis_cost,
                   [this, id]() { PlanAndDispatchRound(id); });
}

void MiddlewareNode::PlanAndDispatchRound(TxnId id) {
  Txn* txn = FindTxn(id);
  if (txn == nullptr || txn->aborting) return;
  if (txn->analysis_span != obs::kInvalidSpan) {
    obs::GlobalTracer().EndSpan(txn->analysis_span, loop()->Now());
    txn->analysis_span = obs::kInvalidSpan;
  }

  // Group operations (with their positions in the round) per data source.
  std::map<NodeId, std::vector<std::pair<ClientOp, size_t>>> groups;
  for (size_t i = 0; i < txn->pending_ops.size(); ++i) {
    const ClientOp& op = txn->pending_ops[i];
    groups[catalog_.Route(op.key)].emplace_back(op, i);
  }
  GEOTP_CHECK(!groups.empty(), "empty round");

  std::vector<core::ParticipantPlanInput> inputs;
  inputs.reserve(groups.size());
  for (const auto& [node, ops] : groups) {
    core::ParticipantPlanInput input;
    input.data_source = node;
    for (const auto& [op, slot] : ops) input.keys.push_back(op.key);
    inputs.push_back(std::move(input));
  }

  // Admission control (late transaction scheduling) applies to the first
  // round — the paper's Algorithm 2 admits whole transactions.
  const bool allow_admission = txn->round_seq == 0;
  core::ScheduleDecision decision = scheduler_->ScheduleRound(
      inputs, allow_admission ? txn->admission_attempts : -1, rng_);
  if (allow_admission) {
    if (decision.verdict == core::AdmissionVerdict::kBlock) {
      stats_.admission_blocks++;
      txn->admission_attempts++;
      loop()->Schedule(decision.retry_backoff,
                       [this, id]() { PlanAndDispatchRound(id); });
      return;
    }
    if (decision.verdict == core::AdmissionVerdict::kAbort) {
      stats_.admission_aborts++;
      StartAbort(*txn, Status::Aborted("late-scheduling admission abort"));
      return;
    }
  }

  const uint64_t round_seq = txn->round_seq;
  txn->round_outstanding = groups.size();

  // Participants begun in earlier rounds but absent from the final round
  // are told to prepare right away (§III).
  if (txn->last_round &&
      config_.commit_protocol == CommitProtocol::kDecentralized) {
    for (auto& [node, p] : txn->participants) {
      if (p.begun && groups.count(node) == 0) {
        QueuePrepare(catalog_.LeaderOf(node), Xid{txn->id, node});
      }
    }
  }

  size_t plan_idx = 0;
  for (auto& [node, ops_slots] : groups) {
    auto batch = ops_slots;
    if (config_.quro_reorder) {
      // QURO: exclusive locks as late as possible inside the batch.
      std::stable_partition(
          batch.begin(), batch.end(),
          [](const std::pair<ClientOp, size_t>& e) { return !e.first.is_write; });
    }
    Participant& p = txn->participants[node];
    p.exec_outstanding = true;
    p.round_keys.clear();
    p.op_slots.clear();
    bool all_reads = true;
    for (const auto& [op, slot] : batch) {
      p.round_keys.push_back(op.key);
      p.op_slots.push_back(slot);
      if (op.is_write) all_reads = false;
    }
    // Final-round all-read batches may be served by a replication
    // follower (stale-bounded); everything else runs at the leader.
    p.via_follower = config_.follower_reads && txn->last_round &&
                     !p.begun && all_reads &&
                     catalog_.HasReplicaGroup(node);

    const Micros postpone = decision.plans[plan_idx++].postpone;
    const NodeId target = node;
    std::vector<ClientOp> batch_ops;
    batch_ops.reserve(batch.size());
    for (const auto& [op, slot] : batch) batch_ops.push_back(op);

    loop()->Schedule(postpone, [this, id, target, round_seq,
                                ops = std::move(batch_ops)]() mutable {
      Txn* txn = FindTxn(id);
      if (txn == nullptr || txn->aborting) return;
      Participant& p = txn->participants[target];
      if (p.via_follower) {
        p.last_batch = ops;
        if (TryFollowerRead(*txn, target, ops, round_seq)) return;
        p.via_follower = false;  // no usable follower
      }
      SendBranchBatch(*txn, target, std::move(ops), round_seq);
    });
  }
  txn->round_seq++;
}

void MiddlewareNode::SendBranchBatch(Txn& txn, NodeId logical,
                                     std::vector<ClientOp> ops,
                                     uint64_t round_seq) {
  Participant& p = txn.participants[logical];
  p.exec_outstanding = true;
  p.via_follower = false;
  if (!p.begun) p.begun_round = round_seq;
  auto req = std::make_unique<BranchExecuteRequest>();
  req->from = id_;
  req->to = catalog_.LeaderOf(logical);
  req->trace = txn.trace;
  req->xid = Xid{txn.id, logical};
  req->round_seq = round_seq;
  req->begin_branch = !p.begun;
  req->last_statement =
      txn.last_round &&
      config_.commit_protocol == CommitProtocol::kDecentralized;
  // Peers (for early abort) are the other branch-executing participants,
  // addressed at their current leaders.
  for (const auto& [node, q] : txn.participants) {
    if (node == logical || q.via_follower) continue;
    req->peers.push_back(catalog_.LeaderOf(node));
  }
  req->coordinator = id_;
  p.begun = true;
  p.last_batch = ops;
  req->ops = std::move(ops);
  // Charge the hotspot footprint at actual dispatch (a_cnt++); the
  // matching release happens in OnExecResponse or FinishTxn. A failover
  // retry keeps the original charge.
  if (!p.footprint_charged) {
    footprint_->OnDispatch(p.round_keys);
    p.footprint_charged = true;
  }
  network_->Send(std::move(req));
}

bool MiddlewareNode::TryFollowerRead(Txn& txn, NodeId logical,
                                     const std::vector<ClientOp>& ops,
                                     uint64_t round_seq) {
  const std::vector<NodeId> followers = catalog_.FollowersOf(logical);
  if (followers.empty()) return false;
  // Prefer the nearest follower by the monitor's measured RTT. Only fresh
  // estimates count: a crashed follower's estimate freezes at its last
  // (attractive) value, and pinning every read to it would turn follower
  // reads into a 100% timeout path. Fall back to hashing while no
  // follower has a fresh sample.
  const Micros freshness_bound = 10 * config_.monitor.ping_interval;
  NodeId target = followers[txn.id % followers.size()];
  Micros best_rtt = 0;
  for (NodeId follower : followers) {
    if (monitor_->SampleAge(follower) > freshness_bound) continue;
    const Micros rtt = monitor_->RttEstimate(follower);
    if (rtt > 0 && (best_rtt == 0 || rtt < best_rtt)) {
      best_rtt = rtt;
      target = follower;
    }
  }
  auto req = std::make_unique<FollowerReadRequest>();
  req->from = id_;
  req->to = target;
  req->trace = txn.trace;
  req->group = logical;
  req->txn_id = txn.id;
  req->round_seq = round_seq;
  for (const ClientOp& op : ops) req->keys.push_back(op.key);
  req->max_staleness = config_.follower_read_stale_bound;
  network_->Send(std::move(req));
  // A crashed follower never answers: fall back to the leader.
  const TxnId id = txn.id;
  loop()->Schedule(config_.follower_read_timeout, [this, id, logical,
                                                   round_seq]() {
    Txn* t = FindTxn(id);
    if (t == nullptr || t->aborting || t->round_seq != round_seq + 1) return;
    auto it = t->participants.find(logical);
    if (it == t->participants.end()) return;
    Participant& p = it->second;
    if (!p.via_follower || !p.exec_outstanding) return;
    stats_.follower_read_fallbacks++;
    FallBackToLeader(*t, logical);
  });
  return true;
}

void MiddlewareNode::FallBackToLeader(Txn& txn, NodeId logical) {
  Participant& p = txn.participants[logical];
  p.via_follower = false;
  std::vector<ClientOp> ops = p.last_batch;
  SendBranchBatch(txn, logical, std::move(ops), txn.round_seq - 1);
}

void MiddlewareNode::OnFollowerReadResponse(const FollowerReadResponse& resp) {
  Txn* txn = FindTxn(resp.txn_id);
  if (txn == nullptr || txn->aborting) return;
  auto it = txn->participants.find(resp.group);
  if (it == txn->participants.end()) return;
  Participant& p = it->second;
  if (!p.via_follower || !p.exec_outstanding) return;  // fell back already
  if (resp.round_seq + 1 != txn->round_seq) return;    // stale round
  if (!resp.ok) {
    // Staleness bound exceeded at the follower: run at the leader.
    stats_.follower_read_fallbacks++;
    FallBackToLeader(*txn, resp.group);
    return;
  }
  stats_.follower_reads++;
  p.exec_outstanding = false;
  p.via_follower = false;
  for (size_t i = 0; i < p.op_slots.size() && i < resp.values.size(); ++i) {
    txn->round_values[p.op_slots[i]] = resp.values[i];
  }
  if (txn->round_outstanding > 0) txn->round_outstanding--;
  MaybeCompleteRound(*txn);
}

void MiddlewareNode::OnExecResponse(const BranchExecuteResponse& resp) {
  Txn* txn = FindTxn(resp.xid.txn_id);
  if (txn == nullptr) return;  // late response after the txn settled
  auto it = txn->participants.find(catalog_.LogicalOf(resp.from));
  if (it == txn->participants.end()) return;
  Participant& p = it->second;
  if (!p.exec_outstanding) return;  // duplicate/stale
  p.exec_outstanding = false;

  // Feed the hotspot footprint (Eq. 4 update + counter maintenance).
  if (p.footprint_charged) {
    footprint_->OnComplete(p.round_keys, resp.local_exec_latency,
                           resp.status.ok());
    p.footprint_charged = false;
  }

  if (!resp.status.ok()) {
    if (resp.rolled_back) p.rollback_confirmed = true;
    if (txn->aborting) {
      CheckAbortDone(*txn);
    } else {
      StartAbort(*txn, resp.status);
    }
    return;
  }

  // Place read results into their slots in the client round.
  for (size_t i = 0; i < p.op_slots.size() && i < resp.values.size(); ++i) {
    txn->round_values[p.op_slots[i]] = resp.values[i];
  }
  if (txn->round_outstanding > 0) txn->round_outstanding--;
  MaybeCompleteRound(*txn);
}

void MiddlewareNode::MaybeCompleteRound(Txn& txn) {
  if (txn.aborting || txn.round_outstanding != 0) return;
  txn.ts_exec_done = loop()->Now();
  auto resp = std::make_unique<ClientRoundResponse>();
  resp->from = id_;
  resp->to = txn.client;
  resp->client_tag = txn.client_tag;
  resp->txn_id = txn.id;
  resp->status = Status::OK();
  resp->values = txn.round_values;
  network_->Send(std::move(resp));
}

// ---------------------------------------------------------------------------
// Commit phase
// ---------------------------------------------------------------------------

void MiddlewareNode::OnClientFinish(const ClientFinishRequest& req) {
  Txn* txn = FindTxn(req.txn_id);
  if (txn == nullptr) return;  // settled already (client will see result)
  txn->commit_requested = true;
  txn->ts_commit_req = loop()->Now();
  if (txn->aborting) return;  // abort result is on its way
  if (!req.commit) {
    StartAbort(*txn, Status::Aborted("client rollback"));
    return;
  }
  StartCommit(*txn);
}

void MiddlewareNode::StartCommit(Txn& txn) {
  switch (config_.commit_protocol) {
    case CommitProtocol::kDecentralized: {
      // Votes arrive asynchronously from the geo-agents (implicit
      // decentralized prepare, Algorithm 1): wait for them.
      txn.phase = Phase::kWaitCommitVotes;
      BeginPrepareSpan(txn);
      CheckVotesComplete(txn);
      return;
    }
    case CommitProtocol::kTwoPhase: {
      if (txn.participants.size() == 1) {
        // XA one-phase commit for centralized transactions: 1 WAN RTT.
        txn.ts_votes = loop()->Now();
        DispatchDecision(txn, /*commit=*/true, /*one_phase=*/true);
        return;
      }
      txn.phase = Phase::kWaitCommitVotes;
      BeginPrepareSpan(txn);
      for (auto& [node, p] : txn.participants) {
        if (!p.begun) continue;
        QueuePrepare(catalog_.LeaderOf(node), Xid{txn.id, node});
      }
      return;
    }
    case CommitProtocol::kLocalNoAtomicity: {
      // SSP(local): decentralized commit, no atomicity guarantee — the
      // decision goes out without a prepare phase.
      txn.ts_votes = loop()->Now();
      DispatchDecision(txn, /*commit=*/true, /*one_phase=*/true);
      return;
    }
  }
}

void MiddlewareNode::OnVote(const VoteMessage& vote) {
  Txn* txn = FindTxn(vote.xid.txn_id);
  if (txn == nullptr) {
    // A promoted leader re-voted a prepared branch of a transaction we no
    // longer track: resolve it from the decision log (presumed abort).
    if (vote.vote == Vote::kPrepared) ResolveOrphanVote(vote);
    return;
  }
  auto it = txn->participants.find(catalog_.LogicalOf(vote.from));
  if (it == txn->participants.end()) return;
  Participant& p = it->second;
  p.has_vote = true;
  p.vote = vote.vote;

  switch (vote.vote) {
    case Vote::kPrepared:
    case Vote::kIdle:
      if (txn->phase == Phase::kWaitCommitVotes) CheckVotesComplete(*txn);
      return;
    case Vote::kFailure:
    case Vote::kRollbackOnly:
    case Vote::kRollbacked:
      p.rollback_confirmed = true;
      if (txn->aborting) {
        CheckAbortDone(*txn);
      } else {
        StartAbort(*txn, Status::Aborted("participant voted " +
                                         std::string(VoteName(vote.vote))));
      }
      return;
  }
}

void MiddlewareNode::CheckVotesComplete(Txn& txn) {
  GEOTP_CHECK(txn.phase == Phase::kWaitCommitVotes, "wrong phase");
  size_t begun = 0;
  for (auto& [node, p] : txn.participants) {
    if (!p.begun) continue;
    ++begun;
    if (!p.has_vote) return;  // still waiting (Algorithm 1 line 21)
    const bool good_vote =
        p.vote == Vote::kPrepared ||
        (p.vote == Vote::kIdle && txn.participants.size() == 1);
    if (!good_vote) return;  // failure votes route through OnVote
  }
  if (begun == 0) {
    // Degenerate: nothing begun (all rounds empty) — commit trivially.
    txn.ts_votes = loop()->Now();
    FinishTxn(txn, /*committed=*/true);
    return;
  }
  txn.ts_votes = loop()->Now();
  if (txn.prepare_span != obs::kInvalidSpan) {
    obs::GlobalTracer().EndSpan(txn.prepare_span, txn.ts_votes);
    txn.prepare_span = obs::kInvalidSpan;
  }
  const bool one_phase = txn.participants.size() == 1 &&
                         txn.participants.begin()->second.vote == Vote::kIdle;
  if (one_phase) {
    // Centralized fast path: no decision log needed; the single source's
    // commit is the decision.
    DispatchDecision(txn, /*commit=*/true, /*one_phase=*/true);
  } else {
    FlushLogAndDispatch(txn, /*commit=*/true);
  }
}

void MiddlewareNode::FlushLogAndDispatch(Txn& txn, bool commit) {
  // The decision joins the decision log's open group-commit batch; it is
  // logged (and dispatched) only when the shared flush completes. A DM
  // crash loses the open batch — exactly the decisions that were never
  // durable, so recovery's presumed abort stays correct.
  const TxnId id = txn.id;
  if (txn.trace.valid() && txn.fsync_span == obs::kInvalidSpan) {
    txn.fsync_span = obs::GlobalTracer().BeginSpan(
        txn.trace, "dm.log_fsync", id_, loop()->Now());
  }
  log_committer_.Append(
      config_.log_flush_cost,
      "DECISION txn=" + std::to_string(id) + (commit ? " C\n" : " A\n"),
      [this, id, commit]() {
    Txn* txn = FindTxn(id);
    if (txn == nullptr) return;
    if (txn->fsync_span != obs::kInvalidSpan) {
      obs::GlobalTracer().EndSpan(txn->fsync_span, loop()->Now());
      txn->fsync_span = obs::kInvalidSpan;
    }
    log_.push_back(DecisionLogEntry{id, commit});
    stats_.log_entries_flushed++;
    DispatchDecision(*txn, commit, /*one_phase=*/false);
  });
}

void MiddlewareNode::DispatchDecision(Txn& txn, bool commit, bool one_phase) {
  txn.phase = commit ? Phase::kCommitDispatched : Phase::kAborting;
  txn.decision_one_phase = one_phase;
  txn.ts_decision = loop()->Now();
  if (txn.trace.valid() && txn.commit_span == obs::kInvalidSpan) {
    txn.commit_span = obs::GlobalTracer().BeginSpan(
        txn.trace, commit ? "dm.commit" : "dm.abort", id_, txn.ts_decision);
  }
  size_t sent = 0;
  for (auto& [node, p] : txn.participants) {
    if (!p.begun) continue;
    if (!commit && p.rollback_confirmed) continue;  // already rolled back
    QueueDecision(catalog_.LeaderOf(node), Xid{txn.id, node}, commit,
                  one_phase);
    ++sent;
  }
  if (!commit) {
    CheckAbortDone(txn);
  } else if (sent == 0) {
    FinishTxn(txn, /*committed=*/true);
  }
}

// ---------------------------------------------------------------------------
// Coalesced dispatch
// ---------------------------------------------------------------------------

void MiddlewareNode::QueuePrepare(NodeId dest, const Xid& xid) {
  pending_prepares_[dest].push_back(xid);
  admission_.NoteDispatchDepth(pending_prepares_[dest].size() +
                               pending_decisions_[dest].size());
  ScheduleDispatchFlush();
}

void MiddlewareNode::QueueDecision(NodeId dest, const Xid& xid, bool commit,
                                   bool one_phase) {
  pending_decisions_[dest].push_back(
      protocol::DecisionItem{xid, commit, one_phase});
  admission_.NoteDispatchDepth(pending_prepares_[dest].size() +
                               pending_decisions_[dest].size());
  ScheduleDispatchFlush();
}

size_t MiddlewareNode::MaxDispatchDepth() const {
  size_t depth = 0;
  for (const auto& [dest, xids] : pending_prepares_) {
    size_t d = xids.size();
    auto it = pending_decisions_.find(dest);
    if (it != pending_decisions_.end()) d += it->second.size();
    depth = std::max(depth, d);
  }
  for (const auto& [dest, items] : pending_decisions_) {
    depth = std::max(depth, items.size());
  }
  return depth;
}

void MiddlewareNode::ShedClientRound(const ClientRoundRequest& req) {
  stats_.overload = admission_.stats();
  auto shed = std::make_unique<protocol::OverloadedResponse>();
  shed->from = id_;
  shed->to = req.from;
  shed->client_tag = req.client_tag;
  shed->tenant = req.tenant;
  shed->retry_after_hint = admission_.RetryHint();
  network_->Send(std::move(shed));
}

void MiddlewareNode::ScheduleDispatchFlush() {
  if (dispatch_flush_scheduled_) return;
  dispatch_flush_scheduled_ = true;
  // Delay 0: fires later in the same event-loop tick, after whatever
  // cascade (a group-commit flush releasing many transactions at once)
  // finished queueing — so same-destination messages merge.
  loop()->Schedule(0, [this]() { FlushDispatchQueues(); });
}

void MiddlewareNode::FlushDispatchQueues() {
  dispatch_flush_scheduled_ = false;
  if (crashed_) {
    pending_prepares_.clear();
    pending_decisions_.clear();
    return;
  }
  for (auto& [dest, xids] : pending_prepares_) {
    stats_.prepare_requests_sent += xids.size();
    if (xids.size() == 1) {
      auto prep = std::make_unique<PrepareRequest>();
      prep->from = id_;
      prep->to = dest;
      prep->xid = xids.front();
      // Singleton envelopes carry the transaction's context; batches rely
      // on the branch context stored at the source (one envelope cannot
      // carry many contexts).
      if (Txn* t = FindTxn(prep->xid.txn_id)) prep->trace = t->trace;
      network_->Send(std::move(prep));
      continue;
    }
    auto batch = std::make_unique<protocol::PrepareBatch>();
    batch->from = id_;
    batch->to = dest;
    batch->xids = std::move(xids);
    stats_.prepare_batches_sent++;
    stats_.dispatches_coalesced += batch->xids.size() - 1;
    network_->Send(std::move(batch));
  }
  pending_prepares_.clear();
  for (auto& [dest, items] : pending_decisions_) {
    stats_.decisions_sent += items.size();
    if (items.size() == 1) {
      auto decision = std::make_unique<DecisionRequest>();
      decision->from = id_;
      decision->to = dest;
      decision->xid = items.front().xid;
      decision->commit = items.front().commit;
      decision->one_phase = items.front().one_phase;
      if (Txn* t = FindTxn(decision->xid.txn_id)) decision->trace = t->trace;
      network_->Send(std::move(decision));
      continue;
    }
    auto batch = std::make_unique<protocol::DecisionBatch>();
    batch->from = id_;
    batch->to = dest;
    batch->items = std::move(items);
    stats_.decision_batches_sent++;
    stats_.dispatches_coalesced += batch->items.size() - 1;
    network_->Send(std::move(batch));
  }
  pending_decisions_.clear();
}

void MiddlewareNode::OnDecisionAck(const DecisionAck& ack) {
  Txn* txn = FindTxn(ack.xid.txn_id);
  if (txn == nullptr) return;
  auto it = txn->participants.find(catalog_.LogicalOf(ack.from));
  if (it == txn->participants.end()) return;
  Participant& p = it->second;
  if (txn->phase == Phase::kCommitDispatched) {
    if (!ack.committed) {
      if (ack.one_phase) {
        // A one-phase commit can fail cleanly (e.g. the source crashed and
        // aborted the never-prepared branch): the transaction aborts.
        txn->abort_status = Status::Aborted("one-phase commit failed");
        FinishTxn(*txn, /*committed=*/false);
        return;
      }
      // A PREPARED participant failed a logged commit decision — only
      // tolerated in kLocalNoAtomicity (the paper's SSP(local) accepts
      // inconsistency); in XA modes it would be an atomicity violation.
      GEOTP_CHECK(
          config_.commit_protocol == CommitProtocol::kLocalNoAtomicity,
          "participant failed a committed decision");
    }
    p.decision_acked = true;
    for (auto& [node, q] : txn->participants) {
      if (q.begun && !q.decision_acked) return;
    }
    FinishTxn(*txn, /*committed=*/true);
    return;
  }
  if (txn->phase == Phase::kAborting) {
    p.rollback_confirmed = true;
    CheckAbortDone(*txn);
  }
}

// ---------------------------------------------------------------------------
// Abort path
// ---------------------------------------------------------------------------

void MiddlewareNode::StartAbort(Txn& txn, Status status) {
  if (txn.aborting) return;
  txn.aborting = true;
  txn.abort_status = std::move(status);
  txn.phase = Phase::kAborting;
  // Flush the abort decision, then notify unconfirmed participants. With
  // early abort the geo-agents have already propagated peer aborts; the
  // DM's decisions are belt-and-braces so no participant is orphaned, and
  // whichever confirmation arrives first settles the participant.
  FlushLogAndDispatch(txn, /*commit=*/false);
}

void MiddlewareNode::CheckAbortDone(Txn& txn) {
  if (!txn.aborting) return;
  if (txn.phase != Phase::kAborting) return;  // log flush still pending
  for (auto& [node, p] : txn.participants) {
    if (p.begun && !p.rollback_confirmed) return;
  }
  FinishTxn(txn, /*committed=*/false);
}

// ---------------------------------------------------------------------------
// Completion
// ---------------------------------------------------------------------------

void MiddlewareNode::FinishTxn(Txn& txn, bool committed) {
  const Micros now = loop()->Now();
  CloseTxnSpans(txn, now);
  // Release footprint charges for participants whose execute response
  // never arrived (dispatch skipped mid-abort, or settled early) so a_cnt
  // does not leak — a leaked a_cnt drives Eq. 9 to 1 permanently.
  for (auto& [node, p] : txn.participants) {
    if (p.footprint_charged) {
      footprint_->OnRelease(p.round_keys);
      p.footprint_charged = false;
    }
  }
  if (committed) {
    stats_.committed++;
    size_t begun = 0;
    for (const auto& [node, p] : txn.participants) {
      if (p.begun) ++begun;
    }
    if (begun > 1) stats_.committed_distributed++;
    stats_.breakdown.Record(metrics::TxnPhase::kAnalysis, txn.analysis_total);
    stats_.breakdown.Record(metrics::TxnPhase::kExecution,
                            txn.ts_exec_done - txn.ts_begin);
    if (txn.ts_votes > 0 && txn.ts_commit_req > 0) {
      stats_.breakdown.Record(
          metrics::TxnPhase::kPrepare,
          std::max<Micros>(0, txn.ts_votes - txn.ts_commit_req));
    }
    if (txn.ts_decision > 0) {
      stats_.breakdown.Record(metrics::TxnPhase::kCommit,
                              now - txn.ts_decision);
    }
  } else {
    stats_.aborted++;
  }

  auto result = std::make_unique<ClientTxnResult>();
  result->from = id_;
  result->to = txn.client;
  result->client_tag = txn.client_tag;
  result->txn_id = txn.id;
  result->status = committed ? Status::OK() : txn.abort_status;
  network_->Send(std::move(result));
  if (config_.overload.enabled()) {
    admission_.Release(txn.tenant);
    stats_.overload = admission_.stats();
  }
  txns_.erase(txn.id);
}

// ---------------------------------------------------------------------------
// Replication failover (src/replication)
// ---------------------------------------------------------------------------

void MiddlewareNode::OnLeaderAnnounce(const LeaderAnnounce& announce) {
  if (catalog_.UpdateLeader(announce.group, announce.leader,
                            announce.epoch)) {
    HandleFailover(announce.group);
  }
}

void MiddlewareNode::OnNotLeader(const NotLeaderResponse& redirect) {
  if (catalog_.UpdateLeader(redirect.group, redirect.leader_hint,
                            redirect.epoch)) {
    HandleFailover(redirect.group);
  }
}

void MiddlewareNode::HandleFailover(NodeId logical) {
  stats_.failovers_observed++;
  std::vector<TxnId> to_abort;
  for (auto& [txn_id, txn] : txns_) {
    auto it = txn.participants.find(logical);
    if (it == txn.participants.end()) continue;
    Participant& p = it->second;
    switch (txn.phase) {
      case Phase::kExecuting: {
        if (!p.exec_outstanding) {
          // Idle after its round completed. A final-round branch has a
          // decentralized prepare in flight at the source; if that died
          // un-replicated with the old leader, no vote will ever come —
          // promoted leaders only re-vote quorum-staged prepares. Give
          // the vote the same grace as the kWaitCommitVotes case (it may
          // still be in flight, or resurface via a re-vote), then abort.
          // Without this, a crash in the prepare-fsync window wedges the
          // transaction forever once the client's COMMIT arrives.
          if (txn.last_round && p.begun && !p.has_vote &&
              config_.commit_protocol == CommitProtocol::kDecentralized) {
            const TxnId waiting = txn_id;
            loop()->Schedule(
                config_.failover_vote_grace, [this, waiting, logical]() {
                  Txn* t = FindTxn(waiting);
                  if (t == nullptr || t->aborting) return;
                  if (t->phase != Phase::kExecuting &&
                      t->phase != Phase::kWaitCommitVotes) {
                    return;
                  }
                  auto pit = t->participants.find(logical);
                  if (pit == t->participants.end() || pit->second.has_vote) {
                    return;
                  }
                  StartAbort(*t, Status::Unavailable(
                                     "prepare lost in failover"));
                });
          }
          break;
        }
        if (p.via_follower) break;       // follower-read timeout handles it
        if (p.begun && p.begun_round + 1 == txn.round_seq) {
          // The branch began in the round now in flight: its state died
          // un-replicated with the old leader, so replaying the whole
          // batch on the new leader is exact.
          stats_.branch_retries++;
          p.begun = false;
          p.has_vote = false;
          std::vector<ClientOp> ops = p.last_batch;
          SendBranchBatch(txn, logical, std::move(ops), txn.round_seq - 1);
        } else {
          // Effects of earlier rounds were lost with the old leader; the
          // batch cannot be replayed in isolation.
          to_abort.push_back(txn_id);
        }
        break;
      }
      case Phase::kWaitCommitVotes: {
        if (!p.begun || p.has_vote) break;
        // If the prepare reached a quorum the promoted leader re-votes it;
        // otherwise it died with the old leader — presume abort after a
        // grace period.
        const TxnId waiting = txn_id;
        loop()->Schedule(config_.failover_vote_grace,
                         [this, waiting, logical]() {
                           Txn* t = FindTxn(waiting);
                           if (t == nullptr || t->aborting ||
                               t->phase != Phase::kWaitCommitVotes) {
                             return;
                           }
                           auto pit = t->participants.find(logical);
                           if (pit == t->participants.end() ||
                               pit->second.has_vote) {
                             return;
                           }
                           StartAbort(*t, Status::Unavailable(
                                              "prepare lost in failover"));
                         });
        break;
      }
      case Phase::kCommitDispatched: {
        if (!p.begun || p.decision_acked) break;
        // Re-send the undecided commit; the new leader resolves it
        // idempotently against its replicated log.
        QueueDecision(catalog_.LeaderOf(logical), Xid{txn.id, logical},
                      /*commit=*/true, txn.decision_one_phase);
        break;
      }
      case Phase::kAborting: {
        if (!p.begun || p.rollback_confirmed) break;
        QueueDecision(catalog_.LeaderOf(logical), Xid{txn.id, logical},
                      /*commit=*/false, /*one_phase=*/false);
        break;
      }
    }
  }
  for (TxnId txn_id : to_abort) {
    Txn* txn = FindTxn(txn_id);
    if (txn != nullptr && !txn->aborting) {
      StartAbort(*txn, Status::Unavailable("data source leader failover"));
    }
  }
}

// ---------------------------------------------------------------------------
// Elastic sharding (src/sharding)
// ---------------------------------------------------------------------------

void MiddlewareNode::OnShardMapUpdate(const protocol::ShardMapUpdate& update) {
  catalog_.mutable_shard_map().Adopt(update.entries);
  NoteShardEpoch(catalog_.ShardEpoch());
}

void MiddlewareNode::OnPingResponse(const protocol::PingResponse& pong) {
  monitor_->OnPong(pong);
  // Metrics sampling rides the monitor tick: pongs arrive once per ping
  // interval per target, so space samples by the interval.
  if (metrics_ != nullptr) {
    const Micros now = loop()->Now();
    if (now - last_metrics_sample_ >= config_.monitor.ping_interval) {
      last_metrics_sample_ = now;
      metrics_->Sample(now);
    }
  }
  // Anti-entropy, both directions. A source that saw our stale epoch sent
  // its map along: adopt it (bounds DM staleness by one ping interval
  // instead of one redirect). A source whose own epoch trails the catalog
  // missed a publish (partitioned, restarted): push it the current map.
  if (!pong.map_entries.empty() &&
      catalog_.mutable_shard_map().Adopt(pong.map_entries)) {
    stats_.shard_map_pulls++;
    NoteShardEpoch(catalog_.ShardEpoch());
  }
  if (catalog_.HasShardMap() && pong.shard_epoch < catalog_.ShardEpoch()) {
    // One push per round trip, not per ping: pings fire every 10 ms while
    // a WAN repair takes an RTT to reflect in the pong's epoch, so an
    // unspaced push would send dozens of identical full maps per repair.
    const Micros spacing =
        std::max<Micros>(monitor_->RttEstimate(pong.from),
                         config_.monitor.ping_interval);
    Micros& last = shard_push_at_[pong.from];
    if (last == 0 || loop()->Now() - last >= spacing) {
      last = loop()->Now();
      stats_.shard_map_pushes++;
      auto update = std::make_unique<protocol::ShardMapUpdate>();
      update->from = id_;
      update->to = pong.from;
      update->entries = catalog_.shard_map().ranges();
      network_->Send(std::move(update));
    }
  }
}

void MiddlewareNode::OnShardRedirect(const protocol::ShardRedirect& redirect) {
  stats_.shard_redirects++;
  catalog_.mutable_shard_map().Adopt({redirect.entry});
  NoteShardEpoch(catalog_.ShardEpoch());

  Txn* txn = FindTxn(redirect.txn_id);
  if (txn == nullptr || txn->aborting) return;
  const NodeId logical = catalog_.LogicalOf(redirect.from);
  auto it = txn->participants.find(logical);
  if (it == txn->participants.end()) return;
  Participant& p = it->second;
  if (!p.exec_outstanding || p.via_follower) return;
  if (txn->phase != Phase::kExecuting ||
      redirect.round_seq + 1 != txn->round_seq) {
    return;  // stale bounce of an earlier round
  }
  if (p.begun && p.begun_round + 1 != txn->round_seq) {
    // Earlier rounds of this branch executed at the old owner; their
    // effects cannot follow the shard. Abort; the client's retry routes
    // under the adopted map.
    StartAbort(*txn, Status::Unavailable("shard moved mid-transaction"));
    return;
  }
  // The bounced batch would have been the branch's first — nothing began
  // at the old owner (the bounce happened before Begin).
  p.begun = false;
  p.has_vote = false;

  // Re-route the bounced batch under the patched placement. The batch may
  // split: moved keys go to the new owner, unmoved keys stay.
  std::vector<ClientOp> ops = p.last_batch;
  std::vector<size_t> slots = p.op_slots;
  if (p.footprint_charged) {
    // Release the old charge; the re-dispatch re-charges per new group.
    footprint_->OnRelease(p.round_keys);
    p.footprint_charged = false;
  }
  std::map<NodeId, std::pair<std::vector<ClientOp>, std::vector<size_t>>>
      groups;
  for (size_t i = 0; i < ops.size(); ++i) {
    auto& group = groups[catalog_.Route(ops[i].key)];
    group.first.push_back(ops[i]);
    group.second.push_back(i < slots.size() ? slots[i] : i);
  }
  // A target that already has a batch of this round in flight cannot take
  // a second one (one outstanding batch per participant): abort-and-retry.
  for (const auto& [target, group] : groups) {
    if (target == logical) continue;
    auto pit = txn->participants.find(target);
    if (pit != txn->participants.end() && pit->second.exec_outstanding) {
      StartAbort(*txn, Status::Unavailable("shard moved mid-round"));
      return;
    }
  }
  if (groups.count(logical) == 0) txn->participants.erase(it);
  txn->round_outstanding += groups.size() - 1;
  stats_.shard_reroutes++;
  const uint64_t round_seq = txn->round_seq - 1;
  for (auto& [target, group] : groups) {
    Participant& q = txn->participants[target];
    q.op_slots = std::move(group.second);
    q.round_keys.clear();
    for (const ClientOp& op : group.first) q.round_keys.push_back(op.key);
    SendBranchBatch(*txn, target, std::move(group.first), round_seq);
  }
}

void MiddlewareNode::ResolveOrphanVote(const VoteMessage& vote) {
  bool committed = false;
  for (const DecisionLogEntry& entry : log_) {
    if (entry.txn_id == vote.xid.txn_id) committed = entry.commit;
  }
  if (!committed) stats_.presumed_aborts++;
  QueueDecision(vote.from, vote.xid, committed, /*one_phase=*/false);
}

// ---------------------------------------------------------------------------
// Failure & recovery (§V-A)
// ---------------------------------------------------------------------------

void MiddlewareNode::Crash() {
  crashed_ = true;
  network_->Partition(id_);
  txns_.clear();  // in-memory coordinator state is lost; log_ survives
  admission_.Reset();  // the budget died with the coordinated transactions
  // Decisions in the decision log's open batch were never durable: the
  // crash loses them (their transactions resolve via presumed abort).
  log_committer_.Reset();
  pending_prepares_.clear();
  pending_decisions_.clear();
}

void MiddlewareNode::Restart(
    const std::vector<datasource::DataSourceNode*>& sources) {
  crashed_ = false;
  network_->Restore(id_);
  // The balancer's tick chain ended at the crash; without it, in-flight
  // migrations would never be timeout-cancelled and their fenced ranges
  // would stay unavailable forever.
  if (balancer_ != nullptr) balancer_->Start();
  // ❶: on DM disconnect, sources abort branches that have not prepared.
  for (auto* src : sources) {
    src->OnCoordinatorFailure(id_);
  }
  // Collect in-doubt (prepared) branches of this DM and resolve them from
  // the decision log: logged commit -> commit; otherwise abort.
  for (auto* src : sources) {
    for (const Xid& xid : src->engine().PreparedXids()) {
      if ((xid.txn_id >> 48) != ordinal_) continue;  // another DM's txn
      bool committed = false;
      for (const auto& entry : log_) {
        if (entry.txn_id == xid.txn_id) committed = entry.commit;
      }
      QueueDecision(src->id(), xid, committed, /*one_phase=*/false);
    }
  }
}

}  // namespace middleware
}  // namespace geotp
