#include "middleware/catalog.h"

#include <algorithm>

namespace geotp {
namespace middleware {

namespace {
void MergeNodes(std::vector<NodeId>& all, const std::vector<NodeId>& add) {
  for (NodeId node : add) {
    if (std::find(all.begin(), all.end(), node) == all.end()) {
      all.push_back(node);
    }
  }
}
}  // namespace

void Catalog::AddRangePartitionedTable(uint32_t table, uint64_t keys_per_node,
                                       std::vector<NodeId> nodes) {
  GEOTP_CHECK(!nodes.empty() && keys_per_node > 0,
              "bad partitioning for table " << table);
  MergeNodes(all_nodes_, nodes);
  routes_[table] = [keys_per_node, nodes](const RecordKey& key) {
    uint64_t idx = key.key / keys_per_node;
    if (idx >= nodes.size()) idx = nodes.size() - 1;
    return nodes[idx];
  };
}

void Catalog::AddHighBitsPartitionedTable(uint32_t table, int shift,
                                          uint64_t groups_per_node,
                                          std::vector<NodeId> nodes) {
  GEOTP_CHECK(!nodes.empty() && groups_per_node > 0 && shift >= 0 &&
                  shift < 64,
              "bad partitioning for table " << table);
  MergeNodes(all_nodes_, nodes);
  routes_[table] = [shift, groups_per_node, nodes](const RecordKey& key) {
    uint64_t idx = (key.key >> shift) / groups_per_node;
    if (idx >= nodes.size()) idx = nodes.size() - 1;
    return nodes[idx];
  };
}

void Catalog::AddCustomTable(uint32_t table, RouteFn route) {
  routes_[table] = std::move(route);
}

NodeId Catalog::Route(const RecordKey& key) const {
  auto it = routes_.find(key.table);
  GEOTP_CHECK(it != routes_.end(), "unroutable table " << key.table);
  return it->second(key);
}

std::vector<NodeId> Catalog::AllDataSources() const { return all_nodes_; }

}  // namespace middleware
}  // namespace geotp
