#include "middleware/catalog.h"

#include <algorithm>

namespace geotp {
namespace middleware {

namespace {
void MergeNodes(std::vector<NodeId>& all, const std::vector<NodeId>& add) {
  for (NodeId node : add) {
    if (std::find(all.begin(), all.end(), node) == all.end()) {
      all.push_back(node);
    }
  }
}
}  // namespace

void Catalog::AddRangePartitionedTable(uint32_t table, uint64_t keys_per_node,
                                       std::vector<NodeId> nodes) {
  GEOTP_CHECK(!nodes.empty() && keys_per_node > 0,
              "bad partitioning for table " << table);
  MergeNodes(all_nodes_, nodes);
  routes_[table] = [keys_per_node, nodes](const RecordKey& key) {
    uint64_t idx = key.key / keys_per_node;
    if (idx >= nodes.size()) idx = nodes.size() - 1;
    return nodes[idx];
  };
}

void Catalog::AddHighBitsPartitionedTable(uint32_t table, int shift,
                                          uint64_t groups_per_node,
                                          std::vector<NodeId> nodes) {
  GEOTP_CHECK(!nodes.empty() && groups_per_node > 0 && shift >= 0 &&
                  shift < 64,
              "bad partitioning for table " << table);
  MergeNodes(all_nodes_, nodes);
  routes_[table] = [shift, groups_per_node, nodes](const RecordKey& key) {
    uint64_t idx = (key.key >> shift) / groups_per_node;
    if (idx >= nodes.size()) idx = nodes.size() - 1;
    return nodes[idx];
  };
}

void Catalog::AddCustomTable(uint32_t table, RouteFn route) {
  routes_[table] = std::move(route);
}

NodeId Catalog::Route(const RecordKey& key) const {
  if (!shard_map_.empty()) {
    const NodeId owner = shard_map_.Route(key);
    if (owner != kInvalidNode) return owner;
  }
  auto it = routes_.find(key.table);
  GEOTP_CHECK(it != routes_.end(), "unroutable table " << key.table);
  return it->second(key);
}

std::vector<NodeId> Catalog::AllDataSources() const { return all_nodes_; }

void Catalog::SetReplicaGroup(NodeId logical, std::vector<NodeId> replicas) {
  GEOTP_CHECK(std::find(replicas.begin(), replicas.end(), logical) !=
                  replicas.end(),
              "replica group must contain its logical node " << logical);
  ReplicaGroupInfo info;
  info.replicas = replicas;
  info.leader = logical;
  info.epoch = 0;
  for (NodeId replica : replicas) {
    physical_to_logical_[replica] = logical;
  }
  groups_[logical] = std::move(info);
}

NodeId Catalog::LeaderOf(NodeId logical) const {
  auto it = groups_.find(logical);
  return it == groups_.end() ? logical : it->second.leader;
}

uint64_t Catalog::EpochOf(NodeId logical) const {
  auto it = groups_.find(logical);
  return it == groups_.end() ? 0 : it->second.epoch;
}

std::vector<NodeId> Catalog::FollowersOf(NodeId logical) const {
  std::vector<NodeId> followers;
  auto it = groups_.find(logical);
  if (it == groups_.end()) return followers;
  for (NodeId replica : it->second.replicas) {
    if (replica != it->second.leader) followers.push_back(replica);
  }
  return followers;
}

NodeId Catalog::LogicalOf(NodeId physical) const {
  auto it = physical_to_logical_.find(physical);
  return it == physical_to_logical_.end() ? physical : it->second;
}

bool Catalog::UpdateLeader(NodeId logical, NodeId leader, uint64_t epoch) {
  auto it = groups_.find(logical);
  if (it == groups_.end() || leader == kInvalidNode) return false;
  ReplicaGroupInfo& info = it->second;
  if (epoch < info.epoch ||
      (epoch == info.epoch && leader == info.leader)) {
    return false;
  }
  info.epoch = epoch;
  info.leader = leader;
  return true;
}

}  // namespace middleware
}  // namespace geotp
