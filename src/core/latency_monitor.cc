#include "core/latency_monitor.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "sim/event_loop.h"

namespace geotp {
namespace core {

LatencyMonitor::LatencyMonitor(NodeId self, runtime::ITransport* transport,
                               runtime::ITimer* timer,
                               std::vector<NodeId> targets,
                               LatencyMonitorConfig config)
    : self_(self),
      network_(transport),
      timer_(timer),
      targets_(std::move(targets)),
      config_(config) {}

void LatencyMonitor::Start() {
  if (running_) return;
  running_ = true;
  SendPings();
}

void LatencyMonitor::SendPings() {
  if (!running_) return;
  // Resolve the probe set fresh each round: after a failover the provider
  // points at the new leader (and the followers), not the crashed seed.
  std::vector<PingTarget> targets;
  if (provider_) {
    targets = provider_();
  } else {
    targets.reserve(targets_.size());
    for (NodeId node : targets_) targets.push_back(PingTarget{node, node});
  }
  const uint64_t shard_epoch = epoch_provider_ ? epoch_provider_() : 0;
  for (const PingTarget& target : targets) {
    alias_of_[target.node] = target.alias;
    auto ping = std::make_unique<protocol::PingRequest>();
    ping->from = self_;
    ping->to = target.node;
    ping->seq = ++seq_;
    ping->sent_at = timer_->Now();
    ping->shard_epoch = shard_epoch;
    network_->Send(std::move(ping));
    ++pings_sent_;
  }
  timer_->Schedule(config_.ping_interval, [this]() { SendPings(); });
}

void LatencyMonitor::OnPong(const protocol::PingResponse& pong) {
  ++pongs_received_;
  const Micros sample = timer_->Now() - pong.sent_at;
  last_pong_at_[pong.from] = timer_->Now();
  RecordSample(pong.from, sample);
  RecordLoad(pong.from, pong.inflight);
  RecordOccupancy(pong.from, pong.run_queue, pong.run_queue_limit);
  auto alias = alias_of_.find(pong.from);
  if (alias != alias_of_.end() && alias->second != pong.from &&
      alias->second != kInvalidNode) {
    RecordSample(alias->second, sample);
    RecordLoad(alias->second, pong.inflight);
    RecordOccupancy(alias->second, pong.run_queue, pong.run_queue_limit);
  }
}

void LatencyMonitor::RecordOccupancy(NodeId node, uint64_t run_queue,
                                     uint64_t limit) {
  // No bound reported means the source runs unbounded: no saturation
  // signal, decay the estimate toward 0 rather than pinning it.
  const double sample =
      limit == 0 ? 0.0
                 : static_cast<double>(run_queue) / static_cast<double>(limit);
  const double alpha = config_.ewma_alpha;
  auto it = occupancy_estimates_.find(node);
  if (it == occupancy_estimates_.end()) {
    occupancy_estimates_[node] = sample;
    return;
  }
  it->second = alpha * it->second + (1.0 - alpha) * sample;
}

void LatencyMonitor::RecordLoad(NodeId node, uint64_t inflight) {
  const double alpha = config_.ewma_alpha;
  auto it = load_estimates_.find(node);
  if (it == load_estimates_.end()) {
    load_estimates_[node] = static_cast<double>(inflight);
    return;
  }
  it->second = alpha * it->second + (1.0 - alpha) * static_cast<double>(inflight);
}

void LatencyMonitor::RecordSample(NodeId node, Micros sample) {
  if (config_.bootstrap_first_sample && !seeded_[node]) {
    seeded_[node] = true;
    estimates_[node] = sample;
    return;
  }
  const double alpha = config_.ewma_alpha;
  estimates_[node] = static_cast<Micros>(
      alpha * static_cast<double>(estimates_[node]) +
      (1.0 - alpha) * static_cast<double>(sample));
}

Micros LatencyMonitor::RttEstimate(NodeId node) const {
  auto it = estimates_.find(node);
  return it == estimates_.end() ? 0 : it->second;
}

double LatencyMonitor::LoadEstimate(NodeId node) const {
  auto it = load_estimates_.find(node);
  return it == load_estimates_.end() ? 0.0 : it->second;
}

double LatencyMonitor::OccupancyEstimate(NodeId node) const {
  auto it = occupancy_estimates_.find(node);
  return it == occupancy_estimates_.end() ? 0.0 : it->second;
}

double LatencyMonitor::MaxOccupancy() const {
  double worst = 0.0;
  for (const auto& [node, occupancy] : occupancy_estimates_) {
    worst = std::max(worst, occupancy);
  }
  return worst;
}

Micros LatencyMonitor::SampleAge(NodeId node) const {
  auto it = last_pong_at_.find(node);
  if (it == last_pong_at_.end()) return std::numeric_limits<Micros>::max();
  return timer_->Now() - it->second;
}

Micros LatencyMonitor::MaxRtt(const std::vector<NodeId>& nodes) const {
  Micros max_rtt = 0;
  for (NodeId node : nodes) max_rtt = std::max(max_rtt, RttEstimate(node));
  return max_rtt;
}

}  // namespace core
}  // namespace geotp
