// GeoScheduler: latency-aware subtransaction scheduling (paper §IV-B/C,
// Algorithm 2).
//
// Given the participants of one interactive round and the records each
// will touch, the scheduler computes a postpone delay per participant so
// every subtransaction finishes its execution+prepare at the same instant:
//
//   basic (Eq. 3):     t_start(Tij) = max_s tau_s              - tau_j
//   forecast (Eq. 8):  t_start(Tij) = max_s (tau_s + LEL^_s)   - (tau_j + LEL^_j)
//
// with tau from the LatencyMonitor and LEL^ from the HotspotFootprint.
// The forecast path additionally applies late transaction scheduling
// (Eq. 9): transactions whose predicted abort probability is too high are
// delayed (blocked) and eventually aborted after a retry budget.
//
// Baseline policies are expressed in the same vocabulary:
//  * kImmediate — dispatch everything now (SSP);
//  * kChiller   — the lowest-latency ("inner region") participant is
//    dispatched only after the remote ones complete (postpone = max tau);
//  * QURO is not a postponing policy (it reorders operations inside each
//    batch) and is handled by the coordinator via ReorderQuro().
#ifndef GEOTP_CORE_GEO_SCHEDULER_H_
#define GEOTP_CORE_GEO_SCHEDULER_H_

#include <vector>

#include "common/random.h"
#include "common/types.h"
#include "core/hotspot_footprint.h"
#include "core/latency_monitor.h"
#include "protocol/messages.h"

namespace geotp {
namespace core {

enum class SchedulerPolicy : uint8_t {
  kImmediate,
  kLatencyAware,          ///< O2: Eq. 3
  kLatencyAwareForecast,  ///< O2+O3: Eq. 8 (+ Eq. 9 when admission on)
  kChiller,
};

const char* SchedulerPolicyName(SchedulerPolicy policy);

struct AdmissionConfig {
  bool enabled = false;
  /// Retry budget before the transaction is aborted (Algorithm 2 line 16).
  int retry_limit = 10;
  /// Delay before re-evaluating a blocked transaction. Long enough for a
  /// hot-record queue to drain meaningfully between evaluations; too short
  /// turns blocking into an abort storm (see bench_fig12_ablation).
  Micros retry_backoff = MsToMicros(20);
  /// Abort probability above which admission even bothers sampling
  /// (tiny probabilities always admit, saving RNG noise).
  double min_considered_probability = 0.05;
};

struct SchedulerConfig {
  SchedulerPolicy policy = SchedulerPolicy::kImmediate;
  AdmissionConfig admission;
  /// Scale factor on the forecasted LEL (paper §IV-C: "in cases of
  /// inaccurate runtime predictions, we can scale down the predicted
  /// latency before incorporating it into calculations" — the measured
  /// LEL embeds queue waits, so the raw forecast over-postpones and the
  /// delayed subtransaction becomes the new bottleneck).
  double forecast_scale = 0.3;
};

/// One participant of the round: target data source + records.
struct ParticipantPlanInput {
  NodeId data_source = kInvalidNode;
  std::vector<RecordKey> keys;
};

struct SubtxnPlan {
  NodeId data_source = kInvalidNode;
  Micros postpone = 0;
};

enum class AdmissionVerdict : uint8_t { kAdmit, kBlock, kAbort };

struct ScheduleDecision {
  AdmissionVerdict verdict = AdmissionVerdict::kAdmit;
  Micros retry_backoff = 0;  ///< meaningful when verdict == kBlock
  std::vector<SubtxnPlan> plans;
};

class GeoScheduler {
 public:
  GeoScheduler(SchedulerConfig config, const LatencyMonitor* monitor,
               const HotspotFootprint* footprint);

  /// Plans one round. `attempt` counts admission retries for this round
  /// (Algorithm 2's retry_cnt); pass 0 on first try.
  ScheduleDecision ScheduleRound(
      const std::vector<ParticipantPlanInput>& participants, int attempt,
      Rng& rng) const;

  /// QURO preprocessing: reorders a batch so reads come before writes
  /// (exclusive locks acquired as late as possible), stably.
  static void ReorderQuro(std::vector<protocol::ClientOp>& ops);

  const SchedulerConfig& config() const { return config_; }

 private:
  SchedulerConfig config_;
  const LatencyMonitor* monitor_;
  const HotspotFootprint* footprint_;
};

}  // namespace core
}  // namespace geotp

#endif  // GEOTP_CORE_GEO_SCHEDULER_H_
