#include "core/hotspot_footprint.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace geotp {
namespace core {

struct HotspotFootprint::Node {
  RecordKey key;
  RecordStats stats;
  Node* left = nullptr;
  Node* right = nullptr;
  int height = 1;
  // Intrusive LRU links.
  Node* lru_prev = nullptr;
  Node* lru_next = nullptr;
};

HotspotFootprint::HotspotFootprint(FootprintConfig config)
    : config_(config) {
  GEOTP_CHECK(config_.capacity > 0, "capacity must be positive");
}

HotspotFootprint::~HotspotFootprint() { FreeTree(root_); }

void HotspotFootprint::FreeTree(Node* node) {
  if (node == nullptr) return;
  FreeTree(node->left);
  FreeTree(node->right);
  delete node;
}

// ---------------------------------------------------------------------------
// AVL primitives
// ---------------------------------------------------------------------------

int HotspotFootprint::HeightOf(Node* node) {
  return node == nullptr ? 0 : node->height;
}

void HotspotFootprint::UpdateHeight(Node* node) {
  node->height = 1 + std::max(HeightOf(node->left), HeightOf(node->right));
}

HotspotFootprint::Node* HotspotFootprint::RotateLeft(Node* node) {
  Node* pivot = node->right;
  node->right = pivot->left;
  pivot->left = node;
  UpdateHeight(node);
  UpdateHeight(pivot);
  return pivot;
}

HotspotFootprint::Node* HotspotFootprint::RotateRight(Node* node) {
  Node* pivot = node->left;
  node->left = pivot->right;
  pivot->right = node;
  UpdateHeight(node);
  UpdateHeight(pivot);
  return pivot;
}

HotspotFootprint::Node* HotspotFootprint::Rebalance(Node* node) {
  UpdateHeight(node);
  const int balance = HeightOf(node->left) - HeightOf(node->right);
  if (balance > 1) {
    if (HeightOf(node->left->left) < HeightOf(node->left->right)) {
      node->left = RotateLeft(node->left);
    }
    return RotateRight(node);
  }
  if (balance < -1) {
    if (HeightOf(node->right->right) < HeightOf(node->right->left)) {
      node->right = RotateRight(node->right);
    }
    return RotateLeft(node);
  }
  return node;
}

HotspotFootprint::Node* HotspotFootprint::Insert(Node* node,
                                                 const RecordKey& key,
                                                 Node** out) {
  if (node == nullptr) {
    Node* fresh = new Node();
    fresh->key = key;
    fresh->stats.w_lat = config_.initial_w_lat;
    *out = fresh;
    return fresh;
  }
  if (key < node->key) {
    node->left = Insert(node->left, key, out);
  } else if (node->key < key) {
    node->right = Insert(node->right, key, out);
  } else {
    *out = node;
    return node;
  }
  return Rebalance(node);
}

HotspotFootprint::Node* HotspotFootprint::MinNode(Node* node) {
  while (node->left != nullptr) node = node->left;
  return node;
}

HotspotFootprint::Node* HotspotFootprint::Remove(Node* node,
                                                 const RecordKey& key) {
  if (node == nullptr) return nullptr;
  if (key < node->key) {
    node->left = Remove(node->left, key);
  } else if (node->key < key) {
    node->right = Remove(node->right, key);
  } else {
    if (node->left == nullptr || node->right == nullptr) {
      Node* child = node->left != nullptr ? node->left : node->right;
      delete node;
      node = child;
    } else {
      // Two children: splice the in-order successor's payload in, then
      // remove the successor node. LRU links must follow the payload.
      Node* successor = MinNode(node->right);
      node->key = successor->key;
      node->stats = successor->stats;
      // Re-point the LRU list entry of `successor` at `node`.
      LruUnlink(node);
      if (successor->lru_prev != nullptr) {
        successor->lru_prev->lru_next = node;
      } else if (lru_head_ == successor) {
        lru_head_ = node;
      }
      if (successor->lru_next != nullptr) {
        successor->lru_next->lru_prev = node;
      } else if (lru_tail_ == successor) {
        lru_tail_ = node;
      }
      node->lru_prev = successor->lru_prev;
      node->lru_next = successor->lru_next;
      // Detach successor from LRU so the recursive Remove's unlink of it
      // (via delete path) cannot corrupt the list.
      successor->lru_prev = successor->lru_next = nullptr;
      // Mark: the successor node itself is deleted below; its LRU entry
      // was transplanted.
      node->right = Remove(node->right, node->key);
    }
  }
  if (node == nullptr) return nullptr;
  return Rebalance(node);
}

// ---------------------------------------------------------------------------
// LRU primitives
// ---------------------------------------------------------------------------

void HotspotFootprint::LruPushFront(Node* node) {
  node->lru_prev = nullptr;
  node->lru_next = lru_head_;
  if (lru_head_ != nullptr) lru_head_->lru_prev = node;
  lru_head_ = node;
  if (lru_tail_ == nullptr) lru_tail_ = node;
}

void HotspotFootprint::LruUnlink(Node* node) {
  if (node->lru_prev != nullptr) {
    node->lru_prev->lru_next = node->lru_next;
  } else if (lru_head_ == node) {
    lru_head_ = node->lru_next;
  }
  if (node->lru_next != nullptr) {
    node->lru_next->lru_prev = node->lru_prev;
  } else if (lru_tail_ == node) {
    lru_tail_ = node->lru_prev;
  }
  node->lru_prev = node->lru_next = nullptr;
}

void HotspotFootprint::EvictIfNeeded() {
  while (size_ > config_.capacity && lru_tail_ != nullptr) {
    // Do not evict records with transactions in flight (their a_cnt would
    // be lost and Eq. 9 would undercount the queue), nor the LRU head —
    // it is the record being touched right now.
    Node* victim = lru_tail_;
    while (victim != nullptr &&
           (victim->stats.a_cnt > 0 || victim == lru_head_)) {
      victim = victim->lru_prev;
    }
    if (victim == nullptr) return;  // everything busy; allow soft overflow
    const RecordKey key = victim->key;
    LruUnlink(victim);
    root_ = Remove(root_, key);
    --size_;
    ++evictions_;
  }
}

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

HotspotFootprint::Node* HotspotFootprint::FindNode(
    const RecordKey& key) const {
  Node* node = root_;
  while (node != nullptr) {
    if (key < node->key) {
      node = node->left;
    } else if (node->key < key) {
      node = node->right;
    } else {
      return node;
    }
  }
  return nullptr;
}

HotspotFootprint::Node* HotspotFootprint::Touch(const RecordKey& key) {
  Node* node = nullptr;
  root_ = Insert(root_, key, &node);
  if (node->lru_prev == nullptr && node->lru_next == nullptr &&
      lru_head_ != node) {
    // Fresh node (not yet in the LRU list).
    ++size_;
    LruPushFront(node);
    if (size_ > config_.capacity) {
      EvictIfNeeded();
      // The eviction's AVL removal splices payloads across nodes (the
      // two-children delete transplants the in-order successor), so the
      // pointer captured above may now name a DIFFERENT record — or freed
      // memory. Re-resolve by key; the LRU head itself is never evicted.
      node = FindNode(key);
      GEOTP_CHECK(node != nullptr, "touched record evicted under us");
    }
  } else {
    LruUnlink(node);
    LruPushFront(node);
  }
  return node;
}

void HotspotFootprint::OnDispatch(const std::vector<RecordKey>& keys) {
  for (const RecordKey& key : keys) {
    Node* node = Touch(key);
    node->stats.a_cnt++;
  }
}

void HotspotFootprint::OnComplete(const std::vector<RecordKey>& keys,
                                  Micros measured_lel, bool committed) {
  if (keys.empty()) return;
  // Eq. 4 weights: w_r = w_lat_r / sum of w_lat over the accessed records.
  double w_sum = 0.0;
  for (const RecordKey& key : keys) {
    Node* node = FindNode(key);
    w_sum += node != nullptr ? node->stats.w_lat : config_.initial_w_lat;
  }
  if (w_sum <= 0.0) w_sum = 1.0;

  for (const RecordKey& key : keys) {
    Node* node = Touch(key);
    RecordStats& stats = node->stats;
    if (committed) {
      const double weight = stats.w_lat > 0.0 ? stats.w_lat / w_sum
                                              : 1.0 / keys.size();
      const double contribution =
          static_cast<double>(measured_lel) * weight;
      stats.w_lat = config_.alpha * stats.w_lat +
                    (1.0 - config_.alpha) * contribution;
    }
    stats.t_cnt++;
    if (committed) stats.c_cnt++;
    if (stats.a_cnt > 0) stats.a_cnt--;
  }
}

void HotspotFootprint::OnRelease(const std::vector<RecordKey>& keys) {
  for (const RecordKey& key : keys) {
    Node* node = FindNode(key);
    if (node != nullptr && node->stats.a_cnt > 0) node->stats.a_cnt--;
  }
}

Micros HotspotFootprint::ForecastLel(
    const std::vector<RecordKey>& keys) const {
  double total = 0.0;
  for (const RecordKey& key : keys) {
    const Node* node = FindNode(key);
    if (node != nullptr) total += node->stats.w_lat;
  }
  return static_cast<Micros>(total);
}

double HotspotFootprint::AbortProbability(
    const std::vector<RecordKey>& keys) const {
  double success = 1.0;
  for (const RecordKey& key : keys) {
    const Node* node = FindNode(key);
    if (node == nullptr) continue;
    const RecordStats& stats = node->stats;
    const auto queue_len =
        static_cast<double>(std::max<int64_t>(stats.a_cnt - 1, 0));
    if (queue_len <= 0.0) continue;
    success *= std::pow(stats.SuccessRatio(), queue_len);
  }
  return 1.0 - success;
}

const RecordStats* HotspotFootprint::Lookup(const RecordKey& key) const {
  const Node* node = FindNode(key);
  return node == nullptr ? nullptr : &node->stats;
}

std::vector<std::pair<RecordKey, RecordStats>> HotspotFootprint::Range(
    const RecordKey& lo, const RecordKey& hi) const {
  std::vector<std::pair<RecordKey, RecordStats>> out;
  // Iterative in-order traversal pruned to [lo, hi].
  std::vector<Node*> stack;
  Node* node = root_;
  while (node != nullptr || !stack.empty()) {
    while (node != nullptr) {
      if (node->key < lo) {
        node = node->right;  // entire left subtree below range
      } else {
        stack.push_back(node);
        node = node->left;
      }
    }
    if (stack.empty()) break;
    node = stack.back();
    stack.pop_back();
    if (hi < node->key) break;
    out.emplace_back(node->key, node->stats);
    node = node->right;
  }
  return out;
}

HotspotFootprint::HeatHistogram HotspotFootprint::Histogram(
    const RecordKey& lo, const RecordKey& hi, size_t buckets) const {
  HeatHistogram hist;
  if (buckets == 0) return hist;
  const auto records = Range(lo, hi);
  if (records.empty()) return hist;
  hist.extent_lo = records.front().first.key;
  hist.extent_hi = records.back().first.key;
  hist.bucket_width = (hist.extent_hi - hist.extent_lo) / buckets + 1;
  hist.buckets.assign(buckets, 0);
  for (const auto& [key, stats] : records) {
    const size_t b = std::min<uint64_t>(
        (key.key - hist.extent_lo) / hist.bucket_width, buckets - 1);
    hist.buckets[b] += stats.t_cnt;
    hist.total += stats.t_cnt;
  }
  return hist;
}

size_t HotspotFootprint::ApproxBytes() const {
  return size_ * (sizeof(Node) + 16);
}

bool HotspotFootprint::CheckInvariants() const {
  // Recursive lambda validating order and balance, returning height or -1.
  struct Checker {
    static int Check(Node* node, const RecordKey* lo, const RecordKey* hi) {
      if (node == nullptr) return 0;
      if (lo != nullptr && !(*lo < node->key)) return -1;
      if (hi != nullptr && !(node->key < *hi)) return -1;
      const int lh = Check(node->left, lo, &node->key);
      if (lh < 0) return -1;
      const int rh = Check(node->right, &node->key, hi);
      if (rh < 0) return -1;
      if (std::abs(lh - rh) > 1) return -1;
      if (node->height != 1 + std::max(lh, rh)) return -1;
      return 1 + std::max(lh, rh);
    }
  };
  if (Checker::Check(root_, nullptr, nullptr) < 0) return false;
  // LRU list size must match the tree size.
  size_t lru_count = 0;
  for (Node* node = lru_head_; node != nullptr; node = node->lru_next) {
    ++lru_count;
    if (lru_count > size_ + 1) return false;
  }
  return lru_count == size_;
}

}  // namespace core
}  // namespace geotp
