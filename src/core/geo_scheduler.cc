#include "core/geo_scheduler.h"

#include <algorithm>

#include "common/logging.h"

namespace geotp {
namespace core {

const char* SchedulerPolicyName(SchedulerPolicy policy) {
  switch (policy) {
    case SchedulerPolicy::kImmediate:
      return "immediate";
    case SchedulerPolicy::kLatencyAware:
      return "latency-aware";
    case SchedulerPolicy::kLatencyAwareForecast:
      return "latency-aware+forecast";
    case SchedulerPolicy::kChiller:
      return "chiller";
  }
  return "?";
}

GeoScheduler::GeoScheduler(SchedulerConfig config,
                           const LatencyMonitor* monitor,
                           const HotspotFootprint* footprint)
    : config_(config), monitor_(monitor), footprint_(footprint) {}

ScheduleDecision GeoScheduler::ScheduleRound(
    const std::vector<ParticipantPlanInput>& participants, int attempt,
    Rng& rng) const {
  ScheduleDecision decision;
  decision.plans.reserve(participants.size());

  // Late transaction scheduling (Eq. 9): predict the abort probability
  // over every record the round touches; block high-risk transactions.
  // attempt < 0 disables admission for this call (re-scheduling of later
  // rounds / prepare dispatch — only whole transactions are admitted).
  if (attempt >= 0 &&
      config_.policy == SchedulerPolicy::kLatencyAwareForecast &&
      config_.admission.enabled && footprint_ != nullptr &&
      !participants.empty()) {
    std::vector<RecordKey> all_keys;
    for (const auto& p : participants) {
      all_keys.insert(all_keys.end(), p.keys.begin(), p.keys.end());
    }
    const double abort_prob = footprint_->AbortProbability(all_keys);
    if (abort_prob > config_.admission.min_considered_probability &&
        rng.NextDouble() < abort_prob) {
      if (attempt + 1 >= config_.admission.retry_limit) {
        decision.verdict = AdmissionVerdict::kAbort;  // Algorithm 2 line 18
      } else {
        decision.verdict = AdmissionVerdict::kBlock;
        decision.retry_backoff = config_.admission.retry_backoff;
      }
      return decision;
    }
  }

  // Effective latency per participant: tau (+ scaled LEL forecast).
  std::vector<Micros> effective(participants.size(), 0);
  for (size_t i = 0; i < participants.size(); ++i) {
    const auto& p = participants[i];
    Micros tau =
        monitor_ != nullptr ? monitor_->RttEstimate(p.data_source) : 0;
    Micros lel = 0;
    if (config_.policy == SchedulerPolicy::kLatencyAwareForecast &&
        footprint_ != nullptr) {
      lel = static_cast<Micros>(
          config_.forecast_scale *
          static_cast<double>(footprint_->ForecastLel(p.keys)));
    }
    effective[i] = tau + lel;
  }
  const Micros lat_max =
      participants.empty()
          ? 0
          : *std::max_element(effective.begin(), effective.end());

  for (size_t i = 0; i < participants.size(); ++i) {
    SubtxnPlan plan;
    plan.data_source = participants[i].data_source;
    switch (config_.policy) {
      case SchedulerPolicy::kImmediate:
        plan.postpone = 0;
        break;
      case SchedulerPolicy::kLatencyAware:
      case SchedulerPolicy::kLatencyAwareForecast:
        // Eq. 3 / Eq. 8.
        plan.postpone = lat_max - effective[i];
        break;
      case SchedulerPolicy::kChiller: {
        // Inner-region (lowest-latency) participant executes after the
        // remote ones complete; everyone else dispatches now. Single-
        // participant rounds never postpone.
        const Micros my_tau =
            monitor_ != nullptr
                ? monitor_->RttEstimate(participants[i].data_source)
                : 0;
        Micros min_tau = my_tau;
        Micros max_tau = my_tau;
        for (const auto& p : participants) {
          const Micros tau =
              monitor_ != nullptr ? monitor_->RttEstimate(p.data_source) : 0;
          min_tau = std::min(min_tau, tau);
          max_tau = std::max(max_tau, tau);
        }
        const bool is_inner = my_tau == min_tau && min_tau < max_tau;
        plan.postpone = is_inner && participants.size() > 1 ? max_tau : 0;
        break;
      }
    }
    if (plan.postpone < 0) plan.postpone = 0;
    decision.plans.push_back(plan);
  }
  return decision;
}

void GeoScheduler::ReorderQuro(std::vector<protocol::ClientOp>& ops) {
  // Stable partition: reads first, writes last — exclusive locks are
  // acquired as late as possible (QURO's reordering, §VIII).
  std::stable_partition(ops.begin(), ops.end(),
                        [](const protocol::ClientOp& op) {
                          return !op.is_write;
                        });
}

}  // namespace core
}  // namespace geotp
