// HotspotFootprint: per-record runtime statistics for the high-contention
// optimizations (paper §IV-C, "Hotspot statistics collecting").
//
// For each hot record r it maintains the paper's four fields:
//   w_lat_r  — weighted average latency of subtransactions touching r
//   t_cnt_r  — total transactions that accessed r
//   c_cnt_r  — committed transactions that accessed r
//   a_cnt_r  — transactions currently accessing r
//
// The records are organized in an AVL tree (point and range access in
// O(log n)) with an intrusive LRU list evicting cold entries, exactly as
// the paper describes. w_lat updates follow Eq. 4: the measured local
// execution latency LEL(Tij) of a subtransaction is split across the
// records it touched proportionally to their current w_lat, then folded
// in with coefficient alpha.
#ifndef GEOTP_CORE_HOTSPOT_FOOTPRINT_H_
#define GEOTP_CORE_HOTSPOT_FOOTPRINT_H_

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace geotp {
namespace core {

struct FootprintConfig {
  /// Maximum tracked records; beyond it the LRU tail is evicted.
  size_t capacity = 100000;
  /// Weighted-update coefficient alpha in Eq. 4 (history weight).
  double alpha = 0.7;
  /// Initial w_lat for a record first seen (us). A small value so cold
  /// records contribute little to forecasts until measured.
  double initial_w_lat = 100.0;
};

struct RecordStats {
  double w_lat = 0.0;   ///< us
  uint64_t t_cnt = 0;
  uint64_t c_cnt = 0;
  int64_t a_cnt = 0;

  /// Probability that one queued transaction acquires the lock on this
  /// record without being aborted: c_cnt / t_cnt (1.0 with no history).
  double SuccessRatio() const {
    return t_cnt == 0 ? 1.0
                      : static_cast<double>(c_cnt) /
                            static_cast<double>(t_cnt);
  }
};

class HotspotFootprint {
 public:
  explicit HotspotFootprint(FootprintConfig config = FootprintConfig());
  ~HotspotFootprint();

  HotspotFootprint(const HotspotFootprint&) = delete;
  HotspotFootprint& operator=(const HotspotFootprint&) = delete;

  /// Marks the records as being accessed (a_cnt++). Called when the DM
  /// dispatches a subtransaction.
  void OnDispatch(const std::vector<RecordKey>& keys);

  /// Feedback after a subtransaction finishes: updates w_lat (Eq. 4,
  /// committed only — aborted latencies embed timeout noise), t_cnt,
  /// c_cnt, and releases a_cnt.
  void OnComplete(const std::vector<RecordKey>& keys, Micros measured_lel,
                  bool committed);

  /// Releases a_cnt only (no completion statistics): used when a dispatch
  /// was cancelled or the transaction settled before its response arrived,
  /// i.e. no lock acquisition outcome was observed.
  void OnRelease(const std::vector<RecordKey>& keys);

  /// Eq. 5: forecasted local execution latency for a subtransaction that
  /// will access `keys` — the sum of tracked w_lat values.
  Micros ForecastLel(const std::vector<RecordKey>& keys) const;

  /// Eq. 9: predicted abort probability for a transaction accessing
  /// `keys`: 1 - prod (c/t)^max(a-1, 0).
  double AbortProbability(const std::vector<RecordKey>& keys) const;

  /// Point lookup (nullptr if not tracked). Does not touch LRU order.
  const RecordStats* Lookup(const RecordKey& key) const;

  /// Ordered range scan [lo, hi] — the paper stores hot records in an AVL
  /// tree precisely to support predicate (range) estimation in O(log n).
  std::vector<std::pair<RecordKey, RecordStats>> Range(
      const RecordKey& lo, const RecordKey& hi) const;

  /// Access-heat histogram over [lo, hi]: t_cnt totals in `buckets`
  /// equal-width buckets spanning the OBSERVED key extent (not the
  /// nominal range — a table's last shard chunk is open-ended). The
  /// ShardBalancer reads this to detect skew-within-chunk and split the
  /// hot sub-range out.
  struct HeatHistogram {
    uint64_t extent_lo = 0;  ///< smallest tracked key in range
    uint64_t extent_hi = 0;  ///< largest tracked key in range
    uint64_t bucket_width = 1;
    uint64_t total = 0;      ///< sum of all buckets
    std::vector<uint64_t> buckets;
    bool empty() const { return buckets.empty(); }
  };
  HeatHistogram Histogram(const RecordKey& lo, const RecordKey& hi,
                          size_t buckets) const;

  size_t size() const { return size_; }
  uint64_t evictions() const { return evictions_; }

  /// Approximate resident bytes (memory proxy for Fig. 6b).
  size_t ApproxBytes() const;

  /// Validates AVL balance and BST order; test hook.
  bool CheckInvariants() const;

 private:
  struct Node;

  Node* FindNode(const RecordKey& key) const;
  /// Finds or inserts (possibly evicting); returns the node.
  Node* Touch(const RecordKey& key);

  // AVL primitives.
  static int HeightOf(Node* node);
  static void UpdateHeight(Node* node);
  static Node* RotateLeft(Node* node);
  static Node* RotateRight(Node* node);
  static Node* Rebalance(Node* node);
  Node* Insert(Node* node, const RecordKey& key, Node** out);
  Node* Remove(Node* node, const RecordKey& key);
  static Node* MinNode(Node* node);
  void FreeTree(Node* node);

  // LRU primitives (intrusive list; head = most recent).
  void LruPushFront(Node* node);
  void LruUnlink(Node* node);
  void EvictIfNeeded();

  FootprintConfig config_;
  Node* root_ = nullptr;
  Node* lru_head_ = nullptr;
  Node* lru_tail_ = nullptr;
  size_t size_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace core
}  // namespace geotp

#endif  // GEOTP_CORE_HOTSPOT_FOOTPRINT_H_
