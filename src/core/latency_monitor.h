// LatencyMonitor: the DM-side network latency statistic service.
//
// The paper's implementation runs a dedicated thread pinging each data
// source every 10 ms (§VI) and smooths samples with an exponential
// weighted moving average (§VII-D "online adaptivity"). Here the monitor
// schedules PingRequest messages on the event loop and updates per-node
// RTT estimates from the PingResponse round-trip times.
#ifndef GEOTP_CORE_LATENCY_MONITOR_H_
#define GEOTP_CORE_LATENCY_MONITOR_H_

#include <functional>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "protocol/messages.h"
#include "runtime/runtime.h"
#include "sim/network.h"

namespace geotp {
namespace core {

struct LatencyMonitorConfig {
  Micros ping_interval = MsToMicros(10);
  /// EWMA history weight: est = alpha * est + (1 - alpha) * sample.
  double ewma_alpha = 0.8;
  /// Seed the estimates from the first sample instead of decaying from 0.
  bool bootstrap_first_sample = true;
};

/// One probe destination. `node` is the physical replica to ping; `alias`
/// is the id the sample is additionally recorded under — the replica
/// group's logical id for the current leader (so scheduler lookups by
/// logical source keep working across failovers), or `node` itself.
struct PingTarget {
  NodeId node = kInvalidNode;
  NodeId alias = kInvalidNode;
};

class LatencyMonitor {
 public:
  using TargetProvider = std::function<std::vector<PingTarget>()>;
  using EpochProvider = std::function<uint64_t()>;

  LatencyMonitor(NodeId self, runtime::ITransport* transport,
                 runtime::ITimer* timer, std::vector<NodeId> targets,
                 LatencyMonitorConfig config = LatencyMonitorConfig());

  /// Simulated-deployment convenience: the timer is the network's loop.
  LatencyMonitor(NodeId self, sim::Network* network,
                 std::vector<NodeId> targets,
                 LatencyMonitorConfig config = LatencyMonitorConfig())
      : LatencyMonitor(self, network, network->loop(), std::move(targets),
                       config) {}

  /// Re-evaluated before every ping round, so probes follow failovers
  /// (the ROADMAP stale-leader bug: without this the monitor kept pinging
  /// the crashed seed leader forever). Without a provider the constructor
  /// targets are pinged as-is.
  void SetTargetProvider(TargetProvider provider) {
    provider_ = std::move(provider);
  }

  /// Shard-map anti-entropy: stamps every ping with the owner's current
  /// shard-map epoch so data sources can detect (and repair) a behind DM.
  void SetShardEpochProvider(EpochProvider provider) {
    epoch_provider_ = std::move(provider);
  }

  /// Begins the periodic ping schedule.
  void Start();
  void Stop() { running_ = false; }

  /// Feeds a pong back into the estimator (the owning middleware routes
  /// PingResponse messages here).
  void OnPong(const protocol::PingResponse& pong);

  /// Current RTT estimate to `node`. Falls back to 0 before any sample.
  Micros RttEstimate(NodeId node) const;

  /// EWMA of the capacity signal (branches in flight) the node piggybacks
  /// on its pongs. 0 before any sample. Recorded under the same alias as
  /// RTT samples, so balancer lookups by logical source id work.
  double LoadEstimate(NodeId node) const;

  /// EWMA of the saturation signal (run_queue / run_queue_limit) the node
  /// piggybacks on its pongs; 0 while the node reports no bound. Feeds the
  /// DM admission controller's source-pressure shed decision.
  double OccupancyEstimate(NodeId node) const;

  /// Worst occupancy estimate across every node that reported one — the
  /// admission controller sheds new work when any source is saturated
  /// (a distributed transaction is only as fast as its slowest branch).
  double MaxOccupancy() const;

  /// Virtual time since `node` last answered a ping (max if it never
  /// did). A crashed node's estimate freezes; callers doing
  /// lowest-RTT routing must treat stale estimates as unknown or they
  /// will pin themselves to a dead node.
  Micros SampleAge(NodeId node) const;

  /// Highest estimated RTT across the given nodes (max tau in Eq. 3).
  Micros MaxRtt(const std::vector<NodeId>& nodes) const;

  uint64_t pings_sent() const { return pings_sent_; }
  uint64_t pongs_received() const { return pongs_received_; }

 private:
  void SendPings();
  void RecordSample(NodeId node, Micros sample);
  void RecordLoad(NodeId node, uint64_t inflight);
  void RecordOccupancy(NodeId node, uint64_t run_queue, uint64_t limit);

  NodeId self_;
  runtime::ITransport* network_;
  runtime::ITimer* timer_;
  std::vector<NodeId> targets_;
  TargetProvider provider_;
  EpochProvider epoch_provider_;
  LatencyMonitorConfig config_;
  std::unordered_map<NodeId, Micros> estimates_;
  std::unordered_map<NodeId, double> load_estimates_;
  std::unordered_map<NodeId, double> occupancy_estimates_;
  std::unordered_map<NodeId, bool> seeded_;
  std::unordered_map<NodeId, Micros> last_pong_at_;
  /// Alias recorded for each pinged physical node in the latest round.
  std::unordered_map<NodeId, NodeId> alias_of_;
  bool running_ = false;
  uint64_t seq_ = 0;
  uint64_t pings_sent_ = 0;
  uint64_t pongs_received_ = 0;
};

}  // namespace core
}  // namespace geotp

#endif  // GEOTP_CORE_LATENCY_MONITOR_H_
