// Leader election state machine for one replica group member.
//
// A simplified Raft election: epochs are monotonically increasing terms, a
// member grants at most one vote per epoch, refuses candidates whose log is
// behind its own, and refuses any candidate while its current leader is
// still heartbeating (leader stickiness, so a restarted replica cannot
// depose a healthy leader). The class is pure state — the Replicator owns
// timers and messaging.
#ifndef GEOTP_REPLICATION_ELECTION_H_
#define GEOTP_REPLICATION_ELECTION_H_

#include <cstdint>
#include <unordered_set>

#include "common/types.h"

namespace geotp {
namespace replication {

enum class Role : uint8_t { kFollower, kCandidate, kLeader };

const char* RoleName(Role role);

struct ElectionStats {
  uint64_t elections_started = 0;
  uint64_t votes_granted = 0;
  uint64_t votes_refused = 0;
  uint64_t terms_won = 0;
  uint64_t step_downs = 0;
};

class ElectionState {
 public:
  explicit ElectionState(NodeId self, size_t quorum_size)
      : self_(self), quorum_size_(quorum_size) {}

  Role role() const { return role_; }
  uint64_t epoch() const { return epoch_; }
  NodeId leader() const { return leader_; }
  const ElectionStats& stats() const { return stats_; }

  /// Deployment-time bootstrap: this member is the epoch-0 leader.
  void SeedLeader() {
    role_ = Role::kLeader;
    leader_ = self_;
  }

  /// Drops to follower without learning a new leader (crash/restart).
  void StepDown() {
    role_ = Role::kFollower;
    leader_ = kInvalidNode;
    votes_.clear();
  }

  /// Starts a candidacy: bumps the epoch, votes for self. Returns the new
  /// epoch. Immediately wins single-member groups.
  uint64_t StartElection(uint64_t own_last_log_index);

  /// True if this member already holds a quorum of votes (single-member
  /// groups win the moment they stand).
  bool HasQuorum() const { return votes_.size() >= quorum_size_; }

  /// Evaluates an incoming vote request. The candidate's log position is
  /// (last entry epoch, length), compared lexicographically against ours
  /// (Raft §5.4.1) so a deposed leader's stale tail cannot outrank
  /// quorum-committed entries. `leader_fresh` is true while this member
  /// heard its leader within the election timeout.
  bool GrantVote(NodeId candidate, uint64_t candidate_epoch,
                 uint64_t candidate_last_epoch, uint64_t candidate_last_index,
                 uint64_t own_last_epoch, uint64_t own_last_index,
                 bool leader_fresh);

  /// Processes a vote response. Returns true if the vote completes a
  /// quorum and this member just became leader.
  bool OnVoteGranted(NodeId voter, uint64_t response_epoch);

  /// Adopts a leader observed via an append/heartbeat of `epoch` (>= own).
  /// Returns true if this implied a step-down from candidate/leader.
  bool AdoptLeader(NodeId leader, uint64_t epoch);

  /// Steps down upon observing a newer epoch without a known leader (e.g.
  /// an ack or vote refusal from the future).
  void ObserveEpoch(uint64_t epoch);

 private:
  NodeId self_;
  size_t quorum_size_;
  Role role_ = Role::kFollower;
  uint64_t epoch_ = 0;
  NodeId leader_ = kInvalidNode;
  /// Highest epoch in which this member granted (or cast) a vote.
  uint64_t voted_epoch_ = 0;
  NodeId voted_for_ = kInvalidNode;
  std::unordered_set<NodeId> votes_;  ///< supporters in the current candidacy
  ElectionStats stats_;
};

}  // namespace replication
}  // namespace geotp

#endif  // GEOTP_REPLICATION_ELECTION_H_
