// Replicator: per-replica actor of one replica group.
//
// Each DataSourceNode owning a Replicator is a member of a replica group.
// The leader ships WAL entries (prepare / commit / abort, with write sets)
// to the followers and reports prepare/commit durability to the middleware
// only after a quorum of the group holds the entry. Followers apply
// committed write sets to their local store (giving stale-bounded follower
// reads), detect leader failure via heartbeat loss, and elect a new leader
// deterministically (longest log wins, election timeouts staggered by
// replica ordinal). A promoted leader installs quorum-staged prepared
// branches into its engine as in-doubt XA branches, re-votes them to their
// coordinating middleware, and announces the new epoch to the middlewares,
// which re-route and retry in-flight branches.
#ifndef GEOTP_REPLICATION_REPLICATOR_H_
#define GEOTP_REPLICATION_REPLICATOR_H_

#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "obs/trace.h"
#include "protocol/messages.h"
#include "replication/election.h"
#include "replication/log_shipper.h"
#include "runtime/runtime.h"
#include "replication/replication_config.h"
#include "sim/event_loop.h"

namespace geotp {
namespace datasource {
class DataSourceNode;
}  // namespace datasource

namespace replication {

struct ReplicatorStats {
  uint64_t appends_received = 0;
  uint64_t entries_applied = 0;
  uint64_t promotions = 0;
  uint64_t prepared_installs = 0;
  uint64_t revotes_sent = 0;
  uint64_t follower_reads_served = 0;
  uint64_t follower_reads_rejected = 0;
  uint64_t not_leader_rejections = 0;
  uint64_t log_entries_truncated = 0;  ///< compacted-away prefix entries
  uint64_t snapshot_installs = 0;  ///< bootstrap snapshots applied
  uint64_t migration_records_appended = 0;  ///< Begin/Cutover/End journaled
  uint64_t migration_handoffs = 0;  ///< unresolved migrations at promotion
  // Incremental follower re-seed (hash offer/decline instead of one
  // monolithic store snapshot) + its WAN accounting.
  uint64_t bootstrap_offers_sent = 0;
  uint64_t bootstrap_chunks_declined = 0;  ///< chunks the follower held
  uint64_t bootstrap_chunks_sent = 0;
  uint64_t wan_bytes_raw = 0;   ///< packed bootstrap-chunk bytes pre-codec
  uint64_t wan_bytes_wire = 0;  ///< bytes actually shipped
};

class Replicator {
 public:
  using QuorumCallback = std::function<void()>;

  Replicator(datasource::DataSourceNode* node, GroupConfig group);

  /// Arms timers for the initial role: the member whose id equals the
  /// group's logical id starts as epoch-0 leader, the rest as followers.
  void Start();

  NodeId group_id() const { return group_.logical; }
  Role role() const { return election_.role(); }
  bool IsLeader() const { return election_.role() == Role::kLeader; }
  uint64_t epoch() const { return election_.epoch(); }
  NodeId leader_hint() const { return election_.leader(); }

  /// Promotion barrier. A freshly promoted leader may have inherited
  /// commit/abort entries past its watermark (appended by the deposed
  /// leader, quorum unknown); they apply only once re-acked under the new
  /// term. Until then the store is behind the log, and serving a new
  /// branch would let it read — and its raw entry-apply later clobber —
  /// pre-failover values under a live lock (a lost-update the shard chaos
  /// harness caught). The data source parks client-facing work while this
  /// is false; it clears within one follower round trip.
  bool ReadyToServe() const {
    return !IsLeader() || promotion_applies_pending_ == 0;
  }

  const ReplicationLog& log() const { return log_; }
  uint64_t applied_index() const { return applied_index_; }
  uint64_t commit_watermark() const {
    return IsLeader() ? shipper_.commit_watermark() : follower_watermark_;
  }
  /// Follower data staleness: virtual time since this replica last knew it
  /// had applied everything the leader had committed. 0 on the leader.
  Micros Staleness() const;

  const ReplicatorStats& stats() const { return stats_; }
  const ElectionStats& election_stats() const { return election_.stats(); }
  const LogShipperStats& shipper_stats() const { return shipper_.stats(); }

  // ----- leader-side durability hooks (called by the data source) ---------

  /// Appends a prepare entry carrying the branch write set; `on_quorum`
  /// fires once it is durable on a quorum (the vote may then be reported).
  /// Deduplicates: a second call for the same transaction just waits.
  void ReplicatePrepare(const Xid& xid,
                        std::vector<protocol::ReplWrite> writes,
                        NodeId coordinator, QuorumCallback on_quorum);

  /// Appends a commit entry carrying the final write set; `on_quorum`
  /// fires once durable, after any internally registered apply callbacks.
  void ReplicateCommit(const Xid& xid,
                       std::vector<protocol::ReplWrite> writes,
                       QuorumCallback on_quorum);

  /// Destination-side migration ingest: a commit entry tagged with the
  /// stream position it covers (chunk or delta seq) and the chunk's
  /// content hash, so the chunk ack the migrator sends on quorum is
  /// journaled in the group log — and a promoted destination leader can
  /// later decline exactly those chunks when the source re-offers them.
  void ReplicateIngest(const Xid& xid,
                       std::vector<protocol::ReplWrite> writes,
                       uint64_t migration_id, uint64_t chunk_seq,
                       uint64_t delta_seq, uint64_t content_hash,
                       QuorumCallback on_quorum);

  /// Source-side migration control records (Begin / Cutover / End).
  /// Epoch-fenced like prepares: unresolved records (Begin without End)
  /// pin log compaction and are handed to the ShardMigrator on promotion,
  /// so a failover mid-migration resumes or aborts deterministically from
  /// the log. `on_quorum` fires once the record is quorum-durable.
  void ReplicateMigrationRecord(protocol::ReplEntryType type,
                                const protocol::MigrationRecord& record,
                                QuorumCallback on_quorum);

  /// One inherited, unresolved migration at promotion time.
  struct InheritedMigration {
    protocol::MigrationRecord record;
    bool cutover_logged = false;
  };

  /// True while a MigrationBegin for `migration_id` has no MigrationEnd.
  /// The migrator consults this when resolving a migration, so an End is
  /// journaled even when the cancel raced the Begin's quorum round trip
  /// (an unresolved record pins log compaction forever otherwise).
  bool HasUnresolvedMigration(uint64_t migration_id) const {
    return unresolved_migrations_.count(migration_id) > 0;
  }

  /// Appends an abort entry iff an unresolved prepare entry exists for the
  /// transaction (followers must unstage it). Fire-and-forget.
  void ReplicateAbortIfPrepared(TxnId txn);

  /// Index of the commit entry for `txn`, if one was ever appended — used
  /// to answer duplicate commit decisions idempotently after failover.
  std::optional<uint64_t> CommitEntryIndex(TxnId txn) const;
  void AwaitQuorum(uint64_t index, QuorumCallback on_quorum) {
    shipper_.AwaitQuorum(index, std::move(on_quorum));
  }

  // ----- lifecycle --------------------------------------------------------

  /// Consumes replication traffic. Returns false for unrelated messages.
  bool HandleMessage(sim::MessageBase* msg);

  /// Crash: timers stop, volatile shipping state drops; the log (a WAL)
  /// and applied store survive, mirroring the engine's crash semantics.
  void OnCrash();

  /// Restart: rejoins as a follower and re-verifies its log against the
  /// current leader before anything is applied again.
  void OnRestart();

  /// Simulates total loss of the replicated log (disk gone). The replica
  /// restarts empty; if the leader compacted past its death point, it is
  /// re-seeded through the snapshot-install path. Call while crashed,
  /// before OnRestart().
  void WipeForBootstrap();

 private:
  void OnAppend(const protocol::ReplAppendRequest& req);
  void OnAppendAck(const protocol::ReplAppendAck& ack);
  void OnVoteRequest(const protocol::ReplVoteRequest& req);
  void OnVoteResponse(const protocol::ReplVoteResponse& resp);
  void OnFollowerRead(const protocol::FollowerReadRequest& req);
  /// Leader side: re-seeds a follower whose next entry was compacted
  /// away. Instead of one monolithic store snapshot it sends a
  /// ShardSeedOffer — the chunked content hashes of the committed store —
  /// and ships only the chunks the follower does not decline. Throttled:
  /// the shipper re-fires this every heartbeat while the follower lags,
  /// but a fresh offer goes out at most every two heartbeats (each
  /// re-offer is idempotent and picks up partially applied chunks as new
  /// declines, so interrupted re-seeds resume incrementally for free).
  void SendBootstrapSnapshot(NodeId follower);
  /// Follower side: installs bootstrap snapshot chunks (migration_id ==
  /// 0). seq != 0 marks a chunk of the offered stream; seq == 0 is the
  /// legacy monolithic install, kept for mixed-version peers.
  void OnBootstrapSnapshot(const protocol::ShardSnapshotChunk& chunk);
  /// Follower side: hashes its own store spans against the offer and
  /// declines every chunk it already holds byte-identically.
  void OnSeedOffer(const protocol::ShardSeedOffer& offer);
  /// Leader side: ships the chunks the follower did not decline.
  void OnSeedDecline(const protocol::ShardSeedDecline& decline);
  /// Follower side: every expected chunk arrived — position the log at
  /// the snapshot boundary exactly as the legacy install did, and ack.
  void FinishBootstrapInstall();
  /// Codecs this replica decodes, as advertised on acks/declines (raw
  /// only when the node's wan_compression knob is off).
  uint32_t LocalCodecMask() const;

  /// Epoch of the last log entry (0 for an empty log) — the first half of
  /// the (epoch, index) log-position pair elections compare.
  uint64_t LastLogEpoch() const;
  /// Group members other than this replica.
  std::vector<NodeId> Followers() const;
  /// Folds the shipper's quorum progress into the follower-side state and
  /// deactivates it (deposition and crash share this).
  void RetireLeadership();

  void ArmElectionTimer(Micros delay);
  void OnElectionCheck();
  void StartElection();
  void ArmHeartbeatTimer();
  void BecomeLeader();
  /// Runs once every inherited past-watermark entry has applied (or
  /// immediately when there were none): installs staged prepares,
  /// announces leadership, and lets the data source drain parked work.
  void FinishPromotion();
  /// Recreates quorum-staged prepared branches as in-doubt XA branches in
  /// the engine and re-votes them to their coordinators.
  void InstallStagedPrepares();
  void AnnounceLeadership();

  /// Applies committed entries up to `target` (follower path).
  void ApplyCommitted(uint64_t target);
  void ApplyEntry(const protocol::ReplEntry& entry);
  /// Appends one entry and maintains the prepare/commit tracking maps.
  void AppendTracked(const protocol::ReplEntry& entry);
  /// Maintains unresolved_migrations_ for one migration record.
  void TrackMigrationRecord(protocol::ReplEntryType type,
                            uint64_t migration_id, uint64_t index);
  /// Removes log entries >= `from` plus their tracking state.
  void TruncateFrom(uint64_t from);
  /// Compacts the log prefix every group member has applied (bounded by
  /// unresolved prepares, which a promotion still needs to install).
  void MaybeTruncateLog();
  /// After any possible role change: retires leader-only machinery and
  /// keeps the election timer armed for non-leaders.
  void SyncRoleState();

  runtime::ITimer* loop() const;
  runtime::ITransport* network() const;
  NodeId self() const;

  datasource::DataSourceNode* node_;
  GroupConfig group_;
  int ordinal_ = 0;  ///< position in group_.replicas
  ElectionState election_;
  ReplicationLog log_;
  LogShipper shipper_;

  // Follower-side state.
  /// Prefix of the log verified to match the current leader's log.
  uint64_t consistent_prefix_ = 0;
  uint64_t follower_watermark_ = 0;
  uint64_t applied_index_ = 0;
  /// Leader-announced compaction bound (its min follower match index): a
  /// follower must retain everything above it so that, if promoted, it
  /// can still re-ship the tail to the laggiest peer (no snapshots yet).
  uint64_t compact_floor_ = 0;
  Micros last_leader_contact_ = 0;
  Micros fresh_as_of_ = -1;  ///< -1: never caught up

  /// Prepare entries without a later commit/abort entry (txn -> index).
  /// On promotion these become in-doubt engine branches.
  std::unordered_map<TxnId, uint64_t> unresolved_prepares_;
  /// Migration control records without a MigrationEnd (id -> state). On
  /// promotion these are handed to the ShardMigrator to resume (Cutover
  /// logged) or abort (Begin only).
  struct MigrationTrack {
    uint64_t begin_index = 0;
    uint64_t cutover_index = 0;  ///< 0 until a Cutover record lands
  };
  std::unordered_map<uint64_t, MigrationTrack> unresolved_migrations_;
  /// Commit entry per transaction (for idempotent decision retries).
  std::unordered_map<TxnId, uint64_t> commit_entries_;

  // ----- incremental bootstrap re-seed state -----
  /// Leader side, per lagging follower: the offer currently outstanding.
  /// Kept until overwritten (offers are cheap); cleared with leadership.
  struct BootstrapStream {
    uint64_t base_index = 0;
    uint64_t base_epoch = 0;
    Micros offered_at = 0;  ///< re-offer throttle (2x heartbeat)
    std::vector<protocol::SeedDigest> digests;
  };
  std::unordered_map<NodeId, BootstrapStream> bootstrap_streams_;
  /// Follower side: the install in progress (volatile — a crash mid-seed
  /// keeps the partially applied store, and the next offer turns that
  /// progress into declines).
  struct PendingBootstrap {
    uint64_t base_index = 0;
    uint64_t base_epoch = 0;
    std::set<uint64_t> missing;  ///< chunk seqs not declined, not yet here
  };
  std::optional<PendingBootstrap> pending_bootstrap_;

  sim::EventId election_timer_ = sim::kInvalidEvent;
  sim::EventId heartbeat_timer_ = sim::kInvalidEvent;
  /// Inherited entries not yet re-quorum'd + applied (promotion barrier).
  uint64_t promotion_applies_pending_ = 0;
  /// "repl.promotion" system span (BecomeLeader -> barrier cleared).
  obs::SpanHandle promotion_span_ = obs::kInvalidSpan;
  ReplicatorStats stats_;
};

}  // namespace replication
}  // namespace geotp

#endif  // GEOTP_REPLICATION_REPLICATOR_H_
