#include "replication/election.h"

namespace geotp {
namespace replication {

const char* RoleName(Role role) {
  switch (role) {
    case Role::kFollower:
      return "follower";
    case Role::kCandidate:
      return "candidate";
    case Role::kLeader:
      return "leader";
  }
  return "?";
}

uint64_t ElectionState::StartElection(uint64_t own_last_log_index) {
  (void)own_last_log_index;
  stats_.elections_started++;
  role_ = Role::kCandidate;
  leader_ = kInvalidNode;
  epoch_++;
  voted_epoch_ = epoch_;
  voted_for_ = self_;
  votes_.clear();
  votes_.insert(self_);
  if (HasQuorum()) {
    role_ = Role::kLeader;
    leader_ = self_;
    stats_.terms_won++;
  }
  return epoch_;
}

bool ElectionState::GrantVote(NodeId candidate, uint64_t candidate_epoch,
                              uint64_t candidate_last_epoch,
                              uint64_t candidate_last_index,
                              uint64_t own_last_epoch,
                              uint64_t own_last_index, bool leader_fresh) {
  const bool repeat_grant =
      candidate_epoch == voted_epoch_ && voted_for_ == candidate;
  if (candidate_epoch < epoch_ ||
      (candidate_epoch <= voted_epoch_ && !repeat_grant)) {
    // Stale epoch, or an epoch in which we already voted for someone else.
    stats_.votes_refused++;
    return false;
  }
  if (leader_fresh) {
    // Leader stickiness: our leader is still heartbeating — a restarted
    // replica must not depose it.
    stats_.votes_refused++;
    return false;
  }
  if (candidate_last_epoch < own_last_epoch ||
      (candidate_last_epoch == own_last_epoch &&
       candidate_last_index < own_last_index)) {
    // The candidate's log is behind ours — by entry epoch first, so a
    // restarted leader's long stale tail cannot outrank newer-epoch
    // quorum-acked entries. Electing it could lose committed data; adopt
    // the newer epoch but refuse the vote.
    ObserveEpoch(candidate_epoch);
    stats_.votes_refused++;
    return false;
  }
  ObserveEpoch(candidate_epoch);
  voted_epoch_ = candidate_epoch;
  voted_for_ = candidate;
  stats_.votes_granted++;
  return true;
}

bool ElectionState::OnVoteGranted(NodeId voter, uint64_t response_epoch) {
  if (role_ != Role::kCandidate || response_epoch != epoch_) return false;
  votes_.insert(voter);
  if (HasQuorum()) {
    role_ = Role::kLeader;
    leader_ = self_;
    stats_.terms_won++;
    return true;
  }
  return false;
}

bool ElectionState::AdoptLeader(NodeId leader, uint64_t epoch) {
  const bool stepped_down = role_ != Role::kFollower;
  if (stepped_down) stats_.step_downs++;
  role_ = Role::kFollower;
  leader_ = leader;
  epoch_ = epoch;
  votes_.clear();
  return stepped_down;
}

void ElectionState::ObserveEpoch(uint64_t epoch) {
  if (epoch <= epoch_) return;
  if (role_ != Role::kFollower) stats_.step_downs++;
  role_ = Role::kFollower;
  leader_ = kInvalidNode;
  epoch_ = epoch;
  votes_.clear();
}

}  // namespace replication
}  // namespace geotp
