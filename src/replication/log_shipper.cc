#include "replication/log_shipper.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "protocol/wan_codec.h"

namespace geotp {
namespace replication {

using protocol::ReplAppendAck;
using protocol::ReplAppendRequest;
using protocol::ReplEntry;

void LogShipper::Activate(NodeId group, uint64_t epoch,
                          std::vector<NodeId> followers, size_t quorum_size,
                          uint64_t floor) {
  active_ = true;
  activation_++;
  ship_scheduled_ = false;
  group_ = group;
  epoch_ = epoch;
  quorum_size_ = quorum_size;
  commit_watermark_ = std::max(commit_watermark_, floor);
  followers_.clear();
  for (NodeId follower : followers) {
    // A fresh leader does not know how far each follower got; start from
    // its own log end and let failed acks walk next_index back.
    followers_[follower] = Progress{log_->last_index() + 1, 0};
  }
  // Degenerate group (or every peer lost): quorum may already be met for
  // the whole log.
  AdvanceWatermark();
}

void LogShipper::Deactivate() {
  active_ = false;
  activation_++;
  ship_scheduled_ = false;
  pending_.clear();
}

uint64_t LogShipper::AppendAndShip(ReplEntry entry, QuorumCallback on_quorum) {
  GEOTP_CHECK(active_, "AppendAndShip on inactive shipper");
  entry.epoch = epoch_;
  const uint64_t index = log_->Append(std::move(entry));
  if (on_quorum != nullptr) {
    pending_.emplace(index, std::move(on_quorum));
  }
  // Coalesce: every entry appended in this event-loop tick (a group-commit
  // flush appends many) ships in ONE request per follower, acked as one.
  ScheduleShip();
  // The leader's own copy counts toward the quorum.
  AdvanceWatermark();
  return index;
}

void LogShipper::ScheduleShip() {
  if (ship_scheduled_) return;
  ship_scheduled_ = true;
  const uint64_t activation = activation_;
  timer_->Schedule(0, [this, activation]() {
    if (activation != activation_ || !active_) return;
    ship_scheduled_ = false;
    for (auto& [follower, progress] : followers_) {
      if (progress.next_index <= log_->last_index()) {
        ShipTo(follower, progress);
      }
    }
  });
}

uint64_t LogShipper::MinMatchIndex() const {
  uint64_t min_match = log_->last_index();
  for (const auto& [follower, progress] : followers_) {
    min_match = std::min(min_match, progress.match_index);
  }
  return min_match;
}

void LogShipper::AwaitQuorum(uint64_t index, QuorumCallback on_quorum) {
  if (index <= commit_watermark_) {
    stats_.quorum_callbacks_fired++;
    on_quorum();
    return;
  }
  pending_.emplace(index, std::move(on_quorum));
}

void LogShipper::ShipTo(NodeId follower, Progress& progress) {
  if (progress.next_index < log_->first_index()) {
    // The follower needs entries that were compacted away (its log was
    // lost entirely — compaction never outruns a follower that still has
    // one). Ship a store snapshot positioning it at the compaction
    // boundary; the retained tail follows as a normal append.
    GEOTP_CHECK(snapshot_sender_ != nullptr,
                "follower " << follower << " needs compacted entries and no "
                            << "snapshot sender is installed");
    stats_.snapshots_sent++;
    snapshot_sender_(follower);
    progress.next_index = log_->first_index();
  }
  auto req = std::make_unique<ReplAppendRequest>();
  req->from = self_;
  req->to = follower;
  req->group = group_;
  req->epoch = epoch_;
  req->prev_index = progress.next_index - 1;
  req->prev_epoch = log_->EpochAt(req->prev_index);
  req->entries = log_->Slice(progress.next_index, log_->last_index());
  req->commit_watermark = commit_watermark_;
  req->compact_floor = std::min(MinMatchIndex(), commit_watermark_);
  stats_.entries_shipped += req->entries.size();
  if (!req->entries.empty()) {
    stats_.append_batches_shipped++;
    // Seal the batch into the compressed WAN envelope under the codec the
    // follower negotiated (raw until its first ack arrives).
    const protocol::EnvelopeBytes bytes = protocol::SealAppendPayload(
        common::PickWireCodec(progress.codec_mask, wan_compression_),
        req.get());
    stats_.wan_bytes_raw += bytes.raw;
    stats_.wan_bytes_wire += bytes.wire;
  }
  network_->Send(std::move(req));
  // Optimistically advance; a failed ack rewinds next_index.
  progress.next_index = log_->last_index() + 1;
}

void LogShipper::OnAck(NodeId follower, const ReplAppendAck& ack) {
  if (!active_ || ack.epoch != epoch_) return;
  auto it = followers_.find(follower);
  if (it == followers_.end()) return;
  stats_.acks_received++;
  Progress& progress = it->second;
  // Every ack re-advertises the follower's codec support; later batches
  // to this follower may compress.
  progress.codec_mask = ack.codec_mask;
  if (!ack.ok) {
    // Log gap at the follower: rewind and retransmit from its tail.
    progress.next_index = ack.ack_index + 1;
    stats_.retransmissions++;
    ShipTo(follower, progress);
    return;
  }
  progress.match_index = std::max(progress.match_index, ack.ack_index);
  progress.next_index = std::max(progress.next_index, ack.ack_index + 1);
  AdvanceWatermark();
}

void LogShipper::AdvanceWatermark() {
  // k-th largest replicated index across {leader} ∪ followers, where
  // k = quorum size. The leader holds its whole log.
  std::vector<uint64_t> indexes;
  indexes.push_back(log_->last_index());
  for (const auto& [follower, progress] : followers_) {
    indexes.push_back(progress.match_index);
  }
  if (indexes.size() < quorum_size_) return;  // can never reach quorum
  std::sort(indexes.begin(), indexes.end(), std::greater<uint64_t>());
  const uint64_t quorum_index = indexes[quorum_size_ - 1];
  if (quorum_index <= commit_watermark_) return;
  commit_watermark_ = quorum_index;

  // Fire callbacks for every index now at quorum, in log order.
  while (!pending_.empty() &&
         pending_.begin()->first <= commit_watermark_) {
    QuorumCallback cb = std::move(pending_.begin()->second);
    pending_.erase(pending_.begin());
    stats_.quorum_callbacks_fired++;
    cb();
  }
}

void LogShipper::Tick() {
  if (!active_) return;
  for (auto& [follower, progress] : followers_) {
    if (progress.next_index <= log_->last_index()) {
      stats_.retransmissions++;
      progress.next_index =
          std::min(progress.next_index, progress.match_index + 1);
    }
    ShipTo(follower, progress);
  }
}

}  // namespace replication
}  // namespace geotp
