#include "replication/replicator.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/logging.h"
#include "datasource/data_source.h"
#include "protocol/wan_codec.h"

namespace geotp {
namespace replication {

namespace {

/// Store-scan ordering shared by the offer builder (leader) and the span
/// hasher (follower): digests only match if both sides pack a span's
/// records in the same order.
bool KeyLess(const RecordKey& a, const RecordKey& b) {
  if (a.table != b.table) return a.table < b.table;
  return a.key < b.key;
}

std::vector<protocol::ReplWrite> SortedCommittedRecords(
    storage::TransactionEngine& engine) {
  std::vector<protocol::ReplWrite> records;
  for (const auto& [key, value] : engine.CommittedRecords()) {
    records.push_back(protocol::ReplWrite{key, value});
  }
  std::sort(records.begin(), records.end(),
            [](const protocol::ReplWrite& a, const protocol::ReplWrite& b) {
              return KeyLess(a.key, b.key);
            });
  return records;
}

/// Packs this replica's committed records within [lo, hi] (inclusive) in
/// canonical order — hash-comparable against a SeedDigest for the span.
uint64_t SpanHash(storage::TransactionEngine& engine, const RecordKey& lo,
                  const RecordKey& hi) {
  std::vector<protocol::ReplWrite> records;
  for (const auto& [key, value] : engine.CommittedRecords(
           [&lo, &hi](const RecordKey& key) {
             return !KeyLess(key, lo) && !KeyLess(hi, key);
           })) {
    records.push_back(protocol::ReplWrite{key, value});
  }
  std::sort(records.begin(), records.end(),
            [](const protocol::ReplWrite& a, const protocol::ReplWrite& b) {
              return KeyLess(a.key, b.key);
            });
  return common::ContentHash64(protocol::PackWrites(records));
}

}  // namespace

using protocol::FollowerReadRequest;
using protocol::FollowerReadResponse;
using protocol::LeaderAnnounce;
using protocol::ReplAppendAck;
using protocol::ReplAppendRequest;
using protocol::ReplEntry;
using protocol::ReplEntryType;
using protocol::ReplVoteRequest;
using protocol::ReplVoteResponse;
using protocol::Vote;
using protocol::VoteMessage;

Replicator::Replicator(datasource::DataSourceNode* node, GroupConfig group)
    : node_(node),
      group_(std::move(group)),
      election_(node->id(), group_.QuorumSize()),
      shipper_(node->id(), node->network(), node->loop(), &log_) {
  GEOTP_CHECK(!group_.replicas.empty(), "empty replica group");
  auto it = std::find(group_.replicas.begin(), group_.replicas.end(),
                      node_->id());
  GEOTP_CHECK(it != group_.replicas.end(),
              "node " << node_->id() << " not in its replica group");
  ordinal_ = static_cast<int>(it - group_.replicas.begin());
  shipper_.set_snapshot_sender(
      [this](NodeId follower) { SendBootstrapSnapshot(follower); });
  shipper_.set_wan_compression(node_->config().wan_compression);
}

uint32_t Replicator::LocalCodecMask() const {
  return node_->config().wan_compression ? common::SupportedCodecMask()
                                         : common::kCodecRawBit;
}

runtime::ITimer* Replicator::loop() const { return node_->loop(); }
runtime::ITransport* Replicator::network() const { return node_->network(); }
NodeId Replicator::self() const { return node_->id(); }

uint64_t Replicator::LastLogEpoch() const {
  return log_.EpochAt(log_.last_index());
}

std::vector<NodeId> Replicator::Followers() const {
  std::vector<NodeId> followers;
  for (NodeId replica : group_.replicas) {
    if (replica != self()) followers.push_back(replica);
  }
  return followers;
}

void Replicator::RetireLeadership() {
  if (!shipper_.active()) return;
  // Everything at quorum was engine-applied while leading.
  follower_watermark_ =
      std::max(follower_watermark_, shipper_.commit_watermark());
  applied_index_ = std::max(applied_index_, shipper_.commit_watermark());
  shipper_.Deactivate();  // drops any pending promotion-barrier callbacks
  promotion_applies_pending_ = 0;
  bootstrap_streams_.clear();  // leader-only re-seed offers die with the term
  // Work parked behind the barrier must not wait forever: replayed now,
  // it bounces off the not-a-leader redirect path (or is dropped by a
  // crash) instead of wedging.
  node_->OnReplicatorReady();
}

void Replicator::Start() {
  last_leader_contact_ = loop()->Now();
  if (self() == group_.logical) {
    election_.SeedLeader();
    shipper_.Activate(group_.logical, /*epoch=*/0, Followers(),
                      group_.QuorumSize(), /*floor=*/0);
    ArmHeartbeatTimer();
  } else {
    election_.AdoptLeader(group_.logical, /*epoch=*/0);
    ArmElectionTimer(group_.config.election_timeout +
                     ordinal_ * group_.config.election_stagger);
  }
}

Micros Replicator::Staleness() const {
  if (IsLeader()) return 0;
  if (fresh_as_of_ < 0) return std::numeric_limits<Micros>::max() / 2;
  return loop()->Now() - fresh_as_of_;
}

// ---------------------------------------------------------------------------
// Leader-side durability hooks
// ---------------------------------------------------------------------------

void Replicator::ReplicatePrepare(const Xid& xid,
                                  std::vector<protocol::ReplWrite> writes,
                                  NodeId coordinator,
                                  QuorumCallback on_quorum) {
  GEOTP_CHECK(IsLeader(), "ReplicatePrepare on non-leader");
  auto it = unresolved_prepares_.find(xid.txn_id);
  if (it != unresolved_prepares_.end()) {
    // Duplicate (e.g. a middleware prepare retry): wait on the entry.
    shipper_.AwaitQuorum(it->second, std::move(on_quorum));
    return;
  }
  ReplEntry entry;
  entry.type = ReplEntryType::kPrepare;
  entry.xid = xid;
  entry.coordinator = coordinator;
  entry.writes = std::move(writes);
  entry.at = loop()->Now();
  const uint64_t index =
      shipper_.AppendAndShip(std::move(entry), std::move(on_quorum));
  unresolved_prepares_[xid.txn_id] = index;
}

void Replicator::ReplicateCommit(const Xid& xid,
                                 std::vector<protocol::ReplWrite> writes,
                                 QuorumCallback on_quorum) {
  ReplicateIngest(xid, std::move(writes), 0, 0, 0, 0, std::move(on_quorum));
}

void Replicator::ReplicateIngest(const Xid& xid,
                                 std::vector<protocol::ReplWrite> writes,
                                 uint64_t migration_id, uint64_t chunk_seq,
                                 uint64_t delta_seq, uint64_t content_hash,
                                 QuorumCallback on_quorum) {
  GEOTP_CHECK(IsLeader(), "ReplicateIngest on non-leader");
  auto it = commit_entries_.find(xid.txn_id);
  if (it != commit_entries_.end()) {
    shipper_.AwaitQuorum(it->second, std::move(on_quorum));
    return;
  }
  unresolved_prepares_.erase(xid.txn_id);
  ReplEntry entry;
  entry.type = ReplEntryType::kCommit;
  entry.xid = xid;
  entry.writes = std::move(writes);
  entry.at = loop()->Now();
  entry.ingest_migration_id = migration_id;
  entry.ingest_chunk_seq = chunk_seq;
  entry.ingest_delta_seq = delta_seq;
  entry.ingest_content_hash = content_hash;
  const uint64_t index =
      shipper_.AppendAndShip(std::move(entry), std::move(on_quorum));
  commit_entries_[xid.txn_id] = index;
}

void Replicator::ReplicateMigrationRecord(
    protocol::ReplEntryType type, const protocol::MigrationRecord& record,
    QuorumCallback on_quorum) {
  GEOTP_CHECK(IsLeader(), "ReplicateMigrationRecord on non-leader");
  GEOTP_CHECK(type == ReplEntryType::kMigrationBegin ||
                  type == ReplEntryType::kMigrationCutover ||
                  type == ReplEntryType::kMigrationEnd,
              "not a migration record type");
  stats_.migration_records_appended++;
  ReplEntry entry;
  entry.type = type;
  entry.xid = Xid{kInvalidTxn, group_.logical};
  entry.migration = std::make_shared<protocol::MigrationRecord>(record);
  entry.at = loop()->Now();
  const uint64_t index =
      shipper_.AppendAndShip(std::move(entry), std::move(on_quorum));
  // Mirror AppendTracked's bookkeeping for the leader's own append (the
  // shipper appends to the log directly).
  TrackMigrationRecord(type, record.migration_id, index);
}

void Replicator::TrackMigrationRecord(protocol::ReplEntryType type,
                                      uint64_t migration_id, uint64_t index) {
  switch (type) {
    case ReplEntryType::kMigrationBegin:
      unresolved_migrations_[migration_id] = MigrationTrack{index, 0};
      break;
    case ReplEntryType::kMigrationCutover: {
      auto it = unresolved_migrations_.find(migration_id);
      if (it != unresolved_migrations_.end()) it->second.cutover_index = index;
      break;
    }
    case ReplEntryType::kMigrationEnd:
      unresolved_migrations_.erase(migration_id);
      break;
    default:
      break;
  }
}

void Replicator::ReplicateAbortIfPrepared(TxnId txn) {
  if (!IsLeader()) return;
  auto it = unresolved_prepares_.find(txn);
  if (it == unresolved_prepares_.end()) return;
  ReplEntry entry;
  entry.type = ReplEntryType::kAbort;
  entry.xid = log_.At(it->second).xid;
  entry.at = loop()->Now();
  unresolved_prepares_.erase(it);
  shipper_.AppendAndShip(std::move(entry), nullptr);
}

std::optional<uint64_t> Replicator::CommitEntryIndex(TxnId txn) const {
  auto it = commit_entries_.find(txn);
  if (it == commit_entries_.end()) return std::nullopt;
  return it->second;
}

// ---------------------------------------------------------------------------
// Message handling
// ---------------------------------------------------------------------------

bool Replicator::HandleMessage(sim::MessageBase* msg) {
  switch (msg->type()) {
    case sim::MessageType::kReplAppendRequest: {
      auto& req = static_cast<ReplAppendRequest&>(*msg);
      if (!protocol::OpenAppendPayload(&req)) {
        // Corrupt envelope (hash or bounds check failed): drop the whole
        // frame. No ack — the leader's heartbeat retransmit recovers.
        return true;
      }
      OnAppend(req);
      return true;
    }
    case sim::MessageType::kReplAppendAck:
      OnAppendAck(static_cast<ReplAppendAck&>(*msg));
      return true;
    case sim::MessageType::kReplVoteRequest:
      OnVoteRequest(static_cast<ReplVoteRequest&>(*msg));
      return true;
    case sim::MessageType::kReplVoteResponse:
      OnVoteResponse(static_cast<ReplVoteResponse&>(*msg));
      return true;
    case sim::MessageType::kFollowerReadRequest:
      OnFollowerRead(static_cast<FollowerReadRequest&>(*msg));
      return true;
    case sim::MessageType::kShardSnapshotChunk: {
      // migration_id == 0 marks a replication bootstrap snapshot; shard
      // migration chunks fall through to the ShardMigrator.
      auto& chunk = static_cast<protocol::ShardSnapshotChunk&>(*msg);
      if (chunk.migration_id != 0 || chunk.group != group_.logical) {
        return false;
      }
      if (!protocol::OpenChunkPayload(&chunk)) {
        return true;  // corrupt: drop; the next re-offer round recovers
      }
      OnBootstrapSnapshot(chunk);
      return true;
    }
    case sim::MessageType::kShardSeedOffer: {
      const auto& offer = static_cast<protocol::ShardSeedOffer&>(*msg);
      if (offer.migration_id != 0 || offer.group != group_.logical) {
        return false;  // migration-resume offer: the ShardMigrator handles it
      }
      OnSeedOffer(offer);
      return true;
    }
    case sim::MessageType::kShardSeedDecline: {
      const auto& decline = static_cast<protocol::ShardSeedDecline&>(*msg);
      if (decline.migration_id != 0 || decline.group != group_.logical) {
        return false;
      }
      OnSeedDecline(decline);
      return true;
    }
    default:
      return false;
  }
}

void Replicator::OnAppend(const ReplAppendRequest& req) {
  stats_.appends_received++;
  auto ack = std::make_unique<ReplAppendAck>();
  ack->from = self();
  ack->to = req.from;
  ack->group = group_.logical;
  ack->codec_mask = LocalCodecMask();
  if (req.epoch < election_.epoch()) {
    // Stale leader: tell it the current epoch so it steps down.
    ack->epoch = election_.epoch();
    ack->ok = false;
    ack->ack_index = 0;
    network()->Send(std::move(ack));
    return;
  }
  const bool epoch_changed = req.epoch > election_.epoch();
  if (epoch_changed || election_.leader() != req.from ||
      election_.role() != Role::kFollower) {
    election_.AdoptLeader(req.from, req.epoch);
    if (epoch_changed) consistent_prefix_ = 0;
    SyncRoleState();
  }
  last_leader_contact_ = loop()->Now();
  ack->epoch = election_.epoch();

  // Raft-style log matching: our entry at prev_index must be the leader's.
  if (req.prev_index > log_.last_index() ||
      (req.prev_index > 0 &&
       log_.EpochAt(req.prev_index) != req.prev_epoch)) {
    ack->ok = false;
    ack->ack_index = req.prev_index > 0
                         ? std::min(log_.last_index(), req.prev_index - 1)
                         : 0;
    network()->Send(std::move(ack));
    return;
  }

  for (const ReplEntry& entry : req.entries) {
    // Entries at or below our compacted prefix are quorum-applied
    // duplicates (a conservative retransmit after leadership churn).
    if (entry.index < log_.first_index()) continue;
    if (entry.index <= log_.last_index()) {
      if (log_.At(entry.index).epoch == entry.epoch) continue;  // duplicate
      // Divergent tail from a deposed leader: quorum-applied prefixes can
      // never diverge, so truncation below the watermark is a bug.
      GEOTP_CHECK(entry.index > follower_watermark_ &&
                      entry.index > applied_index_,
                  "replication log diverges below the commit watermark");
      TruncateFrom(entry.index);
    }
    GEOTP_CHECK(entry.index == log_.last_index() + 1, "log gap in append");
    AppendTracked(entry);
  }

  const uint64_t verified = req.prev_index + req.entries.size();
  compact_floor_ = std::max(compact_floor_, req.compact_floor);
  consistent_prefix_ = std::max(consistent_prefix_, verified);
  follower_watermark_ = std::max(
      follower_watermark_, std::min(req.commit_watermark, consistent_prefix_));
  ApplyCommitted(follower_watermark_);
  if (applied_index_ >= req.commit_watermark) {
    fresh_as_of_ = loop()->Now();
  }
  MaybeTruncateLog();
  ack->ok = true;
  ack->ack_index = consistent_prefix_;
  network()->Send(std::move(ack));
}

void Replicator::AppendTracked(const ReplEntry& entry) {
  const uint64_t index = log_.Append(entry);
  switch (entry.type) {
    case ReplEntryType::kPrepare:
      unresolved_prepares_[entry.xid.txn_id] = index;
      break;
    case ReplEntryType::kCommit:
      unresolved_prepares_.erase(entry.xid.txn_id);
      commit_entries_[entry.xid.txn_id] = index;
      break;
    case ReplEntryType::kAbort:
      unresolved_prepares_.erase(entry.xid.txn_id);
      break;
    case ReplEntryType::kMigrationBegin:
    case ReplEntryType::kMigrationCutover:
    case ReplEntryType::kMigrationEnd:
      GEOTP_CHECK(entry.migration != nullptr,
                  "migration entry without a record");
      TrackMigrationRecord(entry.type, entry.migration->migration_id, index);
      break;
  }
}

void Replicator::MaybeTruncateLog() {
  // Safe compaction point: everything at quorum that this replica already
  // reflects, bounded by what EVERY group member already holds (a
  // truncated entry can never be re-shipped, and any replica may be the
  // next leader). The leader computes that bound as its min follower
  // match index; followers learn it as the append-carried compact_floor.
  // A leader reflects its whole quorum-durable prefix through local
  // engine commits, so applied_index_ (a follower-side notion) only
  // bounds followers. Unresolved prepares are pinned: a promotion must
  // still install them as in-doubt branches.
  uint64_t safe = commit_watermark();
  if (IsLeader()) {
    safe = std::min(safe, shipper_.MinMatchIndex());
  } else {
    safe = std::min({safe, applied_index_, compact_floor_});
  }
  for (const auto& [txn, index] : unresolved_prepares_) {
    safe = std::min(safe, index - 1);
  }
  // Unresolved migration records are pinned like prepares: a promotion
  // must still read them to resume or abort the migration.
  for (const auto& [id, track] : unresolved_migrations_) {
    safe = std::min(safe, track.begin_index - 1);
  }
  stats_.log_entries_truncated += log_.TruncatePrefix(safe);
}

void Replicator::TruncateFrom(uint64_t from) {
  log_.TruncateFrom(from);
  for (auto it = unresolved_prepares_.begin();
       it != unresolved_prepares_.end();) {
    it = it->second >= from ? unresolved_prepares_.erase(it) : std::next(it);
  }
  for (auto it = commit_entries_.begin(); it != commit_entries_.end();) {
    it = it->second >= from ? commit_entries_.erase(it) : std::next(it);
  }
  for (auto it = unresolved_migrations_.begin();
       it != unresolved_migrations_.end();) {
    if (it->second.begin_index >= from) {
      it = unresolved_migrations_.erase(it);
      continue;
    }
    if (it->second.cutover_index >= from) it->second.cutover_index = 0;
    ++it;
  }
  consistent_prefix_ = std::min(consistent_prefix_, from - 1);
}

void Replicator::OnAppendAck(const ReplAppendAck& ack) {
  if (ack.epoch > election_.epoch()) {
    // A replica moved to a newer epoch: our leadership (if any) is over.
    election_.ObserveEpoch(ack.epoch);
    SyncRoleState();
    return;
  }
  shipper_.OnAck(ack.from, ack);
}

void Replicator::OnVoteRequest(const ReplVoteRequest& req) {
  const bool leader_fresh =
      election_.role() == Role::kLeader ||
      loop()->Now() - last_leader_contact_ < group_.config.election_timeout;
  const bool granted = election_.GrantVote(
      req.from, req.epoch, req.last_log_epoch, req.last_log_index,
      LastLogEpoch(), log_.last_index(), leader_fresh);
  if (granted) {
    // Give the candidate a full timeout before we would stand ourselves.
    last_leader_contact_ = loop()->Now();
  }
  SyncRoleState();
  auto resp = std::make_unique<ReplVoteResponse>();
  resp->from = self();
  resp->to = req.from;
  resp->group = group_.logical;
  resp->epoch = granted ? req.epoch : election_.epoch();
  resp->granted = granted;
  resp->voter_last_index = log_.last_index();
  network()->Send(std::move(resp));
}

void Replicator::OnVoteResponse(const ReplVoteResponse& resp) {
  if (!resp.granted) {
    election_.ObserveEpoch(resp.epoch);
    SyncRoleState();
    return;
  }
  if (election_.OnVoteGranted(resp.from, resp.epoch)) {
    BecomeLeader();
  }
}

void Replicator::OnFollowerRead(const FollowerReadRequest& req) {
  auto resp = std::make_unique<FollowerReadResponse>();
  resp->from = self();
  resp->to = req.from;
  resp->group = group_.logical;
  resp->txn_id = req.txn_id;
  resp->round_seq = req.round_seq;
  resp->staleness = Staleness();
  if (resp->staleness > req.max_staleness) {
    resp->ok = false;
    stats_.follower_reads_rejected++;
  } else {
    resp->ok = true;
    for (const RecordKey& key : req.keys) {
      auto record = node_->engine().store().Get(key);
      resp->values.push_back(record ? record->value : 0);
    }
    stats_.follower_reads_served++;
  }
  network()->Send(std::move(resp));
}

// ---------------------------------------------------------------------------
// Snapshot bootstrap (reuses the shard snapshot-install path)
// ---------------------------------------------------------------------------

void Replicator::SendBootstrapSnapshot(NodeId follower) {
  // The shipper re-fires this every heartbeat while the follower's next
  // entry stays compacted away; an offer round takes a couple of round
  // trips, so only re-offer after a quiet period. A re-offer is harmless
  // beyond the bytes: the follower re-declines (now including any chunks
  // it applied from the interrupted round) and the leader ships the rest.
  auto it = bootstrap_streams_.find(follower);
  if (it != bootstrap_streams_.end() &&
      loop()->Now() - it->second.offered_at <
          2 * group_.config.heartbeat_interval) {
    return;
  }
  BootstrapStream& stream = bootstrap_streams_[follower];
  stream.offered_at = loop()->Now();
  // Position the follower's empty log at our compaction boundary: the
  // offered chunks cover every compacted entry's effects (they are our
  // CURRENT committed state, so re-applying the retained tail is
  // idempotent). Committed state only: live branches' in-place writes
  // stay out — their prepare entries are pinned above the compaction
  // point and ship with the tail.
  stream.base_index = log_.first_index() - 1;
  stream.base_epoch = log_.EpochAt(stream.base_index);
  stream.digests.clear();
  const std::vector<protocol::ReplWrite> records =
      SortedCommittedRecords(node_->engine());
  const size_t per_chunk =
      std::max<uint64_t>(1, node_->config().migration_chunk_records);
  for (size_t offset = 0; offset < records.size(); offset += per_chunk) {
    const size_t count = std::min(per_chunk, records.size() - offset);
    const std::vector<protocol::ReplWrite> slice(
        records.begin() + static_cast<ptrdiff_t>(offset),
        records.begin() + static_cast<ptrdiff_t>(offset + count));
    protocol::SeedDigest digest;
    digest.seq = stream.digests.size() + 1;
    digest.hash = common::ContentHash64(protocol::PackWrites(slice));
    digest.lo = slice.front().key;
    digest.hi = slice.back().key;
    digest.last = offset + count == records.size();
    stream.digests.push_back(digest);
  }
  auto offer = std::make_unique<protocol::ShardSeedOffer>();
  offer->from = self();
  offer->to = follower;
  offer->migration_id = 0;  // bootstrap, not a shard migration
  offer->group = group_.logical;
  offer->epoch = election_.epoch();
  offer->base_index = stream.base_index;
  offer->base_epoch = stream.base_epoch;
  offer->digests = stream.digests;
  stats_.bootstrap_offers_sent++;
  GEOTP_INFO("replica " << self() << ": bootstrap offer (base "
                        << stream.base_index << ", "
                        << stream.digests.size() << " chunks, "
                        << records.size() << " records) -> " << follower);
  network()->Send(std::move(offer));
}

void Replicator::OnSeedOffer(const protocol::ShardSeedOffer& offer) {
  if (offer.epoch < election_.epoch()) return;  // stale leader
  const bool epoch_changed = offer.epoch > election_.epoch();
  if (epoch_changed || election_.leader() != offer.from ||
      election_.role() != Role::kFollower) {
    election_.AdoptLeader(offer.from, offer.epoch);
    SyncRoleState();
  }
  last_leader_contact_ = loop()->Now();
  if (offer.base_index <= applied_index_) {
    // Already past the snapshot point (e.g. the previous round finished
    // and this is a straggler re-offer): a plain ack resumes normal
    // shipping of the retained tail.
    pending_bootstrap_.reset();
    auto ack = std::make_unique<ReplAppendAck>();
    ack->from = self();
    ack->to = offer.from;
    ack->group = group_.logical;
    ack->epoch = election_.epoch();
    ack->codec_mask = LocalCodecMask();
    ack->ok = true;
    ack->ack_index = consistent_prefix_;
    network()->Send(std::move(ack));
    return;
  }
  // Decline every chunk whose span this store already holds
  // byte-identically (journaled applies that survived a log wipe, or a
  // previous interrupted seed round). Keys are never deleted, so span
  // content matching the digest hash means the chunk is fully present.
  auto decline = std::make_unique<protocol::ShardSeedDecline>();
  decline->from = self();
  decline->to = offer.from;
  decline->migration_id = 0;
  decline->group = group_.logical;
  decline->epoch = election_.epoch();
  decline->codec_mask = LocalCodecMask();
  PendingBootstrap pending;
  pending.base_index = offer.base_index;
  pending.base_epoch = offer.base_epoch;
  for (const protocol::SeedDigest& digest : offer.digests) {
    if (SpanHash(node_->engine(), digest.lo, digest.hi) == digest.hash) {
      decline->declined.push_back(digest.seq);
    } else {
      pending.missing.insert(digest.seq);
    }
  }
  GEOTP_INFO("replica " << self() << ": seed offer (base "
                        << offer.base_index << "): declining "
                        << decline->declined.size() << "/"
                        << offer.digests.size() << " chunks");
  pending_bootstrap_ = std::move(pending);
  network()->Send(std::move(decline));
  if (pending_bootstrap_->missing.empty()) {
    // Everything declined (or an empty store offered): install directly.
    FinishBootstrapInstall();
  }
}

void Replicator::OnSeedDecline(const protocol::ShardSeedDecline& decline) {
  if (!IsLeader() || decline.epoch != election_.epoch()) return;
  auto it = bootstrap_streams_.find(decline.from);
  if (it == bootstrap_streams_.end()) return;  // no offer outstanding
  const BootstrapStream& stream = it->second;
  stats_.bootstrap_chunks_declined += decline.declined.size();
  const std::set<uint64_t> declined(decline.declined.begin(),
                                    decline.declined.end());
  const common::WireCodec codec = common::PickWireCodec(
      decline.codec_mask, node_->config().wan_compression);
  for (const protocol::SeedDigest& digest : stream.digests) {
    if (declined.count(digest.seq) > 0) continue;
    auto chunk = std::make_unique<protocol::ShardSnapshotChunk>();
    chunk->from = self();
    chunk->to = decline.from;
    chunk->migration_id = 0;
    chunk->group = group_.logical;
    chunk->epoch = election_.epoch();
    chunk->seq = digest.seq;
    chunk->last = digest.last;
    chunk->base_index = stream.base_index;
    chunk->base_epoch = stream.base_epoch;
    // Fresh scan of the span: content may have drifted since the offer
    // (commits keep landing), which is safe — values are absolute and
    // anything newer than base_index re-applies from the retained tail.
    for (const auto& [key, value] : node_->engine().CommittedRecords(
             [&digest](const RecordKey& key) {
               return !KeyLess(key, digest.lo) && !KeyLess(digest.hi, key);
             })) {
      chunk->records.push_back(protocol::ReplWrite{key, value});
    }
    std::sort(chunk->records.begin(), chunk->records.end(),
              [](const protocol::ReplWrite& a, const protocol::ReplWrite& b) {
                return KeyLess(a.key, b.key);
              });
    const protocol::EnvelopeBytes bytes =
        protocol::SealChunkPayload(codec, chunk.get());
    stats_.wan_bytes_raw += bytes.raw;
    stats_.wan_bytes_wire += bytes.wire;
    stats_.bootstrap_chunks_sent++;
    network()->Send(std::move(chunk));
  }
}

void Replicator::FinishBootstrapInstall() {
  GEOTP_CHECK(pending_bootstrap_.has_value(), "no bootstrap pending");
  const uint64_t base_index = pending_bootstrap_->base_index;
  const uint64_t base_epoch = pending_bootstrap_->base_epoch;
  pending_bootstrap_.reset();
  if (base_index > applied_index_) {
    log_.ResetTo(base_index, base_epoch);
    consistent_prefix_ = base_index;
    follower_watermark_ = base_index;
    applied_index_ = base_index;
    compact_floor_ = std::max(compact_floor_, base_index);
    unresolved_prepares_.clear();
    commit_entries_.clear();
    unresolved_migrations_.clear();
    fresh_as_of_ = loop()->Now();
    stats_.snapshot_installs++;
  }
  auto ack = std::make_unique<ReplAppendAck>();
  ack->from = self();
  ack->to = election_.leader();
  ack->group = group_.logical;
  ack->epoch = election_.epoch();
  ack->codec_mask = LocalCodecMask();
  ack->ok = true;
  ack->ack_index = consistent_prefix_;
  network()->Send(std::move(ack));
}

void Replicator::OnBootstrapSnapshot(
    const protocol::ShardSnapshotChunk& chunk) {
  if (chunk.epoch < election_.epoch()) return;  // stale leader
  const bool epoch_changed = chunk.epoch > election_.epoch();
  if (epoch_changed || election_.leader() != chunk.from ||
      election_.role() != Role::kFollower) {
    election_.AdoptLeader(chunk.from, chunk.epoch);
    SyncRoleState();
  }
  last_leader_contact_ = loop()->Now();
  if (chunk.seq != 0) {
    // A chunk of the offered seed stream. Records apply immediately (the
    // store persists them even across a crash, turning them into declines
    // on the next offer round); the log repositions only once the last
    // missing chunk lands, exactly like the legacy whole-store install.
    if (!pending_bootstrap_.has_value() ||
        pending_bootstrap_->base_index != chunk.base_index) {
      return;  // stale stream; the next offer round resynchronizes
    }
    for (const protocol::ReplWrite& w : chunk.records) {
      node_->engine().store().Apply(w.key, w.value);
    }
    pending_bootstrap_->missing.erase(chunk.seq);
    if (pending_bootstrap_->missing.empty()) FinishBootstrapInstall();
    return;
  }
  // Legacy monolithic snapshot (seq == 0) from a mixed-version leader.
  if (chunk.base_index > applied_index_) {
    for (const protocol::ReplWrite& w : chunk.records) {
      node_->engine().store().Apply(w.key, w.value);
    }
    log_.ResetTo(chunk.base_index, chunk.base_epoch);
    consistent_prefix_ = chunk.base_index;
    follower_watermark_ = chunk.base_index;
    applied_index_ = chunk.base_index;
    compact_floor_ = std::max(compact_floor_, chunk.base_index);
    unresolved_prepares_.clear();
    commit_entries_.clear();
    unresolved_migrations_.clear();
    fresh_as_of_ = loop()->Now();
    stats_.snapshot_installs++;
  }
  auto ack = std::make_unique<ReplAppendAck>();
  ack->from = self();
  ack->to = chunk.from;
  ack->group = group_.logical;
  ack->epoch = election_.epoch();
  ack->codec_mask = LocalCodecMask();
  ack->ok = true;
  ack->ack_index = consistent_prefix_;
  network()->Send(std::move(ack));
}

void Replicator::WipeForBootstrap() {
  GEOTP_CHECK(node_->crashed(), "wipe a live replica");
  log_.ResetTo(0, 0);
  consistent_prefix_ = 0;
  follower_watermark_ = 0;
  applied_index_ = 0;
  compact_floor_ = 0;
  fresh_as_of_ = -1;
  unresolved_prepares_.clear();
  commit_entries_.clear();
  unresolved_migrations_.clear();
  pending_bootstrap_.reset();
  // NOTE: the committed store is deliberately KEPT (only the log device
  // is gone). The next seed offer hashes it span by span, so everything
  // journaled before the wipe comes back as declined chunks instead of
  // re-crossing the WAN.
}

// ---------------------------------------------------------------------------
// Timers, elections, role changes
// ---------------------------------------------------------------------------

void Replicator::ArmElectionTimer(Micros delay) {
  election_timer_ = loop()->Schedule(delay, [this]() {
    election_timer_ = sim::kInvalidEvent;
    OnElectionCheck();
  });
}

void Replicator::OnElectionCheck() {
  if (node_->crashed() || election_.role() == Role::kLeader) return;
  if (loop()->Now() - last_leader_contact_ >=
      group_.config.election_timeout) {
    StartElection();
    if (election_.role() == Role::kLeader) return;  // won unopposed
  }
  const Micros stagger = ordinal_ * group_.config.election_stagger;
  ArmElectionTimer(election_.role() == Role::kCandidate
                       ? group_.config.election_retry_backoff + stagger
                       : group_.config.election_timeout + stagger);
}

void Replicator::StartElection() {
  election_.StartElection(log_.last_index());
  if (election_.role() == Role::kLeader) {
    // Single-member group: candidacy wins instantly.
    BecomeLeader();
    return;
  }
  for (NodeId replica : group_.replicas) {
    if (replica == self()) continue;
    auto req = std::make_unique<ReplVoteRequest>();
    req->from = self();
    req->to = replica;
    req->group = group_.logical;
    req->epoch = election_.epoch();
    req->last_log_epoch = LastLogEpoch();
    req->last_log_index = log_.last_index();
    network()->Send(std::move(req));
  }
}

void Replicator::ArmHeartbeatTimer() {
  heartbeat_timer_ =
      loop()->Schedule(group_.config.heartbeat_interval, [this]() {
        heartbeat_timer_ = sim::kInvalidEvent;
        if (node_->crashed() || !IsLeader()) return;
        shipper_.Tick();
        MaybeTruncateLog();
        ArmHeartbeatTimer();
      });
}

void Replicator::BecomeLeader() {
  stats_.promotions++;
  if (obs::GlobalTracer().enabled() &&
      promotion_span_ == obs::kInvalidSpan) {
    promotion_span_ = obs::GlobalTracer().BeginSpan(
        obs::SystemContext(), "repl.promotion", self(),
        node_->loop()->Now());
  }
  GEOTP_INFO("replica " << self() << " leads group " << group_.logical
                        << " at epoch " << election_.epoch());
  // 1. Catch up the local store to the quorum-durable commit point.
  ApplyCommitted(follower_watermark_);
  // 2. Start shipping: followers re-verify their logs against ours.
  shipper_.Activate(group_.logical, election_.epoch(), Followers(),
                    group_.QuorumSize(), follower_watermark_);
  // 3. Commit/abort entries past our watermark (accepted from the old
  //    leader, quorum unknown): apply each locally once it reaches quorum
  //    under our term. The coordinating middleware re-sends decisions after
  //    the announce, which resolves idempotently against these entries.
  //    Until ALL of them have applied, the store is behind the log and
  //    this leader must not serve new branches: an exec admitted in the
  //    gap would read the pre-failover value under a lock the deferred
  //    raw apply then silently overwrites (lost update). The barrier
  //    (ReadyToServe) holds prepare installation, the announce, and the
  //    data source's parked client traffic until the last apply lands —
  //    at most one follower round trip, and if quorum is unreachable the
  //    group could not commit anything anyway.
  std::vector<uint64_t> inherited;
  for (uint64_t index = follower_watermark_ + 1; index <= log_.last_index();
       ++index) {
    const ReplEntryType type = log_.At(index).type;
    if (type != ReplEntryType::kCommit && type != ReplEntryType::kAbort) {
      continue;
    }
    inherited.push_back(index);
  }
  promotion_applies_pending_ = inherited.size();
  for (uint64_t index : inherited) {
    shipper_.AwaitQuorum(index, [this, index]() {
      ApplyEntry(log_.At(index));
      applied_index_ = std::max(applied_index_, index);
      GEOTP_CHECK(promotion_applies_pending_ > 0,
                  "promotion barrier underflow");
      if (--promotion_applies_pending_ == 0) FinishPromotion();
    });
  }
  ArmHeartbeatTimer();
  // With no inherited entries the barrier is already clear. (When there
  // are some, the LAST AwaitQuorum callback runs FinishPromotion — even
  // if it fired synchronously inside the loop above.)
  if (inherited.empty()) FinishPromotion();
}

void Replicator::FinishPromotion() {
  if (promotion_span_ != obs::kInvalidSpan) {
    obs::GlobalTracer().EndSpan(promotion_span_, node_->loop()->Now());
    promotion_span_ = obs::kInvalidSpan;
  }
  if (!IsLeader()) return;  // deposed while the barrier was pending
  // Staged prepares become in-doubt XA branches; re-vote them so the
  // coordinator (or its presumed-abort path) resolves them. Installed
  // only now: the install applies absolute write sets in place, which
  // must layer on top of every inherited committed entry.
  InstallStagedPrepares();
  // Inherited migration control records: the deposed leader's stream and
  // fence state were volatile, but the Begin/Cutover records survive in
  // the log. Hand them to the migrator BEFORE announcing, so a cut-over
  // range is re-fenced before any DM can route new work here.
  if (!unresolved_migrations_.empty()) {
    std::vector<InheritedMigration> inherited;
    for (const auto& [id, track] : unresolved_migrations_) {
      InheritedMigration m;
      // The Cutover record carries the final (owner = dest) range.
      const uint64_t record_index =
          track.cutover_index != 0 ? track.cutover_index : track.begin_index;
      const auto& record = log_.At(record_index).migration;
      GEOTP_CHECK(record != nullptr, "migration entry without a record");
      m.record = *record;
      m.cutover_logged = track.cutover_index != 0;
      inherited.push_back(m);
      stats_.migration_handoffs++;
    }
    node_->OnInheritedMigrations(inherited);
  }
  AnnounceLeadership();
  node_->OnReplicatorReady();
}

void Replicator::InstallStagedPrepares() {
  std::vector<std::pair<uint64_t, TxnId>> staged;
  staged.reserve(unresolved_prepares_.size());
  for (const auto& [txn, index] : unresolved_prepares_) {
    staged.emplace_back(index, txn);
  }
  std::sort(staged.begin(), staged.end());
  for (const auto& [index, txn] : staged) {
    const ReplEntry& entry = log_.At(index);
    if (node_->engine().StateOf(entry.xid) != storage::TxnState::kPrepared) {
      std::vector<std::pair<RecordKey, int64_t>> writes;
      writes.reserve(entry.writes.size());
      for (const protocol::ReplWrite& w : entry.writes) {
        writes.emplace_back(w.key, w.value);
      }
      Status st = node_->engine().InstallPreparedBranch(entry.xid, writes,
                                                        loop()->Now());
      GEOTP_CHECK(st.ok(), "installing staged prepare: " << st.ToString());
      stats_.prepared_installs++;
    }
    if (entry.coordinator != kInvalidNode) {
      auto vote = std::make_unique<VoteMessage>();
      vote->from = self();
      vote->to = entry.coordinator;
      vote->xid = entry.xid;
      vote->vote = Vote::kPrepared;
      network()->Send(std::move(vote));
      stats_.revotes_sent++;
    }
  }
}

void Replicator::AnnounceLeadership() {
  for (NodeId dm : group_.middlewares) {
    auto announce = std::make_unique<LeaderAnnounce>();
    announce->from = self();
    announce->to = dm;
    announce->group = group_.logical;
    announce->epoch = election_.epoch();
    announce->leader = self();
    network()->Send(std::move(announce));
  }
}

void Replicator::SyncRoleState() {
  if (election_.role() == Role::kLeader) return;
  RetireLeadership();
  if (election_timer_ == sim::kInvalidEvent && !node_->crashed()) {
    ArmElectionTimer(group_.config.election_timeout +
                     ordinal_ * group_.config.election_stagger);
  }
}

// ---------------------------------------------------------------------------
// Apply path
// ---------------------------------------------------------------------------

void Replicator::ApplyCommitted(uint64_t target) {
  target = std::min(target, log_.last_index());
  while (applied_index_ < target) {
    ++applied_index_;
    ApplyEntry(log_.At(applied_index_));
  }
}

void Replicator::ApplyEntry(const ReplEntry& entry) {
  stats_.entries_applied++;
  storage::TransactionEngine& engine = node_->engine();
  const storage::TxnState state = engine.StateOf(entry.xid);
  switch (entry.type) {
    case ReplEntryType::kPrepare:
      break;  // staged only; nothing becomes visible until commit
    case ReplEntryType::kCommit:
      if (state == storage::TxnState::kPrepared ||
          state == storage::TxnState::kActive) {
        // Our engine still holds the branch (this replica led when it
        // executed): a local XA commit releases locks; the data is already
        // in place.
        Status st = engine.Commit(entry.xid, loop()->Now());
        if (st.ok()) break;
        (void)engine.Rollback(entry.xid, loop()->Now());
      }
      // Pure replica apply: idempotent absolute writes.
      for (const protocol::ReplWrite& w : entry.writes) {
        engine.store().Apply(w.key, w.value);
      }
      // Migration-ingest provenance: feed the migrator's journal so a
      // promoted destination leader can decline re-offered chunks.
      if (entry.ingest_migration_id != 0) {
        node_->OnIngestApplied(entry.ingest_migration_id,
                               entry.ingest_chunk_seq, entry.ingest_delta_seq,
                               entry.ingest_content_hash);
      }
      break;
    case ReplEntryType::kAbort:
      if (state == storage::TxnState::kPrepared ||
          state == storage::TxnState::kActive) {
        (void)engine.Rollback(entry.xid, loop()->Now());
      }
      break;
    case ReplEntryType::kMigrationBegin:
    case ReplEntryType::kMigrationCutover:
    case ReplEntryType::kMigrationEnd:
      // Control metadata only: no store effect. Tracking happens at append
      // time; promotion reads unresolved_migrations_.
      break;
  }
}

// ---------------------------------------------------------------------------
// Crash / restart
// ---------------------------------------------------------------------------

void Replicator::OnCrash() {
  if (election_timer_ != sim::kInvalidEvent) {
    loop()->Cancel(election_timer_);
    election_timer_ = sim::kInvalidEvent;
  }
  if (heartbeat_timer_ != sim::kInvalidEvent) {
    loop()->Cancel(heartbeat_timer_);
    heartbeat_timer_ = sim::kInvalidEvent;
  }
  election_.StepDown();
  RetireLeadership();
  pending_bootstrap_.reset();  // reassembly state is volatile
}

void Replicator::OnRestart() {
  last_leader_contact_ = loop()->Now();
  consistent_prefix_ = 0;  // must re-verify the log against the leader
  fresh_as_of_ = -1;
  ArmElectionTimer(group_.config.election_timeout +
                   ordinal_ * group_.config.election_stagger);
}

}  // namespace replication
}  // namespace geotp
