// Replicated WAL storage and the leader-side shipping machinery.
//
// ReplicationLog is the per-replica durable log (survives crashes, like the
// engine WAL it mirrors). LogShipper is active only on the leader: it
// tracks per-follower progress Raft-style (next/match index), retransmits
// unacked entries on the heartbeat tick, and fires quorum callbacks once an
// entry is durable on a majority of the group (leader included).
#ifndef GEOTP_REPLICATION_LOG_SHIPPER_H_
#define GEOTP_REPLICATION_LOG_SHIPPER_H_

#include <algorithm>
#include <deque>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "protocol/messages.h"
#include "replication/replication_config.h"
#include "runtime/runtime.h"
#include "sim/network.h"

namespace geotp {
namespace replication {

/// Sequential log of ReplEntry, 1-based indexing. A compacted prefix
/// (entries every member already applied) may be truncated away: index
/// arithmetic stays global, only storage for [1, offset] is released.
class ReplicationLog {
 public:
  /// Smallest index still stored (offset + 1); may exceed last_index()
  /// when everything was compacted.
  uint64_t first_index() const { return offset_ + 1; }
  uint64_t last_index() const { return offset_ + entries_.size(); }
  bool empty() const { return last_index() == 0; }

  const protocol::ReplEntry& At(uint64_t index) const {
    GEOTP_CHECK(index > offset_ && index <= last_index(),
                "log index " << index << " outside [" << first_index()
                             << ", " << last_index() << "]");
    return entries_[static_cast<size_t>(index - offset_ - 1)];
  }

  /// Epoch of the entry at `index`; also answers at the compaction
  /// boundary (index == offset) and 0 for the log start.
  uint64_t EpochAt(uint64_t index) const {
    if (index == 0) return 0;
    if (index == offset_) return offset_epoch_;
    return At(index).epoch;
  }

  /// Appends at last_index() + 1 and returns the assigned index.
  uint64_t Append(protocol::ReplEntry entry) {
    entry.index = last_index() + 1;
    entries_.push_back(std::move(entry));
    return last_index();
  }

  /// Drops every entry with index >= `from` (divergent-tail repair).
  void TruncateFrom(uint64_t from) {
    GEOTP_CHECK(from > offset_, "tail truncation into compacted prefix");
    if (from <= last_index()) {
      entries_.resize(static_cast<size_t>(from - offset_ - 1));
    }
  }

  /// Highest compacted-away index (0 = nothing compacted).
  uint64_t offset() const { return offset_; }

  /// Snapshot bootstrap: discards everything and positions the (empty)
  /// log at the snapshot boundary, as if [1, offset] had been compacted.
  void ResetTo(uint64_t offset, uint64_t offset_epoch) {
    entries_.clear();
    offset_ = offset;
    offset_epoch_ = offset_epoch;
  }

  /// Compaction: releases every entry with index <= `upto` (clamped).
  /// Returns how many entries were dropped.
  uint64_t TruncatePrefix(uint64_t upto) {
    upto = std::min(upto, last_index());
    if (upto <= offset_) return 0;
    const uint64_t dropped = upto - offset_;
    offset_epoch_ = At(upto).epoch;
    entries_.erase(entries_.begin(),
                   entries_.begin() + static_cast<ptrdiff_t>(dropped));
    offset_ = upto;
    return dropped;
  }

  /// Entries in [from, to] (clamped), for shipping. `from` must not reach
  /// into the compacted prefix.
  std::vector<protocol::ReplEntry> Slice(uint64_t from, uint64_t to) const {
    std::vector<protocol::ReplEntry> out;
    for (uint64_t i = std::max(from, first_index());
         i <= to && i <= last_index(); ++i) {
      out.push_back(At(i));
    }
    return out;
  }

 private:
  std::deque<protocol::ReplEntry> entries_;
  uint64_t offset_ = 0;        ///< highest compacted-away index
  uint64_t offset_epoch_ = 0;  ///< epoch of the entry at offset_
};

struct LogShipperStats {
  uint64_t entries_shipped = 0;
  uint64_t append_batches_shipped = 0;  ///< non-empty ReplAppendRequests
  uint64_t acks_received = 0;
  uint64_t retransmissions = 0;
  uint64_t quorum_callbacks_fired = 0;
  uint64_t snapshots_sent = 0;  ///< bootstrap snapshots to wiped followers
  /// WAN accounting for shipped entry batches: packed size before
  /// compression vs bytes actually put on the wire (equal when a batch
  /// ships raw — pre-negotiation follower or compression disabled).
  uint64_t wan_bytes_raw = 0;
  uint64_t wan_bytes_wire = 0;
};

class LogShipper {
 public:
  using QuorumCallback = std::function<void()>;
  /// Ships a store snapshot to a follower whose next entry was compacted
  /// away (set by the Replicator; reuses the shard snapshot-install path).
  using SnapshotSender = std::function<void(NodeId follower)>;

  LogShipper(NodeId self, runtime::ITransport* network, runtime::ITimer* timer,
             ReplicationLog* log)
      : self_(self), network_(network), timer_(timer), log_(log) {}

  void set_snapshot_sender(SnapshotSender sender) {
    snapshot_sender_ = std::move(sender);
  }

  /// Leader-side compression knob (DataSourceConfig::wan_compression).
  /// Even when on, a batch only compresses after the follower advertised
  /// a shared codec on an ack — until then frames ship raw.
  void set_wan_compression(bool on) { wan_compression_ = on; }

  /// Activates shipping for a leadership term. `floor` is the commit
  /// watermark known when leadership was acquired — the watermark never
  /// regresses below it.
  void Activate(NodeId group, uint64_t epoch, std::vector<NodeId> followers,
                size_t quorum_size, uint64_t floor);
  void Deactivate();
  bool active() const { return active_; }

  uint64_t commit_watermark() const { return commit_watermark_; }
  const LogShipperStats& stats() const { return stats_; }

  /// Appends `entry` to the log and schedules shipping; `on_quorum` runs
  /// once the entry is durable on a quorum. With a quorum of one (or a
  /// group of one), the callback fires synchronously. Pass nullptr for
  /// fire-and-forget entries (aborts). Entries appended within one
  /// event-loop tick leave as ONE ReplAppendRequest per follower, acked as
  /// one batch.
  uint64_t AppendAndShip(protocol::ReplEntry entry, QuorumCallback on_quorum);

  /// Lowest index known replicated on every follower (conservative: 0
  /// until each follower acked). Used as the compaction bound so no
  /// follower is ever asked to accept a truncated-away entry.
  uint64_t MinMatchIndex() const;

  /// Registers an extra quorum callback for an existing entry (decision
  /// retries after failover). Fires immediately if already quorum-durable.
  void AwaitQuorum(uint64_t index, QuorumCallback on_quorum);

  /// Processes a follower ack; advances the watermark and fires callbacks.
  void OnAck(NodeId follower, const protocol::ReplAppendAck& ack);

  /// Heartbeat tick: ships pending entries to lagging followers, empty
  /// heartbeats (with the current watermark) to caught-up ones.
  void Tick();

 private:
  struct Progress {
    uint64_t next_index = 1;   ///< first entry to ship next
    uint64_t match_index = 0;  ///< highest index known replicated
    /// Codecs the follower advertised on its last ack (0 until the first
    /// ack arrives: ship raw so a mixed-version peer always interops).
    uint32_t codec_mask = 0;
  };

  void ShipTo(NodeId follower, Progress& progress);
  /// Coalesced shipping: one delay-0 event per tick ships every pending
  /// entry to every lagging follower in one request each.
  void ScheduleShip();
  void AdvanceWatermark();

  NodeId self_;
  runtime::ITransport* network_;
  runtime::ITimer* timer_;
  ReplicationLog* log_;
  SnapshotSender snapshot_sender_;
  bool wan_compression_ = true;
  bool active_ = false;
  NodeId group_ = kInvalidNode;
  uint64_t epoch_ = 0;
  size_t quorum_size_ = 1;
  bool ship_scheduled_ = false;
  /// Bumped on Activate/Deactivate so stale ship events are no-ops.
  uint64_t activation_ = 0;
  std::unordered_map<NodeId, Progress> followers_;
  uint64_t commit_watermark_ = 0;
  /// Pending quorum callbacks, keyed by entry index (fired in order).
  std::multimap<uint64_t, QuorumCallback> pending_;
  LogShipperStats stats_;
};

}  // namespace replication
}  // namespace geotp

#endif  // GEOTP_REPLICATION_LOG_SHIPPER_H_
