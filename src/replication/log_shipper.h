// Replicated WAL storage and the leader-side shipping machinery.
//
// ReplicationLog is the per-replica durable log (survives crashes, like the
// engine WAL it mirrors). LogShipper is active only on the leader: it
// tracks per-follower progress Raft-style (next/match index), retransmits
// unacked entries on the heartbeat tick, and fires quorum callbacks once an
// entry is durable on a majority of the group (leader included).
#ifndef GEOTP_REPLICATION_LOG_SHIPPER_H_
#define GEOTP_REPLICATION_LOG_SHIPPER_H_

#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "protocol/messages.h"
#include "replication/replication_config.h"
#include "sim/network.h"

namespace geotp {
namespace replication {

/// Sequential log of ReplEntry, 1-based indexing.
class ReplicationLog {
 public:
  uint64_t last_index() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  const protocol::ReplEntry& At(uint64_t index) const {
    return entries_[static_cast<size_t>(index - 1)];
  }

  /// Appends at last_index() + 1 and returns the assigned index.
  uint64_t Append(protocol::ReplEntry entry) {
    entry.index = last_index() + 1;
    entries_.push_back(std::move(entry));
    return last_index();
  }

  /// Drops every entry with index >= `from`.
  void TruncateFrom(uint64_t from) {
    if (from <= entries_.size()) {
      entries_.resize(static_cast<size_t>(from - 1));
    }
  }

  /// Entries in [from, to] (clamped), for shipping.
  std::vector<protocol::ReplEntry> Slice(uint64_t from, uint64_t to) const {
    std::vector<protocol::ReplEntry> out;
    for (uint64_t i = from; i <= to && i <= last_index(); ++i) {
      out.push_back(At(i));
    }
    return out;
  }

 private:
  std::vector<protocol::ReplEntry> entries_;
};

struct LogShipperStats {
  uint64_t entries_shipped = 0;
  uint64_t acks_received = 0;
  uint64_t retransmissions = 0;
  uint64_t quorum_callbacks_fired = 0;
};

class LogShipper {
 public:
  using QuorumCallback = std::function<void()>;

  LogShipper(NodeId self, sim::Network* network, ReplicationLog* log)
      : self_(self), network_(network), log_(log) {}

  /// Activates shipping for a leadership term. `floor` is the commit
  /// watermark known when leadership was acquired — the watermark never
  /// regresses below it.
  void Activate(NodeId group, uint64_t epoch, std::vector<NodeId> followers,
                size_t quorum_size, uint64_t floor);
  void Deactivate();
  bool active() const { return active_; }

  uint64_t commit_watermark() const { return commit_watermark_; }
  const LogShipperStats& stats() const { return stats_; }

  /// Appends `entry` to the log, ships it, and runs `on_quorum` once the
  /// entry is durable on a quorum. With a quorum of one (or a group of
  /// one), the callback fires synchronously. Pass nullptr for
  /// fire-and-forget entries (aborts).
  uint64_t AppendAndShip(protocol::ReplEntry entry, QuorumCallback on_quorum);

  /// Registers an extra quorum callback for an existing entry (decision
  /// retries after failover). Fires immediately if already quorum-durable.
  void AwaitQuorum(uint64_t index, QuorumCallback on_quorum);

  /// Processes a follower ack; advances the watermark and fires callbacks.
  void OnAck(NodeId follower, const protocol::ReplAppendAck& ack);

  /// Heartbeat tick: ships pending entries to lagging followers, empty
  /// heartbeats (with the current watermark) to caught-up ones.
  void Tick();

 private:
  struct Progress {
    uint64_t next_index = 1;   ///< first entry to ship next
    uint64_t match_index = 0;  ///< highest index known replicated
  };

  void ShipTo(NodeId follower, Progress& progress);
  void AdvanceWatermark();

  NodeId self_;
  sim::Network* network_;
  ReplicationLog* log_;
  bool active_ = false;
  NodeId group_ = kInvalidNode;
  uint64_t epoch_ = 0;
  size_t quorum_size_ = 1;
  std::unordered_map<NodeId, Progress> followers_;
  uint64_t commit_watermark_ = 0;
  /// Pending quorum callbacks, keyed by entry index (fired in order).
  std::multimap<uint64_t, QuorumCallback> pending_;
  LogShipperStats stats_;
};

}  // namespace replication
}  // namespace geotp

#endif  // GEOTP_REPLICATION_LOG_SHIPPER_H_
