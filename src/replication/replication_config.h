// Configuration of one replica group (leader-follower log shipping).
//
// Each DataSourceNode can lead (or follow in) a replica group identified by
// the *logical* node id — the id the catalog routes keys to, which stays
// stable across failovers. Group membership is fixed at deployment time;
// leadership moves between members via election epochs.
#ifndef GEOTP_REPLICATION_REPLICATION_CONFIG_H_
#define GEOTP_REPLICATION_REPLICATION_CONFIG_H_

#include <vector>

#include "common/types.h"

namespace geotp {
namespace replication {

struct ReplicationConfig {
  /// Leader -> follower heartbeat (also drives retransmission of entries
  /// followers have not acked yet).
  Micros heartbeat_interval = MsToMicros(20);
  /// A follower that has not heard from a leader for this long starts an
  /// election. Staggered per replica ordinal so elections do not collide.
  Micros election_timeout = MsToMicros(120);
  Micros election_stagger = MsToMicros(40);
  /// Candidate retry backoff after a failed (split / refused) election.
  Micros election_retry_backoff = MsToMicros(60);
};

/// Deployment wiring of one replica group.
struct GroupConfig {
  /// Logical data source id = the seed leader's node id. Catalog routes and
  /// Xids use this id; it survives failovers.
  NodeId logical = kInvalidNode;
  /// All members (the seed leader first, then followers). A member's
  /// position here is its ordinal for election staggering.
  std::vector<NodeId> replicas;
  /// Middlewares to announce leadership changes to.
  std::vector<NodeId> middlewares;
  ReplicationConfig config;

  size_t QuorumSize() const { return replicas.size() / 2 + 1; }
};

}  // namespace replication
}  // namespace geotp

#endif  // GEOTP_REPLICATION_REPLICATION_CONFIG_H_
