#include "obs/profiler.h"

#include <sstream>

namespace geotp {
namespace obs {

void Profiler::RecordHandler(int msg_type, uint64_t ns) {
  if (msg_type < 0 || msg_type >= kMaxMessageTypes) return;
  handlers_[msg_type].Record(ns);
}

const ProfileSlot& Profiler::handler_slot(int msg_type) const {
  static const ProfileSlot empty;
  if (msg_type < 0 || msg_type >= kMaxMessageTypes) return empty;
  return handlers_[msg_type];
}

void Profiler::Reset() {
  for (ProfileSlot& slot : handlers_) slot.Reset();
  queue_wait_.Reset();
  timer_lag_.Reset();
  task_.Reset();
}

namespace {

void WriteSlot(std::ostream& os, const ProfileSlot& slot) {
  const uint64_t count = slot.count.load(std::memory_order_relaxed);
  const uint64_t total = slot.total.load(std::memory_order_relaxed);
  const uint64_t max = slot.max.load(std::memory_order_relaxed);
  os << "{\"count\":" << count << ",\"total\":" << total
     << ",\"max\":" << max << ",\"mean\":"
     << (count == 0 ? 0.0
                    : static_cast<double>(total) /
                          static_cast<double>(count))
     << "}";
}

}  // namespace

std::string Profiler::ReportJson() const {
  std::ostringstream os;
  os << "{\"handlers_ns\":{";
  bool first = true;
  for (int t = 0; t < kMaxMessageTypes; ++t) {
    if (handlers_[t].count.load(std::memory_order_relaxed) == 0) continue;
    if (!first) os << ",";
    first = false;
    os << "\"" << t << "\":";
    WriteSlot(os, handlers_[t]);
  }
  os << "},\"queue_wait_ns\":";
  WriteSlot(os, queue_wait_);
  os << ",\"timer_lag_us\":";
  WriteSlot(os, timer_lag_);
  os << ",\"task_ns\":";
  WriteSlot(os, task_);
  os << "}";
  return os.str();
}

Profiler& GlobalProfiler() {
  static Profiler profiler;
  return profiler;
}

}  // namespace obs
}  // namespace geotp
