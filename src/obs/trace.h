// Distributed tracing: follow one transaction across the DM, the data
// sources, the replication quorum, and the migrator — on either runtime
// backend.
//
// A TraceContext (trace_id, span_id, parent) rides the protocol envelopes
// (see runtime/message.h and the codec): the DM samples a transaction at
// admission, opens the root span, and stamps the context onto every
// envelope it sends for that transaction; each hop opens child spans under
// the context it received. Spans are explicit begin/end pairs (the
// protocol stack is callback-driven, so RAII scoping does not fit) stored
// in a process-global Tracer.
//
// Tracing is OFF by default: `Tracer::enabled()` is a single relaxed
// atomic load and no call site draws randomness or allocates while it is
// false, so tier-1 runs are bit-identical to a build without tracing
// (same pattern as OverloadConfig). Sampling draws from a dedicated
// per-DM Rng stream, so even a fully-sampled run leaves every scheduling
// decision unchanged.
//
// Export: Chrome trace-event JSON ("X" complete events, loadable in
// Perfetto / chrome://tracing; pid = process, tid = node) and a
// slowest-K-transactions exemplar report. A line-oriented text dump
// supports merging spans from multiple OS processes (the loopback smoke).
#ifndef GEOTP_OBS_TRACE_H_
#define GEOTP_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.h"

namespace geotp {
namespace obs {

/// Propagated next to the transaction ids in every protocol envelope.
/// trace_id == 0 means "not sampled" — the wire codec then emits a single
/// absence byte and nothing downstream records spans.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;         ///< the sender's enclosing span
  uint64_t parent_span_id = 0;  ///< that span's own parent

  bool valid() const { return trace_id != 0; }
};

/// One recorded span. `end < start` (kOpenEnd) marks a span that never
/// closed (crash, or still open at export time); exporters render it with
/// zero duration rather than dropping it.
struct SpanRecord {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  std::string name;
  NodeId node = kInvalidNode;
  Micros start = 0;
  Micros end = -1;

  Micros Duration() const { return end < start ? 0 : end - start; }
};

struct TraceConfig {
  /// Fraction of transactions the DM samples; 0 disables tracing entirely
  /// (tier-1 default), 1 traces everything.
  double sample_rate = 0.0;
  /// Hard cap on stored spans; beyond it spans are counted but dropped.
  size_t max_spans = 1 << 20;
  /// Exemplar count for the slowest-transactions report.
  size_t slowest_k = 8;
};

/// Spans not tied to a sampled transaction (failover promotions, migration
/// chunk streams) record under this well-known trace id.
constexpr uint64_t kSystemTraceId = 1;
inline TraceContext SystemContext() { return TraceContext{kSystemTraceId, 0, 0}; }

/// Opaque handle returned by BeginSpan; 0 = not recording.
using SpanHandle = uint64_t;
constexpr SpanHandle kInvalidSpan = 0;

/// Process-global span store. Thread-safe: the loopback runtime records
/// from many executor threads. Obtain via GlobalTracer().
class Tracer {
 public:
  void Enable(const TraceConfig& config);
  void Disable();

  /// Fast path guard — a relaxed atomic load, safe to call at any rate.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  double sample_rate() const;

  /// Sampling decision for a new transaction; `u01` is a uniform [0,1)
  /// draw from the caller's dedicated trace Rng. False when disabled.
  bool Sample(double u01) const;

  /// Starts a new trace (root context). `random` seeds the trace id
  /// (mixed with `node` so ids from different processes cannot collide).
  TraceContext NewTrace(uint64_t random, NodeId node);

  /// Opens a span under `parent`. Returns kInvalidSpan (and records
  /// nothing) when disabled or the parent context is invalid. When
  /// `child_ctx` is non-null it receives the context downstream hops
  /// should be stamped with (trace_id, this span, parent span).
  SpanHandle BeginSpan(const TraceContext& parent, const char* name,
                       NodeId node, Micros start,
                       TraceContext* child_ctx = nullptr);

  /// Closes a span opened by BeginSpan. No-op on kInvalidSpan.
  void EndSpan(SpanHandle handle, Micros end);

  std::vector<SpanRecord> Snapshot() const;
  size_t span_count() const;
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  /// Clears recorded spans (the enabled state is unchanged).
  void Reset();

  /// Chrome trace-event JSON for this process's spans (`pid` tags the
  /// process; tid = node id).
  void ExportChromeTrace(std::ostream& os, int pid) const;

  /// Line-oriented dump for cross-process merging (see ReadSpansText).
  void DumpText(std::ostream& os) const;

 private:
  uint64_t NextSpanId(NodeId node);

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_id_{1};
  std::atomic<uint64_t> dropped_{0};
  mutable std::mutex mu_;
  TraceConfig config_;
  std::vector<SpanRecord> spans_;
};

Tracer& GlobalTracer();

/// Parses a DumpText stream, appending to `out`. Returns spans read.
size_t ReadSpansText(std::istream& is, std::vector<SpanRecord>* out);

/// Full Chrome trace-event document for spans from one or more processes:
/// {"traceEvents":[...]} with one "X" event per span.
std::string ChromeTraceJson(
    const std::vector<std::pair<int, std::vector<SpanRecord>>>& per_pid);

/// Human-readable slowest-K report: root spans (transactions) ranked by
/// duration, each with its per-span breakdown.
std::string SlowestTracesReport(const std::vector<SpanRecord>& spans,
                                size_t k);

}  // namespace obs
}  // namespace geotp

#endif  // GEOTP_OBS_TRACE_H_
