#include "obs/trace.h"

#include <algorithm>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>

namespace geotp {
namespace obs {

namespace {

// splitmix64 finalizer: spreads the (node, counter) structure of raw ids
// across the whole word so trace/span ids look random in exports.
uint64_t Mix(uint64_t h) {
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

void JsonEscape(std::ostream& os, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      os << ' ';
    } else {
      os << c;
    }
  }
}

void WriteChromeEvent(std::ostream& os, const SpanRecord& s, int pid,
                      bool* first) {
  if (!*first) os << ",\n";
  *first = false;
  os << "{\"name\":\"";
  JsonEscape(os, s.name);
  os << "\",\"ph\":\"X\",\"ts\":" << s.start
     << ",\"dur\":" << s.Duration() << ",\"pid\":" << pid
     << ",\"tid\":" << s.node << ",\"args\":{\"trace_id\":\"" << std::hex
     << s.trace_id << "\",\"span_id\":\"" << s.span_id
     << "\",\"parent\":\"" << s.parent_span_id << std::dec << "\"}}";
}

}  // namespace

void Tracer::Enable(const TraceConfig& config) {
  std::lock_guard<std::mutex> lock(mu_);
  config_ = config;
  enabled_.store(config.sample_rate > 0.0, std::memory_order_relaxed);
}

void Tracer::Disable() {
  enabled_.store(false, std::memory_order_relaxed);
}

double Tracer::sample_rate() const {
  std::lock_guard<std::mutex> lock(mu_);
  return config_.sample_rate;
}

bool Tracer::Sample(double u01) const {
  if (!enabled()) return false;
  std::lock_guard<std::mutex> lock(mu_);
  return u01 < config_.sample_rate;
}

uint64_t Tracer::NextSpanId(NodeId node) {
  const uint64_t seq = next_id_.fetch_add(1, std::memory_order_relaxed);
  // Node in the high bits keeps ids from different OS processes (which
  // each count from 1) disjoint before the mix even runs.
  uint64_t id = Mix((static_cast<uint64_t>(node + 1) << 40) ^ seq);
  if (id == 0) id = 1;
  return id;
}

TraceContext Tracer::NewTrace(uint64_t random, NodeId node) {
  uint64_t id = Mix(random ^ (static_cast<uint64_t>(node + 1) << 40));
  // 0 is "unsampled" and kSystemTraceId is reserved.
  if (id <= kSystemTraceId) id += 2;
  return TraceContext{id, 0, 0};
}

SpanHandle Tracer::BeginSpan(const TraceContext& parent, const char* name,
                             NodeId node, Micros start,
                             TraceContext* child_ctx) {
  if (!enabled() || !parent.valid()) return kInvalidSpan;
  SpanRecord rec;
  rec.trace_id = parent.trace_id;
  rec.span_id = NextSpanId(node);
  rec.parent_span_id = parent.span_id;
  rec.name = name;
  rec.node = node;
  rec.start = start;
  if (child_ctx != nullptr) {
    *child_ctx =
        TraceContext{rec.trace_id, rec.span_id, rec.parent_span_id};
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (spans_.size() >= config_.max_spans) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return kInvalidSpan;
  }
  spans_.push_back(std::move(rec));
  return spans_.size();  // index + 1
}

void Tracer::EndSpan(SpanHandle handle, Micros end) {
  if (handle == kInvalidSpan) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (handle > spans_.size()) return;
  spans_[handle - 1].end = end;
}

std::vector<SpanRecord> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

size_t Tracer::span_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

void Tracer::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

void Tracer::ExportChromeTrace(std::ostream& os, int pid) const {
  os << "{\"traceEvents\":[\n";
  bool first = true;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const SpanRecord& s : spans_) {
      WriteChromeEvent(os, s, pid, &first);
    }
  }
  os << "\n]}\n";
}

void Tracer::DumpText(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const SpanRecord& s : spans_) {
    os << "span " << s.trace_id << ' ' << s.span_id << ' '
       << s.parent_span_id << ' ' << s.name << ' ' << s.node << ' '
       << s.start << ' ' << s.end << '\n';
  }
}

Tracer& GlobalTracer() {
  static Tracer tracer;
  return tracer;
}

size_t ReadSpansText(std::istream& is, std::vector<SpanRecord>* out) {
  size_t read = 0;
  std::string tag;
  while (is >> tag) {
    if (tag != "span") {
      // Skip the rest of an unrecognized line.
      std::string rest;
      std::getline(is, rest);
      continue;
    }
    SpanRecord s;
    if (!(is >> s.trace_id >> s.span_id >> s.parent_span_id >> s.name >>
          s.node >> s.start >> s.end)) {
      break;
    }
    out->push_back(std::move(s));
    ++read;
  }
  return read;
}

std::string ChromeTraceJson(
    const std::vector<std::pair<int, std::vector<SpanRecord>>>& per_pid) {
  std::ostringstream os;
  os << "{\"traceEvents\":[\n";
  bool first = true;
  for (const auto& [pid, spans] : per_pid) {
    for (const SpanRecord& s : spans) {
      WriteChromeEvent(os, s, pid, &first);
    }
  }
  os << "\n]}\n";
  return os.str();
}

std::string SlowestTracesReport(const std::vector<SpanRecord>& spans,
                                size_t k) {
  // A trace's duration is its root span's (parent == 0, non-system).
  std::vector<const SpanRecord*> roots;
  std::map<uint64_t, std::vector<const SpanRecord*>> by_trace;
  for (const SpanRecord& s : spans) {
    if (s.trace_id == kSystemTraceId) continue;
    by_trace[s.trace_id].push_back(&s);
    if (s.parent_span_id == 0) roots.push_back(&s);
  }
  std::sort(roots.begin(), roots.end(),
            [](const SpanRecord* a, const SpanRecord* b) {
              return a->Duration() > b->Duration();
            });
  if (roots.size() > k) roots.resize(k);

  std::ostringstream os;
  os << "slowest " << roots.size() << " traces ("
     << by_trace.size() << " sampled):\n";
  for (const SpanRecord* root : roots) {
    os << "  trace " << std::hex << root->trace_id << std::dec << " "
       << root->name << " " << root->Duration() << "us\n";
    auto& members = by_trace[root->trace_id];
    std::sort(members.begin(), members.end(),
              [](const SpanRecord* a, const SpanRecord* b) {
                return a->start < b->start;
              });
    for (const SpanRecord* s : members) {
      if (s == root) continue;
      os << "    +" << (s->start - root->start) << "us " << s->name
         << " node=" << s->node << " " << s->Duration() << "us\n";
    }
  }
  return os.str();
}

}  // namespace obs
}  // namespace geotp
