#include "obs/metrics_registry.h"

#include <sstream>

namespace geotp {
namespace obs {

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

void MetricsRegistry::RegisterGauge(const std::string& name, GaugeFn fn) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[name] = std::move(fn);
}

void MetricsRegistry::RegisterHistogram(const std::string& name,
                                        HistogramFn fn) {
  std::lock_guard<std::mutex> lock(mu_);
  histograms_[name] = std::move(fn);
}

void MetricsRegistry::Sample(Micros now) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, double>> point;
  point.reserve(gauges_.size());
  for (const auto& [name, fn] : gauges_) {
    point.emplace_back(name, fn());
  }
  samples_.emplace_back(now, std::move(point));
  if (samples_.size() > kMaxSamples) {
    samples_.erase(samples_.begin(),
                   samples_.begin() +
                       static_cast<long>(samples_.size() - kMaxSamples));
  }
}

namespace {

void JsonKey(std::ostream& os, const std::string& name) {
  os << '"';
  for (char c : name) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << "\":";
}

}  // namespace

std::string MetricsRegistry::SnapshotJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) os << ",";
    first = false;
    JsonKey(os, name);
    os << counter->value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, fn] : gauges_) {
    if (!first) os << ",";
    first = false;
    JsonKey(os, name);
    os << fn();
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, fn] : histograms_) {
    const metrics::Histogram* h = fn();
    if (h == nullptr) continue;
    if (!first) os << ",";
    first = false;
    JsonKey(os, name);
    os << "{\"count\":" << h->count() << ",\"mean_us\":" << h->Mean()
       << ",\"p50_us\":" << h->P50() << ",\"p95_us\":" << h->P95()
       << ",\"p99_us\":" << h->P99() << ",\"max_us\":" << h->max() << "}";
  }
  os << "},\"samples\":[";
  first = true;
  for (const auto& [when, point] : samples_) {
    if (!first) os << ",";
    first = false;
    os << "{\"t_us\":" << when << ",\"values\":{";
    bool pfirst = true;
    for (const auto& [name, value] : point) {
      if (!pfirst) os << ",";
      pfirst = false;
      JsonKey(os, name);
      os << value;
    }
    os << "}}";
  }
  os << "]}";
  return os.str();
}

void MetricsRegistry::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  samples_.clear();
}

size_t MetricsRegistry::gauge_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return gauges_.size();
}

size_t MetricsRegistry::sample_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_.size();
}

MetricsRegistry& GlobalMetrics() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace obs
}  // namespace geotp
