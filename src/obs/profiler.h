// Event-loop / executor profiler for both runtime backends.
//
// Answers "where does execution time go" at the runtime layer, which the
// ROADMAP's sim-perf direction needs before the fig05 sweep can grow from
// 1k to tens of thousands of terminals:
//
//  * per-message-type handler wall time — sampled around the delivery
//    callback in sim::Network (host time spent simulating each message
//    kind) and around the mailbox dispatch in the loopback ActorExecutor;
//  * queue-wait time — loopback only: host ns between a message being
//    posted to an executor's mailbox and the executor picking it up;
//  * timer-fire lag — loopback only: how late each timer callback ran
//    versus its deadline (in the sim backend virtual timers fire exactly
//    on time, so the lag is definitionally zero and is not recorded).
//
// All counters are relaxed atomics so many executor threads can record
// concurrently; `enabled()` is one relaxed load and the hooks do nothing
// else when it is false, keeping tier-1 behaviour identical.
#ifndef GEOTP_OBS_PROFILER_H_
#define GEOTP_OBS_PROFILER_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace geotp {
namespace obs {

/// One accumulation slot: count / total / max, all relaxed atomics.
struct ProfileSlot {
  std::atomic<uint64_t> count{0};
  std::atomic<uint64_t> total{0};
  std::atomic<uint64_t> max{0};

  void Record(uint64_t value) {
    count.fetch_add(1, std::memory_order_relaxed);
    total.fetch_add(value, std::memory_order_relaxed);
    uint64_t prev = max.load(std::memory_order_relaxed);
    while (value > prev &&
           !max.compare_exchange_weak(prev, value,
                                      std::memory_order_relaxed)) {
    }
  }

  void Reset() {
    count.store(0, std::memory_order_relaxed);
    total.store(0, std::memory_order_relaxed);
    max.store(0, std::memory_order_relaxed);
  }
};

class Profiler {
 public:
  /// One slot per runtime::MessageType value, with headroom for growth.
  static constexpr int kMaxMessageTypes = 64;

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Host nanoseconds the handler for `msg_type` ran.
  void RecordHandler(int msg_type, uint64_t ns);
  /// Host nanoseconds a message waited in an executor mailbox.
  void RecordQueueWait(uint64_t ns) { queue_wait_.Record(ns); }
  /// Microseconds a timer fired past its deadline.
  void RecordTimerLag(uint64_t us) { timer_lag_.Record(us); }
  /// Host nanoseconds a posted (non-message) task ran.
  void RecordTask(uint64_t ns) { task_.Record(ns); }

  const ProfileSlot& handler_slot(int msg_type) const;
  const ProfileSlot& queue_wait() const { return queue_wait_; }
  const ProfileSlot& timer_lag() const { return timer_lag_; }

  void Reset();

  /// JSON report: per-message-type handler profile (named via the codec's
  /// type values), queue wait, timer lag, posted tasks.
  std::string ReportJson() const;

 private:
  std::atomic<bool> enabled_{false};
  ProfileSlot handlers_[kMaxMessageTypes];
  ProfileSlot queue_wait_;
  ProfileSlot timer_lag_;
  ProfileSlot task_;
};

Profiler& GlobalProfiler();

}  // namespace obs
}  // namespace geotp

#endif  // GEOTP_OBS_PROFILER_H_
