// MetricsRegistry: one named surface over the scattered stats structs.
//
// The subsystems already keep careful counters (MiddlewareStats,
// DataSourceStats, ReplicatorStats, ShardMigratorStats, RunStats, ...) —
// what was missing is a uniform way to snapshot and export them. The
// registry therefore does not replace the structs or their increment
// sites; it overlays them:
//
//  * counters  — owned relaxed-atomic uint64s for new instrumentation;
//  * gauges    — callbacks evaluated at snapshot/sample time, which is how
//    the existing structs are absorbed (each node registers closures that
//    read its own stats; see MiddlewareNode/DataSourceNode::RegisterMetrics);
//  * histograms — callbacks returning a metrics::Histogram* whose
//    count/mean/p50/p99 land in the snapshot.
//
// Export is a JSON document (SnapshotJson). Periodic sampling rides the
// DM's latency-monitor ping tick: Sample(now) evaluates every gauge and
// appends a point to a bounded time series included in the export.
//
// Callback lifetime: gauges borrow the objects they read. Snapshot or
// sample only while the deployment is alive (the runner snapshots before
// teardown), or clear callbacks with Clear().
#ifndef GEOTP_OBS_METRICS_REGISTRY_H_
#define GEOTP_OBS_METRICS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"
#include "metrics/histogram.h"

namespace geotp {
namespace obs {

/// Owned monotonic counter. Pointer-stable for the registry's lifetime.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

class MetricsRegistry {
 public:
  using GaugeFn = std::function<double()>;
  using HistogramFn = std::function<const metrics::Histogram*()>;

  /// Returns (creating on first use) the counter named `name`.
  Counter* counter(const std::string& name);

  /// Registers a gauge evaluated at snapshot/sample time. Re-registering
  /// a name replaces the callback.
  void RegisterGauge(const std::string& name, GaugeFn fn);

  /// Registers a histogram source; the snapshot stores its summary.
  void RegisterHistogram(const std::string& name, HistogramFn fn);

  /// Evaluates every gauge and appends a (now, values) point to the
  /// bounded series (oldest points are discarded past kMaxSamples).
  void Sample(Micros now);

  /// Full JSON export: counters, gauges (current values), histogram
  /// summaries, and the sampled series.
  std::string SnapshotJson() const;

  /// Drops every metric, callback, and sample.
  void Clear();

  size_t gauge_count() const;
  size_t sample_count() const;

 private:
  static constexpr size_t kMaxSamples = 4096;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, GaugeFn> gauges_;
  std::map<std::string, HistogramFn> histograms_;
  /// Gauge names frozen at each sample (gauges may register after the
  /// first sample; points carry their own name list).
  std::vector<std::pair<Micros, std::vector<std::pair<std::string, double>>>>
      samples_;
};

MetricsRegistry& GlobalMetrics();

}  // namespace obs
}  // namespace geotp

#endif  // GEOTP_OBS_METRICS_REGISTRY_H_
