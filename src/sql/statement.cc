#include "sql/statement.h"

#include <sstream>

namespace geotp {
namespace sql {

const char* StatementTypeName(StatementType type) {
  switch (type) {
    case StatementType::kBegin:
      return "BEGIN";
    case StatementType::kSelect:
      return "SELECT";
    case StatementType::kUpdate:
      return "UPDATE";
    case StatementType::kCommit:
      return "COMMIT";
    case StatementType::kRollback:
      return "ROLLBACK";
  }
  return "?";
}

std::string ParsedStatement::ToString() const {
  std::ostringstream oss;
  oss << StatementTypeName(type);
  if (IsDml()) {
    oss << " " << table << " key=" << key;
    if (IsWrite()) {
      oss << " val" << (is_delta ? "+=" : "=") << value;
    }
  }
  if (is_last) oss << " /*last*/";
  return oss.str();
}

}  // namespace sql
}  // namespace geotp
