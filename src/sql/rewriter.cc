#include "sql/rewriter.h"

#include <sstream>

namespace geotp {
namespace sql {

const char* DialectName(Dialect dialect) {
  switch (dialect) {
    case Dialect::kMySql:
      return "mysql";
    case Dialect::kPostgres:
      return "postgresql";
  }
  return "?";
}

std::string Rewriter::XidLiteral(const Xid& xid) {
  std::ostringstream oss;
  oss << "'" << xid.txn_id << ",node" << xid.data_source << "'";
  return oss.str();
}

std::vector<std::string> Rewriter::BranchBegin(Dialect dialect,
                                               const Xid& xid) {
  switch (dialect) {
    case Dialect::kMySql:
      return {"XA START " + XidLiteral(xid) + ";"};
    case Dialect::kPostgres:
      return {"BEGIN;"};
  }
  return {};
}

std::string Rewriter::RewriteDml(Dialect dialect,
                                 const ParsedStatement& stmt) {
  std::ostringstream oss;
  if (stmt.type == StatementType::kSelect) {
    oss << "SELECT val FROM " << stmt.table << " WHERE key = " << stmt.key;
    if (dialect == Dialect::kPostgres) {
      // Explicit shared lock: PostgreSQL SSI would otherwise not take a
      // record lock for plain reads (paper §VII-A3 rewrites reads this way).
      oss << " FOR SHARE";
    } else {
      oss << " LOCK IN SHARE MODE";
    }
    oss << ";";
    return oss.str();
  }
  oss << "UPDATE " << stmt.table << " SET val = ";
  if (stmt.is_delta) oss << "val + ";
  oss << stmt.value << " WHERE key = " << stmt.key << ";";
  return oss.str();
}

std::vector<std::string> Rewriter::BranchPrepare(Dialect dialect,
                                                 const Xid& xid) {
  switch (dialect) {
    case Dialect::kMySql:
      return {"XA END " + XidLiteral(xid) + ";",
              "XA PREPARE " + XidLiteral(xid) + ";"};
    case Dialect::kPostgres:
      return {"PREPARE TRANSACTION " + XidLiteral(xid) + ";"};
  }
  return {};
}

std::string Rewriter::BranchCommit(Dialect dialect, const Xid& xid) {
  switch (dialect) {
    case Dialect::kMySql:
      return "XA COMMIT " + XidLiteral(xid) + ";";
    case Dialect::kPostgres:
      return "COMMIT PREPARED " + XidLiteral(xid) + ";";
  }
  return {};
}

std::string Rewriter::BranchCommitOnePhase(Dialect dialect, const Xid& xid) {
  switch (dialect) {
    case Dialect::kMySql:
      return "XA COMMIT " + XidLiteral(xid) + " ONE PHASE;";
    case Dialect::kPostgres:
      return "COMMIT;";
  }
  return {};
}

std::string Rewriter::BranchRollback(Dialect dialect, const Xid& xid,
                                     bool prepared) {
  switch (dialect) {
    case Dialect::kMySql:
      return "XA ROLLBACK " + XidLiteral(xid) + ";";
    case Dialect::kPostgres:
      return prepared ? "ROLLBACK PREPARED " + XidLiteral(xid) + ";"
                      : "ROLLBACK;";
  }
  return {};
}

}  // namespace sql
}  // namespace geotp
