#include "sql/parser.h"

#include <cctype>
#include <charconv>

namespace geotp {
namespace sql {

namespace {

bool IsLastAnnotation(std::string_view comment) {
  // Accepted spellings: "last statement", "geotp:last" (case-insensitive).
  std::string lower;
  lower.reserve(comment.size());
  for (char c : comment) lower.push_back(static_cast<char>(std::tolower(c)));
  return lower.find("last statement") != std::string::npos ||
         lower.find("geotp:last") != std::string::npos;
}

}  // namespace

std::string Parser::StripComments(std::string_view sql, bool* is_last) {
  std::string out;
  out.reserve(sql.size());
  *is_last = false;
  size_t i = 0;
  while (i < sql.size()) {
    if (i + 1 < sql.size() && sql[i] == '/' && sql[i + 1] == '*') {
      const size_t close = sql.find("*/", i + 2);
      const size_t end = close == std::string_view::npos ? sql.size() : close;
      if (IsLastAnnotation(sql.substr(i + 2, end - i - 2))) *is_last = true;
      i = close == std::string_view::npos ? sql.size() : close + 2;
      out.push_back(' ');
      continue;
    }
    if (i + 1 < sql.size() && sql[i] == '-' && sql[i + 1] == '-') {
      const size_t nl = sql.find('\n', i);
      if (nl == std::string_view::npos) {
        if (IsLastAnnotation(sql.substr(i + 2))) *is_last = true;
        break;
      }
      if (IsLastAnnotation(sql.substr(i + 2, nl - i - 2))) *is_last = true;
      i = nl + 1;
      out.push_back(' ');
      continue;
    }
    out.push_back(sql[i]);
    ++i;
  }
  return out;
}

Result<std::vector<Parser::Token>> Parser::Tokenize(std::string_view sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  while (i < sql.size()) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      Token tok;
      tok.kind = Token::Kind::kWord;
      while (i < sql.size() &&
             (std::isalnum(static_cast<unsigned char>(sql[i])) ||
              sql[i] == '_')) {
        tok.text.push_back(
            static_cast<char>(std::toupper(static_cast<unsigned char>(sql[i]))));
        ++i;
      }
      tokens.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < sql.size() &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      Token tok;
      tok.kind = Token::Kind::kNumber;
      std::string digits;
      if (c == '-') {
        digits.push_back('-');
        ++i;
      }
      while (i < sql.size() &&
             std::isdigit(static_cast<unsigned char>(sql[i]))) {
        digits.push_back(sql[i]);
        ++i;
      }
      const auto [ptr, ec] = std::from_chars(
          digits.data(), digits.data() + digits.size(), tok.number);
      if (ec != std::errc() || ptr != digits.data() + digits.size()) {
        return Status::InvalidArgument("number out of range: " + digits);
      }
      tokens.push_back(std::move(tok));
      continue;
    }
    if (c == '=' || c == '+' || c == ';' || c == ',' || c == '*' ||
        c == '(' || c == ')' || c == '\'') {
      Token tok;
      tok.kind = Token::Kind::kSymbol;
      tok.text.push_back(c);
      tokens.push_back(std::move(tok));
      ++i;
      continue;
    }
    return Status::InvalidArgument(std::string("unexpected character '") + c +
                                   "'");
  }
  tokens.push_back(Token{});  // kEnd sentinel
  return tokens;
}

Result<ParsedStatement> Parser::Parse(std::string_view sql) const {
  bool is_last = false;
  const std::string stripped = StripComments(sql, &is_last);
  GEOTP_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(stripped));

  ParsedStatement stmt;
  stmt.is_last = is_last;

  size_t pos = 0;
  auto peek = [&]() -> const Token& { return tokens[pos]; };
  auto advance = [&]() -> const Token& { return tokens[pos++]; };
  auto expect_word = [&](const char* word) -> Status {
    const Token& tok = advance();
    if (tok.kind != Token::Kind::kWord || tok.text != word) {
      return Status::InvalidArgument(std::string("expected ") + word);
    }
    return Status::OK();
  };
  auto expect_symbol = [&](char sym) -> Status {
    const Token& tok = advance();
    if (tok.kind != Token::Kind::kSymbol || tok.text[0] != sym) {
      return Status::InvalidArgument(std::string("expected '") + sym + "'");
    }
    return Status::OK();
  };
  auto expect_number = [&](int64_t* out) -> Status {
    const Token& tok = advance();
    if (tok.kind != Token::Kind::kNumber) {
      return Status::InvalidArgument("expected number");
    }
    *out = tok.number;
    return Status::OK();
  };
  auto at_end = [&]() -> Status {
    // Optional trailing ';'.
    if (peek().kind == Token::Kind::kSymbol && peek().text[0] == ';') {
      ++pos;
    }
    if (peek().kind != Token::Kind::kEnd) {
      return Status::InvalidArgument("trailing tokens after statement");
    }
    return Status::OK();
  };

  const Token& head = advance();
  if (head.kind != Token::Kind::kWord) {
    return Status::InvalidArgument("empty statement");
  }

  if (head.text == "BEGIN" || head.text == "START") {
    if (head.text == "START") GEOTP_RETURN_NOT_OK(expect_word("TRANSACTION"));
    stmt.type = StatementType::kBegin;
    GEOTP_RETURN_NOT_OK(at_end());
    return stmt;
  }
  if (head.text == "COMMIT") {
    stmt.type = StatementType::kCommit;
    GEOTP_RETURN_NOT_OK(at_end());
    return stmt;
  }
  if (head.text == "ROLLBACK" || head.text == "ABORT") {
    stmt.type = StatementType::kRollback;
    GEOTP_RETURN_NOT_OK(at_end());
    return stmt;
  }
  if (head.text == "SELECT") {
    stmt.type = StatementType::kSelect;
    // SELECT val FROM <table> WHERE key = <n>
    // (also tolerate SELECT * FROM ...)
    const Token& col = advance();
    if (col.kind == Token::Kind::kSymbol && col.text[0] == '*') {
      // fine
    } else if (col.kind != Token::Kind::kWord) {
      return Status::InvalidArgument("expected column or *");
    }
    GEOTP_RETURN_NOT_OK(expect_word("FROM"));
    const Token& table = advance();
    if (table.kind != Token::Kind::kWord) {
      return Status::InvalidArgument("expected table name");
    }
    stmt.table = table.text;
    GEOTP_RETURN_NOT_OK(expect_word("WHERE"));
    GEOTP_RETURN_NOT_OK(expect_word("KEY"));
    GEOTP_RETURN_NOT_OK(expect_symbol('='));
    int64_t key = 0;
    GEOTP_RETURN_NOT_OK(expect_number(&key));
    if (key < 0) return Status::InvalidArgument("negative key");
    stmt.key = static_cast<uint64_t>(key);
    GEOTP_RETURN_NOT_OK(at_end());
    return stmt;
  }
  if (head.text == "UPDATE") {
    stmt.type = StatementType::kUpdate;
    const Token& table = advance();
    if (table.kind != Token::Kind::kWord) {
      return Status::InvalidArgument("expected table name");
    }
    stmt.table = table.text;
    GEOTP_RETURN_NOT_OK(expect_word("SET"));
    GEOTP_RETURN_NOT_OK(expect_word("VAL"));
    GEOTP_RETURN_NOT_OK(expect_symbol('='));
    // Either a literal, or VAL + <n> (delta).
    if (peek().kind == Token::Kind::kWord && peek().text == "VAL") {
      advance();
      GEOTP_RETURN_NOT_OK(expect_symbol('+'));
      stmt.is_delta = true;
    }
    GEOTP_RETURN_NOT_OK(expect_number(&stmt.value));
    GEOTP_RETURN_NOT_OK(expect_word("WHERE"));
    GEOTP_RETURN_NOT_OK(expect_word("KEY"));
    GEOTP_RETURN_NOT_OK(expect_symbol('='));
    int64_t key = 0;
    GEOTP_RETURN_NOT_OK(expect_number(&key));
    if (key < 0) return Status::InvalidArgument("negative key");
    stmt.key = static_cast<uint64_t>(key);
    GEOTP_RETURN_NOT_OK(at_end());
    return stmt;
  }
  return Status::InvalidArgument("unknown statement head: " + head.text);
}

Result<std::vector<ParsedStatement>> Parser::ParseScript(
    std::string_view sql) const {
  std::vector<ParsedStatement> out;
  size_t start = 0;
  bool in_comment = false;
  for (size_t i = 0; i <= sql.size(); ++i) {
    const bool at_boundary =
        i == sql.size() || (!in_comment && sql[i] == ';');
    if (i + 1 < sql.size() && sql[i] == '/' && sql[i + 1] == '*') {
      in_comment = true;
    }
    if (in_comment && i >= 1 && sql[i - 1] == '*' && sql[i] == '/') {
      in_comment = false;
    }
    if (!at_boundary) continue;
    std::string_view piece = sql.substr(start, i - start);
    start = i + 1;
    // The paper writes the annotation after the statement's semicolon
    // ("... WHERE name = 'Bob'; /* last statement */ ;", Fig. 3), which
    // puts it at the head of the NEXT piece. Strip comments first so a
    // comment-only piece (or a trailing annotation before COMMIT) can be
    // re-attached to the preceding DML statement.
    bool piece_is_last = false;
    const std::string stripped = StripComments(piece, &piece_is_last);
    bool blank = true;
    for (char c : stripped) {
      if (!std::isspace(static_cast<unsigned char>(c))) {
        blank = false;
        break;
      }
    }
    auto attach_to_previous_dml = [&out]() {
      for (auto it = out.rbegin(); it != out.rend(); ++it) {
        if (it->IsDml()) {
          it->is_last = true;
          return;
        }
      }
    };
    if (blank) {
      if (piece_is_last) attach_to_previous_dml();
      continue;
    }
    GEOTP_ASSIGN_OR_RETURN(ParsedStatement stmt, Parse(piece));
    if (stmt.is_last && !stmt.IsDml()) {
      // Annotation drifted onto COMMIT/ROLLBACK: it marks the last DML.
      stmt.is_last = false;
      attach_to_previous_dml();
    }
    out.push_back(std::move(stmt));
  }
  return out;
}

}  // namespace sql
}  // namespace geotp
