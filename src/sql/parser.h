// Recursive-descent parser for the mini-SQL grammar in statement.h.
// Annotations are scanned out of comments before parsing (paper §III:
// "applications can use annotations, which are prefixes or suffixes on SQL
// statements, to pass certain operation hints").
#ifndef GEOTP_SQL_PARSER_H_
#define GEOTP_SQL_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "sql/statement.h"

namespace geotp {
namespace sql {

class Parser {
 public:
  /// Parses one statement (optionally ';'-terminated, with comments).
  Result<ParsedStatement> Parse(std::string_view sql) const;

  /// Splits a multi-statement script on top-level ';' and parses each.
  Result<std::vector<ParsedStatement>> ParseScript(std::string_view sql) const;

 private:
  struct Token {
    enum class Kind { kWord, kNumber, kSymbol, kEnd };
    Kind kind = Kind::kEnd;
    std::string text;   // uppercased for words
    int64_t number = 0;
  };

  /// Strips /* ... */ comments; returns true if a last-statement annotation
  /// was present in any of them.
  static std::string StripComments(std::string_view sql, bool* is_last);
  static Result<std::vector<Token>> Tokenize(std::string_view sql);
};

}  // namespace sql
}  // namespace geotp

#endif  // GEOTP_SQL_PARSER_H_
