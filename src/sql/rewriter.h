// Dialect-aware statement rewriter.
//
// The middleware translates subtransactions into the target engine's
// grammar (paper §III "Parser and rewriter", Fig. 3):
//
//   MySQL branch:      XA START 'g,n'; <dml>...; XA END 'g,n';
//                      XA PREPARE 'g,n'; XA COMMIT 'g,n'
//   PostgreSQL branch: BEGIN; <dml>...; PREPARE TRANSACTION 'g,n';
//                      COMMIT PREPARED 'g,n'
//
// and rewrites SELECT into SELECT ... FOR SHARE for PostgreSQL so reads
// take explicit shared locks at serializable-2PL semantics (paper §VII-A3).
#ifndef GEOTP_SQL_REWRITER_H_
#define GEOTP_SQL_REWRITER_H_

#include <string>
#include <vector>

#include "common/types.h"
#include "sql/statement.h"

namespace geotp {
namespace sql {

enum class Dialect : uint8_t { kMySql, kPostgres };

const char* DialectName(Dialect dialect);

class Rewriter {
 public:
  /// Statement(s) that open an XA branch on the target engine.
  static std::vector<std::string> BranchBegin(Dialect dialect, const Xid& xid);

  /// Renders one DML statement in the target dialect (adds FOR SHARE to
  /// PostgreSQL reads).
  static std::string RewriteDml(Dialect dialect, const ParsedStatement& stmt);

  /// Statements that end + prepare the branch (what the geo-agent issues
  /// for the decentralized prepare, Fig. 3 bottom-right).
  static std::vector<std::string> BranchPrepare(Dialect dialect,
                                                const Xid& xid);

  /// Statement committing a prepared branch.
  static std::string BranchCommit(Dialect dialect, const Xid& xid);

  /// One-phase commit for centralized transactions.
  static std::string BranchCommitOnePhase(Dialect dialect, const Xid& xid);

  /// Statement rolling back the branch.
  static std::string BranchRollback(Dialect dialect, const Xid& xid,
                                    bool prepared);

  /// 'g,n' identifier literal used in the XA statements.
  static std::string XidLiteral(const Xid& xid);
};

}  // namespace sql
}  // namespace geotp

#endif  // GEOTP_SQL_REWRITER_H_
