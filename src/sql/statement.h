// Statement model for the middleware's mini-SQL dialect.
//
// The paper's middleware (ShardingSphere) parses full SQL; transactions in
// our workloads touch single records by primary key, so the grammar is the
// OLTP core:
//
//   BEGIN;
//   SELECT val FROM <table> WHERE key = <n>;
//   UPDATE <table> SET val = <n> WHERE key = <n>;
//   UPDATE <table> SET val = val + <n> WHERE key = <n>;
//   COMMIT;  |  ROLLBACK;
//
// plus the annotation the paper relies on (§III): a comment marking the
// last statement of the transaction, e.g.
//   UPDATE savings SET val = val + 100 WHERE key = 7; /* last statement */
// (also accepted: /* geotp:last */ as prefix or suffix).
#ifndef GEOTP_SQL_STATEMENT_H_
#define GEOTP_SQL_STATEMENT_H_

#include <cstdint>
#include <string>

namespace geotp {
namespace sql {

enum class StatementType : uint8_t {
  kBegin,
  kSelect,
  kUpdate,
  kCommit,
  kRollback,
};

const char* StatementTypeName(StatementType type);

struct ParsedStatement {
  StatementType type = StatementType::kBegin;
  std::string table;      ///< SELECT/UPDATE only
  uint64_t key = 0;       ///< WHERE key = <n>
  int64_t value = 0;      ///< UPDATE literal or delta
  bool is_delta = false;  ///< SET val = val + <n>
  bool is_last = false;   ///< carries the last-statement annotation

  bool IsDml() const {
    return type == StatementType::kSelect || type == StatementType::kUpdate;
  }
  bool IsWrite() const { return type == StatementType::kUpdate; }

  std::string ToString() const;
};

}  // namespace sql
}  // namespace geotp

#endif  // GEOTP_SQL_STATEMENT_H_
