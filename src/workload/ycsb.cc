#include "workload/ycsb.h"

#include <algorithm>

#include "common/logging.h"

namespace geotp {
namespace workload {

YcsbGenerator::YcsbGenerator(YcsbConfig config) : config_(std::move(config)) {
  GEOTP_CHECK(!config_.data_sources.empty(), "need data sources");
  GEOTP_CHECK(config_.ops_per_txn >= 1, "need ops");
  GEOTP_CHECK(config_.rounds >= 1, "need rounds");
}

void YcsbGenerator::RegisterTables(middleware::Catalog* catalog) const {
  catalog->AddRangePartitionedTable(config_.table_id,
                                    config_.records_per_node,
                                    config_.data_sources);
}

uint64_t YcsbGenerator::SampleKey(size_t node_idx, Rng& rng) {
  // Global zipf conditioned on the node's partition: the table's zipfian
  // is anchored at global key 0, so the DM-co-located head partition holds
  // the hot records while remote partitions are nearly uniform ("hot
  // records are often in the intra-region ones", paper §I). This is also
  // what the Fig. 1b motivation experiment needs: centralized transactions
  // on DS1 share hot records with distributed transactions.
  const uint64_t total =
      config_.records_per_node * config_.data_sources.size();
  if (config_.mirror_keyspace) {
    // Sample the mirrored node's range in the unmirrored distribution,
    // then reflect: the hot head lands on the LAST partition.
    const uint64_t mirrored_node =
        config_.data_sources.size() - 1 - node_idx;
    const uint64_t lo = mirrored_node * config_.records_per_node;
    const uint64_t sample = BoundedZipfSample(
        lo, lo + config_.records_per_node, config_.theta, rng);
    return total - 1 - sample;
  }
  const uint64_t lo =
      static_cast<uint64_t>(node_idx) * config_.records_per_node;
  return BoundedZipfSample(lo, lo + config_.records_per_node, config_.theta,
                           rng);
}

TxnSpec YcsbGenerator::Next(Rng& rng) {
  TxnSpec spec;
  const size_t num_nodes = config_.data_sources.size();
  spec.distributed =
      num_nodes > 1 && rng.NextBool(config_.distributed_ratio);

  // The anchor node follows the global zipf mass (hot node dominates under
  // skew); distributed transactions add uniformly-chosen other nodes.
  const uint64_t total_keys =
      config_.records_per_node * static_cast<uint64_t>(num_nodes);
  std::vector<size_t> nodes;
  if (config_.pin_anchor_to_first_node) {
    nodes.push_back(0);
  } else {
    uint64_t anchor_key =
        BoundedZipfSample(0, total_keys, config_.theta, rng);
    if (config_.mirror_keyspace) anchor_key = total_keys - 1 - anchor_key;
    nodes.push_back(
        static_cast<size_t>(anchor_key / config_.records_per_node));
  }
  if (spec.distributed) {
    const int want = std::min<int>(config_.nodes_per_distributed_txn,
                                   static_cast<int>(num_nodes));
    while (static_cast<int>(nodes.size()) < want) {
      const auto candidate = static_cast<size_t>(rng.NextU64(num_nodes));
      if (std::find(nodes.begin(), nodes.end(), candidate) == nodes.end()) {
        nodes.push_back(candidate);
      }
    }
  }

  // Generate the operations; key collisions within a transaction are
  // avoided (re-entrant locks would hide contention).
  std::vector<protocol::ClientOp> ops;
  ops.reserve(static_cast<size_t>(config_.ops_per_txn));
  std::vector<uint64_t> used;
  for (int i = 0; i < config_.ops_per_txn; ++i) {
    const size_t node = nodes[static_cast<size_t>(i) % nodes.size()];
    uint64_t key = 0;
    for (int tries = 0; tries < 16; ++tries) {
      key = SampleKey(node, rng);
      if (std::find(used.begin(), used.end(), key) == used.end()) break;
    }
    used.push_back(key);
    protocol::ClientOp op;
    op.key = RecordKey{config_.table_id, key};
    op.is_write = !rng.NextBool(config_.read_ratio);
    if (op.is_write) {
      op.is_delta = true;
      op.value = static_cast<int64_t>(rng.NextU64(100)) - 50;
    }
    ops.push_back(op);
  }

  // Split into interactive rounds.
  const int rounds =
      std::min(config_.rounds, static_cast<int>(ops.size()));
  spec.rounds.resize(static_cast<size_t>(rounds));
  for (size_t i = 0; i < ops.size(); ++i) {
    spec.rounds[i * static_cast<size_t>(rounds) / ops.size()].push_back(
        ops[i]);
  }
  return spec;
}

}  // namespace workload
}  // namespace geotp
