// Experiment runner: assembles a full simulated deployment (topology,
// data sources, middleware or baseline system, client driver), runs it for
// warmup + measurement, and returns the metrics every bench/test consumes.
//
// This is the library's top-level convenience API; examples/quickstart.cpp
// shows it end to end.
#ifndef GEOTP_WORKLOAD_RUNNER_H_
#define GEOTP_WORKLOAD_RUNNER_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "datasource/data_source.h"
#include "metrics/stats.h"
#include "middleware/middleware.h"
#include "sql/rewriter.h"
#include "workload/driver.h"
#include "workload/tpcc.h"
#include "workload/ycsb.h"

namespace geotp {
namespace workload {

/// Every system the paper evaluates.
enum class SystemKind : int {
  kSSP,         ///< ShardingSphere, XA 2PC
  kSSPLocal,    ///< ShardingSphere "local" mode (no atomicity)
  kQuro,        ///< QURO reordering on the SSP platform
  kChiller,     ///< Chiller scheduling on the GeoTP platform
  kGeoTPO1,     ///< decentralized prepare only (ablation)
  kGeoTPO1O2,   ///< + latency-aware scheduling (ablation)
  kGeoTP,       ///< full GeoTP (O1~O3)
  kScalarDb,    ///< ScalarDB-style middleware (DM-side concurrency control)
  kScalarDbPlus,///< ScalarDB + GeoTP's scheduling & heuristics
  kYugabyte,    ///< YugabyteDB-style distributed database
};

const char* SystemName(SystemKind kind);

/// Middleware preset for a given system (middleware-based systems only).
middleware::MiddlewareConfig ConfigForSystem(SystemKind kind);

enum class WorkloadKind { kYcsb, kTpcc };

struct ExperimentConfig {
  SystemKind system = SystemKind::kGeoTP;
  WorkloadKind workload = WorkloadKind::kYcsb;

  /// RTTs from DM to each data source in ms (paper default topology).
  std::vector<double> ds_rtts_ms = {0.0, 27.0, 73.0, 251.0};
  double jitter_frac = 0.0;
  /// Engine flavour per data source; defaults to all-MySQL (paper default).
  std::vector<sql::Dialect> dialects;

  YcsbConfig ycsb;  ///< data_sources filled in by the runner
  TpccConfig tpcc;  ///< data_sources filled in by the runner
  DriverConfig driver;

  /// Hook to tweak the middleware config after the preset is applied
  /// (ablations over alpha, ping interval, admission knobs, ...).
  std::function<void(middleware::MiddlewareConfig*)> dm_tweak;

  /// Hook to tweak each data source's config after the dialect preset is
  /// applied (group-commit policy, fsync costs, ...).
  std::function<void(datasource::DataSourceConfig*)> ds_tweak;

  /// Hook run after assembly, before Start() — used by the dynamic-network
  /// experiment (Fig. 11b) to schedule latency re-configuration events.
  std::function<void(sim::EventLoop*, sim::Network*)> pre_run;

  /// Elastic sharding: overlay the workload's range-partitioned table with
  /// chunked shards and run the hotspot-driven balancer at the DM (YCSB
  /// only — TPC-C partitions by warehouse high bits).
  bool sharding = false;
  uint64_t shard_chunks_per_source = 8;
  sharding::BalancerConfig balancer;  ///< enabled flag is set by the runner

  /// Pre-populate every data source's store with its partition's records
  /// (YCSB only). Makes shard-migration snapshot size reflect the real
  /// resident data — a whole-chunk move then costs its full ingest time —
  /// instead of just the keys the run happened to write.
  bool preload = false;

  /// Distributed tracing: fraction of transactions sampled into the
  /// global tracer (0 = tracing fully off, the default — see obs/trace.h).
  /// The runner enables/resets the tracer around the run and leaves the
  /// recorded spans in GlobalTracer() for the caller to export.
  double trace_sample_rate = 0.0;
  /// Register every node's stats on GlobalMetrics() and snapshot the
  /// registry into ExperimentResult::metrics_json before teardown.
  bool collect_metrics = false;

  uint64_t seed = 42;
};

struct ExperimentResult {
  metrics::RunStats run;
  middleware::MiddlewareStats dm;
  std::unordered_map<int, TypeStats> per_type;
  /// Per-tenant driver accounting (multi-tenant overload runs).
  std::unordered_map<uint32_t, TenantStats> tenants;
  /// New branches refused at a full run queue, summed over data sources.
  uint64_t run_queue_rejections = 0;
  std::vector<std::pair<double, double>> throughput_series;
  uint64_t events_processed = 0;
  uint64_t network_messages = 0;
  /// Host wall-clock time RunExperiment spent simulating this run. The
  /// loopback smoke reports measured-vs-sim-predicted throughput; this is
  /// the companion metric — what the prediction itself cost to compute.
  double wall_seconds = 0.0;
  size_t footprint_bytes = 0;
  // Durability accounting across all data sources (middleware systems):
  // WAL entries vs physical fsyncs diverge under group commit.
  uint64_t wal_entries = 0;
  uint64_t wal_fsyncs = 0;
  storage::GroupCommitStats group_commit;  ///< summed; max_batch is the max
  /// Streaming shard migration, aggregated over all data sources: counters
  /// are summed, the peak_* watermarks are the max over nodes. The
  /// rebalance bench reads these to assert the credit window bounded the
  /// source's stream memory.
  sharding::ShardMigratorStats migration;
  /// GlobalMetrics() snapshot taken before teardown (collect_metrics runs
  /// only; empty otherwise). Gauges/histograms borrow node state, so this
  /// is the only safe place to evaluate them.
  std::string metrics_json;
  /// Spans recorded during the run (trace_sample_rate > 0 only).
  size_t trace_spans = 0;

  /// Physical WAL flushes per committed transaction — the Fig. 6-style
  /// durability-cost metric bench_group_commit sweeps.
  double FsyncsPerCommit() const {
    return run.committed == 0 ? 0.0
                              : static_cast<double>(wal_fsyncs) /
                                    static_cast<double>(run.committed);
  }

  /// Host microseconds of simulation per committed transaction.
  double WallMicrosPerCommit() const {
    return run.committed == 0 ? 0.0
                              : wall_seconds * 1e6 /
                                    static_cast<double>(run.committed);
  }

  double Tps() const { return run.ThroughputTps(); }
  double AbortRate() const { return run.AbortRate(); }
  double MeanLatencyMs() const { return run.latency.Mean() / 1000.0; }
  double P99LatencyMs() const {
    return MicrosToMs(run.latency.P99());
  }
};

/// Runs one experiment to completion. Middleware-based systems route
/// through MiddlewareNode; ScalarDB/Yugabyte systems assemble their own
/// coordinators (src/baselines).
ExperimentResult RunExperiment(const ExperimentConfig& config);

}  // namespace workload
}  // namespace geotp

#endif  // GEOTP_WORKLOAD_RUNNER_H_
