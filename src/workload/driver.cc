#include "workload/driver.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "sim/event_loop.h"

namespace geotp {
namespace workload {

using protocol::ClientFinishRequest;
using protocol::ClientRoundRequest;
using protocol::ClientRoundResponse;
using protocol::ClientTxnResult;

ClientDriver::ClientDriver(NodeId client_node, sim::Network* network,
                           NodeId coordinator, WorkloadGenerator* generator,
                           DriverConfig config)
    : ClientDriver(runtime::ActorEnv{client_node, network->loop(), network,
                                     nullptr},
                   coordinator, generator, config) {}

ClientDriver::ClientDriver(runtime::ActorEnv env, NodeId coordinator,
                           WorkloadGenerator* generator, DriverConfig config)
    : client_node_(env.node),
      network_(env.transport),
      timer_(env.timer),
      coordinator_(coordinator),
      generator_(generator),
      config_(config),
      rng_(config.seed) {
  if (!config_.tenant_terminals.empty()) {
    int total = 0;
    for (int n : config_.tenant_terminals) total += n;
    config_.terminals = total;
  }
  GEOTP_CHECK(config_.terminals > 0, "need terminals");
  stats_.measured_duration = config_.measure;
}

void ClientDriver::Attach() {
  network_->RegisterNode(client_node_,
                         [this](std::unique_ptr<sim::MessageBase> msg) {
                           HandleMessage(std::move(msg));
                         });
}

void ClientDriver::Start() {
  terminals_.resize(static_cast<size_t>(config_.terminals));
  // Tenant assignment: contiguous terminal ranges per tenant id when
  // tenant_terminals is set, the flat `tenant` otherwise.
  std::vector<uint32_t> tenant_of(terminals_.size(), config_.tenant);
  if (!config_.tenant_terminals.empty()) {
    size_t next = 0;
    for (size_t t = 0; t < config_.tenant_terminals.size(); ++t) {
      for (int k = 0; k < config_.tenant_terminals[t]; ++k) {
        tenant_of[next++] = static_cast<uint32_t>(t);
      }
    }
  }
  for (size_t i = 0; i < terminals_.size(); ++i) {
    Terminal& term = terminals_[i];
    term.tag = i;
    term.tenant = tenant_of[i];
    term.rng = rng_.Fork();
    // Stagger terminal starts over a few ms to avoid a thundering herd at
    // t=0 (real clients ramp up too).
    const Micros stagger = static_cast<Micros>(rng_.NextU64(5000));
    timer_->Schedule(stagger, [this, i]() {
      StartFreshTxn(terminals_[i]);
    });
  }
}

void ClientDriver::HandleMessage(std::unique_ptr<sim::MessageBase> msg) {
  switch (msg->type()) {
    case sim::MessageType::kClientRoundResponse:
      OnRoundResponse(static_cast<ClientRoundResponse&>(*msg));
      return;
    case sim::MessageType::kClientTxnResult:
      OnTxnResult(static_cast<ClientTxnResult&>(*msg));
      return;
    case sim::MessageType::kOverloadedResponse:
      OnOverloaded(static_cast<protocol::OverloadedResponse&>(*msg));
      return;
    default:
      GEOTP_CHECK(false, "client: unknown message");
  }
}

void ClientDriver::StartFreshTxn(Terminal& term) {
  if (stopped_) return;
  term.spec = generator_->Next(term.rng);
  term.next_round = 0;
  term.txn_id = kInvalidTxn;
  term.attempts = 0;
  term.first_submit = timer_->Now();
  SubmitRound(term);
}

void ClientDriver::ResubmitTxn(Terminal& term) {
  if (stopped_) return;
  term.next_round = 0;
  term.txn_id = kInvalidTxn;
  SubmitRound(term);
}

void ClientDriver::SubmitRound(Terminal& term) {
  GEOTP_CHECK(term.next_round < term.spec.rounds.size(), "round overflow");
  auto req = std::make_unique<ClientRoundRequest>();
  req->from = client_node_;
  req->to = router_ ? router_(term.spec) : coordinator_;
  req->client_tag = term.tag;
  req->txn_id = term.txn_id;
  req->tenant = term.tenant;
  req->ops = term.spec.rounds[term.next_round];
  req->last_round = term.next_round + 1 == term.spec.rounds.size();
  term.next_round++;
  network_->Send(std::move(req));
}

void ClientDriver::SendFinish(Terminal& term) {
  auto req = std::make_unique<ClientFinishRequest>();
  req->from = client_node_;
  req->to = router_ ? router_(term.spec) : coordinator_;
  req->client_tag = term.tag;
  req->txn_id = term.txn_id;
  req->commit = true;
  network_->Send(std::move(req));
}

void ClientDriver::OnRoundResponse(const ClientRoundResponse& resp) {
  GEOTP_CHECK(resp.client_tag < terminals_.size(), "bad tag");
  Terminal& term = terminals_[resp.client_tag];
  // Stale response from a previous (aborted/retried) transaction?
  if (term.txn_id != kInvalidTxn && term.txn_id != resp.txn_id) return;
  term.txn_id = resp.txn_id;
  if (!resp.status.ok()) {
    // Abort in progress; the final ClientTxnResult drives the retry.
    return;
  }
  if (term.next_round < term.spec.rounds.size()) {
    SubmitRound(term);
  } else {
    SendFinish(term);
  }
}

void ClientDriver::OnTxnResult(const ClientTxnResult& result) {
  GEOTP_CHECK(result.client_tag < terminals_.size(), "bad tag");
  Terminal& term = terminals_[result.client_tag];
  if (term.txn_id != kInvalidTxn && term.txn_id != result.txn_id) return;

  const Micros now = timer_->Now();
  TypeStats& per_type = type_stats_[term.spec.type_tag];

  if (result.status.ok()) {
    if (commit_observer_) commit_observer_(term.spec);
    if (InWindow(now)) {
      stats_.committed++;
      const Micros latency = now - term.first_submit;
      stats_.latency.Record(latency);
      if (term.spec.distributed) {
        stats_.distributed_latency.Record(latency);
      } else {
        stats_.centralized_latency.Record(latency);
      }
      series_.OnCommit(now - config_.warmup);
      per_type.committed++;
      per_type.latency.Record(latency);
      TenantStats& per_tenant = tenant_stats_[term.tenant];
      per_tenant.committed++;
      per_tenant.latency.Record(latency);
    }
    StartFreshTxn(term);
    return;
  }

  // Aborted.
  if (InWindow(now)) {
    stats_.abort_events++;
    per_type.aborted++;
  }
  term.attempts++;
  if (config_.retry_aborted) {
    RetryOrGiveUp(term, /*floor_hint=*/0);
  } else {
    if (InWindow(now)) {
      stats_.aborted++;
      tenant_stats_[term.tenant].aborted++;
    }
    StartFreshTxn(term);
  }
}

void ClientDriver::OnOverloaded(const protocol::OverloadedResponse& shed) {
  GEOTP_CHECK(shed.client_tag < terminals_.size(), "bad tag");
  Terminal& term = terminals_[shed.client_tag];
  // Sheds happen before a TxnId is assigned; anything else is stale.
  if (term.txn_id != kInvalidTxn) return;

  const Micros now = timer_->Now();
  if (InWindow(now)) {
    stats_.sheds++;
    tenant_stats_[term.tenant].sheds++;
  }
  term.attempts++;
  RetryOrGiveUp(term, shed.retry_after_hint);
}

Micros ClientDriver::NextBackoff(Terminal& term, Micros floor_hint) {
  // Ceiling doubles per attempt up to the cap; the draw is full jitter
  // over [min, ceiling] from the terminal's own RNG (deterministic, and
  // decorrelated across terminals so retries don't re-synchronize).
  Micros ceiling = config_.retry_backoff_min;
  for (int i = 1; i < term.attempts && ceiling < config_.retry_backoff_max;
       ++i) {
    ceiling *= 2;
  }
  ceiling = std::min(ceiling, config_.retry_backoff_max);
  const Micros backoff =
      term.rng.NextInt(config_.retry_backoff_min, ceiling);
  return std::max(backoff, floor_hint);
}

void ClientDriver::RetryOrGiveUp(Terminal& term, Micros floor_hint) {
  const Micros now = timer_->Now();
  if (config_.retry_budget > 0 && term.attempts >= config_.retry_budget) {
    // Budget spent: surface the failure to the "user" and move on — a
    // saturated system serves fresh load instead of compounding storms.
    if (InWindow(now)) {
      stats_.aborted++;
      stats_.retry_exhausted++;
      tenant_stats_[term.tenant].aborted++;
    }
    StartFreshTxn(term);
    return;
  }
  if (InWindow(now)) stats_.retries++;
  const Micros backoff = NextBackoff(term, floor_hint);
  const uint64_t tag = term.tag;
  timer_->Schedule(backoff, [this, tag]() {
    ResubmitTxn(terminals_[tag]);
  });
}

}  // namespace workload
}  // namespace geotp
