// ClientDriver: BenchBase-style closed-loop client (paper §VII-A3).
//
// Runs N terminals against one coordinator endpoint. Each terminal keeps
// exactly one transaction in flight: it submits rounds, sends COMMIT after
// the last round's results, and — on abort — retries the same transaction
// after a short backoff (user-perceived latency therefore spans retries,
// which is what makes the paper's high-contention latencies reach
// seconds). Committed/aborted events are counted inside the measurement
// window [warmup, warmup + measure).
#ifndef GEOTP_WORKLOAD_DRIVER_H_
#define GEOTP_WORKLOAD_DRIVER_H_

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "metrics/stats.h"
#include "protocol/messages.h"
#include "runtime/runtime.h"
#include "sim/network.h"
#include "workload/generator.h"

namespace geotp {
namespace workload {

struct DriverConfig {
  int terminals = 64;
  Micros warmup = SecToMicros(5);
  Micros measure = SecToMicros(20);
  bool retry_aborted = true;
  /// Retry backoff: capped exponential with full deterministic jitter.
  /// Attempt k sleeps uniform(min, min * 2^(k-1)) capped at max — drawn
  /// from the terminal's own forked RNG so sim runs stay reproducible.
  /// An Overloaded reply's retry_after_hint raises the draw's floor.
  Micros retry_backoff_min = MsToMicros(5);
  Micros retry_backoff_max = MsToMicros(20);
  /// Per-terminal retry budget: a transaction shed or aborted this many
  /// times is abandoned (a user-visible abort) and the terminal moves to
  /// a fresh one, so retry storms cannot outlive the overload that caused
  /// them. 0 = retry forever (the pre-overload-control behaviour).
  int retry_budget = 0;
  /// Tenant id stamped on every transaction (single-tenant runs).
  uint32_t tenant = 0;
  /// Multi-tenant runs: terminals per tenant id (index = tenant id).
  /// When non-empty this overrides `terminals` and `tenant`: the first
  /// tenant_terminals[0] terminals belong to tenant 0, the next
  /// tenant_terminals[1] to tenant 1, and so on.
  std::vector<int> tenant_terminals;
  uint64_t seed = 1234;
};

/// Per-transaction-type accounting (TPC-C Fig. 9 reports Payment and
/// NewOrder separately).
struct TypeStats {
  uint64_t committed = 0;
  uint64_t aborted = 0;
  metrics::Histogram latency;
};

/// Per-tenant accounting for multi-tenant runs (fair-share verification:
/// the overload bench checks a hot tenant is capped at its weighted share
/// while the well-behaved tenant's p50 holds).
struct TenantStats {
  uint64_t committed = 0;
  uint64_t sheds = 0;
  uint64_t aborted = 0;  ///< user-visible (budget-exhausted) aborts
  metrics::Histogram latency;
};

class ClientDriver {
 public:
  /// Runtime-seam constructor: the driver runs on whatever backend `env`
  /// belongs to (sim event loop or a loopback actor thread).
  ClientDriver(runtime::ActorEnv env, NodeId coordinator,
               WorkloadGenerator* generator, DriverConfig config);
  /// Simulated-deployment convenience (tests, benches, the runner).
  ClientDriver(NodeId client_node, sim::Network* network, NodeId coordinator,
               WorkloadGenerator* generator, DriverConfig config);

  /// Registers the client node handler. Call once before Start().
  void Attach();

  /// Launches all terminals (call after the simulation is assembled).
  void Start();

  /// Quiesces the driver: in-flight transactions finish (and still count),
  /// but no terminal starts or retries another one. Used by the loopback
  /// smoke to reach a stable final state before oracle verification. Call
  /// on the driver's own executor/loop.
  void Stop() { stopped_ = true; }

  /// Observer invoked (on the driver's executor) with the spec of every
  /// COMMITTED transaction, in commit order — the loopback smoke feeds its
  /// sequential oracle from this.
  void SetCommitObserver(std::function<void(const TxnSpec&)> observer) {
    commit_observer_ = std::move(observer);
  }

  /// Optional: route each transaction to a different coordinator (the
  /// YugabyteDB baseline sends transactions to per-node coordinators).
  void SetRouter(std::function<NodeId(const TxnSpec&)> router) {
    router_ = std::move(router);
  }

  const metrics::RunStats& stats() const { return stats_; }
  metrics::RunStats& mutable_stats() { return stats_; }
  const metrics::ThroughputSeries& series() const { return series_; }
  const std::unordered_map<int, TypeStats>& type_stats() const {
    return type_stats_;
  }
  const std::unordered_map<uint32_t, TenantStats>& tenant_stats() const {
    return tenant_stats_;
  }

 private:
  struct Terminal {
    uint64_t tag = 0;
    uint32_t tenant = 0;
    TxnSpec spec;
    size_t next_round = 0;
    TxnId txn_id = kInvalidTxn;
    Micros first_submit = 0;  ///< submission of attempt #1 (latency anchor)
    int attempts = 0;
    Rng rng{0};
  };

  void HandleMessage(std::unique_ptr<sim::MessageBase> msg);
  void OnRoundResponse(const protocol::ClientRoundResponse& resp);
  void OnTxnResult(const protocol::ClientTxnResult& result);
  void OnOverloaded(const protocol::OverloadedResponse& shed);

  void StartFreshTxn(Terminal& term);
  void ResubmitTxn(Terminal& term);
  void SubmitRound(Terminal& term);
  void SendFinish(Terminal& term);

  /// Capped-exponential, jittered backoff for the terminal's next retry
  /// (attempt count already incremented); `floor_hint` is the server's
  /// retry_after_hint (0 when retrying an abort).
  Micros NextBackoff(Terminal& term, Micros floor_hint);
  /// Retries after backoff, or abandons the transaction when the retry
  /// budget is spent. `floor_hint` as in NextBackoff.
  void RetryOrGiveUp(Terminal& term, Micros floor_hint);

  bool InWindow(Micros t) const {
    return t >= config_.warmup && t < config_.warmup + config_.measure;
  }

  NodeId client_node_;
  runtime::ITransport* network_;
  runtime::ITimer* timer_;
  NodeId coordinator_;
  WorkloadGenerator* generator_;
  DriverConfig config_;
  std::function<NodeId(const TxnSpec&)> router_;
  std::function<void(const TxnSpec&)> commit_observer_;
  bool stopped_ = false;
  std::vector<Terminal> terminals_;
  metrics::RunStats stats_;
  metrics::ThroughputSeries series_;
  std::unordered_map<int, TypeStats> type_stats_;
  std::unordered_map<uint32_t, TenantStats> tenant_stats_;
  Rng rng_;
};

}  // namespace workload
}  // namespace geotp

#endif  // GEOTP_WORKLOAD_DRIVER_H_
