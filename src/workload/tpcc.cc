#include "workload/tpcc.h"

#include "common/logging.h"

namespace geotp {
namespace workload {

namespace {

protocol::ClientOp Read(uint32_t table, uint64_t key) {
  protocol::ClientOp op;
  op.key = RecordKey{table, key};
  op.is_write = false;
  return op;
}

protocol::ClientOp Write(uint32_t table, uint64_t key, int64_t delta = 1) {
  protocol::ClientOp op;
  op.key = RecordKey{table, key};
  op.is_write = true;
  op.is_delta = true;
  op.value = delta;
  return op;
}

}  // namespace

const char* TpccTxnTypeName(TpccTxnType type) {
  switch (type) {
    case TpccTxnType::kNewOrder:
      return "NewOrder";
    case TpccTxnType::kPayment:
      return "Payment";
    case TpccTxnType::kOrderStatus:
      return "OrderStatus";
    case TpccTxnType::kDelivery:
      return "Delivery";
    case TpccTxnType::kStockLevel:
      return "StockLevel";
  }
  return "?";
}

TpccGenerator::TpccGenerator(TpccConfig config) : config_(std::move(config)) {
  GEOTP_CHECK(!config_.data_sources.empty(), "need data sources");
  GEOTP_CHECK(config_.warehouses_per_node > 0, "need warehouses");
}

void TpccGenerator::RegisterTables(middleware::Catalog* catalog) const {
  for (uint32_t table : {kWarehouse, kDistrict, kCustomer, kHistory,
                         kNewOrderTab, kOrders, kOrderLine, kItem, kStock}) {
    catalog->AddHighBitsPartitionedTable(table, 48,
                                         config_.warehouses_per_node,
                                         config_.data_sources);
  }
}

uint64_t TpccGenerator::RemoteWarehouse(uint64_t home, Rng& rng) {
  if (config_.data_sources.size() <= 1) return home;
  const size_t home_node = NodeOfWarehouse(home);
  for (;;) {
    const uint64_t w = rng.NextU64(TotalWarehouses());
    if (NodeOfWarehouse(w) != home_node) return w;
  }
}

uint64_t TpccGenerator::PickCustomer(Rng& rng) const {
  // TPC-C NURand(1023, 1, 3000); the non-uniformity matters little for
  // locking (customers are per-district); uniform keeps this readable.
  return rng.NextU64(config_.customers_per_district);
}

TxnSpec TpccGenerator::Next(Rng& rng) {
  double total = 0.0;
  for (double w : config_.mix) total += w;
  double pick = rng.NextDouble() * total;
  int type = 0;
  for (; type < 4; ++type) {
    pick -= config_.mix[static_cast<size_t>(type)];
    if (pick < 0.0) break;
  }
  switch (static_cast<TpccTxnType>(type)) {
    case TpccTxnType::kNewOrder:
      return NewOrder(rng);
    case TpccTxnType::kPayment:
      return Payment(rng);
    case TpccTxnType::kOrderStatus:
      return OrderStatus(rng);
    case TpccTxnType::kDelivery:
      return Delivery(rng);
    case TpccTxnType::kStockLevel:
      return StockLevel(rng);
  }
  return NewOrder(rng);
}

TxnSpec TpccGenerator::NewOrder(Rng& rng) {
  TxnSpec spec;
  spec.type_tag = static_cast<int>(TpccTxnType::kNewOrder);
  const uint64_t w = rng.NextU64(TotalWarehouses());
  const auto d = static_cast<uint64_t>(
      rng.NextU64(static_cast<uint64_t>(config_.districts_per_warehouse)));
  const uint64_t c = PickCustomer(rng);
  const bool remote = config_.data_sources.size() > 1 &&
                      rng.NextBool(config_.distributed_ratio);

  std::vector<protocol::ClientOp> ops;
  ops.push_back(Read(kWarehouse, WarehouseKey(w)));           // W_TAX
  ops.push_back(Write(kDistrict, DistrictKey(w, d)));         // D_NEXT_O_ID++
  ops.push_back(Read(kCustomer, CustomerKey(w, d, c)));       // discount

  const int ol_cnt = static_cast<int>(rng.NextInt(5, 15));
  uint64_t remote_w = remote ? RemoteWarehouse(w, rng) : w;
  for (int i = 0; i < ol_cnt; ++i) {
    const uint64_t item = rng.NextU64(config_.items);
    ops.push_back(Read(kItem, ItemKey(w, item)));             // I_PRICE
    // ~1 in ol_cnt order lines is supplied remotely when distributed
    // (TPC-C spec: 1% per line; here concentrated to make dr precise).
    const bool line_remote = remote && i < 2;
    ops.push_back(Write(kStock, StockKey(line_remote ? remote_w : w, item),
                        -10));                                 // S_QUANTITY
  }
  // Inserts: ORDERS, NEW-ORDER and one ORDER-LINE row per item (fresh keys
  // never contend but do cost engine work and locks).
  const uint64_t fresh = fresh_counter_++;
  ops.push_back(Write(kOrders, (w << 48) | (d << 32) | fresh));
  ops.push_back(Write(kNewOrderTab, (w << 48) | (d << 32) | fresh));
  for (int i = 0; i < ol_cnt; ++i) {
    ops.push_back(Write(
        kOrderLine,
        (w << 48) | (d << 32) | (fresh << 4) | static_cast<uint64_t>(i)));
  }

  spec.distributed = remote;
  spec.rounds.push_back(std::move(ops));
  return spec;
}

TxnSpec TpccGenerator::Payment(Rng& rng) {
  TxnSpec spec;
  spec.type_tag = static_cast<int>(TpccTxnType::kPayment);
  const uint64_t w = rng.NextU64(TotalWarehouses());
  const auto d = static_cast<uint64_t>(
      rng.NextU64(static_cast<uint64_t>(config_.districts_per_warehouse)));
  const bool remote = config_.data_sources.size() > 1 &&
                      rng.NextBool(config_.distributed_ratio);
  const uint64_t c_w = remote ? RemoteWarehouse(w, rng) : w;
  const auto c_d = static_cast<uint64_t>(
      rng.NextU64(static_cast<uint64_t>(config_.districts_per_warehouse)));
  const uint64_t c = PickCustomer(rng);

  std::vector<protocol::ClientOp> ops;
  ops.push_back(Write(kWarehouse, WarehouseKey(w), 100));  // W_YTD (hotspot)
  ops.push_back(Write(kDistrict, DistrictKey(w, d), 100)); // D_YTD
  ops.push_back(Write(kCustomer, CustomerKey(c_w, c_d, c), -100));
  ops.push_back(Write(kHistory, (w << 48) | (d << 32) | fresh_counter_++));

  spec.distributed = remote;
  spec.rounds.push_back(std::move(ops));
  return spec;
}

TxnSpec TpccGenerator::OrderStatus(Rng& rng) {
  TxnSpec spec;
  spec.type_tag = static_cast<int>(TpccTxnType::kOrderStatus);
  const uint64_t w = rng.NextU64(TotalWarehouses());
  const auto d = static_cast<uint64_t>(
      rng.NextU64(static_cast<uint64_t>(config_.districts_per_warehouse)));
  const uint64_t c = PickCustomer(rng);

  std::vector<protocol::ClientOp> ops;
  ops.push_back(Read(kCustomer, CustomerKey(w, d, c)));
  const uint64_t recent = fresh_counter_ > 1
                              ? rng.NextU64(fresh_counter_)
                              : 0;
  ops.push_back(Read(kOrders, (w << 48) | (d << 32) | recent));
  for (int i = 0; i < 5; ++i) {
    ops.push_back(Read(kOrderLine, (w << 48) | (d << 32) | (recent << 4) |
                                       static_cast<uint64_t>(i)));
  }
  spec.rounds.push_back(std::move(ops));
  return spec;
}

TxnSpec TpccGenerator::Delivery(Rng& rng) {
  TxnSpec spec;
  spec.type_tag = static_cast<int>(TpccTxnType::kDelivery);
  const uint64_t w = rng.NextU64(TotalWarehouses());

  std::vector<protocol::ClientOp> ops;
  for (int d = 0; d < config_.districts_per_warehouse; ++d) {
    const uint64_t oldest = fresh_counter_ > 1
                                ? rng.NextU64(fresh_counter_)
                                : 0;
    ops.push_back(Write(kOrders, (w << 48) |
                                     (static_cast<uint64_t>(d) << 32) |
                                     oldest));  // O_CARRIER_ID
    ops.push_back(Write(kCustomer,
                        CustomerKey(w, static_cast<uint64_t>(d),
                                    PickCustomer(rng)),
                        50));  // C_BALANCE
  }
  spec.rounds.push_back(std::move(ops));
  return spec;
}

TxnSpec TpccGenerator::StockLevel(Rng& rng) {
  TxnSpec spec;
  spec.type_tag = static_cast<int>(TpccTxnType::kStockLevel);
  const uint64_t w = rng.NextU64(TotalWarehouses());
  const auto d = static_cast<uint64_t>(
      rng.NextU64(static_cast<uint64_t>(config_.districts_per_warehouse)));

  std::vector<protocol::ClientOp> ops;
  ops.push_back(Read(kDistrict, DistrictKey(w, d)));
  for (int i = 0; i < 20; ++i) {
    ops.push_back(Read(kStock, StockKey(w, rng.NextU64(config_.items))));
  }
  spec.rounds.push_back(std::move(ops));
  return spec;
}

}  // namespace workload
}  // namespace geotp
