// Workload generator interface: produces transaction specifications for
// the closed-loop client driver.
#ifndef GEOTP_WORKLOAD_GENERATOR_H_
#define GEOTP_WORKLOAD_GENERATOR_H_

#include <vector>

#include "common/random.h"
#include "middleware/catalog.h"
#include "protocol/messages.h"

namespace geotp {
namespace workload {

/// A transaction as the client will submit it: one or more interactive
/// rounds of operations. `distributed` is the generator's intent (used for
/// latency splits in reporting); the middleware derives the real participant
/// set from routing.
struct TxnSpec {
  std::vector<std::vector<protocol::ClientOp>> rounds;
  bool distributed = false;
  int type_tag = 0;  ///< workload-specific (e.g. TPC-C transaction type)
};

class WorkloadGenerator {
 public:
  virtual ~WorkloadGenerator() = default;

  /// Generates the next transaction.
  virtual TxnSpec Next(Rng& rng) = 0;

  /// Registers this workload's tables/partitioning with the catalog.
  virtual void RegisterTables(middleware::Catalog* catalog) const = 0;
};

}  // namespace workload
}  // namespace geotp

#endif  // GEOTP_WORKLOAD_GENERATOR_H_
