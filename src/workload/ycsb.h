// YCSB transactional workload (paper §VII-A2).
//
// Each transaction has `ops_per_txn` operations (default 5), each a read
// or write with 50/50 probability. Keys follow a scrambled zipfian over
// each data node's partition; the skew factor theta controls contention
// (0.3 / 0.9 / 1.5 = low / medium / high). A transaction is centralized
// (all keys on one node) or distributed (keys spread over
// `nodes_per_distributed_txn` nodes) according to `distributed_ratio`.
// Multi-round interactive transactions (Fig. 14b/c) split the operations
// evenly over `rounds` client interactions.
#ifndef GEOTP_WORKLOAD_YCSB_H_
#define GEOTP_WORKLOAD_YCSB_H_

#include <memory>
#include <vector>

#include "workload/generator.h"

namespace geotp {
namespace workload {

struct YcsbConfig {
  std::vector<NodeId> data_sources;
  uint64_t records_per_node = 1000000;  ///< paper: 1M x 1KB per node
  int ops_per_txn = 5;
  double read_ratio = 0.5;
  double theta = 0.9;                   ///< skew factor (medium contention)
  double distributed_ratio = 0.2;
  int nodes_per_distributed_txn = 2;
  int rounds = 1;
  uint32_t table_id = 1;
  /// Fig. 1b motivation workload: pin every transaction's anchor node to
  /// data source 0 (centralized txns run on DS1 only; distributed ones
  /// span DS1 + a remote node).
  bool pin_anchor_to_first_node = false;
  /// Mirror the zipfian so the hot head sits at the END of the key space
  /// (the last data source). Used by the multi-region deployment
  /// (Fig. 15): each region's clients are hot on their own region's
  /// partition while sharing the cold middle.
  bool mirror_keyspace = false;
};

class YcsbGenerator : public WorkloadGenerator {
 public:
  explicit YcsbGenerator(YcsbConfig config);

  TxnSpec Next(Rng& rng) override;
  void RegisterTables(middleware::Catalog* catalog) const override;

  const YcsbConfig& config() const { return config_; }

 private:
  /// Global-zipf key conditioned on node `node_idx`'s partition.
  uint64_t SampleKey(size_t node_idx, Rng& rng);

  YcsbConfig config_;
};

}  // namespace workload
}  // namespace geotp

#endif  // GEOTP_WORKLOAD_YCSB_H_
