#include "workload/runner.h"

#include <chrono>

#include <algorithm>
#include <memory>
#include <utility>

#include "baselines/baseline_runners.h"
#include "common/logging.h"
#include "datasource/data_source.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "sim/topology.h"

namespace geotp {
namespace workload {

const char* SystemName(SystemKind kind) {
  switch (kind) {
    case SystemKind::kSSP:
      return "SSP";
    case SystemKind::kSSPLocal:
      return "SSP(local)";
    case SystemKind::kQuro:
      return "QURO";
    case SystemKind::kChiller:
      return "Chiller";
    case SystemKind::kGeoTPO1:
      return "GeoTP(O1)";
    case SystemKind::kGeoTPO1O2:
      return "GeoTP(O1~O2)";
    case SystemKind::kGeoTP:
      return "GeoTP";
    case SystemKind::kScalarDb:
      return "ScalarDB";
    case SystemKind::kScalarDbPlus:
      return "ScalarDB+";
    case SystemKind::kYugabyte:
      return "YugabyteDB";
  }
  return "?";
}

middleware::MiddlewareConfig ConfigForSystem(SystemKind kind) {
  using middleware::MiddlewareConfig;
  switch (kind) {
    case SystemKind::kSSP:
      return MiddlewareConfig::SSP();
    case SystemKind::kSSPLocal:
      return MiddlewareConfig::SSPLocal();
    case SystemKind::kQuro:
      return MiddlewareConfig::Quro();
    case SystemKind::kChiller:
      return MiddlewareConfig::Chiller();
    case SystemKind::kGeoTPO1:
      return MiddlewareConfig::GeoTPO1();
    case SystemKind::kGeoTPO1O2:
      return MiddlewareConfig::GeoTPO1O2();
    case SystemKind::kGeoTP:
      return MiddlewareConfig::GeoTP();
    default:
      GEOTP_CHECK(false, "not a middleware system: "
                             << SystemName(kind));
  }
  return MiddlewareConfig::SSP();
}

namespace {

ExperimentResult RunExperimentInner(const ExperimentConfig& config);

}  // namespace

ExperimentResult RunExperiment(const ExperimentConfig& config) {
  const auto wall_start = std::chrono::steady_clock::now();
  ExperimentResult result = RunExperimentInner(config);
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return result;
}

namespace {

ExperimentResult RunExperimentInner(const ExperimentConfig& config) {
  if (config.system == SystemKind::kScalarDb ||
      config.system == SystemKind::kScalarDbPlus) {
    return baselines::RunScalarDbExperiment(config);
  }
  if (config.system == SystemKind::kYugabyte) {
    return baselines::RunYugabyteExperiment(config);
  }

  // ----- middleware-based systems ------------------------------------------
  if (config.trace_sample_rate > 0.0) {
    obs::TraceConfig trace_config;
    trace_config.sample_rate = config.trace_sample_rate;
    obs::GlobalTracer().Reset();
    obs::GlobalTracer().Enable(trace_config);
  }
  sim::DefaultTopology topo =
      sim::DefaultTopology::Make(config.ds_rtts_ms, config.jitter_frac);
  sim::EventLoop loop;
  sim::Network network(&loop, topo.matrix, config.seed);

  middleware::MiddlewareConfig dm_config = ConfigForSystem(config.system);
  if (config.dm_tweak) config.dm_tweak(&dm_config);

  // Data sources.
  std::vector<std::unique_ptr<datasource::DataSourceNode>> sources;
  for (size_t i = 0; i < topo.data_sources.size(); ++i) {
    const sql::Dialect dialect = i < config.dialects.size()
                                     ? config.dialects[i]
                                     : sql::Dialect::kMySql;
    datasource::DataSourceConfig ds_config =
        dialect == sql::Dialect::kPostgres
            ? datasource::DataSourceConfig::Postgres()
            : datasource::DataSourceConfig::MySql();
    ds_config.early_abort = dm_config.early_abort;
    if (config.ds_tweak) config.ds_tweak(&ds_config);
    sources.push_back(std::make_unique<datasource::DataSourceNode>(
        topo.data_sources[i], &network, ds_config));
    sources.back()->Attach();
  }

  // Workload generator + catalog.
  std::unique_ptr<WorkloadGenerator> generator;
  if (config.workload == WorkloadKind::kYcsb) {
    YcsbConfig ycsb = config.ycsb;
    ycsb.data_sources = topo.data_sources;
    generator = std::make_unique<YcsbGenerator>(ycsb);
  } else {
    TpccConfig tpcc = config.tpcc;
    tpcc.data_sources = topo.data_sources;
    generator = std::make_unique<TpccGenerator>(tpcc);
  }
  middleware::Catalog catalog;
  generator->RegisterTables(&catalog);
  if (config.sharding && config.workload == WorkloadKind::kYcsb) {
    catalog.InstallShardMap(sharding::ShardMap::FromRangePartition(
        config.ycsb.table_id, config.ycsb.records_per_node,
        topo.data_sources, config.shard_chunks_per_source));
    dm_config.balancer = config.balancer;
    dm_config.balancer.enabled = true;
  }

  if (config.preload && config.workload == WorkloadKind::kYcsb) {
    for (size_t i = 0; i < sources.size(); ++i) {
      const uint64_t base = i * config.ycsb.records_per_node;
      for (uint64_t k = 0; k < config.ycsb.records_per_node; ++k) {
        sources[i]->engine().store().Apply(
            RecordKey{config.ycsb.table_id, base + k}, 0);
      }
    }
  }

  middleware::MiddlewareNode dm(topo.middleware, /*ordinal=*/0, &network,
                                std::move(catalog), dm_config);
  dm.Attach();
  if (config.collect_metrics) {
    obs::GlobalMetrics().Clear();
    dm.AttachMetrics(&obs::GlobalMetrics());
    for (const auto& src : sources) {
      src->RegisterMetrics(&obs::GlobalMetrics());
    }
  }

  DriverConfig driver_config = config.driver;
  driver_config.seed = config.seed * 7919 + 17;
  ClientDriver driver(topo.client, &network, topo.middleware,
                      generator.get(), driver_config);
  driver.Attach();

  if (config.pre_run) config.pre_run(&loop, &network);
  driver.Start();
  loop.RunUntil(driver_config.warmup + driver_config.measure);

  ExperimentResult result;
  result.run = driver.stats();
  result.dm = dm.stats();
  result.per_type = driver.type_stats();
  result.tenants = driver.tenant_stats();
  result.throughput_series = driver.series().Points();
  result.events_processed = loop.events_processed();
  result.network_messages = network.total_messages();
  result.footprint_bytes = dm.footprint().ApproxBytes();
  for (const auto& src : sources) {
    result.run_queue_rejections += src->stats().run_queue_rejections;
    result.wal_entries += src->engine().wal().entries().size();
    result.wal_fsyncs += src->engine().wal().fsyncs();
    const storage::GroupCommitStats& gc = src->committer().stats();
    result.group_commit.fsyncs += gc.fsyncs;
    result.group_commit.entries += gc.entries;
    result.group_commit.max_batch_entries = std::max(
        result.group_commit.max_batch_entries, gc.max_batch_entries);
    const sharding::ShardMigratorStats& ms = src->migrator().stats();
    result.migration.migrations_started += ms.migrations_started;
    result.migration.migrations_cancelled += ms.migrations_cancelled;
    result.migration.cutovers_reported += ms.cutovers_reported;
    result.migration.snapshot_records_sent += ms.snapshot_records_sent;
    result.migration.snapshot_chunks_sent += ms.snapshot_chunks_sent;
    result.migration.chunk_retransmits += ms.chunk_retransmits;
    result.migration.streams_completed += ms.streams_completed;
    result.migration.delta_batches_sent += ms.delta_batches_sent;
    result.migration.delta_writes_sent += ms.delta_writes_sent;
    result.migration.fence_aborts += ms.fence_aborts;
    result.migration.snapshot_records_applied += ms.snapshot_records_applied;
    result.migration.snapshot_chunks_applied += ms.snapshot_chunks_applied;
    result.migration.delta_batches_applied += ms.delta_batches_applied;
    result.migration.chunk_records_superseded += ms.chunk_records_superseded;
    result.migration.migration_resumes += ms.migration_resumes;
    result.migration.migration_aborts_from_log += ms.migration_aborts_from_log;
    result.migration.seed_offers_sent += ms.seed_offers_sent;
    result.migration.chunks_declined += ms.chunks_declined;
    result.migration.wan_bytes_raw += ms.wan_bytes_raw;
    result.migration.wan_bytes_wire += ms.wan_bytes_wire;
    result.migration.peak_unacked_chunks = std::max(
        result.migration.peak_unacked_chunks, ms.peak_unacked_chunks);
    result.migration.peak_buffered_chunks = std::max(
        result.migration.peak_buffered_chunks, ms.peak_buffered_chunks);
  }
  // Snapshot observability state before the nodes (which the registry's
  // gauge callbacks borrow) go out of scope.
  if (config.collect_metrics) {
    result.metrics_json = obs::GlobalMetrics().SnapshotJson();
    obs::GlobalMetrics().Clear();
  }
  if (config.trace_sample_rate > 0.0) {
    result.trace_spans = obs::GlobalTracer().span_count();
    obs::GlobalTracer().Disable();  // spans stay readable via Snapshot()
  }
  return result;
}

}  // namespace

}  // namespace workload
}  // namespace geotp
