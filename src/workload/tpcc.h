// TPC-C workload (paper §VII-A2): 9 relations, 5 transaction types,
// 16 warehouses per data node, no think time.
//
// Keys are 64-bit composites with the warehouse id in the top 16 bits, so
// the catalog routes every row of every table by warehouse range. The ITEM
// relation is read-only and replicated in practice; we model it as a
// co-located copy under the home warehouse (reads never leave the region).
//
// The distributed-transaction ratio is controlled as in the paper (§VII-C):
// a NewOrder sources a subset of its stock from a warehouse on another data
// node; a Payment pays for a customer homed on another data node.
#ifndef GEOTP_WORKLOAD_TPCC_H_
#define GEOTP_WORKLOAD_TPCC_H_

#include <array>
#include <vector>

#include "workload/generator.h"

namespace geotp {
namespace workload {

enum TpccTable : uint32_t {
  kWarehouse = 10,
  kDistrict = 11,
  kCustomer = 12,
  kHistory = 13,
  kNewOrderTab = 14,
  kOrders = 15,
  kOrderLine = 16,
  kItem = 17,
  kStock = 18,
};

enum class TpccTxnType : int {
  kNewOrder = 0,
  kPayment = 1,
  kOrderStatus = 2,
  kDelivery = 3,
  kStockLevel = 4,
};

const char* TpccTxnTypeName(TpccTxnType type);

struct TpccConfig {
  std::vector<NodeId> data_sources;
  uint64_t warehouses_per_node = 16;
  int districts_per_warehouse = 10;
  uint64_t customers_per_district = 3000;
  uint64_t items = 100000;
  double distributed_ratio = 0.2;
  /// Mix weights for {NewOrder, Payment, OrderStatus, Delivery, StockLevel};
  /// need not sum to 1. The standard mix per TPC-C is ~{45,43,4,4,4}.
  std::array<double, 5> mix = {0.45, 0.43, 0.04, 0.04, 0.04};
};

class TpccGenerator : public WorkloadGenerator {
 public:
  explicit TpccGenerator(TpccConfig config);

  TxnSpec Next(Rng& rng) override;
  void RegisterTables(middleware::Catalog* catalog) const override;

  const TpccConfig& config() const { return config_; }

  // Key encoders (public: tests and benches use them).
  static uint64_t WarehouseKey(uint64_t w) { return w << 48; }
  static uint64_t DistrictKey(uint64_t w, uint64_t d) {
    return (w << 48) | d;
  }
  static uint64_t CustomerKey(uint64_t w, uint64_t d, uint64_t c) {
    return (w << 48) | (d << 32) | c;
  }
  static uint64_t StockKey(uint64_t w, uint64_t item) {
    return (w << 48) | item;
  }
  static uint64_t ItemKey(uint64_t home_w, uint64_t item) {
    return (home_w << 48) | item;
  }

 private:
  TxnSpec NewOrder(Rng& rng);
  TxnSpec Payment(Rng& rng);
  TxnSpec OrderStatus(Rng& rng);
  TxnSpec Delivery(Rng& rng);
  TxnSpec StockLevel(Rng& rng);

  uint64_t TotalWarehouses() const {
    return config_.warehouses_per_node * config_.data_sources.size();
  }
  size_t NodeOfWarehouse(uint64_t w) const {
    return static_cast<size_t>(w / config_.warehouses_per_node);
  }
  /// A warehouse on a different data node than `home` (for distributed
  /// NewOrder/Payment); falls back to home with a single node.
  uint64_t RemoteWarehouse(uint64_t home, Rng& rng);
  /// NURand-style customer id (approximated by zipf-lite uniform here).
  uint64_t PickCustomer(Rng& rng) const;

  TpccConfig config_;
  uint64_t fresh_counter_ = 1;  ///< unique ids for inserted rows
};

}  // namespace workload
}  // namespace geotp

#endif  // GEOTP_WORKLOAD_TPCC_H_
