// Latency histogram with HDR-style logarithmic buckets.
//
// Records Micros values; supports mean, percentiles (p50/p99/p99.9), CDF
// extraction (Fig. 8) and merging. Bucket resolution: values up to 1 ms are
// exact to 1 us; beyond that, buckets grow geometrically with ~1% relative
// error, which is far below the differences the paper reports.
#ifndef GEOTP_METRICS_HISTOGRAM_H_
#define GEOTP_METRICS_HISTOGRAM_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.h"

namespace geotp {
namespace metrics {

class Histogram {
 public:
  Histogram();

  void Record(Micros value);
  void Merge(const Histogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  Micros min() const { return count_ == 0 ? 0 : min_; }
  Micros max() const { return max_; }
  double Mean() const;

  /// Percentile in [0, 100]; returns an upper bound of the bucket containing
  /// the requested rank. Empty histogram returns 0.
  Micros Percentile(double pct) const;

  Micros P50() const { return Percentile(50.0); }
  Micros P95() const { return Percentile(95.0); }
  Micros P99() const { return Percentile(99.0); }
  Micros P999() const { return Percentile(99.9); }

  /// Extracts (latency_us, cumulative_fraction) points — one per non-empty
  /// bucket — for CDF plots.
  std::vector<std::pair<Micros, double>> Cdf() const;

 private:
  static constexpr int kLinearBuckets = 1000;   // [0, 1ms) at 1us each
  static constexpr double kGrowth = 1.01;       // geometric growth after 1ms

  int BucketFor(Micros value) const;
  Micros BucketUpperBound(int bucket) const;

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  Micros min_ = 0;
  Micros max_ = 0;
};

}  // namespace metrics
}  // namespace geotp

#endif  // GEOTP_METRICS_HISTOGRAM_H_
