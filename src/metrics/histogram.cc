#include "metrics/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace geotp {
namespace metrics {

namespace {
// Number of geometric buckets needed to cover ~1 hour of latency.
int GeometricBucketCount() {
  static const int kCount = []() {
    double bound = 1000.0;  // 1 ms, in us
    int n = 0;
    while (bound < 3.6e9) {  // 1 hour in us
      bound *= 1.01;
      ++n;
    }
    return n;
  }();
  return kCount;
}
}  // namespace

Histogram::Histogram()
    : buckets_(static_cast<size_t>(kLinearBuckets + GeometricBucketCount()),
               0) {}

int Histogram::BucketFor(Micros value) const {
  if (value < 0) value = 0;
  if (value < kLinearBuckets) return static_cast<int>(value);
  const double ratio = static_cast<double>(value) / kLinearBuckets;
  int idx = kLinearBuckets +
            static_cast<int>(std::log(ratio) / std::log(kGrowth));
  if (idx >= static_cast<int>(buckets_.size())) {
    idx = static_cast<int>(buckets_.size()) - 1;
  }
  return idx;
}

Micros Histogram::BucketUpperBound(int bucket) const {
  if (bucket < kLinearBuckets) return bucket;
  return static_cast<Micros>(
      kLinearBuckets * std::pow(kGrowth, bucket - kLinearBuckets + 1));
}

void Histogram::Record(Micros value) {
  if (value < 0) value = 0;
  buckets_[static_cast<size_t>(BucketFor(value))]++;
  if (count_ == 0 || value < min_) min_ = value;
  if (value > max_) max_ = value;
  sum_ += static_cast<double>(value);
  ++count_;
}

void Histogram::Merge(const Histogram& other) {
  GEOTP_CHECK(buckets_.size() == other.buckets_.size(), "bucket mismatch");
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  if (other.count_ > 0) {
    if (count_ == 0 || other.min_ < min_) min_ = other.min_;
    max_ = std::max(max_, other.max_);
  }
  sum_ += other.sum_;
  count_ += other.count_;
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0;
  max_ = 0;
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

Micros Histogram::Percentile(double pct) const {
  if (count_ == 0) return 0;
  pct = std::clamp(pct, 0.0, 100.0);
  const auto target = static_cast<uint64_t>(
      std::ceil(pct / 100.0 * static_cast<double>(count_)));
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target && buckets_[i] > 0) {
      return std::min(BucketUpperBound(static_cast<int>(i)), max_);
    }
  }
  return max_;
}

std::vector<std::pair<Micros, double>> Histogram::Cdf() const {
  std::vector<std::pair<Micros, double>> points;
  if (count_ == 0) return points;
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    seen += buckets_[i];
    points.emplace_back(BucketUpperBound(static_cast<int>(i)),
                        static_cast<double>(seen) /
                            static_cast<double>(count_));
  }
  return points;
}

}  // namespace metrics
}  // namespace geotp
