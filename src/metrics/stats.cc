#include "metrics/stats.h"

#include <sstream>

#include "common/logging.h"

namespace geotp {
namespace metrics {

const char* TxnPhaseName(TxnPhase phase) {
  switch (phase) {
    case TxnPhase::kAnalysis:
      return "analysis";
    case TxnPhase::kExecution:
      return "execution";
    case TxnPhase::kPrepare:
      return "prepare";
    case TxnPhase::kCommit:
      return "commit";
    case TxnPhase::kNumPhases:
      break;
  }
  return "?";
}

void PhaseBreakdown::Record(TxnPhase phase, Micros duration) {
  const int i = static_cast<int>(phase);
  GEOTP_CHECK(i >= 0 && i < kN, "phase " << i);
  total_[i] += duration;
  count_[i] += 1;
  hist_[i].Record(duration);
}

void PhaseBreakdown::Merge(const PhaseBreakdown& other) {
  for (int i = 0; i < kN; ++i) {
    total_[i] += other.total_[i];
    count_[i] += other.count_[i];
    hist_[i].Merge(other.hist_[i]);
  }
}

Micros PhaseBreakdown::total(TxnPhase phase) const {
  return total_[static_cast<int>(phase)];
}

uint64_t PhaseBreakdown::count(TxnPhase phase) const {
  return count_[static_cast<int>(phase)];
}

double PhaseBreakdown::MeanMs(TxnPhase phase) const {
  const int i = static_cast<int>(phase);
  return count_[i] == 0 ? 0.0
                        : MicrosToMs(total_[i]) /
                              static_cast<double>(count_[i]);
}

double PhaseBreakdown::P50Ms(TxnPhase phase) const {
  return MicrosToMs(hist_[static_cast<int>(phase)].P50());
}

double PhaseBreakdown::P99Ms(TxnPhase phase) const {
  return MicrosToMs(hist_[static_cast<int>(phase)].P99());
}

const Histogram& PhaseBreakdown::histogram(TxnPhase phase) const {
  return hist_[static_cast<int>(phase)];
}

std::string PhaseBreakdown::ToString() const {
  std::ostringstream oss;
  for (int i = 0; i < kN; ++i) {
    const auto phase = static_cast<TxnPhase>(i);
    if (i > 0) oss << ", ";
    oss << TxnPhaseName(phase) << "=" << MeanMs(phase) << "ms";
  }
  return oss.str();
}

ThroughputSeries::ThroughputSeries(Micros interval) : interval_(interval) {
  GEOTP_CHECK(interval_ > 0, "interval must be positive");
}

void ThroughputSeries::OnCommit(Micros when) {
  const auto bucket = static_cast<size_t>(when / interval_);
  if (bucket >= counts_.size()) counts_.resize(bucket + 1, 0);
  counts_[bucket]++;
}

std::vector<std::pair<double, double>> ThroughputSeries::Points() const {
  std::vector<std::pair<double, double>> points;
  points.reserve(counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i) {
    const double end_sec = MicrosToSec(static_cast<Micros>(i + 1) * interval_);
    const double tps = static_cast<double>(counts_[i]) /
                       MicrosToSec(interval_);
    points.emplace_back(end_sec, tps);
  }
  return points;
}

}  // namespace metrics
}  // namespace geotp
