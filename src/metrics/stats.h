// Experiment-level statistics: throughput accounting, abort-rate tracking,
// per-phase latency breakdown (Fig. 6c), and time-series sampling
// (Fig. 11b plots throughput over simulated time).
#ifndef GEOTP_METRICS_STATS_H_
#define GEOTP_METRICS_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "metrics/histogram.h"

namespace geotp {
namespace metrics {

/// Phases of a transaction's lifecycle, used for the Fig. 6c breakdown.
enum class TxnPhase : int {
  kAnalysis = 0,   ///< parse/rewrite/schedule work at the DM
  kExecution,      ///< statement execution (incl. postpone + network)
  kPrepare,        ///< waiting for (decentralized) prepare results
  kCommit,         ///< commit round
  kNumPhases,
};

const char* TxnPhaseName(TxnPhase phase);

/// Accumulates per-phase time; one instance per experiment run. Keeps a
/// full histogram per phase alongside the totals, so Fig. 6c can report
/// tail (p50/p99) per-phase latency, not just means.
class PhaseBreakdown {
 public:
  void Record(TxnPhase phase, Micros duration);
  void Merge(const PhaseBreakdown& other);

  Micros total(TxnPhase phase) const;
  uint64_t count(TxnPhase phase) const;
  double MeanMs(TxnPhase phase) const;
  double P50Ms(TxnPhase phase) const;
  double P99Ms(TxnPhase phase) const;
  const Histogram& histogram(TxnPhase phase) const;
  std::string ToString() const;

 private:
  static constexpr int kN = static_cast<int>(TxnPhase::kNumPhases);
  Micros total_[kN] = {};
  uint64_t count_[kN] = {};
  Histogram hist_[kN];
};

/// Everything an experiment run reports. Committed counts only measured
/// transactions (those finishing inside the measurement window).
struct RunStats {
  uint64_t committed = 0;
  uint64_t aborted = 0;         ///< user-visible aborts (after retries, if any)
  uint64_t abort_events = 0;    ///< every internal abort, incl. retried ones
  uint64_t admission_blocked = 0;  ///< late-scheduling blocks (O3)
  // Overload control (client side).
  uint64_t sheds = 0;            ///< Overloaded replies received
  uint64_t retries = 0;          ///< resubmits after an abort or a shed
  uint64_t retry_exhausted = 0;  ///< transactions abandoned at the budget
  Micros measured_duration = 0;

  Histogram latency;                ///< all committed txns
  Histogram centralized_latency;    ///< committed single-source txns
  Histogram distributed_latency;    ///< committed multi-source txns
  PhaseBreakdown breakdown;

  double ThroughputTps() const {
    return measured_duration <= 0
               ? 0.0
               : static_cast<double>(committed) /
                     MicrosToSec(measured_duration);
  }
  /// Abort rate as the paper reports it: aborts / attempts.
  double AbortRate() const {
    const uint64_t attempts = committed + abort_events;
    return attempts == 0
               ? 0.0
               : static_cast<double>(abort_events) /
                     static_cast<double>(attempts);
  }
};

/// Fixed-interval throughput sampler for time-series plots (Fig. 11b).
class ThroughputSeries {
 public:
  explicit ThroughputSeries(Micros interval = SecToMicros(1));

  /// Call once per commit with the commit completion time.
  void OnCommit(Micros when);

  /// (interval_end_sec, tps) points.
  std::vector<std::pair<double, double>> Points() const;

 private:
  Micros interval_;
  std::vector<uint64_t> counts_;
};

}  // namespace metrics
}  // namespace geotp

#endif  // GEOTP_METRICS_STATS_H_
