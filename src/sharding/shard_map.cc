#include "sharding/shard_map.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace geotp {
namespace sharding {

std::string ShardRange::ToString() const {
  std::ostringstream out;
  out << "t" << table << "[" << lo << "," << hi << ")@" << owner << "/v"
      << version;
  return out.str();
}

ShardMap ShardMap::FromRangePartition(uint32_t table, uint64_t keys_per_node,
                                      const std::vector<NodeId>& owners,
                                      uint64_t chunks_per_owner) {
  GEOTP_CHECK(!owners.empty() && keys_per_node > 0 && chunks_per_owner > 0,
              "bad shard layout for table " << table);
  ShardMap map;
  for (size_t i = 0; i < owners.size(); ++i) {
    const uint64_t base = i * keys_per_node;
    for (uint64_t c = 0; c < chunks_per_owner; ++c) {
      ShardRange range;
      range.table = table;
      range.lo = base + c * keys_per_node / chunks_per_owner;
      range.hi = base + (c + 1) * keys_per_node / chunks_per_owner;
      // The catalog clamps keys beyond the last boundary to the last node;
      // the final chunk mirrors that by extending to the key-space end.
      if (i + 1 == owners.size() && c + 1 == chunks_per_owner) {
        range.hi = UINT64_MAX;
      }
      range.owner = owners[i];
      range.version = 0;
      if (range.lo < range.hi) map.ranges_.push_back(range);
    }
  }
  return map;
}

size_t ShardMap::Find(const RecordKey& key) const {
  // Binary search for the last range with (table, lo) <= (key.table, key).
  size_t lo = 0, hi = ranges_.size();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    const ShardRange& r = ranges_[mid];
    if (r.table < key.table || (r.table == key.table && r.lo <= key.key)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == 0) return ranges_.size();
  const ShardRange& candidate = ranges_[lo - 1];
  return candidate.Contains(key) ? lo - 1 : ranges_.size();
}

NodeId ShardMap::Route(const RecordKey& key) const {
  const size_t idx = Find(key);
  return idx == ranges_.size() ? kInvalidNode : ranges_[idx].owner;
}

const ShardRange* ShardMap::RangeOf(const RecordKey& key) const {
  const size_t idx = Find(key);
  return idx == ranges_.size() ? nullptr : &ranges_[idx];
}

bool ShardMap::Move(size_t idx, NodeId new_owner, uint64_t version) {
  GEOTP_CHECK(idx < ranges_.size(), "shard index out of range");
  if (version <= epoch_ && version <= ranges_[idx].version) return false;
  ranges_[idx].owner = new_owner;
  ranges_[idx].version = version;
  epoch_ = std::max(epoch_, version);
  return true;
}

bool ShardMap::Split(size_t idx, uint64_t at, uint64_t version) {
  if (idx >= ranges_.size()) return false;
  ShardRange& range = ranges_[idx];
  if (at <= range.lo || at >= range.hi) return false;
  if (version <= epoch_) return false;
  ShardRange right = range;
  right.lo = at;
  right.version = version;
  range.hi = at;
  range.version = version;
  epoch_ = version;
  ranges_.insert(ranges_.begin() + static_cast<ptrdiff_t>(idx) + 1, right);
  return true;
}

bool ShardMap::SplitAt(uint32_t table, uint64_t at, uint64_t version) {
  const size_t idx = Find(RecordKey{table, at});
  return idx < ranges_.size() && Split(idx, at, version);
}

bool ShardMap::Merge(size_t idx, uint64_t version) {
  if (idx + 1 >= ranges_.size()) return false;
  ShardRange& left = ranges_[idx];
  const ShardRange& right = ranges_[idx + 1];
  if (left.table != right.table || left.hi != right.lo ||
      left.owner != right.owner) {
    return false;
  }
  if (version <= epoch_) return false;
  left.hi = right.hi;
  left.version = version;
  epoch_ = version;
  ranges_.erase(ranges_.begin() + static_cast<ptrdiff_t>(idx) + 1);
  return true;
}

void ShardMap::InsertSorted(const ShardRange& entry) {
  auto pos = std::upper_bound(
      ranges_.begin(), ranges_.end(), entry,
      [](const ShardRange& a, const ShardRange& b) {
        if (a.table != b.table) return a.table < b.table;
        return a.lo < b.lo;
      });
  ranges_.insert(pos, entry);
}

bool ShardMap::AdoptOne(const ShardRange& entry) {
  // The incoming entry claims the sub-spans of [entry.lo, entry.hi) where
  // every local range covering them is strictly older; newer local ranges
  // block it on their piece. Rebuild the window accordingly: older locals
  // lose their overlapped part (their out-of-window parts survive with
  // their own version), then the unblocked gaps fill with entry-pieces.
  bool changed = false;
  std::vector<ShardRange> rebuilt;  // replacement for the window's locals
  std::vector<std::pair<uint64_t, uint64_t>> blocked;  // newer local spans
  size_t first = ranges_.size();
  size_t i = 0;
  for (; i < ranges_.size(); ++i) {
    const ShardRange& local = ranges_[i];
    if (local.table < entry.table ||
        (local.table == entry.table && local.hi <= entry.lo)) {
      continue;
    }
    if (local.table > entry.table || local.lo >= entry.hi) break;
    if (first == ranges_.size()) first = i;
    if (local.version >= entry.version) {
      rebuilt.push_back(local);
      blocked.emplace_back(std::max(local.lo, entry.lo),
                           std::min(local.hi, entry.hi));
      continue;
    }
    // Older local: keep only the parts outside the window.
    if (local.lo < entry.lo) {
      ShardRange left = local;
      left.hi = entry.lo;
      rebuilt.push_back(left);
    }
    if (local.hi > entry.hi) {
      ShardRange right = local;
      right.lo = entry.hi;
      rebuilt.push_back(right);
    }
    changed = true;
  }
  // Entry-pieces: the window minus the blocked (newer) sub-spans.
  uint64_t cursor = entry.lo;
  for (const auto& [blo, bhi] : blocked) {
    if (cursor < blo) {
      ShardRange piece = entry;
      piece.lo = cursor;
      piece.hi = blo;
      rebuilt.push_back(piece);
      changed = true;
    }
    cursor = std::max(cursor, bhi);
  }
  if (cursor < entry.hi) {
    ShardRange piece = entry;
    piece.lo = cursor;
    piece.hi = entry.hi;
    rebuilt.push_back(piece);
    changed = true;
  }
  if (changed) {
    std::sort(rebuilt.begin(), rebuilt.end(),
              [](const ShardRange& a, const ShardRange& b) {
                if (a.table != b.table) return a.table < b.table;
                return a.lo < b.lo;
              });
    if (first == ranges_.size()) first = i;
    ranges_.erase(ranges_.begin() + static_cast<ptrdiff_t>(first),
                  ranges_.begin() + static_cast<ptrdiff_t>(i));
    ranges_.insert(ranges_.begin() + static_cast<ptrdiff_t>(first),
                   rebuilt.begin(), rebuilt.end());
  }
  epoch_ = std::max(epoch_, entry.version);
  return changed;
}

bool ShardMap::Adopt(const std::vector<ShardRange>& entries) {
  bool changed = false;
  for (const ShardRange& entry : entries) {
    if (entry.lo >= entry.hi) continue;  // malformed span
    changed |= AdoptOne(entry);
  }
  return changed;
}

bool ShardMap::IsPartition(uint32_t table) const {
  uint64_t cursor = 0;
  bool seen = false;
  for (const ShardRange& range : ranges_) {
    if (range.table != table) continue;
    if (!seen) {
      if (range.lo != 0) return false;
      seen = true;
    } else if (range.lo != cursor) {
      return false;  // gap or overlap
    }
    if (range.hi <= range.lo) return false;
    cursor = range.hi;
  }
  return seen && cursor == UINT64_MAX;
}

}  // namespace sharding
}  // namespace geotp
