#include "sharding/shard_map.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace geotp {
namespace sharding {

std::string ShardRange::ToString() const {
  std::ostringstream out;
  out << "t" << table << "[" << lo << "," << hi << ")@" << owner << "/v"
      << version;
  return out.str();
}

ShardMap ShardMap::FromRangePartition(uint32_t table, uint64_t keys_per_node,
                                      const std::vector<NodeId>& owners,
                                      uint64_t chunks_per_owner) {
  GEOTP_CHECK(!owners.empty() && keys_per_node > 0 && chunks_per_owner > 0,
              "bad shard layout for table " << table);
  ShardMap map;
  for (size_t i = 0; i < owners.size(); ++i) {
    const uint64_t base = i * keys_per_node;
    for (uint64_t c = 0; c < chunks_per_owner; ++c) {
      ShardRange range;
      range.table = table;
      range.lo = base + c * keys_per_node / chunks_per_owner;
      range.hi = base + (c + 1) * keys_per_node / chunks_per_owner;
      // The catalog clamps keys beyond the last boundary to the last node;
      // the final chunk mirrors that by extending to the key-space end.
      if (i + 1 == owners.size() && c + 1 == chunks_per_owner) {
        range.hi = UINT64_MAX;
      }
      range.owner = owners[i];
      range.version = 0;
      if (range.lo < range.hi) map.ranges_.push_back(range);
    }
  }
  return map;
}

size_t ShardMap::Find(const RecordKey& key) const {
  // Binary search for the last range with (table, lo) <= (key.table, key).
  size_t lo = 0, hi = ranges_.size();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    const ShardRange& r = ranges_[mid];
    if (r.table < key.table || (r.table == key.table && r.lo <= key.key)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == 0) return ranges_.size();
  const ShardRange& candidate = ranges_[lo - 1];
  return candidate.Contains(key) ? lo - 1 : ranges_.size();
}

NodeId ShardMap::Route(const RecordKey& key) const {
  const size_t idx = Find(key);
  return idx == ranges_.size() ? kInvalidNode : ranges_[idx].owner;
}

const ShardRange* ShardMap::RangeOf(const RecordKey& key) const {
  const size_t idx = Find(key);
  return idx == ranges_.size() ? nullptr : &ranges_[idx];
}

bool ShardMap::Move(size_t idx, NodeId new_owner, uint64_t version) {
  GEOTP_CHECK(idx < ranges_.size(), "shard index out of range");
  if (version <= epoch_ && version <= ranges_[idx].version) return false;
  ranges_[idx].owner = new_owner;
  ranges_[idx].version = version;
  epoch_ = std::max(epoch_, version);
  return true;
}

void ShardMap::InsertSorted(const ShardRange& entry) {
  auto pos = std::upper_bound(
      ranges_.begin(), ranges_.end(), entry,
      [](const ShardRange& a, const ShardRange& b) {
        if (a.table != b.table) return a.table < b.table;
        return a.lo < b.lo;
      });
  ranges_.insert(pos, entry);
}

bool ShardMap::Adopt(const std::vector<ShardRange>& entries) {
  bool changed = false;
  for (const ShardRange& entry : entries) {
    bool found = false;
    for (ShardRange& local : ranges_) {
      if (!local.SameSpan(entry)) continue;
      found = true;
      if (entry.version > local.version) {
        local.owner = entry.owner;
        local.version = entry.version;
        changed = true;
      }
      break;
    }
    if (!found) {
      InsertSorted(entry);
      changed = true;
    }
    epoch_ = std::max(epoch_, entry.version);
  }
  return changed;
}

}  // namespace sharding
}  // namespace geotp
