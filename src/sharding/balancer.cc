#include "sharding/balancer.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "middleware/middleware.h"
#include "protocol/messages.h"

namespace geotp {
namespace sharding {

using protocol::ShardCutoverReady;
using protocol::ShardMapUpdate;
using protocol::ShardMigrateCancel;
using protocol::ShardMigrateRequest;

ShardBalancer::ShardBalancer(middleware::MiddlewareNode* dm,
                             BalancerConfig config)
    : dm_(dm), config_(std::move(config)) {}

void ShardBalancer::Start() {
  // Version allocation is monotone for the balancer's whole lifetime:
  // resetting it per tick could mint the same version for two in-flight
  // migrations and defeat the per-range staleness check.
  next_version_ = std::max(next_version_, dm_->catalog().ShardEpoch());
  // The generation guard kills any tick chain from before a crash, so a
  // restart (which calls Start() again) never ends up with two chains.
  ArmTick(++generation_);
}

void ShardBalancer::ArmTick(uint64_t generation) {
  dm_->loop()->Schedule(config_.interval, [this, generation]() {
    if (generation != generation_) return;  // superseded by a restart
    if (dm_->crashed()) return;  // chain ends; Restart() starts a new one
    Tick();
    ArmTick(generation);
  });
}

bool ShardBalancer::HandleMessage(sim::MessageBase* msg) {
  if (msg->type() != sim::MessageType::kShardCutoverReady) return false;
  const auto& ready = static_cast<ShardCutoverReady&>(*msg);
  OnCutoverReady(ready.migration_id, ready.range);
  return true;
}

void ShardBalancer::Tick() {
  if (dm_->crashed()) return;
  stats_.ticks++;
  CancelExpired();
  PlanMigrations();
}

void ShardBalancer::CancelExpired() {
  const Micros now = dm_->loop()->Now();
  for (auto it = in_flight_.begin(); it != in_flight_.end();) {
    if (now < it->deadline) {
      ++it;
      continue;
    }
    stats_.migrations_cancelled++;
    // Both ends hold per-migration state: the source its outbound fence /
    // delta queue, the destination its inbound ordering buffer.
    for (NodeId end : {it->source, it->dest}) {
      auto cancel = std::make_unique<ShardMigrateCancel>();
      cancel->from = dm_->id();
      cancel->to = dm_->catalog().LeaderOf(end);
      cancel->migration_id = it->id;
      dm_->network()->Send(std::move(cancel));
    }
    it = in_flight_.erase(it);
  }
}

void ShardBalancer::PlanMigrations() {
  middleware::Catalog& catalog = dm_->catalog();
  if (!catalog.HasShardMap()) return;
  const ShardMap& map = catalog.shard_map();
  const std::vector<ShardRange>& ranges = map.ranges();
  last_heat_.resize(ranges.size(), 0);
  cooldown_until_.resize(ranges.size(), 0);

  // Nearest data source by the monitor's live RTT estimates. Only sampled
  // sources qualify (an unsampled estimate reads 0, which would look
  // infinitely attractive).
  const std::vector<NodeId> sources = catalog.AllDataSources();
  NodeId best = kInvalidNode;
  Micros best_rtt = 0;
  for (NodeId logical : sources) {
    const Micros rtt = dm_->monitor().RttEstimate(logical);
    if (rtt <= 0) continue;
    if (best == kInvalidNode || rtt < best_rtt) {
      best = logical;
      best_rtt = rtt;
    }
  }
  if (best == kInvalidNode) return;

  // Per-range heat since the last tick, from the footprint's AVL range
  // scans (the same statistics that drive the Eq. 5/9 forecasts).
  const Micros now = dm_->loop()->Now();
  struct Candidate {
    size_t idx;
    uint64_t heat;
    Micros gain;
  };
  std::vector<Candidate> candidates;
  for (size_t i = 0; i < ranges.size(); ++i) {
    const ShardRange& range = ranges[i];
    uint64_t total = 0;
    const auto records = dm_->footprint().Range(
        RecordKey{range.table, range.lo},
        RecordKey{range.table, range.hi - 1});
    for (const auto& [key, stats] : records) total += stats.t_cnt;
    // The footprint is an LRU cache: evictions reset per-record t_cnt, so
    // the cumulative sum can shrink between ticks. A shrunken sum means
    // the range re-accumulated at least `total` accesses since eviction —
    // use that instead of clamping the delta to zero, which would starve
    // a hot-but-churning range forever.
    const uint64_t heat =
        total >= last_heat_[i] ? total - last_heat_[i] : total;
    last_heat_[i] = total;
    if (heat < config_.min_heat) continue;
    if (now < cooldown_until_[i]) continue;
    if (range.owner == best) continue;
    bool migrating = false;
    for (const Migration& m : in_flight_) {
      if (m.range_idx == i) migrating = true;
    }
    if (migrating) continue;
    const Micros owner_rtt = dm_->monitor().RttEstimate(range.owner);
    if (owner_rtt <= 0) continue;
    const Micros gain = owner_rtt - best_rtt;
    if (gain < config_.min_rtt_gain) continue;
    candidates.push_back(Candidate{i, heat, gain});
  }
  // Hottest first: each migration costs a fence window, so spend it on
  // the ranges that remove the most WAN round trips.
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.heat != b.heat) return a.heat > b.heat;
              return a.gain > b.gain;
            });

  for (const Candidate& c : candidates) {
    if (static_cast<int>(in_flight_.size()) >= config_.max_concurrent) break;
    const ShardRange& range = ranges[c.idx];
    Migration m;
    m.id = next_migration_id_++;
    m.range_idx = c.idx;
    m.source = range.owner;
    m.dest = best;
    next_version_ = std::max(next_version_, map.epoch()) + 1;
    m.new_version = next_version_;
    m.deadline = now + config_.migration_timeout;
    m.source_leader_epoch = catalog.EpochOf(range.owner);
    m.dest_leader_epoch = catalog.EpochOf(best);
    stats_.migrations_started++;
    GEOTP_INFO("balancer: migrating " << range.ToString() << " -> " << best
                                      << " (heat " << c.heat << ", gain "
                                      << MicrosToMs(c.gain) << " ms)");
    auto req = std::make_unique<ShardMigrateRequest>();
    req->from = dm_->id();
    req->to = catalog.LeaderOf(range.owner);
    req->migration_id = m.id;
    req->range = range;
    req->dest = best;
    req->dest_leader = catalog.LeaderOf(best);
    req->new_version = m.new_version;
    req->timeout = config_.migration_timeout;
    dm_->network()->Send(std::move(req));
    in_flight_.push_back(m);
  }
}

void ShardBalancer::OnCutoverReady(uint64_t migration_id,
                                   const ShardRange& range) {
  auto it = std::find_if(
      in_flight_.begin(), in_flight_.end(),
      [migration_id](const Migration& m) { return m.id == migration_id; });
  if (it == in_flight_.end()) return;  // cancelled; placement unchanged
  const Migration m = *it;
  in_flight_.erase(it);
  middleware::Catalog& catalog = dm_->catalog();
  // A failover at either end since planning invalidates the protocol
  // state behind this report (the fence and the installed records are
  // node-local and died with the deposed leader): do NOT publish — the
  // range stays at the source, which is always safe — and let a later
  // tick retry the migration against the new leadership.
  if (catalog.EpochOf(m.source) != m.source_leader_epoch ||
      catalog.EpochOf(m.dest) != m.dest_leader_epoch) {
    stats_.migrations_cancelled++;
    auto cancel = std::make_unique<ShardMigrateCancel>();
    cancel->from = dm_->id();
    cancel->to = catalog.LeaderOf(m.source);
    cancel->migration_id = m.id;
    dm_->network()->Send(std::move(cancel));
    return;
  }
  stats_.migrations_completed++;
  GEOTP_CHECK(range.owner == m.dest && range.version == m.new_version,
              "cutover report does not match the planned migration");
  catalog.mutable_shard_map().Move(m.range_idx, m.dest, m.new_version);
  dm_->NoteShardEpoch(catalog.ShardEpoch());
  if (m.range_idx < cooldown_until_.size()) {
    cooldown_until_[m.range_idx] =
        dm_->loop()->Now() + config_.range_cooldown;
  }
  Publish();
}

void ShardBalancer::Publish() {
  stats_.map_publishes++;
  middleware::Catalog& catalog = dm_->catalog();
  std::vector<NodeId> targets = config_.peer_middlewares;
  for (NodeId logical : catalog.AllDataSources()) {
    targets.push_back(catalog.LeaderOf(logical));
    for (NodeId follower : catalog.FollowersOf(logical)) {
      targets.push_back(follower);
    }
  }
  for (NodeId target : targets) {
    if (target == dm_->id()) continue;  // adopted locally already
    auto update = std::make_unique<ShardMapUpdate>();
    update->from = dm_->id();
    update->to = target;
    update->entries = catalog.shard_map().ranges();
    dm_->network()->Send(std::move(update));
  }
}

}  // namespace sharding
}  // namespace geotp
