#include "sharding/balancer.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "core/hotspot_footprint.h"
#include "middleware/middleware.h"
#include "protocol/messages.h"

namespace geotp {
namespace sharding {

using protocol::ShardCutoverReady;
using protocol::ShardMapUpdate;
using protocol::ShardMigrateCancel;
using protocol::ShardMigrateRequest;

ShardBalancer::ShardBalancer(middleware::MiddlewareNode* dm,
                             BalancerConfig config)
    : dm_(dm), config_(std::move(config)) {}

void ShardBalancer::Start() {
  // Version allocation is monotone for the balancer's whole lifetime:
  // resetting it per tick could mint the same version for two in-flight
  // migrations and defeat the per-range staleness check.
  next_version_ = std::max(next_version_, dm_->catalog().ShardEpoch());
  // The generation guard kills any tick chain from before a crash, so a
  // restart (which calls Start() again) never ends up with two chains.
  ArmTick(++generation_);
}

void ShardBalancer::ArmTick(uint64_t generation) {
  dm_->loop()->Schedule(config_.interval, [this, generation]() {
    if (generation != generation_) return;  // superseded by a restart
    if (dm_->crashed()) return;  // chain ends; Restart() starts a new one
    Tick();
    ArmTick(generation);
  });
}

bool ShardBalancer::HandleMessage(sim::MessageBase* msg) {
  switch (msg->type()) {
    case sim::MessageType::kShardCutoverReady:
      OnCutoverReady(static_cast<ShardCutoverReady&>(*msg));
      return true;
    case sim::MessageType::kShardMigrateAborted: {
      const auto& aborted = static_cast<protocol::ShardMigrateAborted&>(*msg);
      OnMigrateAborted(aborted.migration_id);
      return true;
    }
    default:
      return false;
  }
}

void ShardBalancer::Tick() {
  if (dm_->crashed()) return;
  stats_.ticks++;
  CancelExpired();
  RepointFailedDestinations();
  PlanRangeOps();
}

void ShardBalancer::RepointFailedDestinations() {
  middleware::Catalog& catalog = dm_->catalog();
  for (Migration& m : in_flight_) {
    const uint64_t dest_epoch = catalog.EpochOf(m.dest);
    if (dest_epoch == m.dest_leader_epoch) continue;
    // The destination group elected a new leader mid-stream. The old
    // leader's ordering buffer died with it, but every acked chunk and
    // delta is quorum-durable in the group's log — so instead of letting
    // the timeout cancel-and-restart the whole transfer, point the source
    // at the new leader. It re-offers the sent chunks' content hashes and
    // the new leader declines the prefix its ingest journal holds; only
    // the tail re-crosses the WAN. The timeout stays armed as backstop.
    m.dest_leader_epoch = dest_epoch;
    stats_.migrations_repointed++;
    GEOTP_INFO("balancer: re-pointing migration "
               << m.id << " at new leader of group " << m.dest);
    auto req = std::make_unique<ShardMigrateRequest>();
    req->from = dm_->id();
    req->to = catalog.LeaderOf(m.source);
    req->migration_id = m.id;
    req->range = m.range;
    req->dest = m.dest;
    req->dest_leader = catalog.LeaderOf(m.dest);
    req->new_version = m.new_version;
    req->timeout = config_.migration_timeout;
    dm_->network()->Send(std::move(req));
  }
}

uint64_t ShardBalancer::MintVersion() {
  next_version_ =
      std::max(next_version_, dm_->catalog().ShardEpoch()) + 1;
  return next_version_;
}

bool ShardBalancer::Migrating(const ShardRange& range) const {
  for (const Migration& m : in_flight_) {
    if (m.range.table == range.table && m.range.lo < range.hi &&
        range.lo < m.range.hi) {
      return true;
    }
  }
  return false;
}

uint64_t ShardBalancer::FootprintCount(const ShardRange& range) const {
  uint64_t total = 0;
  const auto records = dm_->footprint().Range(
      RecordKey{range.table, range.lo}, RecordKey{range.table, range.hi - 1});
  for (const auto& [key, stats] : records) total += stats.t_cnt;
  return total;
}

void ShardBalancer::SeedSpan(const ShardRange& range) {
  RangeState& state = range_state_[KeyOf(range)];
  state.last_heat = FootprintCount(range);
  state.heat_seeded = true;
  state.cold_ticks = 0;
}

void ShardBalancer::CancelExpired() {
  const Micros now = dm_->loop()->Now();
  for (auto it = in_flight_.begin(); it != in_flight_.end();) {
    if (now < it->deadline) {
      ++it;
      continue;
    }
    stats_.migrations_cancelled++;
    // Both ends hold per-migration state: the source its outbound fence /
    // delta queue, the destination its inbound ordering buffer.
    for (NodeId end : {it->source, it->dest}) {
      auto cancel = std::make_unique<ShardMigrateCancel>();
      cancel->from = dm_->id();
      cancel->to = dm_->catalog().LeaderOf(end);
      cancel->migration_id = it->id;
      dm_->network()->Send(std::move(cancel));
    }
    it = in_flight_.erase(it);
  }
}

void ShardBalancer::PlanRangeOps() {
  middleware::Catalog& catalog = dm_->catalog();
  if (!catalog.HasShardMap()) return;
  const ShardMap& map = catalog.shard_map();

  // Per-range heat since the last tick, from the footprint's AVL range
  // scans (the same statistics that drive the Eq. 5/9 forecasts). The
  // footprint is an LRU cache: evictions reset per-record t_cnt, so the
  // cumulative sum can shrink between ticks. A shrunken sum means the
  // range re-accumulated at least `total` accesses since eviction — use
  // that instead of clamping the delta to zero, which would starve a
  // hot-but-churning range forever. Boundary changes retire old spans'
  // bookkeeping; new spans are seeded at their current cumulative count
  // (SeedSpan) so a split does not read as a heat spike.
  const std::vector<ShardRange> ranges = map.ranges();  // copy: ops mutate
  std::vector<uint64_t> heat(ranges.size(), 0);
  std::map<SpanKey, RangeState> next_state;
  for (size_t i = 0; i < ranges.size(); ++i) {
    const uint64_t total = FootprintCount(ranges[i]);
    RangeState state;
    auto it = range_state_.find(KeyOf(ranges[i]));
    if (it != range_state_.end()) state = it->second;
    if (state.heat_seeded) {
      heat[i] = total >= state.last_heat ? total - state.last_heat : total;
    }
    state.last_heat = total;
    state.heat_seeded = true;
    state.cold_ticks = heat[i] == 0 ? state.cold_ticks + 1 : 0;
    next_state[KeyOf(ranges[i])] = state;
  }
  range_state_ = std::move(next_state);

  // At most one boundary change per tick: it mutates the map, so heat and
  // migration planning restart cleanly against the new spans next tick —
  // except the split's hot child, which migrates right away on the
  // parent's heat evidence.
  if (config_.split_enabled) {
    const Micros now = dm_->loop()->Now();
    for (size_t i = 0; i < ranges.size(); ++i) {
      if (heat[i] < config_.min_heat) continue;
      if (Migrating(ranges[i])) continue;
      // The post-migration cooldown guards splits like migrations: a
      // freshly landed range must settle before its boundaries move
      // again (the children inherit the remaining window).
      const auto it = range_state_.find(KeyOf(ranges[i]));
      if (it != range_state_.end() && now < it->second.cooldown_until) {
        continue;
      }
      ShardRange hot_child;
      if (TrySplit(ranges[i], &hot_child)) {
        std::map<NodeId, int> placed = PlacedPressure();
        StartMigration(hot_child, heat[i], placed);
        return;
      }
    }
  }
  if (config_.merge_enabled && TryMergeCold()) return;

  PlanMigrations(heat);
}

void ShardBalancer::FinishSplit(const ShardRange& original) {
  stats_.splits++;
  // The children inherit the parent's remaining cooldown (a split must
  // not launder away the anti-flap window).
  Micros inherited_cooldown = 0;
  const auto parent = range_state_.find(KeyOf(original));
  if (parent != range_state_.end()) {
    inherited_cooldown = parent->second.cooldown_until;
  }
  // Seed the new spans so the boundary change is heat-neutral.
  for (const ShardRange& r : dm_->catalog().shard_map().ranges()) {
    if (r.table == original.table && r.lo >= original.lo &&
        r.lo < original.hi) {
      SeedSpan(r);
      range_state_[KeyOf(r)].cooldown_until = inherited_cooldown;
    }
  }
  dm_->NoteShardEpoch(dm_->catalog().ShardEpoch());
  Publish();
}

void ShardBalancer::FinishMerge(size_t idx, const SpanKey& left,
                                const SpanKey& right) {
  stats_.merges++;
  range_state_.erase(left);
  range_state_.erase(right);
  SeedSpan(dm_->catalog().shard_map().ranges()[idx]);
  dm_->NoteShardEpoch(dm_->catalog().ShardEpoch());
  Publish();
}

bool ShardBalancer::TrySplit(const ShardRange& range, ShardRange* hot_child) {
  const uint64_t width = range.hi - range.lo;
  if (width < 2 * config_.split_min_keys) return false;
  const size_t buckets =
      std::max<size_t>(2, static_cast<size_t>(config_.split_buckets));
  const core::HotspotFootprint::HeatHistogram hist =
      dm_->footprint().Histogram(RecordKey{range.table, range.lo},
                                 RecordKey{range.table, range.hi - 1},
                                 buckets);
  if (hist.empty() || hist.total == 0) return false;

  // Smallest contiguous bucket window holding >= split_skew_fraction of
  // the heat (two pointers).
  const uint64_t target = std::max<uint64_t>(
      1, static_cast<uint64_t>(static_cast<double>(hist.total) *
                               config_.split_skew_fraction));
  size_t best_lo = 0, best_hi = buckets;  // [lo, hi)
  uint64_t sum = 0;
  for (size_t lo = 0, hi = 0; hi < buckets || sum >= target;) {
    if (sum >= target) {
      if (hi - lo < best_hi - best_lo) {
        best_lo = lo;
        best_hi = hi;
      }
      sum -= hist.buckets[lo++];
    } else {
      sum += hist.buckets[hi++];
    }
  }
  uint64_t hot_lo = hist.extent_lo + best_lo * hist.bucket_width;
  uint64_t hot_hi = hist.extent_lo + best_hi * hist.bucket_width;
  // Widen to the minimum split width, clamp into the range.
  if (hot_hi - hot_lo < config_.split_min_keys) {
    hot_hi = hot_lo + config_.split_min_keys;
  }
  hot_lo = std::max(hot_lo, range.lo);
  hot_hi = std::min(hot_hi, range.hi);
  if (hot_hi <= hot_lo) return false;
  // Only split when the hot sub-range is a small part of the span —
  // otherwise the whole range is hot and migrating it outright is right.
  if (static_cast<double>(hot_hi - hot_lo) >
      static_cast<double>(width) * config_.split_max_fraction) {
    return false;
  }

  middleware::Catalog& catalog = dm_->catalog();
  bool split = false;
  // Right boundary first: splitting at hot_hi leaves [lo, hot_hi), whose
  // index still covers hot_lo for the second cut.
  if (hot_hi < range.hi) {
    split |= catalog.mutable_shard_map().SplitAt(range.table, hot_hi,
                                                 MintVersion());
  }
  if (hot_lo > range.lo) {
    split |= catalog.mutable_shard_map().SplitAt(range.table, hot_lo,
                                                 MintVersion());
  }
  if (!split) return false;
  GEOTP_INFO("balancer: split " << range.ToString() << " around hot ["
                                << hot_lo << "," << hot_hi << ")");
  if (hot_child != nullptr) {
    const ShardRange* child =
        catalog.shard_map().RangeOf(RecordKey{range.table, hot_lo});
    GEOTP_CHECK(child != nullptr, "split lost its hot child");
    *hot_child = *child;
  }
  FinishSplit(range);
  return true;
}

bool ShardBalancer::TryMergeCold() {
  middleware::Catalog& catalog = dm_->catalog();
  const std::vector<ShardRange>& ranges = catalog.shard_map().ranges();
  const Micros now = dm_->loop()->Now();
  for (size_t i = 0; i + 1 < ranges.size(); ++i) {
    const ShardRange& left = ranges[i];
    const ShardRange& right = ranges[i + 1];
    if (left.table != right.table || left.hi != right.lo ||
        left.owner != right.owner) {
      continue;
    }
    if (Migrating(left) || Migrating(right)) continue;
    bool cold = true;
    for (const ShardRange* r : {&left, &right}) {
      auto it = range_state_.find(KeyOf(*r));
      if (it == range_state_.end() ||
          it->second.cold_ticks < config_.merge_cold_ticks ||
          now < it->second.cooldown_until) {
        cold = false;
        break;
      }
    }
    if (!cold) continue;
    // Copies, not references: Merge() mutates the range vector, so `left`
    // and `right` would dangle past this point.
    const ShardRange left_copy = left;
    const ShardRange right_copy = right;
    if (!catalog.mutable_shard_map().Merge(i, MintVersion())) continue;
    GEOTP_INFO("balancer: merged " << left_copy.ToString() << " + "
                                   << right_copy.ToString());
    FinishMerge(i, KeyOf(left_copy), KeyOf(right_copy));
    return true;
  }
  return false;
}

NodeId ShardBalancer::PickDestination(const ShardRange& range,
                                      Micros owner_rtt,
                                      std::map<NodeId, int>& placed,
                                      bool* deferred) const {
  // Two-objective score per destination: RTT gain minus a load penalty.
  // The load penalty has a measured term and a placement term (ranges
  // already migrating to / recently landed on the destination), so a
  // burst of hot ranges spreads before the measured signal reacts. The
  // measured term is RELATIVE — destination in-flight load (reported on
  // ping pongs) minus the current owner's — so moving heat onto an idle
  // node near the DM is never penalized just because the deployment is
  // busy, and a range can only be deflected toward a less-loaded node,
  // never bounced back (the reverse move's RTT gain is negative): no
  // flapping. Only sampled destinations qualify (an unsampled estimate
  // reads 0, which would look infinitely attractive).
  const double owner_load = dm_->monitor().LoadEstimate(range.owner);
  NodeId best = kInvalidNode;
  Micros best_score = 0;
  bool rtt_gain_cleared = false;
  for (NodeId dest : dm_->catalog().AllDataSources()) {
    if (dest == range.owner) continue;
    const Micros dest_rtt = dm_->monitor().RttEstimate(dest);
    if (dest_rtt <= 0) continue;
    const Micros gain = owner_rtt - dest_rtt;
    if (gain >= config_.min_rtt_gain) rtt_gain_cleared = true;
    const double excess_load =
        std::max(0.0, dm_->monitor().LoadEstimate(dest) - owner_load);
    const Micros penalty =
        static_cast<Micros>(config_.capacity_weight * excess_load) +
        config_.placement_bias * placed[dest];
    const Micros score = gain - penalty;
    if (score < config_.min_rtt_gain) continue;
    if (best == kInvalidNode || score > best_score) {
      best = dest;
      best_score = score;
    }
  }
  if (deferred != nullptr) {
    *deferred = best == kInvalidNode && rtt_gain_cleared;
  }
  return best;
}

std::map<NodeId, int> ShardBalancer::PlacedPressure() const {
  // Placement pressure per destination: migrations currently in flight
  // toward it. Deliberately NOT ranges that already landed — completed
  // placements show up in the destination's measured load (the relative
  // capacity term) within an EWMA window; double-counting them here made
  // the balancer scatter co-accessed hot ranges across sources and
  // trade real RTT gains for cosmetic balance.
  std::map<NodeId, int> placed;
  for (const Migration& m : in_flight_) placed[m.dest]++;
  return placed;
}

void ShardBalancer::PlanMigrations(const std::vector<uint64_t>& heat) {
  middleware::Catalog& catalog = dm_->catalog();
  const std::vector<ShardRange>& ranges = catalog.shard_map().ranges();
  const Micros now = dm_->loop()->Now();
  std::map<NodeId, int> placed = PlacedPressure();

  struct Candidate {
    size_t idx;
    uint64_t heat;
  };
  std::vector<Candidate> candidates;
  for (size_t i = 0; i < ranges.size() && i < heat.size(); ++i) {
    if (heat[i] < config_.min_heat) continue;
    const auto it = range_state_.find(KeyOf(ranges[i]));
    if (it != range_state_.end() && now < it->second.cooldown_until) continue;
    if (Migrating(ranges[i])) continue;
    candidates.push_back(Candidate{i, heat[i]});
  }
  // Hottest first: each migration costs a fence window, so spend it on
  // the ranges that remove the most WAN round trips.
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.heat > b.heat;
            });

  for (const Candidate& c : candidates) {
    if (static_cast<int>(in_flight_.size()) >= config_.max_concurrent) break;
    StartMigration(ranges[c.idx], c.heat, placed);
  }
}

bool ShardBalancer::StartMigration(const ShardRange& range, uint64_t heat,
                                   std::map<NodeId, int>& placed) {
  if (static_cast<int>(in_flight_.size()) >= config_.max_concurrent) {
    return false;
  }
  middleware::Catalog& catalog = dm_->catalog();
  const Micros owner_rtt = dm_->monitor().RttEstimate(range.owner);
  if (owner_rtt <= 0) return false;
  bool deferred = false;
  const NodeId dest = PickDestination(range, owner_rtt, placed, &deferred);
  if (dest == kInvalidNode) {
    if (deferred) stats_.capacity_deferrals++;
    return false;
  }
  Migration m;
  m.id = next_migration_id_++;
  m.range = range;
  m.source = range.owner;
  m.dest = dest;
  m.new_version = MintVersion();
  m.deadline = dm_->loop()->Now() + config_.migration_timeout;
  m.source_leader_epoch = catalog.EpochOf(range.owner);
  m.dest_leader_epoch = catalog.EpochOf(dest);
  stats_.migrations_started++;
  placed[dest]++;  // later candidates in this tick see the pressure
  GEOTP_INFO("balancer: migrating " << range.ToString() << " -> " << dest
                                    << " (heat " << heat << ")");
  auto req = std::make_unique<ShardMigrateRequest>();
  req->from = dm_->id();
  req->to = catalog.LeaderOf(range.owner);
  req->migration_id = m.id;
  req->range = range;
  req->dest = dest;
  req->dest_leader = catalog.LeaderOf(dest);
  req->new_version = m.new_version;
  req->timeout = config_.migration_timeout;
  dm_->network()->Send(std::move(req));
  in_flight_.push_back(m);
  return true;
}

bool ShardBalancer::ForceSplit(uint32_t table, uint64_t at) {
  middleware::Catalog& catalog = dm_->catalog();
  if (!catalog.HasShardMap()) return false;
  const ShardRange* range =
      catalog.shard_map().RangeOf(RecordKey{table, at});
  if (range == nullptr || Migrating(*range)) return false;
  const ShardRange original = *range;
  if (!catalog.mutable_shard_map().SplitAt(table, at, MintVersion())) {
    return false;
  }
  FinishSplit(original);
  return true;
}

bool ShardBalancer::ForceMerge(uint32_t table, uint64_t key) {
  middleware::Catalog& catalog = dm_->catalog();
  if (!catalog.HasShardMap()) return false;
  const std::vector<ShardRange>& ranges = catalog.shard_map().ranges();
  for (size_t i = 0; i + 1 < ranges.size(); ++i) {
    if (ranges[i].table != table ||
        !ranges[i].Contains(RecordKey{table, key})) {
      continue;
    }
    if (Migrating(ranges[i]) || Migrating(ranges[i + 1])) return false;
    const SpanKey left = KeyOf(ranges[i]);
    const SpanKey right = KeyOf(ranges[i + 1]);
    if (!catalog.mutable_shard_map().Merge(i, MintVersion())) return false;
    FinishMerge(i, left, right);
    return true;
  }
  return false;
}

void ShardBalancer::OnCutoverReady(const protocol::ShardCutoverReady& ready) {
  const uint64_t migration_id = ready.migration_id;
  const ShardRange& range = ready.range;
  auto it = std::find_if(
      in_flight_.begin(), in_flight_.end(),
      [migration_id](const Migration& m) { return m.id == migration_id; });
  if (it == in_flight_.end()) return;  // cancelled; placement unchanged
  const Migration m = *it;
  in_flight_.erase(it);
  middleware::Catalog& catalog = dm_->catalog();
  const bool epoch_moved =
      catalog.EpochOf(m.source) != m.source_leader_epoch ||
      catalog.EpochOf(m.dest) != m.dest_leader_epoch;
  if (epoch_moved) {
    if (!ready.logged) {
      // Fallback path (unreplicated source): a failover at either end
      // since planning invalidates the protocol state behind this report
      // (the fence and the installed records were node-local and died
      // with the deposed leader): do NOT publish — the range stays at the
      // source, which is always safe — and let a later tick retry the
      // migration against the new leadership. This compare is inherently
      // racy (a LeaderAnnounce still in flight at publish time defeats
      // it), which is exactly why replicated groups journal the cutover
      // instead.
      stats_.migrations_cancelled++;
      auto cancel = std::make_unique<ShardMigrateCancel>();
      cancel->from = dm_->id();
      cancel->to = catalog.LeaderOf(m.source);
      cancel->migration_id = m.id;
      dm_->network()->Send(std::move(cancel));
      return;
    }
    // The source group journaled the cutover through its replicated log:
    // the transfer is quorum-durable at the destination, and any promoted
    // source leader re-fences the range from the record before serving.
    // Publishing is safe regardless of what the (possibly still in
    // flight) LeaderAnnounce did to our epoch view.
    stats_.logged_epoch_overrides++;
    GEOTP_INFO("balancer: publishing migration " << m.id
               << " across a leader-epoch change (cutover is journaled in "
               << "the source group's log)");
  }
  stats_.migrations_completed++;
  GEOTP_CHECK(range.owner == m.dest && range.version == m.new_version &&
                  range.SameSpan(m.range),
              "cutover report does not match the planned migration");
  catalog.mutable_shard_map().Adopt({range});
  dm_->NoteShardEpoch(catalog.ShardEpoch());
  range_state_[KeyOf(range)].cooldown_until =
      dm_->loop()->Now() + config_.range_cooldown;
  Publish();
}

void ShardBalancer::OnMigrateAborted(uint64_t migration_id) {
  auto it = std::find_if(
      in_flight_.begin(), in_flight_.end(),
      [migration_id](const Migration& m) { return m.id == migration_id; });
  if (it == in_flight_.end()) return;  // already cancelled / completed
  const Migration m = *it;
  in_flight_.erase(it);
  stats_.migrations_cancelled++;
  stats_.aborted_by_source++;
  // The source already resolved its side from the log; flush the
  // destination's ordering buffer (idempotent if the source's own cancel
  // got there first).
  auto cancel = std::make_unique<ShardMigrateCancel>();
  cancel->from = dm_->id();
  cancel->to = dm_->catalog().LeaderOf(m.dest);
  cancel->migration_id = m.id;
  dm_->network()->Send(std::move(cancel));
}

void ShardBalancer::Publish() {
  stats_.map_publishes++;
  middleware::Catalog& catalog = dm_->catalog();
  std::vector<NodeId> targets = config_.peer_middlewares;
  for (NodeId logical : catalog.AllDataSources()) {
    targets.push_back(catalog.LeaderOf(logical));
    for (NodeId follower : catalog.FollowersOf(logical)) {
      targets.push_back(follower);
    }
  }
  for (NodeId target : targets) {
    if (target == dm_->id()) continue;  // adopted locally already
    auto update = std::make_unique<ShardMapUpdate>();
    update->from = dm_->id();
    update->to = target;
    update->entries = catalog.shard_map().ranges();
    dm_->network()->Send(std::move(update));
  }
}

}  // namespace sharding
}  // namespace geotp
