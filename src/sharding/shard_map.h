// ShardMap: the versioned key-range -> placement table of the elastic
// sharding subsystem.
//
// The static catalog partitioning pins every key to one data source
// forever; a skewed or drifting workload (Fig. 11 random/dynamic) then
// pins hot keys to one region and the latency-aware scheduler can only
// hide — never remove — the WAN round trips. The shard map overlays the
// catalog's range-partitioned tables with finer-grained chunks whose
// placement the ShardBalancer changes at runtime.
//
// Versioning: every range carries the map epoch at which its placement or
// boundaries last changed; the map's epoch is the max over its ranges. The
// balancer is the single writer, so per-span last-writer-wins adoption
// keeps every replica of the map (DMs and data sources) convergent even
// when updates and redirects arrive out of order or partially. Because
// Split/Merge change spans at runtime, adoption is overlap-aware: an
// incoming entry claims exactly the sub-spans where it is strictly newer
// than whatever covers them locally, so a replica holding pre-split
// boundaries and one holding post-split boundaries still converge.
#ifndef GEOTP_SHARDING_SHARD_MAP_H_
#define GEOTP_SHARDING_SHARD_MAP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace geotp {
namespace sharding {

/// One contiguous key range [lo, hi) of `table`, owned by the replica
/// group (or standalone data source) with logical id `owner`.
struct ShardRange {
  uint32_t table = 0;
  uint64_t lo = 0;  ///< inclusive
  uint64_t hi = 0;  ///< exclusive
  NodeId owner = kInvalidNode;
  /// Map epoch at which this range's placement last changed (0 = initial).
  uint64_t version = 0;

  bool Contains(const RecordKey& key) const {
    return key.table == table && key.key >= lo && key.key < hi;
  }
  bool SameSpan(const ShardRange& other) const {
    return table == other.table && lo == other.lo && hi == other.hi;
  }
  std::string ToString() const;
};

class ShardMap {
 public:
  /// Overlays a range-partitioned table (keys_per_node per owner, the
  /// catalog's layout) with `chunks_per_owner` equal chunks per partition,
  /// all at version 0. Chunk boundaries never change afterwards; only
  /// ownership moves.
  static ShardMap FromRangePartition(uint32_t table, uint64_t keys_per_node,
                                     const std::vector<NodeId>& owners,
                                     uint64_t chunks_per_owner);

  bool empty() const { return ranges_.empty(); }
  size_t size() const { return ranges_.size(); }
  uint64_t epoch() const { return epoch_; }
  const std::vector<ShardRange>& ranges() const { return ranges_; }

  /// Owner of `key`, or kInvalidNode when no range covers it (caller falls
  /// back to the catalog's static routing).
  NodeId Route(const RecordKey& key) const;

  /// Range covering `key` (nullptr when uncovered).
  const ShardRange* RangeOf(const RecordKey& key) const;

  /// Re-owners range `idx`, stamping it with `version` (must exceed the
  /// current map epoch — the balancer allocates strictly increasing
  /// versions). Returns false on a stale version.
  bool Move(size_t idx, NodeId new_owner, uint64_t version);

  /// Splits range `idx` at key `at` (strictly inside its span) into
  /// [lo, at) and [at, hi), both keeping the owner and stamped with
  /// `version` (must exceed the current map epoch). Returns false when the
  /// split point or version is invalid.
  bool Split(size_t idx, uint64_t at, uint64_t version);

  /// Splits the range covering (`table`, `at`) at `at`. Same rules.
  bool SplitAt(uint32_t table, uint64_t at, uint64_t version);

  /// Merges range `idx` with its successor: both must be span-adjacent in
  /// the same table and owned by the same node. The merged [lo_i, hi_i+1)
  /// range is stamped with `version` (must exceed the current map epoch).
  bool Merge(size_t idx, uint64_t version);

  /// Last-writer-wins adoption of `entries`. Each entry claims exactly the
  /// sub-spans of [lo, hi) where every local range covering them is
  /// strictly older (uncovered sub-spans are claimed unconditionally — a
  /// DM may first learn the map from an update); local ranges that are
  /// newer keep their piece, older ones are trimmed or replaced. Returns
  /// true if anything changed.
  bool Adopt(const std::vector<ShardRange>& entries);

  /// True if the ranges of `table` exactly partition [0, UINT64_MAX) —
  /// sorted, no gap, no overlap, starting at 0 and ending open-ended.
  /// The invariant every Split/Merge/Move/Adopt must preserve.
  bool IsPartition(uint32_t table) const;

 private:
  /// Index of the range covering `key`, or npos.
  size_t Find(const RecordKey& key) const;
  void InsertSorted(const ShardRange& entry);
  bool AdoptOne(const ShardRange& entry);

  std::vector<ShardRange> ranges_;  ///< sorted by (table, lo)
  uint64_t epoch_ = 0;
};

}  // namespace sharding
}  // namespace geotp

#endif  // GEOTP_SHARDING_SHARD_MAP_H_
